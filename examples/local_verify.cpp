// Local verification (Section 1.3) in action: all four problems are
// locally verifiable — a one-round distributed check accepts a correct
// claimed solution at every node and rejects a corrupted one at some node
// NEAR the corruption. This is the benchmark against which the paper
// defines consistency: an algorithm with predictions is consistent when
// its zero-error round count is within a constant of this check.
#include <cstdio>

#include "common/rng.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"
#include "verify/local_verifier.hpp"

using namespace dgap;

int main() {
  std::printf("dgap example: local verification of claimed solutions\n\n");
  Rng rng(4);
  Graph g = make_grid(6, 6);
  randomize_ids(g, rng);

  // A correct MIS claim: every node accepts, one round.
  auto in = sequential_mis(g);
  std::vector<Value> claimed(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) claimed[i] = in[i] ? 1 : 0;
  auto ok = verify_mis_locally(g, claimed);
  std::printf("correct MIS claim:    accepted=%s rounds=%d messages=%lld\n",
              ok.accepted ? "yes" : "no", ok.rounds,
              static_cast<long long>(ok.total_messages));

  // Corrupt one bit; the rejectors cluster around the fault.
  const NodeId fault = grid_index(6, 3, 3);
  claimed[fault] = claimed[fault] == 1 ? 0 : 1;
  auto bad = verify_mis_locally(g, claimed);
  std::printf("after flipping node %d: accepted=%s, rejecting nodes:", fault,
              bad.accepted ? "yes" : "no");
  for (NodeId v : bad.rejecting) std::printf(" %d", v);
  std::printf("\n  (all within distance 1 of the flipped node — local "
              "verifiability)\n\n");

  // The consistency connection: verification cost vs an algorithm with
  // predictions fed a correct prediction.
  claimed[fault] = claimed[fault] == 1 ? 0 : 1;  // restore
  auto algo = run_with_predictions(g, Predictions{claimed},
                                   mis_parallel_linial());
  std::printf("verification:              %d round\n", ok.rounds);
  std::printf("MIS algo, eta = 0:         %d rounds  (consistency 3 — a\n"
              "                           constant multiple of the check)\n",
              algo.rounds);
  return 0;
}
