// Section 9.2 on a rooted tree: the Rooted Tree Initialization Algorithm,
// Algorithm 6, and Corollary 15's Parallel-template algorithm, including
// the directed-line instance where the base algorithm decides nothing but
// the tree-specific initialization finishes in 3 rounds.
#include <cstdio>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"
#include "tree/gps.hpp"

using namespace dgap;

int main() {
  std::printf("dgap example: MIS with predictions on rooted trees\n\n");

  // Part 1: the paper's directed-line instance (Section 9.2).
  {
    const NodeId k = 12;
    RootedTree t = make_rooted_line(3 * k);
    std::vector<Value> x(static_cast<std::size_t>(3 * k), 1);
    for (NodeId v = 0; v < 3 * k; v += 3) x[v] = 0;  // white every 3rd node
    Predictions pred{x};
    std::printf("directed line, n=%d, white at depth 0 mod 3:\n", 3 * k);
    std::printf("  eta1 = %-4d (MIS Base Algorithm decides nothing)\n",
                eta1_mis(t.graph, pred));
    std::printf("  eta_t = %-3d (monochromatic parent-paths are short)\n",
                eta_t_mis(t, pred));
    auto r = run_with_predictions(t.graph, pred, tree_mis_simple(t));
    std::printf("  TreeInit + Algorithm 6: %d rounds, valid=%s\n\n", r.rounds,
                is_valid_mis(t.graph, r.outputs) ? "yes" : "NO");
  }

  // Part 2: Corollary 15 across error levels on a random rooted tree.
  Rng rng(11);
  RootedTree t = make_rooted_random_tree(300, rng);
  randomize_ids(t.graph, rng);
  std::printf("random rooted tree, n=%d, d=%lld, GPS cap=O(log* d)=%d "
              "rounds\n\n",
              t.graph.num_nodes(),
              static_cast<long long>(t.graph.id_bound()),
              gps_tree_mis_total_rounds(t.graph.id_bound()));
  std::printf("%-9s %-7s %-7s %-9s %-11s %s\n", "flips", "eta1", "eta_t",
              "simple", "parallel", "valid");
  auto base = mis_correct_prediction(t.graph, rng);
  for (int flips : {0, 2, 8, 32, 128, 300}) {
    auto pred =
        flips == 300 ? all_same(t.graph, 0) : flip_bits(t.graph, base, flips, rng);
    auto simple = run_with_predictions(t.graph, pred, tree_mis_simple(t));
    auto parallel = run_with_predictions(t.graph, pred, tree_mis_parallel(t));
    std::printf("%-9d %-7d %-7d %-9d %-11d %s\n", flips,
                eta1_mis(t.graph, pred), eta_t_mis(t, pred), simple.rounds,
                parallel.rounds,
                is_valid_mis(t.graph, parallel.outputs) &&
                        is_valid_mis(t.graph, simple.outputs)
                    ? "yes"
                    : "NO");
  }
  std::printf("\nParallel = min{ceil(eta_t/2)+5, O(log* d)}: degradation "
              "from Algorithm 6,\nrobustness from the "
              "Goldberg-Plotkin-Shannon 3-coloring reference.\n");
  return 0;
}
