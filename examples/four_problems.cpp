// All four problems of the paper on the same graph, with predictions:
// Maximal Independent Set, Maximal Matching, (Δ+1)-Vertex Coloring and
// (2Δ−1)-Edge Coloring (Sections 3 and 8). Each runs its initialization
// algorithm followed by its measure-uniform algorithm, across prediction
// quality levels.
#include <cstdio>

#include "coloring/algorithms.hpp"
#include "coloring/checkers.hpp"
#include "common/rng.hpp"
#include "edgecoloring/algorithms.hpp"
#include "edgecoloring/checkers.hpp"
#include "graph/generators.hpp"
#include "matching/algorithms.hpp"
#include "matching/checkers.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "sim/phase.hpp"
#include "templates/mis_with_predictions.hpp"

using namespace dgap;

namespace {

ProgramFactory pipeline(PhaseFactory init, PhaseFactory uniform) {
  return phase_as_algorithm(
      [init = std::move(init), uniform = std::move(uniform)](NodeId v) {
        std::vector<std::unique_ptr<PhaseProgram>> phases;
        phases.push_back(init(v));
        phases.push_back(uniform(v));
        return std::make_unique<SequencePhase>(std::move(phases));
      });
}

}  // namespace

int main() {
  std::printf("dgap example: the four problems of the paper on one graph\n\n");
  Rng rng(5);
  Graph g = make_grid(10, 10);
  randomize_ids(g, rng);
  std::printf("graph: 10x10 grid, n=%d, Delta=%d\n\n", g.num_nodes(),
              g.max_degree());
  std::printf("%-18s %-12s %-7s %-8s %s\n", "problem", "predictions", "eta1",
              "rounds", "valid");

  for (int errors : {0, 5, 40}) {
    const char* label =
        errors == 0 ? "correct" : (errors == 5 ? "5 errors" : "40 errors");
    {
      auto pred =
          flip_bits(g, mis_correct_prediction(g, rng), errors, rng);
      auto r = run_with_predictions(g, pred, mis_simple_greedy());
      std::printf("%-18s %-12s %-7d %-8d %s\n", "MIS", label,
                  eta1_mis(g, pred), r.rounds,
                  is_valid_mis(g, r.outputs) ? "yes" : "NO");
    }
    {
      auto pred =
          break_matches(g, matching_correct_prediction(g, rng), errors, rng);
      auto r = run_with_predictions(
          g, pred, pipeline(make_matching_init(), make_greedy_matching()));
      std::printf("%-18s %-12s %-7d %-8d %s\n", "MaximalMatching", label,
                  eta1_matching(g, pred), r.rounds,
                  is_valid_maximal_matching(g, r.outputs) ? "yes" : "NO");
    }
    {
      auto pred =
          scramble_colors(g, coloring_correct_prediction(g, rng), errors, rng);
      auto r = run_with_predictions(
          g, pred, pipeline(make_coloring_init(), make_greedy_coloring()));
      std::printf("%-18s %-12s %-7d %-8d %s\n", "(D+1)-VertexCol", label,
                  eta1_coloring(g, pred), r.rounds,
                  is_valid_coloring(g, r.outputs, g.max_degree() + 1) ? "yes"
                                                                      : "NO");
    }
    {
      auto pred = scramble_edge_colors(
          g, edge_coloring_correct_prediction(g, rng), errors, rng);
      auto r = run_with_predictions(
          g, pred,
          pipeline(make_edge_coloring_base(), make_greedy_edge_coloring()));
      std::printf("%-18s %-12s %-7d %-8d %s\n", "(2D-1)-EdgeCol", label,
                  eta1_edge_coloring(g, pred), r.rounds,
                  is_valid_edge_coloring(g, r.edge_outputs) ? "yes" : "NO");
    }
  }
  std::printf("\nEach row: initialization algorithm (consistency) followed "
              "by the problem's\nmeasure-uniform algorithm (degradation in "
              "the error measure, not in n).\n");
  return 0;
}
