// Quickstart: build a graph, attach predictions, run an MIS algorithm with
// predictions, and inspect rounds / validity / error measures.
//
//   $ ./quickstart
//
// Walks through the three regimes the paper cares about: correct
// predictions (consistency), mildly wrong predictions (degradation), and
// adversarial predictions (robustness).
#include <cstdio>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"

using namespace dgap;

namespace {

void run_one(const char* label, const Graph& g, const Predictions& pred) {
  // Corollary 12's algorithm: Greedy MIS in parallel with Linial coloring.
  auto result = run_with_predictions(g, pred, mis_parallel_linial());
  std::printf("  %-22s eta1=%-4d eta2=%-4d rounds=%-4d valid=%s\n", label,
              eta1_mis(g, pred), eta2_mis(g, pred), result.rounds,
              is_valid_mis(g, result.outputs) ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("dgap quickstart: Maximal Independent Set with predictions\n");
  std::printf("algorithm: Parallel template (Greedy MIS || Linial), "
              "Corollary 12\n\n");

  Rng rng(1);
  Graph g = make_grid(8, 8);
  randomize_ids(g, rng);
  std::printf("graph: 8x8 grid, n=%d, Delta=%d, d=%lld\n\n", g.num_nodes(),
              g.max_degree(), static_cast<long long>(g.id_bound()));

  // 1. Perfect predictions: the initialization algorithm confirms them in
  //    3 rounds (consistency).
  auto correct = mis_correct_prediction(g, rng);
  run_one("correct", g, correct);

  // 2. A few wrong bits: rounds degrade linearly with the error, not with
  //    the graph size.
  run_one("4 flipped bits", g, flip_bits(g, correct, 4, rng));
  run_one("12 flipped bits", g, flip_bits(g, correct, 12, rng));

  // 3. Garbage predictions: the reference algorithm caps the damage.
  run_one("all ones (garbage)", g, all_same(g, 1));
  run_one("all zeros (garbage)", g, all_same(g, 0));

  std::printf(
      "\nTakeaway: rounds ~ min{eta2 + 4, O(Delta^2 + log* d)} — fast when "
      "predictions are good, never catastrophically slow when they are "
      "not.\n");
  return 0;
}
