// Figure 2, live: the 4-striped grid whose predictions are globally awful
// (η1 = n: the base algorithm decides NOTHING) yet locally structured
// (η_bw = 4: black and white nodes form 2x2 blocks). The black/white
// alternating measure-uniform algorithm U_bw (Section 9.1) exploits the
// structure; plain Greedy MIS cannot.
#include <cstdio>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"

using namespace dgap;

namespace {

void draw(const char* title, NodeId w, NodeId h,
          const std::vector<Value>& cell, Value one_char) {
  std::printf("%s\n", title);
  for (NodeId y = 0; y < h; ++y) {
    std::printf("  ");
    for (NodeId x = 0; x < w; ++x) {
      const Value v = cell[grid_index(w, x, y)];
      std::printf("%c", v == one_char ? '#' : '.');
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("dgap example: Figure 2's black/white grid (Section 9.1)\n\n");
  const NodeId w = 16, h = 8;
  Graph g = make_grid(w, h);
  Rng rng(3);
  randomize_ids(g, rng);
  auto pred = grid_stripe_prediction(w, h);

  draw("predictions (# = predicted in the set):", w, h, pred.node_values(), 1);

  std::printf("eta1   = %d   (the base algorithm decides nothing: every\n"
              "              black node has a black neighbor)\n",
              eta1_mis(g, pred));
  std::printf("eta_bw = %d   (monochromatic components are 2x2 blocks)\n\n",
              eta_bw_mis(g, pred));

  auto bw = run_with_predictions(g, pred, mis_simple_bw());
  auto plain = run_with_predictions(g, pred, mis_simple_greedy());

  std::printf("U_bw   (black/white alternating): %d rounds, valid=%s\n",
              bw.rounds, is_valid_mis(g, bw.outputs) ? "yes" : "NO");
  std::printf("Greedy (identifier-based only):   %d rounds, valid=%s\n\n",
              plain.rounds, is_valid_mis(g, plain.outputs) ? "yes" : "NO");

  draw("U_bw's maximal independent set:", w, h, bw.outputs, 1);

  std::printf("The prediction colors act as a symmetry-breaking mechanism: "
              "splitting\nerror components by predicted color turns one "
              "n-node component into\nconstant-size pieces.\n");
  return 0;
}
