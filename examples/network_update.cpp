// The paper's Section 1.1 motivating scenario, end to end:
//
//   "an example of where an algorithm with predictions for Maximal
//    Independent Set may be useful is when a maximal independent set has
//    been computed on one network, but now a related network is being
//    used [...] the same set of nodes, but a slightly different set of
//    edges."
//
// We compute an MIS on network G0, evolve the network through several
// epochs of edge churn, and at each epoch reuse the PREVIOUS epoch's
// output as the prediction. Compare against recomputing blind each epoch.
#include <cstdio>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"

using namespace dgap;

int main() {
  std::printf("dgap example: maintaining an MIS across network updates\n\n");
  Rng rng(7);
  Graph g = make_random_connected(200, 100, rng);
  const int kEpochs = 8;
  const int kChurn = 6;  // edges removed + added per epoch

  // Epoch 0: no prior knowledge — run with garbage predictions.
  Predictions current = all_same(g, 0);
  std::printf("%-7s %-7s %-9s %-14s %-14s %s\n", "epoch", "churn", "eta1",
              "rounds_reuse", "rounds_blind", "valid");
  long long total_reuse = 0, total_blind = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    auto reuse = run_with_predictions(g, current, mis_parallel_linial());
    auto blind =
        run_with_predictions(g, all_same(g, 0), mis_parallel_linial());
    total_reuse += reuse.rounds;
    total_blind += blind.rounds;
    std::printf("%-7d %-7d %-9d %-14d %-14d %s\n", epoch,
                epoch == 0 ? 0 : kChurn, eta1_mis(g, current), reuse.rounds,
                blind.rounds, is_valid_mis(g, reuse.outputs) ? "yes" : "NO");

    // The network evolves; this epoch's solution becomes the next epoch's
    // prediction.
    current = Predictions(reuse.outputs);
    g = perturb_edges(g, kChurn, kChurn, rng);
  }
  std::printf("\ntotal rounds across %d epochs: reuse=%lld blind=%lld "
              "(%.1fx saving after warm-up)\n",
              kEpochs, total_reuse, total_blind,
              static_cast<double>(total_blind) /
                  static_cast<double>(total_reuse));
  return 0;
}
