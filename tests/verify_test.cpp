// Local verification (Section 1.3): completeness (correct solutions are
// accepted by every node), soundness (any corruption makes at least one
// node reject), and the one-round cost the paper's consistency definition
// measures against.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "verify/local_verifier.hpp"

namespace dgap {
namespace {

TEST(VerifyMis, AcceptsCorrectSolutions) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(18, 0.2, rng);
    auto in = sequential_mis(g);
    std::vector<Value> claimed(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) claimed[i] = in[i] ? 1 : 0;
    auto vr = verify_mis_locally(g, claimed);
    EXPECT_TRUE(vr.accepted) << "trial " << trial;
    EXPECT_EQ(vr.rounds, 1);
  }
}

TEST(VerifyMis, RejectsEveryCorruption) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_random_connected(15, 8, rng);
    auto in = sequential_mis(g);
    std::vector<Value> claimed(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) claimed[i] = in[i] ? 1 : 0;
    // Flip one bit: the result is never a maximal independent set again
    // in only one flip? Flipping a 1 off may leave a valid... it can:
    // removing a set node can keep validity only if all its neighbors are
    // still dominated AND it becomes dominated — impossible: the removed
    // node now outputs 0 with no 1-neighbor. Flipping a 0 on creates two
    // adjacent 1s (it had a 1-neighbor). Either way, someone rejects.
    const NodeId v = static_cast<NodeId>(rng.next_below(15));
    claimed[v] = claimed[v] == 1 ? 0 : 1;
    auto vr = verify_mis_locally(g, claimed);
    EXPECT_FALSE(vr.accepted) << "trial " << trial << " flip " << v;
    EXPECT_FALSE(vr.rejecting.empty());
  }
}

TEST(VerifyMis, RejectorIsNearTheFault) {
  // Locality: the rejecting nodes must be within distance 1 of the flip.
  Rng rng(3);
  Graph g = make_line(30);
  std::vector<Value> claimed(30);
  for (NodeId v = 0; v < 30; ++v) claimed[v] = (v % 2 == 0) ? 1 : 0;
  claimed[14] = 1;  // adjacent 1s at 14 and (14±0...): 14 odd? 14 even.
  claimed[15] = 1;  // force two adjacent ones at 14,15
  auto vr = verify_mis_locally(g, claimed);
  ASSERT_FALSE(vr.accepted);
  for (NodeId r : vr.rejecting) {
    EXPECT_GE(r, 13);
    EXPECT_LE(r, 16);
  }
}

TEST(VerifyMatching, AcceptsAndRejects) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(16, 0.25, rng);
    auto mate = sequential_maximal_matching(g);
    std::vector<Value> claimed(mate.size());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      claimed[v] = mate[v] == kNoNode ? Value{kNoNode} : g.id(mate[v]);
    }
    EXPECT_TRUE(verify_matching_locally(g, claimed).accepted);
    // Corrupt: unmatch one side of a pair (asymmetry) or point a ⊥ node
    // at a random neighbor.
    NodeId v = static_cast<NodeId>(rng.next_below(16));
    if (claimed[v] != kNoNode) {
      claimed[v] = kNoNode;
    } else if (g.degree(v) > 0) {
      claimed[v] = g.id(g.neighbors(v).front());
    } else {
      continue;  // isolated ⊥ node: nothing to corrupt
    }
    EXPECT_FALSE(verify_matching_locally(g, claimed).accepted)
        << "trial " << trial;
  }
}

TEST(VerifyColoring, AcceptsAndRejects) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(16, 0.3, rng);
    auto color = sequential_vertex_coloring(g);
    const Value palette = g.max_degree() + 1;
    EXPECT_TRUE(verify_coloring_locally(g, color, palette).accepted);
    // Copy a neighbor's color (guaranteed clash) when possible.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.degree(v) > 0) {
        auto bad = color;
        bad[v] = color[g.neighbors(v).front()];
        EXPECT_FALSE(verify_coloring_locally(g, bad, palette).accepted);
        break;
      }
    }
    // Out-of-palette color.
    auto bad2 = color;
    bad2[0] = palette + 7;
    EXPECT_FALSE(verify_coloring_locally(g, bad2, palette).accepted);
  }
}

TEST(VerifyEdgeColoring, AcceptsAndRejects) {
  Rng rng(6);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(12, 0.3, rng);
    auto colors = sequential_edge_coloring(g);
    EXPECT_TRUE(verify_edge_coloring_locally(g, colors).accepted);
    // Desynchronize one edge's two sides.
    bool corrupted = false;
    for (NodeId v = 0; v < g.num_nodes() && !corrupted; ++v) {
      if (g.degree(v) > 0) {
        auto bad = colors;
        bad[v][0] = bad[v][0] % (2 * g.max_degree() - 1) + 1;
        if (bad[v][0] == colors[v][0]) bad[v][0] = colors[v][0] + 1;
        EXPECT_FALSE(verify_edge_coloring_locally(g, bad).accepted)
            << "trial " << trial;
        corrupted = true;
      }
    }
  }
}

TEST(Verify, ExhaustiveSoundnessOnSmallGraphs) {
  // For every claimed bit vector on a small graph: verifier accepts iff
  // the vector is a maximal independent set.
  Rng rng(7);
  Graph g = make_gnp(8, 0.35, rng);
  for (int mask = 0; mask < (1 << 8); ++mask) {
    std::vector<Value> claimed(8);
    for (NodeId v = 0; v < 8; ++v) claimed[v] = (mask >> v) & 1;
    bool valid = true;
    for (NodeId v = 0; v < 8 && valid; ++v) {
      if (claimed[v] == 1) {
        for (NodeId u : g.neighbors(v)) {
          if (claimed[u] == 1) valid = false;
        }
      } else {
        bool covered = false;
        for (NodeId u : g.neighbors(v)) covered = covered || claimed[u] == 1;
        valid = covered;
      }
    }
    EXPECT_EQ(verify_mis_locally(g, claimed).accepted, valid)
        << "mask " << mask;
  }
}

}  // namespace
}  // namespace dgap
