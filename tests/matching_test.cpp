#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/algorithms.hpp"
#include "matching/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "sim/phase.hpp"

namespace dgap {
namespace {

TEST(MatchingCheckers, AcceptsValidMatching) {
  Graph g = make_line(4);  // ids 1,2,3,4
  EXPECT_TRUE(is_valid_maximal_matching(g, {2, 1, 4, 3}));
}

TEST(MatchingCheckers, RejectsAsymmetryAndNonMaximality) {
  Graph g = make_line(4);
  EXPECT_FALSE(is_valid_maximal_matching(g, {2, 3, 2, kNoNode}));
  // 1-2 matched, 3 and 4 both unmatched though adjacent: not maximal.
  EXPECT_FALSE(is_valid_maximal_matching(g, {2, 1, kNoNode, kNoNode}));
}

TEST(MatchingCheckers, RejectsNonNeighborPartner) {
  Graph g = make_line(3);
  EXPECT_FALSE(is_valid_maximal_matching(g, {3, kNoNode, 1}));
}

TEST(MatchingCheckers, ExtendablePartials) {
  Graph g = make_line(5);
  std::vector<Value> partial(5, kUndefined);
  partial[1] = 3;  // node 1 ↔ node 2 (ids 2,3)
  partial[2] = 2;
  EXPECT_TRUE(is_extendable_partial_matching(g, partial));
  partial[2] = kUndefined;  // dangling pointer: not extendable
  EXPECT_FALSE(is_extendable_partial_matching(g, partial));
  std::vector<Value> bot(5, kUndefined);
  bot[0] = kNoNode;  // ⊥ with an unmatched neighbor: not extendable
  EXPECT_FALSE(is_extendable_partial_matching(g, bot));
}

TEST(GreedyMatching, ValidOnFamilies) {
  Rng rng(1);
  for (auto make : {+[]() { return make_line(14); },
                    +[]() { return make_ring(11); },
                    +[]() { return make_clique(7); },
                    +[]() { return make_grid(4, 4); },
                    +[]() { return make_star(8); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    auto result = run_algorithm(g, greedy_matching_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_maximal_matching(g, result.outputs))
        << check_matching(g, result.outputs);
  }
}

// Section 8.1: round complexity ≤ 3⌊s/2⌋ on an s ≥ 2 node component.
TEST(GreedyMatching, RoundBound) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(16, 0.2, rng);
    randomize_ids(g, rng);
    auto result = run_algorithm(g, greedy_matching_algorithm());
    NodeId s = 0;
    for (const auto& comp : connected_components(g)) {
      s = std::max(s, static_cast<NodeId>(comp.size()));
    }
    EXPECT_LE(result.rounds, std::max(3 * (s / 2), NodeId{1}))
        << "trial " << trial;
    EXPECT_TRUE(is_valid_maximal_matching(g, result.outputs));
  }
}

TEST(GreedyMatching, SingletonOutputsBottomImmediately) {
  Graph g(1);
  auto result = run_algorithm(g, greedy_matching_algorithm());
  EXPECT_EQ(result.rounds, 1);
  EXPECT_EQ(result.outputs[0], kNoNode);
}

TEST(MatchingBasePhase, CorrectPredictionIsOutputInTwoRounds) {
  Rng rng(3);
  Graph g = make_grid(4, 4);
  auto pred = matching_correct_prediction(g, rng);
  auto result = run_with_predictions(g, pred,
                                     phase_as_algorithm(make_matching_base()));
  EXPECT_EQ(result.rounds, kMatchingBaseRounds);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.outputs[v], pred.node(v)) << "node " << v;
  }
  EXPECT_TRUE(is_valid_maximal_matching(g, result.outputs));
}

TEST(MatchingBasePhase, MatchesAnalyticStatus) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(14, 0.25, rng);
    randomize_ids(g, rng);
    auto pred = break_matches(g, matching_correct_prediction(g, rng),
                              static_cast<int>(rng.next_below(4)), rng);
    auto result = run_with_predictions(
        g, pred, phase_as_algorithm(make_matching_base()));
    auto status = matching_base_status(g, pred);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (status[v] == -1) {
        EXPECT_EQ(result.outputs[v], kLeftoverActive);
      } else if (status[v] == 0) {
        EXPECT_EQ(result.outputs[v], kNoNode);
      } else {
        EXPECT_EQ(result.outputs[v], pred.node(v));
      }
    }
    EXPECT_TRUE(is_extendable_partial_matching(g, result.outputs));
  }
}

TEST(MatchingInitPhase, AlsoBottomsNonBottomPredictors) {
  // Triangle ids 1,2,3: prediction matches 1↔2; node 3 predicts id 1
  // (not reciprocated). The base algorithm leaves node 3 active; the
  // reasonable initialization lets it output ⊥ because both its neighbors
  // matched.
  Graph g = make_clique(3);
  Predictions pred(std::vector<Value>{2, 1, 1});
  auto base = run_with_predictions(g, pred,
                                   phase_as_algorithm(make_matching_base()));
  EXPECT_EQ(base.outputs[2], kLeftoverActive);
  auto init = run_with_predictions(g, pred,
                                   phase_as_algorithm(make_matching_init()));
  EXPECT_EQ(init.outputs[2], kNoNode);
  EXPECT_TRUE(is_valid_maximal_matching(g, init.outputs));
}

TEST(Matching, InitPlusGreedyCompletesToValidMatching) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(14, 0.25, rng);
    randomize_ids(g, rng);
    auto pred = break_matches(g, matching_correct_prediction(g, rng), 3, rng);
    auto factory = phase_as_algorithm([](NodeId) {
      std::vector<std::unique_ptr<PhaseProgram>> phases;
      phases.push_back(std::make_unique<MatchingInitPhase>());
      phases.push_back(std::make_unique<GreedyMatchingPhase>());
      return std::make_unique<SequencePhase>(std::move(phases));
    });
    auto result = run_with_predictions(g, pred, factory);
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_maximal_matching(g, result.outputs))
        << check_matching(g, result.outputs);
  }
}

TEST(MatchingCleanup, AdoptsDanglingMatch) {
  // Simulate the situation the clean-up exists for: a terminated node v
  // output partner u, but u has not output yet. One cleanup round makes u
  // adopt the match.
  Graph g = make_line(2);  // ids 1,2
  class HalfMatched final : public NodeProgram {
   public:
    explicit HalfMatched(bool first) : first_(first) {}
    void on_send(NodeContext&) override {}
    void on_receive(NodeContext& ctx) override {
      if (first_ && ctx.round() == 1) {
        ctx.set_output(2);  // claim partner id 2
        ctx.terminate();
        return;
      }
      if (!first_ && ctx.round() >= 2) {  // cleanup runs after v terminated
        Channel ch(ctx, 0);
        if (cleanup_.on_receive(ctx, ch) == PhaseProgram::Status::kFinished &&
            !ctx.terminated()) {
          ctx.set_output(kLeftoverActive);
          ctx.terminate();
        }
      }
    }

   private:
    bool first_;
    MatchingCleanupPhase cleanup_;
  };
  auto result = run_algorithm(g, [](NodeId v) {
    return std::make_unique<HalfMatched>(v == 0);
  });
  EXPECT_EQ(result.outputs[0], 2);
  EXPECT_EQ(result.outputs[1], 1);  // adopted the match back
  EXPECT_TRUE(is_valid_maximal_matching(g, result.outputs));
}

}  // namespace
}  // namespace dgap
