// Randomized differential sweep: many random (graph, prediction,
// algorithm) triples, every output checked, plus the blanket invariants
// that must hold on every instance — valid outputs, consistency at zero
// error, verification agreement, and the robustness caps.
#include <gtest/gtest.h>

#include "coloring/checkers.hpp"
#include "common/rng.hpp"
#include "edgecoloring/checkers.hpp"
#include "graph/generators.hpp"
#include "matching/checkers.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"
#include "templates/problems_with_predictions.hpp"
#include "verify/local_verifier.hpp"

namespace dgap {
namespace {

Graph random_instance(Rng& rng) {
  const int kind = static_cast<int>(rng.next_below(7));
  switch (kind) {
    case 0:
      return make_gnp(10 + static_cast<NodeId>(rng.next_below(40)),
                      0.05 + 0.3 * rng.uniform01(), rng);
    case 1: {
      Graph g = make_line(8 + static_cast<NodeId>(rng.next_below(50)));
      randomize_ids(g, rng);
      return g;
    }
    case 2: {
      Graph g = make_ring(8 + static_cast<NodeId>(rng.next_below(50)));
      randomize_ids(g, rng);
      return g;
    }
    case 3: {
      Graph g = make_grid(2 + static_cast<NodeId>(rng.next_below(6)),
                          2 + static_cast<NodeId>(rng.next_below(6)));
      randomize_ids_sparse(g, 10 * g.num_nodes(), rng);
      return g;
    }
    case 4: {
      Graph g =
          make_random_connected(10 + static_cast<NodeId>(rng.next_below(40)),
                                static_cast<std::int64_t>(rng.next_below(40)),
                                rng);
      randomize_ids(g, rng);
      return g;
    }
    case 5: {
      Graph g = make_random_tree(8 + static_cast<NodeId>(rng.next_below(40)),
                                 rng);
      randomize_ids_sparse(g, 1000, rng);
      return g;
    }
    default: {
      Graph g = disjoint_union(
          make_gnp(6 + static_cast<NodeId>(rng.next_below(12)), 0.3, rng),
          make_line(4 + static_cast<NodeId>(rng.next_below(12))));
      randomize_ids(g, rng);
      return g;
    }
  }
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, MisAlgorithms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Graph g = random_instance(rng);
  const int flips = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(g.num_nodes()) + 1));
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), flips, rng);
  const int e1 = eta1_mis(g, pred);
  ProgramFactory (*factories[])() = {
      &mis_simple_greedy,      &mis_consecutive_gather,
      &mis_consecutive_linial, &mis_interleaved_gather,
      &mis_parallel_linial,    &mis_simple_bw};
  for (auto f : factories) {
    auto result = run_with_predictions(g, pred, f());
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
    if (e1 == 0) {
      EXPECT_EQ(result.rounds, 3);
    }
    // The distributed verifier agrees with the checker.
    EXPECT_TRUE(verify_mis_locally(g, result.outputs).accepted);
  }
  // Observation 7's bound as a blanket invariant for the Simple template.
  auto simple = run_with_predictions(g, pred, mis_simple_greedy());
  EXPECT_LE(simple.rounds, e1 + 3);
}

TEST_P(FuzzTest, MatchingAlgorithms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  Graph g = random_instance(rng);
  const int breaks = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(g.num_nodes()) + 1));
  auto pred =
      break_matches(g, matching_correct_prediction(g, rng), breaks, rng);
  const int e1 = eta1_matching(g, pred);
  ProgramFactory (*factories[])() = {&matching_simple_greedy,
                                     &matching_consecutive_linegraph,
                                     &matching_parallel_linegraph,
                                     &matching_interleaved_linegraph};
  for (auto f : factories) {
    auto result = run_with_predictions(g, pred, f());
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(is_valid_maximal_matching(g, result.outputs))
        << check_matching(g, result.outputs);
    if (e1 == 0) {
      EXPECT_EQ(result.rounds, 2);
    }
    EXPECT_TRUE(verify_matching_locally(g, result.outputs).accepted);
  }
}

TEST_P(FuzzTest, ColoringAlgorithms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 3);
  Graph g = random_instance(rng);
  const int scrambles = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(g.num_nodes()) + 1));
  auto pred =
      scramble_colors(g, coloring_correct_prediction(g, rng), scrambles, rng);
  const int e1 = eta1_coloring(g, pred);
  const Value palette = g.max_degree() + 1;
  ProgramFactory (*factories[])() = {&coloring_simple_greedy,
                                     &coloring_consecutive_linial,
                                     &coloring_parallel_linial,
                                     &coloring_interleaved_linial};
  for (auto f : factories) {
    auto result = run_with_predictions(g, pred, f());
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(is_valid_coloring(g, result.outputs, palette))
        << check_coloring(g, result.outputs, palette);
    if (e1 == 0) {
      EXPECT_EQ(result.rounds, 2);
    }
    EXPECT_TRUE(
        verify_coloring_locally(g, result.outputs, palette).accepted);
  }
}

TEST_P(FuzzTest, EdgeColoringAlgorithms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 32452843 + 11);
  Graph g = random_instance(rng);
  const int scrambles = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(g.num_edges()) + 1));
  auto pred = scramble_edge_colors(
      g, edge_coloring_correct_prediction(g, rng), scrambles, rng);
  const int e1 = eta1_edge_coloring(g, pred);
  ProgramFactory (*factories[])() = {&edge_coloring_simple_greedy,
                                     &edge_coloring_consecutive_linegraph,
                                     &edge_coloring_parallel_linegraph,
                                     &edge_coloring_interleaved_linegraph};
  for (auto f : factories) {
    auto result = run_with_predictions(g, pred, f());
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(is_valid_edge_coloring(g, result.edge_outputs))
        << check_edge_coloring(g, result.edge_outputs);
    if (e1 == 0) {
      EXPECT_EQ(result.rounds, 1);
    }
    std::vector<std::vector<Value>> claimed(
        static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      claimed[v].assign(g.neighbors(v).size(), 0);
      for (auto [key, c] : result.edge_outputs[v]) {
        const auto& nb = g.neighbors(v);
        const auto slot = static_cast<std::size_t>(
            std::lower_bound(nb.begin(), nb.end(), key) - nb.begin());
        claimed[v][slot] = c;
      }
    }
    EXPECT_TRUE(verify_edge_coloring_locally(g, claimed).accepted);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace dgap
