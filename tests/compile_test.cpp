// The message-reduction compiler pass (sim/compile.hpp):
//
//  1. Equivalence: for every wrapped algorithm, the compiled run's
//     outputs, rounds, termination rounds, and kRounds transcript are
//     byte-identical to the uncompiled run's, across threads {1, 2, 4, 8};
//     payload transcripts differ ONLY in the suppressed flag.
//  2. Accounting: total == sent + suppressed exactly (nominal invariance),
//     a knobs-off run suppresses nothing, and the split is identical
//     across thread counts (the resend cache is keyed to receiver-shard
//     ownership, so every delivery path replays the same hit sequence).
//  3. Reduction: flood_min re-sends collapse (> 30% of words off the wire),
//     and the skeleton relay prunes further while preserving outputs.
//  4. Composition hazards: a suppressed re-send meeting a terminating
//     neighbor (the PR 3 stale-tentative hazard, now with caching), and
//     mid-run cut sweeps of the compiled template assemblies
//     (property_sweep_test pattern).
//  5. Enforced CONGEST interaction: suppression never touches a link
//     budget — a fully-suppressible workload under kDefer/kTruncate at
//     B = 1 runs exactly like the unenforced one (the free lunch).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "matching/algorithms.hpp"
#include "matching/checkers.hpp"
#include "mis/algorithms.hpp"
#include "mis/checkers.hpp"
#include "predict/generators.hpp"
#include "sim/compile.hpp"
#include "sim/transcript.hpp"
#include "templates/mis_with_predictions.hpp"
#include "templates/problems_with_predictions.hpp"

namespace dgap {
namespace {

CompileOptions cache_and_defaults() {
  return {.cache_resends = true, .decode_defaults = true};
}

enum class Pred { kNone, kMis, kMatching };

struct Equiv {
  const char* name;
  ProgramFactory (*make_factory)();
  Pred pred;
};

ProgramFactory make_flood() { return flood_min_algorithm(); }

const Equiv kEquivCases[] = {
    {"flood_min", &make_flood, Pred::kNone},
    {"greedy_mis", &greedy_mis_algorithm, Pred::kNone},
    {"greedy_matching", &greedy_matching_algorithm, Pred::kNone},
    {"mis_simple_greedy", &mis_simple_greedy, Pred::kMis},
    {"matching_simple_greedy", &matching_simple_greedy, Pred::kMatching},
};

// ---------------------------------------------------------------------------
// 1 + 2. Equivalence and accounting across threads {1, 2, 4, 8}.
// ---------------------------------------------------------------------------

TEST(CompileEquivalence, IdenticalOutputsAndKRoundsTranscriptAcrossThreads) {
  Rng rng(11);
  Graph g = make_random_connected(40, 30, rng);
  const Predictions mis_pred = flip_bits(g, mis_correct_prediction(g, rng), 6, rng);
  const Predictions match_pred = matching_correct_prediction(g, rng);

  for (const Equiv& c : kEquivCases) {
    SCOPED_TRACE(c.name);
    const Predictions& p = c.pred == Pred::kMis       ? mis_pred
                           : c.pred == Pred::kMatching ? match_pred
                                                       : empty_predictions();

    EngineOptions base;
    const auto uncompiled =
        record_run(g, p, c.make_factory(), base, TraceDetail::kRounds, c.name);
    ASSERT_TRUE(uncompiled.result.completed);
    EXPECT_EQ(uncompiled.result.messages_suppressed, 0);
    EXPECT_EQ(uncompiled.result.words_suppressed, 0);
    EXPECT_EQ(uncompiled.result.messages_sent,
              uncompiled.result.total_messages);

    std::int64_t suppressed_t1 = -1;
    for (int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE(threads);
      EngineOptions opt;
      opt.num_threads = threads;
      opt.compile = cache_and_defaults();
      const auto compiled = record_run(g, p, c.make_factory(), opt,
                                       TraceDetail::kRounds, c.name);
      // Behavior is invariant: suppressed messages are synthesized at the
      // receiver, so the entire observable run matches byte for byte.
      EXPECT_EQ(compiled.transcript, uncompiled.transcript);
      EXPECT_EQ(compiled.result.outputs, uncompiled.result.outputs);
      EXPECT_EQ(compiled.result.edge_outputs, uncompiled.result.edge_outputs);
      EXPECT_EQ(compiled.result.rounds, uncompiled.result.rounds);
      EXPECT_EQ(compiled.result.termination_round,
                uncompiled.result.termination_round);
      // Accounting identity: nominal totals are unchanged and split
      // exactly into sent + suppressed.
      EXPECT_EQ(compiled.result.total_messages,
                uncompiled.result.total_messages);
      EXPECT_EQ(compiled.result.total_words, uncompiled.result.total_words);
      EXPECT_EQ(compiled.result.messages_sent +
                    compiled.result.messages_suppressed,
                compiled.result.total_messages);
      EXPECT_EQ(compiled.result.words_sent + compiled.result.words_suppressed,
                compiled.result.total_words);
      // The cache is keyed to receiver-shard ownership and walked in
      // global send order: the split cannot depend on the thread count.
      if (suppressed_t1 < 0) {
        suppressed_t1 = compiled.result.messages_suppressed;
      } else {
        EXPECT_EQ(compiled.result.messages_suppressed, suppressed_t1);
      }
    }
  }
}

TEST(CompileEquivalence, PayloadTranscriptsDifferOnlyInSuppressedFlag) {
  Rng rng(12);
  Graph g = make_random_connected(32, 20, rng);

  EngineOptions opt;
  opt.compile.cache_resends = true;
  const auto base = record_run(g, empty_predictions(), flood_min_algorithm(),
                               EngineOptions{}, TraceDetail::kPayloads);
  const auto compiled = record_run(g, empty_predictions(),
                                   flood_min_algorithm(), opt,
                                   TraceDetail::kPayloads);

  Transcript a = decode_transcript(base.transcript);
  Transcript b = decode_transcript(compiled.transcript);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  std::int64_t flagged = 0;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    ASSERT_EQ(a.rounds[r].messages.size(), b.rounds[r].messages.size());
    EXPECT_EQ(a.rounds[r].terminations, b.rounds[r].terminations);
    for (std::size_t i = 0; i < a.rounds[r].messages.size(); ++i) {
      TranscriptMessage p = a.rounds[r].messages[i];
      TranscriptMessage q = b.rounds[r].messages[i];
      EXPECT_FALSE(p.suppressed);
      if (q.suppressed) ++flagged;
      q.suppressed = p.suppressed;  // the only field allowed to differ
      EXPECT_EQ(p, q);
    }
  }
  EXPECT_EQ(flagged, compiled.result.messages_suppressed);
  // The flags byte survives its own codec: decode(encode(t)) == t.
  EXPECT_EQ(encode_transcript(b), compiled.transcript);
  // And the compiled run verifies against its own recorded transcript.
  EngineOptions opt2 = opt;
  run_verified(g, empty_predictions(), flood_min_algorithm(), opt2, b);
}

// ---------------------------------------------------------------------------
// 3. The transforms actually reduce: flood_min and the skeleton relay.
// ---------------------------------------------------------------------------

TEST(CompileReduction, FloodMinCacheSavesOverThirtyPercent) {
  Rng rng(13);
  Graph g = make_random_connected(48, 36, rng);
  EngineOptions opt;
  opt.compile.cache_resends = true;
  const auto base = run_algorithm(g, flood_min_algorithm());
  const auto compiled = run_algorithm(g, flood_min_algorithm(), opt);
  EXPECT_EQ(compiled.outputs, base.outputs);
  EXPECT_EQ(compiled.rounds, base.rounds);
  EXPECT_EQ(compiled.total_words, base.total_words);
  // Once the minimum stabilizes (a handful of rounds on a connected
  // graph), every further broadcast is a cache hit; at n rounds total the
  // wire carries a small fraction of the nominal words.
  EXPECT_LT(compiled.words_sent * 10, base.total_words * 7)
      << "expected > 30% reduction, sent " << compiled.words_sent << " of "
      << base.total_words;
}

TEST(CompileReduction, SkeletonRelayPrunesAndPreservesOutputs) {
  Rng rng(14);
  Graph g = make_random_connected(40, 60, rng);  // dense: skeleton is sparse
  const Skeleton sk = compute_skeleton(g);
  EXPECT_EQ(sk.tree_edges, g.num_nodes() - 1);  // connected: one tree

  const auto base = run_algorithm(g, flood_min_algorithm());
  EngineOptions cache_only;
  cache_only.compile.cache_resends = true;
  const auto cached = run_algorithm(g, flood_min_algorithm(), cache_only);

  EngineOptions opt;
  opt.compile.cache_resends = true;
  opt.compile.skeleton = &sk;
  const auto factory = phase_as_algorithm(
      compile_phase(make_flood_min(), {.default_words = {},
                                       .default_first_round_only = false,
                                       .skeleton_broadcasts = true}));
  const auto relayed = run_algorithm(g, factory, opt);
  // Flooding the minimum is idempotent, so pruning to the spanning tree
  // changes neither the outputs nor the fixed n-round schedule — only the
  // wire cost, which drops below even the cached full-graph run.
  EXPECT_EQ(relayed.outputs, base.outputs);
  EXPECT_EQ(relayed.rounds, base.rounds);
  EXPECT_EQ(relayed.total_words, base.total_words);
  EXPECT_EQ(relayed.words_sent + relayed.words_suppressed,
            base.total_words);
  EXPECT_LT(relayed.words_sent, cached.words_sent);
}

TEST(CompileReduction, CacheSuppressesExactRepeatsOnly) {
  // Alternating payloads never hit the one-slot cache; constant payloads
  // hit from the second round on every directed edge.
  Graph g = make_ring(6);
  struct Alternator final : NodeProgram {
    int round = 0;
    void on_send(NodeContext& ctx) override {
      ctx.broadcast({Value(round % 2)});
    }
    void on_receive(NodeContext& ctx) override {
      if (++round == 4) {
        ctx.set_output(1);
        ctx.terminate();
      }
    }
  };
  struct Constant final : NodeProgram {
    int round = 0;
    void on_send(NodeContext& ctx) override { ctx.broadcast({Value(7)}); }
    void on_receive(NodeContext& ctx) override {
      if (++round == 4) {
        ctx.set_output(1);
        ctx.terminate();
      }
    }
  };
  EngineOptions opt;
  opt.compile.cache_resends = true;
  const auto alternating = run_algorithm(
      g, [](NodeId) { return std::make_unique<Alternator>(); }, opt);
  EXPECT_EQ(alternating.messages_suppressed, 0);
  const auto constant = run_algorithm(
      g, [](NodeId) { return std::make_unique<Constant>(); }, opt);
  // 12 directed edges, 4 rounds: rounds 2..4 are all hits.
  EXPECT_EQ(constant.messages_suppressed, 12 * 3);
  EXPECT_EQ(constant.messages_sent, 12);
}

// ---------------------------------------------------------------------------
// 4. Composition hazards.
// ---------------------------------------------------------------------------

/// Line of 3: every node re-broadcasts a constant each round; the minimum-
/// identifier node terminates after round 2, so its neighbors' suppressed
/// re-sends meet a terminating receiver exactly when active_neighbors
/// shrinks — the PR 3 stale-tentative hazard with caching in play.
TEST(CompileHazards, SuppressedResendMeetsTerminatingNeighbor) {
  Graph g = make_line(3);
  struct EarlyQuit final : NodeProgram {
    int round = 0;
    void on_send(NodeContext& ctx) override { ctx.broadcast({Value(9)}); }
    void on_receive(NodeContext& ctx) override {
      ++round;
      const bool smallest = [&] {
        for (NodeId u : ctx.active_neighbors()) {
          if (ctx.neighbor_id(u) < ctx.id()) return false;
        }
        return true;
      }();
      if ((smallest && round == 2) || round == 5) {
        ctx.set_output(round);
        ctx.terminate();
      }
    }
  };
  const auto factory = [](NodeId) { return std::make_unique<EarlyQuit>(); };
  const auto base = record_run(g, empty_predictions(), factory,
                               EngineOptions{}, TraceDetail::kPayloads);
  EngineOptions opt;
  opt.compile.cache_resends = true;
  const auto compiled =
      record_run(g, empty_predictions(), factory, opt, TraceDetail::kRounds);
  EXPECT_EQ(compiled.result.outputs, base.result.outputs);
  EXPECT_EQ(compiled.result.termination_round, base.result.termination_round);
  EXPECT_EQ(compiled.result.total_messages, base.result.total_messages);
  EXPECT_GT(compiled.result.messages_suppressed, 0);
  // The termination notices (Section 7 convention) are charged through the
  // same account but are never suppressible.
  EXPECT_EQ(compiled.result.messages_sent + compiled.result.messages_suppressed,
            base.result.total_messages);
}

TEST(CompileHazards, CompiledTemplatesMatchUncompiledAtEveryCut) {
  Rng rng(15);
  Graph g = make_gnp(14, 0.25, rng);
  auto mis_pred = flip_bits(g, mis_correct_prediction(g, rng), 4, rng);
  auto match_pred = matching_correct_prediction(g, rng);

  struct Case {
    const char* name;
    ProgramFactory (*make_factory)();
    const Predictions* pred;
  };
  const Case cases[] = {
      {"mis_simple_greedy", &mis_simple_greedy, &mis_pred},
      {"matching_simple_greedy", &matching_simple_greedy, &match_pred},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const auto full = run_with_predictions(g, *c.pred, c.make_factory());
    ASSERT_TRUE(full.completed);
    for (int cut = 1; cut < full.rounds; ++cut) {
      EngineOptions plain;
      plain.max_rounds = cut;
      EngineOptions compiled = plain;
      compiled.compile = cache_and_defaults();
      const auto a = run_with_predictions(g, *c.pred, c.make_factory(), plain);
      const auto b =
          run_with_predictions(g, *c.pred, c.make_factory(), compiled);
      EXPECT_EQ(a.outputs, b.outputs) << "cut " << cut;
      EXPECT_EQ(a.total_words, b.total_words) << "cut " << cut;
      EXPECT_EQ(b.words_sent + b.words_suppressed, a.total_words)
          << "cut " << cut;
    }
  }
}

// ---------------------------------------------------------------------------
// 5. Enforced CONGEST: suppression never touches a link budget.
// ---------------------------------------------------------------------------

/// Every message in this program equals the declared default, so under
/// decode_defaults the wire goes silent: 2-word broadcasts that would blow
/// a B = 1 budget never reach the link layer.
struct AllDefault final : NodeProgram {
  int round = 0;
  void on_send(NodeContext& ctx) override {
    ctx.declare_default({Value(5), Value(6)});
    ctx.broadcast({Value(5), Value(6)});
  }
  void on_receive(NodeContext& ctx) override {
    if (++round == 3) {
      ctx.set_output(1);
      ctx.terminate();
    }
  }
};

TEST(CompileCongest, SuppressionBypassesEnforcedBudgetsWithoutDoubleCount) {
  Graph g = make_line(3);
  const auto factory = [](NodeId) { return std::make_unique<AllDefault>(); };
  const auto nominal = run_algorithm(g, factory);

  for (const CongestPolicy policy :
       {CongestPolicy::kDefer, CongestPolicy::kTruncate}) {
    SCOPED_TRACE(static_cast<int>(policy));
    EngineOptions enforced;
    enforced.congest_policy = policy;
    enforced.congest_word_limit = 1;
    const auto uncompiled = run_algorithm(g, factory, enforced);

    EngineOptions compiled = enforced;
    compiled.compile.decode_defaults = true;
    const auto r = run_algorithm(g, factory, compiled);
    // Nothing crossed the wire, so B = 1 enforcement has nothing to defer
    // or truncate and the run is byte-equal to the unenforced one.
    EXPECT_GT(r.messages_suppressed, 0);
    EXPECT_EQ(r.messages_sent, 0);
    EXPECT_EQ(r.deferred_messages, 0);
    EXPECT_EQ(r.deferred_words, 0);
    EXPECT_EQ(r.truncated_messages, 0);
    EXPECT_EQ(r.link_backlog_peak_words, 0);
    EXPECT_EQ(r.rounds, nominal.rounds);
    EXPECT_EQ(r.outputs, nominal.outputs);
    EXPECT_EQ(r.words_sent + r.words_suppressed, nominal.total_words);
    if (policy == CongestPolicy::kDefer) {
      // The uncompiled 2-word messages DO hit the B = 1 budget — the
      // contrast that makes the bypass observable.
      EXPECT_GT(uncompiled.deferred_words, 0);
      EXPECT_GT(uncompiled.link_backlog_peak_words, 0);
    } else {
      EXPECT_GT(uncompiled.truncated_messages, 0);
    }
  }
}

}  // namespace
}  // namespace dgap
