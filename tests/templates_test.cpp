#include <gtest/gtest.h>

#include "coloring/linial.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/algorithms.hpp"
#include "mis/checkers.hpp"
#include "mis/gather.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"
#include "templates/templates.hpp"

namespace dgap {
namespace {

struct Regime {
  const char* name;
  int flips;  // -1 means all-ones adversarial
};

Predictions make_regime(const Graph& g, const Regime& regime, Rng& rng) {
  if (regime.flips < 0) return all_same(g, 1);
  return flip_bits(g, mis_correct_prediction(g, rng), regime.flips, rng);
}

const Regime kRegimes[] = {
    {"correct", 0}, {"two_flips", 2}, {"six_flips", 6}, {"all_ones", -1}};

class MisTemplateTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

using Factory = ProgramFactory (*)();
Factory kFactories[] = {
    &mis_simple_greedy,      &mis_simple_linial,   &mis_consecutive_gather,
    &mis_consecutive_linial, &mis_interleaved_gather, &mis_parallel_linial,
    &mis_simple_bw,
};
const char* kFactoryNames[] = {
    "simple_greedy",      "simple_linial",      "consecutive_gather",
    "consecutive_linial", "interleaved_gather", "parallel_linial",
    "simple_bw",
};

TEST_P(MisTemplateTest, ValidOutputAcrossRegimesAndGraphs) {
  const auto [factory_index, regime_index] = GetParam();
  Rng rng(1000 + 17 * factory_index + regime_index);
  for (auto make : {+[](Rng& r) { Graph g = make_line(13); randomize_ids(g, r); return g; },
                    +[](Rng& r) { Graph g = make_ring(10); randomize_ids(g, r); return g; },
                    +[](Rng& r) { Graph g = make_grid(4, 4); randomize_ids(g, r); return g; },
                    +[](Rng& r) { return make_gnp(15, 0.25, r); },
                    +[](Rng& r) { Graph g = make_wheel_fk(6); randomize_ids(g, r); return g; }}) {
    Graph g = make(rng);
    auto pred = make_regime(g, kRegimes[regime_index], rng);
    auto result =
        run_with_predictions(g, pred, kFactories[factory_index]());
    EXPECT_TRUE(result.completed)
        << kFactoryNames[factory_index] << " / "
        << kRegimes[regime_index].name;
    EXPECT_TRUE(is_valid_mis(g, result.outputs))
        << kFactoryNames[factory_index] << " / "
        << kRegimes[regime_index].name << ": " << check_mis(g, result.outputs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplatesAllRegimes, MisTemplateTest,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kFactoryNames[std::get<0>(info.param)]) + "_" +
             kRegimes[std::get<1>(info.param)].name;
    });

// ---- Consistency: every template terminates in 3 rounds on correct preds -------

TEST(TemplateConsistency, AllTemplatesConsistencyThree) {
  Rng rng(2);
  Graph g = make_random_connected(40, 20, rng);
  auto pred = mis_correct_prediction(g, rng);
  for (int i = 0; i < 7; ++i) {
    auto result = run_with_predictions(g, pred, kFactories[i]());
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << kFactoryNames[i];
    EXPECT_EQ(result.rounds, 3) << kFactoryNames[i];
  }
}

// ---- Observation 7: Simple(init, Greedy) is η1+3 and η2+4 degrading -------------

TEST(SimpleTemplate, Observation7Bounds) {
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    Graph g = make_gnp(16, 0.2, rng);
    randomize_ids(g, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(10)), rng);
    auto result = run_with_predictions(g, pred, mis_simple_greedy());
    const int e1 = eta1_mis(g, pred);
    const int e2 = eta2_mis(g, pred);
    EXPECT_LE(result.rounds, e1 + 3) << "trial " << trial;
    EXPECT_LE(result.rounds, e2 + 4) << "trial " << trial;
  }
}

// ---- Lemma 8: Consecutive is 2f(η)-degrading and robust w.r.t. R ----------------

TEST(ConsecutiveTemplate, Lemma8DegradationAndRobustness) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(14, 0.25, rng);
    randomize_ids(g, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(8)), rng);
    auto result = run_with_predictions(g, pred, mis_consecutive_gather());
    const int e1 = eta1_mis(g, pred);
    // 2f(η) + c(n): f = μ1 for Greedy MIS, c = 3.
    EXPECT_LE(result.rounds, 2 * std::max(e1, 1) + 3 + 2) << "trial " << trial;
    // Robustness: O(r(n)) — the budgeted structure caps the total at
    // c + (r + c') + c' + r.
    const int r = mis_gather_total_rounds(g.num_nodes());
    EXPECT_LE(result.rounds, 3 + (r + 1) + 1 + r);
  }
}

// ---- Lemma 11 / Corollary 12: Parallel = min of the two behaviours -------------

TEST(ParallelTemplate, Corollary12MinBound) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(14, 0.3, rng);
    randomize_ids(g, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(8)), rng);
    auto result = run_with_predictions(g, pred, mis_parallel_linial());
    const int e2 = eta2_mis(g, pred);
    const int r1 = linial_total_rounds(g.id_bound(), g.max_degree());
    const int r1_even = r1 + (r1 % 2);
    const int degrading = e2 + 4;
    const int robust = 3 + r1_even + (g.max_degree() + 2);
    EXPECT_LE(result.rounds, std::max(degrading, 3))
        << "trial " << trial << " (degradation side)";
    EXPECT_LE(result.rounds, robust) << "trial " << trial;
  }
}

// The robustness side really bites: with adversarial all-ones predictions
// on a line with sorted ids, Greedy alone would take Θ(n) rounds, but the
// Parallel algorithm is capped by the reference bound, which for fixed Δ
// grows only like log* d.
TEST(ParallelTemplate, RobustnessCapsWorstCase) {
  Graph g = make_line(400);
  sorted_ids(g);
  auto pred = all_same(g, 1);
  auto greedy_only = run_with_predictions(g, pred, mis_simple_greedy());
  auto parallel = run_with_predictions(g, pred, mis_parallel_linial());
  EXPECT_TRUE(is_valid_mis(g, parallel.outputs));
  EXPECT_GE(greedy_only.rounds, 150);  // Θ(n)
  const int r1 = linial_total_rounds(g.id_bound(), g.max_degree());
  EXPECT_LE(parallel.rounds, 3 + r1 + 1 + g.max_degree() + 2);
  EXPECT_LT(parallel.rounds, greedy_only.rounds / 4);
}

// ---- Lemma 9 / Corollary 10: Interleaved --------------------------------------

TEST(InterleavedTemplate, DegradationBound) {
  Rng rng(6);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(14, 0.25, rng);
    randomize_ids(g, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(6)), rng);
    auto result = run_with_predictions(g, pred, mis_interleaved_gather());
    const int e1 = eta1_mis(g, pred);
    // 2f(η) + c(n) + O(1): segments double, so the U time spent before the
    // solving segment is < 2 f(η) + first-segment slack.
    EXPECT_LE(result.rounds, 2 * std::max(e1, 2) + 3 + 4) << "trial " << trial;
  }
}

TEST(InterleavedTemplate, RobustWorstCase) {
  // All-ones on a sorted line: the gather reference phases solve it in
  // O(n) total rounds even though Greedy alone is also Θ(n); the point is
  // the bound c + 2·Σ r_i holds.
  Graph g = make_line(120);
  sorted_ids(g);
  auto pred = all_same(g, 1);
  auto result = run_with_predictions(g, pred, mis_interleaved_gather());
  EXPECT_TRUE(is_valid_mis(g, result.outputs));
  int total_ref = 0;
  for (int i = 1; (1 << i) < 120 - 1; ++i) total_ref += 1 << i;
  total_ref += 1 << [] {
    int m = 1;
    while ((1 << m) < 119) ++m;
    return m;
  }();
  EXPECT_LE(result.rounds, 3 + 2 * total_ref + 2);
}

// ---- Section 9.1: U_bw exploits black/white structure ---------------------------

TEST(BwTemplate, GridStripesFastDespiteHugeEta1) {
  const NodeId w = 12, h = 12;
  Graph g = make_grid(w, h);
  Rng rng(7);
  randomize_ids(g, rng);
  auto pred = grid_stripe_prediction(w, h);
  ASSERT_EQ(eta1_mis(g, pred), w * h);
  ASSERT_EQ(eta_bw_mis(g, pred), 4);
  auto bw = run_with_predictions(g, pred, mis_simple_bw());
  EXPECT_TRUE(is_valid_mis(g, bw.outputs)) << check_mis(g, bw.outputs);
  // U_bw processes 4-node monochromatic blocks: constant rounds, far below
  // the grid size.
  EXPECT_LE(bw.rounds, 2 * (2 * 4) + 4);
  auto plain = run_with_predictions(g, pred, mis_simple_greedy());
  EXPECT_TRUE(is_valid_mis(g, plain.outputs));
}

TEST(BwTemplate, ParallelBwCombinesBothWorlds) {
  // Section 9.1's closing remark realized: U_bw in the Parallel template.
  // On the striped grid it inherits U_bw's constant-round behaviour; on an
  // adversarial sorted line it is capped by the Linial reference.
  Rng rng(12);
  {
    Graph g = make_grid(12, 12);
    randomize_ids(g, rng);
    auto pred = grid_stripe_prediction(12, 12);
    auto r = run_with_predictions(g, pred, mis_parallel_bw());
    EXPECT_TRUE(is_valid_mis(g, r.outputs)) << check_mis(g, r.outputs);
    EXPECT_LE(r.rounds, 24);  // O(eta_bw), far below the grid size
  }
  {
    Graph g = make_line(300);
    sorted_ids(g);
    auto pred = all_same(g, 1);
    auto r = run_with_predictions(g, pred, mis_parallel_bw());
    EXPECT_TRUE(is_valid_mis(g, r.outputs));
    const int r1 = linial_total_rounds(g.id_bound(), g.max_degree());
    EXPECT_LE(r.rounds, 3 + r1 + 1 + 1 + g.max_degree() + 2 + 1);
  }
  // Consistency is inherited from the initialization algorithm.
  {
    Graph g = make_grid(6, 6);
    randomize_ids(g, rng);
    auto pred = mis_correct_prediction(g, rng);
    auto r = run_with_predictions(g, pred, mis_parallel_bw());
    EXPECT_EQ(r.rounds, 3);
  }
}

// ---- Trade-off knob (E14): smaller λ favours robustness -------------------------

TEST(TradeoffKnob, LambdaZeroSkipsUniformPhase) {
  Rng rng(8);
  Graph g = make_line(60);
  sorted_ids(g);
  auto pred = all_same(g, 1);
  // λ = 0: straight to the reference after init (robust, not degrading).
  auto r0 = run_with_predictions(g, pred, mis_consecutive_linial_lambda(0, 1));
  // λ = 1: full Lemma 8 behaviour.
  auto r1 = run_with_predictions(g, pred, mis_consecutive_linial_lambda(1, 1));
  EXPECT_TRUE(is_valid_mis(g, r0.outputs));
  EXPECT_TRUE(is_valid_mis(g, r1.outputs));
  EXPECT_LT(r0.rounds, r1.rounds);  // bad predictions: skipping U wins
}

}  // namespace
}  // namespace dgap
