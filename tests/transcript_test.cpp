// The transcript subsystem (sim/transcript.hpp):
//
//  1. Codec round-trip: encode(decode(x)) == x and decode(encode(t)) == t,
//     fuzzed over random event streams at every detail level, including
//     extreme payload values (kUndefined = INT64_MIN).
//  2. Recording: a TranscriptWriter's bytes decode to exactly the run the
//     engine executed, and re-encoding reproduces the bytes.
//  3. Robustness: truncated or corrupted files fail with DGAP_REQUIRE
//     (std::invalid_argument) — never UB (this test runs under
//     asan/ubsan in CI).
//  4. Verification: an identical re-run passes run_verified; a perturbed
//     engine (different algorithm seed) fails with DGAP_ASSERT naming the
//     exact first divergent round.
//  5. Replay: ReplayEngine reconstructs active sets, outputs, and
//     termination rounds bit-identically to the live RunResult.
//  6. Diff: first divergent (round, field) between two recorded runs.
//  7. Golden regression: the committed transcripts under tests/golden/
//     verify against a live re-run of their canonical cases
//     (DGAP_GOLDEN_DIR; the same files gate CI via `dgap_trace verify`).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "cases.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "random/luby.hpp"
#include "sim/transcript.hpp"

namespace dgap {
namespace {

// ---------------------------------------------------------------------------
// Fuzzed codec round-trip
// ---------------------------------------------------------------------------

Value random_value(Rng& rng) {
  switch (rng.next_below(8)) {
    case 0: return kUndefined;  // INT64_MIN — the zigzag worst case
    case 1: return std::numeric_limits<Value>::max();
    case 2: return -1;
    default: return rng.uniform(-1000, 1000);
  }
}

Transcript random_transcript(Rng& rng) {
  Transcript t;
  t.detail = static_cast<TraceDetail>(rng.next_below(3));
  t.label = "fuzz_" + std::to_string(rng.next_below(1000));
  if (rng.flip(0.5)) {
    GraphSpec spec;
    spec.family = static_cast<GraphSpec::Family>(
        rng.next_below(static_cast<std::uint64_t>(GraphSpec::Family::kGnm) + 1));
    spec.a = rng.uniform(0, 1 << 20);
    spec.b = rng.uniform(0, 100);
    spec.p = rng.uniform01();
    spec.seed = rng.next();
    spec.ids = static_cast<GraphSpec::IdPolicy>(rng.next_below(3));
    t.spec = spec;
  }
  t.n = static_cast<NodeId>(rng.uniform(1, 40));
  t.max_rounds = static_cast<int>(rng.uniform(0, 1'000'000));
  t.congest_word_limit = static_cast<int>(rng.uniform(0, 8));
  t.congest_policy = static_cast<CongestPolicy>(rng.next_below(4));
  const int rounds = static_cast<int>(rng.next_below(8));
  for (int r = 1; r <= rounds; ++r) {
    TranscriptRound round;
    round.round = r;
    round.active = static_cast<NodeId>(rng.uniform(0, t.n));
    if (t.detail >= TraceDetail::kMessages) {
      const int messages = static_cast<int>(rng.next_below(10));
      for (int i = 0; i < messages; ++i) {
        TranscriptMessage m;
        m.from = static_cast<NodeId>(rng.next_below(
            static_cast<std::uint64_t>(t.n)));
        m.to = static_cast<NodeId>(rng.next_below(
            static_cast<std::uint64_t>(t.n)));
        m.channel = static_cast<int>(rng.uniform(-3, 3));
        m.len = static_cast<std::uint32_t>(rng.next_below(6));
        m.truncated = rng.flip(0.1);
        if (t.detail == TraceDetail::kPayloads) {
          for (std::uint32_t w = 0; w < m.len; ++w) {
            m.words.push_back(random_value(rng));
          }
        }
        round.messages.push_back(std::move(m));
      }
    }
    const int terms = static_cast<int>(rng.next_below(4));
    for (int i = 0; i < terms; ++i) {
      TranscriptTermination term;
      term.node = static_cast<NodeId>(rng.next_below(
          static_cast<std::uint64_t>(t.n)));
      term.output = random_value(rng);
      const int edges = static_cast<int>(rng.next_below(3));
      for (int e = 0; e < edges; ++e) {
        term.edge_outputs.emplace_back(
            static_cast<NodeId>(rng.next_below(
                static_cast<std::uint64_t>(t.n))),
            random_value(rng));
      }
      round.terminations.push_back(std::move(term));
    }
    t.rounds.push_back(std::move(round));
  }
  t.summary.completed = rng.flip(0.5);
  t.summary.rounds = rounds;
  t.summary.total_messages = rng.uniform(0, 1 << 20);
  t.summary.total_words = rng.uniform(0, 1 << 20);
  return t;
}

TEST(TranscriptCodec, FuzzedRoundTrip) {
  Rng rng(7001);
  for (int iter = 0; iter < 200; ++iter) {
    const Transcript t = random_transcript(rng);
    const std::vector<std::uint8_t> bytes = encode_transcript(t);
    const Transcript back = decode_transcript(bytes);
    ASSERT_EQ(t, back) << "iteration " << iter;
    // Encoding the decoded form reproduces the bytes exactly.
    ASSERT_EQ(bytes, encode_transcript(back)) << "iteration " << iter;
  }
}

TEST(TranscriptCodec, EveryTruncationFailsCleanly) {
  Rng rng(7002);
  const Transcript t = random_transcript(rng);
  const std::vector<std::uint8_t> bytes = encode_transcript(t);
  ASSERT_GT(bytes.size(), 0u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(decode_transcript(prefix), std::invalid_argument)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(TranscriptCodec, EveryByteFlipFailsCleanly) {
  Rng rng(7003);
  Transcript t;
  while (t.rounds.empty()) t = random_transcript(rng);
  const std::vector<std::uint8_t> bytes = encode_transcript(t);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> corrupt = bytes;
      corrupt[i] ^= flip;
      try {
        const Transcript back = decode_transcript(corrupt);
        // A flip that still decodes must not silently pass itself off as
        // the original (it cannot: checksums cover every byte).
        ADD_FAILURE() << "corrupt byte " << i << " (^" << int(flip)
                      << ") decoded without error";
        (void)back;
      } catch (const std::invalid_argument&) {
        // expected
      }
    }
  }
}

TEST(TranscriptCodec, GarbageInputFailsCleanly) {
  EXPECT_THROW(decode_transcript({}), std::invalid_argument);
  Rng rng(7004);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint8_t> garbage(rng.next_below(200));
    for (std::uint8_t& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    EXPECT_THROW(decode_transcript(garbage), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Recording real runs
// ---------------------------------------------------------------------------

Graph fixture_graph() {
  Rng rng(505);
  Graph g = make_gnp(64, 6.0 / 64, rng);
  randomize_ids(g, rng);
  return g;
}

TEST(TranscriptRecord, DecodeMatchesRunAndReencodes) {
  const Graph g = fixture_graph();
  EngineOptions options;
  options.record_active_per_round = true;
  options.record_terminations = true;
  const RecordedRun run =
      record_run(g, {}, luby_mis_algorithm(11), options,
                 TraceDetail::kPayloads, "luby_fixture");
  const Transcript t = decode_transcript(run.transcript);

  EXPECT_EQ(t.label, "luby_fixture");
  EXPECT_FALSE(t.spec.has_value());
  EXPECT_EQ(t.n, g.num_nodes());
  EXPECT_EQ(t.summary.completed, run.result.completed);
  EXPECT_EQ(t.summary.rounds, run.result.rounds);
  EXPECT_EQ(t.summary.total_messages, run.result.total_messages);
  EXPECT_EQ(t.summary.total_words, run.result.total_words);
  ASSERT_EQ(static_cast<int>(t.rounds.size()), run.result.rounds);

  // The per-round view matches the spine-recorded RunResult fields. The
  // trailer totals are the engine's sender-side accounting; the round
  // blocks hold *deliveries*, which exclude sends charged to nodes that
  // had already terminated (see deliver_round_messages), so the walked
  // counts are a lower bound.
  std::int64_t messages = 0, words = 0;
  for (std::size_t i = 0; i < t.rounds.size(); ++i) {
    EXPECT_EQ(t.rounds[i].active, run.result.active_per_round[i]);
    std::vector<NodeId> terms;
    for (const TranscriptTermination& term : t.rounds[i].terminations) {
      terms.push_back(term.node);
    }
    EXPECT_EQ(terms, run.result.terminations_per_round[i]);
    for (const TranscriptMessage& m : t.rounds[i].messages) {
      EXPECT_EQ(m.words.size(), m.len);
      messages += 1;
      words += m.len;
    }
  }
  EXPECT_LE(messages, run.result.total_messages);
  EXPECT_LE(words, run.result.total_words);
  EXPECT_GT(messages, 0);

  // encode_transcript is byte-identical to the writer.
  EXPECT_EQ(encode_transcript(t), run.transcript);
}

TEST(TranscriptRecord, DetailLevelsNest) {
  const Graph g = fixture_graph();
  const RecordedRun payloads = record_run(g, {}, luby_mis_algorithm(11), {},
                                          TraceDetail::kPayloads, "l");
  const RecordedRun messages = record_run(g, {}, luby_mis_algorithm(11), {},
                                          TraceDetail::kMessages, "l");
  const RecordedRun rounds = record_run(g, {}, luby_mis_algorithm(11), {},
                                        TraceDetail::kRounds, "l");
  const Transcript tp = decode_transcript(payloads.transcript);
  const Transcript tm = decode_transcript(messages.transcript);
  const Transcript tr = decode_transcript(rounds.transcript);
  ASSERT_EQ(tp.rounds.size(), tm.rounds.size());
  ASSERT_EQ(tp.rounds.size(), tr.rounds.size());
  EXPECT_LT(rounds.transcript.size(), messages.transcript.size());
  EXPECT_LT(messages.transcript.size(), payloads.transcript.size());
  for (std::size_t i = 0; i < tp.rounds.size(); ++i) {
    EXPECT_EQ(tp.rounds[i].active, tr.rounds[i].active);
    EXPECT_TRUE(tr.rounds[i].messages.empty());
    ASSERT_EQ(tp.rounds[i].messages.size(), tm.rounds[i].messages.size());
    for (std::size_t j = 0; j < tp.rounds[i].messages.size(); ++j) {
      const TranscriptMessage& p = tp.rounds[i].messages[j];
      const TranscriptMessage& m = tm.rounds[i].messages[j];
      EXPECT_EQ(p.from, m.from);
      EXPECT_EQ(p.to, m.to);
      EXPECT_EQ(p.len, m.len);
      EXPECT_TRUE(m.words.empty());
    }
    EXPECT_EQ(tp.rounds[i].terminations, tr.rounds[i].terminations);
  }
}

// ---------------------------------------------------------------------------
// Streaming (write-through) recording
// ---------------------------------------------------------------------------

TEST(TranscriptStream, FileIsByteIdenticalToInMemoryRecording) {
  const Graph g = fixture_graph();
  const std::string path = ::testing::TempDir() + "dgap_stream_test.dgaptr";
  for (const TraceDetail detail :
       {TraceDetail::kRounds, TraceDetail::kMessages, TraceDetail::kPayloads}) {
    const RecordedRun buffered =
        record_run(g, {}, luby_mis_algorithm(11), {}, detail, "stream");
    const StreamedRun streamed = record_run_to_file(
        path, g, {}, luby_mis_algorithm(11), {}, detail, "stream");
    EXPECT_EQ(streamed.result.rounds, buffered.result.rounds);
    EXPECT_EQ(streamed.result.outputs, buffered.result.outputs);
    EXPECT_EQ(streamed.transcript_bytes, buffered.transcript.size());
    EXPECT_EQ(read_transcript_file(path), buffered.transcript)
        << "detail " << static_cast<int>(detail);
    // The decoder accepts the flushed file (checksums carried across
    // flushes land on the same values).
    EXPECT_NO_THROW(decode_transcript(read_transcript_file(path)));
  }
  std::remove(path.c_str());
}

TEST(TranscriptStream, BufferStaysBoundedByOneRoundBlock) {
  // Drive the sink directly with 64 equal-size rounds: the high-water mark
  // must be one round block (~1/64 of the file), the witness that the
  // writer flushes per round instead of dumping once at the end.
  const std::string path = ::testing::TempDir() + "dgap_stream_bound.dgaptr";
  constexpr NodeId kN = 128;
  constexpr int kRounds = 64;
  TranscriptWriter writer(TraceDetail::kPayloads, "bound");
  writer.stream_to(path);
  EngineOptions options;
  writer.on_run_begin(kN, options);
  for (int r = 1; r <= kRounds; ++r) {
    writer.on_round_begin(r, kN);
    for (NodeId v = 0; v + 1 < kN; ++v) {
      const Value words[4] = {1, 2, 3, v};
      writer.on_message({r, v, static_cast<NodeId>(v + 1), 0,
                         WordSpan(words, 4), false});
    }
  }
  RunResult result;
  result.completed = false;
  result.rounds = kRounds;
  writer.on_run_end(result);
  EXPECT_GT(writer.buffer_high_water(), 0u);
  EXPECT_LE(writer.buffer_high_water(),
            writer.streamed_bytes() / (kRounds / 2));
  EXPECT_EQ(read_transcript_file(path).size(), writer.streamed_bytes());
  EXPECT_NO_THROW(decode_transcript(read_transcript_file(path)));
  std::remove(path.c_str());
}

TEST(TranscriptStream, MisuseFailsCleanly) {
  const Graph g = fixture_graph();
  const std::string path = ::testing::TempDir() + "dgap_stream_misuse.dgaptr";
  TranscriptWriter writer(TraceDetail::kRounds, "misuse");
  writer.stream_to(path);
  EXPECT_THROW(writer.stream_to(path), std::invalid_argument);
  EngineOptions options;
  options.trace_sink = &writer;
  Engine engine(g, {}, luby_mis_algorithm(11), options);
  (void)engine.run();
  // The bytes live on disk, not in the writer.
  EXPECT_THROW(writer.bytes(), std::invalid_argument);
  EXPECT_THROW(writer.take_bytes(), std::invalid_argument);
  // And stream_to after the run began is rejected too.
  TranscriptWriter late(TraceDetail::kRounds, "late");
  EngineOptions late_options;
  late_options.trace_sink = &late;
  Engine late_engine(g, {}, luby_mis_algorithm(11), late_options);
  (void)late_engine.run();
  EXPECT_THROW(late.stream_to(path), std::invalid_argument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------------

TEST(TranscriptVerify, IdenticalRerunPasses) {
  const Graph g = fixture_graph();
  const RecordedRun run =
      record_run(g, {}, luby_mis_algorithm(11), {}, TraceDetail::kPayloads);
  const Transcript golden = decode_transcript(run.transcript);
  const RunResult result =
      run_verified(g, {}, luby_mis_algorithm(11), {}, golden);
  EXPECT_EQ(result.outputs, run.result.outputs);
  EXPECT_EQ(result.rounds, run.result.rounds);
}

TEST(TranscriptVerify, PerturbedEngineNamesFirstDivergentRound) {
  const Graph g = fixture_graph();
  const RecordedRun run =
      record_run(g, {}, luby_mis_algorithm(11), {}, TraceDetail::kPayloads);
  const Transcript golden = decode_transcript(run.transcript);

  // A different Luby seed produces different round-1 coin payloads, so
  // verification must fail at round 1 exactly, via DGAP_ASSERT.
  try {
    run_verified(g, {}, luby_mis_algorithm(12), {}, golden);
    FAIL() << "perturbed run verified against the golden transcript";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("transcript divergence at round 1"),
              std::string::npos)
        << "divergence message does not name round 1: " << what;
  }
}

TEST(TranscriptVerify, InstanceMismatchIsRequireNotAssert) {
  const Graph g = fixture_graph();
  const RecordedRun run =
      record_run(g, {}, luby_mis_algorithm(11), {}, TraceDetail::kPayloads);
  const Transcript golden = decode_transcript(run.transcript);
  Rng rng(99);
  const Graph other = make_gnp(32, 0.2, rng);
  EXPECT_THROW(run_verified(other, {}, luby_mis_algorithm(11), {}, golden),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

TEST(TranscriptReplay, ReconstructsRunStateRoundByRound) {
  const Graph g = fixture_graph();
  EngineOptions options;
  options.record_active_per_round = true;
  options.record_terminations = true;
  const RecordedRun run =
      record_run(g, {}, luby_mis_algorithm(11), options,
                 TraceDetail::kPayloads);
  const Transcript t = decode_transcript(run.transcript);

  ReplayEngine replay(t);
  EXPECT_EQ(replay.n(), g.num_nodes());
  EXPECT_EQ(replay.round(), 0);
  EXPECT_EQ(replay.active_count(), g.num_nodes());

  int steps = 0;
  while (replay.step()) {
    ++steps;
    EXPECT_EQ(replay.round(), steps);
    // Start-of-round active count matches the recorded spine data.
    EXPECT_EQ(replay.active_count(),
              run.result.active_per_round[static_cast<std::size_t>(steps - 1)]);
    EXPECT_EQ(static_cast<NodeId>(replay.active_nodes().size()),
              replay.active_count());
    // Inboxes partition the round's messages.
    std::size_t inbox_total = 0;
    for (NodeId v = 0; v < replay.n(); ++v) {
      inbox_total += replay.inbox(v).size();
    }
    EXPECT_EQ(inbox_total, replay.messages().size());
  }
  EXPECT_EQ(steps, run.result.rounds);
  EXPECT_TRUE(replay.done());

  // After the full walk the accumulated outputs and termination rounds are
  // the RunResult's, bit-identically.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(replay.output(v), run.result.outputs[static_cast<std::size_t>(v)]);
    EXPECT_EQ(replay.termination_round(v),
              run.result.termination_round[static_cast<std::size_t>(v)]);
  }

  replay.reset();
  EXPECT_EQ(replay.round(), 0);
  EXPECT_EQ(replay.active_count(), g.num_nodes());
  EXPECT_TRUE(replay.step());
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

TEST(TranscriptDiff, EqualRunsAreEqual) {
  const Graph g = fixture_graph();
  const RecordedRun a =
      record_run(g, {}, luby_mis_algorithm(11), {}, TraceDetail::kPayloads);
  const RecordedRun b =
      record_run(g, {}, luby_mis_algorithm(11), {}, TraceDetail::kPayloads);
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(diff_transcripts(decode_transcript(a.transcript),
                             decode_transcript(b.transcript)),
            std::nullopt);
}

TEST(TranscriptDiff, SeedChangeReportsFirstDivergentRound) {
  const Graph g = fixture_graph();
  const RecordedRun a =
      record_run(g, {}, luby_mis_algorithm(11), {}, TraceDetail::kPayloads);
  const RecordedRun b =
      record_run(g, {}, luby_mis_algorithm(12), {}, TraceDetail::kPayloads);
  const auto d = diff_transcripts(decode_transcript(a.transcript),
                                  decode_transcript(b.transcript));
  ASSERT_TRUE(d.has_value());
  // Luby coins differ from the very first exchange.
  EXPECT_EQ(d->round, 1);
  EXPECT_FALSE(d->field.empty());
}

// ---------------------------------------------------------------------------
// Golden regression (the committed corpus; same files gate CI)
// ---------------------------------------------------------------------------

TEST(TranscriptGolden, CommittedTranscriptsVerifyAgainstLiveReruns) {
  for (const CanonicalCase& c : canonical_cases()) {
    const std::string path =
        std::string(DGAP_GOLDEN_DIR) + "/" + golden_file_name(c);
    const Transcript golden = decode_transcript(read_transcript_file(path));
    EXPECT_EQ(golden.label, c.name);
    ASSERT_TRUE(golden.spec.has_value()) << c.name;
    EXPECT_EQ(*golden.spec, c.spec) << c.name;
    EXPECT_NO_THROW(verify_canonical_case(c, golden)) << c.name;
    // Re-recording reproduces the committed bytes exactly.
    const RecordedRun rerun = record_canonical_case(c);
    EXPECT_EQ(rerun.transcript, read_transcript_file(path)) << c.name;
  }
}

TEST(TranscriptGolden, CorpusSpansTheThreeEngineRegimes) {
  ASSERT_GE(canonical_cases().size(), 3u);
  bool has_defer = false, has_cut = false, has_predictions = false;
  for (const CanonicalCase& c : canonical_cases()) {
    const std::string path =
        std::string(DGAP_GOLDEN_DIR) + "/" + golden_file_name(c);
    const Transcript golden = decode_transcript(read_transcript_file(path));
    if (golden.congest_policy == CongestPolicy::kDefer) has_defer = true;
    if (!golden.summary.completed) has_cut = true;
    if (c.provider != nullptr) has_predictions = true;
  }
  EXPECT_TRUE(has_defer);
  EXPECT_TRUE(has_cut);
  EXPECT_TRUE(has_predictions);
}

}  // namespace
}  // namespace dgap
