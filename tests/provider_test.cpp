// PredictionProvider contract tests (predict/provider.hpp):
//   1. Determinism — the same (provider, kind, seed, graph) materializes
//      byte-identical Predictions on every call, the engine consumes them
//      identically at num_threads 1 and 4, and provider-carrying batch
//      jobs produce byte-identical transcripts at 1 and 4 workers.
//   2. Digests — the contract is "equal digests => equal provide() output
//      for every (graph, kind, seed)". Spot-check the converse direction
//      across the whole bundled family: differently-parameterized
//      providers never collide, and the payload-carrying providers
//      (warm_start, learned) fold their payloads into the digest.
//   3. provider_slot_digest — the ResultCache key ingredient separates
//      providers, kinds, and seeds.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/generators.hpp"
#include "predict/learned.hpp"
#include "predict/provider.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "sim/result_cache.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {
namespace {

Graph test_graph() { return GraphSpec::gnp(40, 0.1, 17).build(); }

/// A hand-written model: trust the prior iff it is locally valid
/// (bias +1, heavy negative weight on the prior_invalid feature).
LearnedModel tiny_model() {
  LearnedModel model;
  for (auto& row : model.weights) {
    row[0] = kFeatureOne;           // bias
    row[6] = -3 * kFeatureOne;      // prior_invalid
  }
  return model;
}

std::vector<ProviderPtr> node_valued_providers(const Graph& g) {
  const std::vector<Value> prior =
      provide_with_seed(*exact_provider(), g, ProblemKind::kMis, 5)
          .node_values();
  return {neutral_provider(),       constant_provider(1),
          exact_provider(),         perturbed_provider(4),
          stale_graph_provider(3, 3), warm_start_provider(g, prior),
          learned_provider(tiny_model(), prior)};
}

TEST(Provider, MaterializationIsByteIdentical) {
  const Graph g = test_graph();
  for (const ProviderPtr& src : node_valued_providers(g)) {
    for (ProblemKind kind : {ProblemKind::kMis, ProblemKind::kMatching,
                             ProblemKind::kColoring}) {
      const Predictions a = provide_with_seed(*src, g, kind, 99);
      const Predictions b = provide_with_seed(*src, g, kind, 99);
      EXPECT_EQ(a.node_values(), b.node_values())
          << src->name() << " kind " << problem_kind_name(kind);
    }
  }
}

TEST(Provider, ReconstructedProvidersShareNameAndDigest) {
  const Graph g = test_graph();
  const std::vector<Value> prior =
      provide_with_seed(*exact_provider(), g, ProblemKind::kMis, 5)
          .node_values();
  const auto pairs = std::vector<std::pair<ProviderPtr, ProviderPtr>>{
      {neutral_provider(), neutral_provider()},
      {constant_provider(7), constant_provider(7)},
      {perturbed_provider(4), perturbed_provider(4)},
      {grid_stripe_provider(5, 8), grid_stripe_provider(5, 8)},
      {stale_graph_provider(2, 3), stale_graph_provider(2, 3)},
      {warm_start_provider(g, prior), warm_start_provider(g, prior)},
      {learned_provider(tiny_model(), prior),
       learned_provider(tiny_model(), prior)}};
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(a->name(), b->name());
    EXPECT_EQ(a->digest(), b->digest()) << a->name();
  }
}

TEST(Provider, BundledFamilyDigestsNeverCollide) {
  const Graph g = test_graph();
  const std::vector<Value> prior_a =
      provide_with_seed(*exact_provider(), g, ProblemKind::kMis, 5)
          .node_values();
  std::vector<Value> prior_b = prior_a;
  prior_b[0] = prior_b[0] == 0 ? 1 : 0;
  LearnedModel other_model = tiny_model();
  other_model.weights[0][1] += 1;
  const std::vector<ProviderPtr> family{
      neutral_provider(),
      constant_provider(0),
      constant_provider(1),
      exact_provider(),
      perturbed_provider(0),
      perturbed_provider(1),
      perturbed_provider(8),
      grid_stripe_provider(4, 10),
      grid_stripe_provider(10, 4),
      stale_graph_provider(2, 2),
      stale_graph_provider(2, 3),
      warm_start_provider(g, prior_a),
      warm_start_provider(g, prior_b),  // payload differs -> digest differs
      learned_provider(tiny_model(), prior_a),
      learned_provider(tiny_model(), prior_b),
      learned_provider(other_model, prior_a)};
  std::set<std::uint64_t> digests;
  for (const ProviderPtr& src : family) digests.insert(src->digest());
  EXPECT_EQ(digests.size(), family.size());
}

TEST(Provider, SlotDigestSeparatesProvidersKindsAndSeeds) {
  std::set<std::uint64_t> keys;
  std::size_t expected = 0;
  for (const ProviderPtr& src :
       {neutral_provider(), exact_provider(), perturbed_provider(2)}) {
    for (ProblemKind kind : {ProblemKind::kMis, ProblemKind::kMatching}) {
      for (std::uint64_t seed : {0ull, 1ull, 99ull}) {
        keys.insert(provider_slot_digest(*src, kind, seed));
        ++expected;
      }
    }
  }
  EXPECT_EQ(keys.size(), expected);
}

TEST(Provider, EngineConsumesIdenticallyAtOneAndFourThreads) {
  const Graph g = test_graph();
  const Predictions pred =
      provide_with_seed(*perturbed_provider(4), g, ProblemKind::kMis, 99);
  EngineOptions one, four;
  one.num_threads = 1;
  four.num_threads = 4;
  const RunResult a = run_with_predictions(g, pred, mis_simple_greedy(), one);
  const RunResult b = run_with_predictions(g, pred, mis_simple_greedy(), four);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(Provider, BatchTranscriptsByteIdenticalAtOneAndFourWorkers) {
  const Graph g = test_graph();
  std::vector<std::vector<std::uint8_t>> transcripts;
  for (int workers : {1, 4}) {
    BatchRunner runner({workers});
    for (const ProviderPtr& src : node_valued_providers(g)) {
      BatchJob job = make_job(g, mis_simple_greedy());
      job.provider = src;
      job.provider_kind = ProblemKind::kMis;
      job.provider_seed = 99;
      job.capture_transcript = true;
      job.transcript_label = src->name();
      runner.add(std::move(job));
    }
    auto results = runner.run_all();
    for (auto& r : results) {
      ASSERT_TRUE(r.ok) << r.error;
      transcripts.push_back(std::move(r.transcript));
    }
  }
  const std::size_t half = transcripts.size() / 2;
  ASSERT_GT(half, 0u);
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_EQ(transcripts[i], transcripts[half + i]) << "job " << i;
  }
}

}  // namespace
}  // namespace dgap
