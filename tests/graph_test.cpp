#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "graph/spec.hpp"

namespace dgap {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, DefaultIdsAreOneBased) {
  Graph g(4);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g.id(v), v + 1);
  EXPECT_EQ(g.id_bound(), 4);
}

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.max_degree(), 2);
}

TEST(Graph, RejectsSelfLoopAndDuplicates) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);
}

TEST(Graph, SetIdsValidatesDistinctness) {
  Graph g(3);
  EXPECT_THROW(g.set_ids({1, 2, 2}), std::invalid_argument);
  EXPECT_THROW(g.set_ids({0, 1, 2}), std::invalid_argument);
  g.set_ids({10, 20, 30});
  EXPECT_EQ(g.id(2), 30);
  EXPECT_GE(g.id_bound(), 30);
}

TEST(Graph, EdgesListSorted) {
  Graph g = make_ring(4);
  auto es = g.edges();
  ASSERT_EQ(es.size(), 4u);
  for (auto [u, v] : es) EXPECT_LT(u, v);
}

TEST(Graph, InducedSubgraphKeepsIdsAndEdges) {
  Graph g = make_ring(5);
  g.set_ids({10, 20, 30, 40, 50});
  auto [sub, map] = g.induced({1, 2, 3});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 2);  // path 1-2-3
  EXPECT_EQ(sub.id(0), 20);
  EXPECT_EQ(sub.id(2), 40);
  EXPECT_EQ(sub.id_bound(), g.id_bound());
  EXPECT_EQ(map[0], 1);
}

TEST(Generators, Line) {
  Graph g = make_line(5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(diameter(g), 4);
}

TEST(Generators, Ring) {
  Graph g = make_ring(6);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_EQ(diameter(g), 3);
}

TEST(Generators, Clique) {
  Graph g = make_clique(5);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_EQ(diameter(g), 1);
}

TEST(Generators, Star) {
  Graph g = make_star(6);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.max_degree(), 5);
  EXPECT_EQ(diameter(g), 2);
}

// Figure 1: F_k has diameter 4, but the induced rim has diameter ⌊k/2⌋.
TEST(Generators, WheelFkMatchesFigure1) {
  for (NodeId k : {3, 5, 8, 12}) {
    Graph g = make_wheel_fk(k);
    EXPECT_EQ(g.num_nodes(), 2 * k + 1);
    EXPECT_EQ(g.num_edges(), 3 * k);
    // Going through the hub bounds every distance by 4 once the rim is
    // long enough for the hub route to be the shortest.
    if (k >= 8) {
      EXPECT_EQ(diameter(g), 4);
    }
    std::vector<NodeId> rim;
    for (NodeId i = 0; i < k; ++i) rim.push_back(1 + k + i);
    auto [sub, map] = g.induced(rim);
    EXPECT_EQ(diameter(sub), k / 2);
  }
  EXPECT_EQ(diameter(make_wheel_fk(8)), 4);
}

TEST(Generators, Grid) {
  Graph g = make_grid(4, 3);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 4 * 2);  // horizontal + vertical
  EXPECT_EQ(diameter(g), 5);
}

TEST(Generators, Hypercube) {
  Graph g = make_hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(diameter(g), 4);
}

TEST(Generators, CompleteBipartite) {
  Graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(diameter(g), 2);
}

TEST(Generators, GnpRespectsExtremes) {
  Rng rng(1);
  Graph empty = make_gnp(10, 0.0, rng);
  EXPECT_EQ(empty.num_edges(), 0);
  Graph full = make_gnp(10, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 45);
}

TEST(Generators, GnpSparseRespectsExtremesAndExpectation) {
  Rng rng(41);
  Graph empty = make_gnp_sparse(10, 0.0, rng);
  EXPECT_EQ(empty.num_edges(), 0);
  Graph full = make_gnp_sparse(10, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 45);
  // Sparse regime: the edge count concentrates around p * n(n-1)/2. With
  // n = 2000, p = 4/n the expectation is ~3998 with σ ≈ 63; ±5σ bounds
  // make a seeded flake impossible in practice.
  const NodeId n = 2000;
  Graph g = make_gnp_sparse(n, 4.0 / n, rng);
  EXPECT_GT(g.num_edges(), 3998 - 320);
  EXPECT_LT(g.num_edges(), 3998 + 320);
  // Deterministic for a fixed seed.
  Rng r1(7), r2(7);
  EXPECT_EQ(make_gnp_sparse(200, 0.05, r1).edges(),
            make_gnp_sparse(200, 0.05, r2).edges());
}

TEST(Generators, GnmHasExactlyMEdges) {
  Rng rng(42);
  for (const std::int64_t m : {0LL, 1LL, 100LL, 4950LL}) {
    Graph g = make_gnm(100, m, rng);
    EXPECT_EQ(g.num_nodes(), 100);
    EXPECT_EQ(g.num_edges(), m);
  }
  EXPECT_THROW(make_gnm(100, 4951, rng), std::invalid_argument);
  EXPECT_THROW(make_gnm(100, -1, rng), std::invalid_argument);
  Rng r1(9), r2(9);
  EXPECT_EQ(make_gnm(300, 600, r1).edges(), make_gnm(300, 600, r2).edges());
}

TEST(Generators, ParallelBuildersAreByteIdenticalAcrossThreadCounts) {
  // The block decomposition is a pure function of the instance (never of
  // num_threads), per-block seeds are drawn serially, and blocks merge in
  // block order — so the thread count can only change who executes a
  // block, never what it contains. n is large enough for several blocks.
  const NodeId n = 20000;
  Graph gnp1 = [&] { Rng r(77); return make_gnp_sparse(n, 6.0 / n, r, 1); }();
  Graph gnm1 = [&] { Rng r(78); return make_gnm(n, 3 * n, r, 1); }();
  for (const int threads : {2, 4}) {
    Rng rp(77), rm(78);
    EXPECT_EQ(gnp1.edges(), make_gnp_sparse(n, 6.0 / n, rp, threads).edges());
    EXPECT_EQ(gnm1.edges(), make_gnm(n, 3 * n, rm, threads).edges());
  }
}

TEST(Generators, SparseFamiliesBuildThroughGraphSpec) {
  const GraphSpec gnps = GraphSpec::gnp_sparse(256, 8.0 / 256, 17,
                                               GraphSpec::IdPolicy::kRandomized);
  const Graph a = gnps.build();
  const Graph b = gnps.build();
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.ids(), b.ids());
  EXPECT_EQ(gnps.name(), "gnps_256_p0.03125_s17_rid");

  const GraphSpec gnm = GraphSpec::gnm(256, 512, 23);
  const Graph c = gnm.build();
  EXPECT_EQ(c.num_edges(), 512);
  EXPECT_EQ(gnm.name(), "gnm_256_m512_s23");
}

TEST(Generators, DerivedNodeCountsOverflowCleanly) {
  // Each of these products/sums exceeds NodeId (int32) when computed in 64
  // bits; the generators must reject them instead of wrapping silently.
  EXPECT_THROW(make_grid(65536, 65536), std::invalid_argument);
  EXPECT_THROW(make_caterpillar(1 << 20, 1 << 12), std::invalid_argument);
  EXPECT_THROW(make_complete_bipartite(2000000000, 2000000000),
               std::invalid_argument);
  EXPECT_THROW(make_wheel_fk(1500000000), std::invalid_argument);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(3);
  for (NodeId n : {1, 2, 3, 10, 50}) {
    Graph g = make_random_tree(n, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_TRUE(is_tree(g)) << "n=" << n;
  }
}

TEST(Generators, RandomConnectedHasExtraEdges) {
  Rng rng(4);
  Graph g = make_random_connected(20, 10, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 19 + 10);
}

TEST(Generators, RootedLineStructure) {
  RootedTree t = make_rooted_line(5);
  EXPECT_EQ(t.parent[0], kNoNode);
  EXPECT_EQ(t.parent[4], 3);
  EXPECT_TRUE(is_tree(t.graph));
}

TEST(Generators, RootedBinaryTree) {
  RootedTree t = make_rooted_binary_tree(3);
  EXPECT_EQ(t.graph.num_nodes(), 15);
  EXPECT_TRUE(is_tree(t.graph));
  EXPECT_EQ(t.parent[14], 6);
}

TEST(Generators, RootedRandomTreeParentsValid) {
  Rng rng(5);
  RootedTree t = make_rooted_random_tree(40, rng);
  EXPECT_TRUE(is_tree(t.graph));
  for (NodeId v = 1; v < 40; ++v) {
    EXPECT_GE(t.parent[v], 0);
    EXPECT_LT(t.parent[v], v);
    EXPECT_TRUE(t.graph.has_edge(v, t.parent[v]));
  }
}

TEST(Generators, RootedKaryTree) {
  RootedTree t = make_rooted_kary_tree(3, 3);
  EXPECT_EQ(t.graph.num_nodes(), 1 + 3 + 9);
  EXPECT_TRUE(is_tree(t.graph));
}

TEST(Generators, Caterpillar) {
  Graph g = make_caterpillar(4, 2);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_TRUE(is_tree(g));
}

TEST(Generators, DisjointUnionKeepsBothSidesAndDistinctIds) {
  Graph a = make_line(3), b = make_ring(4);
  Graph u = disjoint_union(a, b);
  EXPECT_EQ(u.num_nodes(), 7);
  EXPECT_EQ(u.num_edges(), 2 + 4);
  std::set<Value> ids(u.ids().begin(), u.ids().end());
  EXPECT_EQ(ids.size(), 7u);
  EXPECT_EQ(connected_components(u).size(), 2u);
}

TEST(Generators, RandomizeIdsIsPermutation) {
  Rng rng(6);
  Graph g = make_line(10);
  randomize_ids(g, rng);
  std::set<Value> ids(g.ids().begin(), g.ids().end());
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), 10);
}

TEST(Generators, SparseIdsWithinDomain) {
  Rng rng(7);
  Graph g = make_line(10);
  randomize_ids_sparse(g, 1000, rng);
  std::set<Value> ids(g.ids().begin(), g.ids().end());
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_GE(*ids.begin(), 1);
  EXPECT_LE(*ids.rbegin(), 1000);
  EXPECT_EQ(g.id_bound(), 1000);
}

TEST(Properties, ConnectedComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  auto comps = connected_components(g);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{2, 3, 4}));
  EXPECT_EQ(comps[2], (std::vector<NodeId>{5}));
}

TEST(Properties, BfsDistances) {
  Graph g = make_line(5);
  auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[4], 4);
  Graph h(3);
  h.add_edge(0, 1);
  auto d2 = bfs_distances(h, 0);
  EXPECT_EQ(d2[2], -1);
}

TEST(Properties, Degeneracy) {
  EXPECT_EQ(degeneracy(make_line(10)), 1);
  EXPECT_EQ(degeneracy(make_ring(10)), 2);
  EXPECT_EQ(degeneracy(make_clique(5)), 4);
  EXPECT_EQ(degeneracy(make_grid(5, 5)), 2);
  EXPECT_EQ(degeneracy(make_star(10)), 1);
}

TEST(Properties, MaxComponentSize) {
  Graph g = make_line(10);
  std::vector<bool> keep(10, true);
  keep[3] = false;
  EXPECT_EQ(max_component_size(g, keep), 6);
}

}  // namespace
}  // namespace dgap
