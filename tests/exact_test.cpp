#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"

namespace dgap {
namespace {

bool is_independent(const Graph& g, const std::vector<NodeId>& set) {
  std::set<NodeId> s(set.begin(), set.end());
  for (NodeId v : set) {
    for (NodeId u : g.neighbors(v)) {
      if (s.count(u)) return false;
    }
  }
  return true;
}

/// Brute-force α by enumerating all subsets (tiny graphs only).
int alpha_brute(const Graph& g) {
  const int n = g.num_nodes();
  int best = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (NodeId v = 0; v < n && ok; ++v) {
      if (!(mask & (1 << v))) continue;
      for (NodeId u : g.neighbors(v)) {
        if (u > v && (mask & (1 << u))) {
          ok = false;
          break;
        }
      }
    }
    if (ok) best = std::max(best, __builtin_popcount(mask));
  }
  return best;
}

TEST(Exact, AlphaOnKnownFamilies) {
  EXPECT_EQ(independence_number(make_line(1)), 1);
  EXPECT_EQ(independence_number(make_line(5)), 3);   // ⌈n/2⌉
  EXPECT_EQ(independence_number(make_line(6)), 3);
  EXPECT_EQ(independence_number(make_ring(6)), 3);   // ⌊n/2⌋
  EXPECT_EQ(independence_number(make_ring(7)), 3);
  EXPECT_EQ(independence_number(make_clique(7)), 1);
  EXPECT_EQ(independence_number(make_star(9)), 8);
  EXPECT_EQ(independence_number(make_complete_bipartite(3, 5)), 5);
  EXPECT_EQ(independence_number(make_grid(3, 3)), 5);
}

TEST(Exact, AlphaMatchesBruteForceOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId n = 4 + static_cast<NodeId>(rng.next_below(9));
    Graph g = make_gnp(n, 0.3, rng);
    EXPECT_EQ(independence_number(g), alpha_brute(g)) << "trial " << trial;
  }
}

TEST(Exact, WitnessIsIndependentAndMaximumSized) {
  Rng rng(7);
  Graph g = make_gnp(18, 0.25, rng);
  auto mis = maximum_independent_set(g);
  EXPECT_TRUE(is_independent(g, mis));
  EXPECT_EQ(static_cast<int>(mis.size()), independence_number(g));
}

TEST(Exact, GallaiIdentity) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(12, 0.4, rng);
    EXPECT_EQ(vertex_cover_number(g) + independence_number(g), 12);
  }
  EXPECT_EQ(vertex_cover_number(make_star(10)), 1);   // the center
  EXPECT_EQ(vertex_cover_number(make_clique(6)), 5);  // all but one
}

TEST(Exact, FastOnLongPaths) {
  // Degree-1 reductions make paths easy despite exponential worst case.
  Graph g = make_line(2000);
  EXPECT_EQ(independence_number(g), 1000);
}

TEST(Exact, BudgetExceededThrows) {
  Rng rng(123);
  Graph g = make_gnp(40, 0.5, rng);
  EXPECT_THROW(independence_number(g, /*node_budget=*/10),
               std::invalid_argument);
}

TEST(Exact, EnumerateMaximalIndependentSetsOnTriangle) {
  Graph g = make_clique(3);
  std::set<std::vector<NodeId>> seen;
  enumerate_maximal_independent_sets(g, [&](const std::vector<NodeId>& s) {
    auto sorted = s;
    std::sort(sorted.begin(), sorted.end());
    seen.insert(sorted);
    return true;
  });
  // Each single vertex is a maximal independent set of K3.
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Exact, EnumerateMaximalIndependentSetsOnPath4) {
  Graph g = make_line(4);
  std::set<std::vector<NodeId>> seen;
  enumerate_maximal_independent_sets(g, [&](const std::vector<NodeId>& s) {
    auto sorted = s;
    std::sort(sorted.begin(), sorted.end());
    seen.insert(sorted);
    return true;
  });
  // {0,2}, {0,3}, {1,3} are the maximal independent sets of P4.
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count({0, 2}));
  EXPECT_TRUE(seen.count({0, 3}));
  EXPECT_TRUE(seen.count({1, 3}));
}

TEST(Exact, EnumerationSetsAreMaximalAndIndependent) {
  Rng rng(17);
  Graph g = make_gnp(10, 0.3, rng);
  int count = 0;
  enumerate_maximal_independent_sets(g, [&](const std::vector<NodeId>& s) {
    ++count;
    EXPECT_TRUE(is_independent(g, s));
    // Maximality: every vertex outside has a neighbor inside.
    std::set<NodeId> in(s.begin(), s.end());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (in.count(v)) continue;
      bool dominated = false;
      for (NodeId u : g.neighbors(v)) {
        if (in.count(u)) dominated = true;
      }
      EXPECT_TRUE(dominated) << "vertex " << v << " could be added";
    }
    return true;
  });
  EXPECT_GT(count, 0);
}

TEST(Exact, SequentialMisIsValid) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(30, 0.15, rng);
    auto in = sequential_mis(g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (in[v]) {
        for (NodeId u : g.neighbors(v)) EXPECT_FALSE(in[u]);
      } else {
        bool covered = false;
        for (NodeId u : g.neighbors(v)) covered = covered || in[u];
        EXPECT_TRUE(covered);
      }
    }
  }
}

TEST(Exact, SequentialMatchingIsMaximal) {
  Rng rng(4);
  Graph g = make_gnp(25, 0.2, rng);
  auto mate = sequential_maximal_matching(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mate[v] != kNoNode) {
      EXPECT_EQ(mate[mate[v]], v);
      EXPECT_TRUE(g.has_edge(v, mate[v]));
    } else {
      for (NodeId u : g.neighbors(v)) EXPECT_NE(mate[u], kNoNode);
    }
  }
}

TEST(Exact, SequentialVertexColoringProper) {
  Rng rng(5);
  Graph g = make_gnp(25, 0.3, rng);
  auto color = sequential_vertex_coloring(g);
  const Value palette = g.max_degree() + 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(color[v], 1);
    EXPECT_LE(color[v], palette);
    for (NodeId u : g.neighbors(v)) EXPECT_NE(color[v], color[u]);
  }
}

TEST(Exact, SequentialEdgeColoringProper) {
  Rng rng(6);
  Graph g = make_gnp(15, 0.3, rng);
  auto colors = sequential_edge_coloring(g);
  const Value palette = std::max<Value>(1, 2 * g.max_degree() - 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& nb = g.neighbors(v);
    std::set<Value> seen;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      EXPECT_GE(colors[v][i], 1);
      EXPECT_LE(colors[v][i], palette);
      EXPECT_TRUE(seen.insert(colors[v][i]).second)
          << "node " << v << " repeats a color";
      // Agreement with the other endpoint.
      const auto& nb2 = g.neighbors(nb[i]);
      auto it = std::lower_bound(nb2.begin(), nb2.end(), v);
      EXPECT_EQ(colors[nb[i]][static_cast<std::size_t>(it - nb2.begin())],
                colors[v][i]);
    }
  }
}

}  // namespace
}  // namespace dgap
