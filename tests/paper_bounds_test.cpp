// Parameterized per-instance verification of the paper's quantitative
// claims. Every instance in the sweep must satisfy the corresponding
// inequality exactly as stated (with the constants our constructions
// achieve) — not merely on average.
#include <gtest/gtest.h>

#include "coloring/linial.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mis/algorithms.hpp"
#include "mis/checkers.hpp"
#include "mis/gather.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {
namespace {

struct SweepCase {
  const char* family;
  int size;
  int flips;
};

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
  return os << c.family << "_" << c.size << "_f" << c.flips;
}

Graph build(const SweepCase& c, Rng& rng) {
  Graph g;
  const std::string f = c.family;
  if (f == "line") {
    g = make_line(c.size);
  } else if (f == "ring") {
    g = make_ring(c.size);
  } else if (f == "grid") {
    g = make_grid(c.size, c.size);
  } else if (f == "gnp") {
    g = make_gnp(c.size, 0.2, rng);
  } else if (f == "tree") {
    g = make_random_tree(c.size, rng);
  } else {
    g = make_wheel_fk(c.size);
  }
  randomize_ids(g, rng);
  return g;
}

class PaperBoundsTest : public ::testing::TestWithParam<SweepCase> {};

// Observation 7 + Lemmas 1/2: Simple(Init, Greedy) obeys both η1+3 and
// η2+4 on every instance.
TEST_P(PaperBoundsTest, Observation7) {
  const auto& c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.size * 131 + c.flips));
  Graph g = build(c, rng);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), c.flips, rng);
  auto result = run_with_predictions(g, pred, mis_simple_greedy());
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
  EXPECT_LE(result.rounds, eta1_mis(g, pred) + 3);
  if (g.num_nodes() <= 40) {
    EXPECT_LE(result.rounds, eta2_mis(g, pred) + 4);
  }
}

// Lemma 8: Consecutive(Init, Greedy, Cleanup, Gather) is 2f(η)-degrading
// and robust with respect to the gather reference.
TEST_P(PaperBoundsTest, Lemma8) {
  const auto& c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.size * 733 + c.flips));
  Graph g = build(c, rng);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), c.flips, rng);
  auto result = run_with_predictions(g, pred, mis_consecutive_gather());
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(is_valid_mis(g, result.outputs));
  const int eta = eta1_mis(g, pred);
  const int r = mis_gather_total_rounds(g.num_nodes());
  EXPECT_LE(result.rounds, 2 * eta + kMisInitRounds + 2);
  EXPECT_LE(result.rounds,
            kMisInitRounds + (r + kMisCleanupRounds) + kMisCleanupRounds + r);
}

// Lemma 9: Interleaved(Init, Greedy, Gather-phases) is 2f(η)+O(1)
// degrading and capped by c + 2·Σ r_i.
TEST_P(PaperBoundsTest, Lemma9) {
  const auto& c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.size * 937 + c.flips));
  Graph g = build(c, rng);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), c.flips, rng);
  auto result = run_with_predictions(g, pred, mis_interleaved_gather());
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(is_valid_mis(g, result.outputs));
  const int eta = eta1_mis(g, pred);
  EXPECT_LE(result.rounds, 2 * std::max(eta, 2) + kMisInitRounds + 4);
  int total_ref = 0;
  int m = 1;
  while ((1 << m) < std::max(g.num_nodes() - 1, 1)) ++m;
  for (int i = 1; i <= m; ++i) total_ref += 1 << i;
  EXPECT_LE(result.rounds, kMisInitRounds + 2 * total_ref + 2);
}

// Lemma 11 / Corollary 12: Parallel(Init, Greedy, Linial+ColorToMis) is
// η2-degrading AND capped by the reference bound.
TEST_P(PaperBoundsTest, Corollary12) {
  const auto& c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.size * 389 + c.flips));
  Graph g = build(c, rng);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), c.flips, rng);
  auto result = run_with_predictions(g, pred, mis_parallel_linial());
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(is_valid_mis(g, result.outputs));
  if (g.num_nodes() <= 40) {
    const int eta2 = eta2_mis(g, pred);
    EXPECT_LE(result.rounds, eta2 + 4);
  }
  const int r1 = linial_total_rounds(g.id_bound(), g.max_degree());
  EXPECT_LE(result.rounds,
            kMisInitRounds + r1 + 1 + (g.max_degree() + 2) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaperBoundsTest,
    ::testing::Values(SweepCase{"line", 12, 0}, SweepCase{"line", 12, 2},
                      SweepCase{"line", 24, 6}, SweepCase{"ring", 12, 3},
                      SweepCase{"ring", 18, 9}, SweepCase{"grid", 4, 2},
                      SweepCase{"grid", 5, 8}, SweepCase{"gnp", 15, 0},
                      SweepCase{"gnp", 15, 4}, SweepCase{"gnp", 22, 11},
                      SweepCase{"tree", 16, 3}, SweepCase{"tree", 25, 12},
                      SweepCase{"wheel", 6, 4}, SweepCase{"wheel", 9, 9}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

// Theorem 6 context: the measure-uniform lower bound — Greedy MIS is
// Θ(μ1) on sorted lines at several sizes (matching the Ramsey-based
// Lemma 5 lower bound up to constants).
class LineLowerBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(LineLowerBoundTest, GreedyTakesLinearRounds) {
  const int n = GetParam();
  Graph g = make_line(n);
  sorted_ids(g);
  auto result = run_algorithm(g, greedy_mis_algorithm());
  EXPECT_GE(result.rounds, (n - 5) / 2);
  EXPECT_LE(result.rounds, n + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LineLowerBoundTest,
                         ::testing::Values(10, 25, 50, 101, 200));

}  // namespace
}  // namespace dgap
