// The CONGEST universal MIS reference: correctness across families,
// strict 2-word message compliance, schedule exactness, atomic
// per-component decisions, and its use inside the Consecutive template.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mis/checkers.hpp"
#include "mis/congest_global.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {
namespace {

TEST(CongestGlobal, SolvesSmallFamilies) {
  Rng rng(1);
  for (auto make : {+[]() { return make_line(9); },
                    +[]() { return make_ring(8); },
                    +[]() { return make_clique(6); },
                    +[]() { return make_grid(3, 4); },
                    +[]() { return make_star(7); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    auto result = run_algorithm(g, congest_global_mis_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
    EXPECT_EQ(result.rounds, congest_global_total_rounds(g.num_nodes()));
  }
}

TEST(CongestGlobal, StrictlyCongest) {
  Rng rng(2);
  Graph g = make_random_connected(16, 10, rng);
  randomize_ids(g, rng);
  EngineOptions opt;
  opt.congest_word_limit = 2;
  auto result = run_algorithm(g, congest_global_mis_algorithm(), opt);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.congest_violations, 0);
  EXPECT_LE(result.max_message_words, 2);
}

TEST(CongestGlobal, RandomSweep) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(12, 0.25, rng);
    randomize_ids(g, rng);
    auto result = run_algorithm(g, congest_global_mis_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
  }
}

TEST(CongestGlobal, WholeGraphDecidesAtScheduleEnd) {
  Rng rng(4);
  Graph g = make_random_connected(14, 6, rng);
  randomize_ids(g, rng);
  auto result = run_algorithm(g, congest_global_mis_algorithm());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.termination_round[v],
              congest_global_total_rounds(g.num_nodes()));
  }
}

TEST(CongestGlobal, DisconnectedComponentsElectSeparateLeaders) {
  Graph g = disjoint_union(make_clique(5), make_ring(6));
  auto result = run_algorithm(g, congest_global_mis_algorithm());
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(g, result.outputs));
}

TEST(CongestGlobal, ConsecutiveTemplateAssembly) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(12, 0.25, rng);
    randomize_ids(g, rng);
    auto correct = mis_correct_prediction(g, rng);
    // Consistency.
    auto rc = run_with_predictions(g, correct, mis_consecutive_congest());
    EXPECT_TRUE(is_valid_mis(g, rc.outputs));
    EXPECT_EQ(rc.rounds, 3);
    // Degradation + robustness under errors.
    auto bad = flip_bits(g, correct, 6, rng);
    auto rb = run_with_predictions(g, bad, mis_consecutive_congest());
    EXPECT_TRUE(is_valid_mis(g, rb.outputs)) << check_mis(g, rb.outputs);
    const int e1 = eta1_mis(g, bad);
    EXPECT_LE(rb.rounds, 2 * std::max(e1, 1) + 5);
    // Entirely CONGEST end to end.
    EngineOptions opt;
    opt.congest_word_limit = 2;
    auto strict =
        run_with_predictions(g, bad, mis_consecutive_congest(), opt);
    EXPECT_EQ(strict.congest_violations, 0);
  }
}

TEST(CongestGlobal, RoundBudgetsAreInt64Safe) {
  // n² at n = 100'000 overflows int32; the budget functions must not.
  EXPECT_EQ(congest_global_stage2_rounds(100'000), 10'000'000'000LL);
  EXPECT_EQ(congest_global_total_rounds(100'000),
            100'001LL + 10'000'000'000LL + 200'002LL);
  // Stretched variant doubles the record stages only.
  EXPECT_EQ(congest_global_record_stride(1), 2);
  EXPECT_EQ(congest_global_record_stride(2), 1);
  EXPECT_EQ(congest_global_record_stride(0), 1);
  EXPECT_EQ(congest_global_stage1_rounds(100'000, 1), 100'001LL);
  EXPECT_EQ(congest_global_stage2_rounds(100'000, 1), 20'000'000'000LL);
  EXPECT_EQ(congest_global_stage3_rounds(100'000, 1), 400'004LL);
}

TEST(CongestGlobal, HonestUnderEnforcedTwoWordBudget) {
  // The acceptance run: a real 2-word-per-link budget (defer policy). The
  // protocol sends at most one <= 2-word message per link per round, so
  // nothing defers and the enforced run equals the audited one exactly.
  Rng rng(6);
  Graph g = make_random_connected(16, 10, rng);
  randomize_ids(g, rng);
  auto audited = run_algorithm(g, congest_global_mis_algorithm());
  EngineOptions opt;
  opt.congest_policy = CongestPolicy::kDefer;
  opt.congest_word_limit = 2;
  auto result = run_algorithm(g, congest_global_mis_algorithm(), opt);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
  EXPECT_EQ(result.congest_violations, 0);
  EXPECT_EQ(result.deferred_messages, 0);
  EXPECT_EQ(result.rounds_with_backlog, 0);
  EXPECT_EQ(result.rounds, congest_global_total_rounds(g.num_nodes(), 2));
  EXPECT_EQ(result.rounds, audited.rounds);
  EXPECT_EQ(result.outputs, audited.outputs);
  EXPECT_EQ(result.total_words, audited.total_words);
}

TEST(CongestGlobal, StretchedScheduleUnderOneWordBudget) {
  // Below the 2-word record width the protocol stretches stages 2 and 3
  // by the record stride; records then need two rounds per link and the
  // run leans on the deferral scheduler every record.
  Rng rng(8);
  for (auto make : {+[]() { return make_line(7); },
                    +[]() { return make_clique(5); },
                    +[]() { return make_grid(3, 3); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    EngineOptions opt;
    opt.congest_policy = CongestPolicy::kDefer;
    opt.congest_word_limit = 1;
    auto result = run_algorithm(g, congest_global_mis_algorithm(), opt);
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs))
        << check_mis(g, result.outputs);
    EXPECT_EQ(result.rounds, congest_global_total_rounds(g.num_nodes(), 1));
    EXPECT_GT(result.deferred_messages, 0);
    // A link never buffers more than one record's carried-over word.
    EXPECT_LE(result.link_backlog_peak_words, 1);
  }
}

}  // namespace
}  // namespace dgap
