// The CONGEST universal MIS reference: correctness across families,
// strict 2-word message compliance, schedule exactness, atomic
// per-component decisions, and its use inside the Consecutive template.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mis/checkers.hpp"
#include "mis/congest_global.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {
namespace {

TEST(CongestGlobal, SolvesSmallFamilies) {
  Rng rng(1);
  for (auto make : {+[]() { return make_line(9); },
                    +[]() { return make_ring(8); },
                    +[]() { return make_clique(6); },
                    +[]() { return make_grid(3, 4); },
                    +[]() { return make_star(7); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    auto result = run_algorithm(g, congest_global_mis_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
    EXPECT_EQ(result.rounds, congest_global_total_rounds(g.num_nodes()));
  }
}

TEST(CongestGlobal, StrictlyCongest) {
  Rng rng(2);
  Graph g = make_random_connected(16, 10, rng);
  randomize_ids(g, rng);
  EngineOptions opt;
  opt.congest_word_limit = 2;
  auto result = run_algorithm(g, congest_global_mis_algorithm(), opt);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.congest_violations, 0);
  EXPECT_LE(result.max_message_words, 2);
}

TEST(CongestGlobal, RandomSweep) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(12, 0.25, rng);
    randomize_ids(g, rng);
    auto result = run_algorithm(g, congest_global_mis_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
  }
}

TEST(CongestGlobal, WholeGraphDecidesAtScheduleEnd) {
  Rng rng(4);
  Graph g = make_random_connected(14, 6, rng);
  randomize_ids(g, rng);
  auto result = run_algorithm(g, congest_global_mis_algorithm());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.termination_round[v],
              congest_global_total_rounds(g.num_nodes()));
  }
}

TEST(CongestGlobal, DisconnectedComponentsElectSeparateLeaders) {
  Graph g = disjoint_union(make_clique(5), make_ring(6));
  auto result = run_algorithm(g, congest_global_mis_algorithm());
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(g, result.outputs));
}

TEST(CongestGlobal, ConsecutiveTemplateAssembly) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(12, 0.25, rng);
    randomize_ids(g, rng);
    auto correct = mis_correct_prediction(g, rng);
    // Consistency.
    auto rc = run_with_predictions(g, correct, mis_consecutive_congest());
    EXPECT_TRUE(is_valid_mis(g, rc.outputs));
    EXPECT_EQ(rc.rounds, 3);
    // Degradation + robustness under errors.
    auto bad = flip_bits(correct, 6, rng);
    auto rb = run_with_predictions(g, bad, mis_consecutive_congest());
    EXPECT_TRUE(is_valid_mis(g, rb.outputs)) << check_mis(g, rb.outputs);
    const int e1 = eta1_mis(g, bad);
    EXPECT_LE(rb.rounds, 2 * std::max(e1, 1) + 5);
    // Entirely CONGEST end to end.
    EngineOptions opt;
    opt.congest_word_limit = 2;
    auto strict =
        run_with_predictions(g, bad, mis_consecutive_congest(), opt);
    EXPECT_EQ(strict.congest_violations, 0);
  }
}

}  // namespace
}  // namespace dgap
