#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mis/checkers.hpp"
#include "mis/gather.hpp"
#include "sim/engine.hpp"

namespace dgap {
namespace {

TEST(Gather, PhaseRoundBookkeeping) {
  EXPECT_EQ(gather_phase_rounds(0), 1);
  EXPECT_EQ(gather_phase_rounds(3), 8);
  EXPECT_EQ(gather_phase_count(1), 1);
  EXPECT_EQ(gather_phase_count(2), 1);
  EXPECT_EQ(gather_phase_count(3), 2);   // radius must reach 2
  EXPECT_EQ(gather_phase_count(9), 4);   // radius must reach 8
  // Total rounds = 1 + 2 + ... + 2^{m-1}.
  EXPECT_EQ(mis_gather_total_rounds(9), 1 + 2 + 4 + 8);
}

TEST(Gather, SolvesSmallFamilies) {
  Rng rng(1);
  for (auto make : {+[]() { return make_line(9); },
                    +[]() { return make_ring(8); },
                    +[]() { return make_clique(6); },
                    +[]() { return make_grid(4, 4); },
                    +[]() { return make_star(7); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    auto result = run_algorithm(g, mis_gather_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
    EXPECT_LE(result.rounds, mis_gather_total_rounds(g.num_nodes()));
  }
}

TEST(Gather, RoundsTrackDiameterNotSize) {
  // A clique of 40 nodes has diameter 1: one phase (radius 1) suffices.
  Graph g = make_clique(40);
  auto result = run_algorithm(g, mis_gather_algorithm());
  EXPECT_TRUE(result.completed);
  EXPECT_LE(result.rounds, 2);
  // A line of 40 nodes has diameter 39: rounds grow with n.
  Graph line = make_line(40);
  auto lr = run_algorithm(line, mis_gather_algorithm());
  EXPECT_TRUE(lr.completed);
  EXPECT_GT(lr.rounds, 32);
  EXPECT_LE(lr.rounds, mis_gather_total_rounds(40));
}

TEST(Gather, DisconnectedComponentsSolveIndependently) {
  Graph g = disjoint_union(make_clique(5), make_line(12));
  auto result = run_algorithm(g, mis_gather_algorithm());
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(g, result.outputs));
  // The clique component terminates in phase 1, long before the line.
  int clique_max = 0, line_min = 1 << 30;
  for (NodeId v = 0; v < 5; ++v) {
    clique_max = std::max(clique_max, result.termination_round[v]);
  }
  for (NodeId v = 5; v < 17; ++v) {
    line_min = std::min(line_min, result.termination_round[v]);
  }
  EXPECT_LT(clique_max, line_min);
}

TEST(Gather, SingletonTerminatesInOneRound) {
  Graph g(1);
  auto result = run_algorithm(g, mis_gather_algorithm());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_EQ(result.outputs[0], 1);
}

TEST(Gather, WholeComponentDecidesSimultaneously) {
  Rng rng(2);
  Graph g = make_random_connected(20, 6, rng);
  randomize_ids(g, rng);
  auto result = run_algorithm(g, mis_gather_algorithm());
  EXPECT_TRUE(result.completed);
  // All nodes of a connected graph decide in the same round (the phase in
  // which the radius first covers the diameter).
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.termination_round[v], result.termination_round[0]);
  }
}

TEST(Gather, RandomSweepValidity) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(15, 0.2, rng);
    randomize_ids(g, rng);
    auto result = run_algorithm(g, mis_gather_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
  }
}

TEST(Gather, UsesWideMessagesOnlyInLocalModel) {
  // Gather is a LOCAL-model algorithm: max message width grows with the
  // component, unlike the CONGEST-friendly Greedy MIS.
  Graph g = make_line(16);
  EngineOptions opt;
  opt.congest_word_limit = 4;
  auto result = run_algorithm(g, mis_gather_algorithm(), opt);
  EXPECT_GT(result.congest_violations, 0);
  EXPECT_GT(result.max_message_words, 4);
}

}  // namespace
}  // namespace dgap
