#include <gtest/gtest.h>

#include "coloring/checkers.hpp"
#include "coloring/linial.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/checkers.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "sim/phase.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {
namespace {

TEST(LinialSchedule, StepsUsePrimesAboveKDelta) {
  auto s = linial_schedule(1'000'000, 4);
  for (const auto& step : s.steps) {
    EXPECT_TRUE(is_prime(step.q));
    EXPECT_GT(step.q, step.k * 4);
    EXPECT_GE(ipow_sat(step.q, static_cast<int>(step.k + 1)), 1);
  }
  EXPECT_GT(s.total_rounds, 0);
}

TEST(LinialSchedule, ZeroDegreeIsTrivial) {
  auto s = linial_schedule(100, 0);
  EXPECT_TRUE(s.steps.empty());
  EXPECT_EQ(s.final_colors, 1);
  EXPECT_EQ(s.total_rounds, 1);
}

TEST(LinialSchedule, IterationCountGrowsLikeLogStar) {
  // Doubling d exponentially should add only O(1) iterations.
  const auto small = linial_schedule(1 << 10, 3).steps.size();
  const auto large = linial_schedule(1LL << 40, 3).steps.size();
  EXPECT_LE(large, small + 3);
}

TEST(LinialSchedule, FinalPaletteIndependentOfD) {
  const auto a = linial_schedule(1000, 5);
  const auto b = linial_schedule(1'000'000'000, 5);
  EXPECT_EQ(a.final_colors, b.final_colors);
  EXPECT_EQ(a.reduction_rounds, b.reduction_rounds);
}

TEST(LinialColoring, ProperOnFamilies) {
  Rng rng(1);
  for (auto make : {+[]() { return make_line(12); },
                    +[]() { return make_ring(9); },
                    +[]() { return make_clique(6); },
                    +[]() { return make_grid(4, 4); },
                    +[]() { return make_star(8); },
                    +[]() { return make_hypercube(4); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    auto result = run_algorithm(g, linial_coloring_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_coloring(g, result.outputs, g.max_degree() + 1))
        << check_coloring(g, result.outputs, g.max_degree() + 1);
  }
}

TEST(LinialColoring, RoundsMatchSchedule) {
  Rng rng(2);
  Graph g = make_ring(20);
  randomize_ids(g, rng);
  auto result = run_algorithm(g, linial_coloring_algorithm());
  // The wrapper outputs in the round the phase reports finished.
  EXPECT_EQ(result.rounds, linial_total_rounds(g.id_bound(), g.max_degree()));
}

TEST(LinialColoring, RoundsIndependentOfNForFixedDelta) {
  // Round count depends on (d, Δ) only — the hallmark the Parallel template
  // exploits. Same Δ and d ⇒ same round count on very different n.
  Rng rng(3);
  Graph small = make_ring(8);
  Graph large = make_ring(200);
  randomize_ids_sparse(small, 1000, rng);
  randomize_ids_sparse(large, 1000, rng);
  auto rs = run_algorithm(small, linial_coloring_algorithm());
  auto rl = run_algorithm(large, linial_coloring_algorithm());
  EXPECT_EQ(rs.rounds, rl.rounds);
}

TEST(LinialColoring, SparseHugeIdentifiersStillWork) {
  Rng rng(4);
  Graph g = make_grid(5, 4);
  randomize_ids_sparse(g, 1'000'000'000, rng);
  auto result = run_algorithm(g, linial_coloring_algorithm());
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_coloring(g, result.outputs, g.max_degree() + 1));
}

TEST(LinialColoring, CongestFriendly) {
  // Linial sends one word per message (the current color).
  Rng rng(5);
  Graph g = make_ring(16);
  randomize_ids(g, rng);
  EngineOptions opt;
  opt.congest_word_limit = 1;
  auto result = run_algorithm(g, linial_coloring_algorithm(), opt);
  EXPECT_EQ(result.congest_violations, 0);
}

// Fault injection: kill a random subset of nodes mid-run; the surviving
// partial coloring must stay proper — this is the fault tolerance that
// Lemma 11 requires of part 1.
class KillSwitchColoring final : public NodeProgram {
 public:
  KillSwitchColoring(int kill_round, bool victim)
      : kill_round_(kill_round), victim_(victim) {}

  void on_send(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    phase_.on_send(ctx, ch);
  }
  void on_receive(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    if (victim_ && ctx.round() == kill_round_) {
      ctx.set_output(-1);  // "crashed" marker
      ctx.terminate();
      return;
    }
    if (phase_.on_receive(ctx, ch) == PhaseProgram::Status::kFinished) {
      ctx.set_output(phase_.palette_color());
      ctx.terminate();
    }
  }

 private:
  LinialColoringPhase phase_;
  int kill_round_;
  bool victim_;
};

TEST(LinialColoring, FaultTolerantUnderMidRunCrashes) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(16, 0.25, rng);
    randomize_ids(g, rng);
    const int total = linial_total_rounds(g.id_bound(), g.max_degree());
    std::vector<bool> victim(16, false);
    for (NodeId v = 0; v < 16; ++v) victim[v] = rng.flip(0.3);
    const int kill_round = 1 + static_cast<int>(rng.next_below(
                                   static_cast<std::uint64_t>(total)));
    auto result = run_algorithm(g, [&](NodeId v) {
      return std::make_unique<KillSwitchColoring>(kill_round, victim[v]);
    });
    EXPECT_TRUE(result.completed);
    // Survivors must form a proper partial coloring.
    auto outputs = result.outputs;
    for (auto& o : outputs) {
      if (o == -1) o = kUndefined;  // crashed nodes have no color
    }
    EXPECT_TRUE(is_proper_partial_coloring(g, outputs, g.max_degree() + 1))
        << "trial " << trial << " kill_round " << kill_round;
  }
}

TEST(LinialSchedule, RespectingVariantReexaminesEveryClass) {
  const auto plain = linial_schedule(10000, 4);
  const auto full = linial_schedule(10000, 4, /*reduce_all_classes=*/true);
  EXPECT_EQ(full.final_colors, plain.final_colors);
  EXPECT_EQ(full.reduction_rounds, full.final_colors);
  EXPECT_GT(full.total_rounds, plain.total_rounds);
  EXPECT_EQ(linial_total_rounds_respecting(10000, 4), full.total_rounds);
}

// The output-respecting mode must extend a proper partial coloring: some
// nodes pre-terminate with fixed palette colors; survivors run Linial and
// the union must stay proper.
TEST(LinialColoring, RespectMode_ExtendsPartialColorings) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(16, 0.3, rng);
    randomize_ids(g, rng);
    // Pre-color a random independent-ish subset greedily.
    std::vector<Value> fixed(16, kUndefined);
    const Value palette = g.max_degree() + 1;
    for (NodeId v = 0; v < 16; ++v) {
      if (!rng.flip(0.4)) continue;
      std::vector<bool> used(static_cast<std::size_t>(palette + 1), false);
      for (NodeId u : g.neighbors(v)) {
        if (fixed[u] != kUndefined) used[fixed[u]] = true;
      }
      for (Value c = 1; c <= palette; ++c) {
        if (!used[c]) {
          fixed[v] = c;
          break;
        }
      }
    }
    class Program final : public NodeProgram {
     public:
      Program(Value fixed_color)
          : fixed_(fixed_color),
            phase_(LinialOptions{.respect_terminated_outputs = true}) {}
      void on_send(NodeContext& ctx) override {
        Channel ch(ctx, 0);
        if (fixed_ == kUndefined) phase_.on_send(ctx, ch);
      }
      void on_receive(NodeContext& ctx) override {
        Channel ch(ctx, 0);
        if (fixed_ != kUndefined) {
          ctx.set_output(fixed_);
          ctx.terminate();
          return;
        }
        if (phase_.on_receive(ctx, ch) == PhaseProgram::Status::kFinished) {
          ctx.set_output(phase_.palette_color());
          ctx.terminate();
        }
      }

     private:
      Value fixed_;
      LinialColoringPhase phase_;
    };
    auto result = run_algorithm(g, [&](NodeId v) {
      return std::make_unique<Program>(fixed[v]);
    });
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_coloring(g, result.outputs, palette))
        << "trial " << trial << ": "
        << check_coloring(g, result.outputs, palette);
  }
}

TEST(LinialKw, ScheduleShorterForLargerDelta) {
  // The KW block reduction replaces the O(Δ²) class-by-class tail with
  // O(Δ log Δ) rounds; for Δ = 8 the win is already large.
  for (int delta : {6, 8, 12, 16}) {
    const int plain = linial_total_rounds(1'000'000, delta);
    const int kw = linial_total_rounds_kw(1'000'000, delta);
    EXPECT_LE(kw, plain) << "delta " << delta;  // never worse
    if (delta >= 8) {
      EXPECT_LT(kw, plain) << "delta " << delta;
    }
  }
  // Both still grow only like log* in d.
  const int small_d = linial_total_rounds_kw(1 << 10, 8);
  const int large_d = linial_total_rounds_kw(1LL << 40, 8);
  EXPECT_LE(large_d, small_d + 4);
}

TEST(LinialKw, ProperColoringsOnFamilies) {
  Rng rng(21);
  for (auto make : {+[]() { return make_ring(16); },
                    +[]() { return make_clique(8); },
                    +[]() { return make_grid(4, 5); },
                    +[]() { return make_hypercube(4); },
                    +[]() { return make_complete_bipartite(5, 6); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    auto factory = [](NodeId) -> std::unique_ptr<NodeProgram> {
      class Program final : public NodeProgram {
       public:
        Program()
            : phase_(LinialOptions{.respect_terminated_outputs = false,
                                   .kw_reduction = true}) {}
        void on_send(NodeContext& ctx) override {
          Channel ch(ctx, 0);
          phase_.on_send(ctx, ch);
        }
        void on_receive(NodeContext& ctx) override {
          Channel ch(ctx, 0);
          if (phase_.on_receive(ctx, ch) == PhaseProgram::Status::kFinished) {
            ctx.set_output(phase_.palette_color());
            ctx.terminate();
          }
        }

       private:
        LinialColoringPhase phase_;
      };
      return std::make_unique<Program>();
    };
    auto result = run_algorithm(g, factory);
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_coloring(g, result.outputs, g.max_degree() + 1))
        << check_coloring(g, result.outputs, g.max_degree() + 1);
    EXPECT_EQ(result.rounds,
              linial_total_rounds_kw(g.id_bound(), g.max_degree()));
  }
}

TEST(LinialKw, ParallelTemplateVariantValidAndCapped) {
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(20, 0.35, rng);  // denser: larger Δ, KW matters
    randomize_ids(g, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(12)), rng);
    auto result = run_with_predictions(g, pred, mis_parallel_linial_kw());
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
    const int r1 = linial_total_rounds_kw(g.id_bound(), g.max_degree());
    EXPECT_LE(result.rounds, 3 + r1 + 1 + g.max_degree() + 2 + 1);
  }
}

TEST(LinialMisReference, SolvesMis) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(14, 0.3, rng);
    randomize_ids(g, rng);
    auto result =
        run_algorithm(g, phase_as_algorithm(make_linial_mis_reference()));
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
    EXPECT_LE(result.rounds,
              linial_mis_total_rounds(g.id_bound(), g.max_degree()));
  }
}

}  // namespace
}  // namespace dgap
