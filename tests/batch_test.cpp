// Batch runner contract (docs/MODEL.md, "Batch execution model"):
//  * results are bit-identical to the serial loop for any worker count and
//    any submission order, keyed by submission index;
//  * the graph cache returns the same immutable Graph object for equal
//    specs;
//  * a throwing job fails alone, with its index and error reported;
//  * engine-level reuse (shared scratch, shared thread pool) never changes
//    results.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/algorithms.hpp"
#include "mis/checkers.hpp"
#include "predict/generators.hpp"
#include "random/luby.hpp"
#include "sim/batch.hpp"
#include "sim/thread_pool.hpp"
#include "sim/transcript.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {
namespace {

/// A job expressed re-runnably: the factory is re-created per execution so
/// the same job can be run serially and through batches repeatedly.
struct SweepCase {
  std::shared_ptr<const Graph> graph;
  Predictions pred;
  ProgramFactory (*make)();
  EngineOptions options;
};

std::vector<SweepCase> sweep_cases(GraphCache& cache) {
  std::vector<SweepCase> cases;
  ProgramFactory (*algos[])() = {&mis_simple_greedy, &mis_consecutive_gather,
                                 &mis_parallel_linial};
  const GraphSpec specs[] = {
      GraphSpec::line(24, GraphSpec::IdPolicy::kSorted),
      GraphSpec::gnp(20, 0.2, /*seed=*/7, GraphSpec::IdPolicy::kRandomized),
      GraphSpec::grid(5, 4),
  };
  int salt = 0;
  for (const GraphSpec& spec : specs) {
    auto g = cache.get(spec);
    Rng rng(100 + salt);
    auto base = mis_correct_prediction(*g, rng);
    for (int flips : {0, 3, 9}) {
      auto pred = flip_bits(*g, base, flips, rng);
      for (auto make : algos) {
        EngineOptions opt;
        opt.record_terminations = (salt % 2 == 0);
        opt.record_active_per_round = (salt % 3 == 0);
        cases.push_back({g, pred, make, opt});
        ++salt;
      }
    }
  }
  return cases;
}

std::vector<RunResult> run_serially(const std::vector<SweepCase>& cases) {
  std::vector<RunResult> out;
  for (const SweepCase& c : cases) {
    out.push_back(
        run_with_predictions(*c.graph, c.pred, c.make(), c.options));
  }
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.outputs, b.outputs) << label;
  EXPECT_EQ(a.edge_outputs, b.edge_outputs) << label;
  EXPECT_EQ(a.termination_round, b.termination_round) << label;
  EXPECT_EQ(a.total_messages, b.total_messages) << label;
  EXPECT_EQ(a.total_words, b.total_words) << label;
  EXPECT_EQ(a.max_message_words, b.max_message_words) << label;
  EXPECT_EQ(a.congest_violations, b.congest_violations) << label;
  EXPECT_EQ(a.active_per_round, b.active_per_round) << label;
  EXPECT_EQ(a.terminations_per_round, b.terminations_per_round) << label;
  EXPECT_EQ(result_checksum(a), result_checksum(b)) << label;
}

TEST(Batch, BitIdenticalAcrossWorkerCounts) {
  GraphCache cache;
  const auto cases = sweep_cases(cache);
  const auto serial = run_serially(cases);
  for (int workers : {1, 2, 4}) {
    BatchRunner runner({workers});
    for (const SweepCase& c : cases) {
      runner.add(*c.graph, c.make(), c.pred, c.options);
    }
    auto batch = take_results(runner.run_all());
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_identical(serial[i], batch[i],
                       "workers=" + std::to_string(workers) + " job " +
                           std::to_string(i));
    }
    EXPECT_EQ(results_checksum(serial), results_checksum(batch));
  }
}

TEST(Batch, SubmissionOrderKeysResultsUnderShuffle) {
  GraphCache cache;
  const auto cases = sweep_cases(cache);
  const auto serial = run_serially(cases);
  std::vector<std::size_t> perm(cases.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng rng(42);
  rng.shuffle(perm);

  BatchRunner runner({3});
  for (std::size_t p : perm) {
    const SweepCase& c = cases[p];
    runner.add(*c.graph, c.make(), c.pred, c.options);
  }
  auto shuffled = take_results(runner.run_all());
  ASSERT_EQ(shuffled.size(), serial.size());
  // Result slot i holds the i-th *submitted* job, i.e. original job
  // perm[i] — independent of completion order.
  for (std::size_t i = 0; i < perm.size(); ++i) {
    expect_identical(serial[perm[i]], shuffled[i],
                     "slot " + std::to_string(i));
  }
}

TEST(Batch, SpecJobsMatchBorrowedGraphJobs) {
  const auto spec =
      GraphSpec::gnp(18, 0.25, /*seed=*/3, GraphSpec::IdPolicy::kRandomized);
  const Graph g = spec.build();
  Rng rng(5);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), 4, rng);

  BatchRunner runner({2});
  runner.add(spec, mis_simple_greedy(), pred);
  runner.add(g, mis_simple_greedy(), pred);
  auto results = take_results(runner.run_all());
  expect_identical(results[0], results[1], "spec vs borrowed");
  EXPECT_TRUE(is_valid_mis(g, results[0].outputs));
}

TEST(Batch, GraphCacheHitReturnsSameObject) {
  GraphCache cache;
  const auto spec = GraphSpec::gnp(30, 0.15, /*seed=*/11);
  auto first = cache.get(spec);
  auto second = cache.get(spec);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);

  // A different seed is a different instance.
  auto other = cache.get(GraphSpec::gnp(30, 0.15, /*seed=*/12));
  EXPECT_NE(first.get(), other.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Batch, RunnerResolvesRepeatedSpecsThroughCache) {
  BatchRunner runner({2});
  const auto spec = GraphSpec::line(16, GraphSpec::IdPolicy::kSorted);
  for (int i = 0; i < 6; ++i) runner.add(spec, greedy_mis_algorithm());
  auto results = take_results(runner.run_all());
  EXPECT_EQ(runner.graph_cache().misses(), 1);
  EXPECT_EQ(runner.graph_cache().hits(), 5);
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_identical(results[0], results[i], "job " + std::to_string(i));
  }
}

/// Terminates without assigning an output — DGAP_REQUIRE throws inside the
/// engine's receive phase.
struct TerminateWithoutOutput : NodeProgram {
  void on_send(NodeContext&) override {}
  void on_receive(NodeContext& ctx) override { ctx.terminate(); }
};

TEST(Batch, ThrowingJobFailsAloneWithIndexReported) {
  Graph g = make_ring(12);
  sorted_ids(g);
  BatchRunner runner({2});
  runner.add(g, greedy_mis_algorithm());
  runner.add(g, [](NodeId) -> std::unique_ptr<NodeProgram> {
    return std::make_unique<TerminateWithoutOutput>();
  });
  runner.add(g, greedy_mis_algorithm());
  auto results = runner.run_all();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_TRUE(results[2].ok);
  EXPECT_EQ(results[1].index, 1u);
  EXPECT_NE(results[1].error.find("terminates only after"),
            std::string::npos)
      << results[1].error;
  expect_identical(results[0].result, results[2].result, "surviving jobs");
  EXPECT_TRUE(is_valid_mis(g, results[0].result.outputs));

  // take_results surfaces the failure, naming the job.
  auto again = runner.run_all();  // empty batch is fine
  EXPECT_TRUE(again.empty());
  runner.add(g, [](NodeId) -> std::unique_ptr<NodeProgram> {
    return std::make_unique<TerminateWithoutOutput>();
  });
  EXPECT_THROW(take_results(runner.run_all()), std::runtime_error);
}

TEST(Batch, ScratchReuseAcrossEnginesIsBitIdentical) {
  // Big run, then a small run, on the same scratch: capacity persists,
  // results must not. The failed-run case exercises the mid-round-abort
  // invariant restore (nonzero recv counts, stale inbox stamps).
  Rng rng(17);
  Graph big = make_gnp(64, 0.15, rng);
  randomize_ids(big, rng);
  Graph small = make_line(10);
  sorted_ids(small);

  auto fresh_big = run_algorithm(big, luby_mis_algorithm(5));
  auto fresh_small = run_algorithm(small, greedy_mis_algorithm());

  EngineScratch scratch;
  {
    Engine e(big, empty_predictions(), luby_mis_algorithm(5), {}, nullptr,
             &scratch);
    expect_identical(fresh_big, e.run(), "big on shared scratch");
  }
  {
    Engine e(small, empty_predictions(), greedy_mis_algorithm(), {}, nullptr,
             &scratch);
    expect_identical(fresh_small, e.run(), "small after big");
  }
  {
    Engine e(small, empty_predictions(),
             [](NodeId) -> std::unique_ptr<NodeProgram> {
               return std::make_unique<TerminateWithoutOutput>();
             },
             {}, nullptr, &scratch);
    EXPECT_THROW(e.run(), std::invalid_argument);
  }
  {
    Engine e(small, empty_predictions(), greedy_mis_algorithm(), {}, nullptr,
             &scratch);
    expect_identical(fresh_small, e.run(), "small after aborted run");
  }
}

TEST(Batch, SharedThreadPoolMatchesOwnedPoolAndSerial) {
  Rng rng(23);
  Graph g = make_gnp(48, 0.2, rng);
  randomize_ids(g, rng);
  auto serial = run_algorithm(g, luby_mis_algorithm(9));

  EngineOptions threaded;
  threaded.num_threads = 2;
  auto owned = run_algorithm(g, luby_mis_algorithm(9), threaded);
  expect_identical(serial, owned, "owned pool");

  ThreadPool pool(2);
  for (int rep = 0; rep < 3; ++rep) {
    auto shared = run_algorithm(g, luby_mis_algorithm(9), threaded, &pool);
    expect_identical(serial, shared, "shared pool rep " + std::to_string(rep));
  }
  // Slot-count mismatch is a contract violation, not a silent fallback.
  EXPECT_THROW(
      {
        EngineOptions four;
        four.num_threads = 4;
        run_algorithm(g, luby_mis_algorithm(9), four, &pool);
      },
      std::invalid_argument);
}

// Full-transcript capture: byte equality across worker counts, shuffled
// submission, and against a directly recorded serial run. Stronger than
// the checksum comparisons above — a transcript pins every delivered word
// of every round, so scheduling cannot leak into *any* observable, not
// just the aggregated RunResult fields.
TEST(Batch, CapturedTranscriptsAreSchedulingInvariant) {
  GraphCache cache;
  const auto cases = sweep_cases(cache);

  // Reference bytes: record each job serially, outside any batch.
  std::vector<std::vector<std::uint8_t>> reference;
  for (const SweepCase& c : cases) {
    EngineOptions opt = c.options;
    opt.num_threads = 1;
    reference.push_back(
        record_run(*c.graph, c.pred, c.make(), opt).transcript);
  }

  auto make_capture_job = [](const SweepCase& c) {
    BatchJob job = make_job(*c.graph, c.make(), c.pred, c.options);
    job.capture_transcript = true;
    return job;
  };

  for (int workers : {1, 2, 4}) {
    BatchRunner runner({workers});
    for (const SweepCase& c : cases) runner.add(make_capture_job(c));
    const auto results = runner.run_all();
    ASSERT_EQ(results.size(), cases.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok) << results[i].error;
      EXPECT_EQ(results[i].transcript, reference[i])
          << "workers=" << workers << " job " << i;
    }
  }

  // Shuffled submission: slot i's bytes are original job perm[i]'s bytes.
  std::vector<std::size_t> perm(cases.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng rng(4242);
  rng.shuffle(perm);
  BatchRunner runner({3});
  for (std::size_t p : perm) runner.add(make_capture_job(cases[p]));
  const auto shuffled = runner.run_all();
  for (std::size_t i = 0; i < perm.size(); ++i) {
    ASSERT_TRUE(shuffled[i].ok) << shuffled[i].error;
    EXPECT_EQ(shuffled[i].transcript, reference[perm[i]])
        << "slot " << i;
  }
}

TEST(Batch, SpecJobsEmbedTheirSpecInTheTranscript) {
  const auto spec =
      GraphSpec::gnp(18, 0.25, /*seed=*/3, GraphSpec::IdPolicy::kRandomized);
  BatchRunner runner({2});
  BatchJob job = make_job(spec, luby_mis_algorithm(5));
  job.capture_transcript = true;
  job.transcript_label = "spec_job";
  runner.add(std::move(job));
  const auto results = runner.run_all();
  ASSERT_TRUE(results[0].ok) << results[0].error;
  const Transcript t = decode_transcript(results[0].transcript);
  EXPECT_EQ(t.label, "spec_job");
  ASSERT_TRUE(t.spec.has_value());
  EXPECT_EQ(*t.spec, spec);
  EXPECT_EQ(t.n, runner.graph_cache().get(spec)->num_nodes());
  EXPECT_TRUE(t.summary.completed);
}

TEST(Batch, CaptureRejectsJobsWithTheirOwnSink) {
  Graph g = make_ring(8);
  TranscriptWriter writer;
  BatchJob job = make_job(g, greedy_mis_algorithm());
  job.capture_transcript = true;
  job.options.trace_sink = &writer;
  BatchRunner runner({1});
  EXPECT_THROW(runner.add(std::move(job)), std::invalid_argument);
}

TEST(Batch, JobNumThreadsIsForcedSingleThreaded) {
  // num_threads moves to the batch level: a job asking for 4 engine
  // threads still runs (single-threaded) and still matches the serial
  // single-threaded result bit for bit.
  Graph g = make_ring(30);
  sorted_ids(g);
  auto serial = run_algorithm(g, greedy_mis_algorithm());
  BatchRunner runner({2});
  EngineOptions opt;
  opt.num_threads = 4;
  runner.add(g, greedy_mis_algorithm(), Predictions{}, opt);
  auto results = take_results(runner.run_all());
  expect_identical(serial, results[0], "forced single-threaded");
}

}  // namespace
}  // namespace dgap
