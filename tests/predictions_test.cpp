#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "predict/predictions.hpp"

namespace dgap {
namespace {

TEST(Predictions, NodeValues) {
  Predictions p(std::vector<Value>{1, 0, 1});
  EXPECT_TRUE(p.has_node_values());
  EXPECT_FALSE(p.has_edge_values());
  EXPECT_EQ(p.node(0), 1);
  EXPECT_EQ(p.node(1), 0);
  EXPECT_THROW(p.node(5), std::invalid_argument);
}

TEST(Predictions, EdgeValuesAlignWithAdjacency) {
  Graph g = make_line(3);
  auto p = Predictions::for_edges(g, {{5}, {5, 6}, {6}});
  EXPECT_EQ(p.edge(g, 0, 1), 5);
  EXPECT_EQ(p.edge(g, 1, 0), 5);
  EXPECT_EQ(p.edge(g, 1, 2), 6);
  EXPECT_THROW(p.edge(g, 0, 2), std::invalid_argument);  // not an edge
}

TEST(Predictions, EdgeValuesRejectMisalignedRows) {
  Graph g = make_line(3);
  EXPECT_THROW(Predictions::for_edges(g, {{5}, {5}, {6}}),
               std::invalid_argument);
}

TEST(PredictionGenerators, CorrectMisPredictionHasZeroError) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(25, 0.2, rng);
    auto pred = mis_correct_prediction(g, rng);
    EXPECT_EQ(eta1_mis(g, pred), 0) << "trial " << trial;
  }
}

TEST(PredictionGenerators, FlipBitsFlipsExactlyK) {
  Rng rng(2);
  Graph g = make_line(20);
  auto base = mis_correct_prediction(g, rng);
  auto flipped = flip_bits(g, base, 5, rng);
  int diff = 0;
  for (NodeId v = 0; v < 20; ++v) {
    if (base.node(v) != flipped.node(v)) ++diff;
  }
  EXPECT_EQ(diff, 5);
}

TEST(PredictionGenerators, FlipBitsClampsToN) {
  Rng rng(3);
  Graph g = make_line(4);
  auto base = all_same(g, 0);
  auto flipped = flip_bits(g, base, 100, rng);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(flipped.node(v), 1);
}

TEST(PredictionGenerators, AllSame) {
  Graph g = make_ring(5);
  auto p = all_same(g, 1);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(p.node(v), 1);
}

TEST(PredictionGenerators, GridStripeMatchesFigure2Pattern) {
  auto p = grid_stripe_prediction(8, 8);
  // (0,0) → both mod-4 coords in {0,1} → black.
  EXPECT_EQ(p.node(grid_index(8, 0, 0)), 1);
  EXPECT_EQ(p.node(grid_index(8, 1, 1)), 1);
  EXPECT_EQ(p.node(grid_index(8, 2, 2)), 1);
  EXPECT_EQ(p.node(grid_index(8, 2, 0)), 0);
  EXPECT_EQ(p.node(grid_index(8, 0, 3)), 0);
}

TEST(PredictionGenerators, PerturbEdgesKeepsNodeSet) {
  Rng rng(4);
  Graph g = make_random_connected(30, 15, rng);
  Graph h = perturb_edges(g, 5, 5, rng);
  EXPECT_EQ(h.num_nodes(), 30);
  EXPECT_EQ(h.num_edges(), g.num_edges());  // -5 +5
  EXPECT_EQ(h.ids(), g.ids());
}

TEST(PredictionGenerators, MatchingCorrectPredictionIsErrorFree) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(20, 0.25, rng);
    auto pred = matching_correct_prediction(g, rng);
    EXPECT_EQ(eta1_matching(g, pred), 0);
  }
}

TEST(PredictionGenerators, BreakMatchesIntroducesError) {
  Rng rng(6);
  Graph g = make_line(20);
  auto base = matching_correct_prediction(g, rng);
  auto broken = break_matches(g, base, 3, rng);
  EXPECT_GT(eta1_matching(g, broken), 0);
}

TEST(PredictionGenerators, ColoringCorrectPredictionIsErrorFree) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(20, 0.3, rng);
    auto pred = coloring_correct_prediction(g, rng);
    EXPECT_EQ(eta1_coloring(g, pred), 0);
  }
}

TEST(PredictionGenerators, EdgeColoringCorrectPredictionIsErrorFree) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(15, 0.3, rng);
    auto pred = edge_coloring_correct_prediction(g, rng);
    EXPECT_EQ(eta1_edge_coloring(g, pred), 0);
  }
}

TEST(PredictionGenerators, ScrambleEdgeColorsStaysSymmetric) {
  Rng rng(9);
  Graph g = make_gnp(12, 0.4, rng);
  auto base = edge_coloring_correct_prediction(g, rng);
  auto scrambled = scramble_edge_colors(g, base, 6, rng);
  for (auto [u, v] : g.edges()) {
    EXPECT_EQ(scrambled.edge(g, u, v), scrambled.edge(g, v, u));
  }
}

}  // namespace
}  // namespace dgap
