// EngineScratch reuse contract (referenced from EngineScratch's doc
// comment in sim/engine.hpp): handing one scratch to consecutive engines
// over DECREASING graph sizes must be invisible in the output. Decreasing
// is the dangerous direction — every scratch array retains capacity (and
// stale contents) from the larger predecessor, so any engine code path
// that trusts vector size instead of re-initializing the live prefix
// would read a dead node's flags, inbox stamps, or CSR neighbor pool.
// The witness is the strongest one the simulator has: full kPayloads
// transcripts of the reused-scratch runs must be byte-identical to
// fresh-scratch runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/algorithms.hpp"
#include "random/luby.hpp"
#include "sim/engine.hpp"
#include "sim/transcript.hpp"

namespace dgap {
namespace {

struct Step {
  std::string label;
  Graph graph;
  ProgramFactory (*make)();
};

/// Strictly decreasing sizes, alternating workloads so the scratch's
/// message arena, idle/wake worklists, and SoA prefixes all shrink:
/// Luby broadcasts on every round; greedy on a sorted ring exercises the
/// idle path with most nodes parked.
std::vector<Step> decreasing_steps() {
  std::vector<Step> steps;
  {
    Rng rng(71);
    Graph g = make_gnp(512, 8.0 / 512, rng);
    randomize_ids(g, rng);
    steps.push_back({"gnp512/luby", std::move(g), +[] {
                       return luby_mis_algorithm(42);
                     }});
  }
  {
    Rng rng(72);
    Graph g = make_grid(16, 16);
    randomize_ids(g, rng);
    steps.push_back({"grid256/luby", std::move(g), +[] {
                       return luby_mis_algorithm(7);
                     }});
  }
  {
    Rng rng(73);
    Graph g = make_gnp(128, 12.0 / 128, rng);
    randomize_ids(g, rng);
    steps.push_back(
        {"gnp128/greedy", std::move(g), &greedy_mis_algorithm});
  }
  {
    Graph g = make_ring(64);
    sorted_ids(g);
    steps.push_back(
        {"ring64/greedy", std::move(g), &greedy_mis_algorithm});
  }
  {
    Graph g = make_line(16);
    sorted_ids(g);
    steps.push_back({"line16/greedy", std::move(g), &greedy_mis_algorithm});
  }
  return steps;
}

/// One engine run with a full-payload transcript; `scratch` == nullptr is
/// the fresh-buffers baseline.
std::vector<std::uint8_t> record(const Step& step, EngineScratch* scratch,
                                 int num_threads = 1) {
  TranscriptWriter writer(TraceDetail::kPayloads, "scratch_reuse");
  EngineOptions opt;
  opt.num_threads = num_threads;
  opt.trace_sink = &writer;
  Engine engine(step.graph, empty_predictions(), step.make(), opt, nullptr,
                scratch);
  const RunResult result = engine.run();
  EXPECT_TRUE(result.completed) << step.label;
  return writer.take_bytes();
}

TEST(ScratchReuse, DecreasingSizesMatchFreshScratchByteForByte) {
  const std::vector<Step> steps = decreasing_steps();
  EngineScratch scratch;
  for (const Step& step : steps) {
    const std::vector<std::uint8_t> fresh = record(step, nullptr);
    const std::vector<std::uint8_t> reused = record(step, &scratch);
    EXPECT_EQ(fresh, reused) << step.label;
  }
}

TEST(ScratchReuse, SurvivesRepeatedShrinkGrowCycles) {
  // Re-run the whole descending ladder through the same scratch several
  // times: each cycle re-grows to the largest size and shrinks again, so
  // capacity is stale in both directions by the second pass.
  const std::vector<Step> steps = decreasing_steps();
  std::vector<std::vector<std::uint8_t>> fresh;
  for (const Step& step : steps) fresh.push_back(record(step, nullptr));
  EngineScratch scratch;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (std::size_t i = 0; i < steps.size(); ++i) {
      EXPECT_EQ(fresh[i], record(steps[i], &scratch))
          << steps[i].label << " cycle " << cycle;
    }
  }
}

TEST(ScratchReuse, ThreadedDeliveryOnReusedScratchStaysIdentical) {
  // Sharded delivery writes per-thread send buffers through the same
  // scratch; the serial fresh-scratch transcript is still the contract.
  const std::vector<Step> steps = decreasing_steps();
  EngineScratch scratch;
  for (const Step& step : steps) {
    const std::vector<std::uint8_t> fresh = record(step, nullptr);
    EXPECT_EQ(fresh, record(step, &scratch, /*num_threads=*/2))
        << step.label;
  }
}

}  // namespace
}  // namespace dgap
