#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mis/algorithms.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "sim/phase.hpp"

namespace dgap {
namespace {

// ---- Checkers ----------------------------------------------------------------

TEST(MisCheckers, ValidMisAccepted) {
  Graph g = make_line(4);
  EXPECT_TRUE(is_valid_mis(g, {1, 0, 0, 1}));
  EXPECT_TRUE(is_valid_mis(g, {0, 1, 0, 1}));
}

TEST(MisCheckers, AdjacentOnesRejected) {
  Graph g = make_line(3);
  EXPECT_FALSE(is_valid_mis(g, {1, 1, 0}));
  EXPECT_NE(check_mis(g, {1, 1, 0}).find("both output 1"), std::string::npos);
}

TEST(MisCheckers, NonMaximalRejected) {
  Graph g = make_line(5);
  EXPECT_FALSE(is_valid_mis(g, {1, 0, 0, 0, 1}));  // node 2 uncovered
}

TEST(MisCheckers, MissingOutputRejected) {
  Graph g = make_line(2);
  EXPECT_FALSE(is_valid_mis(g, {1, kUndefined}));
  EXPECT_FALSE(is_valid_mis(g, {1, kLeftoverActive}));
}

TEST(MisCheckers, ExtendablePartialSolutions) {
  Graph g = make_line(5);
  // Node 1 in the set, 0 and 2 out: extendable.
  EXPECT_TRUE(is_extendable_partial_mis(g, {0, 1, 0, kUndefined, kUndefined}));
  // Node 1 in the set but neighbor 2 undecided: NOT extendable.
  EXPECT_FALSE(
      is_extendable_partial_mis(g, {0, 1, kUndefined, kUndefined, kUndefined}));
  // Node 0 out with no decided 1-neighbor: NOT extendable.
  EXPECT_FALSE(
      is_extendable_partial_mis(g, {0, kUndefined, kUndefined, kUndefined,
                                    kUndefined}));
  // Empty partial solution is trivially extendable.
  EXPECT_TRUE(is_extendable_partial_mis(
      g, std::vector<Value>(5, kUndefined)));
}

// ---- Greedy MIS (Algorithm 1) --------------------------------------------------

TEST(GreedyMis, ValidOnFamilies) {
  Rng rng(1);
  for (auto make : {+[]() { return make_line(17); },
                    +[]() { return make_ring(12); },
                    +[]() { return make_clique(8); },
                    +[]() { return make_star(9); },
                    +[]() { return make_grid(5, 4); },
                    +[]() { return make_wheel_fk(7); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    auto result = run_algorithm(g, greedy_mis_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs)) << check_mis(g, result.outputs);
  }
}

// Lemma 1: round complexity at most the largest component size.
TEST(GreedyMis, Lemma1RoundBound) {
  Rng rng(2);
  for (int trial = 0; trial < 25; ++trial) {
    Graph g = make_gnp(20, 0.15, rng);
    randomize_ids(g, rng);
    auto result = run_algorithm(g, greedy_mis_algorithm());
    NodeId mu1 = 0;
    for (const auto& comp : connected_components(g)) {
      mu1 = std::max(mu1, static_cast<NodeId>(comp.size()));
    }
    EXPECT_LE(result.rounds, std::max<NodeId>(mu1, 1)) << "trial " << trial;
  }
}

// Lemma 2: round complexity at most μ2 + 1.
TEST(GreedyMis, Lemma2RoundBound) {
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    Graph g = make_gnp(16, 0.25, rng);
    randomize_ids(g, rng);
    auto result = run_algorithm(g, greedy_mis_algorithm());
    int mu2 = mu2_max(g, connected_components(g));
    EXPECT_LE(result.rounds, mu2 + 1) << "trial " << trial;
  }
}

// Lemma 2 on a clique: 2α = 2, done in ≤ 3 rounds regardless of size.
TEST(GreedyMis, FastOnCliques) {
  Graph g = make_clique(40);
  auto result = run_algorithm(g, greedy_mis_algorithm());
  EXPECT_LE(result.rounds, 3);
  EXPECT_TRUE(is_valid_mis(g, result.outputs));
}

// Lemma 5 tightness: on a line with identifiers increasing left-to-right,
// only the right end makes progress — Θ(n) rounds.
TEST(GreedyMis, WorstCaseLineIsLinear) {
  Graph g = make_line(30);
  sorted_ids(g);
  auto result = run_algorithm(g, greedy_mis_algorithm());
  EXPECT_GE(result.rounds, (30 - 5) / 2);
  EXPECT_TRUE(is_valid_mis(g, result.outputs));
}

// Measure-uniformity: the round count on a subgraph-sized instance does not
// depend on the identifier domain d.
TEST(GreedyMis, MeasureUniformInIdDomain) {
  Rng rng(4);
  Graph g1 = make_ring(9);
  randomize_ids(g1, rng);
  Graph g2 = g1;
  // Same structure, ids spread over a domain 10^6 times larger.
  std::vector<Value> big;
  for (Value id : g1.ids()) big.push_back(id * 1000000);
  g2.set_ids(big);
  auto r1 = run_algorithm(g1, greedy_mis_algorithm());
  auto r2 = run_algorithm(g2, greedy_mis_algorithm());
  EXPECT_EQ(r1.rounds, r2.rounds);
  EXPECT_EQ(r1.outputs, r2.outputs);
}

// Every prefix of the run is an extendable partial solution at even rounds.
TEST(GreedyMis, PartialSolutionsExtendableAtEvenRounds) {
  Rng rng(5);
  Graph g = make_gnp(14, 0.2, rng);
  randomize_ids(g, rng);
  for (int cut = 2; cut <= 8; cut += 2) {
    EngineOptions opt;
    opt.max_rounds = cut;
    auto result = run_algorithm(g, greedy_mis_algorithm(), opt);
    EXPECT_TRUE(is_extendable_partial_mis(g, result.outputs))
        << "cut at round " << cut;
  }
}

// ---- Base / Init algorithms -----------------------------------------------------

std::vector<Value> run_phase_outputs(const Graph& g, const Predictions& pred,
                                     PhaseFactory factory, int* rounds = nullptr) {
  auto result =
      run_with_predictions(g, pred, phase_as_algorithm(std::move(factory)));
  if (rounds) *rounds = result.rounds;
  return result.outputs;
}

TEST(MisBasePhase, CorrectPredictionOutputsItInThreeRounds) {
  Rng rng(6);
  Graph g = make_grid(4, 4);
  auto pred = mis_correct_prediction(g, rng);
  int rounds = 0;
  auto outputs = run_phase_outputs(g, pred, make_mis_base(), &rounds);
  EXPECT_EQ(rounds, kMisBaseRounds);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(outputs[v], pred.node(v)) << "node " << v;
  }
  EXPECT_TRUE(is_valid_mis(g, outputs));
}

TEST(MisBasePhase, MatchesAnalyticStatus) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(15, 0.25, rng);
    randomize_ids(g, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(8)), rng);
    auto outputs = run_phase_outputs(g, pred, make_mis_base());
    auto status = mis_base_status(g, pred);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (status[v] == -1) {
        EXPECT_EQ(outputs[v], kLeftoverActive);
      } else {
        EXPECT_EQ(outputs[v], status[v]);
      }
    }
    EXPECT_TRUE(is_extendable_partial_mis(g, outputs));
  }
}

TEST(MisBasePhase, PruningProperty) {
  // Every node that outputs, outputs its own prediction.
  Rng rng(8);
  Graph g = make_gnp(15, 0.3, rng);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), 4, rng);
  auto outputs = run_phase_outputs(g, pred, make_mis_base());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mis_output_defined(outputs[v])) {
      EXPECT_EQ(outputs[v], pred.node(v));
    }
  }
}

TEST(MisInitPhase, ContainsBaseSolution) {
  // The init algorithm's independent set contains the base algorithm's
  // (reasonable initialization, Section 4).
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(15, 0.25, rng);
    randomize_ids(g, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(8)), rng);
    auto base = run_phase_outputs(g, pred, make_mis_base());
    auto init = run_phase_outputs(g, pred, make_mis_init());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (base[v] == 1) {
        EXPECT_EQ(init[v], 1) << "node " << v;
      }
    }
    EXPECT_TRUE(is_extendable_partial_mis(g, init));
  }
}

TEST(MisInitPhase, BreaksTiesByIdentifierAmongAdjacentOnes) {
  Graph g = make_line(2);  // ids 1, 2; both predict 1
  auto pred = all_same(g, 1);
  auto outputs = run_phase_outputs(g, pred, make_mis_init());
  EXPECT_EQ(outputs[1], 1);  // larger id wins
  EXPECT_EQ(outputs[0], 0);
}

TEST(MisInitPhase, ConsistencyIsThreeRounds) {
  Rng rng(10);
  Graph g = make_random_connected(30, 12, rng);
  auto pred = mis_correct_prediction(g, rng);
  int rounds = 0;
  auto outputs = run_phase_outputs(g, pred, make_mis_init(), &rounds);
  EXPECT_EQ(rounds, kMisInitRounds);
  EXPECT_TRUE(is_valid_mis(g, outputs));
}

// ---- Cleanup ---------------------------------------------------------------------

TEST(MisCleanup, CoversNeighborsOfWinners) {
  // Run greedy for exactly 1 round (odd cutoff): winners exist whose
  // neighbors are undecided; one cleanup round restores extendability.
  Rng rng(11);
  Graph g = make_gnp(12, 0.3, rng);
  randomize_ids(g, rng);
  auto cut = [&](int rounds) {
    EngineOptions opt;
    opt.max_rounds = rounds;
    return run_algorithm(g, greedy_mis_algorithm(), opt);
  };
  auto after1 = cut(1);
  // Typically not extendable after an odd round (winners uncovered).
  std::vector<std::unique_ptr<PhaseProgram>> unused;
  auto combined = phase_as_algorithm([&](NodeId) {
    std::vector<std::unique_ptr<PhaseProgram>> phases;
    phases.push_back(std::make_unique<BudgetedPhase>(
        std::make_unique<GreedyMisPhase>(), 1, true));
    phases.push_back(std::make_unique<MisCleanupPhase>());
    return std::make_unique<SequencePhase>(std::move(phases));
  });
  auto result = run_algorithm(g, combined, EngineOptions{.max_rounds = 2});
  EXPECT_TRUE(is_extendable_partial_mis(g, result.outputs));
  (void)after1;
}

// ---- Coloring → MIS (part 2 of Corollary 12's reference) ---------------------------

TEST(ColorToMis, ProducesValidMisFromSequentialColoring) {
  Rng rng(12);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(14, 0.3, rng);
    randomize_ids(g, rng);
    // Color with the sequential solver, then run only part 2.
    auto colors = std::make_shared<std::vector<Value>>(
        [&] {
          std::vector<Value> c;
          Graph copy = g;
          for (NodeId v = 0; v < g.num_nodes(); ++v) c.push_back(0);
          return c;
        }());
    {
      // Greedy proper coloring.
      const Value palette = g.max_degree() + 1;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        std::vector<bool> used(static_cast<std::size_t>(palette + 1), false);
        for (NodeId u : g.neighbors(v)) {
          if ((*colors)[u] >= 1) used[(*colors)[u]] = true;
        }
        for (Value c = 1; c <= palette; ++c) {
          if (!used[c]) {
            (*colors)[v] = c;
            break;
          }
        }
      }
    }
    const Value palette = g.max_degree() + 1;
    auto factory = phase_as_algorithm([colors, palette, &g](NodeId v) {
      return std::make_unique<ColorToMisPhase>(
          palette, [colors, v] { return (*colors)[v]; },
          [colors](NodeId u) { return (*colors)[u]; });
    });
    auto result = run_algorithm(g, factory);
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs))
        << check_mis(g, result.outputs);
    EXPECT_LE(result.rounds, palette + 1);
  }
}

}  // namespace
}  // namespace dgap
