#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "coloring/checkers.hpp"
#include "graph/generators.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "sim/phase.hpp"
#include "templates/mis_with_predictions.hpp"
#include "tree/algorithms.hpp"
#include "tree/gps.hpp"

namespace dgap {
namespace {

// ---- Algorithm 6 (measure-uniform on rooted trees) -----------------------------

TEST(TreeUniform, ValidOnTreeFamilies) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    RootedTree t = make_rooted_random_tree(30, rng);
    randomize_ids(t.graph, rng);
    auto result = run_algorithm(t.graph, tree_mis_uniform_algorithm(t));
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(t.graph, result.outputs))
        << check_mis(t.graph, result.outputs);
  }
}

TEST(TreeUniform, RoundsTrackHeightNotSize) {
  // A star (height 1) finishes in O(1) rounds regardless of size; a line
  // of the same size needs rounds proportional to its height / 2.
  RootedTree star = make_rooted_kary_tree(63, 2);  // root + 63 leaves
  auto rs = run_algorithm(star.graph, tree_mis_uniform_algorithm(star));
  EXPECT_LE(rs.rounds, 3);
  RootedTree line = make_rooted_line(64);
  auto rl = run_algorithm(line.graph, tree_mis_uniform_algorithm(line));
  EXPECT_GE(rl.rounds, 64 / 4);
  EXPECT_LE(rl.rounds, 64 / 2 + 3);
  EXPECT_TRUE(is_valid_mis(line.graph, rl.outputs));
}

TEST(TreeUniform, BinaryTreeFast) {
  RootedTree t = make_rooted_binary_tree(8);  // 511 nodes, height 8
  auto result = run_algorithm(t.graph, tree_mis_uniform_algorithm(t));
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(t.graph, result.outputs));
  EXPECT_LE(result.rounds, 8 + 3);
}

// ---- Tree initialization (Section 9.2) ------------------------------------------

TEST(TreeInit, CorrectPredictionsTerminateInThreeRounds) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    RootedTree t = make_rooted_random_tree(25, rng);
    randomize_ids(t.graph, rng);
    auto pred = mis_correct_prediction(t.graph, rng);
    auto result = run_with_predictions(
        t.graph, pred, phase_as_algorithm(make_tree_mis_init(t)));
    EXPECT_LE(result.rounds, 3);
    EXPECT_TRUE(is_valid_mis(t.graph, result.outputs));
    for (NodeId v = 0; v < t.graph.num_nodes(); ++v) {
      EXPECT_EQ(result.outputs[v], pred.node(v));
    }
  }
}

TEST(TreeInit, ActiveComponentsAreMonochromatic) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    RootedTree t = make_rooted_random_tree(30, rng);
    randomize_ids(t.graph, rng);
    auto pred = flip_bits(t.graph, mis_correct_prediction(t.graph, rng),
                          static_cast<int>(rng.next_below(15)), rng);
    auto result = run_with_predictions(
        t.graph, pred, phase_as_algorithm(make_tree_mis_init(t)));
    EXPECT_TRUE(is_extendable_partial_mis(t.graph, result.outputs));
    // No two adjacent still-active nodes may have different predictions.
    for (auto [u, v] : t.graph.edges()) {
      if (result.outputs[u] == kLeftoverActive &&
          result.outputs[v] == kLeftoverActive) {
        EXPECT_EQ(pred.node(u) == 1, pred.node(v) == 1)
            << "active bichromatic edge {" << u << "," << v << "}";
      }
    }
  }
}

TEST(TreeInit, DirectedLineExampleTerminatesInTwoRoundsOfOutputs) {
  // Paper example: directed line of 3k nodes, white at distance ≡ 0 mod 3.
  // The base algorithm's set I is empty, but the tree initialization
  // decides EVERY node (blacks at distance 1 mod 3 join).
  const NodeId k = 5;
  RootedTree t = make_rooted_line(3 * k);
  std::vector<Value> x(static_cast<std::size_t>(3 * k), 1);
  for (NodeId v = 0; v < 3 * k; v += 3) x[v] = 0;
  Predictions pred{x};
  EXPECT_EQ(eta1_mis(t.graph, pred), 3 * k);  // base alg decides nothing
  auto result = run_with_predictions(
      t.graph, pred, phase_as_algorithm(make_tree_mis_init(t)));
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(t.graph, result.outputs));
  for (NodeId v = 0; v < 3 * k; ++v) {
    EXPECT_NE(result.outputs[v], kLeftoverActive);
  }
}

// ---- GPS 3-coloring ----------------------------------------------------------------

TEST(Gps, ScheduleGrowsLikeLogStar) {
  EXPECT_GE(gps_iterations(100), 1);
  const int small = gps_iterations(1 << 10);
  const int large = gps_iterations(1LL << 40);
  EXPECT_LE(large, small + 3);
  EXPECT_EQ(gps_total_rounds(100), gps_iterations(100) + 6);
}

TEST(Gps, ProperThreeColoringOnTrees) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    RootedTree t = make_rooted_random_tree(40, rng);
    randomize_ids(t.graph, rng);
    auto result = run_algorithm(t.graph, gps_coloring_algorithm(t));
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_coloring(t.graph, result.outputs, 3))
        << check_coloring(t.graph, result.outputs, 3);
  }
}

TEST(Gps, RoundsMatchSchedule) {
  RootedTree t = make_rooted_line(50);
  auto result = run_algorithm(t.graph, gps_coloring_algorithm(t));
  EXPECT_EQ(result.rounds, gps_total_rounds(t.graph.id_bound()));
}

TEST(Gps, RoundsIndependentOfHeight) {
  // log* d rounds whether the tree is a deep line or a shallow star.
  Rng rng(5);
  RootedTree line = make_rooted_line(256);
  RootedTree star = make_rooted_kary_tree(255, 2);
  auto rl = run_algorithm(line.graph, gps_coloring_algorithm(line));
  auto rs = run_algorithm(star.graph, gps_coloring_algorithm(star));
  EXPECT_EQ(rl.rounds, rs.rounds);
}

TEST(Gps, HugeSparseIdsStillLogStar) {
  Rng rng(6);
  RootedTree t = make_rooted_random_tree(30, rng);
  randomize_ids_sparse(t.graph, 1'000'000'000, rng);
  auto result = run_algorithm(t.graph, gps_coloring_algorithm(t));
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_coloring(t.graph, result.outputs, 3));
  EXPECT_LE(result.rounds, gps_total_rounds(1'000'000'000));
}

TEST(Gps, CongestFriendly) {
  RootedTree t = make_rooted_line(40);
  EngineOptions opt;
  opt.congest_word_limit = 1;
  auto result = run_algorithm(t.graph, gps_coloring_algorithm(t), opt);
  EXPECT_EQ(result.congest_violations, 0);
}

// ---- GPS + part 2 = rooted tree MIS reference (Corollary 15's R) -------------------

TEST(GpsTreeMisReference, SolvesMis) {
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    RootedTree t = make_rooted_random_tree(35, rng);
    randomize_ids(t.graph, rng);
    auto result = run_algorithm(
        t.graph, phase_as_algorithm(make_gps_tree_mis_reference(t)));
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(t.graph, result.outputs))
        << check_mis(t.graph, result.outputs);
    EXPECT_LE(result.rounds, gps_tree_mis_total_rounds(t.graph.id_bound()));
  }
}

// Fault injection: crash nodes mid-GPS; survivors' final coloring stays
// proper (fault tolerance required by the Parallel template, Cor. 15).
TEST(Gps, FaultTolerantUnderCrashes) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    RootedTree t = make_rooted_random_tree(25, rng);
    randomize_ids(t.graph, rng);
    const int total = gps_total_rounds(t.graph.id_bound());
    const int kill_round =
        1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(total)));
    std::vector<bool> victim(25, false);
    for (NodeId v = 0; v < 25; ++v) victim[v] = rng.flip(0.25);
    class KillSwitchGps final : public NodeProgram {
     public:
      KillSwitchGps(NodeId parent, int kill_round, bool victim)
          : phase_(parent), kill_round_(kill_round), victim_(victim) {}
      void on_send(NodeContext& ctx) override {
        Channel ch(ctx, 0);
        phase_.on_send(ctx, ch);
      }
      void on_receive(NodeContext& ctx) override {
        Channel ch(ctx, 0);
        if (victim_ && ctx.round() == kill_round_) {
          ctx.set_output(-1);
          ctx.terminate();
          return;
        }
        if (phase_.on_receive(ctx, ch) == PhaseProgram::Status::kFinished) {
          ctx.set_output(phase_.color() + 1);
          ctx.terminate();
        }
      }

     private:
      GpsColoringPhase phase_;
      int kill_round_;
      bool victim_;
    };
    auto result = run_algorithm(t.graph, [&](NodeId v) {
      return std::make_unique<KillSwitchGps>(t.parent[v], kill_round,
                                             victim[v]);
    });
    EXPECT_TRUE(result.completed);
    auto outputs = result.outputs;
    for (auto& o : outputs) {
      if (o == -1) o = kUndefined;
    }
    EXPECT_TRUE(is_proper_partial_coloring(t.graph, outputs, 3))
        << "trial " << trial;
  }
}

// ---- Full algorithms with predictions (Simple and Cor. 15) -------------------------

TEST(TreeMisSimple, ConsistentAndValid) {
  Rng rng(9);
  for (int trial = 0; trial < 15; ++trial) {
    RootedTree t = make_rooted_random_tree(30, rng);
    randomize_ids(t.graph, rng);
    auto good = mis_correct_prediction(t.graph, rng);
    auto r = run_with_predictions(t.graph, good, tree_mis_simple(t));
    EXPECT_TRUE(is_valid_mis(t.graph, r.outputs));
    EXPECT_LE(r.rounds, 3);  // consistency 3

    auto bad = flip_bits(t.graph, good, static_cast<int>(rng.next_below(15)), rng);
    auto rb = run_with_predictions(t.graph, bad, tree_mis_simple(t));
    EXPECT_TRUE(is_valid_mis(t.graph, rb.outputs))
        << check_mis(t.graph, rb.outputs);
    // Round complexity ≤ ⌈ηt/2⌉ + 5 (Section 9.2).
    const int eta_t = eta_t_mis(t, bad);
    EXPECT_LE(rb.rounds, (eta_t + 1) / 2 + 5) << "trial " << trial;
  }
}

TEST(TreeMisParallel, Corollary15Bounds) {
  Rng rng(10);
  for (int trial = 0; trial < 15; ++trial) {
    RootedTree t = make_rooted_random_tree(40, rng);
    randomize_ids(t.graph, rng);
    auto good = mis_correct_prediction(t.graph, rng);
    auto r = run_with_predictions(t.graph, good, tree_mis_parallel(t));
    EXPECT_TRUE(is_valid_mis(t.graph, r.outputs));
    EXPECT_LE(r.rounds, 3);  // consistency 3

    for (int flips : {2, 8, 40}) {
      auto bad = flip_bits(t.graph, good, flips, rng);
      auto rb = run_with_predictions(t.graph, bad, tree_mis_parallel(t));
      EXPECT_TRUE(is_valid_mis(t.graph, rb.outputs))
          << check_mis(t.graph, rb.outputs);
      const int eta_t = eta_t_mis(t, bad);
      const int degrading = (eta_t + 1) / 2 + 5;
      const int robust =
          4 + gps_tree_mis_total_rounds(t.graph.id_bound()) + 2;
      EXPECT_LE(rb.rounds, std::min(degrading, robust))
          << "trial " << trial << " flips " << flips;
    }
  }
}

}  // namespace
}  // namespace dgap
