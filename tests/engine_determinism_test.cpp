// Determinism guarantees of the engine's data plane (docs/MODEL.md,
// "Simulator internals & performance model"):
//
//  1. A run is a pure function of (graph, factory, options): running twice
//     with the same seed yields a bit-identical RunResult.
//  2. num_threads never affects the result: parallel runs are bit-identical
//     to the serial run (shard slices are pure functions of the active
//     count, and per-shard output is merged in slice order).
//  3. Algorithms break symmetry by identifiers, never internal indices, so
//     permuting the internal node order yields the same per-identifier
//     outputs and the same global metrics.
//  4. The link layer (enforcing congest policies) preserves all of the
//     above: its schedule is computed serially between the sharded send
//     and receive phases, so num_threads and node-order shuffles cannot
//     change what arrives when.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/checkers.hpp"
#include "mis/congest_global.hpp"
#include "random/luby.hpp"
#include "sim/compile.hpp"
#include "sim/engine.hpp"
#include "sim/transcript.hpp"

namespace dgap {
namespace {

/// Everything in RunResult except the host-clock measurements (wall_ms and
/// phase_ns, explicitly excluded from the determinism contract) and
/// peak_arena_bytes (capacity growth may differ across thread counts; the
/// *contents* may not). The suppression split is compared exactly: the
/// parallel delivery's per-shard accounts must merge to the same counters
/// the serial reference path charges.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.termination_round, b.termination_round);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.edge_outputs, b.edge_outputs);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_words, b.total_words);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.words_sent, b.words_sent);
  EXPECT_EQ(a.messages_suppressed, b.messages_suppressed);
  EXPECT_EQ(a.words_suppressed, b.words_suppressed);
  EXPECT_EQ(a.max_message_words, b.max_message_words);
  EXPECT_EQ(a.congest_violations, b.congest_violations);
  EXPECT_EQ(a.deferred_messages, b.deferred_messages);
  EXPECT_EQ(a.deferred_words, b.deferred_words);
  EXPECT_EQ(a.truncated_messages, b.truncated_messages);
  EXPECT_EQ(a.truncated_words, b.truncated_words);
  EXPECT_EQ(a.link_backlog_peak_words, b.link_backlog_peak_words);
  EXPECT_EQ(a.rounds_with_backlog, b.rounds_with_backlog);
  EXPECT_EQ(a.active_per_round, b.active_per_round);
  EXPECT_EQ(a.terminations_per_round, b.terminations_per_round);
}

Graph test_graph() {
  Rng rng(2024);
  Graph g = make_gnp(512, 8.0 / 512, rng);
  randomize_ids(g, rng);
  return g;
}

EngineOptions recording_options(int num_threads) {
  EngineOptions opt;
  opt.record_active_per_round = true;
  opt.record_terminations = true;
  opt.num_threads = num_threads;
  return opt;
}

TEST(EngineDeterminism, SameSeedSameResult) {
  Graph g = test_graph();
  auto one = run_algorithm(g, luby_mis_algorithm(42), recording_options(1));
  auto two = run_algorithm(g, luby_mis_algorithm(42), recording_options(1));
  ASSERT_TRUE(one.completed);
  expect_identical(one, two);
}

TEST(EngineDeterminism, ThreadCountInvariant) {
  Graph g = test_graph();
  auto serial = run_algorithm(g, luby_mis_algorithm(42), recording_options(1));
  ASSERT_TRUE(serial.completed);
  for (int threads : {2, 4, 8}) {
    auto parallel =
        run_algorithm(g, luby_mis_algorithm(42), recording_options(threads));
    expect_identical(serial, parallel);
  }
}

/// Rebuild g with internal node v placed at index perm[v] (identifiers
/// travel with the nodes, so the logical graph is unchanged).
Graph permute_indices(const Graph& g, const std::vector<NodeId>& perm) {
  const NodeId n = g.num_nodes();
  Graph h(n);
  std::vector<Value> ids(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) ids[perm[v]] = g.id(v);
  h.set_ids(std::move(ids));
  h.set_id_bound(g.id_bound());
  for (const auto& [u, v] : g.edges()) h.add_edge(perm[u], perm[v]);
  return h;
}

TEST(EngineDeterminism, NodeOrderShuffleInvariantPerIdentifier) {
  Graph g = test_graph();
  auto base = run_algorithm(g, luby_mis_algorithm(42), recording_options(1));
  ASSERT_TRUE(base.completed);

  Rng rng(99);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<NodeId> perm(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) perm[v] = v;
    rng.shuffle(perm);
    Graph h = permute_indices(g, perm);
    auto shuffled =
        run_algorithm(h, luby_mis_algorithm(42), recording_options(1));

    // Global quantities are index-free and must match exactly.
    EXPECT_EQ(base.completed, shuffled.completed);
    EXPECT_EQ(base.rounds, shuffled.rounds);
    EXPECT_EQ(base.total_messages, shuffled.total_messages);
    EXPECT_EQ(base.total_words, shuffled.total_words);
    EXPECT_EQ(base.max_message_words, shuffled.max_message_words);
    EXPECT_EQ(base.active_per_round, shuffled.active_per_round);

    // Per-node quantities must match after translating indices to ids.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(base.outputs[v], shuffled.outputs[perm[v]])
          << "output of id " << g.id(v);
      EXPECT_EQ(base.termination_round[v], shuffled.termination_round[perm[v]])
          << "termination round of id " << g.id(v);
    }
  }
}

/// A bandwidth-hungry workload for the deferral scheduler: every node
/// broadcasts a 4-word burst for three rounds and stays active until it
/// has received all 3 * degree bursts, folding every delivered word (and
/// its arrival round) into an order-sensitive digest. Under a budget
/// below 4 the link layer must spread the bursts over many rounds, and
/// any scheduling nondeterminism changes some node's digest.
class BurstEchoProgram final : public NodeProgram {
 public:
  void on_send(NodeContext& ctx) override {
    if (ctx.round() <= 3) {
      ctx.broadcast({ctx.id(), Value{ctx.round()}, 7, 9});
    }
  }
  void on_receive(NodeContext& ctx) override {
    for (const Message& m : ctx.inbox()) {
      ++received_;
      digest_ = digest_ * 1315423911u + static_cast<std::uint64_t>(m.from);
      for (std::size_t i = 0; i < m.words.size(); ++i) {
        digest_ = digest_ * 31u + static_cast<std::uint64_t>(m.words.at(i));
      }
      digest_ = digest_ * 31u + static_cast<std::uint64_t>(ctx.round());
    }
    if (received_ >= 3 * ctx.degree()) {
      ctx.set_output(static_cast<Value>(digest_ >> 1));
      ctx.terminate();
    }
  }

 private:
  int received_ = 0;
  std::uint64_t digest_ = 1;
};

TEST(EngineDeterminism, DeferPolicyThreadCountInvariant) {
  Graph g = test_graph();
  EngineOptions opt = recording_options(1);
  opt.congest_policy = CongestPolicy::kDefer;
  opt.congest_word_limit = 3;  // below the burst width: every send defers
  auto factory = [](NodeId) { return std::make_unique<BurstEchoProgram>(); };
  auto serial = run_algorithm(g, factory, opt);
  ASSERT_TRUE(serial.completed);
  EXPECT_GT(serial.deferred_words, 0);
  EXPECT_GT(serial.rounds_with_backlog, 0);
  auto repeat = run_algorithm(g, factory, opt);
  expect_identical(serial, repeat);
  for (int threads : {2, 4, 8}) {
    opt.num_threads = threads;
    auto parallel = run_algorithm(g, factory, opt);
    expect_identical(serial, parallel);
  }
}

TEST(EngineDeterminism, DeferPolicyShuffleInvariantPerIdentifier) {
  // congest_global under a 1-word budget exercises the stretched schedule
  // and per-link carry-over; the deferral pattern is a function of the
  // logical graph, so internal node order must not leak into any metric.
  Rng graph_rng(7);
  Graph g = make_random_connected(24, 12, graph_rng);
  randomize_ids(g, graph_rng);
  EngineOptions opt = recording_options(1);
  opt.congest_policy = CongestPolicy::kDefer;
  opt.congest_word_limit = 1;
  auto base = run_algorithm(g, congest_global_mis_algorithm(), opt);
  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(is_valid_mis(g, base.outputs));
  EXPECT_GT(base.deferred_messages, 0);

  for (int threads : {2, 4, 8}) {
    EngineOptions topt = opt;
    topt.num_threads = threads;
    auto parallel = run_algorithm(g, congest_global_mis_algorithm(), topt);
    expect_identical(base, parallel);
  }

  Rng rng(99);
  for (int trial = 0; trial < 2; ++trial) {
    std::vector<NodeId> perm(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) perm[v] = v;
    rng.shuffle(perm);
    Graph h = permute_indices(g, perm);
    auto shuffled = run_algorithm(h, congest_global_mis_algorithm(), opt);
    EXPECT_EQ(base.completed, shuffled.completed);
    EXPECT_EQ(base.rounds, shuffled.rounds);
    EXPECT_EQ(base.total_messages, shuffled.total_messages);
    EXPECT_EQ(base.total_words, shuffled.total_words);
    EXPECT_EQ(base.deferred_messages, shuffled.deferred_messages);
    EXPECT_EQ(base.deferred_words, shuffled.deferred_words);
    EXPECT_EQ(base.link_backlog_peak_words, shuffled.link_backlog_peak_words);
    EXPECT_EQ(base.rounds_with_backlog, shuffled.rounds_with_backlog);
    EXPECT_EQ(base.active_per_round, shuffled.active_per_round);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(base.outputs[v], shuffled.outputs[perm[v]])
          << "output of id " << g.id(v);
      EXPECT_EQ(base.termination_round[v], shuffled.termination_round[perm[v]])
          << "termination round of id " << g.id(v);
    }
  }
}

// A full payload-level transcript is the strongest determinism witness:
// byte equality pins every delivered word of every round, not just the
// aggregate counters expect_identical compares. The serial transcript is
// the reference; any thread count must reproduce it bit-for-bit. (The
// header deliberately omits num_threads, so equal logical runs give equal
// bytes — see sim/transcript.hpp.)
TEST(EngineDeterminism, TranscriptIsThreadCountInvariant) {
  Graph g = test_graph();
  EngineOptions opt = recording_options(1);
  const RecordedRun serial =
      record_run(g, {}, luby_mis_algorithm(42), opt, TraceDetail::kPayloads);
  ASSERT_TRUE(serial.result.completed);
  for (int threads : {2, 4, 8}) {
    EngineOptions topt = opt;
    topt.num_threads = threads;
    const RecordedRun parallel = record_run(g, {}, luby_mis_algorithm(42),
                                            topt, TraceDetail::kPayloads);
    EXPECT_EQ(serial.transcript, parallel.transcript)
        << "num_threads = " << threads;
    expect_identical(serial.result, parallel.result);
  }
}

TEST(EngineDeterminism, DeferTranscriptIsThreadCountInvariant) {
  // Under kDefer the transcript records effective arrival rounds, so byte
  // equality also pins the whole deferral schedule.
  Graph g = test_graph();
  EngineOptions opt = recording_options(1);
  opt.congest_policy = CongestPolicy::kDefer;
  opt.congest_word_limit = 3;
  auto factory = [](NodeId) { return std::make_unique<BurstEchoProgram>(); };
  const RecordedRun serial =
      record_run(g, {}, factory, opt, TraceDetail::kPayloads);
  ASSERT_TRUE(serial.result.completed);
  ASSERT_GT(serial.result.deferred_words, 0);
  for (int threads : {2, 4, 8}) {
    EngineOptions topt = opt;
    topt.num_threads = threads;
    const RecordedRun parallel =
        record_run(g, {}, factory, topt, TraceDetail::kPayloads);
    EXPECT_EQ(serial.transcript, parallel.transcript)
        << "num_threads = " << threads;
  }
}

// Compile knobs change which delivery path charges the suppression split
// (the parallel pass keys the resend cache to receiver-shard ownership),
// so sweep them together with streamed transcripts: the on-disk bytes of
// a compiled run must be identical for every thread count, and nonzero
// suppression must merge to the same counters.
TEST(EngineDeterminism, CompiledStreamedTranscriptIsThreadCountInvariant) {
  // flood_min re-broadcasts its stabilized minimum every round, so the
  // resend cache must suppress most of the traffic.
  Rng rng(31);
  Graph g = make_random_connected(48, 40, rng);
  randomize_ids(g, rng);
  EngineOptions opt = recording_options(1);
  opt.compile.cache_resends = true;
  opt.compile.decode_defaults = true;
  const std::string serial_path = "/tmp/dgap_det_serial.dgaptr";
  const StreamedRun serial =
      record_run_to_file(serial_path, g, {}, flood_min_algorithm(), opt,
                         TraceDetail::kPayloads, "det_compiled");
  ASSERT_TRUE(serial.result.completed);
  EXPECT_GT(serial.result.messages_suppressed, 0);
  const std::vector<std::uint8_t> serial_bytes =
      read_transcript_file(serial_path);
  std::remove(serial_path.c_str());
  ASSERT_FALSE(serial_bytes.empty());
  for (int threads : {2, 4, 8}) {
    EngineOptions topt = opt;
    topt.num_threads = threads;
    const std::string path = "/tmp/dgap_det_threaded.dgaptr";
    const StreamedRun parallel =
        record_run_to_file(path, g, {}, flood_min_algorithm(), topt,
                           TraceDetail::kPayloads, "det_compiled");
    const std::vector<std::uint8_t> bytes = read_transcript_file(path);
    std::remove(path.c_str());
    EXPECT_EQ(serial_bytes, bytes) << "num_threads = " << threads;
    expect_identical(serial.result, parallel.result);
  }
}

// The same sweep at kRounds granularity: the cheap spine must be as
// thread-invariant as the full payload capture.
TEST(EngineDeterminism, CompiledRoundsTranscriptIsThreadCountInvariant) {
  Rng rng(32);
  Graph g = make_random_connected(64, 48, rng);
  randomize_ids(g, rng);
  EngineOptions opt = recording_options(1);
  opt.compile.cache_resends = true;
  const RecordedRun serial =
      record_run(g, {}, flood_min_algorithm(), opt, TraceDetail::kRounds);
  ASSERT_TRUE(serial.result.completed);
  EXPECT_GT(serial.result.messages_suppressed, 0);
  for (int threads : {2, 4, 8}) {
    EngineOptions topt = opt;
    topt.num_threads = threads;
    const RecordedRun parallel =
        record_run(g, {}, flood_min_algorithm(), topt, TraceDetail::kRounds);
    EXPECT_EQ(serial.transcript, parallel.transcript)
        << "num_threads = " << threads;
    expect_identical(serial.result, parallel.result);
  }
}

// The record_* options are reimplemented on the trace spine
// (detail::RunRecordSink); the fields they fill must stay bit-identical
// to the transcript's own per-round view of the same run.
TEST(EngineDeterminism, RecordOptionsMatchTranscriptSpine) {
  Graph g = test_graph();
  const RecordedRun run = record_run(g, {}, luby_mis_algorithm(42),
                                     recording_options(1),
                                     TraceDetail::kRounds);
  const Transcript t = decode_transcript(run.transcript);
  ASSERT_EQ(t.rounds.size(), run.result.active_per_round.size());
  ASSERT_EQ(t.rounds.size(), run.result.terminations_per_round.size());
  for (std::size_t i = 0; i < t.rounds.size(); ++i) {
    EXPECT_EQ(t.rounds[i].active, run.result.active_per_round[i]);
    std::vector<NodeId> terms;
    for (const TranscriptTermination& term : t.rounds[i].terminations) {
      terms.push_back(term.node);
    }
    EXPECT_EQ(terms, run.result.terminations_per_round[i]);
  }
}

}  // namespace
}  // namespace dgap
