// Determinism guarantees of the engine's data plane (docs/MODEL.md,
// "Simulator internals & performance model"):
//
//  1. A run is a pure function of (graph, factory, options): running twice
//     with the same seed yields a bit-identical RunResult.
//  2. num_threads never affects the result: parallel runs are bit-identical
//     to the serial run (shard slices are pure functions of the active
//     count, and per-shard output is merged in slice order).
//  3. Algorithms break symmetry by identifiers, never internal indices, so
//     permuting the internal node order yields the same per-identifier
//     outputs and the same global metrics.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "random/luby.hpp"
#include "sim/engine.hpp"

namespace dgap {
namespace {

/// Everything in RunResult except wall_ms (explicitly excluded from the
/// determinism contract) and peak_arena_bytes (capacity growth may differ
/// across thread counts; the *contents* may not).
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.termination_round, b.termination_round);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.edge_outputs, b.edge_outputs);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_words, b.total_words);
  EXPECT_EQ(a.max_message_words, b.max_message_words);
  EXPECT_EQ(a.congest_violations, b.congest_violations);
  EXPECT_EQ(a.active_per_round, b.active_per_round);
  EXPECT_EQ(a.terminations_per_round, b.terminations_per_round);
}

Graph test_graph() {
  Rng rng(2024);
  Graph g = make_gnp(512, 8.0 / 512, rng);
  randomize_ids(g, rng);
  return g;
}

EngineOptions recording_options(int num_threads) {
  EngineOptions opt;
  opt.record_active_per_round = true;
  opt.record_terminations = true;
  opt.num_threads = num_threads;
  return opt;
}

TEST(EngineDeterminism, SameSeedSameResult) {
  Graph g = test_graph();
  auto one = run_algorithm(g, luby_mis_algorithm(42), recording_options(1));
  auto two = run_algorithm(g, luby_mis_algorithm(42), recording_options(1));
  ASSERT_TRUE(one.completed);
  expect_identical(one, two);
}

TEST(EngineDeterminism, ThreadCountInvariant) {
  Graph g = test_graph();
  auto serial = run_algorithm(g, luby_mis_algorithm(42), recording_options(1));
  ASSERT_TRUE(serial.completed);
  for (int threads : {2, 4}) {
    auto parallel =
        run_algorithm(g, luby_mis_algorithm(42), recording_options(threads));
    expect_identical(serial, parallel);
  }
}

/// Rebuild g with internal node v placed at index perm[v] (identifiers
/// travel with the nodes, so the logical graph is unchanged).
Graph permute_indices(const Graph& g, const std::vector<NodeId>& perm) {
  const NodeId n = g.num_nodes();
  Graph h(n);
  std::vector<Value> ids(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) ids[perm[v]] = g.id(v);
  h.set_ids(std::move(ids));
  h.set_id_bound(g.id_bound());
  for (const auto& [u, v] : g.edges()) h.add_edge(perm[u], perm[v]);
  return h;
}

TEST(EngineDeterminism, NodeOrderShuffleInvariantPerIdentifier) {
  Graph g = test_graph();
  auto base = run_algorithm(g, luby_mis_algorithm(42), recording_options(1));
  ASSERT_TRUE(base.completed);

  Rng rng(99);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<NodeId> perm(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) perm[v] = v;
    rng.shuffle(perm);
    Graph h = permute_indices(g, perm);
    auto shuffled =
        run_algorithm(h, luby_mis_algorithm(42), recording_options(1));

    // Global quantities are index-free and must match exactly.
    EXPECT_EQ(base.completed, shuffled.completed);
    EXPECT_EQ(base.rounds, shuffled.rounds);
    EXPECT_EQ(base.total_messages, shuffled.total_messages);
    EXPECT_EQ(base.total_words, shuffled.total_words);
    EXPECT_EQ(base.max_message_words, shuffled.max_message_words);
    EXPECT_EQ(base.active_per_round, shuffled.active_per_round);

    // Per-node quantities must match after translating indices to ids.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(base.outputs[v], shuffled.outputs[perm[v]])
          << "output of id " << g.id(v);
      EXPECT_EQ(base.termination_round[v], shuffled.termination_round[perm[v]])
          << "termination round of id " << g.id(v);
    }
  }
}

}  // namespace
}  // namespace dgap
