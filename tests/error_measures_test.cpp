#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"

namespace dgap {
namespace {

// ---- MIS base status / error components -------------------------------------

TEST(MisBase, CorrectPredictionDecidesEverything) {
  Rng rng(1);
  Graph g = make_grid(5, 5);
  auto pred = mis_correct_prediction(g, rng);
  auto status = mis_base_status(g, pred);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_NE(status[v], -1);
  EXPECT_TRUE(mis_error_components(g, pred).empty());
}

TEST(MisBase, AllOnesLeavesEverythingActiveOnEdgyGraphs) {
  // With every prediction 1, no node has all-zero neighbors (unless
  // isolated), so the base algorithm decides nothing.
  Graph g = make_ring(6);
  auto pred = all_same(g, 1);
  auto comps = mis_error_components(g, pred);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 6u);
  EXPECT_EQ(eta1_mis(g, pred), 6);
}

TEST(MisBase, AllZerosLeavesEverythingActive) {
  Graph g = make_line(7);
  auto pred = all_same(g, 0);
  EXPECT_EQ(eta1_mis(g, pred), 7);
}

TEST(MisBase, IsolatedNodePredictingOneIsDecided) {
  Graph g(3);  // three isolated nodes
  Predictions pred(std::vector<Value>{1, 0, 1});
  auto status = mis_base_status(g, pred);
  EXPECT_EQ(status[0], 1);
  EXPECT_EQ(status[1], -1);  // 0 with no 1-neighbor: not maximal, active
  EXPECT_EQ(status[2], 1);
}

TEST(MisBase, TwoAdjacentOnesStayActive) {
  Graph g = make_line(2);
  auto pred = all_same(g, 1);
  auto status = mis_base_status(g, pred);
  EXPECT_EQ(status[0], -1);
  EXPECT_EQ(status[1], -1);
}

TEST(MisErrorComponents, LocalizedFlipGivesLocalError) {
  // Line 0-1-...-19 with the unique "even positions" MIS; flipping one
  // prediction creates a small error component, not a global one.
  Graph g = make_line(20);
  std::vector<Value> x(20, 0);
  for (NodeId v = 0; v < 20; v += 2) x[v] = 1;
  Predictions correct{x};
  EXPECT_EQ(eta1_mis(g, correct), 0);
  x[10] = 0;  // now 9,10,11 are all-zero around 10
  Predictions bad{x};
  const int e1 = eta1_mis(g, bad);
  EXPECT_GT(e1, 0);
  EXPECT_LE(e1, 5);
}

// ---- η2 ≤ η1 (paper inequality) ---------------------------------------------

TEST(ErrorMeasures, Eta2AtMostEta1Everywhere) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g = make_gnp(18, 0.2, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(10)), rng);
    EXPECT_LE(eta2_mis(g, pred), eta1_mis(g, pred)) << "trial " << trial;
  }
}

TEST(ErrorMeasures, CliqueAllOnes_Eta2IsTwo) {
  // μ2(K_k) = 2·min{α, τ} = 2·min{1, k−1} = 2, while μ1 = k.
  Graph g = make_clique(8);
  auto pred = all_same(g, 1);
  EXPECT_EQ(eta1_mis(g, pred), 8);
  EXPECT_EQ(eta2_mis(g, pred), 2);
}

TEST(ErrorMeasures, StarAllOnes_Eta2IsTwo) {
  // τ(star) = 1, so μ2 = 2 though μ1 = n.
  Graph g = make_star(9);
  auto pred = all_same(g, 1);
  EXPECT_EQ(eta1_mis(g, pred), 9);
  EXPECT_EQ(eta2_mis(g, pred), 2);
}

// ---- η_bw (Section 5 / Figure 2) --------------------------------------------

TEST(ErrorMeasures, EtaBwAtMostEta1) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g = make_gnp(18, 0.25, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(12)), rng);
    EXPECT_LE(eta_bw_mis(g, pred), eta1_mis(g, pred));
  }
}

TEST(ErrorMeasures, Figure2Grid_Eta1IsN_EtaBwIsFour) {
  // The 4-striped grid: every node is active after the base algorithm
  // (each black node has a black neighbor; each white node has only
  // white/black-undecided neighbors), η1 = n but η_bw = 4.
  const NodeId w = 16, h = 16;
  Graph g = make_grid(w, h);
  auto pred = grid_stripe_prediction(w, h);
  EXPECT_EQ(eta1_mis(g, pred), w * h);
  EXPECT_EQ(eta_bw_mis(g, pred), 4);
}

TEST(ErrorMeasures, AllSamePredictionMakesEtaBwEqualEta1) {
  Graph g = make_ring(8);
  auto pred = all_same(g, 1);
  EXPECT_EQ(eta_bw_mis(g, pred), eta1_mis(g, pred));
}

// ---- η_t (Section 9.2) -------------------------------------------------------

TEST(ErrorMeasures, EtaTDirectedLineExample) {
  // Paper example: a directed line of 3k nodes, white at distance ≡ 0
  // (mod 3) from the root, black otherwise. η1 = 3k but η_t = 2.
  const NodeId k = 6;
  RootedTree t = make_rooted_line(3 * k);
  std::vector<Value> x(static_cast<std::size_t>(3 * k), 1);
  for (NodeId v = 0; v < 3 * k; v += 3) x[v] = 0;
  Predictions pred{x};
  EXPECT_EQ(eta1_mis(t.graph, pred), 3 * k);
  EXPECT_EQ(eta_t_mis(t, pred), 2);
}

TEST(ErrorMeasures, EtaTAtMostEtaBw) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    RootedTree t = make_rooted_random_tree(25, rng);
    auto pred = flip_bits(t.graph, mis_correct_prediction(t.graph, rng),
                          static_cast<int>(rng.next_below(12)), rng);
    EXPECT_LE(eta_t_mis(t, pred), eta_bw_mis(t.graph, pred));
    EXPECT_LE(eta_bw_mis(t.graph, pred), eta1_mis(t.graph, pred));
  }
}

TEST(ErrorMeasures, EtaTZeroOnCorrectPredictions) {
  Rng rng(5);
  RootedTree t = make_rooted_binary_tree(4);
  auto pred = mis_correct_prediction(t.graph, rng);
  EXPECT_EQ(eta_t_mis(t, pred), 0);
}

// ---- η_H (the rejected global measure) ---------------------------------------

TEST(ErrorMeasures, HammingZeroIffPredictionIsSomeMis) {
  Graph g = make_line(4);
  Predictions good(std::vector<Value>{1, 0, 0, 1});
  EXPECT_EQ(eta_hamming_mis(g, good), 0);
  Predictions bad(std::vector<Value>{1, 1, 0, 1});
  EXPECT_GT(eta_hamming_mis(g, bad), 0);
}

TEST(ErrorMeasures, HammingIsGlobalWhileEta1IsLocal) {
  // Many disjoint broken triangles: η_H grows with the number of
  // components, η1 stays at the size of one component. This is exactly
  // why the paper rejects η_H (Section 5).
  Graph one = make_clique(3);
  Graph g = one;
  for (int i = 0; i < 4; ++i) g = disjoint_union(g, one);
  auto pred = all_same(g, 1);  // every triangle fully wrong
  EXPECT_EQ(eta1_mis(g, pred), 3);
  EXPECT_GE(eta_hamming_mis(g, pred), 5 * 2);  // 2 flips per triangle
}

TEST(ErrorMeasures, Eta2BoundsSandwichExactValue) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    Graph g = make_gnp(16, 0.25, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(10)), rng);
    const int exact = eta2_mis(g, pred);
    const auto bounds = eta2_mis_bounds(g, pred);
    EXPECT_LE(bounds.lo, exact) << "trial " << trial;
    EXPECT_GE(bounds.hi, exact) << "trial " << trial;
    EXPECT_LE(bounds.lo, bounds.hi);
  }
}

TEST(ErrorMeasures, Eta2BoundsScaleToLargeComponents) {
  // A 3000-node instance whose exact α would be expensive: the bounds are
  // instant and still informative.
  Graph g = make_ring(3000);
  auto pred = all_same(g, 1);
  const auto bounds = eta2_mis_bounds(g, pred);
  EXPECT_GT(bounds.lo, 1000);   // α and τ are both ~n/2 or more
  EXPECT_LE(bounds.hi, 3001);
  EXPECT_LE(bounds.lo, bounds.hi);
}

TEST(ErrorMeasures, SumMeasureDominatesEta1) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(18, 0.2, rng);
    auto pred = flip_bits(g, mis_correct_prediction(g, rng),
                          static_cast<int>(rng.next_below(10)), rng);
    EXPECT_GE(eta_sum_mis(g, pred), eta1_mis(g, pred));
  }
  // Disjoint components make the gap arbitrarily large.
  Graph g = make_clique(3);
  for (int i = 1; i < 6; ++i) g = disjoint_union(g, make_clique(3));
  auto pred = all_same(g, 1);
  EXPECT_EQ(eta1_mis(g, pred), 3);
  EXPECT_EQ(eta_sum_mis(g, pred), 18);
}

// ---- Monotonicity of μ1 (Section 5 requirement) -------------------------------

TEST(ErrorMeasures, Mu1MonotoneUnderErrorRemoval) {
  // Fixing one wrong prediction never increases η1 on a line.
  Graph g = make_line(12);
  std::vector<Value> x(12, 0);
  for (NodeId v = 0; v < 12; v += 2) x[v] = 1;
  x[4] = 0;
  x[8] = 0;  // two errors
  const int before = eta1_mis(g, Predictions{x});
  x[8] = 1;  // remove one error
  const int after = eta1_mis(g, Predictions{x});
  EXPECT_LE(after, before);
}

// ---- Figure 1: diameter is NOT monotone --------------------------------------

TEST(ErrorMeasures, WheelDiameterNonMonotonicity) {
  // F_k: the whole graph has diameter 4, yet the induced rim component —
  // an error component when the hub predicts 1 and the rest 0 — has
  // diameter ⌊k/2⌋ > 4. So "max diameter of an error component" would
  // *increase* when predictions improve: not a valid error measure.
  const NodeId k = 12;
  Graph g = make_wheel_fk(k);
  std::vector<Value> x(static_cast<std::size_t>(2 * k + 1), 0);
  x[0] = 1;  // hub predicted in, everything else out
  Predictions hub_only{x};
  auto comps = mis_error_components(g, hub_only);
  ASSERT_EQ(comps.size(), 1u);
  auto [rim, map] = g.induced(comps[0]);
  EXPECT_EQ(diameter(rim), k / 2);

  auto worse = all_same(g, 1);  // strictly worse predictions
  auto comps2 = mis_error_components(g, worse);
  ASSERT_EQ(comps2.size(), 1u);
  auto [whole, map2] = g.induced(comps2[0]);
  EXPECT_EQ(diameter(whole), 4);
  EXPECT_GT(diameter(rim), diameter(whole));  // the anomaly
}

// ---- Other problems' error components -----------------------------------------

TEST(MatchingBase, MutualPredictionsMatch) {
  Graph g = make_line(4);  // ids 1,2,3,4
  Predictions pred(std::vector<Value>{2, 1, kNoNode, kNoNode});
  auto status = matching_base_status(g, pred);
  EXPECT_EQ(status[0], 1);
  EXPECT_EQ(status[1], 1);
  EXPECT_EQ(status[2], -1);  // ⊥ but neighbor 3 is unmatched
  EXPECT_EQ(status[3], -1);
}

TEST(MatchingBase, NonReciprocalPredictionIgnored) {
  Graph g = make_line(3);
  Predictions pred(std::vector<Value>{2, 3, 2});  // 1→2 not reciprocated
  auto status = matching_base_status(g, pred);
  EXPECT_EQ(status[0], -1);
  EXPECT_EQ(status[1], 1);
  EXPECT_EQ(status[2], 1);
}

TEST(ColoringBase, DistinctPredictionsDecided) {
  Graph g = make_line(3);
  Predictions pred(std::vector<Value>{1, 2, 1});
  auto status = coloring_base_status(g, pred);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(status[v], 1);
  EXPECT_EQ(eta1_coloring(g, pred), 0);
}

TEST(ColoringBase, ClashingAndIllegalPredictionsActive) {
  Graph g = make_line(3);  // Δ = 2, palette {1,2,3}
  Predictions pred(std::vector<Value>{2, 2, 9});
  auto status = coloring_base_status(g, pred);
  EXPECT_EQ(status[0], -1);
  EXPECT_EQ(status[1], -1);
  EXPECT_EQ(status[2], -1);  // out of palette
  EXPECT_EQ(eta1_coloring(g, pred), 3);
}

TEST(EdgeColoringBase, CorrectPredictionColorsEverything) {
  Rng rng(6);
  Graph g = make_ring(6);
  auto pred = edge_coloring_correct_prediction(g, rng);
  auto colored = edge_coloring_base_colored(g, pred);
  for (NodeId v = 0; v < 6; ++v) {
    for (bool c : colored[v]) EXPECT_TRUE(c);
  }
  EXPECT_TRUE(edge_coloring_error_components(g, pred).empty());
}

TEST(EdgeColoringBase, MismatchedEdgeStaysUncolored) {
  Graph g = make_line(3);  // Δ=2, palette {1,2,3}
  auto pred = Predictions::for_edges(g, {{1}, {2, 3}, {3}});
  auto colored = edge_coloring_base_colored(g, pred);
  EXPECT_FALSE(colored[0][0]);  // 1 vs 2 disagree
  EXPECT_TRUE(colored[1][1]);   // 3 == 3
  const auto comps = edge_coloring_error_components(g, pred);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 2u);  // nodes 0 and 1
  EXPECT_EQ(eta1_edge_coloring(g, pred), 2);
}

TEST(EdgeColoringBase, DuplicateProposalAtEndpointBlocksBoth) {
  // Node 1 predicts color 1 on both incident edges: neither proposal is
  // unique, so neither edge is colored even if the other side agrees.
  Graph g = make_line(3);
  auto pred = Predictions::for_edges(g, {{1}, {1, 1}, {1}});
  auto colored = edge_coloring_base_colored(g, pred);
  EXPECT_FALSE(colored[0][0]);
  EXPECT_FALSE(colored[1][0]);
  EXPECT_FALSE(colored[1][1]);
}

}  // namespace
}  // namespace dgap
