// The dynamic-graph serving pipeline end-to-end:
//   1. Churn property sweep — seeds × churn rates × {MIS, matching,
//      coloring}: every epoch's warm output is a valid complete solution,
//      η is finite, and the per-epoch degradation bound holds exactly.
//   2. Determinism — identical ChurnSpec seeds give byte-identical
//      per-epoch transcripts across engine threads {1,2,4} and batch
//      workers {1,2,4}; the committed epoch-sequence golden re-verifies.
//   3. Result-cache correctness — hits are bit-identical to a forced
//      recompute (transcript bytes as witness), distinct predictions get
//      distinct keys, and a mutated cache entry trips the poisoning guard.
//   4. Identifier stability — node deletion + re-insertion never reuses a
//      live identifier, and stale warm-start predictions referencing
//      deleted nodes are dropped, not passed through.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "cases.hpp"
#include "graph/edits.hpp"
#include "predict/generators.hpp"
#include "predict/warm_start.hpp"
#include "sim/epoch.hpp"
#include "templates/epoch_problems.hpp"

namespace dgap {
namespace {

EpochProblem problem_by_index(int p) {
  switch (p) {
    case 0: return epoch_mis();
    case 1: return epoch_matching();
    default: return epoch_coloring();
  }
}

// ---------------------------------------------------------------------------
// 1. Churn property sweep
// ---------------------------------------------------------------------------

struct ChurnCase {
  int problem;       // 0 = mis, 1 = matching, 2 = coloring
  std::uint64_t seed;
  double rate;       // shared by all four churn fractions
};

std::ostream& operator<<(std::ostream& os, const ChurnCase& c) {
  static const char* names[] = {"mis", "matching", "coloring"};
  return os << names[c.problem] << "_s" << c.seed << "_r"
            << static_cast<int>(c.rate * 100);
}

class ChurnSweepTest : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(ChurnSweepTest, EveryEpochValidAndWithinDegradationBound) {
  const ChurnCase& c = GetParam();
  const EpochProblem problem = problem_by_index(c.problem);
  EpochConfig config;
  config.base = GraphSpec::gnp(30, 0.12, c.seed);
  config.churn.seed = c.seed * 17 + 5;
  config.churn.edge_remove_frac = c.rate;
  config.churn.edge_add_frac = c.rate;
  config.churn.node_remove_frac = c.rate / 2;
  config.churn.node_add_frac = c.rate / 2;
  config.epochs = 4;

  // The harness itself checks validity per epoch (DGAP_ASSERT on the
  // problem's checker), so run() completing is already the validity sweep;
  // the inequalities below are the paper's per-epoch claims.
  EpochHarness harness(problem_by_index(c.problem), config);
  const EpochReport report = harness.run();
  ASSERT_EQ(report.epochs.size(), static_cast<std::size_t>(config.epochs));
  Graph g = config.base.build();
  for (const EpochRecord& e : report.epochs) {
    if (e.epoch > 0) g = apply_edits(g, config.churn.generate(g, e.epoch));
    ASSERT_TRUE(e.warm.completed) << "epoch " << e.epoch;
    ASSERT_TRUE(e.control.completed) << "epoch " << e.epoch;
    EXPECT_TRUE(problem.check(g, e.warm).empty())
        << "epoch " << e.epoch << ": " << problem.check(g, e.warm);
    EXPECT_GE(e.eta, 0) << "epoch " << e.epoch;
    EXPECT_LE(e.eta, e.nodes) << "epoch " << e.epoch;
    EXPECT_LE(e.warm.rounds, problem.degradation_bound(e.eta, g))
        << "epoch " << e.epoch << " (eta " << e.eta << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChurnSweepTest,
    ::testing::Values(ChurnCase{0, 3, 0.02}, ChurnCase{0, 3, 0.10},
                      ChurnCase{0, 11, 0.25}, ChurnCase{1, 3, 0.02},
                      ChurnCase{1, 11, 0.10}, ChurnCase{1, 7, 0.25},
                      ChurnCase{2, 3, 0.02}, ChurnCase{2, 11, 0.10},
                      ChurnCase{2, 7, 0.25}),
    [](const ::testing::TestParamInfo<ChurnCase>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

// ---------------------------------------------------------------------------
// 2. Determinism across execution axes + the committed golden
// ---------------------------------------------------------------------------

EpochConfig determinism_config() {
  EpochConfig config;
  config.base = GraphSpec::gnp(26, 0.14, 5);
  config.churn.seed = 77;
  config.churn.edge_remove_frac = 0.08;
  config.churn.edge_add_frac = 0.08;
  config.churn.node_remove_frac = 0.05;
  config.churn.node_add_frac = 0.05;
  config.epochs = 4;
  config.capture_transcripts = true;
  config.label = "det";
  return config;
}

TEST(EpochDeterminism, ByteIdenticalAcrossWorkersAndThreads) {
  std::vector<std::vector<std::uint8_t>> sequences;
  std::vector<std::uint64_t> checksums;
  for (int workers : {1, 2, 4}) {
    EpochConfig config = determinism_config();
    config.workers = workers;
    EpochHarness harness(epoch_mis(), config);
    const EpochReport report = harness.run();
    sequences.push_back(epoch_sequence_of("det", report));
    checksums.push_back(epoch_report_checksum(report));
  }
  for (int threads : {1, 2, 4}) {
    EpochConfig config = determinism_config();
    config.workers = 0;  // inline path honors num_threads
    config.options.num_threads = threads;
    EpochHarness harness(epoch_mis(), config);
    const EpochReport report = harness.run();
    sequences.push_back(epoch_sequence_of("det", report));
    checksums.push_back(epoch_report_checksum(report));
  }
  for (std::size_t i = 1; i < sequences.size(); ++i) {
    EXPECT_EQ(sequences[i], sequences[0]) << "execution axis " << i;
    EXPECT_EQ(checksums[i], checksums[0]) << "execution axis " << i;
  }
}

TEST(EpochGolden, CommittedEpochSequencesVerifyAgainstLiveReruns) {
  ASSERT_GE(epoch_cases().size(), 1u);
  for (const EpochCase& c : epoch_cases()) {
    const std::string path =
        std::string(DGAP_GOLDEN_DIR) + "/" + golden_file_name(c);
    const std::vector<std::uint8_t> golden = read_transcript_file(path);
    ASSERT_TRUE(is_epoch_sequence(golden)) << c.name;
    EXPECT_EQ(decode_epoch_sequence(golden).label, c.name);
    EXPECT_NO_THROW(verify_epoch_case(c, golden)) << c.name;
    EXPECT_EQ(record_epoch_case(c), golden) << c.name;
  }
}

TEST(EpochSequenceContainer, RoundTripAndCorruptionGuards) {
  const std::vector<std::vector<std::uint8_t>> blobs = {
      {1, 2, 3}, {}, {255, 0, 128, 7}};
  std::vector<std::uint8_t> bytes = encode_epoch_sequence("roundtrip", blobs);
  ASSERT_TRUE(is_epoch_sequence(bytes));
  const EpochSequence seq = decode_epoch_sequence(bytes);
  EXPECT_EQ(seq.label, "roundtrip");
  EXPECT_EQ(seq.epochs, blobs);

  // Any flipped byte breaks the trailing checksum.
  for (std::size_t i : {std::size_t{5}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_THROW(decode_epoch_sequence(bad), std::invalid_argument) << i;
  }
  // Truncation and foreign magic are structural errors, not UB.
  std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + 9);
  EXPECT_THROW(decode_epoch_sequence(cut), std::invalid_argument);
  std::vector<std::uint8_t> foreign = bytes;
  foreign[0] = 'X';
  EXPECT_FALSE(is_epoch_sequence(foreign));
  EXPECT_THROW(decode_epoch_sequence(foreign), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// 3. Result-cache correctness
// ---------------------------------------------------------------------------

TEST(EpochResultCache, SecondRunIsServedEntirelyFromCache) {
  EpochConfig config = determinism_config();
  EpochHarness harness(epoch_mis(), config);
  const EpochReport first = harness.run();
  const EpochReport second = harness.run();
  EXPECT_EQ(second.cache_misses, 0);
  EXPECT_EQ(second.cache_hits,
            static_cast<std::int64_t>(2 * config.epochs));  // warm + control
  for (const EpochRecord& e : second.epochs) {
    EXPECT_TRUE(e.warm_cache_hit) << "epoch " << e.epoch;
    EXPECT_TRUE(e.control_cache_hit) << "epoch " << e.epoch;
  }
  EXPECT_EQ(epoch_report_checksum(first), epoch_report_checksum(second));
}

TEST(EpochResultCache, HitsAreBitIdenticalToForcedRecompute) {
  EpochConfig cached = determinism_config();
  EpochHarness harness(epoch_mis(), cached);
  harness.run();  // fill
  const EpochReport hit = harness.run();  // served from cache

  EpochConfig uncached = determinism_config();
  uncached.use_result_cache = false;
  EpochHarness fresh(epoch_mis(), uncached);
  const EpochReport recompute = fresh.run();
  EXPECT_EQ(recompute.cache_hits, 0);
  EXPECT_EQ(recompute.cache_misses, 0);

  // Transcript bytes are the strongest witness: every round event equal.
  EXPECT_EQ(epoch_sequence_of("det", hit), epoch_sequence_of("det", recompute));
  EXPECT_EQ(epoch_report_checksum(hit), epoch_report_checksum(recompute));
}

TEST(EpochResultCache, DistinctPredictionsNeverCollide) {
  const Graph g = GraphSpec::gnp(24, 0.15, 9).build();
  std::vector<Predictions> preds;
  preds.push_back(all_same(g, 0));
  preds.push_back(all_same(g, 1));
  for (int flip = 0; flip < 8; ++flip) {
    Rng rng(static_cast<std::uint64_t>(flip) + 1);
    preds.push_back(flip_bits(g, all_same(g, 0), flip + 1, rng));
  }
  const std::uint64_t instance = graph_digest(g);
  const std::uint64_t options = options_digest(EngineOptions{});
  std::set<std::uint64_t> digests;
  std::set<std::uint64_t> keys;
  for (const Predictions& p : preds) {
    digests.insert(predictions_digest(p));
    keys.insert(result_cache_key(instance, "mis_simple_greedy",
                                 predictions_digest(p), options, false,
                                 TraceDetail::kPayloads));
  }
  EXPECT_EQ(digests.size(), preds.size());
  EXPECT_EQ(keys.size(), preds.size());
}

TEST(EpochResultCache, DefaultCapacityIsUnbounded) {
  ResultCache cache;
  EXPECT_EQ(cache.capacity(), 0u);
  RunResult result;
  for (std::uint64_t k = 0; k < 64; ++k) cache.put(k, result, {});
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(EpochResultCache, CapacityEvictsLeastRecentlyUsed) {
  ResultCache cache;
  cache.set_capacity(2);
  RunResult result;
  result.rounds = 7;
  cache.put(1, result, {});
  cache.put(2, result, {});
  // Touch 1 so 2 becomes the least recently used entry.
  EXPECT_NE(cache.get(1), nullptr);
  cache.put(3, result, {});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.get(2), nullptr);   // evicted
  EXPECT_NE(cache.get(1), nullptr);   // refreshed, survived
  EXPECT_NE(cache.get(3), nullptr);   // newest
}

TEST(EpochResultCache, ShrinkingCapacityEvictsImmediately) {
  ResultCache cache;
  RunResult result;
  for (std::uint64_t k = 0; k < 8; ++k) cache.put(k, result, {});
  cache.set_capacity(3);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 5);
  // The three most recently inserted keys survive.
  for (std::uint64_t k = 5; k < 8; ++k) {
    EXPECT_NE(cache.get(k), nullptr) << "key " << k;
  }
  // Eviction never corrupts hit semantics: survivors are bit-exact.
  EXPECT_EQ(cache.get(7)->result.rounds, result.rounds);
}

TEST(EpochResultCache, PoisonedEntryTripsTheGuard) {
  ResultCache cache;
  RunResult result;
  result.rounds = 7;
  cache.put(42, result, {1, 2, 3});
  EXPECT_NE(cache.get(42), nullptr);
  cache.poison_for_test(42);
  EXPECT_THROW(cache.get(42), std::logic_error);
}

// ---------------------------------------------------------------------------
// 4. Identifier stability under churn
// ---------------------------------------------------------------------------

TEST(IdentifierStability, DeletedIdentifiersAreNeverReissued) {
  Graph g = GraphSpec::gnp(20, 0.2, 13).build();
  ChurnSpec churn;
  churn.seed = 99;
  churn.edge_remove_frac = 0.1;
  churn.edge_add_frac = 0.1;
  churn.node_remove_frac = 0.2;
  churn.node_add_frac = 0.2;
  std::set<Value> dead;
  for (int epoch = 1; epoch <= 8; ++epoch) {
    const EditBatch batch = churn.generate(g, epoch);
    for (Value id : batch.remove_nodes) dead.insert(id);
    const std::int64_t old_bound = g.id_bound();
    g = apply_edits(g, batch);
    EXPECT_GE(g.id_bound(), old_bound) << "epoch " << epoch;  // monotone
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(dead.count(g.id(v)), 0u)
          << "identifier " << g.id(v) << " resurrected at epoch " << epoch;
    }
  }
  EXPECT_FALSE(dead.empty()) << "sweep never deleted a node";
}

TEST(IdentifierStability, ReinsertionAfterDeletionGetsAFreshIdentifier) {
  const Graph g = GraphSpec::line(5).build();
  const Value victim = g.id(2);
  EditBatch remove;
  remove.remove_nodes.push_back(victim);
  const Graph smaller = apply_edits(g, remove);
  EditBatch insert;
  insert.add_nodes = 3;
  const Graph bigger = apply_edits(smaller, insert);
  for (NodeId v = 0; v < bigger.num_nodes(); ++v) {
    EXPECT_NE(bigger.id(v), victim);
  }
  // The fresh identifiers sit strictly above the pre-deletion bound.
  EXPECT_EQ(bigger.id_bound(), g.id_bound() + 3);
}

TEST(IdentifierStability, StaleWarmStartPredictionsAreDropped) {
  const Graph prev = GraphSpec::line(4).build();
  // Nodes 0-1 matched with each other, node 2 matched with node 3.
  std::vector<Value> outputs(4);
  outputs[0] = prev.id(1);
  outputs[1] = prev.id(0);
  outputs[2] = prev.id(3);
  outputs[3] = prev.id(2);
  EditBatch batch;
  batch.remove_nodes.push_back(prev.id(3));
  const Graph next = apply_edits(prev, batch);

  const Predictions warm = warm_start_matching(prev, outputs, next);
  ASSERT_EQ(warm.node_values().size(), static_cast<std::size_t>(3));
  // Survivors keep partners that survived; the partner of the deleted
  // node is dropped to ⊥, never passed through as a dangling identifier.
  EXPECT_EQ(warm.node_values()[0], prev.id(1));
  EXPECT_EQ(warm.node_values()[1], prev.id(0));
  EXPECT_EQ(warm.node_values()[2], kNoNode);
}

TEST(IdentifierStability, OutOfEncodingOutputsBecomeNeutralPredictions) {
  const Graph prev = GraphSpec::line(3).build();
  const std::vector<Value> garbage = {kUndefined, -999, 17};
  const Predictions mis = warm_start_mis(prev, garbage, prev);
  EXPECT_EQ(mis.node_values(), (std::vector<Value>{0, 0, 0}));
  const Predictions matching = warm_start_matching(prev, garbage, prev);
  EXPECT_EQ(matching.node_values()[0], kNoNode);
  EXPECT_EQ(matching.node_values()[1], kNoNode);
  const Predictions coloring = warm_start_coloring(prev, garbage, prev);
  EXPECT_EQ(coloring.node_values()[0], 0);
  EXPECT_EQ(coloring.node_values()[1], 0);
  EXPECT_EQ(coloring.node_values()[2], 17);  // positive color passes through
}

TEST(ApplyEdits, EditBatchesAreContractsNotHints) {
  const Graph g = GraphSpec::line(4).build();
  EditBatch unknown_node;
  unknown_node.remove_nodes.push_back(g.id_bound() + 100);
  EXPECT_THROW(apply_edits(g, unknown_node), std::invalid_argument);

  EditBatch missing_edge;
  missing_edge.remove_edges.emplace_back(g.id(0), g.id(3));  // not adjacent
  EXPECT_THROW(apply_edits(g, missing_edge), std::invalid_argument);

  EditBatch duplicate_edge;
  duplicate_edge.add_edges.emplace_back(g.id(0), g.id(1));  // already there
  EXPECT_THROW(apply_edits(g, duplicate_edge), std::invalid_argument);

  EditBatch self_loop;
  self_loop.add_edges.emplace_back(g.id(0), g.id(0));
  EXPECT_THROW(apply_edits(g, self_loop), std::invalid_argument);
}

}  // namespace
}  // namespace dgap
