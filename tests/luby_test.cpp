#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "random/luby.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {
namespace {

TEST(Luby, ValidAcrossFamiliesAndSeeds) {
  Rng rng(1);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (auto make : {+[]() { return make_line(15); },
                      +[]() { return make_ring(12); },
                      +[]() { return make_clique(8); },
                      +[]() { return make_grid(4, 4); }}) {
      Graph g = make();
      randomize_ids(g, rng);
      auto result = run_algorithm(g, luby_mis_algorithm(seed));
      EXPECT_TRUE(result.completed);
      EXPECT_TRUE(is_valid_mis(g, result.outputs))
          << check_mis(g, result.outputs);
    }
  }
}

TEST(Luby, LogarithmicOnLongLines) {
  // Unlike Greedy MIS on sorted identifiers (Θ(n)), Luby finishes a long
  // line in O(log n) rounds with high probability.
  Graph g = make_line(500);
  sorted_ids(g);
  int worst = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto result = run_algorithm(g, luby_mis_algorithm(seed));
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_mis(g, result.outputs));
    worst = std::max(worst, result.rounds);
  }
  EXPECT_LE(worst, 60);  // ≈ 2·c·log2(500), generous
}

TEST(Luby, DifferentSeedsGiveDifferentSets) {
  Graph g = make_ring(20);
  auto a = run_algorithm(g, luby_mis_algorithm(1));
  auto b = run_algorithm(g, luby_mis_algorithm(2));
  EXPECT_TRUE(is_valid_mis(g, a.outputs));
  EXPECT_TRUE(is_valid_mis(g, b.outputs));
  EXPECT_NE(a.outputs, b.outputs);  // astronomically unlikely to collide
}

TEST(Luby, SameSeedReproduces) {
  Graph g = make_grid(5, 5);
  auto a = run_algorithm(g, luby_mis_algorithm(9));
  auto b = run_algorithm(g, luby_mis_algorithm(9));
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(LubyTemplate, SimpleWithLubyIsConsistentAndValid) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_gnp(20, 0.2, rng);
    randomize_ids(g, rng);
    auto correct = mis_correct_prediction(g, rng);
    auto r = run_with_predictions(g, correct, mis_simple_luby(trial));
    EXPECT_TRUE(is_valid_mis(g, r.outputs));
    EXPECT_EQ(r.rounds, 3);  // consistency from the initialization
    auto bad = flip_bits(g, correct, 6, rng);
    auto rb = run_with_predictions(g, bad, mis_simple_luby(trial));
    EXPECT_TRUE(is_valid_mis(g, rb.outputs)) << check_mis(g, rb.outputs);
  }
}

// Section 10's phenomenon: with many small components, the MAX completion
// round over components exceeds the typical per-component completion —
// the expectation is not bounded by O(log η1).
TEST(Luby, MaxOverManyComponentsExceedsSingleComponent) {
  // 200 disjoint 6-node lines (η1-style components of size 6).
  Graph many = make_line(6);
  for (int i = 1; i < 200; ++i) many = disjoint_union(many, make_line(6));
  Graph one = make_line(6);
  double avg_single = 0, avg_many = 0;
  const int kTrials = 10;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    avg_single += run_algorithm(one, luby_mis_algorithm(seed)).rounds;
    avg_many += run_algorithm(many, luby_mis_algorithm(seed + 1000)).rounds;
  }
  avg_single /= kTrials;
  avg_many /= kTrials;
  // The max over 200 components is strictly (and noticeably) worse than a
  // single component of the same size.
  EXPECT_GT(avg_many, avg_single + 0.9);
}

}  // namespace
}  // namespace dgap
