#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "common/math_util.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"

namespace dgap {
namespace {

TEST(MathUtil, IsPrime) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
  EXPECT_TRUE(is_prime(97));
  EXPECT_TRUE(is_prime(7919));
  EXPECT_FALSE(is_prime(7917));
}

TEST(MathUtil, NextPrime) {
  EXPECT_EQ(next_prime(0), 2);
  EXPECT_EQ(next_prime(2), 2);
  EXPECT_EQ(next_prime(3), 3);
  EXPECT_EQ(next_prime(4), 5);
  EXPECT_EQ(next_prime(14), 17);
  EXPECT_EQ(next_prime(90), 97);
}

TEST(MathUtil, NextPrimeIsAlwaysPrimeAndMinimal) {
  for (std::int64_t x = 2; x <= 500; ++x) {
    const std::int64_t p = next_prime(x);
    EXPECT_TRUE(is_prime(p));
    EXPECT_GE(p, x);
    for (std::int64_t y = x; y < p; ++y) EXPECT_FALSE(is_prime(y));
  }
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1024), 10);
}

TEST(MathUtil, LogStar) {
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65536), 4);
  // 2^62 → 62 → 5 → 2 → 1: four applications.
  EXPECT_EQ(log_star(1LL << 62), 4);
}

TEST(MathUtil, IpowSaturates) {
  EXPECT_EQ(ipow_sat(2, 10), 1024);
  EXPECT_EQ(ipow_sat(10, 0), 1);
  EXPECT_EQ(ipow_sat(0, 5), 0);
  EXPECT_EQ(ipow_sat(2, 100), std::numeric_limits<std::int64_t>::max());
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 7), 0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.uniform(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == child.next()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Require, RequireThrowsInvalidArgument) {
  EXPECT_THROW(DGAP_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(DGAP_REQUIRE(true, "fine"));
}

TEST(Require, AssertThrowsLogicError) {
  EXPECT_THROW(DGAP_ASSERT(false, "boom"), std::logic_error);
  EXPECT_NO_THROW(DGAP_ASSERT(true, "fine"));
}

}  // namespace
}  // namespace dgap
