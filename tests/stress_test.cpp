// Scale guardrails: the simulator and the headline algorithms must handle
// thousand-node instances in well under a second each, and the paper's
// n-independence claims must survive at scale.
#include <gtest/gtest.h>

#include <chrono>

#include "common/rng.hpp"
#include "coloring/linial.hpp"
#include "graph/generators.hpp"
#include "mis/algorithms.hpp"
#include "mis/checkers.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(Stress, GreedyMisOnFourThousandNodes) {
  Rng rng(1);
  Graph g = make_gnp(4000, 0.002, rng);
  const auto t0 = std::chrono::steady_clock::now();
  auto result = run_algorithm(g, greedy_mis_algorithm());
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(g, result.outputs));
  EXPECT_LT(seconds_since(t0), 60.0);  // generous: must hold under ASan too
}

TEST(Stress, ParallelTemplateCapHoldsAtScale) {
  // The Corollary 12 cap is independent of n: a 4096-node sorted line
  // with adversarial predictions finishes in the same rounds as a small
  // one, and quickly.
  Graph g = make_line(4096);
  sorted_ids(g);
  auto pred = all_same(g, 1);
  const auto t0 = std::chrono::steady_clock::now();
  auto result = run_with_predictions(g, pred, mis_parallel_linial());
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(g, result.outputs));
  const int r1 = linial_total_rounds(g.id_bound(), g.max_degree());
  EXPECT_LE(result.rounds, 3 + r1 + 1 + g.max_degree() + 3);
  EXPECT_LT(seconds_since(t0), 60.0);  // generous: must hold under ASan too
}

TEST(Stress, TreeParallelAtScale) {
  Rng rng(2);
  RootedTree t = make_rooted_random_tree(5000, rng);
  randomize_ids(t.graph, rng);
  auto pred = all_same(t.graph, 0);
  const auto t0 = std::chrono::steady_clock::now();
  auto result = run_with_predictions(t.graph, pred, tree_mis_parallel(t));
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(t.graph, result.outputs));
  EXPECT_LE(result.rounds, 30);  // O(log* d) all the way up
  EXPECT_LT(seconds_since(t0), 60.0);  // generous: must hold under ASan too
}

TEST(Stress, ManyComponentsScaleLinearly) {
  Graph g = make_line(8);
  for (int i = 1; i < 500; ++i) g = disjoint_union(g, make_line(8));
  Rng rng(3);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), 400, rng);
  const auto t0 = std::chrono::steady_clock::now();
  auto result = run_with_predictions(g, pred, mis_simple_greedy());
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(is_valid_mis(g, result.outputs));
  EXPECT_LE(result.rounds, 8 + 3);  // components solved in parallel
  EXPECT_LT(seconds_since(t0), 60.0);  // generous: must hold under ASan too
}

}  // namespace
}  // namespace dgap
