// Cross-cutting property sweeps:
//  * every algorithm produces valid complete solutions on a family ×
//    size × prediction-regime matrix;
//  * every algorithm's intermediate state (cut at an arbitrary even round)
//    is an extendable partial solution — the invariant all of Section 7's
//    composition machinery rests on;
//  * determinism: identical runs give identical transcripts.
#include <gtest/gtest.h>

#include "coloring/checkers.hpp"
#include "common/rng.hpp"
#include "edgecoloring/algorithms.hpp"
#include "edgecoloring/checkers.hpp"
#include "graph/generators.hpp"
#include "matching/algorithms.hpp"
#include "matching/checkers.hpp"
#include "mis/checkers.hpp"
#include "predict/generators.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"
#include "templates/problems_with_predictions.hpp"

namespace dgap {
namespace {

struct GraphCase {
  const char* name;
  Graph (*make)(Rng&);
};

/// Cut sweeps rerun the same job at max_rounds = 1..full.rounds-1; the
/// runs are independent, so they go through the batch runner (two workers
/// — the sweeps double as a batch-vs-serial equivalence check, since the
/// properties asserted were established against serial runs).
std::vector<RunResult> sweep_cuts(const Graph& g, const Predictions& pred,
                                  ProgramFactory (*make_factory)(),
                                  int first_cut, int step, int full_rounds,
                                  EngineOptions base_options = {}) {
  std::vector<BatchJob> jobs;
  for (int cut = first_cut; cut < full_rounds; cut += step) {
    EngineOptions opt = base_options;
    opt.max_rounds = cut;
    jobs.push_back(make_job(g, make_factory(), pred, opt));
  }
  return take_results(run_batch(std::move(jobs), {2}));
}

const GraphCase kGraphs[] = {
    {"line", [](Rng& r) { Graph g = make_line(11); randomize_ids(g, r); return g; }},
    {"ring", [](Rng& r) { Graph g = make_ring(9); randomize_ids(g, r); return g; }},
    {"clique", [](Rng& r) { Graph g = make_clique(6); randomize_ids(g, r); return g; }},
    {"star", [](Rng& r) { Graph g = make_star(8); randomize_ids(g, r); return g; }},
    {"grid", [](Rng& r) { Graph g = make_grid(4, 3); randomize_ids(g, r); return g; }},
    {"gnp_sparse", [](Rng& r) { return make_gnp(14, 0.12, r); }},
    {"gnp_dense", [](Rng& r) { return make_gnp(12, 0.45, r); }},
    {"tree", [](Rng& r) { Graph g = make_random_tree(13, r); randomize_ids(g, r); return g; }},
    {"two_comps",
     [](Rng& r) {
       Graph g = disjoint_union(make_ring(5), make_line(6));
       randomize_ids(g, r);
       return g;
     }},
};

class MisSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MisSweep, AllMisAlgorithmsExtendableAtEveryEvenCut) {
  const auto [graph_index, flips] = GetParam();
  Rng rng(static_cast<std::uint64_t>(graph_index * 101 + flips));
  Graph g = kGraphs[graph_index].make(rng);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), flips, rng);

  ProgramFactory (*factories[])() = {&mis_simple_greedy,
                                     &mis_consecutive_gather,
                                     &mis_interleaved_gather,
                                     &mis_parallel_linial};
  for (auto make_factory : factories) {
    auto full = run_with_predictions(g, pred, make_factory());
    ASSERT_TRUE(full.completed);
    ASSERT_TRUE(is_valid_mis(g, full.outputs)) << check_mis(g, full.outputs);
    // The consistency invariant (no adjacent 1s, every 0 covered) must
    // hold at EVERY cut; full extendability transiently fails between a
    // winner's round and its neighbors' response round, so it is only
    // asserted at the boundaries the composition machinery uses (below).
    auto partials = sweep_cuts(g, pred, make_factory, 1, 1, full.rounds);
    for (std::size_t i = 0; i < partials.size(); ++i) {
      EXPECT_TRUE(is_consistent_partial_mis(g, partials[i].outputs))
          << kGraphs[graph_index].name << " cut " << 1 + static_cast<int>(i);
    }
  }
  // Simple(Init, Greedy): after the 3-round initialization, every even
  // Greedy boundary (global rounds 3 + 2k) is an extendable partial
  // solution — the property the Consecutive/Interleaved/Parallel
  // schedules rely on.
  {
    auto full = run_with_predictions(g, pred, mis_simple_greedy());
    auto partials = sweep_cuts(g, pred, &mis_simple_greedy, 3, 2, full.rounds);
    for (std::size_t i = 0; i < partials.size(); ++i) {
      EXPECT_TRUE(is_extendable_partial_mis(g, partials[i].outputs))
          << kGraphs[graph_index].name << " boundary cut "
          << 3 + 2 * static_cast<int>(i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MisSweep,
    ::testing::Combine(::testing::Range(0, 9), ::testing::Values(0, 3, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kGraphs[std::get<0>(info.param)].name) + "_f" +
             std::to_string(std::get<1>(info.param));
    });

class OtherProblemsSweep : public ::testing::TestWithParam<int> {};

TEST_P(OtherProblemsSweep, MatchingPipelineValid) {
  const int graph_index = GetParam();
  Rng rng(static_cast<std::uint64_t>(graph_index * 57 + 1));
  Graph g = kGraphs[graph_index].make(rng);
  for (int breaks : {0, 2, 100}) {
    auto pred =
        break_matches(g, matching_correct_prediction(g, rng), breaks, rng);
    auto factory = phase_as_algorithm([](NodeId) {
      std::vector<std::unique_ptr<PhaseProgram>> phases;
      phases.push_back(std::make_unique<MatchingInitPhase>());
      phases.push_back(std::make_unique<GreedyMatchingPhase>());
      return std::make_unique<SequencePhase>(std::move(phases));
    });
    auto result = run_with_predictions(g, pred, factory);
    ASSERT_TRUE(result.completed) << "breaks " << breaks;
    EXPECT_TRUE(is_valid_maximal_matching(g, result.outputs))
        << check_matching(g, result.outputs);
  }
}

TEST_P(OtherProblemsSweep, EdgeColoringPipelineValid) {
  const int graph_index = GetParam();
  Rng rng(static_cast<std::uint64_t>(graph_index * 91 + 5));
  Graph g = kGraphs[graph_index].make(rng);
  for (int scrambles : {0, 3, 50}) {
    auto pred = scramble_edge_colors(
        g, edge_coloring_correct_prediction(g, rng), scrambles, rng);
    auto factory = phase_as_algorithm([](NodeId) {
      std::vector<std::unique_ptr<PhaseProgram>> phases;
      phases.push_back(std::make_unique<EdgeColoringBasePhase>());
      phases.push_back(std::make_unique<GreedyEdgeColoringPhase>());
      return std::make_unique<SequencePhase>(std::move(phases));
    });
    auto result = run_with_predictions(g, pred, factory);
    ASSERT_TRUE(result.completed) << "scrambles " << scrambles;
    EXPECT_TRUE(is_valid_edge_coloring(g, result.edge_outputs))
        << check_edge_coloring(g, result.edge_outputs);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, OtherProblemsSweep, ::testing::Range(0, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kGraphs[info.param].name;
                         });

TEST_P(OtherProblemsSweep, ColoringProperAtEveryCut) {
  // Proper partial colorings are extendable at EVERY round (Section 8.2);
  // assert it for the full Parallel pipeline at every cut.
  const int graph_index = GetParam();
  Rng rng(static_cast<std::uint64_t>(graph_index * 193 + 11));
  Graph g = kGraphs[graph_index].make(rng);
  auto pred = scramble_colors(g, coloring_correct_prediction(g, rng), 5, rng);
  auto full = run_with_predictions(g, pred, coloring_parallel_linial());
  ASSERT_TRUE(full.completed);
  auto partials =
      sweep_cuts(g, pred, &coloring_parallel_linial, 1, 1, full.rounds);
  for (std::size_t i = 0; i < partials.size(); ++i) {
    EXPECT_TRUE(is_proper_partial_coloring(g, partials[i].outputs,
                                           g.max_degree() + 1))
        << kGraphs[graph_index].name << " cut " << 1 + static_cast<int>(i);
  }
}

TEST_P(OtherProblemsSweep, MatchingPartialsStayConsistent) {
  // At every cut of the matching pipeline, the committed matches must be
  // symmetric and land on real edges (extendability may transiently lack
  // only the ⊥-coverage part, which the clean-up restores).
  const int graph_index = GetParam();
  Rng rng(static_cast<std::uint64_t>(graph_index * 389 + 23));
  Graph g = kGraphs[graph_index].make(rng);
  auto pred =
      break_matches(g, matching_correct_prediction(g, rng), 4, rng);
  auto full = run_with_predictions(g, pred, matching_parallel_linegraph());
  ASSERT_TRUE(full.completed);
  auto partials =
      sweep_cuts(g, pred, &matching_parallel_linegraph, 1, 1, full.rounds);
  for (std::size_t i = 0; i < partials.size(); ++i) {
    const RunResult& partial = partials[i];
    // Committed partner claims must be mutual.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const Value out = partial.outputs[v];
      if (out == kUndefined || out == kLeftoverActive || out == kNoNode) {
        continue;
      }
      bool mutual = false;
      for (NodeId u : g.neighbors(v)) {
        if (g.id(u) == out) mutual = (partial.outputs[u] == g.id(v));
      }
      EXPECT_TRUE(mutual) << kGraphs[graph_index].name << " cut "
                          << 1 + static_cast<int>(i) << " node " << v;
    }
  }
}

TEST(EnforcedCongest, ComposedTemplateConsistentAtEveryCutUnderTightBudget) {
  // The composed Consecutive(Init, Greedy, Cleanup | congest-global) run,
  // executed under an ENFORCED 2-word budget (the width its CONGEST
  // compliance promises): every message fits its link's round budget, so
  // nothing defers, the run matches the audited one exactly, and every
  // mid-run cut is still a consistent partial MIS.
  Rng rng(31);
  Graph g = make_gnp(12, 0.3, rng);
  randomize_ids(g, rng);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), 4, rng);

  EngineOptions enforced;
  enforced.congest_policy = CongestPolicy::kDefer;
  enforced.congest_word_limit = 2;
  auto full =
      run_with_predictions(g, pred, mis_consecutive_congest(), enforced);
  ASSERT_TRUE(full.completed);
  ASSERT_TRUE(is_valid_mis(g, full.outputs)) << check_mis(g, full.outputs);
  EXPECT_EQ(full.congest_violations, 0);
  EXPECT_EQ(full.deferred_words, 0);  // width <= 2 never exceeds the budget

  auto audited = run_with_predictions(g, pred, mis_consecutive_congest());
  EXPECT_EQ(full.rounds, audited.rounds);
  EXPECT_EQ(full.outputs, audited.outputs);
  EXPECT_EQ(full.total_words, audited.total_words);

  auto partials = sweep_cuts(g, pred, &mis_consecutive_congest, 1, 1,
                             full.rounds, enforced);
  for (std::size_t i = 0; i < partials.size(); ++i) {
    EXPECT_TRUE(is_consistent_partial_mis(g, partials[i].outputs))
        << "cut " << 1 + static_cast<int>(i);
  }
}

TEST(Determinism, IdenticalRunsIdenticalTranscripts) {
  Rng rng(9);
  Graph g = make_gnp(16, 0.25, rng);
  auto pred = flip_bits(g, mis_correct_prediction(g, rng), 5, rng);
  for (auto factory : {&mis_simple_greedy, &mis_parallel_linial}) {
    auto a = run_with_predictions(g, pred, (*factory)());
    auto b = run_with_predictions(g, pred, (*factory)());
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.total_messages, b.total_messages);
    EXPECT_EQ(a.total_words, b.total_words);
    EXPECT_EQ(a.termination_round, b.termination_round);
  }
}

}  // namespace
}  // namespace dgap
