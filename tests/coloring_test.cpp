#include <gtest/gtest.h>

#include "coloring/algorithms.hpp"
#include "coloring/checkers.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "sim/phase.hpp"

namespace dgap {
namespace {

TEST(ColoringCheckers, AcceptsProperColoring) {
  Graph g = make_line(3);
  EXPECT_TRUE(is_valid_coloring(g, {1, 2, 1}, 3));
}

TEST(ColoringCheckers, RejectsClashOutOfPaletteAndMissing) {
  Graph g = make_line(3);
  EXPECT_FALSE(is_valid_coloring(g, {1, 1, 2}, 3));
  EXPECT_FALSE(is_valid_coloring(g, {1, 4, 1}, 3));
  EXPECT_FALSE(is_valid_coloring(g, {1, kUndefined, 1}, 3));
}

TEST(ColoringCheckers, PartialProper) {
  Graph g = make_line(4);
  EXPECT_TRUE(is_proper_partial_coloring(g, {1, kUndefined, 1, 2}, 3));
  EXPECT_FALSE(is_proper_partial_coloring(g, {1, 1, kUndefined, 2}, 3));
}

TEST(GreedyColoring, ValidOnFamilies) {
  Rng rng(1);
  for (auto make : {+[]() { return make_line(15); },
                    +[]() { return make_ring(10); },
                    +[]() { return make_clique(7); },
                    +[]() { return make_grid(4, 4); },
                    +[]() { return make_star(8); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    auto result = run_algorithm(g, greedy_coloring_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_coloring(g, result.outputs, g.max_degree() + 1))
        << check_coloring(g, result.outputs, g.max_degree() + 1);
  }
}

// Section 8.2: the measure-uniform algorithm finishes in ≤ s rounds on an
// s-node component.
TEST(GreedyColoring, RoundBoundIsComponentSize) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(18, 0.2, rng);
    randomize_ids(g, rng);
    auto result = run_algorithm(g, greedy_coloring_algorithm());
    EXPECT_LE(result.rounds, g.num_nodes());
    EXPECT_TRUE(is_valid_coloring(g, result.outputs, g.max_degree() + 1));
  }
}

TEST(ColoringBasePhase, CorrectPredictionsOutputInTwoRounds) {
  Rng rng(3);
  Graph g = make_grid(4, 4);
  auto pred = coloring_correct_prediction(g, rng);
  auto result = run_with_predictions(g, pred,
                                     phase_as_algorithm(make_coloring_base()));
  EXPECT_EQ(result.rounds, kColoringBaseRounds);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.outputs[v], pred.node(v));
  }
}

TEST(ColoringBasePhase, MatchesAnalyticStatus) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(15, 0.3, rng);
    randomize_ids(g, rng);
    auto pred = scramble_colors(g, coloring_correct_prediction(g, rng),
                                static_cast<int>(rng.next_below(8)), rng);
    auto result = run_with_predictions(
        g, pred, phase_as_algorithm(make_coloring_base()));
    auto status = coloring_base_status(g, pred);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (status[v] == 1) {
        EXPECT_EQ(result.outputs[v], pred.node(v));
      } else {
        EXPECT_EQ(result.outputs[v], kLeftoverActive);
      }
    }
    EXPECT_TRUE(is_proper_partial_coloring(g, result.outputs,
                                           g.max_degree() + 1));
  }
}

TEST(ColoringInitPhase, TieBreaksByIdentifier) {
  Graph g = make_line(2);  // ids 1, 2
  Predictions pred(std::vector<Value>{2, 2});
  auto result = run_with_predictions(g, pred,
                                     phase_as_algorithm(make_coloring_init()));
  EXPECT_EQ(result.outputs[1], 2);              // larger id keeps its color
  EXPECT_EQ(result.outputs[0], kLeftoverActive);  // loser stays active
}

TEST(ColoringInitPhase, ContainsBaseDecisions) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(14, 0.3, rng);
    randomize_ids(g, rng);
    auto pred = scramble_colors(g, coloring_correct_prediction(g, rng),
                                static_cast<int>(rng.next_below(8)), rng);
    auto base = run_with_predictions(
        g, pred, phase_as_algorithm(make_coloring_base()));
    auto init = run_with_predictions(
        g, pred, phase_as_algorithm(make_coloring_init()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (base.outputs[v] != kLeftoverActive) {
        EXPECT_EQ(init.outputs[v], base.outputs[v]);
      }
    }
    EXPECT_TRUE(is_proper_partial_coloring(g, init.outputs,
                                           g.max_degree() + 1));
  }
}

TEST(GreedyColoring, CompletesAPartialColoringAfterInit) {
  // Init + greedy via a sequence: the completed coloring must still be
  // proper — the survivors respect the colors already output.
  Rng rng(6);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(14, 0.3, rng);
    randomize_ids(g, rng);
    auto pred = scramble_colors(g, coloring_correct_prediction(g, rng), 6, rng);
    auto factory = phase_as_algorithm([](NodeId) {
      std::vector<std::unique_ptr<PhaseProgram>> phases;
      phases.push_back(std::make_unique<ColoringInitPhase>());
      phases.push_back(std::make_unique<GreedyColoringPhase>());
      return std::make_unique<SequencePhase>(std::move(phases));
    });
    auto result = run_with_predictions(g, pred, factory);
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_coloring(g, result.outputs, g.max_degree() + 1))
        << check_coloring(g, result.outputs, g.max_degree() + 1);
  }
}

}  // namespace
}  // namespace dgap
