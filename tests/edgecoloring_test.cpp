#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "edgecoloring/algorithms.hpp"
#include "edgecoloring/checkers.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "sim/phase.hpp"

namespace dgap {
namespace {

EdgeOutputs outputs_of(const RunResult& r) { return r.edge_outputs; }

TEST(EdgeColoringCheckers, AcceptsProper) {
  Graph g = make_line(3);  // Δ=2, palette 1..3
  EdgeOutputs out{{{1, 1}}, {{0, 1}, {2, 2}}, {{1, 2}}};
  EXPECT_TRUE(is_valid_edge_coloring(g, out));
}

TEST(EdgeColoringCheckers, RejectsDisagreementRepeatAndGap) {
  Graph g = make_line(3);
  EdgeOutputs disagree{{{1, 1}}, {{0, 2}, {2, 2}}, {{1, 2}}};
  EXPECT_FALSE(is_valid_edge_coloring(g, disagree));
  EdgeOutputs repeat{{{1, 1}}, {{0, 1}, {2, 1}}, {{1, 1}}};
  EXPECT_FALSE(is_valid_edge_coloring(g, repeat));
  EdgeOutputs gap{{{1, 1}}, {{0, 1}}, {}};
  EXPECT_FALSE(is_valid_edge_coloring(g, gap));
}

TEST(GreedyEdgeColoring, ValidOnFamilies) {
  Rng rng(1);
  for (auto make : {+[]() { return make_line(12); },
                    +[]() { return make_ring(9); },
                    +[]() { return make_clique(6); },
                    +[]() { return make_grid(4, 3); },
                    +[]() { return make_star(7); }}) {
    Graph g = make();
    randomize_ids(g, rng);
    auto result = run_algorithm(g, greedy_edge_coloring_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_edge_coloring(g, outputs_of(result)))
        << check_edge_coloring(g, outputs_of(result));
  }
}

// Section 8.3: O(s) rounds on an s-node component (our grouping: ≤ 2s + 2).
TEST(GreedyEdgeColoring, RoundBound) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = make_gnp(14, 0.25, rng);
    randomize_ids(g, rng);
    auto result = run_algorithm(g, greedy_edge_coloring_algorithm());
    NodeId s = 0;
    for (const auto& comp : connected_components(g)) {
      s = std::max(s, static_cast<NodeId>(comp.size()));
    }
    EXPECT_LE(result.rounds, 2 * s + 2) << "trial " << trial;
    EXPECT_TRUE(is_valid_edge_coloring(g, outputs_of(result)));
  }
}

TEST(GreedyEdgeColoring, IsolatedNodesTerminateImmediately) {
  Graph g(3);  // no edges
  auto result = run_algorithm(g, greedy_edge_coloring_algorithm());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 1);
}

TEST(EdgeColoringBasePhase, CorrectPredictionsColorEverythingInOneRound) {
  Rng rng(3);
  Graph g = make_grid(4, 3);
  auto pred = edge_coloring_correct_prediction(g, rng);
  auto result = run_with_predictions(
      g, pred, phase_as_algorithm(make_edge_coloring_base()));
  EXPECT_EQ(result.rounds, 1);  // consistency 1 (Section 8.3)
  EXPECT_TRUE(is_valid_edge_coloring(g, outputs_of(result)))
      << check_edge_coloring(g, outputs_of(result));
}

TEST(EdgeColoringBasePhase, MatchesAnalyticColoredSet) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(12, 0.3, rng);
    randomize_ids(g, rng);
    auto pred = scramble_edge_colors(
        g, edge_coloring_correct_prediction(g, rng),
        static_cast<int>(rng.next_below(6)), rng);
    auto result = run_with_predictions(
        g, pred, phase_as_algorithm(make_edge_coloring_base()));
    auto colored = edge_coloring_base_colored(g, pred);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& nb = g.neighbors(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        const bool has = [&] {
          for (const auto& [key, c] : result.edge_outputs[v]) {
            if (key == nb[i]) return true;
          }
          return false;
        }();
        EXPECT_EQ(has, static_cast<bool>(colored[v][i]))
            << "trial " << trial << " node " << v << " slot " << i;
      }
    }
    EXPECT_TRUE(is_proper_partial_edge_coloring(g, outputs_of(result)));
  }
}

TEST(EdgeColoring, BasePlusGreedyCompletes) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = make_gnp(12, 0.3, rng);
    randomize_ids(g, rng);
    auto pred = scramble_edge_colors(
        g, edge_coloring_correct_prediction(g, rng),
        static_cast<int>(rng.next_below(8)), rng);
    auto factory = phase_as_algorithm([](NodeId) {
      std::vector<std::unique_ptr<PhaseProgram>> phases;
      phases.push_back(std::make_unique<EdgeColoringBasePhase>());
      phases.push_back(std::make_unique<GreedyEdgeColoringPhase>());
      return std::make_unique<SequencePhase>(std::move(phases));
    });
    auto result = run_with_predictions(g, pred, factory);
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_edge_coloring(g, outputs_of(result)))
        << "trial " << trial << ": "
        << check_edge_coloring(g, outputs_of(result));
  }
}

TEST(EdgeColoring, LineGraphEquivalenceSanity) {
  // On a triangle every edge conflicts with every other: the 2Δ−1 = 3
  // palette is exactly used.
  Graph g = make_clique(3);
  auto result = run_algorithm(g, greedy_edge_coloring_algorithm());
  EXPECT_TRUE(is_valid_edge_coloring(g, outputs_of(result)));
  std::set<Value> used;
  for (const auto& row : result.edge_outputs) {
    for (auto [k, c] : row) used.insert(c);
  }
  EXPECT_EQ(used.size(), 3u);
}

}  // namespace
}  // namespace dgap
