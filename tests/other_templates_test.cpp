// Template assemblies for the Section 8 problems: Maximal Matching,
// (Δ+1)-Vertex Coloring, (2Δ−1)-Edge Coloring — validity across prediction
// regimes, consistency constants, reference round bounds independent of n,
// and the robustness caps.
#include <gtest/gtest.h>

#include "coloring/checkers.hpp"
#include "common/rng.hpp"
#include "edgecoloring/checkers.hpp"
#include "edgecoloring/linegraph.hpp"
#include "graph/generators.hpp"
#include "matching/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/problems_with_predictions.hpp"

namespace dgap {
namespace {

const char* kThreeTemplateNames[] = {"simple", "consecutive", "parallel",
                                     "interleaved"};

Graph test_graph(int index, Rng& rng) {
  switch (index % 5) {
    case 0: {
      Graph g = make_line(14);
      randomize_ids(g, rng);
      return g;
    }
    case 1: {
      Graph g = make_ring(11);
      randomize_ids(g, rng);
      return g;
    }
    case 2: {
      Graph g = make_grid(4, 4);
      randomize_ids(g, rng);
      return g;
    }
    case 3:
      return make_gnp(15, 0.25, rng);
    default: {
      Graph g = disjoint_union(make_clique(5), make_line(7));
      randomize_ids(g, rng);
      return g;
    }
  }
}

// ---- Line-graph Linial reference (standalone) ---------------------------------

TEST(LineGraphLinial, ProducesValidEdgeColoring) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    Graph g = test_graph(i, rng);
    auto result = run_algorithm(g, line_graph_edge_coloring_algorithm());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(is_valid_edge_coloring(g, result.edge_outputs))
        << "graph " << i << ": "
        << check_edge_coloring(g, result.edge_outputs);
  }
}

TEST(LineGraphLinial, RoundsIndependentOfN) {
  // Fixed Δ = 2 and fixed identifier domain: the same round count on a
  // ring of 12 and a ring of 200.
  Rng rng(2);
  Graph small = make_ring(12);
  Graph large = make_ring(200);
  randomize_ids_sparse(small, 4000, rng);
  randomize_ids_sparse(large, 4000, rng);
  auto rs = run_algorithm(small, line_graph_edge_coloring_algorithm());
  auto rl = run_algorithm(large, line_graph_edge_coloring_algorithm());
  EXPECT_EQ(rs.rounds, rl.rounds);
  EXPECT_LE(rl.rounds, line_graph_linial_total_rounds(4000, 2) + 1);
}

TEST(LineGraphLinial, MessageWidthBoundedByDegree) {
  Rng rng(3);
  Graph g = make_grid(5, 5);  // Δ = 4
  randomize_ids(g, rng);
  auto result = run_algorithm(g, line_graph_edge_coloring_algorithm());
  // [count, (id,color)*deg, count, used*deg] ≤ 2 + 3Δ words.
  EXPECT_LE(result.max_message_words, 2 + 3 * g.max_degree());
}

// ---- Matching assemblies --------------------------------------------------------

using MatchingFactory = ProgramFactory (*)();
class MatchingTemplates : public ::testing::TestWithParam<int> {};

TEST_P(MatchingTemplates, ValidAcrossRegimes) {
  MatchingFactory factories[] = {&matching_simple_greedy,
                                 &matching_consecutive_linegraph,
                                 &matching_parallel_linegraph,
                                 &matching_interleaved_linegraph};
  auto factory = factories[GetParam()];
  Rng rng(100 + GetParam());
  for (int i = 0; i < 10; ++i) {
    Graph g = test_graph(i, rng);
    auto correct = matching_correct_prediction(g, rng);
    for (int breaks : {0, 2, 100}) {
      auto pred = break_matches(g, correct, breaks, rng);
      auto result = run_with_predictions(g, pred, factory());
      ASSERT_TRUE(result.completed) << "graph " << i << " breaks " << breaks;
      EXPECT_TRUE(is_valid_maximal_matching(g, result.outputs))
          << "graph " << i << " breaks " << breaks << ": "
          << check_matching(g, result.outputs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, MatchingTemplates, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(kThreeTemplateNames[info.param]);
                         });

TEST(MatchingTemplates, ConsistencyTwoRounds) {
  Rng rng(7);
  Graph g = make_grid(5, 5);
  randomize_ids(g, rng);
  auto pred = matching_correct_prediction(g, rng);
  for (auto factory : {&matching_simple_greedy,
                       &matching_consecutive_linegraph,
                       &matching_parallel_linegraph,
                       &matching_interleaved_linegraph}) {
    auto result = run_with_predictions(g, pred, (*factory)());
    EXPECT_EQ(result.rounds, 2);
    EXPECT_TRUE(is_valid_maximal_matching(g, result.outputs));
  }
}

TEST(MatchingTemplates, RobustnessCapsWorstCase) {
  // All-⊥ predictions on a sorted line: the uniform matcher alone needs
  // ~3n/2 rounds, the reference-capped templates stay near the line-graph
  // Linial bound (independent of n for fixed Δ and d).
  Graph g = make_line(240);
  sorted_ids(g);
  auto pred = all_same(g, kNoNode);
  auto simple = run_with_predictions(g, pred, matching_simple_greedy());
  auto consecutive =
      run_with_predictions(g, pred, matching_consecutive_linegraph());
  auto parallel =
      run_with_predictions(g, pred, matching_parallel_linegraph());
  EXPECT_TRUE(is_valid_maximal_matching(g, consecutive.outputs));
  EXPECT_TRUE(is_valid_maximal_matching(g, parallel.outputs));
  EXPECT_GE(simple.rounds, 200);  // Θ(n)
  const int ref = matching_reference_total_rounds(g.id_bound(),
                                                  g.max_degree());
  EXPECT_LE(consecutive.rounds, 2 + (ref + 1) + 1 + ref + 3);
  EXPECT_LE(parallel.rounds,
            2 + line_graph_linial_total_rounds(g.id_bound(), g.max_degree()) +
                3 + 1 + 2 * g.max_degree() + 2);
  EXPECT_LT(parallel.rounds, simple.rounds / 2);
}

// ---- Vertex-coloring assemblies ---------------------------------------------------

class ColoringTemplates : public ::testing::TestWithParam<int> {};

TEST_P(ColoringTemplates, ValidAcrossRegimes) {
  using Factory = ProgramFactory (*)();
  Factory factories[] = {&coloring_simple_greedy,
                         &coloring_consecutive_linial,
                         &coloring_parallel_linial,
                         &coloring_interleaved_linial};
  auto factory = factories[GetParam()];
  Rng rng(200 + GetParam());
  for (int i = 0; i < 10; ++i) {
    Graph g = test_graph(i, rng);
    auto correct = coloring_correct_prediction(g, rng);
    for (int scrambles : {0, 3, 100}) {
      auto pred = scramble_colors(g, correct, scrambles, rng);
      auto result = run_with_predictions(g, pred, factory());
      ASSERT_TRUE(result.completed)
          << "graph " << i << " scrambles " << scrambles;
      EXPECT_TRUE(is_valid_coloring(g, result.outputs, g.max_degree() + 1))
          << "graph " << i << " scrambles " << scrambles << ": "
          << check_coloring(g, result.outputs, g.max_degree() + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, ColoringTemplates, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(kThreeTemplateNames[info.param]);
                         });

TEST(ColoringTemplates, ConsistencyTwoRounds) {
  Rng rng(8);
  Graph g = make_grid(5, 5);
  randomize_ids(g, rng);
  auto pred = coloring_correct_prediction(g, rng);
  for (auto factory : {&coloring_simple_greedy, &coloring_consecutive_linial,
                       &coloring_parallel_linial,
                       &coloring_interleaved_linial}) {
    auto result = run_with_predictions(g, pred, (*factory)());
    EXPECT_EQ(result.rounds, 2);
    EXPECT_TRUE(is_valid_coloring(g, result.outputs, g.max_degree() + 1));
  }
}

TEST(ColoringTemplates, ParallelCapIndependentOfN) {
  // Same Δ, same d: the Parallel coloring's worst-case rounds should not
  // grow with n (all predictions illegal → pure robustness regime).
  Rng rng(9);
  Graph small = make_ring(16);
  Graph large = make_ring(400);
  randomize_ids_sparse(small, 1000, rng);
  randomize_ids_sparse(large, 1000, rng);
  auto bad_small = all_same(small, 99);  // out-of-palette predictions
  auto bad_large = all_same(large, 99);
  auto rs = run_with_predictions(small, bad_small, coloring_parallel_linial());
  auto rl = run_with_predictions(large, bad_large, coloring_parallel_linial());
  EXPECT_TRUE(is_valid_coloring(large, rl.outputs, 3));
  EXPECT_LE(std::abs(rl.rounds - rs.rounds), 2);
}

// ---- Edge-coloring assemblies -----------------------------------------------------

class EdgeColoringTemplates : public ::testing::TestWithParam<int> {};

TEST_P(EdgeColoringTemplates, ValidAcrossRegimes) {
  using Factory = ProgramFactory (*)();
  Factory factories[] = {&edge_coloring_simple_greedy,
                         &edge_coloring_consecutive_linegraph,
                         &edge_coloring_parallel_linegraph,
                         &edge_coloring_interleaved_linegraph};
  auto factory = factories[GetParam()];
  Rng rng(300 + GetParam());
  for (int i = 0; i < 10; ++i) {
    Graph g = test_graph(i, rng);
    auto correct = edge_coloring_correct_prediction(g, rng);
    for (int scrambles : {0, 3, 100}) {
      auto pred = scramble_edge_colors(g, correct, scrambles, rng);
      auto result = run_with_predictions(g, pred, factory());
      ASSERT_TRUE(result.completed)
          << "graph " << i << " scrambles " << scrambles;
      EXPECT_TRUE(is_valid_edge_coloring(g, result.edge_outputs))
          << "graph " << i << " scrambles " << scrambles << ": "
          << check_edge_coloring(g, result.edge_outputs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, EdgeColoringTemplates, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(kThreeTemplateNames[info.param]);
                         });

TEST(EdgeColoringTemplates, ConsistencyOneRound) {
  Rng rng(10);
  Graph g = make_grid(5, 5);
  randomize_ids(g, rng);
  auto pred = edge_coloring_correct_prediction(g, rng);
  for (auto factory : {&edge_coloring_simple_greedy,
                       &edge_coloring_consecutive_linegraph,
                       &edge_coloring_parallel_linegraph,
                       &edge_coloring_interleaved_linegraph}) {
    auto result = run_with_predictions(g, pred, (*factory)());
    EXPECT_EQ(result.rounds, 1);
    EXPECT_TRUE(is_valid_edge_coloring(g, result.edge_outputs));
  }
}

TEST(EdgeColoringTemplates, ConsecutiveCapIndependentOfN) {
  Rng rng(11);
  Graph small = make_ring(16);
  Graph large = make_ring(300);
  randomize_ids_sparse(small, 2000, rng);
  randomize_ids_sparse(large, 2000, rng);
  // Same illegal prediction everywhere → pure robustness regime.
  auto bad_small = Predictions::for_edges(
      small, std::vector<std::vector<Value>>(16, {99, 99}));
  auto bad_large = Predictions::for_edges(
      large, std::vector<std::vector<Value>>(300, {99, 99}));
  auto rs = run_with_predictions(small, bad_small,
                                 edge_coloring_consecutive_linegraph());
  auto rl = run_with_predictions(large, bad_large,
                                 edge_coloring_consecutive_linegraph());
  EXPECT_TRUE(is_valid_edge_coloring(large, rl.edge_outputs));
  // The cap is a pure function of (d, Δ): base + U budget + reference.
  const int ref = line_graph_linial_total_rounds(2000, 2) + 1;
  const int cap = 2 + (ref + 1) + ref;
  EXPECT_LE(rl.rounds, cap);
  EXPECT_LE(std::abs(rl.rounds - rs.rounds), 6);
}

}  // namespace
}  // namespace dgap
