#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/phase.hpp"
#include "sim/transcript.hpp"

namespace dgap {
namespace {

/// Terminates immediately with output = own identifier.
class OutputIdProgram final : public NodeProgram {
 public:
  void on_send(NodeContext&) override {}
  void on_receive(NodeContext& ctx) override {
    ctx.set_output(ctx.id());
    ctx.terminate();
  }
};

TEST(Engine, SingleRoundTermination) {
  Graph g = make_ring(5);
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<OutputIdProgram>(); });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 1);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(result.outputs[v], g.id(v));
    EXPECT_EQ(result.termination_round[v], 1);
  }
}

/// Broadcasts its id; outputs the sum of ids received in round 1.
class SumNeighborsProgram final : public NodeProgram {
 public:
  void on_send(NodeContext& ctx) override {
    if (ctx.round() == 1) ctx.broadcast({ctx.id()});
  }
  void on_receive(NodeContext& ctx) override {
    Value sum = 0;
    for (const Message& m : ctx.inbox()) sum += m.words.at(0);
    ctx.set_output(sum);
    ctx.terminate();
  }
};

TEST(Engine, MessagesDeliveredWithinTheRound) {
  Graph g = make_line(3);  // ids 1,2,3
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<SumNeighborsProgram>(); });
  EXPECT_EQ(result.outputs[0], 2);
  EXPECT_EQ(result.outputs[1], 1 + 3);
  EXPECT_EQ(result.outputs[2], 2);
}

/// Node with the largest id terminates in round 1 (output 7); the others
/// record WHEN they first see it gone and what output they observe.
class ObserveTerminationProgram final : public NodeProgram {
 public:
  void on_send(NodeContext&) override {}
  void on_receive(NodeContext& ctx) override {
    bool local_max = true;
    for (NodeId u : ctx.active_neighbors()) {
      if (ctx.neighbor_id(u) > ctx.id()) local_max = false;
    }
    if (ctx.round() == 1 && local_max) {
      ctx.set_output(7);
      ctx.terminate();
      return;
    }
    for (NodeId u : ctx.neighbors()) {
      if (!ctx.neighbor_active(u) && ctx.neighbor_output(u) == 7) {
        // Encode the round at which the notice became visible.
        ctx.set_output(100 + ctx.round());
        ctx.terminate();
        return;
      }
    }
  }
};

TEST(Engine, TerminationNoticeVisibleNextRound) {
  Graph g = make_line(3);  // ids 1-2-3; node 2 is the global max
  EngineOptions opt;
  opt.max_rounds = 10;  // node 0 never meets its condition; cut the run
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<ObserveTerminationProgram>(); },
      opt);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.outputs[2], 7);
  EXPECT_EQ(result.termination_round[2], 1);
  // Neighbor 1 sees the notice in round 2, not round 1.
  EXPECT_EQ(result.outputs[1], 102);
  // Node 0 only sees node 1 (output 102 ≠ 7): it keeps waiting until the
  // run is cut off — mark incomplete runs correctly.
  EXPECT_FALSE(result.outputs[0] == 7);
}

/// A node that never terminates.
class StallProgram final : public NodeProgram {
 public:
  void on_send(NodeContext&) override {}
  void on_receive(NodeContext&) override {}
};

TEST(Engine, MaxRoundsCutoffReportsIncomplete) {
  Graph g = make_line(2);
  EngineOptions opt;
  opt.max_rounds = 10;
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<StallProgram>(); }, opt);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 10);
  EXPECT_EQ(result.termination_round[0], -1);
}

TEST(Engine, TerminateWithoutOutputThrows) {
  class BadProgram final : public NodeProgram {
   public:
    void on_send(NodeContext&) override {}
    void on_receive(NodeContext& ctx) override { ctx.terminate(); }
  };
  Graph g = make_line(2);
  EXPECT_THROW(
      run_algorithm(g, [](NodeId) { return std::make_unique<BadProgram>(); }),
      std::invalid_argument);
}

TEST(Engine, SendOutsideSendPhaseThrows) {
  class SendInReceiveProgram final : public NodeProgram {
   public:
    void on_send(NodeContext&) override {}
    void on_receive(NodeContext& ctx) override {
      ctx.send(ctx.neighbors().front(), {1});
    }
  };
  Graph g = make_line(2);
  EXPECT_THROW(run_algorithm(g, [](NodeId) {
                 return std::make_unique<SendInReceiveProgram>();
               }),
               std::invalid_argument);
}

TEST(Engine, MessageMetricsCountWordsAndNotices) {
  // Every node broadcasts one word in round 1, then terminates: ring of 4
  // gives 8 messages of 1 word + 0 notices (all terminate simultaneously).
  Graph g = make_ring(4);
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<SumNeighborsProgram>(); });
  EXPECT_EQ(result.total_messages, 8);
  EXPECT_EQ(result.total_words, 8);
  EXPECT_EQ(result.max_message_words, 1);
}

TEST(Engine, CongestViolationCounting) {
  class WidePayloadProgram final : public NodeProgram {
   public:
    void on_send(NodeContext& ctx) override {
      if (ctx.round() == 1) ctx.broadcast({1, 2, 3, 4, 5});
    }
    void on_receive(NodeContext& ctx) override {
      ctx.set_output(0);
      ctx.terminate();
    }
  };
  Graph g = make_line(3);
  EngineOptions opt;
  opt.congest_word_limit = 2;
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<WidePayloadProgram>(); }, opt);
  EXPECT_EQ(result.congest_violations, 4);  // 2+1+1 broadcasts of 5 words
  EXPECT_EQ(result.max_message_words, 5);
}

TEST(Engine, ChannelsAreIsolated) {
  // Node sends on channel 1 and channel 2; receiver counts per channel.
  class MultiChannelProgram final : public NodeProgram {
   public:
    void on_send(NodeContext& ctx) override {
      if (ctx.round() == 1) {
        ctx.broadcast({11}, 1);
        ctx.broadcast({22}, 2);
        ctx.broadcast({22}, 2);
      }
    }
    void on_receive(NodeContext& ctx) override {
      // Allocation-free per-channel filter (the vector-returning
      // inbox_on_channel overload remains for random-access callers).
      Value c1 = 0, c2 = 0;
      for_each_on_channel(ctx.inbox(), 1, [&](const Message&) { ++c1; });
      for_each_on_channel(ctx.inbox(), 2, [&](const Message&) { ++c2; });
      ctx.set_output(10 * c1 + c2);
      ctx.terminate();
    }
  };
  Graph g = make_line(2);
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<MultiChannelProgram>(); });
  EXPECT_EQ(result.outputs[0], 12);
  EXPECT_EQ(result.outputs[1], 12);
}

TEST(Engine, ForEachOnChannelPreservesInboxOrderAndMatchesOverload) {
  // The callback helper and the vector-returning overload must agree on
  // both membership and order for every channel.
  std::vector<Value> payloads = {10, 20, 30, 40, 50};
  std::vector<Message> inbox;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    Message m;
    m.from = static_cast<NodeId>(i);
    m.channel = static_cast<int>(i % 3);
    m.words = WordSpan(&payloads[i], 1);
    inbox.push_back(m);
  }
  for (int channel = -1; channel <= 3; ++channel) {
    std::vector<const Message*> seen;
    for_each_on_channel(inbox, channel, [&](const Message& m) {
      seen.push_back(&m);
    });
    EXPECT_EQ(seen, inbox_on_channel(inbox, channel)) << "channel "
                                                      << channel;
    for (std::size_t i = 1; i < seen.size(); ++i) {
      EXPECT_LT(seen[i - 1]->from, seen[i]->from);  // inbox order kept
    }
  }
}

TEST(Engine, EdgeOutputsRecorded) {
  class EdgeOutputProgram final : public NodeProgram {
   public:
    void on_send(NodeContext&) override {}
    void on_receive(NodeContext& ctx) override {
      for (NodeId u : ctx.neighbors()) {
        ctx.set_output_for(u, ctx.id() * 100 + ctx.neighbor_id(u));
      }
      if (ctx.degree() == 0) ctx.set_output(0);
      ctx.terminate();
    }
  };
  Graph g = make_line(3);
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<EdgeOutputProgram>(); });
  ASSERT_EQ(result.edge_outputs[1].size(), 2u);
  EXPECT_EQ(result.edge_outputs[1][0].first, 0);
  EXPECT_EQ(result.edge_outputs[1][0].second, 201);
}

TEST(Engine, ActivePerRoundRecording) {
  Graph g = make_line(4);
  EngineOptions opt;
  opt.record_active_per_round = true;
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<OutputIdProgram>(); }, opt);
  ASSERT_EQ(result.active_per_round.size(), 1u);
  EXPECT_EQ(result.active_per_round[0], 4);
}

TEST(Engine, PredictionsAccessible) {
  class EchoPredictionProgram final : public NodeProgram {
   public:
    void on_send(NodeContext&) override {}
    void on_receive(NodeContext& ctx) override {
      ctx.set_output(ctx.prediction() * 2);
      ctx.terminate();
    }
  };
  Graph g = make_line(3);
  Predictions pred(std::vector<Value>{5, 6, 7});
  auto result = run_with_predictions(g, pred, [](NodeId) {
    return std::make_unique<EchoPredictionProgram>();
  });
  EXPECT_EQ(result.outputs[0], 10);
  EXPECT_EQ(result.outputs[2], 14);
}

TEST(Engine, GraphInfoExposedToNodes) {
  class InfoProgram final : public NodeProgram {
   public:
    void on_send(NodeContext&) override {}
    void on_receive(NodeContext& ctx) override {
      ctx.set_output(ctx.n() * 1000 + ctx.delta() * 100 +
                     static_cast<Value>(ctx.d()));
      ctx.terminate();
    }
  };
  Graph g = make_star(4);  // n=4, Δ=3, d=4
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<InfoProgram>(); });
  EXPECT_EQ(result.outputs[0], 4000 + 300 + 4);
}

TEST(Engine, TerminationTraceRecording) {
  Graph g = make_line(3);  // ids 1-2-3
  EngineOptions opt;
  opt.record_terminations = true;
  // ObserveTerminationProgram: node 2 (max id) ends round 1, node 1
  // follows in round 2, node 0 never does.
  opt.max_rounds = 5;
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<ObserveTerminationProgram>(); },
      opt);
  ASSERT_EQ(result.terminations_per_round.size(), 5u);
  EXPECT_EQ(result.terminations_per_round[0], (std::vector<NodeId>{2}));
  EXPECT_EQ(result.terminations_per_round[1], (std::vector<NodeId>{1}));
  EXPECT_TRUE(result.terminations_per_round[2].empty());
}

TEST(Engine, CompletionRoundPerComponent) {
  // Two components: a clique (max-id terminates round 1, rest round 2ish)
  // and an isolated node (round 1). Use OutputIdProgram: everyone in
  // round 1.
  Graph g(4);
  g.add_edge(0, 1);
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<OutputIdProgram>(); });
  auto per_comp = completion_round_per_component(g, result);
  ASSERT_EQ(per_comp.size(), 3u);
  for (int r : per_comp) EXPECT_EQ(r, 1);

  // Incomplete runs report -1 for unfinished components.
  EngineOptions opt;
  opt.max_rounds = 2;
  auto stalled = run_algorithm(
      g, [](NodeId) { return std::make_unique<StallProgram>(); }, opt);
  auto stalled_comp = completion_round_per_component(g, stalled);
  for (int r : stalled_comp) EXPECT_EQ(r, -1);
}

TEST(Phase, PhaseAsAlgorithmEmitsLeftoverMarker) {
  auto factory =
      phase_as_algorithm([](NodeId) { return std::make_unique<IdlePhase>(2); });
  Graph g = make_line(2);
  auto result = run_algorithm(g, factory);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 2);
  EXPECT_EQ(result.outputs[0], kLeftoverActive);
}

TEST(Phase, BudgetedPhaseCutsEarly) {
  auto factory = phase_as_algorithm([](NodeId) {
    return std::make_unique<BudgetedPhase>(std::make_unique<IdlePhase>(100),
                                           3, /*pad_to_budget=*/false);
  });
  Graph g = make_line(2);
  auto result = run_algorithm(g, factory);
  EXPECT_EQ(result.rounds, 3);
}

TEST(Phase, BudgetedPhasePadsToBudget) {
  auto factory = phase_as_algorithm([](NodeId) {
    return std::make_unique<BudgetedPhase>(std::make_unique<IdlePhase>(1), 5,
                                           /*pad_to_budget=*/true);
  });
  Graph g = make_line(2);
  auto result = run_algorithm(g, factory);
  EXPECT_EQ(result.rounds, 5);
}

/// Sends {round} to every *graph* neighbor each round — including ones
/// that already terminated — and records how many messages it received.
/// The node with id 3 terminates after round 1; the rest after round 3.
class SendToAllGraphNeighborsProgram final : public NodeProgram {
 public:
  void on_send(NodeContext& ctx) override {
    for (NodeId u : ctx.neighbors()) ctx.send(u, {Value{ctx.round()}});
  }
  void on_receive(NodeContext& ctx) override {
    received_ += static_cast<Value>(ctx.inbox().size());
    if (ctx.id() == 3 || ctx.round() == 3) {
      ctx.set_output(received_);
      ctx.terminate();
    }
  }

 private:
  Value received_ = 0;
};

// Pins the drop-vs-charge rule (see Engine::deliver_round_messages): a
// message addressed to a node that terminated in an earlier round is
// charged to the metrics — the sender cannot know the receiver is gone
// until the termination notice arrives — but never delivered (a terminated
// node has no receive phase).
TEST(Engine, DropsToTerminatedAreChargedNotDelivered) {
  Graph g = make_line(3);  // ids 1,2,3: edges 1-2, 2-3
  auto result = run_algorithm(g, [](NodeId) {
    return std::make_unique<SendToAllGraphNeighborsProgram>();
  });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 3);
  // Round 1: 4 sends (both edges, both directions), all delivered; id 3
  // terminates, and its notice to the one still-active neighbor costs 1.
  // Rounds 2 and 3: 3 sends each — id 2's send to the terminated id 3 is
  // charged but dropped. The final joint termination sends no notices.
  EXPECT_EQ(result.total_messages, 4 + 1 + 3 + 3);
  EXPECT_EQ(result.total_words, 4 + 1 + 3 + 3);  // 1 word each, channel 0
  // Received counts prove the drops: id 3 saw only round 1 (1 message from
  // id 2); id 1 got one message per round; id 2 got two in round 1 (ids 1
  // and 3 both sent) and one per round after.
  EXPECT_EQ(result.outputs[2], 1);
  EXPECT_EQ(result.outputs[0], 3);
  EXPECT_EQ(result.outputs[1], 2 + 1 + 1);
}

// ---------------------------------------------------------------------------
// Link-layer enforcement (docs/MODEL.md, "CONGEST enforcement semantics").
// ---------------------------------------------------------------------------

/// Index 0 sends one 6-word message to its neighbor in round 1 and records
/// the backlog it observes on that link each round; the neighbor records
/// the round its message arrived in. Both run for exactly `run_rounds`.
class OneBurstProgram final : public NodeProgram {
 public:
  explicit OneBurstProgram(int run_rounds) : run_rounds_(run_rounds) {}
  void on_send(NodeContext& ctx) override {
    if (ctx.index() == 0) {
      if (ctx.round() == 1) {
        ctx.send(1, {1, 2, 3, 4, 5, 6});
      }
      // Observed at send time: the carry-over left by the previous round.
      backlog_trace_ = backlog_trace_ * 10 + ctx.link_backlog(1);
    }
  }
  void on_receive(NodeContext& ctx) override {
    for (const Message& m : ctx.inbox()) {
      arrival_ = arrival_ * 100 + ctx.round() * 10 +
                 static_cast<Value>(m.words.size());
    }
    if (ctx.round() == run_rounds_) {
      ctx.set_output(ctx.index() == 0 ? backlog_trace_ : arrival_);
      ctx.terminate();
    }
  }

 private:
  int run_rounds_;
  Value backlog_trace_ = 0;  // one decimal digit per round
  Value arrival_ = 0;        // (round, words) pairs, two digits each
};

TEST(Engine, DeferSpreadsDeliveryAcrossRounds) {
  // 6 words over a 2-word/round link: the message needs ceil(6/2) = 3
  // rounds and arrives in round 3, not round 1.
  Graph g = make_line(2);
  EngineOptions opt;
  opt.congest_policy = CongestPolicy::kDefer;
  opt.congest_word_limit = 2;
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<OneBurstProgram>(3); }, opt);
  EXPECT_TRUE(result.completed);
  // Receiver: exactly one arrival, in round 3, with all 6 words intact.
  EXPECT_EQ(result.outputs[1], 36);
  // Sender: backlog 0 before round 1's sends, then 4 and 2 carried words.
  EXPECT_EQ(result.outputs[0], 42);
  // Metrics: one message missed its send round carrying 4 words; rounds 2
  // and 3 started with words in flight; the queue peaked at 4 words.
  EXPECT_EQ(result.deferred_messages, 1);
  EXPECT_EQ(result.deferred_words, 4);
  EXPECT_EQ(result.link_backlog_peak_words, 4);
  EXPECT_EQ(result.rounds_with_backlog, 2);
  // The audit semantics are unchanged: one message wider than the limit.
  EXPECT_EQ(result.congest_violations, 1);
  EXPECT_EQ(result.total_words, 6);
}

TEST(Engine, DeferPreservesFifoAndSenderOrder) {
  // Ids 1-2-3: both endpoints send two 2-word messages to the middle in
  // round 1 under a 2-word budget. Each link clears one message per
  // round; each round's inbox must list senders in ascending order and
  // each link's messages in send order.
  class TwoSendsProgram final : public NodeProgram {
   public:
    void on_send(NodeContext& ctx) override {
      if (ctx.round() == 1 && ctx.degree() == 1) {
        ctx.send(ctx.neighbors()[0], {ctx.id(), 1});
        ctx.send(ctx.neighbors()[0], {ctx.id(), 2});
      }
    }
    void on_receive(NodeContext& ctx) override {
      for (const Message& m : ctx.inbox()) {
        trace_ = trace_ * 1000 + m.words.at(0) * 10 + m.words.at(1);
      }
      if (ctx.round() == 2) {
        ctx.set_output(trace_);
        ctx.terminate();
      }
    }

   private:
    Value trace_ = 0;
  };
  Graph g = make_line(3);
  EngineOptions opt;
  opt.congest_policy = CongestPolicy::kDefer;
  opt.congest_word_limit = 2;
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<TwoSendsProgram>(); }, opt);
  EXPECT_TRUE(result.completed);
  // Round 1: first message of id 1 then of id 3; round 2: their seconds.
  EXPECT_EQ(result.outputs[1], 11'031'012'032LL);
}

TEST(Engine, TruncateDropsExcessWords) {
  // Two messages on one link in one round under a 2-word budget: a 3-word
  // message keeps its first 2 words; the following 2-word message finds
  // the budget exhausted and arrives empty. Both are marked.
  class TwoWidthsProgram final : public NodeProgram {
   public:
    void on_send(NodeContext& ctx) override {
      if (ctx.round() == 1 && ctx.index() == 0) {
        ctx.send(1, {41, 42, 43});
        ctx.send(1, {91, 92});
      }
    }
    void on_receive(NodeContext& ctx) override {
      Value seen = 0;
      for (const Message& m : ctx.inbox()) {
        seen = seen * 1000 + static_cast<Value>(m.words.size()) * 10 +
               (m.truncated ? 1 : 0);
        for (std::size_t i = 0; i < m.words.size(); ++i) {
          EXPECT_LT(m.words.at(i), 50);  // nothing of {91, 92} got through
        }
      }
      ctx.set_output(seen + 1);
      ctx.terminate();
    }
  };
  Graph g = make_line(2);
  EngineOptions opt;
  opt.congest_policy = CongestPolicy::kTruncate;
  opt.congest_word_limit = 2;
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<TwoWidthsProgram>(); }, opt);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 1);  // truncation never delays delivery
  // (len 2, truncated) then (len 0, truncated), +1.
  EXPECT_EQ(result.outputs[1], 21'001 + 1);
  EXPECT_EQ(result.truncated_messages, 2);
  EXPECT_EQ(result.truncated_words, 1 + 2);
  EXPECT_EQ(result.deferred_words, 0);
}

TEST(Engine, FailPolicyThrowsAtOffendingSend) {
  class WideProgram final : public NodeProgram {
   public:
    void on_send(NodeContext& ctx) override {
      if (ctx.round() == 1) ctx.broadcast({1, 2, 3});
    }
    void on_receive(NodeContext& ctx) override {
      ctx.set_output(0);
      ctx.terminate();
    }
  };
  Graph g = make_line(2);
  EngineOptions opt;
  opt.congest_policy = CongestPolicy::kFail;
  opt.congest_word_limit = 2;
  EXPECT_THROW(
      run_algorithm(
          g, [](NodeId) { return std::make_unique<WideProgram>(); }, opt),
      std::invalid_argument);
  // Within budget, kFail is transparent.
  opt.congest_word_limit = 3;
  auto ok = run_algorithm(
      g, [](NodeId) { return std::make_unique<WideProgram>(); }, opt);
  EXPECT_TRUE(ok.completed);
  EXPECT_EQ(ok.rounds, 1);
}

TEST(Engine, EnforcingPolicyRequiresPositiveBudget) {
  Graph g = make_line(2);
  EngineOptions opt;
  opt.congest_policy = CongestPolicy::kDefer;  // congest_word_limit left 0
  EXPECT_THROW(
      run_algorithm(
          g, [](NodeId) { return std::make_unique<OutputIdProgram>(); }, opt),
      std::invalid_argument);
}

TEST(Engine, DeferDeliversToLateTerminatedReceiverNever) {
  // Index 1 terminates in round 1; index 0's 4-word message (sent round 1,
  // due round 2 under a 2-word budget) crossed the wire and is charged,
  // but is never delivered — terminated nodes have no receive phase.
  class SenderOrQuitter final : public NodeProgram {
   public:
    void on_send(NodeContext& ctx) override {
      if (ctx.round() == 1 && ctx.index() == 0) ctx.send(1, {1, 2, 3, 4});
    }
    void on_receive(NodeContext& ctx) override {
      EXPECT_TRUE(ctx.inbox().empty());
      if (ctx.index() == 1 || ctx.round() == 3) {
        ctx.set_output(7);
        ctx.terminate();
      }
    }
  };
  Graph g = make_line(2);
  EngineOptions opt;
  opt.congest_policy = CongestPolicy::kDefer;
  opt.congest_word_limit = 2;
  auto result = run_algorithm(
      g, [](NodeId) { return std::make_unique<SenderOrQuitter>(); }, opt);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.total_messages, 1 + 1);  // the burst + one notice
  EXPECT_EQ(result.total_words, 4 + 1);
}

// ---- Phase profiler (EngineOptions::profile_phases) -------------------------

/// Captures every on_round_profile event (one per round when profiling).
class ProfileCollector final : public TraceSink {
 public:
  void on_round_profile(int round, const PhaseProfile& profile) override {
    rounds.push_back(round);
    total.accumulate(profile);
  }
  std::vector<int> rounds;
  PhaseProfile total;
};

/// Three rounds of broadcasting so every pipeline stage does real work.
class ChatterProgram final : public NodeProgram {
 public:
  void on_send(NodeContext& ctx) override {
    if (ctx.round() <= 3) ctx.broadcast({ctx.id(), 7});
  }
  void on_receive(NodeContext& ctx) override {
    if (ctx.round() >= 3) {
      ctx.set_output(ctx.id());
      ctx.terminate();
    }
  }
};

TEST(Engine, PhaseProfilerSelfConsistent) {
  Rng rng(4242);
  Graph g = make_gnp(256, 8.0 / 256, rng);
  EngineOptions opt;
  opt.profile_phases = true;
  auto factory = [](NodeId) { return std::make_unique<ChatterProgram>(); };
  auto result = run_algorithm(g, factory, opt);
  ASSERT_TRUE(result.completed);
  // Each stage measured its own wall slice: the per-stage sum can never
  // exceed the whole run's wall clock (it omits scheduling/bookkeeping
  // between the measured spans).
  EXPECT_GT(result.phase_ns.sum(), 0);
  EXPECT_LE(static_cast<double>(result.phase_ns.sum()) / 1e6,
            result.wall_ms + 1e-3);
  // A message-heavy run without a link layer exercises send, scatter,
  // receive, and mutate; the link span only runs under enforcement.
  EXPECT_GT(result.phase_ns.send_ns, 0);
  EXPECT_GT(result.phase_ns.scatter_ns, 0);
  EXPECT_GT(result.phase_ns.receive_ns, 0);
  EXPECT_GT(result.phase_ns.mutate_ns, 0);
  EXPECT_EQ(result.phase_ns.link_ns, 0);
  EXPECT_EQ(result.phase_ns.trace_ns, 0);
}

TEST(Engine, PhaseProfilerStreamsPerRoundDeltas) {
  Rng rng(4242);
  Graph g = make_gnp(128, 8.0 / 128, rng);
  EngineOptions opt;
  opt.profile_phases = true;
  ProfileCollector collector;
  opt.trace_sink = &collector;
  auto factory = [](NodeId) { return std::make_unique<ChatterProgram>(); };
  auto result = run_algorithm(g, factory, opt);
  ASSERT_TRUE(result.completed);
  // One event per round, in order, and the deltas sum to the run totals.
  ASSERT_EQ(static_cast<int>(collector.rounds.size()), result.rounds);
  for (int r = 1; r <= result.rounds; ++r) {
    EXPECT_EQ(collector.rounds[static_cast<std::size_t>(r - 1)], r);
  }
  EXPECT_EQ(collector.total.sum(), result.phase_ns.sum());
  EXPECT_EQ(collector.total.send_ns, result.phase_ns.send_ns);
  EXPECT_EQ(collector.total.mutate_ns, result.phase_ns.mutate_ns);
}

TEST(Engine, PhaseProfilerLinkAndTraceSpans) {
  // Under an enforcing policy the delivery span is attributed to link_ns
  // (the serial reference path), and a payload-recording sink makes the
  // trace span nonzero.
  Rng rng(77);
  Graph g = make_gnp(128, 8.0 / 128, rng);
  EngineOptions opt;
  opt.profile_phases = true;
  opt.congest_policy = CongestPolicy::kDefer;
  opt.congest_word_limit = 1;
  auto factory = [](NodeId) { return std::make_unique<ChatterProgram>(); };
  auto result = run_algorithm(g, factory, opt);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.phase_ns.link_ns, 0);
  EXPECT_EQ(result.phase_ns.scatter_ns, 0);

  EngineOptions topt;
  topt.profile_phases = true;
  TranscriptWriter writer(TraceDetail::kPayloads);
  topt.trace_sink = &writer;
  auto traced = run_algorithm(g, factory, topt);
  ASSERT_TRUE(traced.completed);
  EXPECT_GT(traced.phase_ns.trace_ns, 0);
}

TEST(Phase, SequencePhaseRunsInOrder) {
  std::vector<std::unique_ptr<PhaseProgram>> phases;
  phases.push_back(std::make_unique<IdlePhase>(2));
  phases.push_back(std::make_unique<IdlePhase>(3));
  auto seq = std::make_unique<SequencePhase>(std::move(phases));
  // Wrap in a one-node run and count rounds.
  Graph g(1);
  auto raw = seq.release();
  auto factory = phase_as_algorithm(
      [raw](NodeId) { return std::unique_ptr<PhaseProgram>(raw); });
  auto result = run_algorithm(g, factory);
  EXPECT_EQ(result.rounds, 5);
}

}  // namespace
}  // namespace dgap
