// dgap_fit: the offline trainer behind the learned prediction backend.
//
//   dgap_fit <transcript.dgaptr> <out.dgwb> [iterations] [learning_rate]
//
// Reads a completed, spec-built binary transcript (the same "DGTR" files
// the golden corpus uses — tests/golden/learned_train_gnp64.dgaptr is the
// committed training run), rebuilds the instance from the embedded
// GraphSpec, and decodes the run's final outputs as the PRIOR solution —
// the thing a serving epoch would warm-start from. Training data is that
// real prior plus the stale_training_corpus error sweep for all three
// node-valued problem kinds; fit_logistic is full-batch and
// deterministic, so the emitted "DGWB" weight blob is a pure function of
// the transcript bytes and the hyperparameters. CI smoke-fits the
// committed transcript and then hands the blob's providers to
// bench_learned.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "predict/learned.hpp"
#include "sim/transcript.hpp"

namespace {

using namespace dgap;

int usage() {
  std::fprintf(stderr,
               "usage: dgap_fit <transcript.dgaptr> <out.dgwb> "
               "[iterations] [learning_rate]\n");
  return 2;
}

/// The run's final outputs, indexed by node: every termination event in
/// the transcript assigns its node's output (indices, not identifiers —
/// the same convention RunResult::outputs uses).
std::vector<Value> prior_outputs(const Transcript& t) {
  std::vector<Value> outputs(static_cast<std::size_t>(t.n), 0);
  for (const TranscriptRound& round : t.rounds) {
    for (const TranscriptTermination& term : round.terminations) {
      outputs[static_cast<std::size_t>(term.node)] = term.output;
    }
  }
  return outputs;
}

double accuracy(const LearnedModel& model, ProblemKind kind,
                const TrainingSet& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.rows.size(); ++i) {
    const bool trust = learned_score_q16(model, kind, data.rows[i]) >= 0;
    if (trust == (data.labels[i] != 0)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.rows.size());
}

int run(int argc, char** argv) {
  if (argc < 3 || argc > 5) return usage();
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 400;
  const double learning_rate = argc > 4 ? std::atof(argv[4]) : 0.5;
  DGAP_REQUIRE(iterations > 0, "iterations must be positive");
  DGAP_REQUIRE(learning_rate > 0, "learning_rate must be positive");

  const Transcript t = decode_transcript(read_transcript_file(in_path));
  DGAP_REQUIRE(t.spec.has_value(),
               "transcript has no embedded GraphSpec; dgap_fit needs a "
               "spec-built run to rebuild the instance");
  DGAP_REQUIRE(t.summary.completed,
               "transcript records an incomplete run; the prior solution "
               "would be partial");
  const Graph g = t.spec->build();
  DGAP_REQUIRE(g.num_nodes() == t.n, "rebuilt instance size mismatch");
  const std::vector<Value> prior = prior_outputs(t);
  std::printf("corpus: %s (n=%d, %d rounds)\n", t.label.c_str(), t.n,
              t.summary.rounds);

  // Error levels for the synthetic staleness sweep, scaled to n.
  const int n = g.num_nodes();
  const std::vector<int> levels{0, n / 16, n / 4, n};

  LearnedModel model;
  static constexpr ProblemKind kKinds[] = {
      ProblemKind::kMis, ProblemKind::kMatching, ProblemKind::kColoring};
  for (ProblemKind kind : kKinds) {
    TrainingSet data = stale_training_corpus(g, kind, levels, 71);
    if (kind == ProblemKind::kMis) {
      // The transcript's real outputs are the one non-synthetic prior.
      merge_training(data, training_samples(g, kind, prior));
    }
    const double loss0 = logistic_loss(model, kind, data);
    fit_logistic(model, kind, data, iterations, learning_rate);
    std::printf("fit %-9s %4zu samples  loss %.4f -> %.4f  acc %.3f\n",
                problem_kind_name(kind), data.rows.size(), loss0,
                logistic_loss(model, kind, data), accuracy(model, kind, data));
  }

  const std::vector<std::uint8_t> blob = encode_model(model);
  {
    // Round-trip before writing: a blob dgap_fit cannot re-decode is a
    // bug, not an artifact.
    const LearnedModel check = decode_model(blob);
    DGAP_REQUIRE(check.weights == model.weights, "blob round-trip mismatch");
  }
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  DGAP_REQUIRE(f != nullptr, "cannot open '" + out_path + "' for writing");
  const std::size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  DGAP_REQUIRE(written == blob.size(), "short write to '" + out_path + "'");
  std::printf("wrote %s (%zu bytes, version %u)\n", out_path.c_str(),
              blob.size(), model.version);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dgap_fit: %s\n", e.what());
    return 1;
  }
}
