// Canonical recorded runs: the golden-transcript regression corpus.
//
// Each case names a fully spec-built instance, an algorithm, a
// deterministic prediction recipe, and engine options — everything needed
// to re-execute the run from the transcript header alone. The committed
// goldens under tests/golden/ are these cases at TraceDetail::kPayloads;
// `dgap_trace verify` (and transcript_test's golden fixture, and the CI
// gate) re-runs each case against its golden and fails at the first
// divergent round. The corpus spans the three engine regimes: the plain
// fast path (Luby on G(n, p)), the enforced link layer under kDefer
// (CONGEST global MIS), and a composed prediction template cut mid-run.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/epoch.hpp"
#include "sim/transcript.hpp"

namespace dgap {

struct CanonicalCase {
  std::string name;         // transcript label and golden file stem
  std::string description;  // one line for `dgap_trace list`
  GraphSpec spec;
  EngineOptions options;
  /// Deterministic prediction source (null = run without predictions):
  /// materialized as provide_with_seed(*provider, g, kind,
  /// prediction_seed). Providers are construction-time, so the committed
  /// goldens recorded before this field existed are byte-identical.
  ProviderPtr provider;
  ProblemKind kind = ProblemKind::kMis;
  std::uint64_t prediction_seed = 0;
  std::function<ProgramFactory()> factory;
};

/// The registry, in a fixed order.
const std::vector<CanonicalCase>& canonical_cases();

/// Case by name; null if unknown.
const CanonicalCase* find_canonical_case(const std::string& name);

/// Re-execute `c` and serialize it at `detail` (goldens use kPayloads).
RecordedRun record_canonical_case(const CanonicalCase& c,
                                  TraceDetail detail = TraceDetail::kPayloads);

/// Re-execute `c` live against a recorded transcript; throws
/// (DGAP_ASSERT) at the first divergent round.
RunResult verify_canonical_case(const CanonicalCase& c,
                                const Transcript& golden);

/// Golden file name for a case: "<name>.dgaptr".
std::string golden_file_name(const CanonicalCase& c);

// ---- Epoch-sequence cases ---------------------------------------------------
//
// A second registry for whole epoch STREAMS (sim/epoch.hpp): one case is
// an EpochProblem package plus an EpochConfig, and its golden artifact is
// the "DGEP" container of every epoch's warm-run transcript. The goldens
// live next to the single-run ones under tests/golden/ (same .dgaptr
// extension — tools sniff the magic), so the CI gate covers the churn +
// warm-start pipeline with the same re-execute-and-compare discipline.

struct EpochCase {
  std::string name;         // container label and golden file stem
  std::string description;  // one line for `dgap_trace list`
  std::function<EpochProblem()> problem;
  /// label is overwritten with `name`; transcripts are always captured at
  /// kPayloads when recording or verifying.
  EpochConfig config;
};

const std::vector<EpochCase>& epoch_cases();
const EpochCase* find_epoch_case(const std::string& name);

/// Re-execute the whole stream; returns the framed "DGEP" bytes.
std::vector<std::uint8_t> record_epoch_case(const EpochCase& c);

/// Re-execute the stream and compare byte-for-byte against `golden`;
/// throws (DGAP_ASSERT) naming the first divergent epoch and round.
void verify_epoch_case(const EpochCase& c,
                       std::span<const std::uint8_t> golden);

std::string golden_file_name(const EpochCase& c);

}  // namespace dgap
