// dgap_trace: record, verify, diff and inspect binary round transcripts.
//
//   dgap_trace list
//       List the canonical cases and their golden file names.
//   dgap_trace record <case>|all <dir>
//       Re-execute canonical case(s) and write <dir>/<case>.dgaptr.
//   dgap_trace verify <file>...
//       Re-execute each transcript's canonical case (matched by label)
//       live against it; exits nonzero naming the first divergent round.
//       This is the CI golden-regression gate.
//   dgap_trace diff <a> <b>
//       First divergent (round, field) of two transcripts; exit 1 if they
//       differ, 0 if identical.
//   dgap_trace stats <file>...
//       Header, per-round message/termination profile, and totals.
//   dgap_trace profile <case>|all [threads]
//       Re-execute canonical case(s) with the phase profiler on
//       (EngineOptions::profile_phases) and print the per-stage wall-time
//       breakdown of the round pipeline. Host measurements — never part
//       of a transcript; see docs/MODEL.md, "Phase profiler".
//
// Transcripts are self-describing (GraphSpec + options in the header), so
// verify needs only the file and the case registry in tools/cases.cpp.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "cases.hpp"

namespace {

using namespace dgap;

int usage() {
  std::fprintf(stderr,
               "usage: dgap_trace list\n"
               "       dgap_trace record <case>|all <dir>\n"
               "       dgap_trace verify <file>...\n"
               "       dgap_trace diff <a> <b>\n"
               "       dgap_trace stats <file>...\n"
               "       dgap_trace profile <case>|all [threads]\n");
  return 2;
}

const char* detail_name(TraceDetail d) {
  switch (d) {
    case TraceDetail::kRounds: return "rounds";
    case TraceDetail::kMessages: return "messages";
    case TraceDetail::kPayloads: return "payloads";
  }
  return "?";
}

int cmd_list() {
  for (const CanonicalCase& c : canonical_cases()) {
    std::printf("%-22s %-26s %s\n", c.name.c_str(),
                golden_file_name(c).c_str(), c.description.c_str());
  }
  for (const EpochCase& c : epoch_cases()) {
    std::printf("%-22s %-26s %s\n", c.name.c_str(),
                golden_file_name(c).c_str(), c.description.c_str());
  }
  return 0;
}

int cmd_record(const std::string& which, const std::string& dir) {
  std::vector<const CanonicalCase*> selected;
  std::vector<const EpochCase*> selected_epochs;
  if (which == "all") {
    for (const CanonicalCase& c : canonical_cases()) selected.push_back(&c);
    for (const EpochCase& c : epoch_cases()) selected_epochs.push_back(&c);
  } else if (const CanonicalCase* c = find_canonical_case(which)) {
    selected.push_back(c);
  } else if (const EpochCase* e = find_epoch_case(which)) {
    selected_epochs.push_back(e);
  } else {
    std::fprintf(stderr, "dgap_trace: unknown case '%s' (try: list)\n",
                 which.c_str());
    return 2;
  }
  for (const CanonicalCase* c : selected) {
    const RecordedRun run = record_canonical_case(*c);
    const std::string path = dir + "/" + golden_file_name(*c);
    write_transcript_file(path, run.transcript);
    std::printf("recorded %-22s -> %s (%zu bytes, %d rounds%s)\n",
                c->name.c_str(), path.c_str(), run.transcript.size(),
                run.result.rounds, run.result.completed ? "" : ", cut");
  }
  for (const EpochCase* c : selected_epochs) {
    const std::vector<std::uint8_t> bytes = record_epoch_case(*c);
    const std::string path = dir + "/" + golden_file_name(*c);
    write_transcript_file(path, bytes);
    std::printf("recorded %-22s -> %s (%zu bytes, %d epochs)\n",
                c->name.c_str(), path.c_str(), bytes.size(),
                c->config.epochs);
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& files) {
  int failures = 0;
  for (const std::string& path : files) {
    try {
      const std::vector<std::uint8_t> bytes = read_transcript_file(path);
      if (is_epoch_sequence(bytes)) {
        const EpochSequence seq = decode_epoch_sequence(bytes);
        const EpochCase* c = find_epoch_case(seq.label);
        if (c == nullptr) {
          std::fprintf(stderr,
                       "FAIL %s: epoch sequence label '%s' is not an epoch "
                       "case\n",
                       path.c_str(), seq.label.c_str());
          ++failures;
          continue;
        }
        verify_epoch_case(*c, bytes);
        std::printf("OK   %s: %s, %zu epochs\n", path.c_str(),
                    c->name.c_str(), seq.epochs.size());
        continue;
      }
      const Transcript golden = decode_transcript(bytes);
      const CanonicalCase* c = find_canonical_case(golden.label);
      if (c == nullptr) {
        std::fprintf(stderr,
                     "FAIL %s: transcript label '%s' is not a canonical "
                     "case\n",
                     path.c_str(), golden.label.c_str());
        ++failures;
        continue;
      }
      const RunResult result = verify_canonical_case(*c, golden);
      std::printf("OK   %s: %s, %d rounds, %lld messages\n", path.c_str(),
                  c->name.c_str(), result.rounds,
                  static_cast<long long>(result.total_messages));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  const std::vector<std::uint8_t> a_bytes = read_transcript_file(a_path);
  const std::vector<std::uint8_t> b_bytes = read_transcript_file(b_path);
  if (is_epoch_sequence(a_bytes) || is_epoch_sequence(b_bytes)) {
    if (!is_epoch_sequence(a_bytes) || !is_epoch_sequence(b_bytes)) {
      std::printf("one file is an epoch sequence, the other a transcript\n");
      return 1;
    }
    const EpochSequence a = decode_epoch_sequence(a_bytes);
    const EpochSequence b = decode_epoch_sequence(b_bytes);
    const std::size_t common = std::min(a.epochs.size(), b.epochs.size());
    for (std::size_t k = 0; k < common; ++k) {
      if (a.epochs[k] == b.epochs[k]) continue;
      const Transcript ta = decode_transcript(a.epochs[k]);
      const Transcript tb = decode_transcript(b.epochs[k]);
      if (const auto d = diff_transcripts(ta, tb)) {
        std::printf("epoch %zu diverges at round %d: %s\n", k, d->round,
                    d->field.c_str());
        return 1;
      }
      std::printf("epoch %zu transcripts differ only in encoding\n", k);
      return 1;
    }
    if (a.epochs.size() != b.epochs.size()) {
      std::printf("epoch counts differ: %zu vs %zu\n", a.epochs.size(),
                  b.epochs.size());
      return 1;
    }
    std::printf("epoch sequences are identical (%zu epochs)\n",
                a.epochs.size());
    return 0;
  }
  const Transcript a = decode_transcript(a_bytes);
  const Transcript b = decode_transcript(b_bytes);
  if (const auto d = diff_transcripts(a, b)) {
    std::printf("transcripts diverge at round %d: %s\n", d->round,
                d->field.c_str());
    return 1;
  }
  std::printf("transcripts are identical (%d rounds)\n", a.summary.rounds);
  return 0;
}

int cmd_stats(const std::vector<std::string>& files) {
  for (const std::string& path : files) {
    const std::vector<std::uint8_t> bytes = read_transcript_file(path);
    if (is_epoch_sequence(bytes)) {
      const EpochSequence seq = decode_epoch_sequence(bytes);
      std::printf("%s\n", path.c_str());
      std::printf("  label        %s\n", seq.label.c_str());
      std::printf("  epochs       %zu\n", seq.epochs.size());
      for (std::size_t k = 0; k < seq.epochs.size(); ++k) {
        const Transcript t = decode_transcript(seq.epochs[k]);
        std::printf("  epoch %-4zu  %s: n %-5lld %d rounds, %lld messages%s\n",
                    k, t.label.c_str(), static_cast<long long>(t.n),
                    t.summary.rounds,
                    static_cast<long long>(t.summary.total_messages),
                    t.summary.completed ? "" : " (cut)");
      }
      continue;
    }
    const Transcript t = decode_transcript(bytes);
    std::printf("%s\n", path.c_str());
    std::printf("  label        %s\n", t.label.c_str());
    std::printf("  detail       %s\n", detail_name(t.detail));
    if (t.spec) {
      std::printf("  instance     %s (n = %lld)\n", t.spec->name().c_str(),
                  static_cast<long long>(t.n));
    } else {
      std::printf("  instance     ad hoc (n = %lld)\n",
                  static_cast<long long>(t.n));
    }
    std::printf("  options      max_rounds %d, word limit %d, policy %d\n",
                t.max_rounds, t.congest_word_limit,
                static_cast<int>(t.congest_policy));
    std::printf("  run          %s, %d rounds, %lld messages, %lld words\n",
                t.summary.completed ? "completed" : "cut",
                t.summary.rounds,
                static_cast<long long>(t.summary.total_messages),
                static_cast<long long>(t.summary.total_words));
    // Walk the run with the replayer: per-round profile. The suppressed
    // split (message-reduction pass, sim/compile.hpp) answers wire-cost
    // questions straight from the transcript — no rerun needed; columns
    // appear only when the file actually records suppressed deliveries.
    ReplayEngine replay(t);
    std::int64_t sup_messages = 0, sup_words = 0;
    while (replay.step()) {
      std::int64_t words = 0, round_sup = 0, round_sup_words = 0;
      for (const TranscriptMessage& m : replay.messages()) {
        words += m.len;
        if (m.suppressed) {
          ++round_sup;
          round_sup_words += m.len;
        }
      }
      sup_messages += round_sup;
      sup_words += round_sup_words;
      std::printf("  round %-4d   active %-5lld messages %-5zu words %-6lld "
                  "terminated %zu",
                  replay.round(),
                  static_cast<long long>(replay.active_count()),
                  replay.messages().size(), static_cast<long long>(words),
                  replay.terminations().size());
      if (round_sup > 0) {
        std::printf("  sent %lld/%lld suppressed %lld/%lld",
                    static_cast<long long>(
                        static_cast<std::int64_t>(replay.messages().size()) -
                        round_sup),
                    static_cast<long long>(words - round_sup_words),
                    static_cast<long long>(round_sup),
                    static_cast<long long>(round_sup_words));
      }
      std::printf("\n");
    }
    if (sup_messages > 0) {
      std::printf("  compiled     %lld messages / %lld words suppressed off "
                  "the wire (totals above are nominal: sent + suppressed)\n",
                  static_cast<long long>(sup_messages),
                  static_cast<long long>(sup_words));
    }
  }
  return 0;
}

int cmd_profile(const std::string& which, int threads) {
  std::vector<const CanonicalCase*> selected;
  if (which == "all") {
    for (const CanonicalCase& c : canonical_cases()) selected.push_back(&c);
  } else if (const CanonicalCase* c = find_canonical_case(which)) {
    selected.push_back(c);
  } else {
    std::fprintf(stderr, "dgap_trace: unknown case '%s' (try: list)\n",
                 which.c_str());
    return 2;
  }
  std::printf("%-22s %8s %9s %9s %9s %9s %9s %9s %9s\n", "case", "rounds",
              "wall_ms", "send_ms", "scat_ms", "link_ms", "trace_ms",
              "recv_ms", "mut_ms");
  for (const CanonicalCase* c : selected) {
    const Graph g = c->spec.build();
    const Predictions predictions =
        c->provider ? provide_with_seed(*c->provider, g, c->kind,
                                        c->prediction_seed)
                    : Predictions{};
    EngineOptions opt = c->options;
    opt.profile_phases = true;
    if (threads > 0) opt.num_threads = threads;
    const RunResult r = run_with_predictions(g, predictions, c->factory(), opt);
    const auto ms = [](std::int64_t ns) {
      return static_cast<double>(ns) / 1e6;
    };
    std::printf("%-22s %8d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                c->name.c_str(), r.rounds, r.wall_ms, ms(r.phase_ns.send_ns),
                ms(r.phase_ns.scatter_ns), ms(r.phase_ns.link_ns),
                ms(r.phase_ns.trace_ns), ms(r.phase_ns.receive_ns),
                ms(r.phase_ns.mutate_ns));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "list" && args.size() == 1) return cmd_list();
    if (cmd == "record" && args.size() == 3) return cmd_record(args[1], args[2]);
    if (cmd == "verify" && args.size() >= 2) {
      return cmd_verify({args.begin() + 1, args.end()});
    }
    if (cmd == "diff" && args.size() == 3) return cmd_diff(args[1], args[2]);
    if (cmd == "stats" && args.size() >= 2) {
      return cmd_stats({args.begin() + 1, args.end()});
    }
    if (cmd == "profile" && (args.size() == 2 || args.size() == 3)) {
      return cmd_profile(args[1], args.size() == 3 ? std::stoi(args[2]) : 0);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dgap_trace: %s\n", e.what());
    return 1;
  }
}
