#include "cases.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "mis/congest_global.hpp"
#include "predict/provider.hpp"
#include "random/luby.hpp"
#include "templates/epoch_problems.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {

const std::vector<CanonicalCase>& canonical_cases() {
  static const std::vector<CanonicalCase> cases = [] {
    std::vector<CanonicalCase> out;

    // 1. The engine fast path: randomized Luby MIS on a sparse G(n, p).
    {
      CanonicalCase c;
      c.name = "luby_gnp256";
      c.description = "Luby MIS on gnp(256, p=0.02, seed 2024), fast path";
      c.spec = GraphSpec::gnp(256, 0.02, 2024);
      c.factory = [] { return luby_mis_algorithm(42); };
      out.push_back(std::move(c));
    }

    // 2. The enforced link layer: CONGEST global MIS under a 1-word
    // per-edge budget with kDefer queueing — transcripts record effective
    // arrival rounds, so the whole deferral schedule is pinned.
    {
      CanonicalCase c;
      c.name = "congest_defer_tree12";
      c.description =
          "CONGEST global MIS on random_tree(12, seed 7), kDefer budget 1";
      c.spec = GraphSpec::random_tree(12, 7);
      c.options.congest_word_limit = 1;
      c.options.congest_policy = CongestPolicy::kDefer;
      c.factory = [] { return congest_global_mis_algorithm(); };
      out.push_back(std::move(c));
    }

    // 3. A composed prediction template cut mid-run (completed = false):
    // pins the lockstep stage schedule, the prediction-dependent traffic,
    // and the incomplete-run trailer path.
    {
      CanonicalCase c;
      c.name = "linial_grid_cut3";
      c.description =
          "MIS-with-predictions (parallel Linial) on grid(6, 5), 3 flipped "
          "bits, cut at round 3";
      c.spec = GraphSpec::grid(6, 5);
      c.options.max_rounds = 3;
      // Same bytes as the pre-provider recipe: one Rng(913) stream,
      // correct MIS first, then 3 flips.
      c.provider = perturbed_provider(3);
      c.kind = ProblemKind::kMis;
      c.prediction_seed = 913;
      c.factory = [] { return mis_parallel_linial(); };
      out.push_back(std::move(c));
    }

    // 4. The learned-backend training corpus: a plain Luby MIS run on a
    // 64-node G(n, p). Its golden doubles as tools/dgap_fit's committed
    // training transcript — the smoke fit decodes the prior outputs from
    // this exact file, so it is pinned like every other golden.
    {
      CanonicalCase c;
      c.name = "learned_train_gnp64";
      c.description =
          "Luby MIS on gnp(64, p=0.05, seed 77), dgap_fit training corpus";
      c.spec = GraphSpec::gnp(64, 0.05, 77);
      c.factory = [] { return luby_mis_algorithm(9); };
      out.push_back(std::move(c));
    }

    return out;
  }();
  return cases;
}

const CanonicalCase* find_canonical_case(const std::string& name) {
  for (const CanonicalCase& c : canonical_cases()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

RecordedRun record_canonical_case(const CanonicalCase& c, TraceDetail detail) {
  const Graph g = c.spec.build();
  const Predictions predictions =
      c.provider ? provide_with_seed(*c.provider, g, c.kind, c.prediction_seed)
                 : Predictions{};
  return record_run(g, predictions, c.factory(), c.options, detail, c.name,
                    c.spec);
}

RunResult verify_canonical_case(const CanonicalCase& c,
                                const Transcript& golden) {
  DGAP_REQUIRE(golden.label == c.name,
               "transcript '" + golden.label + "' is not case '" + c.name +
                   "'");
  const Graph g = c.spec.build();
  const Predictions predictions =
      c.provider ? provide_with_seed(*c.provider, g, c.kind, c.prediction_seed)
                 : Predictions{};
  return run_verified(g, predictions, c.factory(), c.options, golden);
}

std::string golden_file_name(const CanonicalCase& c) {
  return c.name + ".dgaptr";
}

// ---- Epoch-sequence cases ---------------------------------------------------

const std::vector<EpochCase>& epoch_cases() {
  static const std::vector<EpochCase> cases = [] {
    std::vector<EpochCase> out;

    // 4. The serving pipeline end-to-end: MIS warm-started across five
    // epochs of mixed node/edge churn on a sparse G(n, p). Pins the churn
    // generator, apply_edits, the warm-start adapter, and every epoch's
    // full round-by-round behavior in one artifact.
    {
      EpochCase c;
      c.name = "epochs_mis_gnp48";
      c.description =
          "MIS (simple greedy) over 5 churn epochs of gnp(48, p=0.08, "
          "seed 11)";
      c.problem = &epoch_mis;
      c.config.base = GraphSpec::gnp(48, 0.08, 11);
      c.config.churn.seed = 301;
      c.config.churn.edge_remove_frac = 0.06;
      c.config.churn.edge_add_frac = 0.06;
      c.config.churn.node_remove_frac = 0.04;
      c.config.churn.node_add_frac = 0.04;
      c.config.epochs = 5;
      out.push_back(std::move(c));
    }

    return out;
  }();
  return cases;
}

const EpochCase* find_epoch_case(const std::string& name) {
  for (const EpochCase& c : epoch_cases()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<std::uint8_t> record_epoch_case(const EpochCase& c) {
  EpochConfig config = c.config;
  config.label = c.name;
  config.capture_transcripts = true;
  config.detail = TraceDetail::kPayloads;
  EpochHarness harness(c.problem(), config);
  return epoch_sequence_of(c.name, harness.run());
}

void verify_epoch_case(const EpochCase& c,
                       std::span<const std::uint8_t> golden) {
  const EpochSequence want = decode_epoch_sequence(golden);
  DGAP_REQUIRE(want.label == c.name, "epoch sequence '" + want.label +
                                         "' is not case '" + c.name + "'");
  const std::vector<std::uint8_t> bytes = record_epoch_case(c);
  if (bytes.size() == golden.size() &&
      std::equal(bytes.begin(), bytes.end(), golden.begin())) {
    return;
  }
  // Diverged: decode both and name the first differing epoch and round.
  const EpochSequence got = decode_epoch_sequence(bytes);
  const std::size_t common = std::min(want.epochs.size(), got.epochs.size());
  for (std::size_t k = 0; k < common; ++k) {
    if (want.epochs[k] == got.epochs[k]) continue;
    const Transcript a = decode_transcript(want.epochs[k]);
    const Transcript b = decode_transcript(got.epochs[k]);
    if (const auto d = diff_transcripts(a, b)) {
      DGAP_ASSERT(false, "epoch " + std::to_string(k) +
                             " diverges at round " + std::to_string(d->round) +
                             ": " + d->field);
    }
    DGAP_ASSERT(false, "epoch " + std::to_string(k) +
                           " transcripts differ only in encoding");
  }
  DGAP_ASSERT(false, "epoch count differs: golden " +
                         std::to_string(want.epochs.size()) + ", live " +
                         std::to_string(got.epochs.size()));
}

std::string golden_file_name(const EpochCase& c) { return c.name + ".dgaptr"; }

}  // namespace dgap
