#include "cases.hpp"

#include "common/require.hpp"
#include "common/rng.hpp"
#include "mis/congest_global.hpp"
#include "predict/generators.hpp"
#include "random/luby.hpp"
#include "templates/mis_with_predictions.hpp"

namespace dgap {

const std::vector<CanonicalCase>& canonical_cases() {
  static const std::vector<CanonicalCase> cases = [] {
    std::vector<CanonicalCase> out;

    // 1. The engine fast path: randomized Luby MIS on a sparse G(n, p).
    {
      CanonicalCase c;
      c.name = "luby_gnp256";
      c.description = "Luby MIS on gnp(256, p=0.02, seed 2024), fast path";
      c.spec = GraphSpec::gnp(256, 0.02, 2024);
      c.factory = [] { return luby_mis_algorithm(42); };
      out.push_back(std::move(c));
    }

    // 2. The enforced link layer: CONGEST global MIS under a 1-word
    // per-edge budget with kDefer queueing — transcripts record effective
    // arrival rounds, so the whole deferral schedule is pinned.
    {
      CanonicalCase c;
      c.name = "congest_defer_tree12";
      c.description =
          "CONGEST global MIS on random_tree(12, seed 7), kDefer budget 1";
      c.spec = GraphSpec::random_tree(12, 7);
      c.options.congest_word_limit = 1;
      c.options.congest_policy = CongestPolicy::kDefer;
      c.factory = [] { return congest_global_mis_algorithm(); };
      out.push_back(std::move(c));
    }

    // 3. A composed prediction template cut mid-run (completed = false):
    // pins the lockstep stage schedule, the prediction-dependent traffic,
    // and the incomplete-run trailer path.
    {
      CanonicalCase c;
      c.name = "linial_grid_cut3";
      c.description =
          "MIS-with-predictions (parallel Linial) on grid(6, 5), 3 flipped "
          "bits, cut at round 3";
      c.spec = GraphSpec::grid(6, 5);
      c.options.max_rounds = 3;
      c.predictions = [](const Graph& g) {
        Rng rng(913);
        Predictions correct = mis_correct_prediction(g, rng);
        return flip_bits(correct, 3, rng);
      };
      c.factory = [] { return mis_parallel_linial(); };
      out.push_back(std::move(c));
    }

    return out;
  }();
  return cases;
}

const CanonicalCase* find_canonical_case(const std::string& name) {
  for (const CanonicalCase& c : canonical_cases()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

RecordedRun record_canonical_case(const CanonicalCase& c, TraceDetail detail) {
  const Graph g = c.spec.build();
  const Predictions predictions = c.predictions ? c.predictions(g)
                                                : Predictions{};
  return record_run(g, predictions, c.factory(), c.options, detail, c.name,
                    c.spec);
}

RunResult verify_canonical_case(const CanonicalCase& c,
                                const Transcript& golden) {
  DGAP_REQUIRE(golden.label == c.name,
               "transcript '" + golden.label + "' is not case '" + c.name +
                   "'");
  const Graph g = c.spec.build();
  const Predictions predictions = c.predictions ? c.predictions(g)
                                                : Predictions{};
  return run_verified(g, predictions, c.factory(), c.options, golden);
}

std::string golden_file_name(const CanonicalCase& c) {
  return c.name + ".dgaptr";
}

}  // namespace dgap
