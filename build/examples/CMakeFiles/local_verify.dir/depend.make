# Empty dependencies file for local_verify.
# This may be replaced when dependencies are built.
