file(REMOVE_RECURSE
  "CMakeFiles/local_verify.dir/local_verify.cpp.o"
  "CMakeFiles/local_verify.dir/local_verify.cpp.o.d"
  "local_verify"
  "local_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
