# Empty compiler generated dependencies file for network_update.
# This may be replaced when dependencies are built.
