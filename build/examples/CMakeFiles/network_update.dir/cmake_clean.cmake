file(REMOVE_RECURSE
  "CMakeFiles/network_update.dir/network_update.cpp.o"
  "CMakeFiles/network_update.dir/network_update.cpp.o.d"
  "network_update"
  "network_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
