# Empty compiler generated dependencies file for four_problems.
# This may be replaced when dependencies are built.
