file(REMOVE_RECURSE
  "CMakeFiles/four_problems.dir/four_problems.cpp.o"
  "CMakeFiles/four_problems.dir/four_problems.cpp.o.d"
  "four_problems"
  "four_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/four_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
