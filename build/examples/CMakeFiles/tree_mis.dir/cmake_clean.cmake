file(REMOVE_RECURSE
  "CMakeFiles/tree_mis.dir/tree_mis.cpp.o"
  "CMakeFiles/tree_mis.dir/tree_mis.cpp.o.d"
  "tree_mis"
  "tree_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
