# Empty compiler generated dependencies file for tree_mis.
# This may be replaced when dependencies are built.
