file(REMOVE_RECURSE
  "CMakeFiles/grid_blackwhite.dir/grid_blackwhite.cpp.o"
  "CMakeFiles/grid_blackwhite.dir/grid_blackwhite.cpp.o.d"
  "grid_blackwhite"
  "grid_blackwhite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_blackwhite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
