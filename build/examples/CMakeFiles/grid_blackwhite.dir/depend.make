# Empty dependencies file for grid_blackwhite.
# This may be replaced when dependencies are built.
