file(REMOVE_RECURSE
  "CMakeFiles/dgap_common.dir/math_util.cpp.o"
  "CMakeFiles/dgap_common.dir/math_util.cpp.o.d"
  "CMakeFiles/dgap_common.dir/rng.cpp.o"
  "CMakeFiles/dgap_common.dir/rng.cpp.o.d"
  "libdgap_common.a"
  "libdgap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
