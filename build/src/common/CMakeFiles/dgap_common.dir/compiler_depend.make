# Empty compiler generated dependencies file for dgap_common.
# This may be replaced when dependencies are built.
