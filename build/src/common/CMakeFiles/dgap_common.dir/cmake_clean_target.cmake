file(REMOVE_RECURSE
  "libdgap_common.a"
)
