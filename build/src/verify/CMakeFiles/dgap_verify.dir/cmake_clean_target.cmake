file(REMOVE_RECURSE
  "libdgap_verify.a"
)
