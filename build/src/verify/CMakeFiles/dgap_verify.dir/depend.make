# Empty dependencies file for dgap_verify.
# This may be replaced when dependencies are built.
