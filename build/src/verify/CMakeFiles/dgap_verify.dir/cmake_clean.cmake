file(REMOVE_RECURSE
  "CMakeFiles/dgap_verify.dir/local_verifier.cpp.o"
  "CMakeFiles/dgap_verify.dir/local_verifier.cpp.o.d"
  "libdgap_verify.a"
  "libdgap_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
