file(REMOVE_RECURSE
  "CMakeFiles/dgap_templates.dir/mis_with_predictions.cpp.o"
  "CMakeFiles/dgap_templates.dir/mis_with_predictions.cpp.o.d"
  "CMakeFiles/dgap_templates.dir/problems_with_predictions.cpp.o"
  "CMakeFiles/dgap_templates.dir/problems_with_predictions.cpp.o.d"
  "CMakeFiles/dgap_templates.dir/templates.cpp.o"
  "CMakeFiles/dgap_templates.dir/templates.cpp.o.d"
  "libdgap_templates.a"
  "libdgap_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
