file(REMOVE_RECURSE
  "libdgap_templates.a"
)
