# Empty dependencies file for dgap_templates.
# This may be replaced when dependencies are built.
