file(REMOVE_RECURSE
  "libdgap_mis.a"
)
