# Empty dependencies file for dgap_mis.
# This may be replaced when dependencies are built.
