file(REMOVE_RECURSE
  "CMakeFiles/dgap_mis.dir/algorithms.cpp.o"
  "CMakeFiles/dgap_mis.dir/algorithms.cpp.o.d"
  "CMakeFiles/dgap_mis.dir/checkers.cpp.o"
  "CMakeFiles/dgap_mis.dir/checkers.cpp.o.d"
  "CMakeFiles/dgap_mis.dir/congest_global.cpp.o"
  "CMakeFiles/dgap_mis.dir/congest_global.cpp.o.d"
  "CMakeFiles/dgap_mis.dir/gather.cpp.o"
  "CMakeFiles/dgap_mis.dir/gather.cpp.o.d"
  "libdgap_mis.a"
  "libdgap_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
