
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mis/algorithms.cpp" "src/mis/CMakeFiles/dgap_mis.dir/algorithms.cpp.o" "gcc" "src/mis/CMakeFiles/dgap_mis.dir/algorithms.cpp.o.d"
  "/root/repo/src/mis/checkers.cpp" "src/mis/CMakeFiles/dgap_mis.dir/checkers.cpp.o" "gcc" "src/mis/CMakeFiles/dgap_mis.dir/checkers.cpp.o.d"
  "/root/repo/src/mis/congest_global.cpp" "src/mis/CMakeFiles/dgap_mis.dir/congest_global.cpp.o" "gcc" "src/mis/CMakeFiles/dgap_mis.dir/congest_global.cpp.o.d"
  "/root/repo/src/mis/gather.cpp" "src/mis/CMakeFiles/dgap_mis.dir/gather.cpp.o" "gcc" "src/mis/CMakeFiles/dgap_mis.dir/gather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dgap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/dgap_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
