# Empty compiler generated dependencies file for dgap_graph.
# This may be replaced when dependencies are built.
