file(REMOVE_RECURSE
  "CMakeFiles/dgap_graph.dir/exact.cpp.o"
  "CMakeFiles/dgap_graph.dir/exact.cpp.o.d"
  "CMakeFiles/dgap_graph.dir/generators.cpp.o"
  "CMakeFiles/dgap_graph.dir/generators.cpp.o.d"
  "CMakeFiles/dgap_graph.dir/graph.cpp.o"
  "CMakeFiles/dgap_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dgap_graph.dir/properties.cpp.o"
  "CMakeFiles/dgap_graph.dir/properties.cpp.o.d"
  "libdgap_graph.a"
  "libdgap_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
