file(REMOVE_RECURSE
  "libdgap_graph.a"
)
