# Empty dependencies file for dgap_random.
# This may be replaced when dependencies are built.
