file(REMOVE_RECURSE
  "libdgap_random.a"
)
