file(REMOVE_RECURSE
  "CMakeFiles/dgap_random.dir/luby.cpp.o"
  "CMakeFiles/dgap_random.dir/luby.cpp.o.d"
  "libdgap_random.a"
  "libdgap_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
