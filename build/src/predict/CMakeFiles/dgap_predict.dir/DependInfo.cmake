
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/error_measures.cpp" "src/predict/CMakeFiles/dgap_predict.dir/error_measures.cpp.o" "gcc" "src/predict/CMakeFiles/dgap_predict.dir/error_measures.cpp.o.d"
  "/root/repo/src/predict/generators.cpp" "src/predict/CMakeFiles/dgap_predict.dir/generators.cpp.o" "gcc" "src/predict/CMakeFiles/dgap_predict.dir/generators.cpp.o.d"
  "/root/repo/src/predict/predictions.cpp" "src/predict/CMakeFiles/dgap_predict.dir/predictions.cpp.o" "gcc" "src/predict/CMakeFiles/dgap_predict.dir/predictions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dgap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
