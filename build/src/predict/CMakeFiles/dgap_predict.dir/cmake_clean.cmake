file(REMOVE_RECURSE
  "CMakeFiles/dgap_predict.dir/error_measures.cpp.o"
  "CMakeFiles/dgap_predict.dir/error_measures.cpp.o.d"
  "CMakeFiles/dgap_predict.dir/generators.cpp.o"
  "CMakeFiles/dgap_predict.dir/generators.cpp.o.d"
  "CMakeFiles/dgap_predict.dir/predictions.cpp.o"
  "CMakeFiles/dgap_predict.dir/predictions.cpp.o.d"
  "libdgap_predict.a"
  "libdgap_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
