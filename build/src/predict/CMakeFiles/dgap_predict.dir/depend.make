# Empty dependencies file for dgap_predict.
# This may be replaced when dependencies are built.
