file(REMOVE_RECURSE
  "libdgap_predict.a"
)
