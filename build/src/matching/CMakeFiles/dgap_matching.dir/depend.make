# Empty dependencies file for dgap_matching.
# This may be replaced when dependencies are built.
