
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/algorithms.cpp" "src/matching/CMakeFiles/dgap_matching.dir/algorithms.cpp.o" "gcc" "src/matching/CMakeFiles/dgap_matching.dir/algorithms.cpp.o.d"
  "/root/repo/src/matching/checkers.cpp" "src/matching/CMakeFiles/dgap_matching.dir/checkers.cpp.o" "gcc" "src/matching/CMakeFiles/dgap_matching.dir/checkers.cpp.o.d"
  "/root/repo/src/matching/from_edge_coloring.cpp" "src/matching/CMakeFiles/dgap_matching.dir/from_edge_coloring.cpp.o" "gcc" "src/matching/CMakeFiles/dgap_matching.dir/from_edge_coloring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dgap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/dgap_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
