file(REMOVE_RECURSE
  "CMakeFiles/dgap_matching.dir/algorithms.cpp.o"
  "CMakeFiles/dgap_matching.dir/algorithms.cpp.o.d"
  "CMakeFiles/dgap_matching.dir/checkers.cpp.o"
  "CMakeFiles/dgap_matching.dir/checkers.cpp.o.d"
  "CMakeFiles/dgap_matching.dir/from_edge_coloring.cpp.o"
  "CMakeFiles/dgap_matching.dir/from_edge_coloring.cpp.o.d"
  "libdgap_matching.a"
  "libdgap_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
