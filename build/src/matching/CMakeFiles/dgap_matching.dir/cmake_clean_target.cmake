file(REMOVE_RECURSE
  "libdgap_matching.a"
)
