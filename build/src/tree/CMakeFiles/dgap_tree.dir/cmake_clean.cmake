file(REMOVE_RECURSE
  "CMakeFiles/dgap_tree.dir/algorithms.cpp.o"
  "CMakeFiles/dgap_tree.dir/algorithms.cpp.o.d"
  "CMakeFiles/dgap_tree.dir/gps.cpp.o"
  "CMakeFiles/dgap_tree.dir/gps.cpp.o.d"
  "libdgap_tree.a"
  "libdgap_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
