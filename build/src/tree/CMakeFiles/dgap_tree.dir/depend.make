# Empty dependencies file for dgap_tree.
# This may be replaced when dependencies are built.
