file(REMOVE_RECURSE
  "libdgap_tree.a"
)
