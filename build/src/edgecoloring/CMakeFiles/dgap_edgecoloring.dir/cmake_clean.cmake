file(REMOVE_RECURSE
  "CMakeFiles/dgap_edgecoloring.dir/algorithms.cpp.o"
  "CMakeFiles/dgap_edgecoloring.dir/algorithms.cpp.o.d"
  "CMakeFiles/dgap_edgecoloring.dir/checkers.cpp.o"
  "CMakeFiles/dgap_edgecoloring.dir/checkers.cpp.o.d"
  "CMakeFiles/dgap_edgecoloring.dir/linegraph.cpp.o"
  "CMakeFiles/dgap_edgecoloring.dir/linegraph.cpp.o.d"
  "libdgap_edgecoloring.a"
  "libdgap_edgecoloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_edgecoloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
