# Empty dependencies file for dgap_edgecoloring.
# This may be replaced when dependencies are built.
