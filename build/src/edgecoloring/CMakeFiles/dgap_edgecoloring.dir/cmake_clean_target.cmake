file(REMOVE_RECURSE
  "libdgap_edgecoloring.a"
)
