file(REMOVE_RECURSE
  "CMakeFiles/dgap_sim.dir/engine.cpp.o"
  "CMakeFiles/dgap_sim.dir/engine.cpp.o.d"
  "CMakeFiles/dgap_sim.dir/phase.cpp.o"
  "CMakeFiles/dgap_sim.dir/phase.cpp.o.d"
  "libdgap_sim.a"
  "libdgap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
