# Empty compiler generated dependencies file for dgap_sim.
# This may be replaced when dependencies are built.
