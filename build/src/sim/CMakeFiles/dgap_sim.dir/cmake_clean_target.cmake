file(REMOVE_RECURSE
  "libdgap_sim.a"
)
