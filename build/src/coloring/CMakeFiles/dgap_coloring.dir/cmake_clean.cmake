file(REMOVE_RECURSE
  "CMakeFiles/dgap_coloring.dir/algorithms.cpp.o"
  "CMakeFiles/dgap_coloring.dir/algorithms.cpp.o.d"
  "CMakeFiles/dgap_coloring.dir/checkers.cpp.o"
  "CMakeFiles/dgap_coloring.dir/checkers.cpp.o.d"
  "CMakeFiles/dgap_coloring.dir/linial.cpp.o"
  "CMakeFiles/dgap_coloring.dir/linial.cpp.o.d"
  "libdgap_coloring.a"
  "libdgap_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgap_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
