# Empty dependencies file for dgap_coloring.
# This may be replaced when dependencies are built.
