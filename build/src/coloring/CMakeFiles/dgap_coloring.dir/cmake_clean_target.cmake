file(REMOVE_RECURSE
  "libdgap_coloring.a"
)
