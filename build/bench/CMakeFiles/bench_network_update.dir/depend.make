# Empty dependencies file for bench_network_update.
# This may be replaced when dependencies are built.
