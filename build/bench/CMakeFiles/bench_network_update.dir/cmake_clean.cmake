file(REMOVE_RECURSE
  "CMakeFiles/bench_network_update.dir/bench_network_update.cpp.o"
  "CMakeFiles/bench_network_update.dir/bench_network_update.cpp.o.d"
  "bench_network_update"
  "bench_network_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
