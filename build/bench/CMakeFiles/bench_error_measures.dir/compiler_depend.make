# Empty compiler generated dependencies file for bench_error_measures.
# This may be replaced when dependencies are built.
