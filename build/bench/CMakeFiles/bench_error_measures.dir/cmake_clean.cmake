file(REMOVE_RECURSE
  "CMakeFiles/bench_error_measures.dir/bench_error_measures.cpp.o"
  "CMakeFiles/bench_error_measures.dir/bench_error_measures.cpp.o.d"
  "bench_error_measures"
  "bench_error_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
