# Empty compiler generated dependencies file for bench_other_problems.
# This may be replaced when dependencies are built.
