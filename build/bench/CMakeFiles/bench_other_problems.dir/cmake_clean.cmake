file(REMOVE_RECURSE
  "CMakeFiles/bench_other_problems.dir/bench_other_problems.cpp.o"
  "CMakeFiles/bench_other_problems.dir/bench_other_problems.cpp.o.d"
  "bench_other_problems"
  "bench_other_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_other_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
