file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy_mis.dir/bench_greedy_mis.cpp.o"
  "CMakeFiles/bench_greedy_mis.dir/bench_greedy_mis.cpp.o.d"
  "bench_greedy_mis"
  "bench_greedy_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
