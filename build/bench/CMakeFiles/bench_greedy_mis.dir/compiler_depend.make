# Empty compiler generated dependencies file for bench_greedy_mis.
# This may be replaced when dependencies are built.
