file(REMOVE_RECURSE
  "CMakeFiles/bench_simple_template.dir/bench_simple_template.cpp.o"
  "CMakeFiles/bench_simple_template.dir/bench_simple_template.cpp.o.d"
  "bench_simple_template"
  "bench_simple_template.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simple_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
