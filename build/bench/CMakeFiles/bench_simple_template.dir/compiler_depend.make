# Empty compiler generated dependencies file for bench_simple_template.
# This may be replaced when dependencies are built.
