file(REMOVE_RECURSE
  "CMakeFiles/bench_congest.dir/bench_congest.cpp.o"
  "CMakeFiles/bench_congest.dir/bench_congest.cpp.o.d"
  "bench_congest"
  "bench_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
