# Empty dependencies file for bench_luby.
# This may be replaced when dependencies are built.
