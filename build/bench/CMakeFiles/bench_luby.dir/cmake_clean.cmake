file(REMOVE_RECURSE
  "CMakeFiles/bench_luby.dir/bench_luby.cpp.o"
  "CMakeFiles/bench_luby.dir/bench_luby.cpp.o.d"
  "bench_luby"
  "bench_luby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_luby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
