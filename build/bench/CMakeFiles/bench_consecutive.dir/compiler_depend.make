# Empty compiler generated dependencies file for bench_consecutive.
# This may be replaced when dependencies are built.
