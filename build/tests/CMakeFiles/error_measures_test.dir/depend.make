# Empty dependencies file for error_measures_test.
# This may be replaced when dependencies are built.
