file(REMOVE_RECURSE
  "CMakeFiles/error_measures_test.dir/error_measures_test.cpp.o"
  "CMakeFiles/error_measures_test.dir/error_measures_test.cpp.o.d"
  "error_measures_test"
  "error_measures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_measures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
