file(REMOVE_RECURSE
  "CMakeFiles/gather_test.dir/gather_test.cpp.o"
  "CMakeFiles/gather_test.dir/gather_test.cpp.o.d"
  "gather_test"
  "gather_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gather_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
