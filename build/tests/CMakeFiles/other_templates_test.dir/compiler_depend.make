# Empty compiler generated dependencies file for other_templates_test.
# This may be replaced when dependencies are built.
