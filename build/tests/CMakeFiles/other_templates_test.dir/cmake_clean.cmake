file(REMOVE_RECURSE
  "CMakeFiles/other_templates_test.dir/other_templates_test.cpp.o"
  "CMakeFiles/other_templates_test.dir/other_templates_test.cpp.o.d"
  "other_templates_test"
  "other_templates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/other_templates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
