file(REMOVE_RECURSE
  "CMakeFiles/linial_test.dir/linial_test.cpp.o"
  "CMakeFiles/linial_test.dir/linial_test.cpp.o.d"
  "linial_test"
  "linial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
