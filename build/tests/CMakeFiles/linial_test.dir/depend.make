# Empty dependencies file for linial_test.
# This may be replaced when dependencies are built.
