
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linial_test.cpp" "tests/CMakeFiles/linial_test.dir/linial_test.cpp.o" "gcc" "tests/CMakeFiles/linial_test.dir/linial_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dgap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dgap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/dgap_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/mis/CMakeFiles/dgap_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/coloring/CMakeFiles/dgap_coloring.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/dgap_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/edgecoloring/CMakeFiles/dgap_edgecoloring.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/dgap_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/templates/CMakeFiles/dgap_templates.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/dgap_random.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/dgap_verify.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
