# Empty dependencies file for mis_algorithms_test.
# This may be replaced when dependencies are built.
