file(REMOVE_RECURSE
  "CMakeFiles/mis_algorithms_test.dir/mis_algorithms_test.cpp.o"
  "CMakeFiles/mis_algorithms_test.dir/mis_algorithms_test.cpp.o.d"
  "mis_algorithms_test"
  "mis_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mis_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
