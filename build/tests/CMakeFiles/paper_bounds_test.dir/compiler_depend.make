# Empty compiler generated dependencies file for paper_bounds_test.
# This may be replaced when dependencies are built.
