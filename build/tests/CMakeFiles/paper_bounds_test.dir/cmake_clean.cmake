file(REMOVE_RECURSE
  "CMakeFiles/paper_bounds_test.dir/paper_bounds_test.cpp.o"
  "CMakeFiles/paper_bounds_test.dir/paper_bounds_test.cpp.o.d"
  "paper_bounds_test"
  "paper_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
