file(REMOVE_RECURSE
  "CMakeFiles/edgecoloring_test.dir/edgecoloring_test.cpp.o"
  "CMakeFiles/edgecoloring_test.dir/edgecoloring_test.cpp.o.d"
  "edgecoloring_test"
  "edgecoloring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgecoloring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
