# Empty compiler generated dependencies file for edgecoloring_test.
# This may be replaced when dependencies are built.
