file(REMOVE_RECURSE
  "CMakeFiles/predictions_test.dir/predictions_test.cpp.o"
  "CMakeFiles/predictions_test.dir/predictions_test.cpp.o.d"
  "predictions_test"
  "predictions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
