file(REMOVE_RECURSE
  "CMakeFiles/congest_global_test.dir/congest_global_test.cpp.o"
  "CMakeFiles/congest_global_test.dir/congest_global_test.cpp.o.d"
  "congest_global_test"
  "congest_global_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congest_global_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
