#include "coloring/checkers.hpp"

#include <sstream>

#include "common/require.hpp"
#include "sim/phase.hpp"

namespace dgap {
namespace {
bool defined(Value v) { return v != kUndefined && v != kLeftoverActive; }
}  // namespace

std::string check_coloring(const Graph& g, const std::vector<Value>& outputs,
                           Value palette) {
  DGAP_REQUIRE(outputs.size() == static_cast<std::size_t>(g.num_nodes()),
               "one output per node");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!defined(outputs[v])) {
      std::ostringstream os;
      os << "node " << v << " has no color";
      return os.str();
    }
    if (outputs[v] < 1 || outputs[v] > palette) {
      std::ostringstream os;
      os << "node " << v << " color " << outputs[v] << " outside palette 1.."
         << palette;
      return os.str();
    }
    for (NodeId u : g.neighbors(v)) {
      if (defined(outputs[u]) && outputs[u] == outputs[v]) {
        std::ostringstream os;
        os << "adjacent nodes " << v << " and " << u << " share color "
           << outputs[v];
        return os.str();
      }
    }
  }
  return {};
}

bool is_valid_coloring(const Graph& g, const std::vector<Value>& outputs,
                       Value palette) {
  return check_coloring(g, outputs, palette).empty();
}

bool is_proper_partial_coloring(const Graph& g,
                                const std::vector<Value>& outputs,
                                Value palette) {
  DGAP_REQUIRE(outputs.size() == static_cast<std::size_t>(g.num_nodes()),
               "one output per node");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!defined(outputs[v])) continue;
    if (outputs[v] < 1 || outputs[v] > palette) return false;
    for (NodeId u : g.neighbors(v)) {
      if (defined(outputs[u]) && outputs[u] == outputs[v]) return false;
    }
  }
  return true;
}

}  // namespace dgap
