// (Δ+1)-Vertex Coloring building blocks (Section 8.2).
//
//  * ColoringBasePhase   — the base algorithm: a node whose predicted color
//                          is a legal palette color differing from every
//                          neighbor's prediction outputs it (2 rounds).
//  * ColoringInitPhase   — the reasonable initialization: ties between
//                          equal predictions are broken by identifier.
//  * GreedyColoringPhase — the measure-uniform algorithm: each round, every
//                          active local-max node picks the smallest palette
//                          color not output by a terminated neighbor.
//
// No clean-up algorithm exists (or is needed): any proper partial coloring
// is extendable because the palette has Δ+1 > deg(v) colors.
#pragma once

#include "sim/phase.hpp"

namespace dgap {

inline constexpr int kColoringBaseRounds = 2;
inline constexpr int kColoringInitRounds = 2;

class ColoringBasePhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  int step_ = 0;
  bool wins_ = false;
};

class ColoringInitPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  int step_ = 0;
  bool wins_ = false;
};

class GreedyColoringPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;
};

/// Emits a coloring held in local state (e.g. computed by Linial part 1),
/// one color class per round, repairing clashes with colors that
/// terminated neighbors output in the meantime: in round j, a node whose
/// stored color is j outputs the smallest palette color not output by any
/// terminated neighbor. Within a round the emitting class is an
/// independent set, and later classes see earlier outputs, so the result
/// is always proper. Δ+1 rounds.
class ColorClassEmitPhase final : public PhaseProgram {
 public:
  using ColorFn = std::function<Value()>;
  explicit ColorClassEmitPhase(ColorFn stored_color)
      : stored_color_(std::move(stored_color)) {}

  void on_send(NodeContext&, Channel&) override {}
  Status on_receive(NodeContext& ctx, Channel&) override;

 private:
  ColorFn stored_color_;
  int step_ = 0;
};

PhaseFactory make_coloring_base();
PhaseFactory make_coloring_init();
PhaseFactory make_greedy_coloring();

/// Greedy coloring as a standalone algorithm without predictions.
ProgramFactory greedy_coloring_algorithm();

}  // namespace dgap
