// Validity checkers for the (Δ+1)-Vertex Coloring problem.
//
// Outputs are colors in {1, ..., Δ+1}. A partial solution is extendable
// (Section 8.2) as long as the assigned colors are proper: every active
// node's implicit palette (the colors not output by its neighbors) stays
// larger than its remaining degree automatically, because the global
// palette has Δ+1 colors.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace dgap {

/// Empty string iff `outputs` is a complete proper coloring with colors in
/// {1, ..., palette}; otherwise a description of the first violation.
std::string check_coloring(const Graph& g, const std::vector<Value>& outputs,
                           Value palette);

bool is_valid_coloring(const Graph& g, const std::vector<Value>& outputs,
                       Value palette);

/// Partial version: undefined outputs are skipped; defined ones must be
/// palette colors and proper with respect to other defined ones.
bool is_proper_partial_coloring(const Graph& g,
                                const std::vector<Value>& outputs,
                                Value palette);

}  // namespace dgap
