// Linial's deterministic color reduction, via polynomial set systems.
//
// This is part 1 of Corollary 12's reference algorithm (substituted for the
// Barenboim–Elkin O(Δ + log* d) coloring — see DESIGN.md §2). Starting from
// the identifiers as an initial d-coloring, each Linial iteration maps an
// m-coloring to a q²-coloring in one round, where q is the smallest prime
// with q > kΔ and q^{k+1} >= m: a color c is read as the base-q digit
// vector of a degree-k polynomial p_c over GF(q); two distinct polynomials
// agree on at most k points, so among the q > kΔ evaluation points some x
// has p_v(x) != p_u(x) for every neighbor u, and (x, p_v(x)) is the new
// color. After O(log* d) iterations the palette stabilizes at
// q₁² ∈ O(Δ²) colors with q₁ the smallest prime > Δ; a final stage then
// recolors one color class per round down to Δ+1 colors.
//
// The whole schedule is a pure function of (d, Δ), so every node computes
// the same round budget — exactly what the Consecutive and Parallel
// templates need. The algorithm is fault-tolerant in the sense of
// Section 7.4: every step only compares against *live* neighbors, so if
// nodes vanish mid-run the surviving partial coloring stays proper.
//
// LinialColoringPhase does not write node outputs: the final color is held
// in local state (own_color / neighbor color accessors), because in the
// Parallel template part 1 must stash results locally.
#pragma once

#include <unordered_map>
#include <vector>

#include "sim/phase.hpp"

namespace dgap {

struct LinialStep {
  std::int64_t k;  // polynomial degree
  std::int64_t q;  // field size (prime, q > kΔ)
};

/// One round of the color-reduction stage.
///
/// Kuhn–Wattenhofer step (block > 0): colors are partitioned into blocks
/// of `block` = 2(Δ+1) consecutive values; every node whose color offset
/// within its block equals `target_or_offset` recolors into the lower
/// Δ+1 slots of its block, avoiding same-block neighbors (neighbors in
/// other blocks cannot collide). All blocks work in parallel, which is
/// what turns the O(Δ²) one-class-per-round reduction into O(Δ log Δ).
/// When `relabel` is set, every node afterwards compacts its color with
/// c → (c / block)·(Δ+1) + (c mod block) — a pure local map.
///
/// Class step (block == 0): the single class `target_or_offset` recolors
/// into {0..Δ} avoiding all neighbors (the Linial classic).
struct LinialReductionStep {
  Value block = 0;
  Value target_or_offset = 0;
  bool relabel = false;
};

struct LinialSchedule {
  std::vector<LinialStep> steps;            // one round each
  std::int64_t final_colors;                // palette size after the steps
  std::vector<LinialReductionStep> reduction;  // one round each
  int reduction_rounds;                     // == reduction.size()
  int total_rounds;                         // steps + reduction + 1
};

/// Deterministic schedule for identifiers in {1..d} and max degree Δ.
/// With `reduce_all_classes`, the final stage re-examines EVERY color
/// class (reduction_rounds = final_colors): needed when the phase must
/// also avoid colors already output by terminated neighbors — a class
/// that happens to land inside the palette may still clash with them.
/// With `kw_reduction`, Kuhn–Wattenhofer parallel block reduction brings
/// the palette from O(Δ²) to 2(Δ+1) in O(Δ log Δ) rounds before the
/// class-by-class tail — asymptotically closer to the Barenboim–Elkin
/// O(Δ + log* d) bound the paper's Corollary 12 cites. Mutually
/// exclusive with reduce_all_classes.
LinialSchedule linial_schedule(std::int64_t d, int delta,
                               bool reduce_all_classes = false,
                               bool kw_reduction = false);

/// Round bound of the full (Δ+1)-coloring part (for template schedules).
int linial_total_rounds(std::int64_t d, int delta);

/// Round bound of the output-respecting variant (reduce_all_classes).
int linial_total_rounds_respecting(std::int64_t d, int delta);

/// Round bound of the Kuhn–Wattenhofer variant (O(Δ log Δ + log* d)).
int linial_total_rounds_kw(std::int64_t d, int delta);

struct LinialOptions {
  /// When true, the final color additionally avoids every color already
  /// output by a terminated neighbor, so the phase extends a proper
  /// partial coloring (what the Consecutive template for (Δ+1)-Vertex
  /// Coloring needs). Implies reduce_all_classes scheduling.
  bool respect_terminated_outputs = false;
  /// Use the Kuhn–Wattenhofer parallel block reduction (see
  /// linial_schedule). Incompatible with respect_terminated_outputs.
  bool kw_reduction = false;
};

/// The coloring phase. Colors are internal values 0..Δ during/after the
/// run; palette_color() = final color + 1 ∈ {1..Δ+1}.
class LinialColoringPhase final : public PhaseProgram {
 public:
  LinialColoringPhase() = default;
  explicit LinialColoringPhase(LinialOptions options) : options_(options) {}

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

  bool done() const { return done_; }
  /// Final color in {1..Δ+1}; only meaningful once done().
  Value palette_color() const { return color_ + 1; }
  /// Last color heard from neighbor u (+1), or kUndefined if never heard.
  Value neighbor_palette_color(NodeId u) const;

 private:
  void ensure_schedule(const NodeContext& ctx);
  Value poly_eval(Value color, std::int64_t k, std::int64_t q,
                  std::int64_t x) const;

  LinialOptions options_;
  bool scheduled_ = false;
  LinialSchedule schedule_;
  int step_ = 0;
  bool done_ = false;
  Value color_ = 0;
  std::unordered_map<NodeId, Value> neighbor_color_;
};

/// Complete (Δ+1)-coloring algorithm: run the phase, then every node
/// outputs its palette color and terminates (one extra round).
ProgramFactory linial_coloring_algorithm();

/// Corollary 12's full reference for MIS: Linial part 1 feeding the
/// augmented coloring→MIS part 2. Usable standalone (Simple/Consecutive
/// templates) — the Parallel template wires the two parts itself.
PhaseFactory make_linial_mis_reference();

/// Round bound of the full Linial-MIS reference (part 1 + part 2).
int linial_mis_total_rounds(std::int64_t d, int delta);

}  // namespace dgap
