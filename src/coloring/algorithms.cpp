#include "coloring/algorithms.hpp"

#include <vector>

#include "common/require.hpp"

namespace dgap {

namespace {

bool legal_palette_color(const NodeContext& ctx, Value c) {
  return c >= 1 && c <= ctx.delta() + 1;
}

/// Smallest palette color not output by any terminated neighbor.
Value smallest_free_color(const NodeContext& ctx) {
  const Value palette = ctx.delta() + 1;
  std::vector<bool> used(static_cast<std::size_t>(palette + 1), false);
  for (NodeId u : ctx.neighbors()) {
    const Value c = ctx.neighbor_output(u);
    if (c >= 1 && c <= palette) used[static_cast<std::size_t>(c)] = true;
  }
  for (Value c = 1; c <= palette; ++c) {
    if (!used[static_cast<std::size_t>(c)]) return c;
  }
  DGAP_ASSERT(false, "palette larger than degree: a color must be free");
  return kUndefined;
}

bool is_local_max(const NodeContext& ctx) {
  for (NodeId u : ctx.active_neighbors()) {
    if (ctx.neighbor_id(u) > ctx.id()) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Base algorithm.
// ---------------------------------------------------------------------------

void ColoringBasePhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) ch.broadcast({ctx.prediction()});
}

PhaseProgram::Status ColoringBasePhase::on_receive(NodeContext& ctx,
                                                   Channel& ch) {
  ++step_;
  if (step_ == 1) {
    wins_ = legal_palette_color(ctx, ctx.prediction());
    for (const Message* m : ch.inbox()) {
      if (m->words.at(0) == ctx.prediction()) wins_ = false;
    }
    return Status::kRunning;
  }
  if (wins_) {
    ctx.set_output(ctx.prediction());
    ctx.terminate();
  }
  return Status::kFinished;
}

// ---------------------------------------------------------------------------
// Reasonable initialization: identifier tie-break among equal predictions.
// ---------------------------------------------------------------------------

void ColoringInitPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) ch.broadcast({ctx.prediction()});
}

PhaseProgram::Status ColoringInitPhase::on_receive(NodeContext& ctx,
                                                   Channel& ch) {
  ++step_;
  if (step_ == 1) {
    wins_ = legal_palette_color(ctx, ctx.prediction());
    for (const Message* m : ch.inbox()) {
      if (m->words.at(0) == ctx.prediction() &&
          ctx.neighbor_id(m->from) > ctx.id()) {
        wins_ = false;
      }
    }
    return Status::kRunning;
  }
  if (wins_) {
    ctx.set_output(ctx.prediction());
    ctx.terminate();
  }
  return Status::kFinished;
}

// ---------------------------------------------------------------------------
// Measure-uniform greedy coloring (round complexity ≤ component size).
// ---------------------------------------------------------------------------

void GreedyColoringPhase::on_send(NodeContext&, Channel&) {}

PhaseProgram::Status GreedyColoringPhase::on_receive(NodeContext& ctx,
                                                     Channel&) {
  if (is_local_max(ctx)) {
    ctx.set_output(smallest_free_color(ctx));
    ctx.terminate();
  }
  return Status::kRunning;  // finishes only by terminating the node
}

PhaseProgram::Status ColorClassEmitPhase::on_receive(NodeContext& ctx,
                                                     Channel&) {
  ++step_;
  const Value palette = ctx.delta() + 1;
  if (stored_color_() == step_) {
    ctx.set_output(smallest_free_color(ctx));
    ctx.terminate();
  }
  return step_ >= palette ? Status::kFinished : Status::kRunning;
}

PhaseFactory make_coloring_base() {
  return [](NodeId) { return std::make_unique<ColoringBasePhase>(); };
}

PhaseFactory make_coloring_init() {
  return [](NodeId) { return std::make_unique<ColoringInitPhase>(); };
}

PhaseFactory make_greedy_coloring() {
  return [](NodeId) { return std::make_unique<GreedyColoringPhase>(); };
}

ProgramFactory greedy_coloring_algorithm() {
  return phase_as_algorithm(make_greedy_coloring());
}

}  // namespace dgap
