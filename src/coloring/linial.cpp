#include "coloring/linial.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "common/require.hpp"
#include "mis/algorithms.hpp"

namespace dgap {

LinialSchedule linial_schedule(std::int64_t d, int delta,
                               bool reduce_all_classes, bool kw_reduction) {
  DGAP_REQUIRE(d >= 1, "identifier bound must be positive");
  DGAP_REQUIRE(delta >= 0, "max degree must be non-negative");
  DGAP_REQUIRE(!(reduce_all_classes && kw_reduction),
               "output-respecting reduction and KW blocks are exclusive");
  LinialSchedule s;
  if (delta == 0) {
    // No conflicts possible: everyone can take color 0 right away.
    s.final_colors = 1;
    s.reduction_rounds = 0;
    s.total_rounds = 1;  // the final announce round
    return s;
  }
  std::int64_t m = d;  // colors are 0..d-1 initially (identifier − 1)
  while (true) {
    // Smallest polynomial degree k whose set system can encode m colors.
    std::int64_t k = 1, q = 0;
    for (;; ++k) {
      DGAP_REQUIRE(k <= 64, "Linial degree search overflow");
      q = next_prime(k * delta + 1);
      if (ipow_sat(q, static_cast<int>(k + 1)) >= m) break;
    }
    const std::int64_t m_new = q * q;
    if (m_new >= m) break;  // fixed point: palette no longer shrinks
    s.steps.push_back({k, q});
    m = m_new;
  }
  s.final_colors = m;
  // Build the per-round reduction plan.
  auto class_tail = [&](std::vector<LinialReductionStep>& plan,
                        std::int64_t colors) {
    const Value floor = reduce_all_classes ? 0 : delta + 1;
    for (Value c = colors - 1; c >= floor; --c) plan.push_back({0, c, false});
  };
  if (kw_reduction) {
    // Kuhn–Wattenhofer block stages cost Δ+1 rounds each and roughly halve
    // the palette; they only pay off while the palette is large, so build
    // the KW plan AND the plain plan and keep the shorter (both are pure
    // functions of (d, Δ), so every node picks the same one).
    std::vector<LinialReductionStep> kw_plan;
    std::int64_t mk = m;
    const Value block = 2 * (static_cast<Value>(delta) + 1);
    while (mk > block) {
      // Stop doubling down when finishing by classes is already cheaper.
      if (mk - (delta + 1) <= delta + 1) break;
      for (Value t = 0; t <= delta; ++t) {
        kw_plan.push_back(
            {block, static_cast<Value>(delta) + 1 + t, t == delta});
      }
      mk = ceil_div(mk, block) * (delta + 1);
    }
    class_tail(kw_plan, mk);
    std::vector<LinialReductionStep> plain_plan;
    class_tail(plain_plan, m);
    s.reduction = kw_plan.size() < plain_plan.size() ? std::move(kw_plan)
                                                     : std::move(plain_plan);
  } else {
    class_tail(s.reduction, m);
  }
  s.reduction_rounds = static_cast<int>(s.reduction.size());
  s.total_rounds = static_cast<int>(s.steps.size()) + s.reduction_rounds + 1;
  return s;
}

int linial_total_rounds(std::int64_t d, int delta) {
  return linial_schedule(d, delta).total_rounds;
}

int linial_total_rounds_respecting(std::int64_t d, int delta) {
  return linial_schedule(d, delta, /*reduce_all_classes=*/true).total_rounds;
}

int linial_total_rounds_kw(std::int64_t d, int delta) {
  return linial_schedule(d, delta, false, /*kw_reduction=*/true).total_rounds;
}

void LinialColoringPhase::ensure_schedule(const NodeContext& ctx) {
  if (scheduled_) return;
  schedule_ = linial_schedule(ctx.d(), ctx.delta(),
                              options_.respect_terminated_outputs,
                              options_.kw_reduction);
  color_ = ctx.delta() == 0 ? 0 : ctx.id() - 1;
  scheduled_ = true;
}

Value LinialColoringPhase::poly_eval(Value color, std::int64_t k,
                                     std::int64_t q, std::int64_t x) const {
  // color encodes the coefficient vector of a degree-k polynomial over
  // GF(q), base-q digits = coefficients; evaluate by Horner from the top.
  Value coeff[65];
  Value c = color;
  for (std::int64_t i = 0; i <= k; ++i) {
    coeff[i] = c % q;
    c /= q;
  }
  Value acc = 0;
  for (std::int64_t i = k; i >= 0; --i) acc = (acc * x + coeff[i]) % q;
  return acc;
}

Value LinialColoringPhase::neighbor_palette_color(NodeId u) const {
  auto it = neighbor_color_.find(u);
  if (it == neighbor_color_.end()) return kUndefined;
  return it->second + 1;
}

void LinialColoringPhase::on_send(NodeContext& ctx, Channel& ch) {
  ensure_schedule(ctx);
  if (done_) return;
  ch.broadcast({color_});
}

PhaseProgram::Status LinialColoringPhase::on_receive(NodeContext& ctx,
                                                     Channel& ch) {
  ensure_schedule(ctx);
  if (done_) return Status::kFinished;
  ++step_;
  for (const Message* m : ch.inbox()) {
    neighbor_color_[m->from] = m->words.at(0);
  }
  const int num_steps = static_cast<int>(schedule_.steps.size());
  if (step_ <= num_steps) {
    // One Linial reduction: find x ∈ GF(q) separating us from every live
    // neighbor, new color = (x, p(x)).
    const auto [k, q] = schedule_.steps[static_cast<std::size_t>(step_ - 1)];
    std::int64_t chosen_x = -1;
    for (std::int64_t x = 0; x < q && chosen_x < 0; ++x) {
      bool ok = true;
      const Value mine = poly_eval(color_, k, q, x);
      for (NodeId u : ctx.active_neighbors()) {
        auto it = neighbor_color_.find(u);
        if (it == neighbor_color_.end()) continue;
        DGAP_ASSERT(it->second != color_,
                    "Linial invariant: the running coloring stays proper");
        if (poly_eval(it->second, k, q, x) == mine) {
          ok = false;
          break;
        }
      }
      if (ok) chosen_x = x;
    }
    DGAP_ASSERT(chosen_x >= 0,
                "q > kΔ guarantees a separating evaluation point");
    color_ = chosen_x * q + poly_eval(color_, k, q, chosen_x);
  } else if (step_ <= num_steps + schedule_.reduction_rounds) {
    const auto& op = schedule_.reduction[static_cast<std::size_t>(
        step_ - num_steps - 1)];
    const Value delta = ctx.delta();
    if (op.block > 0) {
      // Kuhn–Wattenhofer step: the scheduled offset of every block
      // recolors into its block's lower Δ+1 slots, avoiding same-block
      // neighbors only (other blocks occupy disjoint color ranges).
      if (color_ % op.block == op.target_or_offset) {
        const Value base = (color_ / op.block) * op.block;
        std::vector<bool> used(static_cast<std::size_t>(delta + 1), false);
        for (NodeId u : ctx.active_neighbors()) {
          auto it = neighbor_color_.find(u);
          if (it == neighbor_color_.end()) continue;
          const Value nc = it->second;
          if (nc >= base && nc < base + delta + 1) {
            used[static_cast<std::size_t>(nc - base)] = true;
          }
        }
        Value fresh = -1;
        for (Value slot = 0; slot <= delta; ++slot) {
          if (!used[static_cast<std::size_t>(slot)]) {
            fresh = base + slot;
            break;
          }
        }
        DGAP_ASSERT(fresh >= 0, "a block's lower Δ+1 slots cannot fill up");
        color_ = fresh;
      }
      if (op.relabel) {
        // Stage complete: compact the color space (pure local map,
        // applied by every node simultaneously).
        color_ = (color_ / op.block) * (delta + 1) + color_ % op.block;
      }
    } else {
      // Classic one-class-per-round elimination into {0..Δ}.
      if (color_ == op.target_or_offset) {
        std::vector<bool> used(static_cast<std::size_t>(delta + 1), false);
        for (NodeId u : ctx.active_neighbors()) {
          auto it = neighbor_color_.find(u);
          if (it != neighbor_color_.end() && it->second <= delta) {
            used[static_cast<std::size_t>(it->second)] = true;
          }
        }
        if (options_.respect_terminated_outputs) {
          // Palette colors already output by terminated neighbors (their
          // outputs are 1-based palette colors; internal colors 0-based).
          for (NodeId u : ctx.neighbors()) {
            const Value out = ctx.neighbor_output(u);
            if (out >= 1 && out <= delta + 1) {
              used[static_cast<std::size_t>(out - 1)] = true;
            }
          }
        }
        Value fresh = -1;
        for (Value c = 0; c <= delta; ++c) {
          if (!used[static_cast<std::size_t>(c)]) {
            fresh = c;
            break;
          }
        }
        DGAP_ASSERT(fresh >= 0, "a Δ+1 palette always has a free color");
        color_ = fresh;
      }
    }
  } else {
    // Final announce round already happened via this round's broadcast.
    DGAP_ASSERT(color_ >= 0 && color_ <= ctx.delta(),
                "final Linial color must be in 0..Δ");
    done_ = true;
    return Status::kFinished;
  }
  return Status::kRunning;
}

namespace {

class LinialColoringAlgorithm final : public NodeProgram {
 public:
  void on_send(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    phase_.on_send(ctx, ch);
  }
  void on_receive(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    if (phase_.on_receive(ctx, ch) == PhaseProgram::Status::kFinished) {
      ctx.set_output(phase_.palette_color());
      ctx.terminate();
    }
  }

 private:
  LinialColoringPhase phase_;
};

/// Corollary 12's reference: Linial coloring (part 1, fault-tolerant,
/// results held locally) followed by the augmented coloring→MIS sweep
/// (part 2).
class LinialMisPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override {
    if (part2_) {
      part2_->on_send(ctx, ch);
    } else {
      part1_.on_send(ctx, ch);
    }
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    if (!part2_) {
      if (part1_.on_receive(ctx, ch) == Status::kFinished) {
        part2_ = std::make_unique<ColorToMisPhase>(
            static_cast<Value>(ctx.delta() + 1),
            [this] { return part1_.palette_color(); },
            [this](NodeId u) { return part1_.neighbor_palette_color(u); });
      }
      return Status::kRunning;
    }
    return part2_->on_receive(ctx, ch);
  }

 private:
  LinialColoringPhase part1_;
  std::unique_ptr<ColorToMisPhase> part2_;
};

}  // namespace

ProgramFactory linial_coloring_algorithm() {
  return [](NodeId) { return std::make_unique<LinialColoringAlgorithm>(); };
}

PhaseFactory make_linial_mis_reference() {
  return [](NodeId) { return std::make_unique<LinialMisPhase>(); };
}

int linial_mis_total_rounds(std::int64_t d, int delta) {
  // Part 2 processes colors 1..Δ+1 plus one drain round.
  return linial_total_rounds(d, delta) + delta + 2;
}

}  // namespace dgap
