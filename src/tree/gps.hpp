// Goldberg–Plotkin–Shannon 3-coloring of rooted trees, O(log* d) rounds.
//
// Part 1 of Corollary 15's reference algorithm. Colors start as
// identifier − 1; each iteration rewrites a color to 2i + bit_i(color),
// where i is the lowest bit position where the node's color differs from
// its parent's (the root — or a node whose parent terminated — uses its own
// color with bit 0 flipped as a stand-in parent color, which preserves the
// proof that adjacent colors stay distinct). Once the palette is down to
// {0..5}, three shift-down/recolor pairs eliminate colors 5, 4 and 3.
//
// The round schedule is a pure function of d, so all nodes agree on it, and
// the algorithm is fault-tolerant: every rule refers only to live
// neighbors. Like Linial part 1, the phase writes no outputs — the final
// color is held locally for part 2.
#pragma once

#include <unordered_map>

#include "graph/generators.hpp"
#include "sim/phase.hpp"

namespace dgap {

/// Number of color-compression iterations until identifiers in {1..d}
/// shrink to the 6-color fixed point.
int gps_iterations(std::int64_t d);

/// Total rounds of the GPS phase: iterations + 6 shift/recolor rounds.
int gps_total_rounds(std::int64_t d);

/// Rounds of the full rooted-tree MIS reference (GPS + 2-round part 2).
int gps_tree_mis_total_rounds(std::int64_t d);

class GpsColoringPhase final : public PhaseProgram {
 public:
  explicit GpsColoringPhase(NodeId parent) : parent_(parent) {}

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

  bool done() const { return done_; }
  /// Final color in {0, 1, 2}; only meaningful once done().
  Value color() const { return color_; }

 private:
  void ensure_schedule(const NodeContext& ctx);

  NodeId parent_;
  bool scheduled_ = false;
  int iterations_ = 0;
  int step_ = 0;
  bool done_ = false;
  Value color_ = 0;
};

/// Part 2 of Corollary 15: two rounds from a proper 3-coloring (colors
/// {0,1,2} read through the accessor) to a maximal independent set.
class TreeColorToMisPhase final : public PhaseProgram {
 public:
  using ColorFn = std::function<Value()>;
  explicit TreeColorToMisPhase(ColorFn color) : color_(std::move(color)) {}

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  ColorFn color_;
  int step_ = 0;
};

/// GPS followed by part 2, as one phase (Simple/Consecutive-style use).
PhaseFactory make_gps_tree_mis_reference(const RootedTree& tree);

/// GPS 3-coloring as a standalone algorithm (outputs color + 1 ∈ {1,2,3}).
ProgramFactory gps_coloring_algorithm(const RootedTree& tree);

}  // namespace dgap
