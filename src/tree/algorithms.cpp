#include "tree/algorithms.hpp"

#include "common/require.hpp"

namespace dgap {

namespace {
constexpr Value kMsgRoot = 7;

bool sees_mis_neighbor(const NodeContext& ctx) {
  for (NodeId u : ctx.neighbors()) {
    if (ctx.neighbor_output(u) == 1) return true;
  }
  return false;
}
}  // namespace

// ---------------------------------------------------------------------------
// MIS Rooted Tree Initialization Algorithm (4 rounds; 3 when correct).
// ---------------------------------------------------------------------------

void TreeMisInitPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) ch.broadcast({ctx.prediction()});
}

PhaseProgram::Status TreeMisInitPhase::on_receive(NodeContext& ctx,
                                                  Channel& ch) {
  ++step_;
  switch (step_) {
    case 1:
      for (const Message* m : ch.inbox()) {
        if (m->from == parent_) parent_prediction_ = m->words.at(0);
      }
      return Status::kRunning;
    case 2:
      // Black nodes without a black parent join the independent set (a
      // superset of the base algorithm's choice).
      if (ctx.prediction() == 1 &&
          (parent_ == kNoNode || parent_prediction_ != 1)) {
        ctx.set_output(1);
        ctx.terminate();
      }
      return Status::kRunning;
    case 3:
      if (ctx.prediction() != 1) {  // white
        if (sees_mis_neighbor(ctx)) {
          ctx.set_output(0);
          ctx.terminate();
        } else if (parent_ == kNoNode || parent_prediction_ == 1) {
          // No white parent: this white node joins the set.
          ctx.set_output(1);
          ctx.terminate();
        }
      }
      return Status::kRunning;
    case 4:
      if (sees_mis_neighbor(ctx)) {
        ctx.set_output(0);
        ctx.terminate();
      }
      return Status::kFinished;
    default:
      DGAP_ASSERT(false, "tree initialization ran past its 4 rounds");
      return Status::kFinished;
  }
}

// ---------------------------------------------------------------------------
// Algorithm 6: roots and leaves join every other round.
// ---------------------------------------------------------------------------

bool TreeMisUniformPhase::parent_active(const NodeContext& ctx) const {
  return parent_ != kNoNode && ctx.neighbor_active(parent_);
}

bool TreeMisUniformPhase::has_active_children(const NodeContext& ctx) const {
  for (NodeId u : ctx.active_neighbors()) {
    if (u != parent_) return true;
  }
  return false;
}

void TreeMisUniformPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ % 2 == 0 && !parent_active(ctx)) {
    // Fragment root: notify active children in-round (a leaf child decides
    // this very round whether its parent was a root).
    for (NodeId u : ctx.active_neighbors()) {
      if (u != parent_) ch.send(u, {kMsgRoot});
    }
  }
}

PhaseProgram::Status TreeMisUniformPhase::on_receive(NodeContext& ctx,
                                                     Channel& ch) {
  const bool odd = (step_ % 2 == 0);
  ++step_;
  if (odd) {
    if (!parent_active(ctx)) {
      ctx.set_output(1);
      ctx.terminate();
      return Status::kRunning;
    }
    if (!has_active_children(ctx)) {
      bool parent_is_root = false;
      for (const Message* m : ch.inbox()) {
        if (m->from == parent_ && m->words.at(0) == kMsgRoot) {
          parent_is_root = true;
        }
      }
      ctx.set_output(parent_is_root ? 0 : 1);
      ctx.terminate();
    }
  } else {
    if (sees_mis_neighbor(ctx)) {
      ctx.set_output(0);
      ctx.terminate();
    }
  }
  return Status::kRunning;
}

PhaseFactory make_tree_mis_init(const RootedTree& tree) {
  auto parents = tree.parent;
  return [parents](NodeId index) {
    return std::make_unique<TreeMisInitPhase>(
        parents[static_cast<std::size_t>(index)]);
  };
}

PhaseFactory make_tree_mis_uniform(const RootedTree& tree) {
  auto parents = tree.parent;
  return [parents](NodeId index) {
    return std::make_unique<TreeMisUniformPhase>(
        parents[static_cast<std::size_t>(index)]);
  };
}

ProgramFactory tree_mis_uniform_algorithm(const RootedTree& tree) {
  return phase_as_algorithm(make_tree_mis_uniform(tree));
}

}  // namespace dgap
