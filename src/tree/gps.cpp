#include "tree/gps.hpp"

#include "common/math_util.hpp"
#include "common/require.hpp"

namespace dgap {

namespace {

int bit_length(std::int64_t x) { return x >= 1 ? ilog2(x) + 1 : 1; }

/// Lowest bit position where a and b differ (a != b).
int lowest_diff_bit(Value a, Value b) {
  DGAP_ASSERT(a != b, "colors must differ to compress");
  const Value x = a ^ b;
  int i = 0;
  while (((x >> i) & 1) == 0) ++i;
  return i;
}

}  // namespace

int gps_iterations(std::int64_t d) {
  DGAP_REQUIRE(d >= 1, "identifier bound must be positive");
  std::int64_t domain = d;  // colors 0..d-1
  int iters = 0;
  while (domain > 6) {
    domain = 2 * bit_length(domain - 1);
    ++iters;
  }
  return iters;
}

int gps_total_rounds(std::int64_t d) { return gps_iterations(d) + 6; }

int gps_tree_mis_total_rounds(std::int64_t d) {
  return gps_total_rounds(d) + 2;
}

void GpsColoringPhase::ensure_schedule(const NodeContext& ctx) {
  if (scheduled_) return;
  iterations_ = gps_iterations(ctx.d());
  color_ = ctx.id() - 1;
  scheduled_ = true;
}

void GpsColoringPhase::on_send(NodeContext& ctx, Channel& ch) {
  ensure_schedule(ctx);
  if (!done_) ch.broadcast({color_});
}

PhaseProgram::Status GpsColoringPhase::on_receive(NodeContext& ctx,
                                                  Channel& ch) {
  ensure_schedule(ctx);
  if (done_) return Status::kFinished;
  ++step_;
  Value parent_color = kUndefined;
  std::unordered_map<NodeId, Value> child_color;
  for (const Message* m : ch.inbox()) {
    if (m->from == parent_) {
      parent_color = m->words.at(0);
    } else {
      child_color[m->from] = m->words.at(0);
    }
  }
  // A vanished parent (or no parent at all) is simulated by a stand-in
  // color: the node's own color with bit 0 flipped.
  const bool orphan = (parent_color == kUndefined);
  if (orphan) parent_color = color_ ^ 1;

  if (step_ <= iterations_) {
    const int i = lowest_diff_bit(color_, parent_color);
    color_ = 2 * static_cast<Value>(i) + ((color_ >> i) & 1);
  } else {
    const int j = step_ - iterations_;  // 1..6
    if (j % 2 == 1) {
      // Shift-down: adopt the parent's color; fragment roots rotate.
      color_ = orphan ? (color_ + 1) % 3 : parent_color;
    } else {
      // Recolor the class scheduled this pair: 5, then 4, then 3.
      const Value target = 5 - (j / 2 - 1);
      if (color_ == target) {
        bool used[3] = {false, false, false};
        if (!orphan && parent_color >= 0 && parent_color <= 2) {
          used[parent_color] = true;
        }
        for (const auto& [child, c] : child_color) {
          if (c >= 0 && c <= 2) used[c] = true;
        }
        Value fresh = -1;
        for (Value c = 0; c <= 2; ++c) {
          if (!used[c]) {
            fresh = c;
            break;
          }
        }
        DGAP_ASSERT(fresh >= 0,
                    "parent + uniform child color leave a free color");
        color_ = fresh;
      }
    }
    if (j == 6) {
      DGAP_ASSERT(color_ >= 0 && color_ <= 2, "GPS must end in {0,1,2}");
      done_ = true;
      return Status::kFinished;
    }
  }
  return Status::kRunning;
}

// ---------------------------------------------------------------------------
// Part 2: 3-coloring → MIS in two rounds.
// ---------------------------------------------------------------------------

void TreeColorToMisPhase::on_send(NodeContext&, Channel& ch) {
  ch.broadcast({color_()});
}

PhaseProgram::Status TreeColorToMisPhase::on_receive(NodeContext& ctx,
                                                     Channel& ch) {
  ++step_;
  const Value mine = color_();
  if (step_ == 1) {
    if (mine == 0) {
      ctx.set_output(1);
      ctx.terminate();
      return Status::kRunning;
    }
    for (const Message* m : ch.inbox()) {
      if (m->words.at(0) == 0) {
        ctx.set_output(0);
        ctx.terminate();
        return Status::kRunning;
      }
    }
    return Status::kRunning;
  }
  DGAP_ASSERT(step_ == 2, "part 2 is a two-round algorithm");
  if (mine == 1) {
    ctx.set_output(1);
    ctx.terminate();
  } else {
    bool saw_one = false;
    for (const Message* m : ch.inbox()) {
      if (m->words.at(0) == 1) saw_one = true;
    }
    ctx.set_output(saw_one ? 0 : 1);
    ctx.terminate();
  }
  return Status::kFinished;
}

namespace {

/// GPS part 1 feeding part 2 — the full Corollary 15 reference.
class GpsTreeMisPhase final : public PhaseProgram {
 public:
  explicit GpsTreeMisPhase(NodeId parent) : part1_(parent) {}

  void on_send(NodeContext& ctx, Channel& ch) override {
    if (part2_) {
      part2_->on_send(ctx, ch);
    } else {
      part1_.on_send(ctx, ch);
    }
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    if (!part2_) {
      if (part1_.on_receive(ctx, ch) == Status::kFinished) {
        part2_ = std::make_unique<TreeColorToMisPhase>(
            [this] { return part1_.color(); });
      }
      return Status::kRunning;
    }
    return part2_->on_receive(ctx, ch);
  }

 private:
  GpsColoringPhase part1_;
  std::unique_ptr<TreeColorToMisPhase> part2_;
};

class GpsColoringAlgorithm final : public NodeProgram {
 public:
  explicit GpsColoringAlgorithm(NodeId parent) : phase_(parent) {}

  void on_send(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    phase_.on_send(ctx, ch);
  }
  void on_receive(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    if (phase_.on_receive(ctx, ch) == PhaseProgram::Status::kFinished) {
      ctx.set_output(phase_.color() + 1);
      ctx.terminate();
    }
  }

 private:
  GpsColoringPhase phase_;
};

}  // namespace

PhaseFactory make_gps_tree_mis_reference(const RootedTree& tree) {
  auto parents = tree.parent;
  return [parents](NodeId index) {
    return std::make_unique<GpsTreeMisPhase>(
        parents[static_cast<std::size_t>(index)]);
  };
}

ProgramFactory gps_coloring_algorithm(const RootedTree& tree) {
  auto parents = tree.parent;
  return [parents](NodeId index) {
    return std::make_unique<GpsColoringAlgorithm>(
        parents[static_cast<std::size_t>(index)]);
  };
}

}  // namespace dgap
