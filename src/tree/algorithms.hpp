// MIS on rooted trees (Section 9.2).
//
//  * TreeMisInitPhase — the MIS Rooted Tree Initialization Algorithm
//                       (4 rounds; 3 when predictions are correct). After
//                       it, the components of the active subgraph are
//                       monochromatic, so black and white components can
//                       proceed in parallel without interference.
//  * TreeMisUniformPhase — Algorithm 6: every odd round, fragment roots
//                       output 1 and leaves output 1 (unless their parent
//                       is a root); every even round, neighbors of winners
//                       output 0. Round complexity ≤ ⌈η_t/2⌉ + O(1)
//                       component height halves every two rounds.
//
// Every node knows whether it is the root and which neighbor is its parent;
// these factories capture the rooted structure.
#pragma once

#include "graph/generators.hpp"
#include "sim/phase.hpp"

namespace dgap {

inline constexpr int kTreeMisInitRounds = 4;

class TreeMisInitPhase final : public PhaseProgram {
 public:
  explicit TreeMisInitPhase(NodeId parent) : parent_(parent) {}

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  NodeId parent_;  // internal index, or kNoNode for the root
  int step_ = 0;
  Value parent_prediction_ = kUndefined;
};

class TreeMisUniformPhase final : public PhaseProgram {
 public:
  explicit TreeMisUniformPhase(NodeId parent) : parent_(parent) {}

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  bool parent_active(const NodeContext& ctx) const;
  bool has_active_children(const NodeContext& ctx) const;

  NodeId parent_;
  int step_ = 0;
  bool leaf_pending_output_one_ = false;
};

/// Factories capture the rooted structure (parent per internal index).
PhaseFactory make_tree_mis_init(const RootedTree& tree);
PhaseFactory make_tree_mis_uniform(const RootedTree& tree);

/// Algorithm 6 as a standalone algorithm without predictions.
ProgramFactory tree_mis_uniform_algorithm(const RootedTree& tree);

}  // namespace dgap
