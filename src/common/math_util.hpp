// Small number-theoretic helpers needed by the coloring algorithms:
// primes for Linial's polynomial set systems, iterated logarithm for
// round-bound formulas, and integer powers with overflow care.
#pragma once

#include <cstdint>

namespace dgap {

/// True iff `x` is prime. Deterministic trial division; inputs in this
/// library are small (O(Δ)), so this is never a bottleneck.
bool is_prime(std::int64_t x);

/// Smallest prime >= x (x >= 2). Bertrand's postulate bounds the search.
std::int64_t next_prime(std::int64_t x);

/// floor(log2(x)) for x >= 1.
int ilog2(std::int64_t x);

/// Iterated logarithm: number of times log2 must be applied to x before the
/// result is <= 1. log_star(1) = 0, log_star(2) = 1, log_star(16) = 3, ...
int log_star(std::int64_t x);

/// base^exp, saturating at INT64_MAX instead of overflowing.
std::int64_t ipow_sat(std::int64_t base, int exp);

/// Ceiling division for non-negative integers.
inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace dgap
