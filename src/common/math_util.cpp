#include "common/math_util.hpp"

#include <limits>

#include "common/require.hpp"

namespace dgap {

bool is_prime(std::int64_t x) {
  if (x < 2) return false;
  if (x < 4) return true;
  if (x % 2 == 0) return false;
  for (std::int64_t p = 3; p * p <= x; p += 2) {
    if (x % p == 0) return false;
  }
  return true;
}

std::int64_t next_prime(std::int64_t x) {
  DGAP_REQUIRE(x >= 0, "next_prime needs a non-negative start");
  if (x <= 2) return 2;
  std::int64_t p = x | 1;  // first odd >= x
  while (!is_prime(p)) p += 2;
  return p;
}

int ilog2(std::int64_t x) {
  DGAP_REQUIRE(x >= 1, "ilog2 needs x >= 1");
  int l = 0;
  while (x > 1) {
    x >>= 1;
    ++l;
  }
  return l;
}

int log_star(std::int64_t x) {
  DGAP_REQUIRE(x >= 1, "log_star needs x >= 1");
  int iters = 0;
  while (x > 1) {
    x = ilog2(x);
    ++iters;
  }
  return iters;
}

std::int64_t ipow_sat(std::int64_t base, int exp) {
  DGAP_REQUIRE(base >= 0 && exp >= 0, "ipow_sat needs non-negative inputs");
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) {
    if (base != 0 && r > std::numeric_limits<std::int64_t>::max() / base) {
      return std::numeric_limits<std::int64_t>::max();
    }
    r *= base;
  }
  return r;
}

}  // namespace dgap
