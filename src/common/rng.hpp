// Deterministic pseudo-random number generation.
//
// All randomness in the library (graph generators, prediction perturbation,
// Luby's algorithm) flows through Rng so that every test and benchmark is
// reproducible from a seed. The engine never uses randomness itself; the
// simulated algorithms are deterministic unless a program explicitly draws
// from an Rng it owns.
#pragma once

#include <cstdint>
#include <vector>

namespace dgap {

/// xoshiro256** — small, fast, and good enough for simulation workloads.
/// Not cryptographic. Seeded via splitmix64 so that nearby seeds give
/// unrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next();

  /// Uniform integer in [0, bound) using rejection sampling (bound >= 1).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw.
  bool flip(double p);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-component / per-node use).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace dgap
