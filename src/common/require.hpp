// Lightweight precondition / invariant checking used throughout the library.
//
// DGAP_REQUIRE is for preconditions on public API calls: violations throw
// std::invalid_argument so callers (tests, examples) can observe them.
// DGAP_ASSERT is for internal invariants: violations throw std::logic_error.
// Both stay enabled in release builds; the simulator is a correctness tool,
// not a hot path, and silent invariant corruption would invalidate every
// measured round count.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dgap {

[[noreturn]] inline void require_failed(const char* kind, const char* expr,
                                        const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "DGAP_REQUIRE") throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace dgap

#define DGAP_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond))                                                             \
      ::dgap::require_failed("DGAP_REQUIRE", #cond, __FILE__, __LINE__,      \
                             (msg));                                         \
  } while (0)

#define DGAP_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond))                                                             \
      ::dgap::require_failed("DGAP_ASSERT", #cond, __FILE__, __LINE__,       \
                             (msg));                                         \
  } while (0)
