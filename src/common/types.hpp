// Core scalar types shared by every dgap module.
#pragma once

#include <cstdint>
#include <limits>

namespace dgap {

/// Node identifier. The paper's model gives every node a distinct identifier
/// from {1, ..., d}; we use 0-based indices internally and carry `d`
/// separately (see GraphInfo). NodeId is signed so that kNoNode is a natural
/// sentinel.
using NodeId = std::int32_t;

/// Sentinel for "no node" (e.g., an unmatched node's output, ⊥ in the paper).
inline constexpr NodeId kNoNode = -1;

/// Output and prediction values are 64-bit words; each problem documents its
/// encoding (MIS: 0/1; matching: partner NodeId or kNoNode; coloring: color).
using Value = std::int64_t;

inline constexpr Value kUndefined = std::numeric_limits<Value>::min();

}  // namespace dgap
