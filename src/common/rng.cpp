#include "common/rng.hpp"

#include "common/require.hpp"

namespace dgap {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DGAP_REQUIRE(bound >= 1, "next_below needs bound >= 1");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % bound;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  DGAP_REQUIRE(lo <= hi, "uniform needs lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::flip(double p) { return uniform01() < p; }

Rng Rng::fork() { return Rng(next()); }

}  // namespace dgap
