// Validity checkers for the Maximal Independent Set problem.
//
// MIS outputs are per-node bits: 1 = in the set, 0 = out. A *partial*
// solution assigns outputs to a subset of nodes (kUndefined elsewhere, and
// the simulator's kLeftoverActive marker is treated as "no output" too).
// A partial solution is extendable (Section 3) iff every node with output 1
// has output 0 on ALL its neighbors, and every node with output 0 has a
// neighbor with output 1.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace dgap {

/// True iff `outputs` is a complete, correct maximal independent set.
bool is_valid_mis(const Graph& g, const std::vector<Value>& outputs);

/// Diagnostic version: returns an empty string when valid, otherwise a
/// description of the first violation found.
std::string check_mis(const Graph& g, const std::vector<Value>& outputs);

/// True iff the (possibly partial) outputs form an extendable partial
/// solution for MIS. Complete correct solutions are trivially extendable.
bool is_extendable_partial_mis(const Graph& g,
                               const std::vector<Value>& outputs);

/// Weaker invariant that holds at EVERY round of every algorithm in this
/// library (not just at phase boundaries): outputs are bits, no two
/// adjacent nodes output 1, and every node that output 0 has a neighbor
/// that output 1. Full extendability additionally requires each 1-node's
/// neighbors to have all output 0, which transiently fails between a
/// winner's round and its neighbors' response round.
bool is_consistent_partial_mis(const Graph& g,
                               const std::vector<Value>& outputs);

/// Treats kUndefined and kLeftoverActive as "no output yet".
bool mis_output_defined(Value v);

}  // namespace dgap
