// A CONGEST-model universal reference algorithm for MIS.
//
// The gather reference (mis/gather.hpp) ships whole adjacency lists in
// single messages — legitimate in LOCAL, impossible in CONGEST. This is
// its CONGEST counterpart, the classic three-stage universal protocol:
//
//   1. leader election (n rounds): flood the minimum identifier; the
//      first edge over which a node's final minimum arrived becomes its
//      parent, yielding a BFS tree per component rooted at the leader;
//   2. convergecast (≤ n² rounds): every node reports itself and its
//      incident edges up the tree, one 2-word record per round per edge
//      of the tree (pipelined);
//   3. solve + downcast (≤ 2n + 2 rounds): the leader solves MIS on the
//      collected component (greedy by identifier) and broadcasts one
//      (id, bit) record per round down the tree; everyone outputs at the
//      fixed end of the schedule, so whole components decide atomically
//      and the partial solution is always extendable.
//
// Every message is at most 2 words — CONGEST-compliant — at the price of
// an O(n²) round bound (the price of universality without structure).
// The schedule is a pure function of n, so the phase drops into the
// Consecutive template as a reference algorithm.
//
// Under enforced deferral (CongestPolicy::kDefer) with a budget below 2
// words, a 2-word record needs ceil(2/B) rounds to cross a link, so the
// record-bearing stages (2 and 3) pace their sends with that stride and
// stretch their budgets accordingly; the schedule stays a pure function of
// (n, B), where B = ctx.link_budget() is global and round-invariant.
// Stage 1 sends single words and never stretches (B >= 1 always).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "sim/phase.hpp"

namespace dgap {

/// Rounds between send opportunities of the 2-word record stages under a
/// deferral budget of `link_budget` words (= ceil(2 / B)); 1 when
/// unenforced (link_budget <= 0) or B >= 2.
int congest_global_record_stride(int link_budget);

/// Exact stage budgets — pure functions of (n, link_budget), widened to
/// int64 because stage 2 is quadratic in n. `link_budget` is
/// NodeContext::link_budget(): 0 unless deferral is enforced.
std::int64_t congest_global_stage1_rounds(NodeId n, int link_budget = 0);
std::int64_t congest_global_stage2_rounds(NodeId n, int link_budget = 0);
std::int64_t congest_global_stage3_rounds(NodeId n, int link_budget = 0);
std::int64_t congest_global_total_rounds(NodeId n, int link_budget = 0);

class CongestGlobalMisPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  void ensure_init(NodeContext& ctx);

  bool init_ = false;
  std::int64_t step_ = 0;

  // Stage 1 state.
  Value best_ = 0;
  bool best_dirty_ = false;   // re-broadcast needed
  NodeId parent_ = kNoNode;   // toward the leader
  std::vector<NodeId> children_;

  // Stage 2 state: records to push up; a record is (a, b) with a == b for
  // a node record and a < b for an edge record (identifier space).
  std::set<std::pair<Value, Value>> pending_up_;
  std::set<std::pair<Value, Value>> seen_up_;
  // Leader only: the collected component.
  std::set<Value> nodes_seen_;
  std::set<std::pair<Value, Value>> edges_seen_;

  // Stage 3 state: (id, bit) assignments to push down, and my own bit.
  std::vector<std::pair<Value, Value>> pending_down_;
  std::size_t next_down_ = 0;
  Value my_bit_ = kUndefined;
};

PhaseFactory make_congest_global_mis();
ProgramFactory congest_global_mis_algorithm();

}  // namespace dgap
