#include "mis/checkers.hpp"

#include <sstream>

#include "common/require.hpp"
#include "sim/phase.hpp"

namespace dgap {

bool mis_output_defined(Value v) {
  return v != kUndefined && v != kLeftoverActive;
}

std::string check_mis(const Graph& g, const std::vector<Value>& outputs) {
  DGAP_REQUIRE(outputs.size() == static_cast<std::size_t>(g.num_nodes()),
               "one output per node");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!mis_output_defined(outputs[v])) {
      std::ostringstream os;
      os << "node " << v << " has no output";
      return os.str();
    }
    if (outputs[v] != 0 && outputs[v] != 1) {
      std::ostringstream os;
      os << "node " << v << " output " << outputs[v] << " is not a bit";
      return os.str();
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (outputs[v] == 1) {
      for (NodeId u : g.neighbors(v)) {
        if (outputs[u] == 1) {
          std::ostringstream os;
          os << "adjacent nodes " << v << " and " << u << " both output 1";
          return os.str();
        }
      }
    } else {
      bool covered = false;
      for (NodeId u : g.neighbors(v)) {
        if (outputs[u] == 1) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        std::ostringstream os;
        os << "node " << v << " outputs 0 but has no neighbor in the set";
        return os.str();
      }
    }
  }
  return {};
}

bool is_valid_mis(const Graph& g, const std::vector<Value>& outputs) {
  return check_mis(g, outputs).empty();
}

bool is_consistent_partial_mis(const Graph& g,
                               const std::vector<Value>& outputs) {
  DGAP_REQUIRE(outputs.size() == static_cast<std::size_t>(g.num_nodes()),
               "one output per node");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!mis_output_defined(outputs[v])) continue;
    if (outputs[v] == 1) {
      for (NodeId u : g.neighbors(v)) {
        if (mis_output_defined(outputs[u]) && outputs[u] == 1) return false;
      }
    } else if (outputs[v] == 0) {
      bool covered = false;
      for (NodeId u : g.neighbors(v)) {
        if (mis_output_defined(outputs[u]) && outputs[u] == 1) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    } else {
      return false;
    }
  }
  return true;
}

bool is_extendable_partial_mis(const Graph& g,
                               const std::vector<Value>& outputs) {
  DGAP_REQUIRE(outputs.size() == static_cast<std::size_t>(g.num_nodes()),
               "one output per node");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!mis_output_defined(outputs[v])) continue;
    if (outputs[v] == 1) {
      for (NodeId u : g.neighbors(v)) {
        if (!mis_output_defined(outputs[u]) || outputs[u] != 0) return false;
      }
    } else if (outputs[v] == 0) {
      bool covered = false;
      for (NodeId u : g.neighbors(v)) {
        if (mis_output_defined(outputs[u]) && outputs[u] == 1) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    } else {
      return false;  // not a bit
    }
  }
  return true;
}

}  // namespace dgap
