#include "mis/congest_global.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace dgap {

int congest_global_record_stride(int link_budget) {
  if (link_budget <= 0) return 1;  // unenforced: every round is a send slot
  return (2 + link_budget - 1) / link_budget;  // ceil(record width / B)
}

std::int64_t congest_global_stage1_rounds(NodeId n, int /*link_budget*/) {
  // Single-word messages never defer (budgets are >= 1 word).
  return static_cast<std::int64_t>(n) + 1;
}

std::int64_t congest_global_stage2_rounds(NodeId n, int link_budget) {
  const auto n64 = static_cast<std::int64_t>(n);
  return congest_global_record_stride(link_budget) * n64 * n64;
}

std::int64_t congest_global_stage3_rounds(NodeId n, int link_budget) {
  const auto n64 = static_cast<std::int64_t>(n);
  return congest_global_record_stride(link_budget) * (2 * n64 + 2);
}

std::int64_t congest_global_total_rounds(NodeId n, int link_budget) {
  return congest_global_stage1_rounds(n, link_budget) +
         congest_global_stage2_rounds(n, link_budget) +
         congest_global_stage3_rounds(n, link_budget);
}

void CongestGlobalMisPhase::ensure_init(NodeContext& ctx) {
  if (init_) return;
  best_ = ctx.id();
  best_dirty_ = true;
  init_ = true;
}

void CongestGlobalMisPhase::on_send(NodeContext& ctx, Channel& ch) {
  ensure_init(ctx);
  const NodeId n = ctx.n();
  const int budget = ctx.link_budget();
  const std::int64_t round = step_ + 1;
  const std::int64_t b1 = congest_global_stage1_rounds(n, budget);
  const std::int64_t b2 = congest_global_stage2_rounds(n, budget);
  // Under deferral with B < 2, a 2-word record needs `stride` rounds on a
  // link; sending only on stride boundaries keeps every link drained by
  // its next send slot, so records arrive in order and within the stage.
  const int stride = congest_global_record_stride(budget);
  if (round < b1) {
    // Flood the minimum identifier (1 word, only when it improved).
    if (best_dirty_) {
      ch.broadcast({best_});
      best_dirty_ = false;
    }
  } else if (round == b1) {
    // Parent notification: tell the BFS parent it has this child.
    if (parent_ != kNoNode) ch.send(parent_, {0});
  } else if (round <= b1 + b2) {
    // Convergecast: one 2-word record per send slot toward the leader.
    if ((round - (b1 + 1)) % stride != 0) return;
    if (parent_ != kNoNode && !pending_up_.empty()) {
      auto it = pending_up_.begin();
      ch.send(parent_, {it->first, it->second});
      pending_up_.erase(it);
    }
  } else {
    // Downcast: the leader (then every inner node) forwards one (id, bit)
    // assignment per round to all its children.
    if (best_ == ctx.id() && my_bit_ == kUndefined) {
      // Leader: solve greedily by ascending identifier on the collected
      // component before the first downcast send.
      std::vector<Value> ids(nodes_seen_.begin(), nodes_seen_.end());
      std::set<Value> chosen;
      for (Value v : ids) {
        bool blocked = false;
        for (Value u : ids) {
          if (chosen.count(u) &&
              (edges_seen_.count({std::min(u, v), std::max(u, v)}) > 0) &&
              u != v) {
            blocked = true;
            break;
          }
        }
        if (!blocked) chosen.insert(v);
      }
      for (Value v : ids) {
        pending_down_.emplace_back(v, chosen.count(v) ? 1 : 0);
        if (v == ctx.id()) my_bit_ = chosen.count(v) ? 1 : 0;
      }
      DGAP_ASSERT(my_bit_ != kUndefined, "leader must assign itself");
    }
    if ((round - (b1 + b2 + 1)) % stride != 0) return;
    if (next_down_ < pending_down_.size()) {
      const auto [id, bit] = pending_down_[next_down_++];
      for (NodeId child : children_) ch.send(child, {id, bit});
    }
  }
}

PhaseProgram::Status CongestGlobalMisPhase::on_receive(NodeContext& ctx,
                                                       Channel& ch) {
  ensure_init(ctx);
  const NodeId n = ctx.n();
  const int budget = ctx.link_budget();
  ++step_;
  const std::int64_t round = step_;
  const std::int64_t b1 = congest_global_stage1_rounds(n, budget);
  const std::int64_t b2 = congest_global_stage2_rounds(n, budget);
  const std::int64_t total = congest_global_total_rounds(n, budget);

  auto absorb_record = [this](Value a, Value b) {
    if (a == b) {
      nodes_seen_.insert(a);
    } else {
      edges_seen_.insert({std::min(a, b), std::max(a, b)});
    }
  };

  if (round < b1) {
    for (const Message* m : ch.inbox()) {
      const Value w = m->words.at(0);
      if (w < best_) {
        best_ = w;
        parent_ = m->from;
        best_dirty_ = true;
      }
    }
  } else if (round == b1) {
    for (const Message* m : ch.inbox()) children_.push_back(m->from);
    // Seed the convergecast with this node's own view of the remaining
    // graph: itself plus its incident (active) edges.
    const bool leader = (best_ == ctx.id());
    auto seed = [&](Value a, Value b) {
      const auto rec = std::make_pair(std::min(a, b), std::max(a, b));
      if (!seen_up_.insert(rec).second) return;
      if (leader) {
        absorb_record(rec.first, rec.second);
      } else {
        pending_up_.insert(rec);
      }
    };
    seed(ctx.id(), ctx.id());
    for (NodeId u : ctx.active_neighbors()) {
      seed(ctx.id(), ctx.neighbor_id(u));
    }
  } else if (round <= b1 + b2) {
    const bool leader = (best_ == ctx.id());
    for (const Message* m : ch.inbox()) {
      const Value a = m->words.at(0);
      const Value b = m->words.at(1);
      const auto rec = std::make_pair(a, b);
      if (!seen_up_.insert(rec).second) continue;
      if (leader) {
        absorb_record(a, b);
      } else {
        pending_up_.insert(rec);
      }
    }
  } else {
    for (const Message* m : ch.inbox()) {
      const Value id = m->words.at(0);
      const Value bit = m->words.at(1);
      if (id == ctx.id()) my_bit_ = bit;
      pending_down_.emplace_back(id, bit);
    }
    if (round >= total) {
      DGAP_ASSERT(my_bit_ != kUndefined,
                  "every node must receive its assignment by schedule end");
      ctx.set_output(my_bit_);
      ctx.terminate();
      return Status::kFinished;
    }
  }
  return Status::kRunning;
}

PhaseFactory make_congest_global_mis() {
  return [](NodeId) { return std::make_unique<CongestGlobalMisPhase>(); };
}

ProgramFactory congest_global_mis_algorithm() {
  return phase_as_algorithm(make_congest_global_mis());
}

}  // namespace dgap
