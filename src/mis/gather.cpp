#include "mis/gather.hpp"

#include <algorithm>
#include <queue>

#include "common/require.hpp"
#include "common/math_util.hpp"

namespace dgap {

int gather_phase_rounds(int i) {
  DGAP_REQUIRE(i >= 0 && i < 31, "phase index out of range");
  return 1 << i;
}

int gather_phase_count(NodeId n) {
  // The radius must reach n - 1 >= any component diameter.
  int m = 1;
  while (gather_phase_rounds(m - 1) < n - 1) ++m;
  return m;
}

int mis_gather_total_rounds(NodeId n) {
  int total = 0;
  const int m = gather_phase_count(n);
  for (int i = 0; i < m; ++i) total += gather_phase_rounds(i);
  return total;
}

MisGatherPhase::MisGatherPhase(int radius) : radius_(radius) {
  DGAP_REQUIRE(radius >= 1, "gather radius must be positive");
}

bool MisGatherPhase::knows(Value id) const {
  auto it = std::lower_bound(
      records_.begin(), records_.end(), id,
      [](const Record& r, Value want) { return r.id < want; });
  return it != records_.end() && it->id == id;
}

void MisGatherPhase::absorb(WordSpan words) {
  std::size_t pos = 0;
  while (pos < words.size()) {
    DGAP_ASSERT(pos + 2 <= words.size(), "truncated gather record");
    Record rec;
    rec.id = words[pos++];
    const auto k = static_cast<std::size_t>(words[pos++]);
    DGAP_ASSERT(pos + k <= words.size(), "truncated gather record body");
    rec.neighbor_ids.assign(words.begin() + static_cast<std::ptrdiff_t>(pos),
                            words.begin() + static_cast<std::ptrdiff_t>(pos + k));
    pos += k;
    if (!knows(rec.id)) {
      fresh_.push_back(rec.id);
      records_.insert(
          std::lower_bound(records_.begin(), records_.end(), rec.id,
                           [](const Record& r, Value want) {
                             return r.id < want;
                           }),
          std::move(rec));
    }
  }
}

bool MisGatherPhase::component_closed() const {
  for (const Record& r : records_) {
    for (Value nb : r.neighbor_ids) {
      if (!knows(nb)) return false;
    }
  }
  return true;
}

void MisGatherPhase::decide(NodeContext& ctx) {
  if (!component_closed()) return;
  // Build the collected component; indices follow records_ order (by id).
  const std::size_t k = records_.size();
  std::vector<std::vector<std::size_t>> adj(k);
  auto index_of = [&](Value id) {
    auto it = std::lower_bound(
        records_.begin(), records_.end(), id,
        [](const Record& r, Value want) { return r.id < want; });
    return static_cast<std::size_t>(it - records_.begin());
  };
  for (std::size_t i = 0; i < k; ++i) {
    for (Value nb : records_[i].neighbor_ids) adj[i].push_back(index_of(nb));
  }
  // Diameter check: every node of the component must also have gathered it.
  int diam = 0;
  for (std::size_t s = 0; s < k; ++s) {
    std::vector<int> dist(k, -1);
    std::queue<std::size_t> q;
    dist[s] = 0;
    q.push(s);
    while (!q.empty()) {
      std::size_t v = q.front();
      q.pop();
      for (std::size_t u : adj[v]) {
        if (dist[u] == -1) {
          dist[u] = dist[v] + 1;
          q.push(u);
        }
      }
    }
    for (int dv : dist) {
      DGAP_ASSERT(dv >= 0, "closed component must be connected");
      diam = std::max(diam, dv);
    }
  }
  if (diam > radius_) return;  // peers may not have the full picture yet
  // Deterministic local solve: greedy MIS in ascending identifier order.
  std::vector<bool> chosen(k, false), blocked(k, false);
  for (std::size_t v = 0; v < k; ++v) {  // records_ sorted by id
    if (blocked[v]) continue;
    chosen[v] = true;
    for (std::size_t u : adj[v]) blocked[u] = true;
  }
  const std::size_t self = index_of(ctx.id());
  ctx.set_output(chosen[self] ? 1 : 0);
  ctx.terminate();
}

void MisGatherPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) {
    // Phase start: snapshot the remaining graph's adjacency at this node.
    Record self;
    self.id = ctx.id();
    for (NodeId u : ctx.active_neighbors()) {
      self.neighbor_ids.push_back(ctx.neighbor_id(u));
    }
    records_.push_back(std::move(self));
    fresh_.push_back(ctx.id());
  }
  if (fresh_.empty()) return;
  std::vector<Value> words;
  for (Value id : fresh_) {
    auto it = std::lower_bound(
        records_.begin(), records_.end(), id,
        [](const Record& r, Value want) { return r.id < want; });
    DGAP_ASSERT(it != records_.end() && it->id == id, "fresh id unknown");
    words.push_back(it->id);
    words.push_back(static_cast<Value>(it->neighbor_ids.size()));
    words.insert(words.end(), it->neighbor_ids.begin(),
                 it->neighbor_ids.end());
  }
  fresh_.clear();
  ch.broadcast(words);
}

PhaseProgram::Status MisGatherPhase::on_receive(NodeContext& ctx,
                                                Channel& ch) {
  ++step_;
  for (const Message* m : ch.inbox()) absorb(m->words);
  if (step_ >= radius_) {
    decide(ctx);
    return Status::kFinished;
  }
  return Status::kRunning;
}

namespace {

/// Runs gather phases with doubling radii until the node terminates.
class FullGatherPhase final : public PhaseProgram {
 public:
  FullGatherPhase() : current_(std::make_unique<MisGatherPhase>(1)) {}

  void on_send(NodeContext& ctx, Channel& ch) override {
    current_->on_send(ctx, ch);
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    if (current_->on_receive(ctx, ch) == Status::kFinished &&
        !ctx.terminated()) {
      ++phase_index_;
      current_ =
          std::make_unique<MisGatherPhase>(gather_phase_rounds(phase_index_));
    }
    return Status::kRunning;  // ends only by terminating the node
  }

 private:
  int phase_index_ = 0;
  std::unique_ptr<MisGatherPhase> current_;
};

}  // namespace

PhaseFactory make_mis_gather_full() {
  return [](NodeId) { return std::make_unique<FullGatherPhase>(); };
}

PhaseFactory make_mis_gather_phase(int i) {
  return [i](NodeId) {
    return std::make_unique<MisGatherPhase>(gather_phase_rounds(i));
  };
}

ProgramFactory mis_gather_algorithm() {
  return phase_as_algorithm(make_mis_gather_full());
}

}  // namespace dgap
