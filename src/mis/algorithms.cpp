#include "mis/algorithms.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace dgap {

namespace {

/// True iff some (terminated) neighbor of this node has output 1.
bool sees_mis_neighbor(const NodeContext& ctx) {
  for (NodeId u : ctx.neighbors()) {
    if (ctx.neighbor_output(u) == 1) return true;
  }
  return false;
}

/// True iff this node's identifier exceeds every active neighbor's.
bool is_local_max(const NodeContext& ctx) {
  for (NodeId u : ctx.active_neighbors()) {
    if (ctx.neighbor_id(u) > ctx.id()) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// MIS Base Algorithm (Section 4) — 3 rounds, pruning.
// ---------------------------------------------------------------------------

void MisBasePhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) ch.broadcast({ctx.prediction()});
}

PhaseProgram::Status MisBasePhase::on_receive(NodeContext& ctx, Channel& ch) {
  ++step_;
  switch (step_) {
    case 1: {
      // I = nodes predicting 1 all of whose neighbors predict 0.
      bool all_zero = true;
      for (const Message* m : ch.inbox()) {
        if (m->words.at(0) != 0) all_zero = false;
      }
      in_set_ = (ctx.prediction() == 1) && all_zero;
      return Status::kRunning;
    }
    case 2:
      if (in_set_) {
        ctx.set_output(1);
        ctx.terminate();
      }
      return Status::kRunning;
    case 3:
      if (sees_mis_neighbor(ctx)) {
        ctx.set_output(0);
        ctx.terminate();
      }
      return Status::kFinished;
    default:
      DGAP_ASSERT(false, "base algorithm ran past its 3 rounds");
      return Status::kFinished;
  }
}

// ---------------------------------------------------------------------------
// MIS Initialization Algorithm (Section 4) — reasonable initialization.
// ---------------------------------------------------------------------------

void MisInitPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) ch.broadcast({ctx.prediction()});
}

PhaseProgram::Status MisInitPhase::on_receive(NodeContext& ctx, Channel& ch) {
  ++step_;
  switch (step_) {
    case 1: {
      // I = nodes predicting 1 whose prediction-1 neighbors all have
      // smaller identifiers.
      bool dominated = false;
      for (const Message* m : ch.inbox()) {
        if (m->words.at(0) == 1 && ctx.neighbor_id(m->from) > ctx.id()) {
          dominated = true;
        }
      }
      in_set_ = (ctx.prediction() == 1) && !dominated;
      return Status::kRunning;
    }
    case 2:
      if (in_set_) {
        ctx.set_output(1);
        ctx.terminate();
      }
      return Status::kRunning;
    case 3:
      if (sees_mis_neighbor(ctx)) {
        ctx.set_output(0);
        ctx.terminate();
      }
      return Status::kFinished;
    default:
      DGAP_ASSERT(false, "initialization ran past its 3 rounds");
      return Status::kFinished;
  }
}

// ---------------------------------------------------------------------------
// Greedy MIS (Algorithm 1) — measure-uniform w.r.t. μ1 and μ2.
// ---------------------------------------------------------------------------

void GreedyMisPhase::on_send(NodeContext&, Channel&) {
  // All signalling flows through the runtime's termination notices.
}

PhaseProgram::Status GreedyMisPhase::on_receive(NodeContext& ctx, Channel&) {
  if (first_round_ < 0) first_round_ = ctx.round();
  if ((ctx.round() - first_round_) % 2 == 0) {
    // Select round: local maxima join the independent set. The extendable-
    // partial invariant guarantees no active node has an output-1 neighbor
    // here; composition must preserve it (clean-up runs beforehand).
    DGAP_ASSERT(!sees_mis_neighbor(ctx),
                "greedy MIS invariant: covered nodes must be cleaned up "
                "before a select round");
    if (is_local_max(ctx)) {
      ctx.set_output(1);
      ctx.terminate();
      return Status::kRunning;
    }
  } else {
    // Remove round: neighbors of fresh winners leave with output 0.
    if (sees_mis_neighbor(ctx)) {
      ctx.set_output(0);
      ctx.terminate();
      return Status::kRunning;
    }
  }
  // No decision is possible until a neighbor terminates: a node joins when
  // its higher-identifier neighbors are gone and leaves when a neighbor
  // wins, and both are changes the engine wakes it for. Finishes only by
  // terminating the node.
  return Status::kIdle;
}

// ---------------------------------------------------------------------------
// Clean-up (Section 7.2) — one round.
// ---------------------------------------------------------------------------

void MisCleanupPhase::on_send(NodeContext&, Channel&) {}

PhaseProgram::Status MisCleanupPhase::on_receive(NodeContext& ctx, Channel&) {
  if (sees_mis_neighbor(ctx)) {
    ctx.set_output(0);
    ctx.terminate();
  }
  return Status::kFinished;
}

// ---------------------------------------------------------------------------
// Coloring → MIS (part 2 of Corollary 12's reference algorithm).
// ---------------------------------------------------------------------------

ColorToMisPhase::ColorToMisPhase(Value palette, OwnColorFn own_color,
                                 NeighborColorFn neighbor_color)
    : palette_(palette), own_color_(std::move(own_color)),
      neighbor_color_(std::move(neighbor_color)) {
  DGAP_REQUIRE(palette_ >= 1, "palette must be positive");
}

void ColorToMisPhase::on_send(NodeContext&, Channel&) {}

PhaseProgram::Status ColorToMisPhase::on_receive(NodeContext& ctx, Channel&) {
  ++step_;
  // Nodes adjacent to a fresh winner leave first.
  if (sees_mis_neighbor(ctx)) {
    ctx.set_output(0);
    ctx.terminate();
    return Status::kRunning;
  }
  const Value c = own_color_();
  DGAP_ASSERT(c >= 1 && c <= palette_, "part 2 needs a final palette color");
  if (c == step_) {
    ctx.set_output(1);
    ctx.terminate();
    return Status::kRunning;
  }
  // Greedy augmentation (Corollary 12): a local-max node with no active
  // neighbor of the current color joins early, so that the independent set
  // grows at least every other round (steady progress w.r.t. μ2).
  if (c > step_ && is_local_max(ctx)) {
    bool neighbor_has_current_color = false;
    for (NodeId u : ctx.active_neighbors()) {
      if (neighbor_color_(u) == step_) {
        neighbor_has_current_color = true;
        break;
      }
    }
    if (!neighbor_has_current_color) {
      ctx.set_output(1);
      ctx.terminate();
      return Status::kRunning;
    }
  }
  // One extra round past the palette lets the final losers drain.
  return step_ >= palette_ + 1 ? Status::kFinished : Status::kRunning;
}

// ---------------------------------------------------------------------------
// Factories.
// ---------------------------------------------------------------------------

std::vector<Value> mis_init_default() { return {0}; }

PhaseFactory make_mis_base() {
  return [](NodeId) { return std::make_unique<MisBasePhase>(); };
}

PhaseFactory make_mis_init() {
  return [](NodeId) { return std::make_unique<MisInitPhase>(); };
}

PhaseFactory make_greedy_mis() {
  return [](NodeId) { return std::make_unique<GreedyMisPhase>(); };
}

PhaseFactory make_mis_cleanup() {
  return [](NodeId) { return std::make_unique<MisCleanupPhase>(); };
}

ProgramFactory greedy_mis_algorithm() {
  return phase_as_algorithm(make_greedy_mis());
}

}  // namespace dgap
