// Doubling-radius gather-and-solve reference algorithm for MIS.
//
// This is the repo's stand-in for the clustering-based reference of
// Corollary 10 (see DESIGN.md §2 for the substitution rationale). It is a
// LOCAL-model algorithm organized in phases: in phase i every active node
// floods adjacency records for radius 2^i rounds; a node that has collected
// its entire remaining component — and can verify that the component's
// diameter is at most the phase radius, so every other node in the
// component has collected it too — solves MIS on the component locally with
// a deterministic rule and outputs its own bit. All nodes of such a
// component decide in the same round, so the partial solution at the end of
// every phase is extendable (whole components are either fully decided or
// untouched).
//
// Per-phase round budget: gather_phase_rounds(i) = 2^i + 1, known to every
// node; the total bound mis_gather_total_rounds(n) — the sum until the
// radius reaches n — is what the Consecutive template uses as r(n, Δ, d).
#pragma once

#include "sim/phase.hpp"

namespace dgap {

/// Rounds of phase i (i >= 0): 2^i flooding rounds plus one decide round.
int gather_phase_rounds(int i);

/// Number of phases needed in the worst case for an n-node graph (the
/// radius must reach n-1).
int gather_phase_count(NodeId n);

/// Worst-case total rounds of the full gather reference on n nodes.
int mis_gather_total_rounds(NodeId n);

/// One gather phase with the given radius.
class MisGatherPhase final : public PhaseProgram {
 public:
  explicit MisGatherPhase(int radius);

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  struct Record {
    Value id = 0;
    std::vector<Value> neighbor_ids;
  };

  void absorb(WordSpan words);
  bool knows(Value id) const;
  bool component_closed() const;
  void decide(NodeContext& ctx);

  int radius_;
  int step_ = 0;
  std::vector<Record> records_;       // sorted by id
  std::vector<Value> fresh_;          // ids learned last round, to forward
};

/// The complete reference algorithm: phases i = 0, 1, 2, ... until solved.
/// Every node terminates after at most mis_gather_total_rounds(n) rounds.
PhaseFactory make_mis_gather_full();

/// A single phase (radius 2^i), for the Interleaved template's schedule.
PhaseFactory make_mis_gather_phase(int i);

ProgramFactory mis_gather_algorithm();

}  // namespace dgap
