// MIS building blocks (Sections 4, 6 and 7.4 of the paper).
//
//  * MisBasePhase          — the MIS Base Algorithm: the pruning algorithm
//                            that defines the problem's error components.
//  * MisInitPhase          — the MIS Initialization Algorithm (reasonable
//                            initialization; I = prediction-1 nodes whose
//                            prediction-1 neighbors all have smaller ids).
//  * GreedyMisPhase        — Algorithm 1, the measure-uniform algorithm
//                            with round complexity ≤ μ1 and ≤ μ2 + 1.
//  * MisCleanupPhase       — the one-round clean-up algorithm.
//  * ColorToMisPhase       — part 2 of Corollary 12's reference algorithm:
//                            turns a proper coloring into an MIS, one color
//                            class per round, augmented with the greedy
//                            local-max rule so that it makes steady
//                            progress with respect to μ2.
//
// All phases rely on the runtime's termination-notification convention:
// a terminated neighbor disappears from active_neighbors() and its output
// becomes readable the following round.
#pragma once

#include <functional>
#include <vector>

#include "sim/phase.hpp"

namespace dgap {

/// Fixed round counts (used by schedules and consistency assertions).
inline constexpr int kMisBaseRounds = 3;
inline constexpr int kMisInitRounds = 3;
inline constexpr int kMisCleanupRounds = 1;

/// The init/base phases' step-0 broadcast from a node predicted out of the
/// set ({0}) — the dominant payload under sparse predictions, and the
/// default message the message-reduction pass (sim/compile.hpp) decodes
/// from silence in the compiled template assemblies.
std::vector<Value> mis_init_default();

class MisBasePhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  int step_ = 0;
  bool in_set_ = false;
};

class MisInitPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  int step_ = 0;
  bool in_set_ = false;
};

class GreedyMisPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  // Parity anchor: the engine round of the first call. Rounds at the
  // anchor's parity select (local maxima join), the others remove (covered
  // nodes leave). Keyed to the global round rather than a call counter so
  // the phase can idle between events — skipped calls cannot drift the
  // schedule, and under composition (called every round from a lockstep
  // start) the behavior is identical to a call counter.
  int first_round_ = -1;
};

class MisCleanupPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;
};

/// Part 2 of the Parallel-template reference for MIS. Consumes the color
/// computed by part 1 via accessor callbacks (our own final color, and the
/// final color of each neighbor as recorded during part 1).
class ColorToMisPhase final : public PhaseProgram {
 public:
  using OwnColorFn = std::function<Value()>;
  using NeighborColorFn = std::function<Value(NodeId)>;

  /// `palette` = number of colors (Δ+1 for the Corollary 12 reference).
  ColorToMisPhase(Value palette, OwnColorFn own_color,
                  NeighborColorFn neighbor_color);

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  Value palette_;
  OwnColorFn own_color_;
  NeighborColorFn neighbor_color_;
  int step_ = 0;
};

/// Factory helpers.
PhaseFactory make_mis_base();
PhaseFactory make_mis_init();
PhaseFactory make_greedy_mis();
PhaseFactory make_mis_cleanup();

/// Complete algorithms (for standalone runs in tests/benches).

/// Greedy MIS as an algorithm without predictions (Section 6).
ProgramFactory greedy_mis_algorithm();

}  // namespace dgap
