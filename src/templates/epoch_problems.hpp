// Epoch-harness problem packages for the three node-output problems.
//
// Each package plugs a Simple-template assembly into the EpochHarness
// (sim/epoch.hpp): the template factory, the problem kind, the neutral
// PredictionProvider (what the from-scratch control runs with; the
// harness derives warm starts itself via warm_start_provider), the η1
// error measure, the concrete per-epoch degradation bound from
// docs/ALGORITHMS.md, and the validity checker.
// The Simple variants are used because their round complexity is O(η)
// with explicit constants — exactly the quantity warm-starting improves —
// so the churn sweep can assert the bound per epoch, not just on average.
#pragma once

#include "sim/epoch.hpp"

namespace dgap {

/// mis_simple_greedy: rounds ≤ η1 + 3; scratch = all-0 (nobody claims
/// membership — maximally uninformative, η1 = largest component).
EpochProblem epoch_mis();

/// matching_simple_greedy: rounds ≤ 3⌊η1/2⌋ + 3; scratch = all-⊥.
EpochProblem epoch_matching();

/// coloring_simple_greedy: rounds ≤ η1 + 2; scratch = all-0 ("no color",
/// outside every palette, so every node starts active).
EpochProblem epoch_coloring();

}  // namespace dgap
