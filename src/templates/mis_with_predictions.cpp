#include "templates/mis_with_predictions.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"
#include "coloring/linial.hpp"
#include "mis/algorithms.hpp"
#include "mis/congest_global.hpp"
#include "mis/gather.hpp"
#include "random/luby.hpp"
#include "sim/compile.hpp"
#include "tree/algorithms.hpp"
#include "tree/gps.hpp"

namespace dgap {

namespace {

/// Interleaved schedule for the gather reference: phase i (1-based) has an
/// even budget 2^i, which is also the gather radius.
int interleave_budget(int phase, NodeId, int, std::int64_t) {
  DGAP_REQUIRE(phase >= 1 && phase < 31, "phase index out of range");
  return 1 << phase;
}

int interleave_count(NodeId n, int, std::int64_t) {
  int m = 1;
  while ((1 << m) < std::max<NodeId>(n - 1, 1)) ++m;
  return m;
}

TwoPartFactory linial_two_part_reference(bool kw = false) {
  return [kw](NodeId) {
    TwoPartReference ref;
    auto part1 = std::make_unique<LinialColoringPhase>(
        LinialOptions{.respect_terminated_outputs = false,
                      .kw_reduction = kw});
    LinialColoringPhase* raw = part1.get();
    ref.part1 = std::move(part1);
    ref.make_part2 = [raw](const NodeContext& ctx) {
      return std::make_unique<ColorToMisPhase>(
          static_cast<Value>(ctx.delta() + 1),
          [raw] { return raw->palette_color(); },
          [raw](NodeId u) { return raw->neighbor_palette_color(u); });
    };
    return ref;
  };
}

TwoPartFactory gps_two_part_reference(const RootedTree& tree) {
  auto parents = tree.parent;
  return [parents](NodeId node) {
    TwoPartReference ref;
    auto part1 = std::make_unique<GpsColoringPhase>(
        parents[static_cast<std::size_t>(node)]);
    GpsColoringPhase* raw = part1.get();
    ref.part1 = std::move(part1);
    ref.make_part2 = [raw](const NodeContext&) {
      return std::make_unique<TreeColorToMisPhase>(
          [raw] { return raw->color(); });
    };
    return ref;
  };
}

}  // namespace

ProgramFactory mis_simple_greedy() {
  // The init phase's prediction broadcast (step 0 only) overwhelmingly
  // carries {0} under sparse predictions; declaring it lets the
  // message-reduction pass (sim/compile.hpp) decode the common case from
  // silence. Inert unless EngineOptions::compile.decode_defaults is set,
  // so this single assembly serves compiled and uncompiled runs.
  return simple_template(
      compile_phase(make_mis_init(),
                    {.default_words = mis_init_default(),
                     .default_first_round_only = true}),
      make_greedy_mis());
}

ProgramFactory mis_simple_luby(std::uint64_t seed) {
  return simple_template(make_mis_init(), make_luby_mis(seed));
}

ProgramFactory mis_simple_linial() {
  return simple_template(make_mis_init(), make_linial_mis_reference());
}

ProgramFactory mis_consecutive_gather() {
  return consecutive_template(
      make_mis_init(), make_greedy_mis(), make_mis_cleanup(),
      make_mis_gather_full(), [](NodeId n, int, std::int64_t) {
        // r(n) + c'(n), per Lemma 8.
        return mis_gather_total_rounds(n) + kMisCleanupRounds;
      });
}

ProgramFactory mis_consecutive_linial_lambda(int lambda_num, int lambda_den) {
  DGAP_REQUIRE(lambda_num >= 0 && lambda_den >= 1, "bad lambda");
  return consecutive_template(
      make_mis_init(), make_greedy_mis(), make_mis_cleanup(),
      make_linial_mis_reference(),
      [lambda_num, lambda_den](NodeId, int delta, std::int64_t d) {
        const int r = linial_mis_total_rounds(d, delta) + kMisCleanupRounds;
        return static_cast<int>(
            (static_cast<std::int64_t>(r) * lambda_num) / lambda_den);
      });
}

ProgramFactory mis_consecutive_congest() {
  return consecutive_template(
      make_mis_init(), make_greedy_mis(), make_mis_cleanup(),
      make_congest_global_mis(), [](NodeId n, int, std::int64_t) {
        // Nominal (unenforced) budget: small-n schedules fit in int.
        return static_cast<int>(congest_global_total_rounds(n)) +
               kMisCleanupRounds;
      });
}

ProgramFactory mis_consecutive_linial() {
  return consecutive_template(
      make_mis_init(), make_greedy_mis(), make_mis_cleanup(),
      make_linial_mis_reference(), [](NodeId, int delta, std::int64_t d) {
        return linial_mis_total_rounds(d, delta) + kMisCleanupRounds;
      });
}

ProgramFactory mis_interleaved_gather() {
  InterleavedConfig cfg;
  cfg.init = make_mis_init();
  cfg.uniform = make_greedy_mis();
  cfg.reference_phase = [](int phase, NodeId node) {
    return make_mis_gather_phase(phase)(node);
  };
  cfg.phase_budget = interleave_budget;
  cfg.phase_count = interleave_count;
  return interleaved_template(std::move(cfg));
}

ProgramFactory mis_parallel_linial() {
  ParallelConfig cfg;
  cfg.init = make_mis_init();
  cfg.uniform = make_greedy_mis();
  cfg.reference = linial_two_part_reference();
  cfg.part1_budget = [](NodeId, int delta, std::int64_t d) {
    return linial_total_rounds(d, delta);
  };
  cfg.cleanup = nullptr;  // even budget: the Greedy partial is extendable
  return parallel_template(std::move(cfg));
}

// ---------------------------------------------------------------------------
// Section 9.1: black/white alternating Greedy MIS.
// ---------------------------------------------------------------------------

bool BwGreedyMisPhase::my_turn(const NodeContext& ctx) const {
  // Blocks of two rounds, blacks first: block b handles color (b mod 2).
  const int block = (step_ - 1) / 2;
  const bool black_block = (block % 2 == 0);
  const bool i_am_black = (ctx.prediction() == 1);
  return black_block == i_am_black;
}

void BwGreedyMisPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) ch.broadcast({ctx.prediction()});
}

PhaseProgram::Status BwGreedyMisPhase::on_receive(NodeContext& ctx,
                                                  Channel& ch) {
  if (step_ == 0) {
    for (const Message* m : ch.inbox()) {
      neighbor_predictions_.emplace_back(m->from, m->words.at(0));
    }
    std::sort(neighbor_predictions_.begin(), neighbor_predictions_.end());
    ++step_;
    return Status::kRunning;
  }
  const int inner = step_ % 2;  // 1 = select, 0 = remove
  ++step_;
  if (inner == 1) {
    if (!my_turn(ctx)) return Status::kRunning;
    // Local max among active neighbors with MY prediction color.
    bool covered = false;
    for (NodeId u : ctx.neighbors()) {
      if (ctx.neighbor_output(u) == 1) covered = true;
    }
    if (covered) return Status::kRunning;  // handled next (even) round
    for (NodeId u : ctx.active_neighbors()) {
      auto it = std::lower_bound(
          neighbor_predictions_.begin(), neighbor_predictions_.end(),
          std::make_pair(u, std::numeric_limits<Value>::min()));
      const Value up =
          (it != neighbor_predictions_.end() && it->first == u) ? it->second
                                                                : 0;
      const bool same_color = (up == 1) == (ctx.prediction() == 1);
      if (same_color && ctx.neighbor_id(u) > ctx.id()) return Status::kRunning;
    }
    ctx.set_output(1);
    ctx.terminate();
  } else {
    for (NodeId u : ctx.neighbors()) {
      if (ctx.neighbor_output(u) == 1) {
        ctx.set_output(0);
        ctx.terminate();
        break;
      }
    }
  }
  return Status::kRunning;
}

PhaseFactory make_bw_greedy_mis() {
  return [](NodeId) { return std::make_unique<BwGreedyMisPhase>(); };
}

ProgramFactory mis_simple_bw() {
  return simple_template(make_mis_init(), make_bw_greedy_mis());
}

ProgramFactory mis_parallel_linial_kw() {
  ParallelConfig cfg;
  cfg.init = make_mis_init();
  cfg.uniform = make_greedy_mis();
  cfg.reference = linial_two_part_reference(/*kw=*/true);
  cfg.part1_budget = [](NodeId, int delta, std::int64_t d) {
    return linial_total_rounds_kw(d, delta);
  };
  cfg.cleanup = nullptr;
  return parallel_template(std::move(cfg));
}

ProgramFactory mis_parallel_bw() {
  ParallelConfig cfg;
  cfg.init = make_mis_init();
  cfg.uniform = make_bw_greedy_mis();
  cfg.reference = linial_two_part_reference();
  cfg.part1_budget = [](NodeId, int delta, std::int64_t d) {
    return linial_total_rounds(d, delta);
  };
  // U_bw's extendable boundaries sit after its remove rounds (setup round
  // + an even number of block rounds puts an even cut mid-block), so a
  // clean-up round restores extendability at the stage switch.
  cfg.cleanup = make_mis_cleanup();
  return parallel_template(std::move(cfg));
}

// ---------------------------------------------------------------------------
// Section 9.2: rooted trees.
// ---------------------------------------------------------------------------

ProgramFactory tree_mis_simple(const RootedTree& tree) {
  return simple_template(make_tree_mis_init(tree),
                         make_tree_mis_uniform(tree));
}

ProgramFactory tree_mis_parallel(const RootedTree& tree) {
  ParallelConfig cfg;
  cfg.init = make_tree_mis_init(tree);
  cfg.uniform = make_tree_mis_uniform(tree);
  cfg.reference = gps_two_part_reference(tree);
  cfg.part1_budget = [](NodeId, int, std::int64_t d) {
    return gps_total_rounds(d);
  };
  cfg.cleanup = nullptr;  // Algorithm 6 partials are extendable on even cuts
  return parallel_template(std::move(cfg));
}

}  // namespace dgap
