// Ready-made MIS algorithms with predictions — the paper's worked examples.
//
//   mis_simple_greedy()      Observation 7's example: MIS Initialization
//                            Algorithm + Greedy MIS. Consistency 3; round
//                            complexity ≤ η1 + 3 and ≤ η2 + 4.
//   mis_simple_linial()      The second Simple-template example: the
//                            Linial-based reference as R (consistent, but
//                            O(Δ'² + log* d), not O(η)-degrading).
//   mis_consecutive_gather() Lemma 8's shape with the gather reference
//                            (r(n) ∈ O(n)): consistent, 2η-degrading,
//                            robust w.r.t. the gather reference.
//   mis_consecutive_linial() Same template, Linial reference
//                            (r ∈ O(Δ² + log* d)).
//   mis_interleaved_gather() Corollary 10's shape: U and the phase-
//                            decomposed gather reference interleaved.
//   mis_parallel_linial()    Corollary 12: consistency 3, round complexity
//                            min{η2 + 4, O(Δ² + log* d)}, η2-degrading.
//   mis_simple_bw()          Section 9.1: the black/white alternating
//                            measure-uniform algorithm U_bw after the
//                            initialization algorithm (η_bw-degrading).
//   tree_mis_simple(tree)    Section 9.2: Tree Initialization + Algorithm 6
//                            (round complexity ≤ ⌈ηt/2⌉ + 5).
//   tree_mis_parallel(tree)  Corollary 15: consistency 3, round complexity
//                            min{⌈ηt/2⌉ + 5, O(log* d)}.
#pragma once

#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "templates/templates.hpp"

namespace dgap {

ProgramFactory mis_simple_greedy();
/// Section 10's discussion: the Simple Template with Luby's randomized
/// MIS as the reference. Consistent; its EXPECTED rounds are governed by
/// the whole collection of error components (their number matters), not
/// by the max-based η1 — bench_luby measures the gap.
ProgramFactory mis_simple_luby(std::uint64_t seed);
ProgramFactory mis_simple_linial();
ProgramFactory mis_consecutive_gather();
/// Consecutive with the CONGEST universal reference (2-word messages,
/// O(n^2) bound) — the CONGEST counterpart of mis_consecutive_gather.
ProgramFactory mis_consecutive_congest();
ProgramFactory mis_consecutive_linial();
ProgramFactory mis_interleaved_gather();
ProgramFactory mis_parallel_linial();
/// Corollary 12 with the Kuhn-Wattenhofer reduction inside the reference:
/// robustness cap O(Δ log Δ + log* d) instead of O(Δ² + log* d).
ProgramFactory mis_parallel_linial_kw();
ProgramFactory mis_simple_bw();
/// Section 9.1's closing remark: U_bw "could be combined with a reference
/// algorithm, using whichever template is appropriate" — here the Parallel
/// template with the Linial reference: min{O(η_bw), O(Δ² + log* d)}.
ProgramFactory mis_parallel_bw();
ProgramFactory tree_mis_simple(const RootedTree& tree);
ProgramFactory tree_mis_parallel(const RootedTree& tree);

/// Section 9.1's U_bw: Greedy MIS alternating between black-node and
/// white-node sub-phases (one extra setup round to exchange predictions).
class BwGreedyMisPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  bool my_turn(const NodeContext& ctx) const;

  int step_ = 0;  // 0 = setup; then blocks of two rounds
  std::vector<std::pair<NodeId, Value>> neighbor_predictions_;
};

PhaseFactory make_bw_greedy_mis();

/// The Consecutive template's U-budget knob (experiment E14): run the
/// measure-uniform algorithm for lambda_num/lambda_den times the reference
/// bound before switching to the Linial reference. lambda = 1 reproduces
/// Lemma 8; smaller lambda trades degradation for earlier robustness. The
/// Linial reference is used because its bound O(Δ² + log* d) is typically
/// far below the measure-uniform worst case, so the robustness clause is
/// actually exercised.
ProgramFactory mis_consecutive_linial_lambda(int lambda_num, int lambda_den);

}  // namespace dgap
