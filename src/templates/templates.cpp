#include "templates/templates.hpp"

#include <utility>

#include "common/require.hpp"

namespace dgap {

namespace {

constexpr int kUniformChannel = 1;
constexpr int kReferenceChannel = 2;

// ---------------------------------------------------------------------------
// Simple Template.
// ---------------------------------------------------------------------------

class SimpleProgram final : public NodeProgram {
 public:
  SimpleProgram(std::unique_ptr<PhaseProgram> init,
                std::unique_ptr<PhaseProgram> reference)
      : init_(std::move(init)), reference_(std::move(reference)) {}

  void on_send(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    current().on_send(ctx, ch);
  }

  void on_receive(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    if (current().on_receive(ctx, ch) == PhaseProgram::Status::kFinished &&
        !in_reference_) {
      in_reference_ = true;
    }
  }

 private:
  PhaseProgram& current() { return in_reference_ ? *reference_ : *init_; }

  std::unique_ptr<PhaseProgram> init_;
  std::unique_ptr<PhaseProgram> reference_;
  bool in_reference_ = false;
};

// ---------------------------------------------------------------------------
// Consecutive Template.
// ---------------------------------------------------------------------------

class ConsecutiveProgram final : public NodeProgram {
 public:
  ConsecutiveProgram(std::unique_ptr<PhaseProgram> init,
                     std::unique_ptr<PhaseProgram> uniform,
                     std::unique_ptr<PhaseProgram> cleanup,
                     std::unique_ptr<PhaseProgram> reference,
                     ScheduleFn uniform_budget)
      : init_(std::move(init)), uniform_(std::move(uniform)),
        cleanup_(std::move(cleanup)), reference_(std::move(reference)),
        uniform_budget_(std::move(uniform_budget)) {}

  void on_send(NodeContext& ctx) override {
    ensure_budget(ctx);
    Channel ch(ctx, 0);
    switch (stage_) {
      case Stage::kInit: init_->on_send(ctx, ch); break;
      case Stage::kUniform: uniform_->on_send(ctx, ch); break;
      case Stage::kCleanup:
        if (cleanup_) cleanup_->on_send(ctx, ch);
        break;
      case Stage::kReference: reference_->on_send(ctx, ch); break;
    }
  }

  void on_receive(NodeContext& ctx) override {
    ensure_budget(ctx);
    Channel ch(ctx, 0);
    switch (stage_) {
      case Stage::kInit:
        if (init_->on_receive(ctx, ch) == PhaseProgram::Status::kFinished) {
          stage_ = budget_ > 0 ? Stage::kUniform
                               : (cleanup_ ? Stage::kCleanup
                                           : Stage::kReference);
        }
        break;
      case Stage::kUniform:
        uniform_->on_receive(ctx, ch);
        if (--budget_ <= 0) {
          stage_ = cleanup_ ? Stage::kCleanup : Stage::kReference;
        }
        break;
      case Stage::kCleanup:
        if (cleanup_->on_receive(ctx, ch) ==
            PhaseProgram::Status::kFinished) {
          stage_ = Stage::kReference;
        }
        break;
      case Stage::kReference:
        reference_->on_receive(ctx, ch);
        break;
    }
  }

 private:
  enum class Stage { kInit, kUniform, kCleanup, kReference };

  void ensure_budget(const NodeContext& ctx) {
    if (budget_ >= 0) return;
    budget_ = uniform_budget_(ctx.n(), ctx.delta(), ctx.d());
    DGAP_REQUIRE(budget_ >= 0, "uniform budget must be non-negative");
  }

  std::unique_ptr<PhaseProgram> init_;
  std::unique_ptr<PhaseProgram> uniform_;
  std::unique_ptr<PhaseProgram> cleanup_;  // may be null
  std::unique_ptr<PhaseProgram> reference_;
  ScheduleFn uniform_budget_;
  Stage stage_ = Stage::kInit;
  int budget_ = -1;
};

// ---------------------------------------------------------------------------
// Interleaved Template.
// ---------------------------------------------------------------------------

class InterleavedProgram final : public NodeProgram {
 public:
  InterleavedProgram(NodeId node, InterleavedConfig cfg)
      : node_(node), cfg_(std::move(cfg)), init_(cfg_.init(node)),
        uniform_(cfg_.uniform(node)) {
    DGAP_REQUIRE((cfg_.reference_phase != nullptr) !=
                     (cfg_.reference_persistent != nullptr),
                 "set exactly one of reference_phase / reference_persistent");
    if (cfg_.reference_persistent) {
      reference_segment_ = cfg_.reference_persistent(node);
    }
  }

  void on_send(NodeContext& ctx) override {
    ensure_schedule(ctx);
    Channel ch(ctx, 0);
    if (!init_done_) {
      init_->on_send(ctx, ch);
    } else if (in_uniform_segment()) {
      uniform_->on_send(ctx, ch);
    } else {
      reference_segment_->on_send(ctx, ch);
    }
  }

  void on_receive(NodeContext& ctx) override {
    ensure_schedule(ctx);
    Channel ch(ctx, 0);
    if (!init_done_) {
      if (init_->on_receive(ctx, ch) == PhaseProgram::Status::kFinished) {
        init_done_ = true;
        begin_segment();
      }
      return;
    }
    if (in_uniform_segment()) {
      uniform_->on_receive(ctx, ch);
    } else {
      reference_segment_->on_receive(ctx, ch);
    }
    if (--segment_left_ <= 0) advance_segment();
  }

 private:
  void ensure_schedule(const NodeContext& ctx) {
    if (phase_count_ >= 0) return;
    n_ = ctx.n();
    delta_ = ctx.delta();
    d_ = ctx.d();
    phase_count_ = cfg_.phase_count(n_, delta_, d_);
    DGAP_REQUIRE(phase_count_ >= 1, "interleaving needs at least one phase");
  }

  bool in_uniform_segment() const {
    // Past the last reference phase, the uniform algorithm runs forever as
    // a defensive fallback (a complete reference never lets this happen).
    return phase_ > phase_count_ || segment_is_uniform_;
  }

  void begin_segment() {
    segment_is_uniform_ = true;
    segment_left_ = cfg_.phase_budget(phase_, n_, delta_, d_);
    DGAP_REQUIRE(segment_left_ >= 1, "phase budgets must be positive");
  }

  void advance_segment() {
    if (phase_ > phase_count_) {  // fallback mode: keep running U
      segment_left_ = 2;
      return;
    }
    if (segment_is_uniform_) {
      segment_is_uniform_ = false;
      if (cfg_.reference_phase) {
        reference_segment_ = cfg_.reference_phase(phase_, node_);
      }  // persistent references resume where they left off
      segment_left_ = cfg_.phase_budget(phase_, n_, delta_, d_);
    } else {
      ++phase_;
      if (phase_ > phase_count_) {
        segment_is_uniform_ = true;
        segment_left_ = 2;
        return;
      }
      begin_segment();
    }
  }

  NodeId node_;
  InterleavedConfig cfg_;
  std::unique_ptr<PhaseProgram> init_;
  std::unique_ptr<PhaseProgram> uniform_;
  std::unique_ptr<PhaseProgram> reference_segment_;
  bool init_done_ = false;
  bool segment_is_uniform_ = true;
  int phase_ = 1;
  int phase_count_ = -1;
  int segment_left_ = 0;
  NodeId n_ = 0;
  int delta_ = 0;
  std::int64_t d_ = 0;
};

// ---------------------------------------------------------------------------
// Parallel Template.
// ---------------------------------------------------------------------------

class ParallelProgram final : public NodeProgram {
 public:
  ParallelProgram(NodeId node, ParallelConfig cfg)
      : cfg_(std::move(cfg)), init_(cfg_.init(node)),
        uniform_(cfg_.uniform(node)), reference_(cfg_.reference(node)) {}

  void on_send(NodeContext& ctx) override {
    ensure_budget(ctx);
    switch (stage_) {
      case Stage::kInit: {
        Channel ch(ctx, 0);
        init_->on_send(ctx, ch);
        break;
      }
      case Stage::kParallel: {
        Channel chu(ctx, kUniformChannel);
        Channel chr(ctx, kReferenceChannel);
        if (!part1_done_) reference_.part1->on_send(ctx, chr);
        uniform_->on_send(ctx, chu);
        break;
      }
      case Stage::kCleanup: {
        Channel ch(ctx, 0);
        if (cleanup_) cleanup_->on_send(ctx, ch);
        break;
      }
      case Stage::kPart2: {
        Channel ch(ctx, 0);
        part2_->on_send(ctx, ch);
        break;
      }
    }
  }

  void on_receive(NodeContext& ctx) override {
    ensure_budget(ctx);
    switch (stage_) {
      case Stage::kInit: {
        Channel ch(ctx, 0);
        if (init_->on_receive(ctx, ch) == PhaseProgram::Status::kFinished) {
          stage_ = Stage::kParallel;
        }
        break;
      }
      case Stage::kParallel: {
        Channel chr(ctx, kReferenceChannel);
        if (!part1_done_ &&
            reference_.part1->on_receive(ctx, chr) ==
                PhaseProgram::Status::kFinished) {
          part1_done_ = true;
        }
        Channel chu(ctx, kUniformChannel);
        uniform_->on_receive(ctx, chu);
        if (ctx.terminated()) break;
        if (--budget_ <= 0) {
          DGAP_ASSERT(part1_done_,
                      "part 1 must finish within its declared budget");
          if (cleanup_) {
            stage_ = Stage::kCleanup;
          } else {
            enter_part2(ctx);
          }
        }
        break;
      }
      case Stage::kCleanup: {
        Channel ch(ctx, 0);
        if (cleanup_->on_receive(ctx, ch) ==
            PhaseProgram::Status::kFinished) {
          enter_part2(ctx);
        }
        break;
      }
      case Stage::kPart2: {
        Channel ch(ctx, 0);
        part2_->on_receive(ctx, ch);
        break;
      }
    }
  }

 private:
  enum class Stage { kInit, kParallel, kCleanup, kPart2 };

  void ensure_budget(const NodeContext& ctx) {
    if (budget_ >= 0) return;
    int b = cfg_.part1_budget(ctx.n(), ctx.delta(), ctx.d());
    DGAP_REQUIRE(b >= 1, "part 1 budget must be positive");
    const int g = cfg_.budget_granularity;
    DGAP_REQUIRE(g >= 1, "budget granularity must be positive");
    if (b % g != 0) b += g - b % g;  // cut only on extendable boundaries
    budget_ = b;
    cleanup_ = cfg_.cleanup ? cfg_.cleanup(ctx.index()) : nullptr;
  }

  void enter_part2(const NodeContext& ctx) {
    part2_ = reference_.make_part2(ctx);
    stage_ = Stage::kPart2;
  }

  ParallelConfig cfg_;
  std::unique_ptr<PhaseProgram> init_;
  std::unique_ptr<PhaseProgram> uniform_;
  TwoPartReference reference_;
  std::unique_ptr<PhaseProgram> cleanup_;
  std::unique_ptr<PhaseProgram> part2_;
  Stage stage_ = Stage::kInit;
  bool part1_done_ = false;
  int budget_ = -1;
};

}  // namespace

ProgramFactory simple_template(PhaseFactory init, PhaseFactory reference) {
  return [init = std::move(init),
          reference = std::move(reference)](NodeId node) {
    return std::make_unique<SimpleProgram>(init(node), reference(node));
  };
}

ProgramFactory consecutive_template(PhaseFactory init, PhaseFactory uniform,
                                    PhaseFactory cleanup,
                                    PhaseFactory reference,
                                    ScheduleFn uniform_budget) {
  return [init = std::move(init), uniform = std::move(uniform),
          cleanup = std::move(cleanup), reference = std::move(reference),
          uniform_budget = std::move(uniform_budget)](NodeId node) {
    return std::make_unique<ConsecutiveProgram>(
        init(node), uniform(node), cleanup ? cleanup(node) : nullptr,
        reference(node), uniform_budget);
  };
}

ProgramFactory interleaved_template(InterleavedConfig cfg) {
  return [cfg = std::move(cfg)](NodeId node) {
    return std::make_unique<InterleavedProgram>(node, cfg);
  };
}

ProgramFactory parallel_template(ParallelConfig cfg) {
  return [cfg = std::move(cfg)](NodeId node) {
    return std::make_unique<ParallelProgram>(node, cfg);
  };
}

}  // namespace dgap
