#include "templates/epoch_problems.hpp"

#include "coloring/checkers.hpp"
#include "matching/checkers.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/provider.hpp"
#include "templates/mis_with_predictions.hpp"
#include "templates/problems_with_predictions.hpp"

namespace dgap {

EpochProblem epoch_mis() {
  EpochProblem p;
  p.name = "mis_simple_greedy";
  p.kind = ProblemKind::kMis;
  p.factory = [] { return mis_simple_greedy(); };
  p.scratch = neutral_provider();
  p.eta = &eta1_mis;
  p.degradation_bound = [](int eta, const Graph&) { return eta + 3; };
  p.check = [](const Graph& g, const RunResult& r) {
    return check_mis(g, r.outputs);
  };
  return p;
}

EpochProblem epoch_matching() {
  EpochProblem p;
  p.name = "matching_simple_greedy";
  p.kind = ProblemKind::kMatching;
  p.factory = [] { return matching_simple_greedy(); };
  p.scratch = neutral_provider();
  p.eta = &eta1_matching;
  p.degradation_bound = [](int eta, const Graph&) {
    return 3 * (eta / 2) + 3;
  };
  p.check = [](const Graph& g, const RunResult& r) {
    return check_matching(g, r.outputs);
  };
  return p;
}

EpochProblem epoch_coloring() {
  EpochProblem p;
  p.name = "coloring_simple_greedy";
  p.kind = ProblemKind::kColoring;
  p.factory = [] { return coloring_simple_greedy(); };
  p.scratch = neutral_provider();
  p.eta = &eta1_coloring;
  p.degradation_bound = [](int eta, const Graph&) { return eta + 2; };
  p.check = [](const Graph& g, const RunResult& r) {
    return check_coloring(g, r.outputs, g.max_degree() + 1);
  };
  return p;
}

}  // namespace dgap
