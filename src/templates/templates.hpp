// The four templates of Section 7, as generic compositions of phase
// programs.
//
//   Simple      (Alg. 2): B ; R
//   Consecutive (Alg. 3): B ; U for r(n,Δ,d)+c'(n) rounds ; C ; R
//   Interleaved (Alg. 4): B ; for i = 1..m: U for r_i rounds ; R_i for r_i
//   Parallel    (Alg. 5): B ; (U ∥ R part 1) for r1 rounds ; C ; R part 2
//
// Schedules (round budgets) must be computable by every node from the
// globally known quantities n, Δ and d alone — they are passed as pure
// functions of those values, evaluated lazily once the node context is
// available, so all nodes compute identical budgets and switch blocks in
// lockstep.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/phase.hpp"

namespace dgap {

/// A round budget computed from globally known parameters.
using ScheduleFn = std::function<int(NodeId n, int delta, std::int64_t d)>;

/// Per-phase budget for the Interleaved template (phase index is 1-based).
using PhaseScheduleFn =
    std::function<int(int phase, NodeId n, int delta, std::int64_t d)>;

/// Simple Template (Algorithm 2): initialization, then the reference.
ProgramFactory simple_template(PhaseFactory init, PhaseFactory reference);

/// Consecutive Template (Algorithm 3). `cleanup` may be null when the
/// problem needs none (e.g. vertex coloring). `uniform_budget` should be
/// r(n,Δ,d) + c'(n) per Lemma 8.
ProgramFactory consecutive_template(PhaseFactory init, PhaseFactory uniform,
                                    PhaseFactory cleanup,
                                    PhaseFactory reference,
                                    ScheduleFn uniform_budget);

struct InterleavedConfig {
  PhaseFactory init;
  /// The measure-uniform algorithm; ONE instance per node persists across
  /// segments (it resumes where it left off, as the paper requires).
  PhaseFactory uniform;
  /// Phase i of the reference algorithm (fresh instance per segment) —
  /// the Corollary 10 shape, where each phase is self-contained.
  /// Exactly one of reference_phase / reference_persistent must be set.
  std::function<std::unique_ptr<PhaseProgram>(int phase, NodeId node)>
      reference_phase;
  /// Alternative: a monolithic reference that RESUMES across segments
  /// (one instance per node, like the uniform algorithm). Sound whenever
  /// the reference's partial solution is extendable at every round — e.g.
  /// the matching extraction and the class-by-class color emit.
  PhaseFactory reference_persistent;
  /// Budget r_i for both the U and R segments of phase i. Must be even
  /// whenever the uniform algorithm's partials are only extendable on even
  /// boundaries (Greedy MIS).
  PhaseScheduleFn phase_budget;
  /// Number of phases m(n, Δ, d).
  ScheduleFn phase_count;
};

/// Interleaved Template (Algorithm 4). If the node is still active after
/// all m phases (which a complete reference algorithm never allows), the
/// uniform algorithm keeps running as a defensive fallback.
ProgramFactory interleaved_template(InterleavedConfig cfg);

/// A reference algorithm split into a fault-tolerant part 1 (which must
/// not write outputs — results stay in local state) and a part 2 built
/// once part 1 finishes.
struct TwoPartReference {
  std::unique_ptr<PhaseProgram> part1;
  /// Invoked after part 1 finished; typically captures part1's state.
  std::function<std::unique_ptr<PhaseProgram>(const NodeContext&)> make_part2;
};

using TwoPartFactory = std::function<TwoPartReference(NodeId node)>;

struct ParallelConfig {
  PhaseFactory init;
  PhaseFactory uniform;
  TwoPartFactory reference;
  /// Upper bound r1(n,Δ,d) on part 1; rounded up to a multiple of
  /// `budget_granularity` so the uniform algorithm is cut only on an
  /// extendable boundary (2 for Greedy MIS's two-round phases, 3 for the
  /// matching algorithm's three-round groups, 1 when every prefix is
  /// extendable, as for proper colorings).
  ScheduleFn part1_budget;
  /// Optional clean-up between the parallel section and part 2.
  PhaseFactory cleanup;
  int budget_granularity = 2;
};

/// Parallel Template (Algorithm 5): U and R part 1 run simultaneously on
/// separate channels; a node terminated by U is treated as crashed by R.
ProgramFactory parallel_template(ParallelConfig cfg);

}  // namespace dgap
