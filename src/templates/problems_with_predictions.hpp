// Ready-made algorithms with predictions for the Section 8 problems.
//
// The paper defines the ingredients per problem (base/initialization,
// clean-up, error components, measure-uniform algorithm) and notes that
// "one can then choose one's favorite algorithm for the problem and use
// that as the reference algorithm". These assemblies do exactly that:
//
// Maximal Matching (Section 8.1)
//   matching_simple_greedy()       Init + 3-round-group measure-uniform.
//   matching_consecutive_linegraph()
//                                  Lemma 8 with R = line-graph Linial
//                                  (2Δ−1)-edge coloring + one-class-per-
//                                  round matching extraction: robust cap
//                                  O(Δ² + log* d).
//   matching_parallel_linegraph()  Lemma 11: the uniform matcher runs in
//                                  parallel with the (fault-tolerant)
//                                  line-graph coloring; budget granularity
//                                  3 (the matcher's groups).
//
// (Δ+1)-Vertex Coloring (Section 8.2) — no clean-up algorithm needed:
//   coloring_simple_greedy()       Init + local-max measure-uniform.
//   coloring_consecutive_linial()  R = output-respecting Linial.
//   coloring_parallel_linial()     Parallel, budget granularity 1 (every
//                                  proper partial coloring is extendable).
//
// (2Δ−1)-Edge Coloring (Section 8.3)
//   edge_coloring_simple_greedy()  Base + 2-hop-max measure-uniform.
//   edge_coloring_consecutive_linegraph()
//                                  R = line-graph Linial + emit.
#pragma once

#include "sim/engine.hpp"
#include "templates/templates.hpp"

namespace dgap {

ProgramFactory matching_simple_greedy();
ProgramFactory matching_consecutive_linegraph();
ProgramFactory matching_parallel_linegraph();
/// Interleaved (Lemma 9) with a PERSISTENT reference: the line-graph
/// coloring + extraction resumes across segments, sound because the
/// extraction's outputs form an extendable partial matching at every
/// round boundary.
ProgramFactory matching_interleaved_linegraph();

ProgramFactory coloring_simple_greedy();
ProgramFactory coloring_consecutive_linial();
ProgramFactory coloring_parallel_linial();
/// Interleaved with a persistent Linial+class-emit reference (every
/// proper partial coloring is extendable, so any cut is safe).
ProgramFactory coloring_interleaved_linial();

ProgramFactory edge_coloring_simple_greedy();
ProgramFactory edge_coloring_consecutive_linegraph();
/// Parallel (Lemma 11): greedy edge coloring runs alongside the line-graph
/// Linial; part 2 is the clash-repairing class-by-class emit.
ProgramFactory edge_coloring_parallel_linegraph();
/// Interleaved (Lemma 9) with a persistent line-graph reference (any cut
/// of a proper partial edge coloring is extendable).
ProgramFactory edge_coloring_interleaved_linegraph();

/// Round bound of the line-graph reference for matching (part 1 + 2Δ).
int matching_reference_total_rounds(std::int64_t d, int delta);

}  // namespace dgap
