#include "templates/problems_with_predictions.hpp"

#include <algorithm>

#include "common/require.hpp"

#include "coloring/algorithms.hpp"
#include "coloring/linial.hpp"
#include "edgecoloring/algorithms.hpp"
#include "edgecoloring/linegraph.hpp"
#include "matching/algorithms.hpp"
#include "matching/from_edge_coloring.hpp"
#include "sim/compile.hpp"

namespace dgap {

namespace {

/// Matching reference: line-graph Linial (part 1) + color-class matching
/// extraction (part 2), packaged as a single phase for the Consecutive
/// template.
class LineGraphMatchingPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override {
    if (part2_) {
      part2_->on_send(ctx, ch);
    } else {
      part1_.on_send(ctx, ch);
    }
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    if (!part2_) {
      if (part1_.on_receive(ctx, ch) == Status::kFinished) {
        part2_ = std::make_unique<EdgeColorToMatchingPhase>(
            [this](NodeId u) { return part1_.edge_palette_color(u); });
      }
      return Status::kRunning;
    }
    return part2_->on_receive(ctx, ch);
  }

 private:
  LineGraphLinialPhase part1_;
  std::unique_ptr<EdgeColorToMatchingPhase> part2_;
};

TwoPartFactory line_graph_matching_two_part() {
  return [](NodeId) {
    TwoPartReference ref;
    auto part1 = std::make_unique<LineGraphLinialPhase>();
    LineGraphLinialPhase* raw = part1.get();
    ref.part1 = std::move(part1);
    ref.make_part2 = [raw](const NodeContext&) {
      return std::make_unique<EdgeColorToMatchingPhase>(
          [raw](NodeId u) { return raw->edge_palette_color(u); });
    };
    return ref;
  };
}

/// Vertex-coloring reference as a two-part program: Linial part 1 holds
/// colors locally; the class-by-class emit (ColorClassEmitPhase) outputs
/// them while repairing clashes with colors that terminated nodes output
/// while part 1 was running — the repair is what makes the reference
/// composable with a concurrently running uniform algorithm.
TwoPartFactory linial_coloring_two_part() {
  return [](NodeId) {
    TwoPartReference ref;
    auto part1 = std::make_unique<LinialColoringPhase>();
    LinialColoringPhase* raw = part1.get();
    ref.part1 = std::move(part1);
    ref.make_part2 = [raw](const NodeContext&) {
      return std::make_unique<ColorClassEmitPhase>(
          [raw] { return raw->palette_color(); });
    };
    return ref;
  };
}

class LinialColoringReferencePhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override {
    if (!emit_) part1_.on_send(ctx, ch);
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    if (!emit_) {
      if (part1_.on_receive(ctx, ch) == Status::kFinished) {
        emit_ = std::make_unique<ColorClassEmitPhase>(
            [this] { return part1_.palette_color(); });
      }
      return Status::kRunning;
    }
    return emit_->on_receive(ctx, ch);
  }

 private:
  LinialColoringPhase part1_;
  std::unique_ptr<ColorClassEmitPhase> emit_;
};

/// Line-graph Linial + clash-repairing class emit, packaged for the
/// Consecutive/Interleaved templates' single-reference slots.
class LineGraphEdgeColoringRepairPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override {
    if (emit_) {
      emit_->on_send(ctx, ch);
    } else {
      part1_.on_send(ctx, ch);
    }
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    if (!emit_) {
      if (part1_.on_receive(ctx, ch) == Status::kFinished) {
        emit_ = std::make_unique<EdgeColorClassEmitPhase>(
            [this](NodeId u) { return part1_.edge_palette_color(u); });
      }
      return Status::kRunning;
    }
    return emit_->on_receive(ctx, ch);
  }

 private:
  LineGraphLinialPhase part1_;
  std::unique_ptr<EdgeColorClassEmitPhase> emit_;
};

TwoPartFactory line_graph_edge_coloring_two_part() {
  return [](NodeId) {
    TwoPartReference ref;
    auto part1 = std::make_unique<LineGraphLinialPhase>();
    LineGraphLinialPhase* raw = part1.get();
    ref.part1 = std::move(part1);
    ref.make_part2 = [raw](const NodeContext&) {
      return std::make_unique<EdgeColorClassEmitPhase>(
          [raw](NodeId u) { return raw->edge_palette_color(u); });
    };
    return ref;
  };
}

}  // namespace

/// Doubling segment schedule sized so the U/R segments can cover a
/// reference needing `total` rounds: sum_{i=1..m} 2^i >= total.
namespace {
int doubling_phase_count(int total) {
  int m = 1;
  while ((1 << (m + 1)) - 2 < total) ++m;
  return m;
}

int doubling_phase_budget(int phase) {
  DGAP_REQUIRE(phase >= 1 && phase < 31, "phase index out of range");
  return 1 << phase;
}
}  // namespace

int matching_reference_total_rounds(std::int64_t d, int delta) {
  return line_graph_linial_total_rounds(d, delta) +
         std::max(2 * delta, 1) + 1;
}

// ---------------------------------------------------------------------------
// Maximal Matching.
// ---------------------------------------------------------------------------

ProgramFactory matching_simple_greedy() {
  // As in mis_simple_greedy: the init phase's step-0 broadcast from a node
  // predicted unmatched is the declared default, decoded from silence when
  // EngineOptions::compile.decode_defaults is on, inert otherwise.
  return simple_template(
      compile_phase(make_matching_init(),
                    {.default_words = matching_init_default(),
                     .default_first_round_only = true}),
      make_greedy_matching());
}

ProgramFactory matching_consecutive_linegraph() {
  return consecutive_template(
      make_matching_init(), make_greedy_matching(), make_matching_cleanup(),
      [](NodeId) -> std::unique_ptr<PhaseProgram> {
        return std::make_unique<LineGraphMatchingPhase>();
      },
      [](NodeId, int delta, std::int64_t d) {
        return matching_reference_total_rounds(d, delta) +
               kMatchingCleanupRounds;
      });
}

ProgramFactory matching_parallel_linegraph() {
  ParallelConfig cfg;
  cfg.init = make_matching_init();
  cfg.uniform = make_greedy_matching();
  cfg.reference = line_graph_matching_two_part();
  cfg.part1_budget = [](NodeId, int delta, std::int64_t d) {
    return line_graph_linial_total_rounds(d, delta);
  };
  // The uniform matcher's partial solutions are extendable at the end of
  // each 3-round group; a clean-up round catches the matched-but-unoutput
  // asymmetry that an arbitrary cut could leave.
  cfg.cleanup = make_matching_cleanup();
  cfg.budget_granularity = 3;
  return parallel_template(std::move(cfg));
}

ProgramFactory matching_interleaved_linegraph() {
  InterleavedConfig cfg;
  cfg.init = make_matching_init();
  cfg.uniform = make_greedy_matching();
  cfg.reference_persistent = [](NodeId) -> std::unique_ptr<PhaseProgram> {
    return std::make_unique<LineGraphMatchingPhase>();
  };
  cfg.phase_budget = [](int phase, NodeId, int, std::int64_t) {
    return doubling_phase_budget(phase);
  };
  cfg.phase_count = [](NodeId, int delta, std::int64_t d) {
    return doubling_phase_count(matching_reference_total_rounds(d, delta));
  };
  return interleaved_template(std::move(cfg));
}

// ---------------------------------------------------------------------------
// (Δ+1)-Vertex Coloring.
// ---------------------------------------------------------------------------

ProgramFactory coloring_simple_greedy() {
  return simple_template(make_coloring_init(), make_greedy_coloring());
}

ProgramFactory coloring_consecutive_linial() {
  return consecutive_template(
      make_coloring_init(), make_greedy_coloring(), /*cleanup=*/nullptr,
      [](NodeId) -> std::unique_ptr<PhaseProgram> {
        return std::make_unique<LinialColoringReferencePhase>();
      },
      [](NodeId, int delta, std::int64_t d) {
        return linial_total_rounds(d, delta) + delta + 1;
      });
}

ProgramFactory coloring_parallel_linial() {
  ParallelConfig cfg;
  cfg.init = make_coloring_init();
  cfg.uniform = make_greedy_coloring();
  cfg.reference = linial_coloring_two_part();
  cfg.part1_budget = [](NodeId, int delta, std::int64_t d) {
    return linial_total_rounds(d, delta);
  };
  cfg.cleanup = nullptr;  // proper partial colorings are always extendable
  cfg.budget_granularity = 1;
  return parallel_template(std::move(cfg));
}

ProgramFactory coloring_interleaved_linial() {
  InterleavedConfig cfg;
  cfg.init = make_coloring_init();
  cfg.uniform = make_greedy_coloring();
  cfg.reference_persistent = [](NodeId) -> std::unique_ptr<PhaseProgram> {
    return std::make_unique<LinialColoringReferencePhase>();
  };
  cfg.phase_budget = [](int phase, NodeId, int, std::int64_t) {
    return doubling_phase_budget(phase);
  };
  cfg.phase_count = [](NodeId, int delta, std::int64_t d) {
    return doubling_phase_count(linial_total_rounds(d, delta) + delta + 1);
  };
  return interleaved_template(std::move(cfg));
}

// ---------------------------------------------------------------------------
// (2Δ−1)-Edge Coloring.
// ---------------------------------------------------------------------------

ProgramFactory edge_coloring_simple_greedy() {
  return simple_template(make_edge_coloring_base(),
                         make_greedy_edge_coloring());
}

ProgramFactory edge_coloring_consecutive_linegraph() {
  return consecutive_template(
      make_edge_coloring_base(), make_greedy_edge_coloring(),
      /*cleanup=*/nullptr, make_line_graph_edge_coloring_reference(),
      [](NodeId, int delta, std::int64_t d) {
        return line_graph_linial_total_rounds(d, delta) + 1;
      });
}

ProgramFactory edge_coloring_parallel_linegraph() {
  ParallelConfig cfg;
  cfg.init = make_edge_coloring_base();
  cfg.uniform = make_greedy_edge_coloring();
  cfg.reference = line_graph_edge_coloring_two_part();
  cfg.part1_budget = [](NodeId, int delta, std::int64_t d) {
    return line_graph_linial_total_rounds(d, delta);
  };
  // Every prefix of a proper partial edge coloring is extendable (claims
  // commit symmetrically within a round), so any cut is safe.
  cfg.cleanup = nullptr;
  cfg.budget_granularity = 1;
  return parallel_template(std::move(cfg));
}

ProgramFactory edge_coloring_interleaved_linegraph() {
  InterleavedConfig cfg;
  cfg.init = make_edge_coloring_base();
  cfg.uniform = make_greedy_edge_coloring();
  cfg.reference_persistent = [](NodeId) -> std::unique_ptr<PhaseProgram> {
    return std::make_unique<LineGraphEdgeColoringRepairPhase>();
  };
  cfg.phase_budget = [](int phase, NodeId, int, std::int64_t) {
    return doubling_phase_budget(phase);
  };
  cfg.phase_count = [](NodeId, int delta, std::int64_t d) {
    return doubling_phase_count(line_graph_linial_total_rounds(d, delta) +
                                std::max(2 * delta, 1) + 1);
  };
  return interleaved_template(std::move(cfg));
}

}  // namespace dgap
