#include "edgecoloring/checkers.hpp"

#include <algorithm>
#include <sstream>

#include "common/require.hpp"

namespace dgap {
namespace {

Value color_of(const EdgeOutputs& outputs, NodeId v, NodeId u) {
  for (const auto& [key, color] : outputs[static_cast<std::size_t>(v)]) {
    if (key == u) return color;
  }
  return kUndefined;
}

}  // namespace

std::string check_edge_coloring(const Graph& g, const EdgeOutputs& outputs) {
  DGAP_REQUIRE(outputs.size() == static_cast<std::size_t>(g.num_nodes()),
               "one edge-output row per node");
  const Value palette = std::max<Value>(1, 2 * g.max_degree() - 1);
  for (auto [u, v] : g.edges()) {
    const Value cu = color_of(outputs, u, v);
    const Value cv = color_of(outputs, v, u);
    if (cu == kUndefined || cv == kUndefined) {
      std::ostringstream os;
      os << "edge {" << u << "," << v << "} lacks a color on some side";
      return os.str();
    }
    if (cu != cv) {
      std::ostringstream os;
      os << "edge {" << u << "," << v << "} colored " << cu << " vs " << cv;
      return os.str();
    }
    if (cu < 1 || cu > palette) {
      std::ostringstream os;
      os << "edge {" << u << "," << v << "} color " << cu
         << " outside palette 1.." << palette;
      return os.str();
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& row = outputs[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < row.size(); ++i) {
      for (std::size_t j = i + 1; j < row.size(); ++j) {
        if (row[i].second == row[j].second) {
          std::ostringstream os;
          os << "node " << v << " repeats color " << row[i].second
             << " on two incident edges";
          return os.str();
        }
      }
    }
  }
  return {};
}

bool is_valid_edge_coloring(const Graph& g, const EdgeOutputs& outputs) {
  return check_edge_coloring(g, outputs).empty();
}

bool is_proper_partial_edge_coloring(const Graph& g,
                                     const EdgeOutputs& outputs) {
  DGAP_REQUIRE(outputs.size() == static_cast<std::size_t>(g.num_nodes()),
               "one edge-output row per node");
  const Value palette = std::max<Value>(1, 2 * g.max_degree() - 1);
  for (auto [u, v] : g.edges()) {
    const Value cu = color_of(outputs, u, v);
    const Value cv = color_of(outputs, v, u);
    if (cu != cv) return false;  // both colored the same, or both uncolored
    if (cu != kUndefined && (cu < 1 || cu > palette)) return false;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& row = outputs[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < row.size(); ++i) {
      for (std::size_t j = i + 1; j < row.size(); ++j) {
        if (row[i].second == row[j].second) return false;
      }
    }
  }
  return true;
}

}  // namespace dgap
