#include "edgecoloring/algorithms.hpp"

#include <algorithm>
#include <set>

#include "common/require.hpp"

namespace dgap {

namespace {

Value palette_size(const NodeContext& ctx) {
  return std::max<Value>(1, 2 * static_cast<Value>(ctx.delta()) - 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Base algorithm.
// ---------------------------------------------------------------------------

bool EdgeColoringBasePhase::proposal_legal(NodeContext& ctx, NodeId u) const {
  const Value c = ctx.edge_prediction(u);
  if (c < 1 || c > palette_size(ctx)) return false;
  for (NodeId w : ctx.neighbors()) {
    if (w != u && ctx.edge_prediction(w) == c) return false;  // not unique
  }
  return true;
}

void EdgeColoringBasePhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) {
    for (NodeId u : ctx.neighbors()) {
      if (proposal_legal(ctx, u)) ch.send(u, {ctx.edge_prediction(u)});
    }
  } else if (step_ == 1) {
    // Palette re-synchronization round: announce output colors along the
    // edges that stayed uncolored.
    std::vector<Value> used;
    for (NodeId u : ctx.neighbors()) {
      const Value c = ctx.output_for(u);
      if (c != kUndefined) used.push_back(c);
    }
    for (NodeId u : ctx.active_neighbors()) {
      if (ctx.output_for(u) == kUndefined) ch.send(u, used);
    }
  }
}

PhaseProgram::Status EdgeColoringBasePhase::on_receive(NodeContext& ctx,
                                                       Channel& ch) {
  ++step_;
  if (step_ == 1) {
    if (ctx.degree() == 0) {
      ctx.set_output(0);  // no edges to color
      ctx.terminate();
      return Status::kFinished;
    }
    for (const Message* m : ch.inbox()) {
      if (proposal_legal(ctx, m->from) &&
          ctx.edge_prediction(m->from) == m->words.at(0)) {
        ctx.set_output_for(m->from, m->words.at(0));
      }
    }
    bool complete = true;
    for (NodeId u : ctx.neighbors()) {
      if (ctx.output_for(u) == kUndefined) complete = false;
    }
    if (complete) {
      ctx.terminate();
      return Status::kFinished;
    }
    return Status::kRunning;
  }
  // Round 2 carries only the palette broadcast; the measure-uniform phase
  // re-synchronizes anyway, so nothing to record here.
  return Status::kFinished;
}

// ---------------------------------------------------------------------------
// Measure-uniform greedy edge coloring.
// ---------------------------------------------------------------------------

std::vector<NodeId> GreedyEdgeColoringPhase::uncolored_neighbors(
    const NodeContext& ctx) const {
  std::vector<NodeId> out;
  for (NodeId u : ctx.active_neighbors()) {
    if (ctx.output_for(u) == kUndefined) out.push_back(u);
  }
  return out;
}

std::vector<Value> GreedyEdgeColoringPhase::own_used_colors(
    const NodeContext& ctx) const {
  std::vector<Value> used;
  for (NodeId u : ctx.neighbors()) {
    const Value c = ctx.output_for(u);
    if (c != kUndefined) used.push_back(c);
  }
  return used;
}

bool GreedyEdgeColoringPhase::all_edges_colored(const NodeContext& ctx) const {
  for (NodeId u : ctx.neighbors()) {
    if (ctx.output_for(u) == kUndefined) return false;
  }
  return true;
}

void GreedyEdgeColoringPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ % 2 == 0) {
    // Sync round: [U, uncolored co-endpoint ids..., C, used colors...].
    std::vector<Value> words;
    const auto unc = uncolored_neighbors(ctx);
    words.push_back(static_cast<Value>(unc.size()));
    for (NodeId u : unc) words.push_back(ctx.neighbor_id(u));
    const auto used = own_used_colors(ctx);
    words.push_back(static_cast<Value>(used.size()));
    words.insert(words.end(), used.begin(), used.end());
    ch.broadcast(words);
  } else {
    // Claim round: a node beating every identifier within two uncolored
    // hops colors all its uncolored edges at once.
    pending_.clear();
    const auto unc = uncolored_neighbors(ctx);
    if (unc.empty()) return;
    bool winner = true;
    for (NodeId u : unc) {
      if (ctx.neighbor_id(u) > ctx.id()) winner = false;
      auto it = sync_.find(u);
      DGAP_ASSERT(it != sync_.end(), "claim round without sync data");
      for (Value wid : it->second.uncolored_ids) {
        if (wid > ctx.id()) winner = false;
      }
    }
    if (!winner) return;
    const auto used_now = own_used_colors(ctx);
    std::set<Value> mine(used_now.begin(), used_now.end());
    for (NodeId u : unc) {
      std::set<Value> banned = mine;
      const auto& info = sync_.at(u);
      banned.insert(info.used_colors.begin(), info.used_colors.end());
      Value chosen = kUndefined;
      for (Value c = 1; c <= palette_size(ctx); ++c) {
        if (!banned.count(c)) {
          chosen = c;
          break;
        }
      }
      DGAP_ASSERT(chosen != kUndefined,
                  "2Δ−1 palette always has a free color per edge");
      mine.insert(chosen);  // distinct colors across this sweep
      pending_.emplace_back(u, chosen);
      ch.send(u, {chosen});
    }
  }
}

PhaseProgram::Status GreedyEdgeColoringPhase::on_receive(NodeContext& ctx,
                                                         Channel& ch) {
  const bool sync_round = (step_ % 2 == 0);
  ++step_;
  if (ctx.degree() == 0) {
    ctx.set_output(0);
    ctx.terminate();
    return Status::kRunning;
  }
  if (sync_round) {
    sync_.clear();
    for (const Message* m : ch.inbox()) {
      NeighborSync info;
      std::size_t pos = 0;
      const auto& w = m->words;
      const auto nu = static_cast<std::size_t>(w.at(pos++));
      for (std::size_t i = 0; i < nu; ++i) {
        info.uncolored_ids.push_back(w.at(pos++));
      }
      const auto nc = static_cast<std::size_t>(w.at(pos++));
      for (std::size_t i = 0; i < nc; ++i) {
        info.used_colors.push_back(w.at(pos++));
      }
      sync_[m->from] = std::move(info);
    }
    if (all_edges_colored(ctx)) {
      ctx.terminate();
      return Status::kRunning;
    }
  } else {
    for (auto [u, c] : pending_) ctx.set_output_for(u, c);
    for (const Message* m : ch.inbox()) {
      DGAP_ASSERT(ctx.output_for(m->from) == kUndefined,
                  "claimed edge was already colored");
      ctx.set_output_for(m->from, m->words.at(0));
    }
    if (all_edges_colored(ctx)) {
      ctx.terminate();
      return Status::kRunning;
    }
  }
  return Status::kRunning;
}

PhaseFactory make_edge_coloring_base() {
  return [](NodeId) { return std::make_unique<EdgeColoringBasePhase>(); };
}

PhaseFactory make_greedy_edge_coloring() {
  return [](NodeId) { return std::make_unique<GreedyEdgeColoringPhase>(); };
}

ProgramFactory greedy_edge_coloring_algorithm() {
  return phase_as_algorithm(make_greedy_edge_coloring());
}

}  // namespace dgap
