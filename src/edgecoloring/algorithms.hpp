// (2Δ−1)-Edge Coloring building blocks (Section 8.3).
//
//  * EdgeColoringBasePhase   — 2 rounds: an edge is colored iff both
//                              endpoints predicted the same legal color and
//                              the proposal was unique at each endpoint.
//                              Terminates fully-colored nodes after round 1
//                              (consistency 1 when predictions are correct).
//  * GreedyEdgeColoringPhase — the measure-uniform algorithm: groups of two
//                              rounds (sync, claim); a node whose
//                              identifier beats everything within two
//                              uncolored-edge hops colors ALL its remaining
//                              edges at once. Round complexity O(s) on an
//                              s-node component (paper: ≤ 2s − 3; our
//                              grouping gives ≤ 2s + 1 — each group retires
//                              at least one node).
//
// The paper's clean-up for this problem only re-synchronizes palettes; our
// greedy phase re-synchronizes at the start of every group, so no separate
// clean-up phase is needed (see DESIGN.md).
//
// Degree-0 nodes have no incident edges and therefore no edge outputs; they
// emit a scalar 0 output so that termination is well-defined.
#pragma once

#include <unordered_map>
#include <vector>

#include "sim/phase.hpp"

namespace dgap {

inline constexpr int kEdgeColoringBaseRounds = 2;

class EdgeColoringBasePhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  bool proposal_legal(NodeContext& ctx, NodeId u) const;
  int step_ = 0;
};

class GreedyEdgeColoringPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  struct NeighborSync {
    std::vector<Value> uncolored_ids;  // their uncolored co-endpoints
    std::vector<Value> used_colors;    // their already-output colors
  };

  std::vector<NodeId> uncolored_neighbors(const NodeContext& ctx) const;
  std::vector<Value> own_used_colors(const NodeContext& ctx) const;
  bool all_edges_colored(const NodeContext& ctx) const;

  int step_ = 0;  // odd = sync, even = claim
  std::unordered_map<NodeId, NeighborSync> sync_;
  std::vector<std::pair<NodeId, Value>> pending_;  // winner's assignments
};

PhaseFactory make_edge_coloring_base();
PhaseFactory make_greedy_edge_coloring();

ProgramFactory greedy_edge_coloring_algorithm();

}  // namespace dgap
