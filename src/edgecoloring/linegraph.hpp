// Linial color reduction on the LINE GRAPH: a reference algorithm for
// (2Δ−1)-Edge Coloring.
//
// Section 8.3 observes that coloring the edges of G is exactly coloring
// the vertices of its line graph L(G). L(G) has maximum degree
// Δ_L = 2Δ − 2 and a natural identifier per edge (derived from the two
// endpoint identifiers, bounded by (d+1)²), so Linial's reduction yields a
// (Δ_L + 1) = (2Δ−1)-edge-coloring in O(Δ² + log* d) rounds — independent
// of n.
//
// The line graph is simulated without materializing it: BOTH endpoints of
// an edge run the edge's state machine on identical information (each
// round every active node broadcasts the (co-endpoint id, current color)
// list of its live incident edges), so the two copies stay in lockstep by
// determinism. A node that terminates removes its edges from the remaining
// problem — the phase is fault-tolerant in the Parallel-template sense.
//
// The final reduction stage re-examines every class and avoids colors
// already OUTPUT on adjacent edges (the palette bookkeeping of Section
// 8.3), so the phase correctly extends a partial edge coloring left by the
// base algorithm.
#pragma once

#include <map>
#include <vector>

#include "coloring/linial.hpp"
#include "sim/phase.hpp"

namespace dgap {

/// Round bound of the line-graph Linial phase for identifiers ≤ d and max
/// degree Δ (pure function — usable as a template schedule).
int line_graph_linial_total_rounds(std::int64_t d, int delta);

class LineGraphLinialPhase final : public PhaseProgram {
 public:
  LineGraphLinialPhase() = default;

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

  bool done() const { return done_; }
  /// Final color of the edge to live neighbor u, in {1..2Δ−1}; only
  /// meaningful once done(). kUndefined if the edge was already colored
  /// before the phase began (the base algorithm handled it).
  Value edge_palette_color(NodeId u) const;

 private:
  void ensure_schedule(NodeContext& ctx);
  Value poly_eval(Value color, std::int64_t k, std::int64_t q,
                  std::int64_t x) const;

  bool scheduled_ = false;
  LinialSchedule schedule_;
  Value delta_l_ = 0;  // Δ_L = max(2Δ−2, 0)
  int step_ = 0;
  bool done_ = false;
  // Current internal color of each live uncolored incident edge.
  std::map<NodeId, Value> edge_color_;
  // Latest broadcast from each neighbor: list of (co-endpoint id, color).
  std::map<NodeId, std::vector<std::pair<Value, Value>>> neighbor_info_;
};

/// Part 2 for edge coloring: output the stored colors (one round).
/// Correct when no other algorithm colored edges while part 1 ran
/// (Consecutive composition).
class EdgeColorEmitPhase final : public PhaseProgram {
 public:
  using EdgeColorFn = std::function<Value(NodeId)>;
  explicit EdgeColorEmitPhase(EdgeColorFn color) : color_(std::move(color)) {}

  void on_send(NodeContext&, Channel&) override {}
  Status on_receive(NodeContext& ctx, Channel&) override;

 private:
  EdgeColorFn color_;
};

/// Clash-repairing part 2 for edge coloring, one color class per round:
/// in round j, the edge {u, v} whose stored color is j outputs the
/// smallest palette color not already output on any adjacent edge. Both
/// endpoints compute the same choice because every active node broadcasts
/// its used-color set each round. Needed when a concurrently running
/// uniform algorithm output edge colors during part 1 (Parallel
/// composition); also safe to cut at any round (every prefix is a proper
/// partial edge coloring), so it composes with persistent interleaving.
/// 2Δ−1 rounds + 1 drain.
class EdgeColorClassEmitPhase final : public PhaseProgram {
 public:
  using EdgeColorFn = std::function<Value(NodeId)>;
  explicit EdgeColorClassEmitPhase(EdgeColorFn color)
      : color_(std::move(color)) {}

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  EdgeColorFn color_;
  int step_ = 0;
};

/// The full reference algorithm for (2Δ−1)-Edge Coloring: line-graph
/// Linial followed by the emit round.
PhaseFactory make_line_graph_edge_coloring_reference();

ProgramFactory line_graph_edge_coloring_algorithm();

}  // namespace dgap
