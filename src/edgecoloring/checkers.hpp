// Validity checkers for the (2Δ−1)-Edge Coloring problem.
//
// Each node outputs one color per incident edge (edge-keyed outputs in the
// simulator). A complete solution has, for every edge, the same color at
// both endpoints, colors in {1..2Δ−1}, and all edges at a node distinct.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace dgap {

/// Edge outputs as produced by RunResult::edge_outputs: for node v, a
/// sorted (neighbor index, color) list.
using EdgeOutputs = std::vector<std::vector<std::pair<NodeId, Value>>>;

std::string check_edge_coloring(const Graph& g, const EdgeOutputs& outputs);

bool is_valid_edge_coloring(const Graph& g, const EdgeOutputs& outputs);

/// Partial solution check (Section 8.3): colored edges must agree at both
/// endpoints, be inside the palette, and be distinct around every node;
/// uncolored edges must be uncolored at both endpoints.
bool is_proper_partial_edge_coloring(const Graph& g,
                                     const EdgeOutputs& outputs);

}  // namespace dgap
