#include "edgecoloring/linegraph.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace dgap {

namespace {

/// Distinct line-graph identifier of the edge {a, b} (endpoint ids),
/// in [1, (d+1)²).
Value edge_identifier(Value a, Value b, std::int64_t d) {
  const Value lo = std::min(a, b), hi = std::max(a, b);
  return lo * (d + 1) + hi;
}

}  // namespace

int line_graph_linial_total_rounds(std::int64_t d, int delta) {
  const int delta_l = std::max(2 * delta - 2, 0);
  return linial_schedule((d + 1) * (d + 1), delta_l,
                         /*reduce_all_classes=*/true)
      .total_rounds;
}

void LineGraphLinialPhase::ensure_schedule(NodeContext& ctx) {
  if (scheduled_) return;
  delta_l_ = std::max(2 * static_cast<Value>(ctx.delta()) - 2, Value{0});
  schedule_ = linial_schedule((ctx.d() + 1) * (ctx.d() + 1),
                              static_cast<int>(delta_l_),
                              /*reduce_all_classes=*/true);
  for (NodeId u : ctx.active_neighbors()) {
    if (ctx.output_for(u) == kUndefined) {
      edge_color_[u] =
          delta_l_ == 0
              ? 0
              : edge_identifier(ctx.id(), ctx.neighbor_id(u), ctx.d()) - 1;
    }
  }
  scheduled_ = true;
}

Value LineGraphLinialPhase::poly_eval(Value color, std::int64_t k,
                                      std::int64_t q, std::int64_t x) const {
  Value coeff[65];
  Value c = color;
  for (std::int64_t i = 0; i <= k; ++i) {
    coeff[i] = c % q;
    c /= q;
  }
  Value acc = 0;
  for (std::int64_t i = k; i >= 0; --i) acc = (acc * x + coeff[i]) % q;
  return acc;
}

Value LineGraphLinialPhase::edge_palette_color(NodeId u) const {
  auto it = edge_color_.find(u);
  if (it == edge_color_.end()) return kUndefined;
  return it->second + 1;
}

void LineGraphLinialPhase::on_send(NodeContext& ctx, Channel& ch) {
  ensure_schedule(ctx);
  if (done_) return;
  // [U, (co-endpoint id, color)*U, C, output colors*C]. The co-endpoint id
  // lets the receiver identify the shared edge and the rest of the list
  // gives the adjacent-edge constraints at this endpoint.
  std::vector<Value> words;
  words.push_back(static_cast<Value>(edge_color_.size()));
  for (const auto& [u, c] : edge_color_) {
    words.push_back(ctx.neighbor_id(u));
    words.push_back(c);
  }
  std::vector<Value> used;
  for (NodeId u : ctx.neighbors()) {
    const Value c = ctx.output_for(u);
    if (c != kUndefined) used.push_back(c);
  }
  words.push_back(static_cast<Value>(used.size()));
  words.insert(words.end(), used.begin(), used.end());
  ch.broadcast(words);
}

PhaseProgram::Status LineGraphLinialPhase::on_receive(NodeContext& ctx,
                                                      Channel& ch) {
  ensure_schedule(ctx);
  if (done_) return Status::kFinished;
  ++step_;
  // Prune edges whose co-endpoint vanished (treated as crashed: its edges
  // leave the remaining problem) and edges colored meanwhile by a
  // concurrently running uniform algorithm (Parallel template).
  for (auto it = edge_color_.begin(); it != edge_color_.end();) {
    if (!ctx.neighbor_active(it->first) ||
        ctx.output_for(it->first) != kUndefined) {
      it = edge_color_.erase(it);
    } else {
      ++it;
    }
  }
  neighbor_info_.clear();
  std::map<NodeId, std::vector<Value>> neighbor_used;
  for (const Message* m : ch.inbox()) {
    std::size_t pos = 0;
    const auto& w = m->words;
    const auto cnt = static_cast<std::size_t>(w.at(pos++));
    auto& list = neighbor_info_[m->from];
    for (std::size_t i = 0; i < cnt; ++i) {
      const Value uid = w.at(pos++);
      const Value col = w.at(pos++);
      list.emplace_back(uid, col);
    }
    const auto used_cnt = static_cast<std::size_t>(w.at(pos++));
    auto& used = neighbor_used[m->from];
    for (std::size_t i = 0; i < used_cnt; ++i) used.push_back(w.at(pos++));
  }

  const int num_steps = static_cast<int>(schedule_.steps.size());
  if (step_ <= num_steps) {
    const auto [k, q] = schedule_.steps[static_cast<std::size_t>(step_ - 1)];
    std::map<NodeId, Value> next;
    for (const auto& [u, my_color] : edge_color_) {
      // Adjacent edge colors: my other live edges + u's other live edges.
      std::vector<Value> constraints;
      for (const auto& [w, c] : edge_color_) {
        if (w != u) constraints.push_back(c);
      }
      auto it = neighbor_info_.find(u);
      if (it != neighbor_info_.end()) {
        for (const auto& [uid, c] : it->second) {
          if (uid != ctx.id()) constraints.push_back(c);
        }
      }
      std::int64_t chosen_x = -1;
      for (std::int64_t x = 0; x < q && chosen_x < 0; ++x) {
        const Value mine = poly_eval(my_color, k, q, x);
        bool ok = true;
        for (Value c : constraints) {
          DGAP_ASSERT(c != my_color,
                      "line-graph Linial invariant: proper throughout");
          if (poly_eval(c, k, q, x) == mine) {
            ok = false;
            break;
          }
        }
        if (ok) chosen_x = x;
      }
      DGAP_ASSERT(chosen_x >= 0, "q > kΔ_L guarantees a separating point");
      next[u] = chosen_x * q + poly_eval(my_color, k, q, chosen_x);
    }
    edge_color_ = std::move(next);
  } else if (step_ <= num_steps + schedule_.reduction_rounds) {
    const Value target = schedule_.final_colors - (step_ - num_steps);
    for (auto& [u, my_color] : edge_color_) {
      if (my_color != target) continue;
      std::vector<bool> used(static_cast<std::size_t>(delta_l_ + 1), false);
      auto mark = [&](Value c) {
        if (c >= 0 && c <= delta_l_) used[static_cast<std::size_t>(c)] = true;
      };
      for (const auto& [w, c] : edge_color_) {
        if (w != u) mark(c);
      }
      auto it = neighbor_info_.find(u);
      if (it != neighbor_info_.end()) {
        for (const auto& [uid, c] : it->second) {
          if (uid != ctx.id()) mark(c);
        }
      }
      // Colors already OUTPUT on adjacent edges (palette values are
      // 1-based; internal colors 0-based).
      for (NodeId w : ctx.neighbors()) {
        const Value out = ctx.output_for(w);
        if (out != kUndefined) mark(out - 1);
      }
      auto itu = neighbor_used.find(u);
      if (itu != neighbor_used.end()) {
        for (Value out : itu->second) mark(out - 1);
      }
      Value fresh = -1;
      for (Value c = 0; c <= delta_l_; ++c) {
        if (!used[static_cast<std::size_t>(c)]) {
          fresh = c;
          break;
        }
      }
      DGAP_ASSERT(fresh >= 0, "the 2Δ−1 palette always has a free color");
      my_color = fresh;
    }
  } else {
    for (const auto& [u, c] : edge_color_) {
      DGAP_ASSERT(c >= 0 && c <= delta_l_,
                  "final line-graph colors must fit the palette");
      (void)u;
    }
    done_ = true;
    return Status::kFinished;
  }
  return Status::kRunning;
}

PhaseProgram::Status EdgeColorEmitPhase::on_receive(NodeContext& ctx,
                                                    Channel&) {
  if (ctx.degree() == 0) {
    ctx.set_output(0);
    ctx.terminate();
    return Status::kFinished;
  }
  for (NodeId u : ctx.neighbors()) {
    if (ctx.has_output_for(u)) continue;
    const Value c = color_(u);
    if (c != kUndefined) ctx.set_output_for(u, c);
  }
  ctx.terminate();
  return Status::kFinished;
}

void EdgeColorClassEmitPhase::on_send(NodeContext& ctx, Channel& ch) {
  // Broadcast the colors already output on this node's edges so both
  // endpoints of every emitting edge agree on the forbidden set.
  std::vector<Value> words;
  for (NodeId u : ctx.neighbors()) {
    const Value c = ctx.output_for(u);
    if (c != kUndefined) words.push_back(c);
  }
  words.insert(words.begin(), static_cast<Value>(words.size()));
  ch.broadcast(words);
}

PhaseProgram::Status EdgeColorClassEmitPhase::on_receive(NodeContext& ctx,
                                                         Channel& ch) {
  ++step_;
  if (ctx.degree() == 0) {
    ctx.set_output(0);
    ctx.terminate();
    return Status::kFinished;
  }
  const Value palette =
      std::max<Value>(1, 2 * static_cast<Value>(ctx.delta()) - 1);
  std::map<NodeId, std::vector<Value>> neighbor_used;
  for (const Message* m : ch.inbox()) {
    const auto cnt = static_cast<std::size_t>(m->words.at(0));
    auto& used = neighbor_used[m->from];
    for (std::size_t i = 0; i < cnt; ++i) used.push_back(m->words.at(1 + i));
  }
  if (step_ <= palette) {
    for (NodeId u : ctx.active_neighbors()) {
      if (ctx.has_output_for(u)) continue;
      if (color_(u) != step_) continue;
      std::vector<bool> used(static_cast<std::size_t>(palette + 1), false);
      auto mark = [&](Value c) {
        if (c >= 1 && c <= palette) used[static_cast<std::size_t>(c)] = true;
      };
      for (NodeId w : ctx.neighbors()) mark(ctx.output_for(w));
      auto it = neighbor_used.find(u);
      if (it != neighbor_used.end()) {
        for (Value c : it->second) mark(c);
      }
      Value fresh = kUndefined;
      for (Value c = 1; c <= palette; ++c) {
        if (!used[static_cast<std::size_t>(c)]) {
          fresh = c;
          break;
        }
      }
      DGAP_ASSERT(fresh != kUndefined,
                  "2Δ−1 exceeds the two endpoints' used colors");
      ctx.set_output_for(u, fresh);
    }
  }
  bool complete = true;
  for (NodeId u : ctx.neighbors()) {
    if (ctx.neighbor_active(u) && ctx.output_for(u) == kUndefined) {
      complete = false;
    }
  }
  if (complete) {
    // Edges to terminated co-endpoints were colored before termination.
    ctx.terminate();
    return Status::kFinished;
  }
  return step_ > palette ? Status::kFinished : Status::kRunning;
}

namespace {

class LineGraphEdgeColoringPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override {
    if (emit_) {
      emit_->on_send(ctx, ch);
    } else {
      part1_.on_send(ctx, ch);
    }
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    if (!emit_) {
      if (part1_.on_receive(ctx, ch) == Status::kFinished) {
        emit_ = std::make_unique<EdgeColorEmitPhase>(
            [this](NodeId u) { return part1_.edge_palette_color(u); });
      }
      return Status::kRunning;
    }
    return emit_->on_receive(ctx, ch);
  }

 private:
  LineGraphLinialPhase part1_;
  std::unique_ptr<EdgeColorEmitPhase> emit_;
};

}  // namespace

PhaseFactory make_line_graph_edge_coloring_reference() {
  return [](NodeId) { return std::make_unique<LineGraphEdgeColoringPhase>(); };
}

ProgramFactory line_graph_edge_coloring_algorithm() {
  return phase_as_algorithm(make_line_graph_edge_coloring_reference());
}

}  // namespace dgap
