#include "matching/checkers.hpp"

#include <sstream>

#include "common/require.hpp"
#include "sim/phase.hpp"

namespace dgap {
namespace {

bool defined(Value v) { return v != kUndefined && v != kLeftoverActive; }

/// Internal index of the neighbor of v with identifier `id`, or kNoNode.
NodeId neighbor_with_id(const Graph& g, NodeId v, Value id) {
  for (NodeId u : g.neighbors(v)) {
    if (g.id(u) == id) return u;
  }
  return kNoNode;
}

}  // namespace

std::string check_matching(const Graph& g, const std::vector<Value>& outputs) {
  DGAP_REQUIRE(outputs.size() == static_cast<std::size_t>(g.num_nodes()),
               "one output per node");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!defined(outputs[v])) {
      std::ostringstream os;
      os << "node " << v << " has no output";
      return os.str();
    }
    if (outputs[v] == kNoNode) {
      for (NodeId u : g.neighbors(v)) {
        if (defined(outputs[u]) && outputs[u] == kNoNode) {
          std::ostringstream os;
          os << "adjacent nodes " << v << " and " << u
             << " are both unmatched (not maximal)";
          return os.str();
        }
      }
      continue;
    }
    const NodeId partner = neighbor_with_id(g, v, outputs[v]);
    if (partner == kNoNode) {
      std::ostringstream os;
      os << "node " << v << " claims partner id " << outputs[v]
         << " which is not a neighbor";
      return os.str();
    }
    if (outputs[partner] != g.id(v)) {
      std::ostringstream os;
      os << "asymmetric match: node " << v << " -> " << partner
         << " but not back";
      return os.str();
    }
  }
  return {};
}

bool is_valid_maximal_matching(const Graph& g,
                               const std::vector<Value>& outputs) {
  return check_matching(g, outputs).empty();
}

bool is_extendable_partial_matching(const Graph& g,
                                    const std::vector<Value>& outputs) {
  DGAP_REQUIRE(outputs.size() == static_cast<std::size_t>(g.num_nodes()),
               "one output per node");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!defined(outputs[v])) continue;
    if (outputs[v] == kNoNode) {
      // ⊥ is only safe when every neighbor is already matched.
      for (NodeId u : g.neighbors(v)) {
        if (!defined(outputs[u]) || outputs[u] == kNoNode) return false;
      }
      continue;
    }
    const NodeId partner = neighbor_with_id(g, v, outputs[v]);
    if (partner == kNoNode) return false;
    if (!defined(outputs[partner]) || outputs[partner] != g.id(v)) {
      return false;
    }
  }
  return true;
}

int matching_size(const Graph& g, const std::vector<Value>& outputs) {
  int pairs = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!defined(outputs[v]) || outputs[v] == kNoNode) continue;
    const NodeId partner = neighbor_with_id(g, v, outputs[v]);
    if (partner != kNoNode && v < partner && defined(outputs[partner]) &&
        outputs[partner] == g.id(v)) {
      ++pairs;
    }
  }
  return pairs;
}

}  // namespace dgap
