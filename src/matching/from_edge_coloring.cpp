#include "matching/from_edge_coloring.hpp"

#include "common/require.hpp"

namespace dgap {

PhaseProgram::Status EdgeColorToMatchingPhase::on_receive(NodeContext& ctx,
                                                          Channel&) {
  ++step_;
  if (ctx.active_neighbors().empty()) {
    // Every neighbor has terminated (matched or ⊥); maximality is already
    // guaranteed around this node.
    ctx.set_output(kNoNode);
    ctx.terminate();
    return Status::kRunning;
  }
  const Value palette =
      std::max<Value>(1, 2 * static_cast<Value>(ctx.delta()) - 1);
  if (step_ <= palette) {
    // Color class `step_`: at most one of my live edges carries it
    // (proper edge coloring), and its co-endpoint runs the same rule, so
    // both adopt the match in the same round.
    for (NodeId u : ctx.active_neighbors()) {
      if (edge_color_(u) == step_) {
        ctx.set_output(ctx.neighbor_id(u));
        ctx.terminate();
        return Status::kRunning;
      }
    }
    return Status::kRunning;
  }
  // Drain round: any edge between two still-unmatched nodes would have
  // been adopted when its color class came up, so no active neighbors can
  // remain here.
  DGAP_ASSERT(ctx.active_neighbors().empty(),
              "all classes processed: remaining nodes must be isolated");
  ctx.set_output(kNoNode);
  ctx.terminate();
  return Status::kFinished;
}

}  // namespace dgap
