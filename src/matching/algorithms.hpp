// Maximal Matching building blocks (Section 8.1).
//
//  * MatchingBasePhase    — 2 rounds: mutually-predicted pairs match; a
//                           ⊥-predicting node whose neighbors all matched
//                           outputs ⊥.
//  * MatchingInitPhase    — reasonable initialization: additionally, ANY
//                           node whose neighbors all matched outputs ⊥
//                           (not a pruning algorithm).
//  * GreedyMatchingPhase  — the measure-uniform algorithm in groups of
//                           three rounds (propose / accept / announce);
//                           round complexity ≤ 3⌊s/2⌋ on an s-node
//                           component.
//  * MatchingCleanupPhase — 1 round: an active node whose terminated
//                           neighbor output a match pointing at it adopts
//                           the match (restores extendability after an
//                           arbitrary cut).
#pragma once

#include <vector>

#include "sim/phase.hpp"

namespace dgap {

inline constexpr int kMatchingBaseRounds = 2;
inline constexpr int kMatchingInitRounds = 2;
inline constexpr int kMatchingCleanupRounds = 1;

/// The init/base phases' step-0 broadcast from a node predicted unmatched
/// ({kMsgPrediction, ⊥}) — the dominant payload under sparse predictions,
/// and the default message the message-reduction pass (sim/compile.hpp)
/// decodes from silence in the compiled template assemblies.
std::vector<Value> matching_init_default();

class MatchingBasePhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  int step_ = 0;
  NodeId partner_ = kNoNode;
};

class MatchingInitPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  int step_ = 0;
  NodeId partner_ = kNoNode;
};

class GreedyMatchingPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  int step_ = 0;           // 1-based; groups of three rounds
  NodeId proposed_to_ = kNoNode;
  NodeId accepted_ = kNoNode;  // the proposer we accepted
  NodeId partner_ = kNoNode;
};

class MatchingCleanupPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;
};

PhaseFactory make_matching_base();
PhaseFactory make_matching_init();
PhaseFactory make_greedy_matching();
PhaseFactory make_matching_cleanup();

ProgramFactory greedy_matching_algorithm();

}  // namespace dgap
