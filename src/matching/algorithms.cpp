#include "matching/algorithms.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace dgap {

namespace {

// Message tags (first word).
constexpr Value kMsgPrediction = 1;
constexpr Value kMsgMatched = 2;
constexpr Value kMsgPropose = 3;
constexpr Value kMsgAccept = 4;

bool is_local_max(const NodeContext& ctx) {
  for (NodeId u : ctx.active_neighbors()) {
    if (ctx.neighbor_id(u) > ctx.id()) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Base algorithm (2 rounds).
// ---------------------------------------------------------------------------

void MatchingBasePhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) {
    ch.broadcast({kMsgPrediction, ctx.prediction()});
  } else if (step_ == 1 && partner_ != kNoNode) {
    ch.broadcast({kMsgMatched});
  }
}

PhaseProgram::Status MatchingBasePhase::on_receive(NodeContext& ctx,
                                                   Channel& ch) {
  ++step_;
  if (step_ == 1) {
    for (const Message* m : ch.inbox()) {
      if (m->words.at(0) != kMsgPrediction) continue;
      // Mutual predictions: I predict them, they predict me.
      if (ctx.prediction() == ctx.neighbor_id(m->from) &&
          m->words.at(1) == ctx.id()) {
        partner_ = m->from;
      }
    }
    return Status::kRunning;
  }
  if (partner_ != kNoNode) {
    ctx.set_output(ctx.neighbor_id(partner_));
    ctx.terminate();
  } else if (ctx.prediction() == kNoNode) {
    std::size_t matched_neighbors = 0;
    for (const Message* m : ch.inbox()) {
      if (m->words.at(0) == kMsgMatched) ++matched_neighbors;
    }
    if (matched_neighbors == ctx.neighbors().size()) {
      ctx.set_output(kNoNode);
      ctx.terminate();
    }
  }
  return Status::kFinished;
}

// ---------------------------------------------------------------------------
// Reasonable initialization: also lets non-⊥ predictors output ⊥ when all
// their neighbors matched (Section 8.1 — reasonable but not pruning).
// ---------------------------------------------------------------------------

void MatchingInitPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ == 0) {
    ch.broadcast({kMsgPrediction, ctx.prediction()});
  } else if (step_ == 1 && partner_ != kNoNode) {
    ch.broadcast({kMsgMatched});
  }
}

PhaseProgram::Status MatchingInitPhase::on_receive(NodeContext& ctx,
                                                   Channel& ch) {
  ++step_;
  if (step_ == 1) {
    for (const Message* m : ch.inbox()) {
      if (m->words.at(0) != kMsgPrediction) continue;
      if (ctx.prediction() == ctx.neighbor_id(m->from) &&
          m->words.at(1) == ctx.id()) {
        partner_ = m->from;
      }
    }
    return Status::kRunning;
  }
  if (partner_ != kNoNode) {
    ctx.set_output(ctx.neighbor_id(partner_));
    ctx.terminate();
  } else {
    std::size_t matched_neighbors = 0;
    for (const Message* m : ch.inbox()) {
      if (m->words.at(0) == kMsgMatched) ++matched_neighbors;
    }
    if (matched_neighbors == ctx.neighbors().size()) {
      ctx.set_output(kNoNode);
      ctx.terminate();
    }
  }
  return Status::kFinished;
}

// ---------------------------------------------------------------------------
// Measure-uniform matching (groups of three rounds).
// ---------------------------------------------------------------------------

void GreedyMatchingPhase::on_send(NodeContext& ctx, Channel& ch) {
  switch (step_ % 3) {
    case 0:  // propose
      proposed_to_ = kNoNode;
      accepted_ = kNoNode;
      if (!ctx.active_neighbors().empty() && is_local_max(ctx)) {
        NodeId target = kNoNode;
        Value best = 0;
        for (NodeId u : ctx.active_neighbors()) {
          const Value uid = ctx.neighbor_id(u);
          if (target == kNoNode || uid < best) {
            target = u;
            best = uid;
          }
        }
        proposed_to_ = target;
        ch.send(target, {kMsgPropose});
      }
      break;
    case 1:  // accept
      if (accepted_ != kNoNode) ch.send(accepted_, {kMsgAccept});
      break;
    case 2:  // announce (skip if the tentative partner went stale — see
             // the liveness re-check in on_receive)
      if (partner_ != kNoNode && ctx.neighbor_active(partner_)) {
        ch.broadcast({kMsgMatched});
      }
      break;
  }
}

PhaseProgram::Status GreedyMatchingPhase::on_receive(NodeContext& ctx,
                                                     Channel& ch) {
  const int phase = step_ % 3;
  ++step_;
  switch (phase) {
    case 0: {
      if (ctx.active_neighbors().empty()) {
        ctx.set_output(kNoNode);
        ctx.terminate();
        return Status::kRunning;
      }
      // Choose the proposal from the largest-identifier proposer.
      for (const Message* m : ch.inbox()) {
        if (m->words.at(0) != kMsgPropose) continue;
        if (accepted_ == kNoNode ||
            ctx.neighbor_id(m->from) > ctx.neighbor_id(accepted_)) {
          accepted_ = m->from;
        }
      }
      break;
    }
    case 1: {
      for (const Message* m : ch.inbox()) {
        if (m->words.at(0) == kMsgAccept && m->from == proposed_to_) {
          partner_ = proposed_to_;
        }
      }
      if (accepted_ != kNoNode && ctx.neighbor_active(accepted_)) {
        partner_ = accepted_;
      }
      break;
    }
    case 2: {
      // A tentative partner can go stale when this algorithm is paused by
      // an interleaving/parallel composition and the partner terminates
      // through the reference algorithm meanwhile; re-check liveness
      // before committing (a live partner runs the same rule, so the two
      // sides stay symmetric).
      if (partner_ != kNoNode && !ctx.neighbor_active(partner_)) {
        partner_ = kNoNode;
      }
      if (partner_ != kNoNode) {
        ctx.set_output(ctx.neighbor_id(partner_));
        ctx.terminate();
        return Status::kRunning;
      }
      // Freshly matched neighbors announced themselves this round; if no
      // other neighbor remains, this node can close out with ⊥ now.
      const auto live = ctx.active_neighbors();
      std::vector<NodeId> remaining(live.begin(), live.end());
      for (const Message* m : ch.inbox()) {
        if (m->words.at(0) != kMsgMatched) continue;
        auto it = std::find(remaining.begin(), remaining.end(), m->from);
        if (it != remaining.end()) remaining.erase(it);
      }
      if (remaining.empty()) {
        ctx.set_output(kNoNode);
        ctx.terminate();
      }
      break;
    }
  }
  return Status::kRunning;
}

// ---------------------------------------------------------------------------
// Clean-up (1 round).
// ---------------------------------------------------------------------------

void MatchingCleanupPhase::on_send(NodeContext&, Channel&) {}

PhaseProgram::Status MatchingCleanupPhase::on_receive(NodeContext& ctx,
                                                      Channel&) {
  for (NodeId u : ctx.neighbors()) {
    if (ctx.neighbor_output(u) == ctx.id()) {
      ctx.set_output(ctx.neighbor_id(u));
      ctx.terminate();
      break;
    }
  }
  return Status::kFinished;
}

std::vector<Value> matching_init_default() {
  return {kMsgPrediction, kNoNode};
}

PhaseFactory make_matching_base() {
  return [](NodeId) { return std::make_unique<MatchingBasePhase>(); };
}
PhaseFactory make_matching_init() {
  return [](NodeId) { return std::make_unique<MatchingInitPhase>(); };
}
PhaseFactory make_greedy_matching() {
  return [](NodeId) { return std::make_unique<GreedyMatchingPhase>(); };
}
PhaseFactory make_matching_cleanup() {
  return [](NodeId) { return std::make_unique<MatchingCleanupPhase>(); };
}

ProgramFactory greedy_matching_algorithm() {
  return phase_as_algorithm(make_greedy_matching());
}

}  // namespace dgap
