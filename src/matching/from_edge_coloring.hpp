// Maximal matching from a proper edge coloring (part 2 of a two-part
// reference algorithm for the Maximal Matching problem).
//
// Given a (2Δ−1)-edge coloring of the remaining graph (computed
// fault-tolerantly by the line-graph Linial phase), process one color
// class per round: the edges of color i form a matching, so every edge of
// color i whose endpoints are both still unmatched is adopted — both
// endpoints decide symmetrically and terminate together. After all
// 2Δ−1 classes plus one drain round, every remaining node has no active
// neighbor and outputs ⊥. Total: 2Δ rounds, independent of n.
#pragma once

#include "sim/phase.hpp"

namespace dgap {

class EdgeColorToMatchingPhase final : public PhaseProgram {
 public:
  /// `edge_color(u)` = the palette color (1..2Δ−1) of the live edge to
  /// neighbor u, or kUndefined if that edge is not part of the remaining
  /// problem.
  using EdgeColorFn = std::function<Value(NodeId)>;
  explicit EdgeColorToMatchingPhase(EdgeColorFn edge_color)
      : edge_color_(std::move(edge_color)) {}

  void on_send(NodeContext&, Channel&) override {}
  Status on_receive(NodeContext& ctx, Channel&) override;

 private:
  EdgeColorFn edge_color_;
  int step_ = 0;
};

}  // namespace dgap
