// Validity checkers for the Maximal Matching problem.
//
// Outputs encode the matched partner's *identifier*, or kNoNode (⊥) for an
// unmatched node. A complete solution must be symmetric (y_i = id(j) iff
// y_j = id(i), {i,j} an edge) and maximal (a ⊥ node has no ⊥ neighbor).
// A partial solution is extendable (Section 8.1) iff matched outputs are
// symmetric and every ⊥-output node's neighbors are all matched.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace dgap {

std::string check_matching(const Graph& g, const std::vector<Value>& outputs);

bool is_valid_maximal_matching(const Graph& g,
                               const std::vector<Value>& outputs);

bool is_extendable_partial_matching(const Graph& g,
                                    const std::vector<Value>& outputs);

/// Number of matched pairs in the outputs.
int matching_size(const Graph& g, const std::vector<Value>& outputs);

}  // namespace dgap
