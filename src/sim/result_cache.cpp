#include "sim/result_cache.hpp"

#include "common/require.hpp"
#include "sim/batch.hpp"

namespace dgap {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix_signed(std::uint64_t h, std::int64_t v) {
  return mix64(h, static_cast<std::uint64_t>(v));
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return mix64(h, bits);
}

}  // namespace

std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> bytes,
                          std::uint64_t h) {
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t graph_digest(const Graph& g) {
  std::uint64_t h = mix_signed(1469598103934665603ULL, g.num_nodes());
  h = mix_signed(h, g.id_bound());
  for (NodeId v = 0; v < g.num_nodes(); ++v) h = mix_signed(h, g.id(v));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (v < u) h = mix_signed(h, static_cast<std::int64_t>(v) *
                                       g.num_nodes() + u);
    }
  }
  return h;
}

std::uint64_t spec_digest(const GraphSpec& spec) {
  // Domain-separated from graph_digest so a spec key and a structural key
  // never collide by construction order alone.
  std::uint64_t h = mix64(1469598103934665603ULL, 0x53504543ULL);  // "SPEC"
  h = mix_signed(h, static_cast<int>(spec.family));
  h = mix_signed(h, spec.a);
  h = mix_signed(h, spec.b);
  h = mix_double(h, spec.p);
  h = mix64(h, spec.seed);
  h = mix_signed(h, static_cast<int>(spec.ids));
  return h;
}

std::uint64_t predictions_digest(const Predictions& pred) {
  std::uint64_t h = 1469598103934665603ULL;
  h = mix_signed(h, static_cast<std::int64_t>(pred.node_values().size()));
  for (Value v : pred.node_values()) h = mix_signed(h, v);
  h = mix_signed(h, static_cast<std::int64_t>(pred.edge_values().size()));
  for (const auto& row : pred.edge_values()) {
    h = mix_signed(h, static_cast<std::int64_t>(row.size()));
    for (Value v : row) h = mix_signed(h, v);
  }
  return h;
}

std::uint64_t provider_slot_digest(const PredictionProvider& provider,
                                   ProblemKind kind, std::uint64_t seed) {
  // Domain-separated ("PROV") so a provider-addressed slot can never
  // collide with a raw predictions_digest of the same numeric value.
  std::uint64_t h = mix64(1469598103934665603ULL, 0x50524F56ULL);  // "PROV"
  h = mix64(h, provider.digest());
  h = mix_signed(h, static_cast<int>(kind));
  h = mix64(h, seed);
  return h;
}

std::uint64_t options_digest(const EngineOptions& options) {
  std::uint64_t h = 1469598103934665603ULL;
  h = mix_signed(h, options.max_rounds);
  h = mix_signed(h, options.congest_word_limit);
  h = mix_signed(h, static_cast<int>(options.congest_policy));
  h = mix_signed(h, options.record_active_per_round ? 1 : 0);
  h = mix_signed(h, options.record_terminations ? 1 : 0);
  return h;
}

std::uint64_t result_cache_key(std::uint64_t instance_digest,
                               std::string_view algorithm_id,
                               std::uint64_t predictions_digest,
                               std::uint64_t options_digest, bool capture,
                               TraceDetail detail) {
  std::uint64_t h = mix64(1469598103934665603ULL, instance_digest);
  h = mix_signed(h, static_cast<std::int64_t>(algorithm_id.size()));
  for (char c : algorithm_id) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  h = mix64(h, predictions_digest);
  h = mix64(h, options_digest);
  h = mix_signed(h, capture ? 1 : 0);
  h = mix_signed(h, static_cast<int>(detail));
  return h;
}

std::uint64_t ResultCache::guard_of(const Entry& e) {
  return fnv1a_bytes(e.transcript, mix64(1469598103934665603ULL,
                                         result_checksum(e.result)));
}

std::shared_ptr<const ResultCache::Entry> ResultCache::get(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  DGAP_ASSERT(guard_of(*it->second.entry) == it->second.guard,
              "result cache entry was mutated after insertion");
  ++hits_;
  it->second.stamp = ++tick_;
  return it->second.entry;
}

void ResultCache::put(std::uint64_t key, RunResult result,
                      std::vector<std::uint8_t> transcript) {
  auto entry = std::make_shared<Entry>();
  entry->result = std::move(result);
  entry->transcript = std::move(transcript);
  const std::uint64_t guard = guard_of(*entry);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      entries_.emplace(key, Stored{std::move(entry), guard, 0});
  if (inserted) {
    it->second.stamp = ++tick_;
    evict_locked();
  }
}

void ResultCache::evict_locked() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.stamp < oldest->second.stamp) oldest = it;
    }
    entries_.erase(oldest);
    ++evictions_;
  }
}

void ResultCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  evict_locked();
}

std::size_t ResultCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::int64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::int64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

void ResultCache::poison_for_test(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  DGAP_REQUIRE(it != entries_.end(), "poison_for_test: key not present");
  it->second.entry->result.rounds ^= 1;
}

}  // namespace dgap
