#include "sim/batch.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "common/require.hpp"
#include "sim/thread_pool.hpp"
#include "sim/transcript.hpp"

namespace dgap {

BatchJob make_job(const Graph& g, ProgramFactory factory,
                  Predictions predictions, EngineOptions options) {
  BatchJob job;
  job.graph = &g;
  job.predictions = std::move(predictions);
  job.factory = std::move(factory);
  job.options = options;
  return job;
}

BatchJob make_job(const GraphSpec& spec, ProgramFactory factory,
                  Predictions predictions, EngineOptions options) {
  BatchJob job;
  job.spec = spec;
  job.use_spec = true;
  job.predictions = std::move(predictions);
  job.factory = std::move(factory);
  job.options = options;
  return job;
}

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {
  DGAP_REQUIRE(options_.num_workers >= 1, "num_workers must be >= 1");
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  scratch_.resize(static_cast<std::size_t>(pool_->num_slots()));
}

BatchRunner::~BatchRunner() = default;

int BatchRunner::num_workers() const { return pool_->num_slots(); }

std::size_t BatchRunner::add(BatchJob job) {
  DGAP_REQUIRE(job.factory != nullptr, "a batch job needs a program factory");
  DGAP_REQUIRE(job.graph != nullptr || job.use_spec,
               "a batch job needs a graph or a graph spec");
  DGAP_REQUIRE(!job.capture_transcript || job.options.trace_sink == nullptr,
               "capture_transcript installs its own trace sink; the job's "
               "options must not carry one");
  DGAP_REQUIRE(job.algorithm_id.empty() || job.options.trace_sink == nullptr,
               "a content-addressed job cannot carry a trace sink — the "
               "sink would not fire on a cache hit");
  DGAP_REQUIRE(job.provider == nullptr || (!job.predictions.has_node_values() &&
                                           !job.predictions.has_edge_values()),
               "a provider job materializes its own predictions; give one "
               "source, not both");
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t BatchRunner::add(const Graph& g, ProgramFactory factory,
                             Predictions predictions, EngineOptions options) {
  return add(make_job(g, std::move(factory), std::move(predictions), options));
}

std::size_t BatchRunner::add(const GraphSpec& spec, ProgramFactory factory,
                             Predictions predictions, EngineOptions options) {
  return add(
      make_job(spec, std::move(factory), std::move(predictions), options));
}

std::vector<BatchResult> BatchRunner::run_all() {
  // Resolve every spec through the cache up front, serially: cache fills in
  // submission order, and workers then only read shared immutable graphs.
  for (BatchJob& job : jobs_) {
    if (job.use_spec && job.graph == nullptr) {
      job.shared_graph = cache_.get(job.spec);
      job.graph = job.shared_graph.get();
    }
  }

  const std::size_t count = jobs_.size();
  std::vector<BatchResult> results(count);

  // Content addressing, serially and in submission order on both sides of
  // the pool: probe before dispatch (hits never reach a worker), fill
  // after the barrier (insertion order is the submission order, so the
  // cache's state after run_all is schedule-independent).
  std::vector<std::uint64_t> keys(count, 0);
  std::vector<std::uint8_t> cacheable(count, 0);
  std::vector<std::uint8_t> cached(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const BatchJob& job = jobs_[i];
    if (job.algorithm_id.empty()) continue;
    cacheable[i] = 1;
    const std::uint64_t instance =
        job.use_spec ? spec_digest(job.spec) : graph_digest(*job.graph);
    const std::uint64_t pred_slot =
        job.provider != nullptr
            ? provider_slot_digest(*job.provider, job.provider_kind,
                                   job.provider_seed)
            : predictions_digest(job.predictions);
    keys[i] = result_cache_key(instance, job.algorithm_id, pred_slot,
                               options_digest(job.options),
                               job.capture_transcript, job.transcript_detail);
    if (auto entry = results_.get(keys[i])) {
      results[i].index = i;
      results[i].ok = true;
      results[i].cache_hit = true;
      results[i].result = entry->result;
      results[i].transcript = entry->transcript;
      cached[i] = 1;
    }
  }

  // Materialize provider predictions for the jobs that will actually
  // run, serially in submission order (providers are deterministic given
  // the seed, so this is reproducible regardless of worker count).
  for (std::size_t i = 0; i < count; ++i) {
    BatchJob& job = jobs_[i];
    if (job.provider == nullptr || cached[i]) continue;
    job.predictions = provide_with_seed(*job.provider, *job.graph,
                                        job.provider_kind, job.provider_seed);
  }

  std::atomic<std::size_t> next{0};
  // Work-stealing counter over the persistent pool. Which worker runs
  // which job is timing-dependent; results are not: each job's engine is
  // deterministic and single-threaded, and results are keyed by
  // submission index. The pool's phase barrier makes the workers' writes
  // visible before run_all returns.
  pool_->run([&](int slot) {
    EngineScratch& scratch = scratch_[static_cast<std::size_t>(slot)];
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (cached[i]) continue;
      BatchJob& job = jobs_[i];
      BatchResult& out = results[i];
      out.index = i;
      EngineOptions options = job.options;
      options.num_threads = 1;  // parallelism lives at the batch level
      std::unique_ptr<TranscriptWriter> writer;
      if (job.capture_transcript) {
        writer = std::make_unique<TranscriptWriter>(
            job.transcript_detail, job.transcript_label,
            job.use_spec ? std::optional<GraphSpec>(job.spec)
                         : std::nullopt);
        options.trace_sink = writer.get();
      }
      try {
        Engine engine(*job.graph, job.predictions, std::move(job.factory),
                      options, /*shared_pool=*/nullptr, &scratch);
        out.result = engine.run();
        out.ok = true;
        if (writer) out.transcript = writer->take_bytes();
      } catch (const std::exception& e) {
        out.error = e.what();
      }
    }
  });
  for (std::size_t i = 0; i < count; ++i) {
    if (cacheable[i] && !cached[i] && results[i].ok) {
      results_.put(keys[i], results[i].result, results[i].transcript);
    }
  }
  jobs_.clear();
  return results;
}

std::vector<BatchResult> run_batch(std::vector<BatchJob> jobs,
                                   BatchOptions options) {
  BatchRunner runner(options);
  for (BatchJob& job : jobs) runner.add(std::move(job));
  return runner.run_all();
}

std::vector<RunResult> take_results(std::vector<BatchResult>&& results) {
  std::vector<RunResult> out;
  out.reserve(results.size());
  for (BatchResult& r : results) {
    if (!r.ok) {
      throw std::runtime_error("batch job " + std::to_string(r.index) +
                               " failed: " + r.error);
    }
    out.push_back(std::move(r.result));
  }
  return out;
}

namespace {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
};

}  // namespace

std::uint64_t result_checksum(const RunResult& result) {
  Fnv1a f;
  f.mix(result.completed ? 1 : 0);
  f.mix(result.rounds);
  for (int t : result.termination_round) f.mix(t);
  for (Value v : result.outputs) f.mix(v);
  for (const auto& edges : result.edge_outputs) {
    f.mix(static_cast<std::uint64_t>(edges.size()));
    for (const auto& [key, v] : edges) {
      f.mix(static_cast<std::uint64_t>(key));
      f.mix(v);
    }
  }
  f.mix(result.total_messages);
  f.mix(result.total_words);
  f.mix(result.max_message_words);
  f.mix(result.congest_violations);
  f.mix(result.deferred_messages);
  f.mix(result.deferred_words);
  f.mix(result.truncated_messages);
  f.mix(result.truncated_words);
  f.mix(result.link_backlog_peak_words);
  f.mix(result.rounds_with_backlog);
  for (int a : result.active_per_round) f.mix(a);
  for (const auto& terms : result.terminations_per_round) {
    f.mix(static_cast<std::uint64_t>(terms.size()));
    for (NodeId v : terms) f.mix(static_cast<std::uint64_t>(v));
  }
  return f.h;
}

std::uint64_t results_checksum(std::span<const RunResult> results) {
  Fnv1a f;
  for (const RunResult& r : results) f.mix(result_checksum(r));
  return f.h;
}

}  // namespace dgap
