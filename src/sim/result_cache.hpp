// Content-addressed result cache: repeated jobs are hits, not reruns.
//
// The engine is deterministic, so a simulation's RunResult (and its
// transcript) is a pure function of (instance, algorithm, predictions,
// semantic engine options). A job whose algorithm is named by a stable
// string id can therefore be CONTENT-ADDRESSED: its key is an FNV-1a
// digest of those inputs, and a sweep that re-submits an identical job —
// across batches, epochs (sim/epoch.hpp), or repeated bench passes —
// gets the stored result back without running anything. This layers on
// GraphCache (graph/spec.hpp): the spec cache de-duplicates instance
// CONSTRUCTION, the result cache de-duplicates EXECUTION.
//
// Keys never hash a ProgramFactory (std::function is opaque); the
// algorithm id string is the caller's contract that equal ids mean equal
// per-node behavior. Execution knobs (num_threads, worker counts, trace
// sinks) are excluded from digests, exactly like the transcript header —
// a key names the logical run. Whether a transcript was captured, and at
// which detail, IS part of the key, so a hit always carries the artifacts
// the job asked for.
//
// Poisoning guard: every entry stores a checksum of its own payload at
// put() time, and get() re-derives it — a mutated entry fails with
// DGAP_ASSERT instead of silently serving corrupt results
// (tests/epoch_test.cpp pins this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "graph/spec.hpp"
#include "predict/predictions.hpp"
#include "predict/provider.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace dgap {

// ---- FNV-1a digests over the cache key's components -----------------------

std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> bytes,
                          std::uint64_t h = 1469598103934665603ULL);

/// Structural digest: n, id bound, identifiers, adjacency. Two graphs with
/// equal digests are equal up to hash collision; mutated (non-spec-built)
/// graphs get their key component from this.
std::uint64_t graph_digest(const Graph& g);

/// Digest of a spec's fields — cheaper than building + graph_digest, and
/// equal specs name bit-identical graphs by construction.
std::uint64_t spec_digest(const GraphSpec& spec);

std::uint64_t predictions_digest(const Predictions& pred);

/// The predictions slot of a provider-addressed key: instead of hashing a
/// materialized prediction vector, hash the provider's own digest plus
/// the (kind, seed) it will be asked with. Sound because the provider
/// digest contract (predict/provider.hpp) promises equal digests ⇒ equal
/// provide() output for every (graph, kind, seed) — and the graph is
/// already keyed by the instance digest next to this slot.
std::uint64_t provider_slot_digest(const PredictionProvider& provider,
                                   ProblemKind kind, std::uint64_t seed);

/// Semantic options only: max_rounds, congest budget/policy, record flags.
/// num_threads and trace_sink are execution knobs and excluded.
std::uint64_t options_digest(const EngineOptions& options);

/// The content address of one job. `instance_digest` is spec_digest() or
/// graph_digest(); `capture`/`detail` describe the transcript request.
std::uint64_t result_cache_key(std::uint64_t instance_digest,
                               std::string_view algorithm_id,
                               std::uint64_t predictions_digest,
                               std::uint64_t options_digest,
                               bool capture = false,
                               TraceDetail detail = TraceDetail::kPayloads);

// ---- The cache ------------------------------------------------------------

class ResultCache {
 public:
  struct Entry {
    RunResult result;
    /// Serialized transcript iff the cached job captured one.
    std::vector<std::uint8_t> transcript;
  };

  /// The entry for `key`, or null on a miss. Re-derives the entry's
  /// payload checksum and DGAP_ASSERTs it — a poisoned entry throws.
  std::shared_ptr<const Entry> get(std::uint64_t key);

  /// Store a result (first write wins; a duplicate put is a no-op, which
  /// keeps batch fills deterministic regardless of in-batch duplicates).
  void put(std::uint64_t key, RunResult result,
           std::vector<std::uint8_t> transcript = {});

  /// Bound the entry count: 0 (the default) means unbounded; otherwise
  /// the least-recently-USED entries (get() refreshes recency, put() of
  /// a new key counts as a use) are evicted until size() <= capacity.
  /// Shrinks immediately if the cache is already over the new cap.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;
  std::int64_t evictions() const;

  std::size_t size() const;
  std::int64_t hits() const;
  std::int64_t misses() const;
  void clear();

  /// Test hook: flip a byte of the stored entry so the next get() trips
  /// the poisoning guard. Requires the key to be present.
  void poison_for_test(std::uint64_t key);

 private:
  struct Stored {
    std::shared_ptr<Entry> entry;
    std::uint64_t guard = 0;  // payload checksum at put() time
    std::uint64_t stamp = 0;  // recency tick of the last get()/put()
  };
  static std::uint64_t guard_of(const Entry& e);
  void evict_locked();  // enforce capacity_; requires mu_ held

  mutable std::mutex mu_;
  std::map<std::uint64_t, Stored> entries_;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t tick_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace dgap
