// Minimal persistent thread pool for the engine's sharded phases.
//
// The engine runs thousands of short send/receive phases per simulation, so
// spawning std::threads per phase would dominate the runtime; this pool
// keeps its workers parked on a condition variable between phases. The only
// operation is run(fn): invoke fn(slot) for every slot in [0, num_slots),
// slot 0 on the calling thread, and block until all slots finished. An
// exception thrown by any slot (DGAP_REQUIRE inside a simulated program,
// say) is captured and rethrown on the calling thread after the phase
// barrier, so error semantics match serial execution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dgap {

class ThreadPool {
 public:
  /// A pool with `slots` parallel slots spawns `slots - 1` workers; slot 0
  /// always executes on the thread calling run(). slots must be >= 1.
  explicit ThreadPool(int slots) : slots_(slots < 1 ? 1 : slots) {
    for (int s = 1; s < slots_; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int num_slots() const { return slots_; }

  /// Runs fn(0..slots-1) across the pool and waits for all of them.
  void run(const std::function<void(int)>& fn) {
    if (slots_ == 1) {
      fn(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      pending_ = slots_ - 1;
      first_error_ = nullptr;
      ++generation_;
    }
    cv_work_.notify_all();
    try {
      fn(0);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  void worker_loop(int slot) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (stop_) return;
        job = job_;
      }
      try {
        (*job)(slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  const int slots_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  int pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace dgap
