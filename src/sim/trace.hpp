// The engine's event spine: a single observer interface onto which every
// form of run observability is built.
//
// The engine is deterministic — a RunResult is a pure function of (graph,
// predictions, factory, options) — so the stream of per-round events
// (round begins, message deliveries, terminations with outputs) is a
// *complete* description of a run. A TraceSink receives that stream; the
// consumers built on it are
//
//   * detail::RunRecordSink — reimplements the classic EngineOptions
//     recording flags (record_active_per_round / record_terminations);
//     the RunResult fields stay bit-identical to the pre-spine engine;
//   * TranscriptWriter (sim/transcript.hpp) — the versioned binary
//     record/replay format behind golden-transcript regression, the
//     ReplayEngine debugger and `tools/dgap_trace`;
//   * VerifySink (sim/transcript.hpp) — replays a recorded transcript
//     against a live run and fails at the first divergent event.
//
// Cost contract: when no sink is installed the engine performs no virtual
// calls and no per-message work — the hot path tests one cached integer.
// Per-message events are additionally gated on the sink's detail level, so
// a rounds-only sink costs O(rounds + terminations) calls, never
// O(messages). All events are emitted from the engine's serial sections
// (the round loop, the delivery scatter, the termination sweep); sinks
// never race with the sharded send/receive phases and need no locking.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/arena.hpp"

namespace dgap {

struct EngineOptions;
struct RunResult;

/// Wall-clock nanoseconds spent in each stage of the engine's round
/// pipeline. The engine accumulates one instance over the run
/// (RunResult::phase_ns) and emits the per-round deltas through
/// TraceSink::on_round_profile, so a perf regression is attributable to a
/// stage instead of rediscovered by bisection. Like RunResult::wall_ms,
/// these are measurements of the host, not of the simulated network:
/// excluded from determinism comparisons and never part of a transcript.
struct PhaseProfile {
  std::int64_t send_ns = 0;     // program on_send hooks (sharded)
  std::int64_t scatter_ns = 0;  // resolve + route + inbox scatter (fast path)
  std::int64_t link_ns = 0;     // enforcing link-layer delivery (kDefer etc.)
  std::int64_t trace_ns = 0;    // per-message trace emission
  std::int64_t receive_ns = 0;  // program on_receive hooks (sharded)
  std::int64_t mutate_ns = 0;   // termination sweep, compaction, wake rebuild

  std::int64_t sum() const {
    return send_ns + scatter_ns + link_ns + trace_ns + receive_ns + mutate_ns;
  }
  void accumulate(const PhaseProfile& o) {
    send_ns += o.send_ns;
    scatter_ns += o.scatter_ns;
    link_ns += o.link_ns;
    trace_ns += o.trace_ns;
    receive_ns += o.receive_ns;
    mutate_ns += o.mutate_ns;
  }
};

/// How much of the run a sink wants to observe.
enum class TraceDetail {
  /// Round begins (with active counts) and terminations (with outputs).
  kRounds = 0,
  /// Plus one event per delivered message: (round, from, to, channel,
  /// word count, truncated) — the communication pattern without payloads.
  kMessages = 1,
  /// Plus the payload words of every delivered message.
  kPayloads = 2,
};

/// One message delivery, observed at the receiver in the round it arrives
/// (under CongestPolicy::kDefer that is the round the last word crossed
/// the link, so a transcript records the *effective* schedule). `words`
/// borrows the round arena — valid only during the callback; sinks that
/// keep payloads must copy them out.
struct TraceMessage {
  int round = 0;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  int channel = 0;
  WordSpan words;
  bool truncated = false;
  /// Synthesized by the message-reduction pass (sim/compile.hpp): the
  /// payload never crossed the wire, but the receiver observed it all the
  /// same, so it is part of the delivery stream.
  bool suppressed = false;
};

/// Observer of one engine run. Hooks fire in run order:
///   on_run_begin, then per round (on_round_begin, on_message*,
///   on_termination*), then on_run_end. Messages of a round arrive
///   receiver-grouped in the engine's canonical delivery order (the inbox
///   order: receivers in first-touch order, each slice sorted by (sender,
///   channel, send order)); terminations arrive in ascending node order.
/// The stream is bit-identical across num_threads and batch scheduling —
/// the same determinism contract as RunResult, and the property the
/// transcript tests pin.
class TraceSink {
 public:
  virtual ~TraceSink();

  /// Highest detail this sink consumes. The engine caches the maximum over
  /// its installed sinks once per run; per-message events are only
  /// produced when some sink asked for kMessages or kPayloads.
  virtual TraceDetail detail() const { return TraceDetail::kRounds; }

  /// Start of run(): the instance size and the options in effect.
  virtual void on_run_begin(NodeId n, const EngineOptions& options);
  /// Start of round `round` (1-based); `active` nodes will participate.
  virtual void on_round_begin(int round, NodeId active);
  /// One delivered message (gated on detail() >= kMessages).
  virtual void on_message(const TraceMessage& m);
  /// Node `node` terminated at the end of `round` with the given outputs
  /// (`edge_outputs` sorted by key; both borrow engine state — copy to
  /// keep). Fired in ascending node order within a round.
  virtual void on_termination(int round, NodeId node, Value output,
                              std::span<const std::pair<NodeId, Value>>
                                  edge_outputs);
  /// End of round `round`: the wall-ns this round spent in each pipeline
  /// stage. Fired after the round's state mutations, before the next
  /// on_round_begin. A profiling event on the host clock — sinks must not
  /// record it into transcripts (same rule as wall_ms; the committed
  /// transcript writers ignore it, which keeps goldens byte-identical).
  virtual void on_round_profile(int round, const PhaseProfile& profile);
  /// End of run(): the finished result (wall_ms not yet stamped; sinks
  /// must not record it — transcripts exclude wall-clock by design).
  virtual void on_run_end(const RunResult& result);
};

namespace detail {

/// The spine reimplementation of EngineOptions::record_active_per_round /
/// record_terminations. The engine installs one privately when either flag
/// is set and moves the vectors into the RunResult afterwards; contents
/// are bit-identical to the pre-spine inline bookkeeping (pinned by
/// engine_determinism_test).
class RunRecordSink final : public TraceSink {
 public:
  RunRecordSink(bool record_active, bool record_terminations)
      : record_active_(record_active),
        record_terminations_(record_terminations) {}

  TraceDetail detail() const override { return TraceDetail::kRounds; }
  void on_round_begin(int round, NodeId active) override {
    if (record_active_) active_per_round.push_back(active);
    if (record_terminations_) {
      terminations_per_round.resize(static_cast<std::size_t>(round));
    }
  }
  void on_termination(int /*round*/, NodeId node, Value /*output*/,
                      std::span<const std::pair<NodeId, Value>>) override {
    if (record_terminations_) terminations_per_round.back().push_back(node);
  }

  std::vector<int> active_per_round;
  std::vector<std::vector<NodeId>> terminations_per_round;

 private:
  bool record_active_;
  bool record_terminations_;
};

}  // namespace detail

}  // namespace dgap
