#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <climits>

#include "common/require.hpp"
#include "graph/properties.hpp"
#include "sim/compile.hpp"
#include "sim/link_layer.hpp"
#include "sim/thread_pool.hpp"

namespace dgap {

namespace {

/// Does (channel, payload) match the default the current node declared on
/// its shard this round?
bool matches_default(const detail::SendShard& sh, int channel,
                     const Value* words, std::size_t count) {
  if (!sh.default_active || sh.default_channel != channel ||
      sh.default_len != count) {
    return false;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (sh.default_words[i] != words[i]) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// NodeContext — thin accessor layer over Engine state.
// ---------------------------------------------------------------------------

Value NodeContext::id() const { return engine_->graph_.id(index_); }
NodeId NodeContext::n() const { return engine_->graph_.num_nodes(); }
std::int64_t NodeContext::d() const { return engine_->graph_.id_bound(); }
int NodeContext::delta() const { return engine_->graph_.max_degree(); }
int NodeContext::round() const { return engine_->round_; }

const std::vector<NodeId>& NodeContext::neighbors() const {
  return engine_->graph_.neighbors(index_);
}

Value NodeContext::neighbor_id(NodeId u) const {
  DGAP_REQUIRE(engine_->graph_.has_edge(index_, u), "not a neighbor");
  return engine_->graph_.id(u);
}

std::span<const NodeId> NodeContext::active_neighbors() const {
  const EngineScratch& s = engine_->s_;
  return {s.an_pool.data() + s.an_begin[index_], s.an_count[index_]};
}

bool NodeContext::neighbor_active(NodeId u) const {
  const auto an = active_neighbors();
  return std::binary_search(an.begin(), an.end(), u);
}

Value NodeContext::neighbor_output(NodeId u) const {
  DGAP_REQUIRE(engine_->graph_.has_edge(index_, u), "not a neighbor");
  if (engine_->s_.node_active[u]) {
    return kUndefined;  // outputs become visible on termination
  }
  return engine_->s_.node_output[u];
}

Value NodeContext::neighbor_output_for(NodeId u, NodeId key) const {
  DGAP_REQUIRE(engine_->graph_.has_edge(index_, u), "not a neighbor");
  if (engine_->s_.node_active[u]) return kUndefined;
  return engine_->edge_output_lookup(u, key);
}

Value NodeContext::prediction() const {
  return engine_->predictions_->node(index_);
}

Value NodeContext::edge_prediction(NodeId u) const {
  return engine_->predictions_->edge(engine_->graph_, index_, u);
}

void NodeContext::send(NodeId to, const Value* words, std::size_t count,
                       int channel) {
  DGAP_REQUIRE(engine_->in_send_phase_, "send() is only valid in onSend");
  DGAP_REQUIRE(engine_->graph_.has_edge(index_, to),
               "can only send to a neighbor");
  auto& sh = *shard_;
  if (channel < sh.last_channel) sh.channels_monotone = false;
  sh.last_channel = channel;
  detail::SendRecord r;
  r.to = to;
  r.from = index_;
  r.channel = channel;
  r.len = static_cast<std::uint32_t>(count);
  r.offset = 0;
  r.words = nullptr;
  r.flags = 0;
  if (engine_->compile_defaults_ &&
      matches_default(sh, channel, words, count)) {
    r.flags = detail::SendRecord::kSuppressed;
  }
  if (count <= detail::SendRecord::kInlineCap) {
    for (std::size_t i = 0; i < count; ++i) r.inline_words[i] = words[i];
  } else {
    r.offset = sh.arena.append(words, count);
  }
  sh.sends.push_back(r);
}

void NodeContext::send(NodeId to, const std::vector<Value>& words,
                       int channel) {
  send(to, words.data(), words.size(), channel);
}

void NodeContext::send(NodeId to, std::initializer_list<Value> words,
                       int channel) {
  send(to, words.begin(), words.size(), channel);
}

void NodeContext::broadcast(const Value* words, std::size_t count,
                            int channel) {
  DGAP_REQUIRE(engine_->in_send_phase_, "broadcast() is only valid in onSend");
  const auto an = active_neighbors();
  if (an.empty()) return;
  auto& sh = *shard_;
  if (channel < sh.last_channel) sh.channels_monotone = false;
  sh.last_channel = channel;
  detail::SendRecord r;
  r.from = index_;
  r.channel = channel;
  r.len = static_cast<std::uint32_t>(count);
  r.offset = 0;
  r.words = nullptr;
  r.flags = 0;
  if (engine_->compile_defaults_ &&
      matches_default(sh, channel, words, count)) {
    r.flags = detail::SendRecord::kSuppressed;
  }
  if (count <= detail::SendRecord::kInlineCap) {
    for (std::size_t i = 0; i < count; ++i) r.inline_words[i] = words[i];
  } else {
    // One arena copy of the payload, shared by every per-neighbor record.
    r.offset = sh.arena.append(words, count);
  }
  if (engine_->compile_skeleton_ != nullptr && sh.skeleton_relay) {
    // Skeleton relay: the payload physically crosses only skeleton edges;
    // records for the pruned edges are flagged kSkeletonDrop (charged as
    // suppressed, never delivered — the wrapped program's receive logic is
    // flood-idempotent by the opt-in contract, docs/MODEL.md). Walk the
    // active-neighbor view against the full adjacency to recover each
    // neighbor's CSR slot; both are ascending, so one merge pass suffices.
    const Skeleton& sk = *engine_->compile_skeleton_;
    const auto& nb = engine_->graph_.neighbors(index_);
    const std::uint32_t base = sk.offset[static_cast<std::size_t>(index_)];
    std::size_t j = 0;
    for (NodeId u : an) {
      while (nb[j] != u) ++j;
      r.to = u;
      r.flags &= static_cast<std::uint8_t>(~detail::SendRecord::kSkeletonDrop);
      if (!sk.edge_in_skeleton[base + j]) {
        r.flags |= detail::SendRecord::kSkeletonDrop;
      }
      sh.sends.push_back(r);
    }
    return;
  }
  for (NodeId u : an) {
    r.to = u;
    sh.sends.push_back(r);
  }
}

void NodeContext::broadcast(const std::vector<Value>& words, int channel) {
  broadcast(words.data(), words.size(), channel);
}

void NodeContext::broadcast(std::initializer_list<Value> words, int channel) {
  broadcast(words.begin(), words.size(), channel);
}

void NodeContext::declare_default(const Value* words, std::size_t count,
                                  int channel) {
  DGAP_REQUIRE(engine_->in_send_phase_,
               "declare_default() is only valid in onSend");
  DGAP_REQUIRE(count <= detail::SendRecord::kInlineCap,
               "a default message holds at most SendRecord::kInlineCap words");
  auto& sh = *shard_;
  sh.default_active = true;
  sh.default_channel = channel;
  sh.default_len = static_cast<std::uint32_t>(count);
  for (std::size_t i = 0; i < count; ++i) sh.default_words[i] = words[i];
}

void NodeContext::declare_default(const std::vector<Value>& words,
                                  int channel) {
  declare_default(words.data(), words.size(), channel);
}

void NodeContext::declare_default(std::initializer_list<Value> words,
                                  int channel) {
  declare_default(words.begin(), words.size(), channel);
}

void NodeContext::relay_on_skeleton() {
  DGAP_REQUIRE(engine_->in_send_phase_,
               "relay_on_skeleton() is only valid in onSend");
  shard_->skeleton_relay = true;
}

std::span<const Message> NodeContext::inbox() const {
  const auto& ref = engine_->s_.inbox_ref[index_];
  if (ref.round_stamp != engine_->round_) return {};
  return {engine_->s_.inbox_flat.data() + ref.begin, ref.count};
}

void NodeContext::set_output(Value v) {
  DGAP_REQUIRE(v != kUndefined, "kUndefined is reserved");
  engine_->s_.node_output[index_] = v;
}

void NodeContext::set_output_for(NodeId key, Value v) {
  DGAP_REQUIRE(v != kUndefined, "kUndefined is reserved");
  engine_->edge_output_store(index_, key, v);
}

bool NodeContext::has_output() const {
  return engine_->s_.node_output[index_] != kUndefined;
}

bool NodeContext::has_output_for(NodeId key) const {
  return engine_->edge_output_lookup(index_, key) != kUndefined;
}

Value NodeContext::output() const {
  return engine_->s_.node_output[index_];
}

Value NodeContext::output_for(NodeId key) const {
  return engine_->edge_output_lookup(index_, key);
}

std::int64_t NodeContext::link_backlog(NodeId u) const {
  DGAP_REQUIRE(engine_->graph_.has_edge(index_, u), "not a neighbor");
  if (!engine_->link_) return 0;
  return engine_->link_->backlog_words(index_, u);
}

int NodeContext::link_budget() const {
  if (engine_->options_.congest_policy != CongestPolicy::kDefer) return 0;
  return engine_->options_.congest_word_limit;
}

void NodeContext::terminate() {
  DGAP_REQUIRE(engine_->s_.node_output[index_] != kUndefined ||
                   engine_->edge_output_count(index_) > 0,
               "a node terminates only after assigning its outputs");
  engine_->s_.terminate_flag[index_] = 1;
}

bool NodeContext::terminated() const {
  return engine_->s_.terminate_flag[index_] != 0;
}

void NodeContext::idle() {
  DGAP_REQUIRE(!engine_->in_send_phase_, "idle() is only valid in onReceive");
  engine_->s_.idle_request[index_] = 1;
  if (shard_ != nullptr) shard_->any_idle = true;
}

// ---------------------------------------------------------------------------
// Engine — struct-of-arrays edge outputs.
// ---------------------------------------------------------------------------

std::uint32_t Engine::adjacency_slot(NodeId v, NodeId key) const {
  const auto& nb = graph_.neighbors(v);
  const auto it = std::lower_bound(nb.begin(), nb.end(), key);
  if (it == nb.end() || *it != key) return UINT32_MAX;
  return s_.an_begin[v] + static_cast<std::uint32_t>(it - nb.begin());
}

void Engine::ensure_edge_out_pool() {
  if (edge_out_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(edge_out_init_mutex_);
  if (edge_out_ready_.load(std::memory_order_relaxed)) return;
  s_.edge_out_pool.assign(s_.an_pool.size(), kUndefined);
  s_.edge_out_count.assign(static_cast<std::size_t>(graph_.num_nodes()), 0);
  edge_out_ready_.store(true, std::memory_order_release);
}

Value Engine::edge_output_lookup(NodeId v, NodeId key) const {
  if (!edge_out_ready_.load(std::memory_order_acquire)) return kUndefined;
  const std::uint32_t slot = adjacency_slot(v, key);
  if (slot == UINT32_MAX) return kUndefined;
  return s_.edge_out_pool[slot];
}

void Engine::edge_output_store(NodeId v, NodeId key, Value value) {
  ensure_edge_out_pool();
  const std::uint32_t slot = adjacency_slot(v, key);
  DGAP_REQUIRE(slot != UINT32_MAX,
               "edge outputs are keyed by a neighbor index");
  Value& cell = s_.edge_out_pool[slot];
  if (cell == kUndefined) ++s_.edge_out_count[v];
  cell = value;
}

std::uint32_t Engine::edge_output_count(NodeId v) const {
  if (!edge_out_ready_.load(std::memory_order_acquire)) return 0;
  return s_.edge_out_count[v];
}

void Engine::materialize_edge_outputs(
    NodeId v, std::vector<std::pair<NodeId, Value>>& out) const {
  out.clear();
  if (!edge_out_ready_.load(std::memory_order_acquire)) return;
  if (s_.edge_out_count[v] == 0) return;
  const auto& nb = graph_.neighbors(v);
  const std::uint32_t base = s_.an_begin[v];
  for (std::size_t j = 0; j < nb.size(); ++j) {
    const Value val = s_.edge_out_pool[base + j];
    if (val != kUndefined) out.emplace_back(nb[j], val);
  }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(const Graph& g, const Predictions& predictions,
               ProgramFactory factory, EngineOptions options,
               ThreadPool* shared_pool, EngineScratch* scratch)
    : graph_(g),
      predictions_(&predictions),
      options_(options),
      owned_scratch_(scratch ? nullptr : std::make_unique<EngineScratch>()),
      s_(scratch ? *scratch : *owned_scratch_) {
  DGAP_REQUIRE(factory != nullptr, "a program factory is required");
  DGAP_REQUIRE(options_.num_threads >= 1, "num_threads must be >= 1");
  const NodeId n = g.num_nodes();
  const std::size_t nu = static_cast<std::size_t>(n);
  programs_.clear();
  programs_.reserve(nu);
  s_.awake_nodes.clear();
  s_.awake_nodes.reserve(nu);
  // Struct-of-arrays node state. The CSR offsets mirror the graph's
  // adjacency, and every pool slot in [0, total) is rewritten below, so a
  // reused scratch cannot leak a previous (larger) graph's tails into this
  // run (tests/scratch_reuse_test.cpp sweeps decreasing sizes to pin it).
  s_.node_output.assign(nu, kUndefined);
  s_.an_begin.resize(nu + 1);
  std::size_t total_adj = 0;
  for (NodeId v = 0; v < n; ++v) {
    s_.an_begin[v] = static_cast<std::uint32_t>(total_adj);
    total_adj += g.neighbors(v).size();
  }
  s_.an_begin[nu] = static_cast<std::uint32_t>(total_adj);
  s_.an_pool.resize(total_adj);
  s_.an_count.resize(nu);
  for (NodeId v = 0; v < n; ++v) {
    programs_.push_back(factory(v));
    DGAP_REQUIRE(programs_.back() != nullptr, "factory returned null");
    const auto& nb = g.neighbors(v);
    std::copy(nb.begin(), nb.end(), s_.an_pool.begin() + s_.an_begin[v]);
    s_.an_count[v] = static_cast<std::uint32_t>(nb.size());
    s_.awake_nodes.push_back(v);
  }
  active_count_ = n;
  s_.node_active.assign(nu, 1);
  s_.terminate_flag.assign(nu, 0);
  s_.node_awake.assign(nu, 1);
  s_.idle_request.assign(nu, 0);
  // The edge-output pool is allocated lazily on first store; a fresh run
  // starts not-ready regardless of what a reused scratch still holds.
  // assign, not resize: a reused scratch carries round stamps from its
  // previous run, and a stale stamp equal to this run's current round
  // would resurrect a dead inbox slice.
  s_.inbox_ref.assign(nu, detail::InboxRef{});
  // A previous run that died mid-round (an exception out of a program
  // hook) can leave nonzero counts / stale worklists behind, so restore
  // every between-rounds invariant explicitly.
  s_.recv_count.assign(nu, 0);
  s_.recv_nodes.clear();
  s_.woken.clear();
  s_.wake_next.clear();
  s_.next_awake.clear();
  s_.newly_terminated.clear();
  s_.touched_receivers.clear();
  s_.sorted_sends.clear();
  s_.inbox_flat.clear();
  s_.shards.resize(static_cast<std::size_t>(options_.num_threads));
  for (auto& sh : s_.shards) {
    sh.arena.clear();
    sh.sends.clear();
    sh.channels_monotone = true;
    sh.any_idle = false;
    sh.route_idx.clear();
    sh.route_begin.clear();
    sh.route_cursor.clear();
    sh.any_long = false;
  }
  // Receiver-shard ownership: shard t owns [n*t/S, n*(t+1)/S) — the same
  // slicing run_sharded uses, a pure function of (n, S). The per-node
  // ownership map makes routing a table lookup; only built when a parallel
  // delivery path can run.
  DGAP_REQUIRE(options_.num_threads <= 65535, "num_threads out of range");
  const std::size_t nshards = s_.shards.size();
  s_.recv_shards.resize(nshards);
  for (auto& rs : s_.recv_shards) {
    rs.acct = detail::CongestAccount{};
    rs.touched.clear();
    rs.touched_first.clear();
    rs.delivered = 0;
    rs.region = 0;
    rs.newly_terminated.clear();
    rs.wake.clear();
    rs.next_awake.clear();
  }
  s_.send_base.assign(nshards + 1, 0);
  s_.merge_pos.assign(nshards, 0);
  if (nshards > 1) {
    s_.node_shard.resize(nu);
    for (std::size_t t = 0; t < nshards; ++t) {
      const std::size_t lo = nu * t / nshards;
      const std::size_t hi = nu * (t + 1) / nshards;
      std::fill(s_.node_shard.begin() + static_cast<std::ptrdiff_t>(lo),
                s_.node_shard.begin() + static_cast<std::ptrdiff_t>(hi),
                static_cast<std::uint16_t>(t));
    }
  } else {
    s_.node_shard.clear();
  }
  if (options_.num_threads > 1) {
    if (shared_pool != nullptr) {
      DGAP_REQUIRE(shared_pool->num_slots() == options_.num_threads,
                   "shared pool slot count must equal num_threads");
      pool_ = shared_pool;
    } else {
      owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
      pool_ = owned_pool_.get();
    }
  }
  if (options_.congest_policy != CongestPolicy::kCount) {
    link_ = std::make_unique<detail::LinkLayer>(g, options_.congest_policy,
                                                options_.congest_word_limit);
  }
  // Message-reduction compilation (sim/compile.hpp). The knobs are cached
  // as flat flags for the per-send / per-record checks; the per-directed-
  // edge cache reuses the adjacency CSR, so slot lookup is adjacency_slot.
  compile_cache_ = options_.compile.cache_resends;
  compile_defaults_ = options_.compile.decode_defaults;
  compile_skeleton_ = options_.compile.skeleton;
  if (compile_skeleton_ != nullptr) {
    DGAP_REQUIRE(compile_skeleton_->offset.size() == nu + 1 &&
                     compile_skeleton_->edge_in_skeleton.size() == total_adj,
                 "skeleton does not match the graph");
  }
  if (compile_cache_) {
    s_.cache_state.assign(total_adj, 0);
    s_.cache_channel.assign(total_adj, 0);
    s_.cache_len.assign(total_adj, 0);
    s_.cache_words.assign(total_adj * detail::SendRecord::kInlineCap, 0);
    s_.cache_long.clear();  // lazily sized on the first long payload
  }
  // Trace spine: the classic record_* options are a private rounds-level
  // sink; a user sink rides alongside. No sinks => no virtual calls.
  if (options_.record_active_per_round || options_.record_terminations) {
    record_sink_ = std::make_unique<detail::RunRecordSink>(
        options_.record_active_per_round, options_.record_terminations);
    sinks_.push_back(record_sink_.get());
  }
  if (options_.trace_sink != nullptr) {
    sinks_.push_back(options_.trace_sink);
    // detail() is a stable property of the sink; cache the answer so the
    // delivery path never queries it per message.
    if (options_.trace_sink->detail() >= TraceDetail::kMessages) {
      message_sinks_.push_back(options_.trace_sink);
    }
    trace_messages_ = !message_sinks_.empty();
  }
}

Engine::~Engine() = default;

void Engine::charge(std::size_t payload_words, int channel) {
  acct_.charge(payload_words, channel, options_.congest_word_limit);
}

template <typename Body>
void Engine::run_sharded(std::size_t worklist_size, const Body& body) {
  const auto shards = s_.shards.size();
  const std::size_t m = worklist_size;
  if (!pool_) {
    body(0, 0, m);
    return;
  }
  pool_->run([&](int s) {
    const std::size_t su = static_cast<std::size_t>(s);
    body(s, m * su / shards, m * (su + 1) / shards);
  });
}

void Engine::send_phase() {
  in_send_phase_ = true;
  run_sharded(s_.awake_nodes.size(),
              [this](int s, std::size_t lo, std::size_t hi) {
    auto& sh = s_.shards[static_cast<std::size_t>(s)];
    sh.arena.clear();
    sh.sends.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      const NodeId v = s_.awake_nodes[i];
      sh.last_channel = INT_MIN;
      sh.default_active = false;   // declarations last one node-round
      sh.skeleton_relay = false;
      NodeContext ctx(this, v, &sh);
      programs_[v]->on_send(ctx);
    }
  });
  in_send_phase_ = false;
}

// Applies fn to every send record of the round in canonical order:
// (sender, channel, send order), senders ascending. The common case is the
// raw concatenation of the shard buffers (shards are contiguous slices of
// the ascending worklist); the rare channel-repair case iterates the sorted
// copy instead.
template <typename Fn>
void Engine::for_each_send(const Fn& fn) const {
  if (use_sorted_sends_) {
    for (const auto& r : s_.sorted_sends) fn(r);
    return;
  }
  for (const auto& sh : s_.shards) {
    for (const auto& r : sh.sends) fn(r);
  }
}

void Engine::deliver_round_messages() {
  // Pick the delivery path. The parallel path requires a pool (more than
  // one shard), the audit-only congest policy (an enforcing link layer is
  // a serial scheduler by design), and monotone per-sender channels (the
  // rare repair sort re-orders records globally, which the reference path
  // handles). Everything the two paths publish — inbox slices, touched
  // order, account totals, cache state — is bit-identical by construction;
  // engine_determinism_test and compile_test pin it.
  bool channels_monotone = true;
  for (const auto& sh : s_.shards) channels_monotone &= sh.channels_monotone;
  if (pool_ != nullptr && link_ == nullptr && channels_monotone) {
    deliver_parallel();
    return;
  }
  deliver_serial();
}

void Engine::deliver_serial() {
  // Freeze the per-shard arenas and resolve each record's payload pointer,
  // charging the message metrics in sender order. Small payloads (at most
  // SendRecord::kInlineCap words) live inline in the record itself, so
  // their resolved pointer is a self-pointer — valid because the shard
  // buffers are frozen for the rest of the round (sorted_sends copies keep
  // pointing at the originals). Every sent message is charged — including
  // messages addressed to a node that terminated in an earlier round. The
  // model's cost accounting is sender-side: the sender cannot know the
  // receiver is gone until the termination notice arrives (next round's
  // active_neighbors view), so the words crossed the wire and count toward
  // total_messages/total_words. Delivery, however, drops them below: a
  // terminated node has no receive phase, and resurrected inboxes would
  // violate the model. Pinned by
  // Engine.DropsToTerminatedAreChargedNotDelivered in engine_test.cpp.
  // The same pass also runs the counting stage of the receiver scatter
  // (below) — per-record work is memory-bound, so fusing the loops matters —
  // and accumulates the metrics locally, folding them in once per round.
  bool channels_monotone = true;
  std::size_t arena_words = 0;
  const int congest_limit = options_.congest_word_limit;
  const bool enforce = link_ != nullptr;
  s_.touched_receivers.clear();
  std::uint32_t delivered = 0;
  for (auto& sh : s_.shards) {
    channels_monotone &= sh.channels_monotone;
    sh.channels_monotone = true;
    arena_words += sh.arena.size();
    const Value* base = sh.arena.data();
    for (auto& r : sh.sends) {
      r.words = r.len <= detail::SendRecord::kInlineCap ? r.inline_words
                                                        : base + r.offset;
      if (r.flags & detail::SendRecord::kSkeletonDrop) {
        // A relayed broadcast's pruned copy: charged as suppressed (the
        // nominal program sent it; the compiled wire did not) and never
        // delivered. It bypasses the cache — the receiver's one-slot memory
        // tracks delivered messages only.
        acct_.charge(r.len, r.channel, congest_limit, /*suppressed=*/true);
        continue;
      }
      // The per-edge cache sees this edge's records in canonical order
      // here, just as the parallel path's owning receiver shard does, so
      // num_threads cannot influence hit patterns. It also absorbs
      // default-suppressed records (the receiver's memory advances either
      // way).
      if (compile_cache_ && cache_check_and_update(r)) {
        r.flags |= detail::SendRecord::kSuppressed;
      }
      acct_.charge(r.len, r.channel, congest_limit,
                   (r.flags & detail::SendRecord::kSuppressed) != 0);
      // Under an enforcing policy the link layer decides what arrives this
      // round; the receiver counting below only feeds the fast-path scatter.
      if (!enforce && s_.node_active[r.to]) {
        if (s_.recv_count[r.to]++ == 0) s_.touched_receivers.push_back(r.to);
        ++delivered;
      }
    }
  }
  peak_arena_words_ = std::max(peak_arena_words_, arena_words);

  // The shard buffers are ordered by (sender, send order). The required
  // inbox order is (sender, channel, send order), which differs only if
  // some node sent on a decreasing channel sequence — rare (compositions
  // emit channel blocks in ascending order) — and is repaired by one
  // stable sort of a merged copy when it happens.
  use_sorted_sends_ = !channels_monotone;
  if (use_sorted_sends_) {
    s_.sorted_sends.clear();
    for (const auto& sh : s_.shards) {
      s_.sorted_sends.insert(s_.sorted_sends.end(), sh.sends.begin(),
                           sh.sends.end());
    }
    std::stable_sort(s_.sorted_sends.begin(), s_.sorted_sends.end(),
                     [](const detail::SendRecord& a,
                        const detail::SendRecord& b) {
                       return std::tie(a.from, a.channel) <
                              std::tie(b.from, b.channel);
                     });
  }

  if (enforce) {
    deliver_enforced();
    return;
  }

  // Counting-sort scatter by receiver (counting ran fused with the resolve
  // pass above). Grouping receivers in first-touch order (rather than
  // ascending) keeps this O(messages), not O(n); the stable scatter
  // preserves the (sender, channel, send order) sequence within each
  // receiver's slice. Terminated receivers are never counted, so their
  // messages are dropped right here.
  std::uint32_t cursor = 0;
  for (const NodeId to : s_.touched_receivers) {
    s_.inbox_ref[to] = {cursor, 0, round_};
    cursor += s_.recv_count[to];
    s_.recv_count[to] = 0;  // restore the all-zero invariant for next round
  }
  s_.inbox_flat.resize(delivered);
  for_each_send([&](const detail::SendRecord& r) {
    if (r.flags & detail::SendRecord::kSkeletonDrop) return;
    if (!s_.node_active[r.to]) return;
    auto& ref = s_.inbox_ref[r.to];
    s_.inbox_flat[ref.begin + ref.count++] =
        Message{r.from, static_cast<int>(r.channel), WordSpan(r.words, r.len),
                false, (r.flags & detail::SendRecord::kSuppressed) != 0};
  });
}

void Engine::deliver_parallel() {
  // Receiver-sharded delivery: four passes with pool barriers between
  // them, replacing deliver_serial's fused loop plus serial scatter.
  //
  //   A (parallel over sender shards)   freeze each arena, resolve payload
  //     pointers, and route every record to the receiver shard owning its
  //     `to` — a stable counting sort of record indices, so each bucket
  //     preserves send order.
  //   B (parallel over receiver shards) walk owned records in ascending
  //     global send order (sender shards in index order; buckets are
  //     in-order within a shard), running the compile cache, the per-shard
  //     message account, and the inbox counting. Each node's recv_count
  //     slot and each directed edge's cache line has exactly one writer.
  //   C (serial, O(shards + receivers)) prefix-sum the per-shard inbox
  //     regions, merge the accounts in fixed shard order, and merge the
  //     per-shard first-touch lists into the global first-touch order.
  //   D (parallel over receiver shards) assign each owned receiver's slice
  //     inside this shard's region and scatter the owned records into it.
  //
  // Why the result is byte-identical to deliver_serial: (sender, channel,
  // send order) within a slice holds because routing is stable and sender
  // shards are visited in index order — within one receiver's slice the
  // scatter sees records in exactly the serial global order (channels are
  // monotone on this path, or we would not be here). The cache's hit/miss
  // sequence per directed edge is the serial one because all of an edge's
  // records meet in the one shard owning the receiver, still in global
  // order. Account totals are order-independent reductions. And the trace
  // spine's receiver order is recovered exactly in pass C: each shard's
  // touched list ascends in the global index of the receiver's first
  // record, so an S-way merge on those indices is the serial first-touch
  // order. inbox_flat's internal layout does differ (shard regions instead
  // of global first-touch order), but nothing observes the layout — every
  // consumer goes through inbox_ref or touched_receivers.
  const int congest_limit = options_.congest_word_limit;
  const std::size_t S = s_.shards.size();

  pool_->run([&](int k) {
    auto& sh = s_.shards[static_cast<std::size_t>(k)];
    sh.channels_monotone = true;
    sh.any_long = false;
    const Value* base = sh.arena.data();
    sh.route_begin.assign(S + 1, 0);
    for (auto& r : sh.sends) {
      if (r.len <= detail::SendRecord::kInlineCap) {
        r.words = r.inline_words;
      } else {
        r.words = base + r.offset;
        sh.any_long = true;
      }
      ++sh.route_begin[s_.node_shard[r.to] + 1];
    }
    for (std::size_t t = 0; t < S; ++t) {
      sh.route_begin[t + 1] += sh.route_begin[t];
    }
    sh.route_cursor.assign(sh.route_begin.begin(), sh.route_begin.end() - 1);
    sh.route_idx.resize(sh.sends.size());
    for (std::uint32_t i = 0; i < sh.sends.size(); ++i) {
      sh.route_idx[sh.route_cursor[s_.node_shard[sh.sends[i].to]]++] = i;
    }
  });

  // Serial inter-pass step: per-sender-shard global index bases, the arena
  // high-water mark, and — when compiling — the long-payload store, sized
  // here so pass B never resizes a shared vector concurrently.
  std::size_t arena_words = 0;
  bool any_long = false;
  s_.send_base[0] = 0;
  for (std::size_t k = 0; k < S; ++k) {
    s_.send_base[k + 1] =
        s_.send_base[k] + static_cast<std::uint32_t>(s_.shards[k].sends.size());
    arena_words += s_.shards[k].arena.size();
    any_long |= s_.shards[k].any_long;
  }
  peak_arena_words_ = std::max(peak_arena_words_, arena_words);
  if (compile_cache_ && any_long &&
      s_.cache_long.size() < s_.cache_state.size()) {
    s_.cache_long.resize(s_.cache_state.size());
  }
  use_sorted_sends_ = false;

  pool_->run([&](int t) {
    const std::size_t tu = static_cast<std::size_t>(t);
    auto& rs = s_.recv_shards[tu];
    rs.acct = detail::CongestAccount{};
    rs.touched.clear();
    rs.touched_first.clear();
    std::uint32_t delivered = 0;
    for (std::size_t k = 0; k < S; ++k) {
      auto& sh = s_.shards[k];
      const std::uint32_t base_idx = s_.send_base[k];
      const std::uint32_t je = sh.route_begin[tu + 1];
      for (std::uint32_t j = sh.route_begin[tu]; j < je; ++j) {
        const std::uint32_t idx = sh.route_idx[j];
        auto& r = sh.sends[idx];
        if (r.flags & detail::SendRecord::kSkeletonDrop) {
          rs.acct.charge(r.len, r.channel, congest_limit, /*suppressed=*/true);
          continue;
        }
        if (compile_cache_ && cache_check_and_update(r)) {
          r.flags |= detail::SendRecord::kSuppressed;
        }
        rs.acct.charge(r.len, r.channel, congest_limit,
                       (r.flags & detail::SendRecord::kSuppressed) != 0);
        if (s_.node_active[r.to]) {
          if (s_.recv_count[r.to]++ == 0) {
            rs.touched.push_back(r.to);
            rs.touched_first.push_back(base_idx + idx);
          }
          ++delivered;
        }
      }
    }
    rs.delivered = delivered;
  });

  std::uint32_t total = 0;
  for (std::size_t t = 0; t < S; ++t) {
    auto& rs = s_.recv_shards[t];
    rs.region = total;
    total += rs.delivered;
    acct_.merge_from(rs.acct);
  }
  s_.inbox_flat.resize(total);
  s_.touched_receivers.clear();
  std::fill(s_.merge_pos.begin(), s_.merge_pos.end(), 0);
  for (;;) {
    std::size_t best = S;
    std::uint32_t best_first = 0;
    for (std::size_t t = 0; t < S; ++t) {
      const auto& rs = s_.recv_shards[t];
      const std::size_t pos = s_.merge_pos[t];
      if (pos >= rs.touched_first.size()) continue;
      const std::uint32_t f = rs.touched_first[pos];
      if (best == S || f < best_first) {
        best = t;
        best_first = f;
      }
    }
    if (best == S) break;
    s_.touched_receivers.push_back(
        s_.recv_shards[best].touched[s_.merge_pos[best]]);
    ++s_.merge_pos[best];
  }

  pool_->run([&](int t) {
    const std::size_t tu = static_cast<std::size_t>(t);
    auto& rs = s_.recv_shards[tu];
    std::uint32_t cursor = rs.region;
    for (const NodeId to : rs.touched) {
      s_.inbox_ref[to] = {cursor, 0, round_};
      cursor += s_.recv_count[to];
      s_.recv_count[to] = 0;  // restore the all-zero invariant for next round
    }
    for (std::size_t k = 0; k < S; ++k) {
      auto& sh = s_.shards[k];
      const std::uint32_t je = sh.route_begin[tu + 1];
      for (std::uint32_t j = sh.route_begin[tu]; j < je; ++j) {
        const auto& r = sh.sends[sh.route_idx[j]];
        if (r.flags & detail::SendRecord::kSkeletonDrop) continue;
        if (!s_.node_active[r.to]) continue;
        auto& ref = s_.inbox_ref[r.to];
        s_.inbox_flat[ref.begin + ref.count++] =
            Message{r.from, static_cast<int>(r.channel),
                    WordSpan(r.words, r.len), false,
                    (r.flags & detail::SendRecord::kSuppressed) != 0};
      }
    }
  });
}

void Engine::deliver_enforced() {
  // Feed the round's sends to the link layer in canonical (sender, channel,
  // send order) — ingest() runs after the channel-repair sort above, so the
  // per-link FIFO queues inherit exactly the fast path's order. All link
  // state mutation is serial; num_threads cannot influence the schedule.
  auto& link = *link_;
  link.begin_round(round_);
  for_each_send([&](const detail::SendRecord& r) {
    if (r.flags & detail::SendRecord::kSkeletonDrop) return;
    if (r.flags & detail::SendRecord::kSuppressed) {
      // A suppressed message never crosses the wire, so it cannot be
      // deferred, truncated, or charged against a link budget; it is
      // synthesized at the receiver in its send round (the free lunch —
      // compile_test pins the no-double-count property).
      if (s_.node_active[r.to]) link.deliver_suppressed(r);
      return;
    }
    link.ingest(r, s_.node_active.data());
  });
  link.finish_round(s_.node_active.data());

  // Counting-sort scatter of the cleared messages. The link layer emits
  // them with ascending senders and FIFO per link, so each receiver's slice
  // comes out in (sender, channel, send order) like the fast path — for
  // carried-over traffic, ordered by the round the words finished crossing.
  const auto& deliveries = link.deliveries();
  for (const auto& d : deliveries) {
    if (s_.recv_count[d.to]++ == 0) s_.touched_receivers.push_back(d.to);
  }
  std::uint32_t cursor = 0;
  for (const NodeId to : s_.touched_receivers) {
    s_.inbox_ref[to] = {cursor, 0, round_};
    cursor += s_.recv_count[to];
    s_.recv_count[to] = 0;  // restore the all-zero invariant for next round
  }
  s_.inbox_flat.resize(deliveries.size());
  for (const auto& d : deliveries) {
    auto& ref = s_.inbox_ref[d.to];
    s_.inbox_flat[ref.begin + ref.count++] =
        Message{d.from, static_cast<int>(d.channel), WordSpan(d.words, d.len),
                d.truncated, d.suppressed};
  }
}

bool Engine::cache_check_and_update(detail::SendRecord& r) {
  // One cache slot per directed edge, addressed by the sender's adjacency
  // CSR slot for the receiver — the receiver-memory model: "what was the
  // last message delivered on this edge?". A hit means the receiver can
  // reconstruct the payload from its own memory, so the re-send need not
  // cross the wire.
  const std::uint32_t slot = adjacency_slot(r.from, r.to);
  DGAP_ASSERT(slot != UINT32_MAX, "send record addresses a non-neighbor");
  constexpr std::uint32_t kCap = detail::SendRecord::kInlineCap;
  const bool small = r.len <= kCap;
  const std::uint8_t want_state = small ? 1 : 2;
  bool hit = s_.cache_state[slot] == want_state &&
             s_.cache_channel[slot] == r.channel && s_.cache_len[slot] == r.len;
  if (hit) {
    const Value* stored = small ? s_.cache_words.data() + slot * kCap
                                : s_.cache_long[slot].data();
    for (std::uint32_t i = 0; i < r.len && hit; ++i) {
      hit = stored[i] == r.words[i];
    }
  }
  if (hit) return true;
  s_.cache_state[slot] = want_state;
  s_.cache_channel[slot] = r.channel;
  s_.cache_len[slot] = r.len;
  if (small) {
    for (std::uint32_t i = 0; i < r.len; ++i) {
      s_.cache_words[slot * kCap + i] = r.words[i];
    }
  } else {
    if (s_.cache_long.size() < s_.cache_state.size()) {
      s_.cache_long.resize(s_.cache_state.size());
    }
    s_.cache_long[slot].assign(r.words, r.words + r.len);
  }
  return false;
}

const std::vector<NodeId>& Engine::collect_delivery_wakes() {
  // A delivery to a sleeping node wakes it for this round's receive phase
  // (it skipped the send phase, which is consistent with its quiescence
  // promise — the wake event postdates the send phase anyway). Receivers
  // in touched_receivers are already filtered to active nodes.
  s_.woken.clear();
  for (const NodeId to : s_.touched_receivers) {
    if (!s_.node_awake[to]) {
      s_.node_awake[to] = 1;
      s_.woken.push_back(to);
    }
  }
  if (s_.woken.empty()) return s_.awake_nodes;  // the common, no-idle case
  std::sort(s_.woken.begin(), s_.woken.end());
  s_.recv_nodes.clear();
  s_.recv_nodes.reserve(s_.awake_nodes.size() + s_.woken.size());
  std::merge(s_.awake_nodes.begin(), s_.awake_nodes.end(), s_.woken.begin(),
             s_.woken.end(), std::back_inserter(s_.recv_nodes));
  return s_.recv_nodes;
}

void Engine::trace_deliveries() {
  // Walk the freshly scattered inbox slices — receivers in first-touch
  // order, each slice already in canonical (sender, channel, send order) —
  // so the emitted stream is exactly the round's inbox contents and is
  // bit-identical across num_threads (the scatter itself is). Runs between
  // delivery and the receive phase, on the main thread.
  for (const NodeId to : s_.touched_receivers) {
    const auto& ref = s_.inbox_ref[to];
    for (std::uint32_t i = 0; i < ref.count; ++i) {
      const Message& m = s_.inbox_flat[ref.begin + i];
      const TraceMessage tm{round_, m.from, to, m.channel, m.words,
                            m.truncated, m.suppressed};
      for (TraceSink* sink : message_sinks_) sink->on_message(tm);
    }
  }
}

void Engine::receive_phase(const std::vector<NodeId>& recv) {
  // Safe to shard: a program's receive hook writes only its own node's
  // state (output, edge outputs, terminate/idle requests) and reads
  // neighbor state frozen at the start of the round (active flags and
  // outputs only change in process_terminations, after this phase joins).
  // The shard pointer is passed for the idle() flag only; send() stays
  // guarded by in_send_phase_.
  run_sharded(recv.size(), [this, &recv](int s, std::size_t lo,
                                         std::size_t hi) {
    auto& sh = s_.shards[static_cast<std::size_t>(s)];
    sh.any_idle = false;
    for (std::size_t i = lo; i < hi; ++i) {
      const NodeId v = recv[i];
      NodeContext ctx(this, v, &sh);
      programs_[v]->on_receive(ctx);
    }
  });
}

void Engine::process_terminations(const std::vector<NodeId>& recv,
                                  std::vector<int>& termination_round) {
  if (pool_ != nullptr) {
    process_terminations_parallel(recv, termination_round);
    return;
  }
  // Only nodes whose hooks ran this round can have requested termination,
  // and every such node is on the receive worklist (awake nodes plus
  // delivery-woken sleepers), so the sweep is O(recv), not O(n).
  s_.newly_terminated.clear();
  for (const NodeId v : recv) {
    if (!s_.terminate_flag[v]) continue;
    s_.node_active[v] = 0;
    --active_count_;
    termination_round[v] = round_;
    s_.newly_terminated.push_back(v);  // ascending: the worklist is ascending
    if (!sinks_.empty()) {
      materialize_edge_outputs(v, term_edge_outputs_);
      for (TraceSink* sink : sinks_) {
        sink->on_termination(round_, v, s_.node_output[v],
                             term_edge_outputs_);
      }
    }
  }
  bool any_idle = false;
  for (const auto& sh : s_.shards) any_idle |= sh.any_idle;
  if (s_.newly_terminated.empty() && !any_idle && s_.woken.empty()) return;
  s_.wake_next.clear();
  if (!s_.newly_terminated.empty()) {
    // Charge the notification messages implied by the Section 7 convention
    // (one message carrying the node's outputs to each neighbor that is
    // still active) and collect the affected neighbors, deduplicated via
    // the s_.recv_count scratch (all-zero between rounds, restored below).
    // s_.touched_receivers is likewise free until next round's delivery.
    s_.touched_receivers.clear();
    for (const NodeId v : s_.newly_terminated) {
      const std::size_t notice_words = 1 + edge_output_count(v);
      for (NodeId u : graph_.neighbors(v)) {
        if (!s_.node_active[u]) continue;
        charge(notice_words, /*channel=*/0);
        if (s_.recv_count[u]++ == 0) s_.touched_receivers.push_back(u);
      }
    }
    // Drop every terminated node from each affected view by compacting the
    // node's live CSR prefix in one linear pass (an invariant of the view
    // is that it never contains inactive nodes, so filtering on the active
    // flag removes exactly this round's batch). A termination is also a
    // wake event: the neighbor's view changes next round, so any idle
    // promise it made is void.
    for (const NodeId u : s_.touched_receivers) {
      s_.recv_count[u] = 0;
      NodeId* live = s_.an_pool.data() + s_.an_begin[u];
      const std::uint32_t count = s_.an_count[u];
      std::uint32_t w = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        const NodeId x = live[i];
        if (s_.node_active[x]) live[w++] = x;
      }
      s_.an_count[u] = w;
      s_.idle_request[u] = 0;
      if (!s_.node_awake[u]) {
        s_.node_awake[u] = 1;
        s_.wake_next.push_back(u);
      }
    }
    std::sort(s_.wake_next.begin(), s_.wake_next.end());
  }
  // Rebuild the awake worklist for the next round: the receive worklist
  // (which contains every currently-awake node) filtered by liveness and
  // this round's idle requests, merged with the sleepers just woken by a
  // termination (disjoint from recv by construction: they were asleep and
  // received nothing).
  s_.next_awake.clear();
  std::size_t ri = 0, wi = 0;
  const std::size_t rn = recv.size(), wn = s_.wake_next.size();
  while (ri < rn || wi < wn) {
    NodeId v;
    if (wi >= wn || (ri < rn && recv[ri] < s_.wake_next[wi])) {
      v = recv[ri++];
    } else {
      v = s_.wake_next[wi++];
    }
    if (!s_.node_active[v]) {
      s_.node_awake[v] = 0;
      s_.idle_request[v] = 0;
      continue;
    }
    if (s_.idle_request[v]) {
      s_.idle_request[v] = 0;
      s_.node_awake[v] = 0;
      continue;
    }
    s_.node_awake[v] = 1;
    s_.next_awake.push_back(v);
  }
  std::swap(s_.awake_nodes, s_.next_awake);
}

void Engine::process_terminations_parallel(
    const std::vector<NodeId>& recv, std::vector<int>& termination_round) {
  // The serial sweep above, re-cut along receiver-shard ownership. Three
  // pool passes:
  //   T1 (over recv slices)      detect terminations. Slices of the
  //       ascending worklist are contiguous, so concatenating the per-slot
  //       lists in slot order is the serial ascending sweep; trace sinks
  //       then fire serially over that list, in ascending node order as the
  //       spine contract requires.
  //   T2 (over receiver shards)  charge the Section 7 notices for owned
  //       still-active neighbors into the shard's account, compact their
  //       active-neighbor prefixes, void their idle promises, and wake
  //       owned sleepers. Every shard scans the full terminated-node
  //       adjacency but writes only owned nodes' slots; node_active is
  //       frozen after T1, so cross-shard reads are safe.
  //   T3 (over receiver shards)  rebuild the awake worklist: each shard
  //       merges its owned sub-range of recv (a binary search — recv is
  //       ascending) with its own woken sleepers (disjoint from recv: they
  //       were asleep and received nothing). Ownership ranges are
  //       contiguous and ascending, so concatenating per-shard segments in
  //       shard order is the serial ascending rebuild.
  const std::size_t S = s_.shards.size();
  const int congest_limit = options_.congest_word_limit;
  run_sharded(recv.size(), [&](int s, std::size_t lo, std::size_t hi) {
    auto& rs = s_.recv_shards[static_cast<std::size_t>(s)];
    rs.newly_terminated.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      const NodeId v = recv[i];
      if (!s_.terminate_flag[v]) continue;
      s_.node_active[v] = 0;
      termination_round[v] = round_;
      rs.newly_terminated.push_back(v);
    }
  });
  s_.newly_terminated.clear();
  for (const auto& rs : s_.recv_shards) {
    s_.newly_terminated.insert(s_.newly_terminated.end(),
                               rs.newly_terminated.begin(),
                               rs.newly_terminated.end());
  }
  active_count_ -= static_cast<NodeId>(s_.newly_terminated.size());
  if (!sinks_.empty()) {
    for (const NodeId v : s_.newly_terminated) {
      materialize_edge_outputs(v, term_edge_outputs_);
      for (TraceSink* sink : sinks_) {
        sink->on_termination(round_, v, s_.node_output[v], term_edge_outputs_);
      }
    }
  }
  bool any_idle = false;
  for (const auto& sh : s_.shards) any_idle |= sh.any_idle;
  if (s_.newly_terminated.empty() && !any_idle && s_.woken.empty()) return;

  if (!s_.newly_terminated.empty()) {
    pool_->run([&](int t) {
      const std::size_t tu = static_cast<std::size_t>(t);
      auto& rs = s_.recv_shards[tu];
      rs.acct = detail::CongestAccount{};
      rs.touched.clear();
      rs.wake.clear();
      const std::uint16_t self = static_cast<std::uint16_t>(t);
      for (const NodeId v : s_.newly_terminated) {
        const std::size_t notice_words = 1 + edge_output_count(v);
        for (NodeId u : graph_.neighbors(v)) {
          if (s_.node_shard[u] != self || !s_.node_active[u]) continue;
          rs.acct.charge(notice_words, /*channel=*/0, congest_limit);
          if (s_.recv_count[u]++ == 0) rs.touched.push_back(u);
        }
      }
      for (const NodeId u : rs.touched) {
        s_.recv_count[u] = 0;
        NodeId* live = s_.an_pool.data() + s_.an_begin[u];
        const std::uint32_t count = s_.an_count[u];
        std::uint32_t w = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
          const NodeId x = live[i];
          if (s_.node_active[x]) live[w++] = x;
        }
        s_.an_count[u] = w;
        s_.idle_request[u] = 0;
        if (!s_.node_awake[u]) {
          s_.node_awake[u] = 1;
          rs.wake.push_back(u);
        }
      }
      std::sort(rs.wake.begin(), rs.wake.end());
    });
    for (std::size_t t = 0; t < S; ++t) {
      acct_.merge_from(s_.recv_shards[t].acct);
    }
  } else {
    for (auto& rs : s_.recv_shards) rs.wake.clear();
  }

  const std::size_t nu = static_cast<std::size_t>(graph_.num_nodes());
  pool_->run([&](int t) {
    const std::size_t tu = static_cast<std::size_t>(t);
    auto& rs = s_.recv_shards[tu];
    rs.next_awake.clear();
    const NodeId lo = static_cast<NodeId>(nu * tu / S);
    const NodeId hi = static_cast<NodeId>(nu * (tu + 1) / S);
    std::size_t ri = static_cast<std::size_t>(
        std::lower_bound(recv.begin(), recv.end(), lo) - recv.begin());
    const std::size_t rn = static_cast<std::size_t>(
        std::lower_bound(recv.begin(), recv.end(), hi) - recv.begin());
    std::size_t wi = 0;
    const std::size_t wn = rs.wake.size();
    while (ri < rn || wi < wn) {
      NodeId v;
      if (wi >= wn || (ri < rn && recv[ri] < rs.wake[wi])) {
        v = recv[ri++];
      } else {
        v = rs.wake[wi++];
      }
      if (!s_.node_active[v]) {
        s_.node_awake[v] = 0;
        s_.idle_request[v] = 0;
        continue;
      }
      if (s_.idle_request[v]) {
        s_.idle_request[v] = 0;
        s_.node_awake[v] = 0;
        continue;
      }
      s_.node_awake[v] = 1;
      rs.next_awake.push_back(v);
    }
  });
  s_.next_awake.clear();
  for (const auto& rs : s_.recv_shards) {
    s_.next_awake.insert(s_.next_awake.end(), rs.next_awake.begin(),
                         rs.next_awake.end());
  }
  std::swap(s_.awake_nodes, s_.next_awake);
}

RunResult Engine::run() {
  const auto t0 = std::chrono::steady_clock::now();
  const NodeId n = graph_.num_nodes();
  RunResult result;
  result.termination_round.assign(static_cast<std::size_t>(n), -1);

  for (TraceSink* sink : sinks_) sink->on_run_begin(n, options_);
  // Phase profiler (EngineOptions::profile_phases): one clock read per
  // stage boundary, so adjacent spans share a timestamp and the per-round
  // sum never exceeds the wall time between the boundaries. lap() costs
  // nothing when profiling is off.
  const bool prof = options_.profile_phases;
  auto mark = std::chrono::steady_clock::now();
  const auto lap = [&mark, prof]() -> std::int64_t {
    if (!prof) return 0;
    const auto now = std::chrono::steady_clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - mark);
    mark = now;
    return ns.count();
  };
  while (active_count_ > 0 && round_ < options_.max_rounds) {
    if (s_.awake_nodes.empty() &&
        (!link_ || link_->pending_backlog() == 0)) {
      // Every active node is idle and no traffic is in flight: no event
      // can ever wake anyone again, so the network is permanently
      // quiescent. Report the run as incomplete instead of spinning the
      // round counter to max_rounds.
      break;
    }
    ++round_;
    for (TraceSink* sink : sinks_) sink->on_round_begin(round_, active_count_);
    PhaseProfile rp;
    lap();
    send_phase();
    rp.send_ns = lap();
    deliver_round_messages();
    const std::vector<NodeId>& recv = collect_delivery_wakes();
    (link_ ? rp.link_ns : rp.scatter_ns) = lap();
    if (trace_messages_) {
      trace_deliveries();
      rp.trace_ns = lap();
    }
    receive_phase(recv);
    rp.receive_ns = lap();
    process_terminations(recv, result.termination_round);
    rp.mutate_ns = lap();
    if (prof) {
      result.phase_ns.accumulate(rp);
      for (TraceSink* sink : sinks_) sink->on_round_profile(round_, rp);
    }
  }

  result.completed = (active_count_ == 0);
  result.rounds = round_;
  result.outputs = s_.node_output;
  result.edge_outputs.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    materialize_edge_outputs(v, result.edge_outputs[v]);
  }
  acct_.fold_into(result);
  if (link_) link_->export_metrics(result);
  if (record_sink_) {
    result.active_per_round = std::move(record_sink_->active_per_round);
    result.terminations_per_round =
        std::move(record_sink_->terminations_per_round);
  }
  result.peak_arena_bytes =
      static_cast<std::int64_t>(peak_arena_words_ * sizeof(Value));
  for (TraceSink* sink : sinks_) sink->on_run_end(result);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

const Predictions& empty_predictions() {
  static const Predictions kEmpty;
  return kEmpty;
}

RunResult run_algorithm(const Graph& g, ProgramFactory factory,
                        EngineOptions options, ThreadPool* shared_pool) {
  Engine engine(g, empty_predictions(), std::move(factory), options,
                shared_pool);
  return engine.run();
}

RunResult run_with_predictions(const Graph& g, const Predictions& predictions,
                               ProgramFactory factory, EngineOptions options,
                               ThreadPool* shared_pool) {
  Engine engine(g, predictions, std::move(factory), options, shared_pool);
  return engine.run();
}

std::vector<int> completion_round_per_component(const Graph& g,
                                                const RunResult& result) {
  DGAP_REQUIRE(result.termination_round.size() ==
                   static_cast<std::size_t>(g.num_nodes()),
               "result does not match the graph");
  return completion_round_per_component(connected_components(g), result);
}

std::vector<int> completion_round_per_component(
    const std::vector<std::vector<NodeId>>& components,
    const RunResult& result) {
  std::vector<int> out;
  out.reserve(components.size());
  for (const auto& comp : components) {
    int worst = 0;
    for (NodeId v : comp) {
      DGAP_REQUIRE(static_cast<std::size_t>(v) <
                       result.termination_round.size(),
                   "components do not match the result");
      const int t = result.termination_round[v];
      if (t < 0) {
        worst = -1;
        break;
      }
      worst = std::max(worst, t);
    }
    out.push_back(worst);
  }
  return out;
}

std::vector<const Message*> inbox_on_channel(std::span<const Message> inbox,
                                             int channel) {
  std::vector<const Message*> out;
  for_each_on_channel(inbox, channel, [&](const Message& m) {
    out.push_back(&m);
  });
  return out;
}

}  // namespace dgap
