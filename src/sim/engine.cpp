#include "sim/engine.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/properties.hpp"

namespace dgap {

// ---------------------------------------------------------------------------
// NodeContext — thin accessor layer over Engine state.
// ---------------------------------------------------------------------------

namespace {
Value lookup_edge_output(const std::vector<std::pair<NodeId, Value>>& table,
                         NodeId key) {
  auto it = std::lower_bound(
      table.begin(), table.end(), key,
      [](const std::pair<NodeId, Value>& e, NodeId k) { return e.first < k; });
  if (it != table.end() && it->first == key) return it->second;
  return kUndefined;
}

void store_edge_output(std::vector<std::pair<NodeId, Value>>& table, NodeId key,
                       Value v) {
  auto it = std::lower_bound(
      table.begin(), table.end(), key,
      [](const std::pair<NodeId, Value>& e, NodeId k) { return e.first < k; });
  if (it != table.end() && it->first == key) {
    it->second = v;
  } else {
    table.insert(it, {key, v});
  }
}
}  // namespace

Value NodeContext::id() const { return engine_->graph_.id(index_); }
NodeId NodeContext::n() const { return engine_->graph_.num_nodes(); }
std::int64_t NodeContext::d() const { return engine_->graph_.id_bound(); }
int NodeContext::delta() const { return engine_->graph_.max_degree(); }
int NodeContext::round() const { return engine_->round_; }

const std::vector<NodeId>& NodeContext::neighbors() const {
  return engine_->graph_.neighbors(index_);
}

Value NodeContext::neighbor_id(NodeId u) const {
  DGAP_REQUIRE(engine_->graph_.has_edge(index_, u), "not a neighbor");
  return engine_->graph_.id(u);
}

const std::vector<NodeId>& NodeContext::active_neighbors() const {
  return engine_->nodes_[index_].active_neighbors;
}

bool NodeContext::neighbor_active(NodeId u) const {
  const auto& an = active_neighbors();
  return std::binary_search(an.begin(), an.end(), u);
}

Value NodeContext::neighbor_output(NodeId u) const {
  DGAP_REQUIRE(engine_->graph_.has_edge(index_, u), "not a neighbor");
  const auto& st = engine_->nodes_[u];
  if (st.active) return kUndefined;  // outputs become visible on termination
  return st.output;
}

Value NodeContext::neighbor_output_for(NodeId u, NodeId key) const {
  DGAP_REQUIRE(engine_->graph_.has_edge(index_, u), "not a neighbor");
  const auto& st = engine_->nodes_[u];
  if (st.active) return kUndefined;
  return lookup_edge_output(st.edge_outputs, key);
}

Value NodeContext::prediction() const {
  return engine_->predictions_.node(index_);
}

Value NodeContext::edge_prediction(NodeId u) const {
  return engine_->predictions_.edge(engine_->graph_, index_, u);
}

void NodeContext::send(NodeId to, std::vector<Value> words, int channel) {
  DGAP_REQUIRE(engine_->in_send_phase_, "send() is only valid in onSend");
  DGAP_REQUIRE(engine_->graph_.has_edge(index_, to),
               "can only send to a neighbor");
  engine_->nodes_[index_].outbox.emplace_back(
      to, Message{index_, channel, std::move(words)});
}

void NodeContext::broadcast(const std::vector<Value>& words, int channel) {
  for (NodeId u : active_neighbors()) {
    send(u, words, channel);
  }
}

const std::vector<Message>& NodeContext::inbox() const {
  return engine_->nodes_[index_].inbox;
}

void NodeContext::set_output(Value v) {
  DGAP_REQUIRE(v != kUndefined, "kUndefined is reserved");
  engine_->nodes_[index_].output = v;
}

void NodeContext::set_output_for(NodeId key, Value v) {
  DGAP_REQUIRE(v != kUndefined, "kUndefined is reserved");
  store_edge_output(engine_->nodes_[index_].edge_outputs, key, v);
}

bool NodeContext::has_output() const {
  return engine_->nodes_[index_].output != kUndefined;
}

bool NodeContext::has_output_for(NodeId key) const {
  return lookup_edge_output(engine_->nodes_[index_].edge_outputs, key) !=
         kUndefined;
}

Value NodeContext::output() const { return engine_->nodes_[index_].output; }

Value NodeContext::output_for(NodeId key) const {
  return lookup_edge_output(engine_->nodes_[index_].edge_outputs, key);
}

void NodeContext::terminate() {
  auto& st = engine_->nodes_[index_];
  DGAP_REQUIRE(st.output != kUndefined || !st.edge_outputs.empty(),
               "a node terminates only after assigning its outputs");
  st.terminate_requested = true;
}

bool NodeContext::terminated() const {
  return engine_->nodes_[index_].terminate_requested;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(const Graph& g, Predictions predictions, ProgramFactory factory,
               EngineOptions options)
    : graph_(g), predictions_(std::move(predictions)), options_(options) {
  DGAP_REQUIRE(factory != nullptr, "a program factory is required");
  const NodeId n = g.num_nodes();
  nodes_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    nodes_[v].program = factory(v);
    DGAP_REQUIRE(nodes_[v].program != nullptr, "factory returned null");
    nodes_[v].active_neighbors = g.neighbors(v);
  }
  active_count_ = n;
}

void Engine::charge_message(const Message& m) {
  ++metrics_.total_messages;
  // Channel tags model an extra field inside the message.
  const int width =
      static_cast<int>(m.words.size()) + (m.channel != 0 ? 1 : 0);
  metrics_.total_words += width;
  metrics_.max_message_words = std::max(metrics_.max_message_words, width);
  if (options_.congest_word_limit > 0 && width > options_.congest_word_limit) {
    ++metrics_.congest_violations;
  }
}

void Engine::deliver_round_messages() {
  for (auto& st : nodes_) st.inbox.clear();
  for (auto& st : nodes_) {
    for (auto& [to, msg] : st.outbox) {
      charge_message(msg);
      if (nodes_[to].active) {
        nodes_[to].inbox.push_back(std::move(msg));
      }
    }
    st.outbox.clear();
  }
  // Deterministic inbox order (by sender, then channel) regardless of the
  // engine's iteration order — simulated algorithms must not depend on
  // incidental arrival order.
  for (auto& st : nodes_) {
    std::sort(st.inbox.begin(), st.inbox.end(),
              [](const Message& a, const Message& b) {
                return std::tie(a.from, a.channel) <
                       std::tie(b.from, b.channel);
              });
  }
}

void Engine::process_terminations(std::vector<int>& termination_round) {
  if (options_.record_terminations) {
    metrics_.terminations_per_round.resize(static_cast<std::size_t>(round_));
  }
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    auto& st = nodes_[v];
    if (!st.active || !st.terminate_requested) continue;
    st.active = false;
    --active_count_;
    termination_round[v] = round_;
    if (options_.record_terminations) {
      metrics_.terminations_per_round.back().push_back(v);
    }
  }
  // Second pass: rebuild active-neighbor views and charge the notification
  // messages implied by the Section 7 convention (one message carrying the
  // node's outputs to each neighbor that is still active).
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    auto& st = nodes_[v];
    if (st.active || termination_round[v] != round_) continue;
    for (NodeId u : graph_.neighbors(v)) {
      if (!nodes_[u].active) continue;
      Message notice;
      notice.from = v;
      notice.words.assign(
          1 + st.edge_outputs.size(),
          st.output == kUndefined ? Value{0} : st.output);
      charge_message(notice);
      auto& uan = nodes_[u].active_neighbors;
      auto it = std::lower_bound(uan.begin(), uan.end(), v);
      if (it != uan.end() && *it == v) uan.erase(it);
    }
  }
}

RunResult Engine::run() {
  const NodeId n = graph_.num_nodes();
  RunResult result;
  result.termination_round.assign(static_cast<std::size_t>(n), -1);

  while (active_count_ > 0 && round_ < options_.max_rounds) {
    ++round_;
    if (options_.record_active_per_round) {
      metrics_.active_per_round.push_back(active_count_);
    }
    // Send phase.
    in_send_phase_ = true;
    for (NodeId v = 0; v < n; ++v) {
      if (!nodes_[v].active) continue;
      NodeContext ctx(this, v);
      nodes_[v].program->on_send(ctx);
    }
    in_send_phase_ = false;
    deliver_round_messages();
    // Receive / compute phase.
    for (NodeId v = 0; v < n; ++v) {
      if (!nodes_[v].active) continue;
      NodeContext ctx(this, v);
      nodes_[v].program->on_receive(ctx);
    }
    process_terminations(result.termination_round);
  }

  result.completed = (active_count_ == 0);
  result.rounds = round_;
  result.outputs.reserve(static_cast<std::size_t>(n));
  result.edge_outputs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    result.outputs.push_back(nodes_[v].output);
    result.edge_outputs.push_back(nodes_[v].edge_outputs);
  }
  result.total_messages = metrics_.total_messages;
  result.total_words = metrics_.total_words;
  result.max_message_words = metrics_.max_message_words;
  result.congest_violations = metrics_.congest_violations;
  result.active_per_round = std::move(metrics_.active_per_round);
  result.terminations_per_round = std::move(metrics_.terminations_per_round);
  return result;
}

RunResult run_algorithm(const Graph& g, ProgramFactory factory,
                        EngineOptions options) {
  Engine engine(g, Predictions{}, std::move(factory), options);
  return engine.run();
}

RunResult run_with_predictions(const Graph& g, const Predictions& predictions,
                               ProgramFactory factory, EngineOptions options) {
  Engine engine(g, predictions, std::move(factory), options);
  return engine.run();
}

std::vector<int> completion_round_per_component(const Graph& g,
                                                const RunResult& result) {
  DGAP_REQUIRE(result.termination_round.size() ==
                   static_cast<std::size_t>(g.num_nodes()),
               "result does not match the graph");
  std::vector<int> out;
  for (const auto& comp : connected_components(g)) {
    int worst = 0;
    for (NodeId v : comp) {
      const int t = result.termination_round[v];
      if (t < 0) {
        worst = -1;
        break;
      }
      worst = std::max(worst, t);
    }
    out.push_back(worst);
  }
  return out;
}

std::vector<const Message*> inbox_on_channel(const std::vector<Message>& inbox,
                                             int channel) {
  std::vector<const Message*> out;
  for (const Message& m : inbox) {
    if (m.channel == channel) out.push_back(&m);
  }
  return out;
}

}  // namespace dgap
