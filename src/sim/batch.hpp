// Batch simulation runner: schedule whole sweeps across a worker pool.
//
// The paper's claims are verified by sweeps — thousands of small
// independent simulations over (n, error, cut-round) grids — where the
// engine's per-node sharding has nothing to chew on. The batch runner
// parallelizes across simulations instead: each job is one Engine (kept
// single-threaded; `num_threads` moves to the batch level), jobs are
// pulled off a shared counter by a persistent worker pool, and results
// come back in submission order regardless of completion order.
//
// Determinism contract: every deterministic RunResult field (everything
// except `wall_ms` and the capacity-dependent `peak_arena_bytes`) is
// bit-identical to running the same jobs serially in a loop, for any
// worker count and any submission order. The engine itself is
// deterministic per job, jobs share no mutable state (a job's factory
// must not either — every factory in this library derives per-node state
// from the context and explicit seeds), and results are keyed by
// submission index, so scheduling cannot leak into outputs.
// tests/batch_test.cpp pins this.
//
// Amortization: jobs given as GraphSpec are resolved through a keyed
// GraphCache (repeated-seed sweeps build each distinct instance once),
// and each worker slot owns one EngineScratch reused by every engine it
// runs, so arena/worklist capacity persists across jobs. A job that
// throws (DGAP_REQUIRE out of a program hook, say) fails only itself: its
// BatchResult carries the index and the exception text, other jobs run to
// completion. See docs/MODEL.md, "Batch execution model".
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/spec.hpp"
#include "predict/predictions.hpp"
#include "sim/engine.hpp"
#include "sim/result_cache.hpp"

namespace dgap {

/// One simulation to run: an instance (borrowed graph or cache-resolved
/// spec), the algorithm, optional predictions, and engine options.
/// `options.num_threads` is forced to 1 inside a batch.
struct BatchJob {
  const Graph* graph = nullptr;  // borrowed; must outlive run_all()
  std::shared_ptr<const Graph> shared_graph;  // keeps a resolved spec alive
  GraphSpec spec;
  bool use_spec = false;
  Predictions predictions;  // empty = no predictions
  ProgramFactory factory;
  EngineOptions options;
  /// Record this job's run as a binary transcript (sim/transcript.hpp);
  /// the bytes come back in BatchResult::transcript. Spec jobs embed their
  /// GraphSpec in the header, so the file is self-describing. Mutually
  /// exclusive with options.trace_sink (DGAP_REQUIRE at add()).
  bool capture_transcript = false;
  TraceDetail transcript_detail = TraceDetail::kPayloads;
  std::string transcript_label;
  /// Stable name of the algorithm `factory` builds (e.g. "mis/greedy").
  /// When non-empty, the job is CONTENT-ADDRESSED through the runner's
  /// ResultCache (sim/result_cache.hpp): an identical job — same instance,
  /// options, predictions, algorithm id, transcript request — submitted in
  /// any later (or the same) batch is served from the cache without
  /// executing. The id is the caller's contract that equal ids mean equal
  /// per-node behavior. Incompatible with options.trace_sink (the sink
  /// would not fire on a hit; DGAP_REQUIRE at add()).
  std::string algorithm_id;
  /// Provider-sourced predictions: when set (with `predictions` left
  /// empty — DGAP_REQUIRE at add()), the runner materializes the
  /// predictions itself via provider->provide(graph, provider_kind,
  /// Rng(provider_seed)) in a serial pre-pass, and a content-addressed
  /// job is keyed by provider_slot_digest(*provider, kind, seed) instead
  /// of hashing a materialized vector — so a cache HIT never pays for
  /// materialization at all.
  ProviderPtr provider;
  ProblemKind provider_kind = ProblemKind::kMis;
  std::uint64_t provider_seed = 0;
};

/// Job against an existing graph (borrowed; caller keeps it alive).
BatchJob make_job(const Graph& g, ProgramFactory factory,
                  Predictions predictions = {}, EngineOptions options = {});
/// Job against a spec, resolved through the runner's graph cache.
BatchJob make_job(const GraphSpec& spec, ProgramFactory factory,
                  Predictions predictions = {}, EngineOptions options = {});

struct BatchResult {
  std::size_t index = 0;  // submission index; results arrive in this order
  bool ok = false;
  RunResult result;       // meaningful iff ok
  std::string error;      // exception text iff !ok
  /// Serialized transcript iff the job set capture_transcript and ran ok.
  /// Byte-identical across worker counts and submission schedules — the
  /// strongest determinism witness the runner offers (batch_test pins it).
  std::vector<std::uint8_t> transcript;
  /// True iff this job was served from the result cache. Served results
  /// are bit-identical to a recompute (the engine is deterministic), so
  /// this is observability, not semantics — wall_ms is the original
  /// run's, the only field a hit can "misreport".
  bool cache_hit = false;
};

struct BatchOptions {
  /// Parallel worker slots (>= 1). Slot 0 runs on the calling thread, so
  /// one worker means a plain serial loop with the amortization benefits.
  int num_workers = 1;
};

/// Persistent sweep executor: submit jobs with add(), execute with
/// run_all(). The worker pool and the per-slot scratch survive across
/// run_all() calls, and the graph cache survives with them, so repeated
/// sweeps (a bench's grid per table row, a test's cut sweep per instance)
/// amortize thread spawn, graph construction, and arena allocation.
/// Not thread-safe itself: submit and run from one thread.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Queue a job; returns its submission index within the pending batch.
  std::size_t add(BatchJob job);
  std::size_t add(const Graph& g, ProgramFactory factory,
                  Predictions predictions = {}, EngineOptions options = {});
  std::size_t add(const GraphSpec& spec, ProgramFactory factory,
                  Predictions predictions = {}, EngineOptions options = {});

  std::size_t pending() const { return jobs_.size(); }
  int num_workers() const;

  /// Execute every pending job; results in submission order. Clears the
  /// pending list. Jobs that threw are reported, not rethrown.
  std::vector<BatchResult> run_all();

  /// The spec cache (shared across batches; exposed for pre-resolving a
  /// spec when predictions must be computed from the instance).
  GraphCache& graph_cache() { return cache_; }

  /// The content-addressed result cache serving jobs with an algorithm_id
  /// (shared across batches, like the graph cache). Hits and fills are
  /// both performed serially in submission order, so caching cannot leak
  /// worker scheduling into results.
  ResultCache& result_cache() { return results_; }

 private:
  BatchOptions options_;
  GraphCache cache_;
  ResultCache results_;
  std::vector<BatchJob> jobs_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<EngineScratch> scratch_;  // one per worker slot
};

/// One-shot convenience: run `jobs` on a temporary BatchRunner.
std::vector<BatchResult> run_batch(std::vector<BatchJob> jobs,
                                   BatchOptions options = {});

/// Unwrap successful results in submission order; throws std::runtime_error
/// naming the first failed job's index and error otherwise.
std::vector<RunResult> take_results(std::vector<BatchResult>&& results);

/// FNV-1a checksum over the deterministic fields of a result (everything
/// reproducible from (graph, predictions, factory, options): rounds,
/// outputs, termination rounds, message/word/link counters — excluding
/// wall_ms and peak_arena_bytes). Equal checksums across serial and batch
/// executions are the cheap bit-identity witness benches and CI diff.
std::uint64_t result_checksum(const RunResult& result);
std::uint64_t results_checksum(std::span<const RunResult> results);

}  // namespace dgap
