// Composable per-node phase programs.
//
// The paper's templates (Section 7) build algorithms with predictions out of
// four kinds of building blocks: an initialization algorithm B, a
// measure-uniform algorithm U, a clean-up algorithm C, and a reference
// algorithm R, possibly split into parts/phases, run consecutively,
// interleaved, or in parallel. A PhaseProgram is the per-node state machine
// of one such block: like a NodeProgram it sees one onSend/onReceive pair
// per round, but instead of owning the node's whole lifetime it reports
// kFinished when its own work is complete, so a driver can hand the node to
// the next block. A block may also terminate the node outright (via the
// context), which ends every block.
//
// Messaging during composition goes through a Channel, which tags outgoing
// messages and filters the inbox, so two blocks running in parallel (the
// Parallel template runs U and R part 1 simultaneously) cannot read each
// other's traffic.
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace dgap {

/// Lazily filtered view of a round inbox restricted to one channel.
/// Iteration yields `const Message*`, so the idiomatic loop
/// `for (const Message* m : ch.inbox())` is unchanged — but no vector of
/// pointers is materialized (the filter runs inline, allocation-free).
class ChannelInbox {
 public:
  class iterator {
   public:
    iterator(const Message* cur, const Message* last, int channel)
        : cur_(cur), last_(last), channel_(channel) {
      skip_mismatches();
    }
    const Message* operator*() const { return cur_; }
    iterator& operator++() {
      ++cur_;
      skip_mismatches();
      return *this;
    }
    bool operator!=(const iterator& o) const { return cur_ != o.cur_; }

   private:
    void skip_mismatches() {
      while (cur_ != last_ && cur_->channel != channel_) ++cur_;
    }
    const Message* cur_;
    const Message* last_;
    int channel_;
  };

  ChannelInbox(std::span<const Message> all, int channel)
      : all_(all), channel_(channel) {}
  iterator begin() const {
    return {all_.data(), all_.data() + all_.size(), channel_};
  }
  iterator end() const {
    return {all_.data() + all_.size(), all_.data() + all_.size(), channel_};
  }
  bool empty() const { return !(begin() != end()); }

 private:
  std::span<const Message> all_;
  int channel_;
};

/// Messaging endpoint bound to (context, channel id).
class Channel {
 public:
  Channel(NodeContext& ctx, int id) : ctx_(&ctx), id_(id) {}

  void send(NodeId to, const std::vector<Value>& words) {
    ctx_->send(to, words, id_);
  }
  void send(NodeId to, std::initializer_list<Value> words) {
    ctx_->send(to, words, id_);
  }
  void broadcast(const std::vector<Value>& words) {
    ctx_->broadcast(words, id_);
  }
  void broadcast(std::initializer_list<Value> words) {
    ctx_->broadcast(words, id_);
  }
  /// Declare this round's default message on this channel: a send or
  /// broadcast with an identical payload may be suppressed off the wire by
  /// the message-reduction pass (EngineOptions::compile.decode_defaults)
  /// and synthesized at the receiver. Inert when the knob is off, so one
  /// phase serves compiled and uncompiled runs. See sim/compile.hpp.
  void declare_default(const std::vector<Value>& words) {
    ctx_->declare_default(words, id_);
  }
  void declare_default(std::initializer_list<Value> words) {
    ctx_->declare_default(words, id_);
  }
  /// Relay this node's broadcasts over the engine's spanning skeleton
  /// (inert without EngineOptions::compile.skeleton). Opt in only for
  /// flood-idempotent stages: pruned copies are dropped, not synthesized.
  void relay_on_skeleton() { ctx_->relay_on_skeleton(); }
  /// Messages received this round on this channel (lazy, allocation-free).
  ChannelInbox inbox() const { return {ctx_->inbox(), id_}; }
  int id() const { return id_; }

 private:
  NodeContext* ctx_;
  int id_;
};

class PhaseProgram {
 public:
  /// kIdle means "still running, and I promise quiescence until an event":
  /// the phase has nothing to send and its decision cannot change until a
  /// message arrives or a neighbor terminates. When a phase runs bare
  /// (phase_as_algorithm), the runner forwards the promise to the engine
  /// (NodeContext::idle()) so the node's hooks are skipped until a wake
  /// event. Composition wrappers (BudgetedPhase, SequencePhase, the
  /// template drivers) must keep counting rounds for their lockstep
  /// schedules, so they treat kIdle exactly like kRunning — which every
  /// `== kFinished` comparison already does.
  enum class Status { kRunning, kIdle, kFinished };

  virtual ~PhaseProgram() = default;
  virtual void on_send(NodeContext& ctx, Channel& ch) = 0;
  virtual Status on_receive(NodeContext& ctx, Channel& ch) = 0;
};

using PhaseFactory =
    std::function<std::unique_ptr<PhaseProgram>(NodeId index)>;

/// Adapter: run a single phase program as a complete algorithm. If the
/// phase finishes at a node without terminating it, the node outputs
/// `leftover_output` and terminates — this is how tests inspect the partial
/// solution computed by an initialization algorithm on its own.
/// Nodes left running output kLeftoverActive, so a test can distinguish
/// "decided by the phase" from "still active when it finished".
inline constexpr Value kLeftoverActive = -999;

ProgramFactory phase_as_algorithm(PhaseFactory factory,
                                  Value leftover_output = kLeftoverActive);

/// A phase that does nothing for a fixed number of rounds (used to pad
/// schedules so that all nodes switch blocks simultaneously).
class IdlePhase final : public PhaseProgram {
 public:
  explicit IdlePhase(int rounds) : remaining_(rounds) {}
  void on_send(NodeContext&, Channel&) override {}
  Status on_receive(NodeContext&, Channel&) override {
    if (remaining_ > 0) --remaining_;
    return remaining_ <= 0 ? Status::kFinished : Status::kRunning;
  }

 private:
  int remaining_;
};

/// Wrap a phase with a hard round budget: reports kFinished when either the
/// inner phase finishes or the budget is exhausted, whichever comes first,
/// and idles (without touching the inner phase) if the inner phase finishes
/// early but `pad_to_budget` asks for lockstep switching.
class BudgetedPhase final : public PhaseProgram {
 public:
  BudgetedPhase(std::unique_ptr<PhaseProgram> inner, int budget,
                bool pad_to_budget)
      : inner_(std::move(inner)), remaining_(budget), pad_(pad_to_budget) {}

  void on_send(NodeContext& ctx, Channel& ch) override {
    if (!inner_done_ && remaining_ > 0) inner_->on_send(ctx, ch);
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    if (remaining_ <= 0) return Status::kFinished;
    if (!inner_done_) {
      if (inner_->on_receive(ctx, ch) == Status::kFinished) inner_done_ = true;
    }
    --remaining_;
    if (inner_done_ && !pad_) return Status::kFinished;
    if (remaining_ <= 0) return Status::kFinished;
    return Status::kRunning;
  }

 private:
  std::unique_ptr<PhaseProgram> inner_;
  int remaining_;
  bool pad_;
  bool inner_done_ = false;
};

/// Run phases one after another (all on the same channel). Used by the
/// Simple and Consecutive templates. Each node advances to the next phase
/// the round after its current phase reports kFinished; with budgeted
/// phases (deterministic schedules) all nodes advance in lockstep, which is
/// what the templates require.
class SequencePhase final : public PhaseProgram {
 public:
  explicit SequencePhase(std::vector<std::unique_ptr<PhaseProgram>> phases)
      : phases_(std::move(phases)) {}

  void on_send(NodeContext& ctx, Channel& ch) override {
    if (current_ < phases_.size()) phases_[current_]->on_send(ctx, ch);
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    if (current_ >= phases_.size()) return Status::kFinished;
    if (phases_[current_]->on_receive(ctx, ch) == Status::kFinished) {
      ++current_;
    }
    return current_ >= phases_.size() ? Status::kFinished : Status::kRunning;
  }

 private:
  std::vector<std::unique_ptr<PhaseProgram>> phases_;
  std::size_t current_ = 0;
};

}  // namespace dgap
