// Message-reduction compilation: mechanically rewrite a node program's
// message pattern without changing its behavior.
//
// Following "Message Reduction in the LOCAL Model is a Free Lunch" (Bitton,
// Emek, Izumi, Kutten; see PAPERS.md), a LOCAL/CONGEST node program can be
// compiled to send far fewer messages while keeping the round schedule and
// every node's output bit-identical. This repo implements three of the
// paper-family transforms as engine knobs (`EngineOptions::compile`):
//
//   1. Neighborhood caching (`cache_resends`) — a per-directed-edge
//      one-slot cache of the last message delivered on that edge; an exact
//      re-send (same channel, length, payload) is *suppressed*: it is
//      charged to the nominal totals, skipped on the wire, and synthesized
//      into the receiver's inbox, because the receiver could reconstruct it
//      from its own memory.
//   2. Silence as information (`decode_defaults`) — a program declares a
//      per-round default message (NodeContext::declare_default / the
//      Channel forwarder); a send that equals the declared default is
//      suppressed the same way, because an informed receiver decodes the
//      absence. Sound only when the default is a globally-known constant of
//      the schedule — never per-sender dynamic state.
//   3. Sparse skeleton relay (`skeleton` + NodeContext::relay_on_skeleton)
//      — broadcast copies on non-skeleton edges are dropped outright
//      (charged as suppressed, NOT delivered). Sound only for
//      flood-idempotent, schedule-bound stages that opt in.
//
// The engine's suppression is *accounting-only* for transforms 1–2: every
// suppressed message is still delivered (flagged `Message::suppressed`), so
// compiled and uncompiled runs are byte-identical in outputs, rounds, and
// kRounds transcripts by construction. `RunResult::total_*` stays nominal
// (sent + suppressed); the new `*_sent` / `*_suppressed` fields split the
// physical wire cost out. Full semantics: docs/MODEL.md,
// "Message-reduction compilation".
//
// Thread-invariance of the transforms: default suppression (2) and
// skeleton pruning (3) are decided at send time from shard-local state, so
// they are trivially independent of num_threads. The resend cache (1) is
// stateful per directed edge; its slots are keyed to *receiver-shard
// ownership* — the edge (from, to)'s cache line is touched only by the
// shard owning `to`, which walks its records in ascending global send
// order — so the per-edge hit/miss sequence (and with it the suppressed
// split) is identical for every thread count, and compilation no longer
// forces the engine onto a serial delivery loop. compile_test pins the
// suppressed counters and transcripts across threads {1, 2, 4, 8}.
#pragma once

#include <memory>
#include <vector>

#include "sim/phase.hpp"

namespace dgap {

/// A deterministic spanning skeleton: a BFS forest rooted at each
/// component's minimum-identifier node. The edge bitmap shares the engine's
/// adjacency CSR numbering (directed edge j of node v is the edge to
/// g.neighbors(v)[j], flag index offset[v] + j), so membership tests in the
/// broadcast hot path are one load.
struct Skeleton {
  std::vector<std::uint32_t> offset;          // n+1 adjacency CSR offsets
  std::vector<std::uint8_t> edge_in_skeleton;  // per directed edge
  std::vector<NodeId> parent;                  // kNoNode at forest roots
  std::int64_t tree_edges = 0;                 // undirected tree edge count
  int depth = 0;                               // max BFS depth over roots
};

/// Build the BFS-forest skeleton of `g`. Deterministic: roots are chosen in
/// ascending identifier order and each BFS scans adjacency lists in order,
/// so the same graph always yields the same skeleton (and therefore the
/// same compiled transcript).
Skeleton compute_skeleton(const Graph& g);

/// Per-phase compilation directives applied by compile_phase(). The spec is
/// pure annotation: with every engine compile knob off, a compiled phase
/// behaves exactly like its inner phase (declarations are inert), so one
/// factory serves compiled and uncompiled runs alike.
struct PhaseCompileSpec {
  /// Declared as the phase's default message (on the phase's channel) when
  /// non-empty; must hold a globally-known constant, at most
  /// detail::SendRecord::kInlineCap words.
  std::vector<Value> default_words;
  /// Declare the default only on the phase's first round (e.g. an
  /// initialization broadcast at a schedule-fixed step).
  bool default_first_round_only = false;
  /// Relay this phase's broadcasts over the engine's skeleton. Opt in only
  /// for flood-idempotent, schedule-bound stages: non-skeleton copies are
  /// dropped, not synthesized.
  bool skeleton_broadcasts = false;
};

/// Wrap a phase factory so each instance emits the spec's declarations
/// before delegating. Round counting is local to the wrapper (receive-phase
/// increments), matching the lockstep schedules templates rely on.
PhaseFactory compile_phase(PhaseFactory inner, PhaseCompileSpec spec);

/// The canonical broadcast-heavy workload for the message benches: every
/// node floods the minimum identifier it has seen for exactly n rounds,
/// then outputs it (the component minimum) and terminates. Deliberately
/// naive — Θ(n·m) nominal messages — so the cache transform (re-sends
/// dominate once the minimum stabilizes) and the skeleton relay (flooding
/// is idempotent) both have room to show their reduction.
class NaiveFloodMinPhase final : public PhaseProgram {
 public:
  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  Value best_ = kUndefined;
  int rounds_ = 0;
};

/// Phase factory for NaiveFloodMinPhase.
PhaseFactory make_flood_min();

/// NaiveFloodMinPhase run as a complete algorithm (terminates every node
/// with the component-minimum identifier after n rounds).
ProgramFactory flood_min_algorithm();

}  // namespace dgap
