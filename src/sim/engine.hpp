// Round-synchronous message-passing simulator (the paper's Section 2 model).
//
// Each round, every *active* node first sends (a possibly different message
// to each neighbor), then receives everything sent to it this round, then
// computes, optionally assigns output values, and optionally terminates.
// Programs therefore implement two hooks per round, onSend and onReceive;
// a node cannot make its round-r sends depend on its round-r inbox, exactly
// as in the model.
//
// Termination convention (Section 7): "prior to terminating, nodes inform
// their active neighbors about their output values". The engine implements
// this convention once, for every algorithm: when a node terminates at the
// end of round r, each still-active neighbor's view is updated for round
// r+1 — the node disappears from active_neighbors() and its outputs become
// readable through neighbor_output(). The notification traffic is charged
// to the message metrics (one message per still-active neighbor, one word
// per output value), so CONGEST accounting stays honest.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "predict/predictions.hpp"
#include "sim/arena.hpp"
#include "sim/trace.hpp"

namespace dgap {

/// What the engine does with traffic that exceeds the per-link CONGEST
/// budget (`EngineOptions::congest_word_limit`, in words per directed edge
/// per round). See docs/MODEL.md, "CONGEST enforcement semantics".
enum class CongestPolicy {
  /// Audit only (default): violations are counted, delivery is unaffected.
  kCount,
  /// Enforce by store-and-forward: a link transmits at most B words per
  /// round; excess queues FIFO per link and arrives in a later round.
  kDefer,
  /// Enforce by loss: words beyond the link's remaining round budget are
  /// dropped and the delivered message is marked `Message::truncated`.
  kTruncate,
  /// Enforce by contract: an over-budget send throws (DGAP_REQUIRE).
  kFail,
};

/// A message delivered within a round. `channel` is a multiplexing tag used
/// by composed algorithms (the Parallel template runs two sub-algorithms
/// whose traffic must not be confused); it models field(s) inside the
/// message, and its width is charged as one extra word whenever nonzero.
/// `words` is a borrowed view into the engine's round arena — valid only
/// during this round's receive phase; copy words out to keep them.
/// `truncated` is set only under CongestPolicy::kTruncate, on messages
/// that lost words to the link budget.
/// `suppressed` is set only under message-reduction compilation
/// (EngineOptions::compile): the payload never crossed the wire — the
/// receiver reconstructs it from silence (a declared default or its
/// memory of the link's previous message) — but the engine synthesizes
/// the delivery so program behavior is byte-identical to the uncompiled
/// run. See docs/MODEL.md, "Message-reduction compilation".
struct Message {
  NodeId from = kNoNode;  // sender's internal index
  int channel = 0;
  WordSpan words;
  bool truncated = false;
  bool suppressed = false;
};

class Engine;
struct RunResult;

namespace detail {

/// One message's width in words: the payload plus the channel-tag field
/// (a nonzero channel models an extra field inside the message).
inline int message_width(std::size_t payload_words, int channel) {
  return static_cast<int>(payload_words) + (channel != 0 ? 1 : 0);
}

/// Message-metric accumulator shared by every accounting site — the
/// delivery passes, the termination-notice charges, and the link scheduler
/// — so the CONGEST bookkeeping cannot drift between the paths. The serial
/// paths charge the engine's member account directly; the parallel
/// delivery and termination passes charge one instance per receiver shard
/// and merge them into the member account in fixed shard order each round.
/// Every counter is an order-independent reduction (sums, plus one max),
/// so the merged totals are *exactly* — not approximately — the serial
/// ones for any num_threads; folded into the RunResult once per run.
///
/// `messages`/`words` are the *nominal* totals — what the uncompiled
/// algorithm pays, suppressed traffic included — so compiling a run never
/// changes them (the invariant sent + suppressed == nominal that
/// bench_messages asserts). The `*_suppressed` counters split out traffic
/// a message-reduction transform kept off the wire (sim/compile.hpp);
/// width and violation audits skip suppressed messages, because silence
/// occupies no link.
struct CongestAccount {
  std::int64_t messages = 0;  // nominal: sent + suppressed
  std::int64_t words = 0;
  std::int64_t messages_suppressed = 0;
  std::int64_t words_suppressed = 0;
  int max_width = 0;
  std::int64_t violations = 0;

  /// Charge one message. `word_limit` <= 0 disables violation counting;
  /// `suppressed` messages are charged to the nominal totals but never to
  /// the wire-side audits (width, violations).
  void charge(std::size_t payload_words, int channel, int word_limit,
              bool suppressed = false) {
    ++messages;
    const int width = message_width(payload_words, channel);
    words += width;
    if (suppressed) {
      ++messages_suppressed;
      words_suppressed += width;
      return;
    }
    if (width > max_width) max_width = width;
    if (word_limit > 0 && width > word_limit) ++violations;
  }

  /// Merge another account into this one (the fixed-shard-order reduction
  /// of the parallel delivery pass). All counters are sums except
  /// max_width, which is a max — both order-independent, so the merged
  /// account equals the serial one exactly.
  void merge_from(const CongestAccount& o) {
    messages += o.messages;
    words += o.words;
    messages_suppressed += o.messages_suppressed;
    words_suppressed += o.words_suppressed;
    max_width = max_width > o.max_width ? max_width : o.max_width;
    violations += o.violations;
  }

  /// Fold the accumulated counters into the run metrics (defined out of
  /// line: RunResult is completed later in this header).
  void fold_into(RunResult& m) const;
};

/// One queued send. Payloads of at most kInlineCap words — the common case
/// for every algorithm in docs/ALGORITHMS.md — are stored inline in the
/// record itself and never touch the arena; larger payloads record the
/// (offset, len) of their arena copy. `words` is filled in after the send
/// phase, once both the arena and the shard's record vector are frozen
/// (either may still grow — and move — while the phase runs, which is why
/// neither an arena pointer nor a self-pointer can be taken earlier).
struct SendRecord {
  static constexpr std::uint32_t kInlineCap = 2;

  // Compile-transform flags (EngineOptions::compile). kSuppressed: the
  // payload stays off the wire but the delivery is synthesized (charged
  // suppressed, still delivered). kSkeletonDrop: a relayed broadcast's
  // copy on a non-skeleton edge — charged suppressed, never delivered.
  static constexpr std::uint8_t kSuppressed = 1;
  static constexpr std::uint8_t kSkeletonDrop = 2;

  NodeId to;
  NodeId from;
  std::int32_t channel;
  std::uint32_t len;
  std::uint32_t offset;         // arena offset; unused when len <= kInlineCap
  const Value* words;           // resolved after the send phase
  Value inline_words[kInlineCap];
  std::uint8_t flags;
};

/// Outgoing traffic of one contiguous slice of the awake worklist. Serial
/// runs use a single shard; parallel runs give each thread its own, merged
/// in slice order so the round buffer is identical to the serial one.
struct SendShard {
  MessageArena arena;
  std::vector<SendRecord> sends;
  bool channels_monotone = true;  // every sender's channels non-decreasing?
  int last_channel = 0;           // channel of the current node's last send
  bool any_idle = false;          // some node on this slice called idle()
  // declare_default / relay_on_skeleton state of the node currently in its
  // on_send hook (reset per node, like last_channel). Shard-local, so the
  // parallel send phase needs no shared state.
  bool default_active = false;
  bool skeleton_relay = false;
  std::int32_t default_channel = 0;
  std::uint32_t default_len = 0;
  Value default_words[SendRecord::kInlineCap];
  // Receiver routing (parallel delivery only): this shard's send records
  // grouped by the receiver shard that owns `to` — a stable counting sort
  // of record indices, so each bucket preserves send order. route_begin
  // holds S + 1 bucket offsets into route_idx. any_long notes a payload
  // over SendRecord::kInlineCap this round (the serial between-phases step
  // sizes the compile cache's long-payload store before shards touch it).
  std::vector<std::uint32_t> route_idx;
  std::vector<std::uint32_t> route_begin;
  std::vector<std::uint32_t> route_cursor;
  bool any_long = false;
};

/// Per-receiver-shard state of the parallel delivery and mutation passes.
/// Receiver shard t owns the contiguous node range [n*t/S, n*(t+1)/S) for
/// the whole run — a pure function of (n, S), never of scheduling — and
/// every per-node slot (recv_count, inbox slices, active-neighbor
/// prefixes, awake flags, and the compile pass's per-in-edge cache lines)
/// of an owned node is touched by exactly one shard, so the passes need no
/// locks and no atomics. Per-shard outputs (touched lists, wake lists,
/// account) are merged serially in fixed shard order; because ownership
/// ranges are contiguous and ascending, concatenation in shard order *is*
/// ascending node order, and the account counters are order-independent
/// reductions — which is why the merged result is bit-identical to the
/// serial pass (docs/MODEL.md, "Simulator internals & performance model").
struct RecvShard {
  CongestAccount acct;                       // merged in shard order
  std::vector<NodeId> touched;               // owned receivers, first-touch
  std::vector<std::uint32_t> touched_first;  // global index of first record
  std::uint32_t delivered = 0;               // records scattered by this shard
  std::uint32_t region = 0;                  // this shard's inbox_flat base
  std::vector<NodeId> newly_terminated;      // T1 scratch (ascending)
  std::vector<NodeId> wake;                  // owned sleepers woken (sorted)
  std::vector<NodeId> next_awake;            // owned slice of the rebuild
};

/// Inbox of one node = a slice of the flat round buffer, valid for one
/// round. The stamp makes stale entries read as empty without any
/// per-round clearing.
struct InboxRef {
  std::uint32_t begin = 0;
  std::uint32_t count = 0;
  int round_stamp = -1;
};

class LinkLayer;  // per-edge bandwidth scheduler (sim/link_layer.hpp)

}  // namespace detail

/// The engine's reusable data-plane buffers: hot flags, worklists, the
/// struct-of-arrays node state, the per-thread send shards (with their
/// payload arenas) and the flat inbox. An Engine normally owns one
/// privately; sweeps that construct thousands of short-lived engines can
/// instead hand the same scratch to consecutive engines — one live engine
/// at a time, never two — so arena, worklist, and node-state capacity is
/// reused instead of reallocated per run. The engine fully re-initializes
/// the logical contents at construction, so reuse cannot leak state across
/// runs (tests/batch_test.cpp and tests/scratch_reuse_test.cpp pin
/// bit-identical results); the win is purely the retained heap capacity.
///
/// Per-node state is struct-of-arrays (docs/MODEL.md, "Memory model"): one
/// flat output array, and the active-neighbor sets as live prefixes of a
/// CSR pool mirroring the graph's adjacency — termination compacts a
/// node's prefix in place instead of erasing from a per-node vector, so
/// the termination sweep and delivery checks touch dense cache-resident
/// arrays even at n = 10^6-10^7.
struct EngineScratch {
  std::vector<std::uint8_t> node_active;     // hot flag, 1 = active
  std::vector<std::uint8_t> terminate_flag;  // hot flag, 1 = requested
  std::vector<std::uint8_t> node_awake;      // active and not idling
  std::vector<std::uint8_t> idle_request;    // idle() called this round
  std::vector<NodeId> awake_nodes;        // awake node indices, ascending
  std::vector<NodeId> recv_nodes;         // receive worklist (merged wakes)
  std::vector<NodeId> woken;              // sleepers woken by a delivery
  std::vector<NodeId> wake_next;          // sleepers woken by a termination
  std::vector<NodeId> next_awake;         // rebuild target for awake_nodes
  std::vector<NodeId> newly_terminated;   // scratch for termination pass
  // --- struct-of-arrays node state ---
  std::vector<Value> node_output;         // key-0 outputs; kUndefined unset
  std::vector<std::uint32_t> an_begin;    // CSR offsets (n + 1), adjacency
  std::vector<NodeId> an_pool;            // active-neighbor live prefixes
  std::vector<std::uint32_t> an_count;    // live prefix length per node
  std::vector<Value> edge_out_pool;       // lazy; one slot / directed edge
  std::vector<std::uint32_t> edge_out_count;  // assigned slots per node
  // --- message data plane ---
  std::vector<detail::SendShard> shards;  // one per engine thread
  std::vector<detail::SendRecord> sorted_sends;  // rare channel-repair path
  std::vector<Message> inbox_flat;        // receiver-grouped round buffer
  std::vector<detail::InboxRef> inbox_ref;  // per node, stamped by round
  std::vector<std::uint32_t> recv_count;  // scratch; all-zero between rounds
  std::vector<NodeId> touched_receivers;  // receivers seen this round
  // --- receiver-shard ownership (parallel delivery/mutation passes) ---
  std::vector<detail::RecvShard> recv_shards;  // one per engine thread
  std::vector<std::uint16_t> node_shard;  // owning receiver shard per node
  std::vector<std::uint32_t> send_base;   // global index base per send shard
  std::vector<std::size_t> merge_pos;     // touched-list merge cursor scratch
  // --- message-reduction compiler state (EngineOptions::compile), SoA per
  // directed edge, addressed by the CSR adjacency slot of (from, to). The
  // cache models the receiver's one-slot memory of the link's previous
  // message: (channel, len, payload). Payloads up to SendRecord::kInlineCap
  // words — the common case — live in the flat cache_words pool; longer
  // ones fall back to the per-edge vector store. Only allocated when
  // compile.cache_resends is on. Mutation is keyed to receiver-shard
  // ownership: the directed edge (from, to)'s slot is touched only by the
  // shard owning `to`, and each shard walks its records in ascending
  // global send order, so the hit/miss sequence per edge — and therefore
  // the suppressed split — is identical for every num_threads.
  std::vector<std::uint8_t> cache_state;      // 0 empty, 1 short, 2 long
  std::vector<std::int32_t> cache_channel;
  std::vector<std::uint32_t> cache_len;
  std::vector<Value> cache_words;             // kInlineCap slots per edge
  std::vector<std::vector<Value>> cache_long;  // lazily sized on first use
};

/// Per-node view handed to programs each round. All queries reflect the
/// node's legitimate local knowledge: its identifier, its neighbors'
/// identifiers, n, d, Δ (Section 2: "Each node is assumed to know its
/// identifier and the identifiers of its neighbors, as well as the values
/// n and d"), the predictions, the current inbox, and everything implied
/// by the termination-notification convention.
class NodeContext {
 public:
  NodeId index() const { return index_; }
  Value id() const;
  NodeId n() const;
  std::int64_t d() const;
  int delta() const;
  int round() const;

  /// All neighbors in the input graph (internal indices, ascending).
  const std::vector<NodeId>& neighbors() const;
  Value neighbor_id(NodeId u) const;
  int degree() const { return static_cast<int>(neighbors().size()); }

  /// Neighbors that have not terminated as of the start of this round
  /// (internal indices, ascending). The span views engine-owned storage
  /// that is stable within the round; copy it to keep it across rounds.
  std::span<const NodeId> active_neighbors() const;
  bool neighbor_active(NodeId u) const;

  /// Output of a terminated neighbor (kUndefined if it never set one, or
  /// if u is still active).
  Value neighbor_output(NodeId u) const;
  /// Edge-keyed output of a terminated neighbor (for edge problems).
  Value neighbor_output_for(NodeId u, NodeId key) const;

  /// This node's prediction x_i (node-valued problems).
  Value prediction() const;
  /// Predicted value for the edge to neighbor u (edge-valued problems).
  Value edge_prediction(NodeId u) const;

  /// Queue a message to neighbor `to` for this round. Only valid in onSend.
  /// The words are copied into the round arena; the initializer-list
  /// overload keeps literal payloads (`ctx.send(u, {x, y})`) off the heap.
  void send(NodeId to, const Value* words, std::size_t count, int channel = 0);
  void send(NodeId to, const std::vector<Value>& words, int channel = 0);
  void send(NodeId to, std::initializer_list<Value> words, int channel = 0);
  /// Send the same message to every active neighbor. Only valid in onSend.
  /// The payload is stored once in the arena regardless of the degree.
  void broadcast(const Value* words, std::size_t count, int channel = 0);
  void broadcast(const std::vector<Value>& words, int channel = 0);
  void broadcast(std::initializer_list<Value> words, int channel = 0);

  /// Declare this round's default message on `channel` (the
  /// silence-as-information transform, sim/compile.hpp): a send this round
  /// whose (channel, payload) equals the declaration is suppressed — the
  /// words stay off the wire, the receiver decodes them from the absence —
  /// when the engine runs with EngineOptions::compile.decode_defaults;
  /// otherwise the declaration is inert, so the same program serves both
  /// the compiled and the uncompiled run. Only valid in onSend, before the
  /// sends it should cover; at most SendRecord::kInlineCap words. The
  /// declaring program is responsible for soundness: every receiver must
  /// know the declaration (same program, same round of a lockstep
  /// schedule) — see docs/MODEL.md, "Message-reduction compilation".
  void declare_default(const Value* words, std::size_t count, int channel = 0);
  void declare_default(const std::vector<Value>& words, int channel = 0);
  void declare_default(std::initializer_list<Value> words, int channel = 0);

  /// Declare this round's broadcasts flood-idempotent (the sparse-skeleton
  /// transform): when the engine runs with a compile.skeleton installed,
  /// broadcasts from this node are relayed only over skeleton edges; the
  /// copies on non-skeleton edges are charged as suppressed and NOT
  /// delivered. Unlike the other transforms this changes inboxes, so it is
  /// sound only for stages whose outputs and (schedule-bound) round counts
  /// are invariant under delayed information — e.g. flooding an extremum
  /// for a fixed number of rounds. Only valid in onSend. Inert without an
  /// installed skeleton.
  void relay_on_skeleton();

  /// Messages received this round, ordered by (sender, channel, send
  /// order). Only meaningful in onReceive; the underlying storage is
  /// reused across rounds, so copy anything that must outlive the round.
  std::span<const Message> inbox() const;

  /// Assign this node's (key-0) output value.
  void set_output(Value v);
  /// Assign an edge-keyed output (key = neighbor index), for edge problems.
  void set_output_for(NodeId key, Value v);
  bool has_output() const;
  bool has_output_for(NodeId key) const;
  Value output() const;
  /// This node's own edge-keyed output (kUndefined if unset).
  Value output_for(NodeId key) const;

  /// Words still in flight (sent but not yet delivered) on this node's
  /// link to neighbor u, so programs can observe congestion. Nonzero only
  /// under CongestPolicy::kDefer.
  std::int64_t link_backlog(NodeId u) const;
  /// The per-link word budget this run defers excess traffic against, or 0
  /// when delivery is same-round (count / truncate / fail policies).
  /// Budget-aware schedules stretch their stages by this (it is global and
  /// round-invariant, so schedules stay pure functions of the instance).
  int link_budget() const;

  /// Terminate at the end of this round. Requires at least one output to
  /// have been assigned ("immediately after node i has assigned values to
  /// all its output variables, it terminates").
  void terminate();
  bool terminated() const;

  /// Promise quiescence: this node has nothing to send and its decision
  /// cannot change until an external event occurs. The engine stops
  /// calling the node's hooks after this round and wakes it when a message
  /// is delivered to it (same round's receive phase) or a neighbor
  /// terminates (next round, when the updated active_neighbors() /
  /// neighbor_output() view becomes visible). Purely a scheduling hint:
  /// rounds still advance globally, and an algorithm that never idles runs
  /// exactly as before. Only valid in onReceive. See docs/MODEL.md,
  /// "Idle nodes and event-driven scheduling".
  void idle();

 private:
  friend class Engine;
  NodeContext(Engine* e, NodeId index, detail::SendShard* shard)
      : engine_(e), index_(index), shard_(shard) {}
  Engine* engine_;
  NodeId index_;
  // Outgoing-traffic sink; null outside the send phase.
  detail::SendShard* shard_;
};

/// A per-node state machine. The engine owns one per node; hooks are called
/// while the node is active.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  /// Decide this round's outgoing messages (round r sends).
  virtual void on_send(NodeContext& ctx) = 0;
  /// Consume this round's inbox; may set outputs and terminate.
  virtual void on_receive(NodeContext& ctx) = 0;
};

/// Factory producing one program per node. Called once per node before
/// round 1; programs learn their identity from the context.
using ProgramFactory =
    std::function<std::unique_ptr<NodeProgram>(NodeId index)>;

struct Skeleton;  // deterministic spanning skeleton (sim/compile.hpp)

/// Knobs of the message-reduction compiler pass (sim/compile.hpp; docs/
/// MODEL.md "Message-reduction compilation"). All default off — the
/// uncompiled engine is untouched. The transforms change what crosses the
/// wire (RunResult::messages_sent vs messages_suppressed), never the
/// nominal totals, and — skeleton relay aside — never program behavior:
/// suppressed messages are still delivered (synthesized at the receiver),
/// so outputs, rounds, and kRounds transcripts are byte-identical to the
/// uncompiled run by construction.
struct CompileOptions {
  /// (1) Neighborhood caching: suppress a send whose (channel, payload)
  /// repeats the previous message on the same directed edge — the
  /// receiver's one-slot memory of the link reconstructs it.
  bool cache_resends = false;
  /// (2) Silence-as-information: suppress sends matching the default the
  /// program declared this round (NodeContext::declare_default).
  bool decode_defaults = false;
  /// (3) Sparse skeleton for broadcasts a program declares relayable
  /// (NodeContext::relay_on_skeleton): copies on non-skeleton edges are
  /// suppressed and not delivered. Borrowed; must outlive run().
  const Skeleton* skeleton = nullptr;

  bool any() const {
    return cache_resends || decode_defaults || skeleton != nullptr;
  }
};

struct EngineOptions {
  /// Hard stop; a run that hits it is reported with completed = false.
  int max_rounds = 1'000'000;
  /// If > 0, messages wider than this many words are counted as CONGEST
  /// violations (the run still proceeds; benches report the counter).
  /// Under an enforcing congest_policy this is the hard per-round word
  /// budget of every directed edge and must be positive.
  int congest_word_limit = 0;
  /// What over-budget traffic does. The default (kCount) is the audit-only
  /// path, bit-identical to the engine before link-layer enforcement
  /// existed; any other value requires congest_word_limit > 0.
  CongestPolicy congest_policy = CongestPolicy::kCount;
  /// Record the number of active nodes at the start of every round.
  /// (Implemented on the trace spine; RunResult::active_per_round.)
  bool record_active_per_round = false;
  /// Record which nodes terminated in each round (RunResult::
  /// terminations_per_round) — a lightweight run transcript.
  /// (Implemented on the trace spine.)
  bool record_terminations = false;
  /// Observer of the run's event stream (round begins, deliveries,
  /// terminations) — see sim/trace.hpp. Borrowed; must outlive run().
  /// Null (the default) installs no sink: the engine then makes no
  /// virtual calls and does no per-message trace work at all.
  TraceSink* trace_sink = nullptr;
  /// Shard the round pipeline over this many threads (1 = serial).
  /// Results are bit-identical to the serial run regardless of the value —
  /// see docs/MODEL.md "Simulator internals & performance model".
  int num_threads = 1;
  /// Measure the wall-ns each round spends in each pipeline stage
  /// (RunResult::phase_ns; per-round deltas via
  /// TraceSink::on_round_profile). Off by default under the trace spine's
  /// cost contract: the measurement is a handful of clock reads per round,
  /// invisible on message-bound runs but measurable on runs with millions
  /// of sub-microsecond rounds. Never affects simulated behavior.
  bool profile_phases = false;
  /// Message-reduction compilation (see CompileOptions above).
  CompileOptions compile = {};
};

struct RunResult {
  bool completed = false;
  int rounds = 0;                        // rounds until every node terminated
  std::vector<int> termination_round;    // per node, 1-based; -1 if never
  std::vector<Value> outputs;            // key-0 outputs (kUndefined if unset)
  std::vector<std::vector<std::pair<NodeId, Value>>> edge_outputs;
  /// Nominal message complexity: every message the program logically sent,
  /// suppressed traffic included. Invariant under compilation — compiled
  /// and uncompiled runs of the same job report identical totals
  /// (total == sent + suppressed; bench_messages asserts it per row).
  std::int64_t total_messages = 0;
  std::int64_t total_words = 0;
  // --- message-reduction accounting (sim/compile.hpp) ---
  /// Physical wire traffic: messages whose words actually crossed a link.
  /// With compilation off, sent == total and suppressed == 0.
  std::int64_t messages_sent = 0;
  std::int64_t words_sent = 0;
  /// Traffic a compile transform kept off the wire (the receiver
  /// reconstructs it from silence).
  std::int64_t messages_suppressed = 0;
  std::int64_t words_suppressed = 0;
  /// Wire-side audits: suppressed messages never contribute (silence
  /// occupies no link).
  int max_message_words = 0;
  std::int64_t congest_violations = 0;
  // --- link-layer enforcement metrics (all zero under kCount) ---
  /// Messages that missed their send round under kDefer, and the words
  /// they had to carry into later rounds.
  std::int64_t deferred_messages = 0;
  std::int64_t deferred_words = 0;
  /// Messages that lost words under kTruncate, and the words dropped.
  std::int64_t truncated_messages = 0;
  std::int64_t truncated_words = 0;
  /// High-water mark of any single link's carry-over queue, in words.
  std::int64_t link_backlog_peak_words = 0;
  /// Rounds that began with words still in flight — the gap between the
  /// run's effective round count (`rounds`) and the algorithm's nominal
  /// schedule is spent in these rounds.
  std::int64_t rounds_with_backlog = 0;
  std::vector<int> active_per_round;     // if requested
  /// terminations_per_round[r-1] = nodes that terminated in round r
  /// (only filled when EngineOptions::record_terminations is set).
  std::vector<std::vector<NodeId>> terminations_per_round;
  /// Wall-clock duration of run(). Excluded from determinism comparisons —
  /// every field above is reproducible from (graph, factory, options).
  double wall_ms = 0;
  /// Cumulative wall-ns per pipeline stage (sim/trace.hpp) — where inside
  /// run() the wall time went. Host measurements like wall_ms: excluded
  /// from determinism comparisons and never part of a transcript. The
  /// per-round deltas stream through TraceSink::on_round_profile.
  PhaseProfile phase_ns;
  /// High-water mark of per-round message-payload arena usage, in bytes.
  /// Plateaus once the arena reaches steady state (no per-round allocation).
  std::int64_t peak_arena_bytes = 0;
};

namespace detail {
inline void CongestAccount::fold_into(RunResult& m) const {
  m.total_messages += messages;
  m.total_words += words;
  m.messages_suppressed += messages_suppressed;
  m.words_suppressed += words_suppressed;
  m.messages_sent += messages - messages_suppressed;
  m.words_sent += words - words_suppressed;
  m.max_message_words = std::max(m.max_message_words, max_width);
  m.congest_violations += violations;
}
}  // namespace detail

class ThreadPool;

class Engine {
 public:
  /// The predictions object may be empty for algorithms without
  /// predictions; it is borrowed and must stay alive until run() returns.
  /// `shared_pool` (optional, used only when options.num_threads > 1, slot
  /// count must equal num_threads) lets repeated threaded runs reuse one
  /// set of parked workers instead of respawning threads per simulation.
  /// `scratch` (optional) lets a sweep reuse the data-plane buffers across
  /// consecutive engines — see EngineScratch.
  Engine(const Graph& g, const Predictions& predictions,
         ProgramFactory factory, EngineOptions options = {},
         ThreadPool* shared_pool = nullptr, EngineScratch* scratch = nullptr);
  ~Engine();

  /// Run to global termination (or max_rounds).
  RunResult run();

 private:
  friend class NodeContext;

  /// Runs body(shard, lo, hi) for each contiguous slice [lo, hi) of a
  /// worklist of the given size — on the pool when configured, inline
  /// otherwise. Slices are a pure function of (worklist size, shard
  /// count), so concatenating per-shard output in shard order is
  /// independent of the thread count; that is the heart of the
  /// determinism contract.
  template <typename Body>
  void run_sharded(std::size_t worklist_size, const Body& body);
  void send_phase();
  void deliver_round_messages();
  /// Reference delivery path: one serial fused resolve/charge/count pass
  /// plus a serial scatter. Used when the engine is serial (one shard),
  /// under an enforcing link layer, and on the rare channel-repair rounds;
  /// the parallel path below must match it bit for bit.
  void deliver_serial();
  /// Receiver-sharded delivery: parallel resolve + route over sender
  /// shards, then parallel charge/cache/count and inbox scatter over
  /// receiver shards, with per-shard accounts merged in fixed shard order.
  /// Requires monotone channels and no enforcing link layer.
  void deliver_parallel();
  /// Enforcing-policy tail of delivery: route the round's sends through the
  /// link layer and scatter what it clears into the inboxes.
  void deliver_enforced();
  template <typename Fn>
  void for_each_send(const Fn& fn) const;
  /// Wake sleeping nodes that received traffic this round; returns the
  /// receive worklist (awake_nodes when nothing woke, else the merged
  /// recv_nodes).
  const std::vector<NodeId>& collect_delivery_wakes();
  void receive_phase(const std::vector<NodeId>& recv);
  void process_terminations(const std::vector<NodeId>& recv,
                            std::vector<int>& termination_round);
  /// Parallel twin of process_terminations, sharded by receiver ownership:
  /// detection over recv slices, notice charging / view compaction / wake
  /// collection over owned neighbors, and the awake-worklist rebuild over
  /// owned recv sub-ranges. Byte-identical outcome by the RecvShard merge
  /// argument.
  void process_terminations_parallel(const std::vector<NodeId>& recv,
                                     std::vector<int>& termination_round);
  void charge(std::size_t payload_words, int channel);
  /// Neighborhood-cache lookup/update for one resolved record. Called from
  /// the serial delivery loop, or from the one receiver shard owning
  /// r.to — each directed edge's cache line has exactly one writer, and it
  /// sees that edge's records in canonical order either way. Returns true
  /// when the record repeats the edge's previous message — the caller
  /// marks it suppressed.
  bool cache_check_and_update(detail::SendRecord& r);
  /// Emit this round's delivered messages (the freshly scattered inbox
  /// slices) to the sinks. Only called when a sink wants message detail.
  void trace_deliveries();

  // --- struct-of-arrays edge-output accessors. The pool (one Value slot
  // per directed edge, addressed by the CSR adjacency position of the key)
  // is allocated lazily on the first store, so node-valued workloads never
  // pay for it; allocation is guarded for the sharded receive phase.
  std::uint32_t adjacency_slot(NodeId v, NodeId key) const;
  void ensure_edge_out_pool();
  Value edge_output_lookup(NodeId v, NodeId key) const;
  void edge_output_store(NodeId v, NodeId key, Value value);
  std::uint32_t edge_output_count(NodeId v) const;
  void materialize_edge_outputs(
      NodeId v, std::vector<std::pair<NodeId, Value>>& out) const;

  const Graph& graph_;
  const Predictions* predictions_;  // borrowed; outlives the engine
  EngineOptions options_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;  // cold, per node
  int round_ = 0;
  bool in_send_phase_ = false;
  NodeId active_count_ = 0;
  // The run's message account. Serial paths (the reference delivery loop,
  // the link layer's policies) charge here directly; the parallel delivery
  // and termination passes charge per-receiver-shard accounts and merge
  // them into this one in fixed shard order each round (exact — see
  // CongestAccount::merge_from). Folded into the RunResult once, at the
  // end of run().
  detail::CongestAccount acct_;
  // Compile knobs cached as flat flags (checked per send / per record).
  bool compile_cache_ = false;
  bool compile_defaults_ = false;
  const Skeleton* compile_skeleton_ = nullptr;
  // Lazy edge-output pool handshake: readers that see `false` short-circuit
  // to kUndefined; the release store publishes the initialized pool.
  std::atomic<bool> edge_out_ready_{false};
  std::mutex edge_out_init_mutex_;
  // Scratch for materializing one node's edge outputs for the trace spine.
  std::vector<std::pair<NodeId, Value>> term_edge_outputs_;

  // --- data plane (all buffers are reused across rounds; injected scratch
  // additionally reuses their capacity across consecutive engines) ---
  std::unique_ptr<EngineScratch> owned_scratch_;  // null when injected
  EngineScratch& s_;
  bool use_sorted_sends_ = false;           // this round's sends were sorted
  std::unique_ptr<ThreadPool> owned_pool_;  // null when shared
  ThreadPool* pool_ = nullptr;              // workers when num_threads > 1
  // Bandwidth scheduler; only constructed for enforcing policies, so the
  // default (kCount) data plane is untouched by the link layer.
  std::unique_ptr<detail::LinkLayer> link_;
  std::size_t peak_arena_words_ = 0;

  // --- trace spine (sim/trace.hpp). sinks_ holds the user's sink and/or
  // the internal RunRecordSink behind the record_* options; empty when
  // recording is off, and then the round loop tests one integer and makes
  // no virtual calls. trace_messages_ caches "some sink wants per-message
  // events" so the delivery path stays free of them otherwise.
  std::unique_ptr<detail::RunRecordSink> record_sink_;
  std::vector<TraceSink*> sinks_;
  std::vector<TraceSink*> message_sinks_;  // sinks wanting per-message events
  bool trace_messages_ = false;            // = !message_sinks_.empty()
};

/// The shared immutable empty Predictions instance used by every run
/// without predictions, so hot sweep loops never construct one per call.
const Predictions& empty_predictions();

/// Convenience: run an algorithm without predictions. The optional shared
/// pool is forwarded to the engine (see Engine's constructor).
RunResult run_algorithm(const Graph& g, ProgramFactory factory,
                        EngineOptions options = {},
                        ThreadPool* shared_pool = nullptr);

/// Convenience: run an algorithm with predictions.
RunResult run_with_predictions(const Graph& g, const Predictions& predictions,
                               ProgramFactory factory,
                               EngineOptions options = {},
                               ThreadPool* shared_pool = nullptr);

/// Apply `fn` to every message in `inbox` with the given channel, in inbox
/// order. Allocation-free — the filter runs inline, so per-round hot loops
/// (and composed-program receive hooks, alongside the lazy ChannelInbox in
/// sim/phase.hpp) never materialize a vector of pointers.
template <typename Fn>
void for_each_on_channel(std::span<const Message> inbox, int channel,
                         const Fn& fn) {
  for (const Message& m : inbox) {
    if (m.channel == channel) fn(m);
  }
}

/// Messages in `inbox` with the given channel. Materializes a vector —
/// prefer for_each_on_channel (or Channel::inbox()) in per-round code;
/// this overload is kept for call sites that need random access.
std::vector<const Message*> inbox_on_channel(std::span<const Message> inbox,
                                             int channel);

/// Completion round of each connected component of g (max termination
/// round over its nodes; -1 if some node never terminated). Ordered like
/// connected_components(g). This is the quantity the Section 10 analysis
/// maximizes over components.
std::vector<int> completion_round_per_component(const Graph& g,
                                                const RunResult& result);

/// Overload taking precomputed components (connected_components(g)) — use
/// in sweep loops to avoid recomputing the component structure per run.
std::vector<int> completion_round_per_component(
    const std::vector<std::vector<NodeId>>& components,
    const RunResult& result);

}  // namespace dgap
