// Round-synchronous message-passing simulator (the paper's Section 2 model).
//
// Each round, every *active* node first sends (a possibly different message
// to each neighbor), then receives everything sent to it this round, then
// computes, optionally assigns output values, and optionally terminates.
// Programs therefore implement two hooks per round, onSend and onReceive;
// a node cannot make its round-r sends depend on its round-r inbox, exactly
// as in the model.
//
// Termination convention (Section 7): "prior to terminating, nodes inform
// their active neighbors about their output values". The engine implements
// this convention once, for every algorithm: when a node terminates at the
// end of round r, each still-active neighbor's view is updated for round
// r+1 — the node disappears from active_neighbors() and its outputs become
// readable through neighbor_output(). The notification traffic is charged
// to the message metrics (one message per still-active neighbor, one word
// per output value), so CONGEST accounting stays honest.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "predict/predictions.hpp"

namespace dgap {

/// A message delivered within a round. `channel` is a multiplexing tag used
/// by composed algorithms (the Parallel template runs two sub-algorithms
/// whose traffic must not be confused); it models field(s) inside the
/// message, and its width is charged as one extra word whenever nonzero.
struct Message {
  NodeId from = kNoNode;  // sender's internal index
  int channel = 0;
  std::vector<Value> words;
};

class Engine;

/// Per-node view handed to programs each round. All queries reflect the
/// node's legitimate local knowledge: its identifier, its neighbors'
/// identifiers, n, d, Δ (Section 2: "Each node is assumed to know its
/// identifier and the identifiers of its neighbors, as well as the values
/// n and d"), the predictions, the current inbox, and everything implied
/// by the termination-notification convention.
class NodeContext {
 public:
  NodeId index() const { return index_; }
  Value id() const;
  NodeId n() const;
  std::int64_t d() const;
  int delta() const;
  int round() const;

  /// All neighbors in the input graph (internal indices, ascending).
  const std::vector<NodeId>& neighbors() const;
  Value neighbor_id(NodeId u) const;
  int degree() const { return static_cast<int>(neighbors().size()); }

  /// Neighbors that have not terminated as of the start of this round.
  const std::vector<NodeId>& active_neighbors() const;
  bool neighbor_active(NodeId u) const;

  /// Output of a terminated neighbor (kUndefined if it never set one, or
  /// if u is still active).
  Value neighbor_output(NodeId u) const;
  /// Edge-keyed output of a terminated neighbor (for edge problems).
  Value neighbor_output_for(NodeId u, NodeId key) const;

  /// This node's prediction x_i (node-valued problems).
  Value prediction() const;
  /// Predicted value for the edge to neighbor u (edge-valued problems).
  Value edge_prediction(NodeId u) const;

  /// Queue a message to neighbor `to` for this round. Only valid in onSend.
  void send(NodeId to, std::vector<Value> words, int channel = 0);
  /// Send the same message to every active neighbor. Only valid in onSend.
  void broadcast(const std::vector<Value>& words, int channel = 0);

  /// Messages received this round. Only meaningful in onReceive.
  const std::vector<Message>& inbox() const;

  /// Assign this node's (key-0) output value.
  void set_output(Value v);
  /// Assign an edge-keyed output (key = neighbor index), for edge problems.
  void set_output_for(NodeId key, Value v);
  bool has_output() const;
  bool has_output_for(NodeId key) const;
  Value output() const;
  /// This node's own edge-keyed output (kUndefined if unset).
  Value output_for(NodeId key) const;

  /// Terminate at the end of this round. Requires at least one output to
  /// have been assigned ("immediately after node i has assigned values to
  /// all its output variables, it terminates").
  void terminate();
  bool terminated() const;

 private:
  friend class Engine;
  NodeContext(Engine* e, NodeId index) : engine_(e), index_(index) {}
  Engine* engine_;
  NodeId index_;
};

/// A per-node state machine. The engine owns one per node; hooks are called
/// while the node is active.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  /// Decide this round's outgoing messages (round r sends).
  virtual void on_send(NodeContext& ctx) = 0;
  /// Consume this round's inbox; may set outputs and terminate.
  virtual void on_receive(NodeContext& ctx) = 0;
};

/// Factory producing one program per node. Called once per node before
/// round 1; programs learn their identity from the context.
using ProgramFactory =
    std::function<std::unique_ptr<NodeProgram>(NodeId index)>;

struct EngineOptions {
  /// Hard stop; a run that hits it is reported with completed = false.
  int max_rounds = 1'000'000;
  /// If > 0, messages wider than this many words are counted as CONGEST
  /// violations (the run still proceeds; benches report the counter).
  int congest_word_limit = 0;
  /// Record the number of active nodes at the start of every round.
  bool record_active_per_round = false;
  /// Record which nodes terminated in each round (RunResult::
  /// terminations_per_round) — a lightweight run transcript.
  bool record_terminations = false;
};

struct RunResult {
  bool completed = false;
  int rounds = 0;                        // rounds until every node terminated
  std::vector<int> termination_round;    // per node, 1-based; -1 if never
  std::vector<Value> outputs;            // key-0 outputs (kUndefined if unset)
  std::vector<std::vector<std::pair<NodeId, Value>>> edge_outputs;
  std::int64_t total_messages = 0;
  std::int64_t total_words = 0;
  int max_message_words = 0;
  std::int64_t congest_violations = 0;
  std::vector<int> active_per_round;     // if requested
  /// terminations_per_round[r-1] = nodes that terminated in round r
  /// (only filled when EngineOptions::record_terminations is set).
  std::vector<std::vector<NodeId>> terminations_per_round;
};

class Engine {
 public:
  /// The predictions object may be empty for algorithms without predictions.
  Engine(const Graph& g, Predictions predictions, ProgramFactory factory,
         EngineOptions options = {});

  /// Run to global termination (or max_rounds).
  RunResult run();

 private:
  friend class NodeContext;

  struct NodeState {
    std::unique_ptr<NodeProgram> program;
    bool active = true;
    bool terminate_requested = false;
    std::vector<NodeId> active_neighbors;
    Value output = kUndefined;
    std::vector<std::pair<NodeId, Value>> edge_outputs;  // sorted by key
    std::vector<Message> inbox;
    std::vector<std::pair<NodeId, Message>> outbox;  // (recipient, message)
  };

  void deliver_round_messages();
  void process_terminations(std::vector<int>& termination_round);
  void charge_message(const Message& m);

  const Graph& graph_;
  Predictions predictions_;
  EngineOptions options_;
  std::vector<NodeState> nodes_;
  int round_ = 0;
  bool in_send_phase_ = false;
  NodeId active_count_ = 0;
  RunResult metrics_;  // message counters accumulated here during the run
};

/// Convenience: run an algorithm without predictions.
RunResult run_algorithm(const Graph& g, ProgramFactory factory,
                        EngineOptions options = {});

/// Convenience: run an algorithm with predictions.
RunResult run_with_predictions(const Graph& g, const Predictions& predictions,
                               ProgramFactory factory,
                               EngineOptions options = {});

/// Messages in `inbox` with the given channel.
std::vector<const Message*> inbox_on_channel(const std::vector<Message>& inbox,
                                             int channel);

/// Completion round of each connected component of g (max termination
/// round over its nodes; -1 if some node never terminated). Ordered like
/// connected_components(g). This is the quantity the Section 10 analysis
/// maximizes over components.
std::vector<int> completion_round_per_component(const Graph& g,
                                                const RunResult& result);

}  // namespace dgap
