#include "sim/transcript.hpp"

#include <bit>
#include <cstdio>

#include "common/require.hpp"

namespace dgap {

namespace {

// ---------------------------------------------------------------------------
// Byte-level primitives. Unsigned integers are LEB128 varints, signed ones
// zigzag-coded first; checksums (and double bits) are fixed 64-bit
// little-endian so their width never depends on their value.
// ---------------------------------------------------------------------------

constexpr std::uint8_t kMagic[4] = {'D', 'G', 'T', 'R'};

enum Tag : std::uint8_t {
  kTagRound = 1,
  kTagMessage = 2,
  kTagTermination = 3,
  kTagRoundEnd = 4,
  kTagRunEnd = 5,
};

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

/// Bytes the streaming writer buffers before a mid-round flush. Both
/// checksums are carried incrementally across flushes, so the bound holds
/// even when a single round (Luby's all-broadcast round 1) dominates the
/// file; the buffer peaks at this threshold plus one event's encoding.
constexpr std::size_t kStreamFlushBytes = 1 << 20;

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t count,
                    std::uint64_t h = kFnvBasis) {
  for (std::size_t i = 0; i < count; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag_encode(v));
}

void put_fixed64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked cursor over a serialized transcript. Every read that
/// would cross the end throws DGAP_REQUIRE — truncated or corrupted input
/// fails cleanly, never reads out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t pos() const { return pos_; }
  bool eof() const { return pos_ >= bytes_.size(); }
  const std::uint8_t* base() const { return bytes_.data(); }

  std::uint8_t byte() {
    DGAP_REQUIRE(pos_ < bytes_.size(), "transcript truncated");
    return bytes_[pos_++];
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = byte();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) {
        DGAP_REQUIRE(shift < 63 || (b & 0x7f) <= 1,
                     "transcript varint overflows 64 bits");
        return v;
      }
    }
    DGAP_REQUIRE(false, "transcript varint too long");
    return 0;  // unreachable
  }

  std::int64_t zigzag() { return zigzag_decode(varint()); }

  std::uint64_t fixed64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(byte()) << (8 * i);
    }
    return v;
  }

  std::string str() {
    const std::uint64_t len = varint();
    DGAP_REQUIRE(len <= bytes_.size() - pos_, "transcript string truncated");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  /// A varint that must fit a nonnegative 32-bit quantity (node ids,
  /// counts, round numbers).
  std::int64_t small(const char* what) {
    const std::uint64_t v = varint();
    DGAP_REQUIRE(v <= 0x7fffffffULL,
                 std::string("transcript field out of range: ") + what);
    return static_cast<std::int64_t>(v);
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// TranscriptWriter
// ---------------------------------------------------------------------------

TranscriptWriter::TranscriptWriter(TraceDetail detail, std::string label,
                                   std::optional<GraphSpec> spec)
    : detail_(detail), label_(std::move(label)), spec_(std::move(spec)) {}

TranscriptWriter::~TranscriptWriter() {
  // Abnormal exit mid-stream (exception before on_run_end): release the
  // handle; the file on disk is incomplete and will fail decoding.
  if (file_ != nullptr) std::fclose(file_);
}

void TranscriptWriter::stream_to(const std::string& path) {
  DGAP_REQUIRE(!begun_, "stream_to must be called before the run begins");
  DGAP_REQUIRE(file_ == nullptr, "stream_to called twice");
  file_ = std::fopen(path.c_str(), "wb");
  DGAP_REQUIRE(file_ != nullptr,
               "cannot open transcript file for writing: " + path);
  path_ = path;
}

void TranscriptWriter::flush_buffer() {
  if (file_ == nullptr) return;
  if (out_.size() > high_water_) high_water_ = out_.size();
  if (!out_.empty()) {
    file_hash_ = fnv1a(out_.data(), out_.size(), file_hash_);
    const std::size_t written =
        std::fwrite(out_.data(), 1, out_.size(), file_);
    DGAP_REQUIRE(written == out_.size(),
                 "short write to transcript file: " + path_);
    flushed_bytes_ += out_.size();
    out_.clear();  // keeps capacity: the buffer is reused every round
  }
  round_start_ = 0;
}

void TranscriptWriter::maybe_partial_flush() {
  if (file_ == nullptr || out_.size() < kStreamFlushBytes) return;
  // Fold the open round block's bytes into the running round checksum
  // before they leave the buffer; close_round seeds from it, so the
  // kTagRoundEnd value is identical to hashing the whole block at once.
  round_hash_ = fnv1a(out_.data() + round_start_, out_.size() - round_start_,
                      round_hash_);
  flush_buffer();
}

void TranscriptWriter::on_run_begin(NodeId n, const EngineOptions& options) {
  DGAP_REQUIRE(!begun_, "a TranscriptWriter records exactly one run");
  begun_ = true;
  out_.reserve(256);
  for (const std::uint8_t b : kMagic) out_.push_back(b);
  put_varint(out_, kTranscriptVersion);
  put_varint(out_, static_cast<std::uint64_t>(detail_));
  put_string(out_, label_);
  out_.push_back(spec_.has_value() ? 1 : 0);
  if (spec_) {
    put_varint(out_, static_cast<std::uint64_t>(spec_->family));
    put_zigzag(out_, spec_->a);
    put_zigzag(out_, spec_->b);
    put_fixed64(out_, std::bit_cast<std::uint64_t>(spec_->p));
    put_varint(out_, spec_->seed);
    put_varint(out_, static_cast<std::uint64_t>(spec_->ids));
  }
  put_varint(out_, static_cast<std::uint64_t>(n));
  // The options echo deliberately stops at the semantically meaningful
  // knobs; num_threads / record flags / sinks describe the execution, not
  // the run, and must not break transcript equality across schedulers.
  put_zigzag(out_, options.max_rounds);
  put_zigzag(out_, options.congest_word_limit);
  put_varint(out_, static_cast<std::uint64_t>(options.congest_policy));
  flush_buffer();
}

void TranscriptWriter::close_round() {
  if (!in_round_) return;
  // Seeded from round_hash_: the FNV basis in-memory (one-shot hash), or
  // the carried prefix hash when mid-round flushes already wrote part of
  // the block to disk. Either way the checksum covers the whole block.
  const std::uint64_t sum = fnv1a(out_.data() + round_start_,
                                  out_.size() - round_start_, round_hash_);
  out_.push_back(kTagRoundEnd);
  put_fixed64(out_, sum);
  in_round_ = false;
  flush_buffer();
}

void TranscriptWriter::on_round_begin(int round, NodeId active) {
  DGAP_REQUIRE(begun_ && !finished_,
               "round event outside an open recording");
  close_round();
  round_hash_ = kFnvBasis;
  round_start_ = out_.size();
  out_.push_back(kTagRound);
  put_varint(out_, static_cast<std::uint64_t>(round));
  put_varint(out_, static_cast<std::uint64_t>(active));
  in_round_ = true;
}

void TranscriptWriter::on_message(const TraceMessage& m) {
  DGAP_REQUIRE(in_round_ && detail_ >= TraceDetail::kMessages,
               "message event outside an open round");
  out_.push_back(kTagMessage);
  put_varint(out_, static_cast<std::uint64_t>(m.from));
  put_varint(out_, static_cast<std::uint64_t>(m.to));
  put_zigzag(out_, m.channel);
  // Per-message flags byte: bit 0 truncated, bit 1 suppressed. The common
  // (both clear) encoding is the byte 0 the pre-compile format wrote, so
  // suppression-free files stay byte-identical under version 1.
  out_.push_back(static_cast<std::uint8_t>((m.truncated ? 1 : 0) |
                                           (m.suppressed ? 2 : 0)));
  put_varint(out_, m.words.size());
  if (detail_ == TraceDetail::kPayloads) {
    for (const Value w : m.words) put_zigzag(out_, w);
  }
  maybe_partial_flush();
}

void TranscriptWriter::on_termination(
    int /*round*/, NodeId node, Value output,
    std::span<const std::pair<NodeId, Value>> edge_outputs) {
  DGAP_REQUIRE(in_round_, "termination event outside an open round");
  out_.push_back(kTagTermination);
  put_varint(out_, static_cast<std::uint64_t>(node));
  put_zigzag(out_, output);
  put_varint(out_, edge_outputs.size());
  for (const auto& [key, v] : edge_outputs) {
    put_varint(out_, static_cast<std::uint64_t>(key));
    put_zigzag(out_, v);
  }
  maybe_partial_flush();
}

void TranscriptWriter::on_run_end(const RunResult& result) {
  DGAP_REQUIRE(begun_ && !finished_, "run end without a run begin");
  close_round();
  out_.push_back(kTagRunEnd);
  out_.push_back(result.completed ? 1 : 0);
  put_varint(out_, static_cast<std::uint64_t>(result.rounds));
  put_varint(out_, static_cast<std::uint64_t>(result.total_messages));
  put_varint(out_, static_cast<std::uint64_t>(result.total_words));
  // Whole-file checksum last: every byte before it is covered, so any
  // single-byte corruption (including in the trailer) fails decoding. In
  // write-through mode the hash continues from the flushed prefix, which
  // FNV-1a's byte-sequential structure makes identical to hashing the
  // whole file at once.
  put_fixed64(out_, file_ != nullptr
                        ? fnv1a(out_.data(), out_.size(), file_hash_)
                        : fnv1a(out_.data(), out_.size()));
  finished_ = true;
  if (file_ != nullptr) {
    flush_buffer();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    DGAP_REQUIRE(rc == 0, "error closing transcript file: " + path_);
  }
}

const std::vector<std::uint8_t>& TranscriptWriter::bytes() const {
  DGAP_REQUIRE(finished_, "transcript incomplete: the run has not ended");
  DGAP_REQUIRE(path_.empty(),
               "streaming transcript lives on disk; read the file back");
  return out_;
}

std::vector<std::uint8_t> TranscriptWriter::take_bytes() {
  DGAP_REQUIRE(finished_, "transcript incomplete: the run has not ended");
  DGAP_REQUIRE(path_.empty(),
               "streaming transcript lives on disk; read the file back");
  finished_ = false;
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// Decode / encode
// ---------------------------------------------------------------------------

Transcript decode_transcript(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  for (const std::uint8_t m : kMagic) {
    DGAP_REQUIRE(r.byte() == m, "not a dgap transcript (bad magic)");
  }
  Transcript t;
  const std::uint64_t version = r.varint();
  DGAP_REQUIRE(version == kTranscriptVersion,
               "unsupported transcript version");
  const std::uint64_t detail = r.varint();
  DGAP_REQUIRE(detail <= 2, "invalid transcript detail level");
  t.detail = static_cast<TraceDetail>(detail);
  t.label = r.str();
  const std::uint8_t has_spec = r.byte();
  DGAP_REQUIRE(has_spec <= 1, "invalid transcript spec flag");
  if (has_spec) {
    GraphSpec spec;
    const std::uint64_t family = r.varint();
    DGAP_REQUIRE(family <=
                     static_cast<std::uint64_t>(GraphSpec::Family::kGnm),
                 "invalid transcript graph family");
    spec.family = static_cast<GraphSpec::Family>(family);
    spec.a = r.zigzag();
    spec.b = r.zigzag();
    spec.p = std::bit_cast<double>(r.fixed64());
    spec.seed = r.varint();
    const std::uint64_t ids = r.varint();
    DGAP_REQUIRE(ids <= 2, "invalid transcript id policy");
    spec.ids = static_cast<GraphSpec::IdPolicy>(ids);
    t.spec = spec;
  }
  t.n = static_cast<NodeId>(r.small("n"));
  const std::int64_t max_rounds = r.zigzag();
  DGAP_REQUIRE(max_rounds >= 0 && max_rounds <= 0x7fffffff,
               "invalid transcript max_rounds");
  t.max_rounds = static_cast<int>(max_rounds);
  const std::int64_t word_limit = r.zigzag();
  DGAP_REQUIRE(word_limit >= 0 && word_limit <= 0x7fffffff,
               "invalid transcript congest_word_limit");
  t.congest_word_limit = static_cast<int>(word_limit);
  const std::uint64_t policy = r.varint();
  DGAP_REQUIRE(policy <= static_cast<std::uint64_t>(CongestPolicy::kFail),
               "invalid transcript congest policy");
  t.congest_policy = static_cast<CongestPolicy>(policy);

  bool in_round = false;
  bool ended = false;
  std::size_t round_start = 0;
  while (!ended) {
    const std::size_t tag_pos = r.pos();
    const std::uint8_t tag = r.byte();
    switch (tag) {
      case kTagRound: {
        DGAP_REQUIRE(!in_round, "transcript round begins inside a round");
        round_start = tag_pos;
        TranscriptRound round;
        round.round = static_cast<int>(r.small("round"));
        const int expected = static_cast<int>(t.rounds.size()) + 1;
        DGAP_REQUIRE(round.round == expected,
                     "transcript rounds out of sequence");
        round.active = static_cast<NodeId>(r.small("active count"));
        DGAP_REQUIRE(round.active <= t.n,
                     "transcript active count exceeds n");
        t.rounds.push_back(std::move(round));
        in_round = true;
        break;
      }
      case kTagMessage: {
        DGAP_REQUIRE(in_round, "transcript message outside a round");
        DGAP_REQUIRE(t.detail >= TraceDetail::kMessages,
                     "message event in a rounds-only transcript");
        TranscriptMessage m;
        m.from = static_cast<NodeId>(r.small("message sender"));
        m.to = static_cast<NodeId>(r.small("message receiver"));
        DGAP_REQUIRE(m.from < t.n && m.to < t.n,
                     "transcript message endpoint out of range");
        const std::int64_t channel = r.zigzag();
        DGAP_REQUIRE(channel >= -0x80000000LL && channel <= 0x7fffffffLL,
                     "transcript channel out of range");
        m.channel = static_cast<int>(channel);
        const std::uint8_t flags = r.byte();
        DGAP_REQUIRE(flags <= 3, "invalid transcript message flags");
        m.truncated = (flags & 1) != 0;
        m.suppressed = (flags & 2) != 0;
        m.len = static_cast<std::uint32_t>(r.small("message length"));
        if (t.detail == TraceDetail::kPayloads) {
          m.words.reserve(m.len);
          for (std::uint32_t i = 0; i < m.len; ++i) {
            m.words.push_back(r.zigzag());
          }
        }
        t.rounds.back().messages.push_back(std::move(m));
        break;
      }
      case kTagTermination: {
        DGAP_REQUIRE(in_round, "transcript termination outside a round");
        TranscriptTermination term;
        term.node = static_cast<NodeId>(r.small("terminated node"));
        DGAP_REQUIRE(term.node < t.n,
                     "transcript terminated node out of range");
        term.output = r.zigzag();
        const std::int64_t edges = r.small("edge output count");
        term.edge_outputs.reserve(static_cast<std::size_t>(edges));
        for (std::int64_t i = 0; i < edges; ++i) {
          const NodeId key = static_cast<NodeId>(r.small("edge output key"));
          DGAP_REQUIRE(key < t.n, "transcript edge output key out of range");
          term.edge_outputs.emplace_back(key, r.zigzag());
        }
        t.rounds.back().terminations.push_back(std::move(term));
        break;
      }
      case kTagRoundEnd: {
        DGAP_REQUIRE(in_round, "transcript round end outside a round");
        const std::uint64_t expected =
            fnv1a(r.base() + round_start, tag_pos - round_start);
        DGAP_REQUIRE(r.fixed64() == expected,
                     "transcript round checksum mismatch");
        in_round = false;
        break;
      }
      case kTagRunEnd: {
        DGAP_REQUIRE(!in_round, "transcript ends inside an open round");
        const std::uint8_t completed = r.byte();
        DGAP_REQUIRE(completed <= 1, "invalid transcript completed flag");
        t.summary.completed = completed != 0;
        t.summary.rounds = static_cast<int>(r.small("summary rounds"));
        DGAP_REQUIRE(t.summary.rounds ==
                         static_cast<int>(t.rounds.size()),
                     "transcript summary round count mismatch");
        t.summary.total_messages = static_cast<std::int64_t>(r.varint());
        t.summary.total_words = static_cast<std::int64_t>(r.varint());
        const std::uint64_t expected = fnv1a(r.base(), r.pos());
        DGAP_REQUIRE(r.fixed64() == expected,
                     "transcript file checksum mismatch");
        ended = true;
        break;
      }
      default:
        DGAP_REQUIRE(false, "unknown transcript event tag");
    }
  }
  DGAP_REQUIRE(r.eof(), "trailing bytes after transcript end");
  return t;
}

std::vector<std::uint8_t> encode_transcript(const Transcript& t) {
  // Drive a TranscriptWriter with the transcript's own events — encode is
  // therefore byte-identical to recording the run it describes, by
  // construction.
  TranscriptWriter w(t.detail, t.label, t.spec);
  EngineOptions options;
  options.max_rounds = t.max_rounds;
  options.congest_word_limit = t.congest_word_limit;
  options.congest_policy = t.congest_policy;
  w.on_run_begin(t.n, options);
  for (const TranscriptRound& round : t.rounds) {
    w.on_round_begin(round.round, round.active);
    for (const TranscriptMessage& m : round.messages) {
      WordSpan words(nullptr, m.len);
      if (t.detail == TraceDetail::kPayloads) {
        DGAP_REQUIRE(m.words.size() == m.len,
                     "payload-detail message length disagrees with words");
        words = WordSpan(m.words.data(), m.words.size());
      }
      w.on_message({round.round, m.from, m.to, m.channel, words,
                    m.truncated, m.suppressed});
    }
    for (const TranscriptTermination& term : round.terminations) {
      w.on_termination(round.round, term.node, term.output,
                       term.edge_outputs);
    }
  }
  RunResult result;
  result.completed = t.summary.completed;
  result.rounds = t.summary.rounds;
  result.total_messages = t.summary.total_messages;
  result.total_words = t.summary.total_words;
  w.on_run_end(result);
  return w.take_bytes();
}

void write_transcript_file(const std::string& path,
                           std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DGAP_REQUIRE(f != nullptr, "cannot open transcript file for writing: " +
                                 path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = written == bytes.size() && std::fclose(f) == 0;
  DGAP_REQUIRE(ok, "short write to transcript file: " + path);
}

std::vector<std::uint8_t> read_transcript_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  DGAP_REQUIRE(f != nullptr, "cannot open transcript file: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  const bool ok = std::feof(f) && !std::ferror(f);
  std::fclose(f);
  DGAP_REQUIRE(ok, "error reading transcript file: " + path);
  return bytes;
}

// ---------------------------------------------------------------------------
// VerifySink
// ---------------------------------------------------------------------------

VerifySink::VerifySink(const Transcript& golden) : golden_(&golden) {}

const TranscriptRound& VerifySink::cur() const {
  return golden_->rounds[round_idx_];
}

void VerifySink::on_run_begin(NodeId n, const EngineOptions& options) {
  DGAP_REQUIRE(n == golden_->n,
               "transcript records a different instance (n mismatch)");
  DGAP_REQUIRE(options.max_rounds == golden_->max_rounds &&
                   options.congest_word_limit == golden_->congest_word_limit &&
                   options.congest_policy == golden_->congest_policy,
               "transcript records different engine options");
}

void VerifySink::finish_round() {
  if (!in_round_) return;
  DGAP_ASSERT(msg_idx_ == cur().messages.size(),
              "transcript divergence at round " +
                  std::to_string(cur().round) + ": live run delivered " +
                  std::to_string(msg_idx_) + " of " +
                  std::to_string(cur().messages.size()) +
                  " recorded messages");
  DGAP_ASSERT(term_idx_ == cur().terminations.size(),
              "transcript divergence at round " +
                  std::to_string(cur().round) + ": live run produced " +
                  std::to_string(term_idx_) + " of " +
                  std::to_string(cur().terminations.size()) +
                  " recorded terminations");
  ++round_idx_;
  in_round_ = false;
}

void VerifySink::on_round_begin(int round, NodeId active) {
  finish_round();
  DGAP_ASSERT(round_idx_ < golden_->rounds.size(),
              "transcript divergence at round " + std::to_string(round) +
                  ": live run outlives the recorded " +
                  std::to_string(golden_->rounds.size()) + " rounds");
  DGAP_ASSERT(cur().round == round,
              "transcript divergence: expected round " +
                  std::to_string(cur().round) + ", live run is at round " +
                  std::to_string(round));
  DGAP_ASSERT(cur().active == active,
              "transcript divergence at round " + std::to_string(round) +
                  ": active count " + std::to_string(active) +
                  " (recorded " + std::to_string(cur().active) + ")");
  msg_idx_ = 0;
  term_idx_ = 0;
  in_round_ = true;
}

void VerifySink::on_message(const TraceMessage& m) {
  const std::string at = "transcript divergence at round " +
                         std::to_string(m.round) + ", message " +
                         std::to_string(msg_idx_) + ": ";
  DGAP_ASSERT(in_round_ && msg_idx_ < cur().messages.size(),
              at + "live run delivered an extra message (node " +
                  std::to_string(m.from) + " -> " + std::to_string(m.to) +
                  ")");
  const TranscriptMessage& rec = cur().messages[msg_idx_];
  DGAP_ASSERT(rec.from == m.from && rec.to == m.to,
              at + "endpoints " + std::to_string(m.from) + " -> " +
                  std::to_string(m.to) + " (recorded " +
                  std::to_string(rec.from) + " -> " +
                  std::to_string(rec.to) + ")");
  DGAP_ASSERT(rec.channel == m.channel,
              at + "channel " + std::to_string(m.channel) + " (recorded " +
                  std::to_string(rec.channel) + ")");
  DGAP_ASSERT(rec.truncated == m.truncated, at + "truncated flag differs");
  DGAP_ASSERT(rec.suppressed == m.suppressed, at + "suppressed flag differs");
  DGAP_ASSERT(rec.len == m.words.size(),
              at + "width " + std::to_string(m.words.size()) +
                  " (recorded " + std::to_string(rec.len) + ")");
  if (golden_->detail == TraceDetail::kPayloads) {
    for (std::size_t i = 0; i < rec.len; ++i) {
      DGAP_ASSERT(rec.words[i] == m.words[i],
                  at + "payload word " + std::to_string(i) + " is " +
                      std::to_string(m.words[i]) + " (recorded " +
                      std::to_string(rec.words[i]) + ")");
    }
  }
  ++msg_idx_;
}

void VerifySink::on_termination(
    int round, NodeId node, Value output,
    std::span<const std::pair<NodeId, Value>> edge_outputs) {
  const std::string at = "transcript divergence at round " +
                         std::to_string(round) + ": ";
  DGAP_ASSERT(in_round_ && term_idx_ < cur().terminations.size(),
              at + "unrecorded termination of node " + std::to_string(node));
  const TranscriptTermination& rec = cur().terminations[term_idx_];
  DGAP_ASSERT(rec.node == node,
              at + "termination of node " + std::to_string(node) +
                  " (recorded node " + std::to_string(rec.node) + ")");
  DGAP_ASSERT(rec.output == output,
              at + "node " + std::to_string(node) + " output " +
                  std::to_string(output) + " (recorded " +
                  std::to_string(rec.output) + ")");
  DGAP_ASSERT(rec.edge_outputs.size() == edge_outputs.size(),
              at + "node " + std::to_string(node) +
                  " edge output count differs");
  for (std::size_t i = 0; i < edge_outputs.size(); ++i) {
    DGAP_ASSERT(rec.edge_outputs[i] == edge_outputs[i],
                at + "node " + std::to_string(node) + " edge output " +
                    std::to_string(i) + " differs");
  }
  ++term_idx_;
}

void VerifySink::on_run_end(const RunResult& result) {
  finish_round();
  DGAP_ASSERT(round_idx_ == golden_->rounds.size(),
              "transcript divergence: live run ended after round " +
                  std::to_string(result.rounds) + " of the recorded " +
                  std::to_string(golden_->rounds.size()));
  const TranscriptSummary& s = golden_->summary;
  DGAP_ASSERT(s.completed == result.completed && s.rounds == result.rounds,
              "transcript divergence: completion (" +
                  std::to_string(result.completed) + ", " +
                  std::to_string(result.rounds) + " rounds) differs from "
                  "the recorded summary");
  DGAP_ASSERT(s.total_messages == result.total_messages &&
                  s.total_words == result.total_words,
              "transcript divergence: message/word totals differ from the "
              "recorded summary");
}

RunResult run_verified(const Graph& g, const Predictions& predictions,
                       ProgramFactory factory, EngineOptions options,
                       const Transcript& golden) {
  DGAP_REQUIRE(options.trace_sink == nullptr,
               "run_verified installs its own trace sink");
  VerifySink sink(golden);
  options.trace_sink = &sink;
  Engine engine(g, predictions, std::move(factory), options);
  return engine.run();
}

RecordedRun record_run(const Graph& g, const Predictions& predictions,
                       ProgramFactory factory, EngineOptions options,
                       TraceDetail detail, std::string label,
                       std::optional<GraphSpec> spec) {
  DGAP_REQUIRE(options.trace_sink == nullptr,
               "record_run installs its own trace sink");
  TranscriptWriter writer(detail, std::move(label), std::move(spec));
  options.trace_sink = &writer;
  Engine engine(g, predictions, std::move(factory), options);
  RecordedRun out;
  out.result = engine.run();
  out.transcript = writer.take_bytes();
  return out;
}

StreamedRun record_run_to_file(const std::string& path, const Graph& g,
                               const Predictions& predictions,
                               ProgramFactory factory, EngineOptions options,
                               TraceDetail detail, std::string label,
                               std::optional<GraphSpec> spec) {
  DGAP_REQUIRE(options.trace_sink == nullptr,
               "record_run_to_file installs its own trace sink");
  TranscriptWriter writer(detail, std::move(label), std::move(spec));
  writer.stream_to(path);
  options.trace_sink = &writer;
  Engine engine(g, predictions, std::move(factory), options);
  StreamedRun out;
  out.result = engine.run();
  out.transcript_bytes = writer.streamed_bytes();
  out.buffer_high_water = writer.buffer_high_water();
  return out;
}

// ---------------------------------------------------------------------------
// ReplayEngine
// ---------------------------------------------------------------------------

ReplayEngine::ReplayEngine(const Transcript& t) : t_(&t) { reset(); }

void ReplayEngine::reset() {
  idx_ = 0;
  round_ = 0;
  active_count_ = t_->n;
  active_.assign(static_cast<std::size_t>(t_->n), 1);
  outputs_.assign(static_cast<std::size_t>(t_->n), kUndefined);
  term_round_.assign(static_cast<std::size_t>(t_->n), -1);
}

bool ReplayEngine::step() {
  if (idx_ >= t_->rounds.size()) return false;
  if (idx_ > 0) {
    // The previous round's terminations take effect now: the active set in
    // view is always the start-of-round one, as in the live engine.
    for (const TranscriptTermination& term : t_->rounds[idx_ - 1].terminations) {
      DGAP_ASSERT(active_[term.node] != 0,
                  "transcript terminates node " + std::to_string(term.node) +
                      " twice");
      active_[term.node] = 0;
      --active_count_;
    }
  }
  const TranscriptRound& r = t_->rounds[idx_];
  DGAP_ASSERT(r.active == active_count_,
              "transcript active count inconsistent at round " +
                  std::to_string(r.round));
  for (const TranscriptTermination& term : r.terminations) {
    outputs_[term.node] = term.output;
    term_round_[term.node] = r.round;
  }
  round_ = r.round;
  ++idx_;
  return true;
}

bool ReplayEngine::node_active(NodeId v) const {
  DGAP_REQUIRE(v >= 0 && v < t_->n, "node out of range");
  return active_[static_cast<std::size_t>(v)] != 0;
}

std::vector<NodeId> ReplayEngine::active_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(active_count_));
  for (NodeId v = 0; v < t_->n; ++v) {
    if (active_[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

std::span<const TranscriptMessage> ReplayEngine::messages() const {
  if (idx_ == 0) return {};
  return t_->rounds[idx_ - 1].messages;
}

std::vector<const TranscriptMessage*> ReplayEngine::inbox(NodeId v) const {
  DGAP_REQUIRE(v >= 0 && v < t_->n, "node out of range");
  std::vector<const TranscriptMessage*> out;
  for (const TranscriptMessage& m : messages()) {
    if (m.to == v) out.push_back(&m);
  }
  return out;
}

std::span<const TranscriptTermination> ReplayEngine::terminations() const {
  if (idx_ == 0) return {};
  return t_->rounds[idx_ - 1].terminations;
}

Value ReplayEngine::output(NodeId v) const {
  DGAP_REQUIRE(v >= 0 && v < t_->n, "node out of range");
  return outputs_[static_cast<std::size_t>(v)];
}

int ReplayEngine::termination_round(NodeId v) const {
  DGAP_REQUIRE(v >= 0 && v < t_->n, "node out of range");
  return term_round_[static_cast<std::size_t>(v)];
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

namespace {

std::optional<TranscriptDivergence> header_diff(const Transcript& a,
                                                const Transcript& b) {
  if (a.detail != b.detail) return {{0, "header: detail level"}};
  if (a.n != b.n) {
    return {{0, "header: n (" + std::to_string(a.n) + " vs " +
                    std::to_string(b.n) + ")"}};
  }
  if (a.spec != b.spec) return {{0, "header: graph spec"}};
  if (a.max_rounds != b.max_rounds) return {{0, "header: max_rounds"}};
  if (a.congest_word_limit != b.congest_word_limit) {
    return {{0, "header: congest_word_limit"}};
  }
  if (a.congest_policy != b.congest_policy) {
    return {{0, "header: congest_policy"}};
  }
  return std::nullopt;
}

std::optional<TranscriptDivergence> round_diff(const TranscriptRound& x,
                                               const TranscriptRound& y) {
  const int r = x.round;
  if (x.active != y.active) {
    return {{r, "active count (" + std::to_string(x.active) + " vs " +
                    std::to_string(y.active) + ")"}};
  }
  const std::size_t m = std::min(x.messages.size(), y.messages.size());
  for (std::size_t i = 0; i < m; ++i) {
    const TranscriptMessage& p = x.messages[i];
    const TranscriptMessage& q = y.messages[i];
    if (p != q) {
      std::string what = "message " + std::to_string(i) + " (" +
                         std::to_string(p.from) + " -> " +
                         std::to_string(p.to) + " vs " +
                         std::to_string(q.from) + " -> " +
                         std::to_string(q.to) + "): ";
      if (p.from != q.from || p.to != q.to) {
        what += "endpoints";
      } else if (p.channel != q.channel) {
        what += "channel";
      } else if (p.len != q.len) {
        what += "width (" + std::to_string(p.len) + " vs " +
                std::to_string(q.len) + ")";
      } else if (p.truncated != q.truncated) {
        what += "truncated flag";
      } else if (p.suppressed != q.suppressed) {
        what += "suppressed flag";
      } else {
        what += "payload";
      }
      return {{r, what}};
    }
  }
  if (x.messages.size() != y.messages.size()) {
    return {{r, "message count (" + std::to_string(x.messages.size()) +
                    " vs " + std::to_string(y.messages.size()) + ")"}};
  }
  const std::size_t k = std::min(x.terminations.size(), y.terminations.size());
  for (std::size_t i = 0; i < k; ++i) {
    const TranscriptTermination& p = x.terminations[i];
    const TranscriptTermination& q = y.terminations[i];
    if (p != q) {
      std::string what = "termination of node " + std::to_string(p.node);
      if (p.node != q.node) {
        what = "terminated node (" + std::to_string(p.node) + " vs " +
               std::to_string(q.node) + ")";
      } else if (p.output != q.output) {
        what += ": output (" + std::to_string(p.output) + " vs " +
                std::to_string(q.output) + ")";
      } else {
        what += ": edge outputs";
      }
      return {{r, what}};
    }
  }
  if (x.terminations.size() != y.terminations.size()) {
    return {{r, "termination count (" +
                    std::to_string(x.terminations.size()) + " vs " +
                    std::to_string(y.terminations.size()) + ")"}};
  }
  return std::nullopt;
}

}  // namespace

std::optional<TranscriptDivergence> diff_transcripts(const Transcript& a,
                                                     const Transcript& b) {
  if (auto d = header_diff(a, b)) return d;
  const std::size_t rounds = std::min(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < rounds; ++i) {
    if (auto d = round_diff(a.rounds[i], b.rounds[i])) return d;
  }
  if (a.rounds.size() != b.rounds.size()) {
    return {{static_cast<int>(rounds) + 1,
             "round count (" + std::to_string(a.rounds.size()) + " vs " +
                 std::to_string(b.rounds.size()) + ")"}};
  }
  if (a.summary != b.summary) {
    return {{a.summary.rounds, "summary (completion or message totals)"}};
  }
  return std::nullopt;
}

}  // namespace dgap
