// Dynamic-graph serving epochs: warm-start a template from its own past.
//
// The paper's flagship scenario (Section 1.1) is a solution computed on an
// old network replayed as the prediction after the network changed. The
// EpochHarness runs that scenario end-to-end, repeatedly: a graph evolves
// through deterministic edit batches (graph/edits.hpp — identifier-stable
// churn), a prediction-augmented template runs every epoch, and epoch k
// warm-starts from epoch k−1's output translated onto the new graph by the
// problem's warm-start adapter (predict/warm_start.hpp). Each epoch also
// runs a FROM-SCRATCH CONTROL — the same template with the problem's
// trivial prediction — so the measured quantity is exactly the paper's
// claim: amortized rounds/messages per epoch with warm starts vs without.
//
// The harness is problem-agnostic: an EpochProblem bundles the template
// factory, the problem kind, the from-scratch PredictionProvider, the
// error measure η, its degradation bound, and the validity checker
// (assemblies for MIS / matching / coloring live in
// templates/epoch_problems.hpp, above this layer). Warm starts need no
// per-problem adapter anymore: the harness wraps epoch k−1's outputs in
// a warm_start_provider (predict/provider.hpp), and the provider's
// digest — not a hash of the materialized prediction — content-addresses
// the run, so a cache HIT skips prediction materialization entirely.
//
// Execution is deterministic and cacheable. workers >= 1 schedules each
// epoch's jobs on a BatchRunner (engines single-threaded, per the batch
// contract); workers == 0 runs engines inline honoring
// options.num_threads. Either way the per-epoch transcripts are
// byte-identical — tests/epoch_test.cpp pins bytes across both axes — and
// every job is content-addressed through a ResultCache, so repeated
// configurations (and the control runs of a zero-churn stream) are served
// without executing. See docs/MODEL.md, "Epochs & warm-starting".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/edits.hpp"
#include "graph/spec.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"

namespace dgap {

/// One problem package, epoch-harness shaped. All members are required
/// unless noted. The functions must be pure (everything derived from their
/// arguments and fixed constants) — the harness's determinism contract
/// rests on it.
struct EpochProblem {
  /// Stable algorithm id for content addressing (e.g. "mis_simple_greedy").
  std::string name;
  /// The problem the providers are asked for.
  ProblemKind kind = ProblemKind::kMis;
  std::function<ProgramFactory()> factory;
  /// The trivial prediction source — what "no useful advice" means here
  /// (usually neutral_provider()); also the from-scratch control's source.
  ProviderPtr scratch;
  /// The problem's error measure (η1-style) of a prediction.
  std::function<int(const Graph&, const Predictions&)> eta;
  /// Round bound the template promises at error η on this instance; the
  /// churn property sweep asserts rounds <= this per epoch.
  std::function<int(int eta, const Graph&)> degradation_bound;
  /// Empty string iff the outputs are a valid complete solution.
  std::function<std::string(const Graph&, const RunResult&)> check;
};

struct EpochConfig {
  GraphSpec base;   // the epoch-0 instance
  ChurnSpec churn;  // edit-batch generator for epochs 1..
  int epochs = 6;
  /// Engine options for every run. num_threads is honored only when
  /// workers == 0 (the batch runner forces single-threaded engines).
  EngineOptions options;
  /// Batch worker slots; 0 = run engines inline on the calling thread.
  int workers = 1;
  /// Record each epoch's warm run as a binary transcript
  /// (EpochRecord::warm_transcript; encode_epoch_sequence() frames them).
  bool capture_transcripts = false;
  TraceDetail detail = TraceDetail::kPayloads;
  /// Transcript label stem; epoch k's label is "<label>_e<k>".
  std::string label = "epochs";
  /// Run the from-scratch control each epoch (off saves half the work
  /// when only the warm trajectory matters).
  bool run_control = true;
  /// Content-address all runs through the harness's ResultCache.
  bool use_result_cache = true;
};

struct EpochRecord {
  int epoch = 0;
  NodeId nodes = 0;
  std::int64_t edges = 0;
  /// η of the prediction the warm run consumed (epoch 0: of the trivial
  /// prediction — there is no previous output yet).
  int eta = 0;
  bool warm_cache_hit = false;
  bool control_cache_hit = false;
  RunResult warm;
  RunResult control;  // meaningful iff config.run_control
  std::vector<std::uint8_t> warm_transcript;  // iff capture_transcripts
};

struct EpochReport {
  std::vector<EpochRecord> epochs;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
};

/// Mean warm-run rounds per epoch — the serving-cost headline number.
double amortized_warm_rounds(const EpochReport& report);
double amortized_control_rounds(const EpochReport& report);
double amortized_warm_messages(const EpochReport& report);
double amortized_control_messages(const EpochReport& report);

/// Checksum over every deterministic per-epoch quantity (both runs'
/// result checksums, η, instance shape) — the cheap equality witness the
/// bench and CI diff across serial/batch/cached executions.
std::uint64_t epoch_report_checksum(const EpochReport& report);

class EpochHarness {
 public:
  EpochHarness(EpochProblem problem, EpochConfig config);
  ~EpochHarness();

  EpochHarness(const EpochHarness&) = delete;
  EpochHarness& operator=(const EpochHarness&) = delete;

  /// Run the full epoch stream. Repeatable: a second run() replays the
  /// same stream (and, with the cache on, is served almost entirely from
  /// the result cache).
  EpochReport run();

  ResultCache& result_cache();

 private:
  EpochProblem problem_;
  EpochConfig config_;
  std::unique_ptr<BatchRunner> runner_;   // workers >= 1
  std::unique_ptr<ResultCache> own_cache_;  // workers == 0
  EngineScratch scratch_;                 // inline path reuse
};

// ---- Epoch-sequence container ---------------------------------------------
//
// A recorded epoch stream is one transcript per epoch. The container
// frames them into a single self-describing file ("DGEP" magic, version,
// label, then length-prefixed transcript blobs, trailing FNV-1a checksum
// over everything before it) so a whole serving session can be committed
// as ONE golden artifact and verified epoch by epoch. Byte-for-byte
// deterministic for a fixed (problem, config).

inline constexpr std::uint32_t kEpochSequenceVersion = 1;

std::vector<std::uint8_t> encode_epoch_sequence(
    std::string_view label,
    const std::vector<std::vector<std::uint8_t>>& epoch_transcripts);

struct EpochSequence {
  std::string label;
  std::vector<std::vector<std::uint8_t>> epochs;
};

/// Parse a container; any structural defect throws DGAP_REQUIRE.
EpochSequence decode_epoch_sequence(std::span<const std::uint8_t> bytes);

/// True iff `bytes` starts with the epoch-sequence magic.
bool is_epoch_sequence(std::span<const std::uint8_t> bytes);

/// The captured warm transcripts of a report, framed. Requires
/// capture_transcripts to have been on.
std::vector<std::uint8_t> epoch_sequence_of(std::string_view label,
                                            const EpochReport& report);

}  // namespace dgap
