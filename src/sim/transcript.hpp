// Binary round transcripts: record a run's full event stream, then verify,
// replay, or diff it.
//
// The engine is deterministic, so the event stream a TraceSink observes
// (sim/trace.hpp) is a complete replay artifact: everything a RunResult
// contains — and the whole per-round communication pattern besides — can
// be reconstructed from it. A transcript is that stream in a versioned,
// self-describing binary form:
//
//   header   magic "DGTR", format version, detail level, a free-text
//            label, an optional GraphSpec (so the instance can be rebuilt
//            from the file alone), n, and the semantically meaningful
//            engine options (max_rounds, congest_word_limit,
//            congest_policy). Execution knobs — num_threads, record
//            flags, sinks — are deliberately excluded: a transcript
//            describes the logical run, so serial, sharded and
//            batch-scheduled executions of the same job produce
//            byte-identical files (the determinism witness the batch and
//            engine tests pin). Wall-clock is likewise excluded.
//   rounds   one block per round: round number, active count, delivered
//            messages (at the recorded detail level), terminations with
//            outputs, and an FNV-1a checksum of the block's bytes.
//   trailer  completed flag, round count, message/word totals (the
//            engine's sender-side accounting, which also charges sends
//            dropped because the receiver had already terminated — so the
//            totals can exceed the sum of the delivered rounds), and an
//            FNV-1a checksum over the whole file — any truncation or
//            byte flip fails decoding with DGAP_REQUIRE, never UB.
//
// Integers are varint-coded (zigzag for signed), checksums fixed 64-bit
// little-endian. Consumers:
//
//   * TranscriptWriter — a TraceSink producing the bytes;
//   * decode_transcript / encode_transcript — structured form and exact
//     round-trip (fuzzed in tests/transcript_test.cpp);
//   * VerifySink / run_verified — run live against a recorded transcript
//     and fail (DGAP_ASSERT) at the first divergent round: the
//     golden-transcript regression gate (`dgap_trace verify`, CI);
//   * ReplayEngine — single-step rounds out of a transcript without
//     re-executing programs, exposing active sets / inboxes / outputs;
//   * diff_transcripts — first divergent (round, field) of two runs.
//
// See docs/MODEL.md, "Transcripts & replay".
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/spec.hpp"
#include "sim/engine.hpp"

namespace dgap {

inline constexpr std::uint32_t kTranscriptVersion = 1;

/// One delivered message. `words` is populated only at TraceDetail::
/// kPayloads; at kMessages only the width survives.
struct TranscriptMessage {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  int channel = 0;
  std::uint32_t len = 0;
  bool truncated = false;
  /// Synthesized by the message-reduction pass (sim/compile.hpp). Encoded
  /// as bit 1 of the per-message flags byte (bit 0 is truncated), so a
  /// suppression-free transcript is byte-identical to a version-1 file
  /// written before the pass existed — no format version bump.
  bool suppressed = false;
  std::vector<Value> words;

  friend bool operator==(const TranscriptMessage&,
                         const TranscriptMessage&) = default;
};

struct TranscriptTermination {
  NodeId node = kNoNode;
  Value output = kUndefined;
  std::vector<std::pair<NodeId, Value>> edge_outputs;  // sorted by key

  friend bool operator==(const TranscriptTermination&,
                         const TranscriptTermination&) = default;
};

struct TranscriptRound {
  int round = 0;
  NodeId active = 0;  // active nodes at the start of the round
  std::vector<TranscriptMessage> messages;        // canonical inbox order
  std::vector<TranscriptTermination> terminations;  // ascending node order

  friend bool operator==(const TranscriptRound&,
                         const TranscriptRound&) = default;
};

struct TranscriptSummary {
  bool completed = false;
  int rounds = 0;
  std::int64_t total_messages = 0;
  std::int64_t total_words = 0;

  friend bool operator==(const TranscriptSummary&,
                         const TranscriptSummary&) = default;
};

/// A fully decoded transcript. Equality is structural — two byte buffers
/// decode equal iff the logical runs they record are identical.
struct Transcript {
  TraceDetail detail = TraceDetail::kPayloads;
  std::string label;
  std::optional<GraphSpec> spec;  // set when the instance is spec-built
  NodeId n = 0;
  int max_rounds = 0;
  int congest_word_limit = 0;
  CongestPolicy congest_policy = CongestPolicy::kCount;
  std::vector<TranscriptRound> rounds;
  TranscriptSummary summary;

  friend bool operator==(const Transcript&, const Transcript&) = default;
};

/// TraceSink that serializes the run into the binary format. Install via
/// EngineOptions::trace_sink; after run() returns, bytes() holds the
/// complete file image. A writer records exactly one run.
///
/// Large runs: stream_to(path) switches the writer to write-through mode —
/// the buffer is flushed to disk after the header, after every closed
/// round, and mid-round once it exceeds ~1 MiB, so recording kPayloads at
/// n = 10^6 needs a small constant buffer, not the whole file (Luby's
/// all-broadcast round 1 alone can dominate a file; the mid-round flush
/// bounds even that). The flushed file is byte-identical to the in-memory
/// bytes() image by construction: the append sequence is unchanged and
/// both checksums (per-round FNV over the block, whole-file FNV) are
/// carried incrementally across flushes, covering exactly the same bytes.
/// The buffer is reused between flushes (clear() keeps capacity);
/// buffer_high_water() reports the bound actually hit.
class TranscriptWriter final : public TraceSink {
 public:
  explicit TranscriptWriter(TraceDetail detail = TraceDetail::kPayloads,
                            std::string label = {},
                            std::optional<GraphSpec> spec = std::nullopt);
  ~TranscriptWriter() override;
  TranscriptWriter(const TranscriptWriter&) = delete;
  TranscriptWriter& operator=(const TranscriptWriter&) = delete;

  /// Switch to write-through mode before the run begins. Opens `path` for
  /// writing (DGAP_REQUIRE on failure); on_run_end finalizes and closes
  /// the file. bytes()/take_bytes() are unavailable in this mode — read
  /// the file back instead.
  void stream_to(const std::string& path);

  TraceDetail detail() const override { return detail_; }
  void on_run_begin(NodeId n, const EngineOptions& options) override;
  void on_round_begin(int round, NodeId active) override;
  void on_message(const TraceMessage& m) override;
  void on_termination(int round, NodeId node, Value output,
                      std::span<const std::pair<NodeId, Value>>
                          edge_outputs) override;
  void on_run_end(const RunResult& result) override;

  /// The serialized transcript; complete once on_run_end has fired.
  /// In-memory mode only (streaming writers leave the bytes on disk).
  const std::vector<std::uint8_t>& bytes() const;
  std::vector<std::uint8_t> take_bytes();

  /// Write-through stats: bytes flushed to disk so far, and the largest
  /// buffer size seen at a flush point — the memory bound the streaming
  /// mode guarantees (one round block, not the file). Zero in-memory.
  std::uint64_t streamed_bytes() const { return flushed_bytes_; }
  std::size_t buffer_high_water() const { return high_water_; }

 private:
  void close_round();
  void flush_buffer();
  void maybe_partial_flush();

  TraceDetail detail_;
  std::string label_;
  std::optional<GraphSpec> spec_;
  std::vector<std::uint8_t> out_;
  std::size_t round_start_ = 0;  // offset of the open round block
  bool begun_ = false;
  bool in_round_ = false;
  bool finished_ = false;

  // Write-through mode (stream_to). file_hash_ is the running FNV-1a over
  // every flushed byte, continued over the trailer so the final whole-file
  // checksum equals the in-memory one; round_hash_ does the same for the
  // open round block across mid-round flushes. 1469598103934665603 is the
  // FNV-1a offset basis.
  std::string path_;  // empty = in-memory mode
  std::FILE* file_ = nullptr;
  std::uint64_t file_hash_ = 1469598103934665603ULL;
  std::uint64_t round_hash_ = 1469598103934665603ULL;
  std::uint64_t flushed_bytes_ = 0;
  std::size_t high_water_ = 0;
};

/// Parse a serialized transcript. Every structural defect — bad magic,
/// unknown version or tag, truncation, a checksum mismatch, trailing
/// bytes — throws via DGAP_REQUIRE; decoding never exhibits UB on
/// corrupted input (fuzzed under asan/ubsan in CI).
Transcript decode_transcript(std::span<const std::uint8_t> bytes);

/// Serialize a structured transcript — the exact inverse of
/// decode_transcript, and byte-identical to what a TranscriptWriter
/// produces for the run it records.
std::vector<std::uint8_t> encode_transcript(const Transcript& t);

/// File I/O. Both throw (DGAP_REQUIRE) on I/O errors.
void write_transcript_file(const std::string& path,
                           std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> read_transcript_file(const std::string& path);

/// TraceSink that checks a live run against a recorded transcript and
/// fails — DGAP_ASSERT, naming the round and the divergent quantity — at
/// the first event that does not match. Instance/option mismatches at
/// run begin are reported as DGAP_REQUIRE (caller error, not regression).
class VerifySink final : public TraceSink {
 public:
  /// `golden` is borrowed and must outlive the run.
  explicit VerifySink(const Transcript& golden);

  TraceDetail detail() const override { return golden_->detail; }
  void on_run_begin(NodeId n, const EngineOptions& options) override;
  void on_round_begin(int round, NodeId active) override;
  void on_message(const TraceMessage& m) override;
  void on_termination(int round, NodeId node, Value output,
                      std::span<const std::pair<NodeId, Value>>
                          edge_outputs) override;
  void on_run_end(const RunResult& result) override;

 private:
  const TranscriptRound& cur() const;
  void finish_round();

  const Transcript* golden_;
  std::size_t round_idx_ = 0;  // rounds fully verified
  std::size_t msg_idx_ = 0;
  std::size_t term_idx_ = 0;
  bool in_round_ = false;
};

/// Convenience: run (g, predictions, factory, options) live with a
/// VerifySink installed. Returns the (verified) result; throws at the
/// first divergence. `options` must not already carry a trace sink.
RunResult run_verified(const Graph& g, const Predictions& predictions,
                       ProgramFactory factory, EngineOptions options,
                       const Transcript& golden);

/// A recorded run: the result plus its serialized transcript.
struct RecordedRun {
  RunResult result;
  std::vector<std::uint8_t> transcript;
};

/// Convenience: run with a TranscriptWriter installed. `options` must not
/// already carry a trace sink.
RecordedRun record_run(const Graph& g, const Predictions& predictions,
                       ProgramFactory factory, EngineOptions options,
                       TraceDetail detail = TraceDetail::kPayloads,
                       std::string label = {},
                       std::optional<GraphSpec> spec = std::nullopt);

/// A run recorded straight to disk: the result plus the streaming stats.
struct StreamedRun {
  RunResult result;
  std::uint64_t transcript_bytes = 0;  // file size on disk
  std::size_t buffer_high_water = 0;   // writer memory bound actually hit
};

/// Convenience: run with a write-through TranscriptWriter streaming to
/// `path`. The file is byte-identical to the buffer record_run would
/// produce for the same job, but peak writer memory is one round block.
StreamedRun record_run_to_file(const std::string& path, const Graph& g,
                               const Predictions& predictions,
                               ProgramFactory factory, EngineOptions options,
                               TraceDetail detail = TraceDetail::kPayloads,
                               std::string label = {},
                               std::optional<GraphSpec> spec = std::nullopt);

/// Round-stepping debugger over a recorded run: walks the transcript
/// without re-executing any program. After each step() the view is one
/// round r: the active set at the start of r, every node's round-r inbox,
/// and the terminations of r. Outputs and termination rounds accumulate
/// as rounds are applied.
class ReplayEngine {
 public:
  /// `t` is borrowed and must outlive the replay.
  explicit ReplayEngine(const Transcript& t);

  NodeId n() const { return t_->n; }
  int total_rounds() const { return static_cast<int>(t_->rounds.size()); }
  /// The round currently in view; 0 before the first step().
  int round() const { return round_; }
  bool done() const { return idx_ >= t_->rounds.size(); }

  /// Advance to the next round; false when the transcript is exhausted.
  bool step();
  /// Back to the pre-run state (round 0).
  void reset();

  /// Active nodes at the start of the current round.
  NodeId active_count() const { return active_count_; }
  bool node_active(NodeId v) const;
  std::vector<NodeId> active_nodes() const;

  /// The current round's deliveries, in canonical order.
  std::span<const TranscriptMessage> messages() const;
  /// The current round's inbox of node v (pointers into the transcript).
  std::vector<const TranscriptMessage*> inbox(NodeId v) const;
  /// Nodes that terminated at the end of the current round.
  std::span<const TranscriptTermination> terminations() const;

  /// Output of v if it has terminated in a round already stepped past
  /// (kUndefined otherwise); its termination round, -1 while active.
  Value output(NodeId v) const;
  int termination_round(NodeId v) const;

 private:
  const Transcript* t_;
  std::size_t idx_ = 0;  // rounds applied via step()
  int round_ = 0;
  NodeId active_count_ = 0;
  std::vector<std::uint8_t> active_;
  std::vector<Value> outputs_;
  std::vector<int> term_round_;
};

/// First divergence between two transcripts: the round it occurs in
/// (0 for header/summary-level differences) and a human-readable field
/// description. Nullopt iff the transcripts are equal.
struct TranscriptDivergence {
  int round = 0;
  std::string field;
};

std::optional<TranscriptDivergence> diff_transcripts(const Transcript& a,
                                                     const Transcript& b);

}  // namespace dgap
