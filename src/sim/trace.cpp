#include "sim/trace.hpp"

namespace dgap {

// Out-of-line virtual anchor plus empty default implementations: a sink
// overrides only the hooks it consumes.
TraceSink::~TraceSink() = default;
void TraceSink::on_run_begin(NodeId, const EngineOptions&) {}
void TraceSink::on_round_begin(int, NodeId) {}
void TraceSink::on_message(const TraceMessage&) {}
void TraceSink::on_termination(int, NodeId, Value,
                               std::span<const std::pair<NodeId, Value>>) {}
void TraceSink::on_round_profile(int, const PhaseProfile&) {}
void TraceSink::on_run_end(const RunResult&) {}

}  // namespace dgap
