// Per-round slab allocation for message payloads.
//
// The engine's data plane stores every payload word sent in a round in one
// (per shard) contiguous arena instead of a heap vector per message. A
// Message then carries a WordSpan — a borrowed (pointer, length) view into
// the arena — so delivering a round is pointer shuffling, not allocation.
// The arena is cleared (capacity retained) at the start of every send
// phase, so after the first few rounds the hot path performs zero heap
// allocations in steady state.
//
// Lifetime rule: a WordSpan obtained from an inbox is valid only until the
// end of the current round's receive phase. Programs that need a payload
// across rounds must copy the words out (they all did already — the old
// per-message vectors were cleared each round too).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"

namespace dgap {

/// Borrowed, immutable view of a payload: the words of one message.
/// Deliberately mirrors the read-side interface of std::vector<Value> so
/// program code (`m.words.at(0)`, range-for, `.size()`) is unchanged.
class WordSpan {
 public:
  WordSpan() = default;
  WordSpan(const Value* data, std::size_t size)
      : data_(data), size_(static_cast<std::uint32_t>(size)) {}

  const Value* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }
  const Value& operator[](std::size_t i) const { return data_[i]; }
  const Value& front() const { return data_[0]; }
  const Value& back() const { return data_[size_ - 1]; }
  /// Bounds-checked access, same contract as std::vector::at.
  const Value& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("WordSpan::at: index out of range");
    return data_[i];
  }

 private:
  const Value* data_ = nullptr;
  std::uint32_t size_ = 0;
};

/// Append-only slab of payload words, reused round after round. Offsets
/// (not pointers) are handed out during the send phase because the slab may
/// still grow; they are resolved to pointers once the phase is over and the
/// slab is frozen for the round.
class MessageArena {
 public:
  /// Copies `count` words in; returns the offset of the first word.
  std::uint32_t append(const Value* words, std::size_t count) {
    // Offsets are 32-bit; past 2^32 words (32 GiB of payload in one
    // shard-round) the cast below would silently wrap and alias earlier
    // messages. Million-node runs stay far under this, but fail loudly.
    DGAP_ASSERT(words_.size() + count <=
                    std::numeric_limits<std::uint32_t>::max(),
                "round arena exceeds the 32-bit offset space");
    const auto offset = static_cast<std::uint32_t>(words_.size());
    words_.insert(words_.end(), words, words + count);
    return offset;
  }
  std::uint32_t append(std::initializer_list<Value> words) {
    return append(words.begin(), words.size());
  }

  /// Start a new round: drop contents, keep capacity.
  void clear() { words_.clear(); }

  /// Words currently stored this round.
  std::size_t size() const { return words_.size(); }

  /// Base pointer for offset resolution. Only valid once the send phase is
  /// complete (no further append() calls this round).
  const Value* data() const { return words_.data(); }

 private:
  std::vector<Value> words_;
};

}  // namespace dgap
