#include "sim/epoch.hpp"

#include <utility>

#include "common/require.hpp"
#include "predict/provider.hpp"
#include "sim/transcript.hpp"

namespace dgap {

namespace {

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

double amortized_warm_rounds(const EpochReport& report) {
  if (report.epochs.empty()) return 0;
  double total = 0;
  for (const EpochRecord& e : report.epochs) total += e.warm.rounds;
  return total / static_cast<double>(report.epochs.size());
}

double amortized_control_rounds(const EpochReport& report) {
  if (report.epochs.empty()) return 0;
  double total = 0;
  for (const EpochRecord& e : report.epochs) total += e.control.rounds;
  return total / static_cast<double>(report.epochs.size());
}

double amortized_warm_messages(const EpochReport& report) {
  if (report.epochs.empty()) return 0;
  double total = 0;
  for (const EpochRecord& e : report.epochs) {
    total += static_cast<double>(e.warm.total_messages);
  }
  return total / static_cast<double>(report.epochs.size());
}

double amortized_control_messages(const EpochReport& report) {
  if (report.epochs.empty()) return 0;
  double total = 0;
  for (const EpochRecord& e : report.epochs) {
    total += static_cast<double>(e.control.total_messages);
  }
  return total / static_cast<double>(report.epochs.size());
}

std::uint64_t epoch_report_checksum(const EpochReport& report) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const EpochRecord& e : report.epochs) {
    h = mix64(h, static_cast<std::uint64_t>(e.epoch));
    h = mix64(h, static_cast<std::uint64_t>(e.nodes));
    h = mix64(h, static_cast<std::uint64_t>(e.edges));
    h = mix64(h, static_cast<std::uint64_t>(e.eta));
    h = mix64(h, result_checksum(e.warm));
    h = mix64(h, result_checksum(e.control));
    h = fnv1a_bytes(e.warm_transcript, h);
  }
  return h;
}

EpochHarness::EpochHarness(EpochProblem problem, EpochConfig config)
    : problem_(std::move(problem)), config_(std::move(config)) {
  DGAP_REQUIRE(config_.epochs >= 1, "an epoch stream needs >= 1 epochs");
  DGAP_REQUIRE(problem_.factory && problem_.scratch != nullptr &&
                   problem_.eta && problem_.check,
               "epoch problem package is missing a required member");
  DGAP_REQUIRE(config_.workers >= 0, "workers must be >= 0");
  DGAP_REQUIRE(config_.workers == 0 || config_.options.num_threads == 1,
               "batch execution forces single-threaded engines; use "
               "workers == 0 to honor options.num_threads");
  DGAP_REQUIRE(config_.options.trace_sink == nullptr,
               "the harness installs its own transcript writers");
  if (config_.workers >= 1) {
    runner_ = std::make_unique<BatchRunner>(BatchOptions{config_.workers});
  } else {
    own_cache_ = std::make_unique<ResultCache>();
  }
}

EpochHarness::~EpochHarness() = default;

ResultCache& EpochHarness::result_cache() {
  return runner_ ? runner_->result_cache() : *own_cache_;
}

EpochReport EpochHarness::run() {
  const std::string algorithm_id =
      config_.use_result_cache ? problem_.name : std::string{};
  ResultCache& cache = result_cache();
  const std::int64_t hits0 = cache.hits();
  const std::int64_t misses0 = cache.misses();

  EpochReport report;
  Graph current = config_.base.build();
  Graph prev_graph;
  std::vector<Value> prev_outputs;
  // Providers are deterministic; the fixed seed keeps every execution
  // axis (workers, repeats) addressing the same cache slots.
  constexpr std::uint64_t kProviderSeed = 0;

  // Runs one provider-sourced job on the inline path: probe the cache by
  // the provider's slot digest, and only on a miss materialize the
  // prediction and execute (honoring options.num_threads, reusing the
  // harness scratch), then fill.
  auto run_inline = [&](const Graph& g, const PredictionProvider& provider,
                        bool capture, const std::string& label,
                        std::optional<GraphSpec> spec,
                        std::uint64_t instance_digest, RunResult& out,
                        std::vector<std::uint8_t>& transcript_out,
                        bool& hit_out) {
    const bool cacheable = !algorithm_id.empty();
    std::uint64_t key = 0;
    if (cacheable) {
      key = result_cache_key(
          instance_digest, algorithm_id,
          provider_slot_digest(provider, problem_.kind, kProviderSeed),
          options_digest(config_.options), capture, config_.detail);
      if (auto entry = own_cache_->get(key)) {
        out = entry->result;
        transcript_out = entry->transcript;
        hit_out = true;
        return;
      }
    }
    const Predictions pred =
        provide_with_seed(provider, g, problem_.kind, kProviderSeed);
    EngineOptions options = config_.options;
    std::unique_ptr<TranscriptWriter> writer;
    if (capture) {
      writer = std::make_unique<TranscriptWriter>(config_.detail, label,
                                                  std::move(spec));
      options.trace_sink = writer.get();
    }
    Engine engine(g, pred, problem_.factory(), options,
                  /*shared_pool=*/nullptr, &scratch_);
    out = engine.run();
    if (writer) transcript_out = writer->take_bytes();
    hit_out = false;
    if (cacheable) own_cache_->put(key, out, transcript_out);
  };

  for (int k = 0; k < config_.epochs; ++k) {
    if (k > 0) {
      const EditBatch batch = config_.churn.generate(current, k);
      Graph next = apply_edits(current, batch);
      prev_graph = std::move(current);
      current = std::move(next);
    }
    const bool spec_built = (k == 0);
    // Epoch 0 has no history: the warm run falls back to the scratch
    // provider, exactly like the control.
    const ProviderPtr warm_provider =
        spec_built ? problem_.scratch
                   : warm_start_provider(prev_graph, prev_outputs);
    const Predictions warm_pred = provide_with_seed(
        *warm_provider, current, problem_.kind, kProviderSeed);
    const std::string label =
        config_.label + "_e" + std::to_string(k);

    EpochRecord record;
    record.epoch = k;
    record.nodes = current.num_nodes();
    record.edges = current.num_edges();
    record.eta = problem_.eta(current, warm_pred);

    if (runner_) {
      BatchJob warm_job;
      if (spec_built) {
        warm_job.spec = config_.base;
        warm_job.use_spec = true;
      } else {
        warm_job.graph = &current;
      }
      warm_job.provider = warm_provider;
      warm_job.provider_kind = problem_.kind;
      warm_job.provider_seed = kProviderSeed;
      warm_job.factory = problem_.factory();
      warm_job.options = config_.options;
      warm_job.capture_transcript = config_.capture_transcripts;
      warm_job.transcript_detail = config_.detail;
      warm_job.transcript_label = label;
      warm_job.algorithm_id = algorithm_id;
      runner_->add(std::move(warm_job));
      if (config_.run_control) {
        BatchJob control_job;
        if (spec_built) {
          control_job.spec = config_.base;
          control_job.use_spec = true;
        } else {
          control_job.graph = &current;
        }
        control_job.provider = problem_.scratch;
        control_job.provider_kind = problem_.kind;
        control_job.provider_seed = kProviderSeed;
        control_job.factory = problem_.factory();
        control_job.options = config_.options;
        control_job.algorithm_id = algorithm_id;
        runner_->add(std::move(control_job));
      }
      std::vector<BatchResult> results = runner_->run_all();
      DGAP_ASSERT(results[0].ok, "warm epoch run failed: " + results[0].error);
      record.warm = std::move(results[0].result);
      record.warm_transcript = std::move(results[0].transcript);
      record.warm_cache_hit = results[0].cache_hit;
      if (config_.run_control) {
        DGAP_ASSERT(results[1].ok,
                    "control epoch run failed: " + results[1].error);
        record.control = std::move(results[1].result);
        record.control_cache_hit = results[1].cache_hit;
      }
    } else {
      const std::uint64_t instance = spec_built ? spec_digest(config_.base)
                                                : graph_digest(current);
      run_inline(current, *warm_provider, config_.capture_transcripts, label,
                 spec_built ? std::optional<GraphSpec>(config_.base)
                            : std::nullopt,
                 instance, record.warm, record.warm_transcript,
                 record.warm_cache_hit);
      if (config_.run_control) {
        std::vector<std::uint8_t> unused;
        run_inline(current, *problem_.scratch, /*capture=*/false, label,
                   std::nullopt, instance, record.control, unused,
                   record.control_cache_hit);
      }
    }

    const std::string warm_error = problem_.check(current, record.warm);
    DGAP_ASSERT(warm_error.empty(),
                "epoch " + std::to_string(k) +
                    " warm output invalid: " + warm_error);
    if (config_.run_control) {
      const std::string control_error =
          problem_.check(current, record.control);
      DGAP_ASSERT(control_error.empty(),
                  "epoch " + std::to_string(k) +
                      " control output invalid: " + control_error);
    }

    prev_outputs = record.warm.outputs;
    report.epochs.push_back(std::move(record));
  }

  report.cache_hits = cache.hits() - hits0;
  report.cache_misses = cache.misses() - misses0;
  return report;
}

// ---- Epoch-sequence container ---------------------------------------------

namespace {

constexpr std::uint8_t kMagic[4] = {'D', 'G', 'E', 'P'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    DGAP_REQUIRE(pos_ + 4 <= bytes_.size(), "epoch sequence truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    DGAP_REQUIRE(pos_ + 8 <= bytes_.size(), "epoch sequence truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::vector<std::uint8_t> blob(std::uint64_t len) {
    DGAP_REQUIRE(pos_ + len <= bytes_.size(), "epoch sequence truncated");
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() +
                                      static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  std::size_t pos() const { return pos_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

bool is_epoch_sequence(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= 4 && bytes[0] == kMagic[0] && bytes[1] == kMagic[1] &&
         bytes[2] == kMagic[2] && bytes[3] == kMagic[3];
}

std::vector<std::uint8_t> encode_epoch_sequence(
    std::string_view label,
    const std::vector<std::vector<std::uint8_t>>& epoch_transcripts) {
  std::vector<std::uint8_t> out(kMagic, kMagic + 4);
  put_u32(out, kEpochSequenceVersion);
  put_u32(out, static_cast<std::uint32_t>(label.size()));
  out.insert(out.end(), label.begin(), label.end());
  put_u32(out, static_cast<std::uint32_t>(epoch_transcripts.size()));
  for (const auto& t : epoch_transcripts) {
    put_u64(out, static_cast<std::uint64_t>(t.size()));
    out.insert(out.end(), t.begin(), t.end());
  }
  put_u64(out, fnv1a_bytes(out));
  return out;
}

EpochSequence decode_epoch_sequence(std::span<const std::uint8_t> bytes) {
  DGAP_REQUIRE(is_epoch_sequence(bytes), "not an epoch sequence (bad magic)");
  DGAP_REQUIRE(bytes.size() >= 8 + 8, "epoch sequence truncated");
  const std::uint64_t body_len = bytes.size() - 8;
  Reader trailer(bytes.subspan(body_len));
  const std::uint64_t want = trailer.u64();
  const std::uint64_t got = fnv1a_bytes(bytes.first(body_len));
  DGAP_REQUIRE(want == got, "epoch sequence checksum mismatch");

  Reader r(bytes.first(body_len));
  r.u32();  // magic, already checked
  const std::uint32_t version = r.u32();
  DGAP_REQUIRE(version == kEpochSequenceVersion,
               "unknown epoch sequence version");
  EpochSequence seq;
  const std::uint32_t label_len = r.u32();
  const auto label_bytes = r.blob(label_len);
  seq.label.assign(label_bytes.begin(), label_bytes.end());
  const std::uint32_t count = r.u32();
  seq.epochs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t len = r.u64();
    seq.epochs.push_back(r.blob(len));
  }
  DGAP_REQUIRE(r.pos() == r.size(), "trailing bytes in epoch sequence");
  return seq;
}

std::vector<std::uint8_t> epoch_sequence_of(std::string_view label,
                                            const EpochReport& report) {
  std::vector<std::vector<std::uint8_t>> transcripts;
  transcripts.reserve(report.epochs.size());
  for (const EpochRecord& e : report.epochs) {
    DGAP_REQUIRE(!e.warm_transcript.empty(),
                 "epoch_sequence_of needs capture_transcripts on");
    transcripts.push_back(e.warm_transcript);
  }
  return encode_epoch_sequence(label, transcripts);
}

}  // namespace dgap
