#include "sim/compile.hpp"

#include <algorithm>
#include <numeric>

#include "common/require.hpp"

namespace dgap {

Skeleton compute_skeleton(const Graph& g) {
  const NodeId n = g.num_nodes();
  const std::size_t nu = static_cast<std::size_t>(n);
  Skeleton sk;
  sk.offset.resize(nu + 1);
  std::size_t total_adj = 0;
  for (NodeId v = 0; v < n; ++v) {
    sk.offset[static_cast<std::size_t>(v)] =
        static_cast<std::uint32_t>(total_adj);
    total_adj += g.neighbors(v).size();
  }
  sk.offset[nu] = static_cast<std::uint32_t>(total_adj);
  sk.edge_in_skeleton.assign(total_adj, 0);
  sk.parent.assign(nu, kNoNode);

  const auto mark = [&](NodeId v, NodeId u) {
    const auto& nb = g.neighbors(v);
    const auto it = std::lower_bound(nb.begin(), nb.end(), u);
    DGAP_ASSERT(it != nb.end() && *it == u, "tree edge is not in the graph");
    sk.edge_in_skeleton[sk.offset[static_cast<std::size_t>(v)] +
                        static_cast<std::uint32_t>(it - nb.begin())] = 1;
  };

  // Seed BFS roots in ascending identifier order (identifiers, not
  // indices, break symmetry everywhere in this repo); each component's
  // first unvisited seed is its minimum-identifier node.
  std::vector<NodeId> seeds(nu);
  std::iota(seeds.begin(), seeds.end(), 0);
  std::sort(seeds.begin(), seeds.end(), [&](NodeId a, NodeId b) {
    return g.id(a) < g.id(b);
  });
  std::vector<std::uint8_t> visited(nu, 0);
  std::vector<NodeId> queue;
  std::vector<int> depth(nu, 0);
  for (const NodeId root : seeds) {
    if (visited[root]) continue;
    visited[root] = 1;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const NodeId u : g.neighbors(v)) {
        if (visited[u]) continue;
        visited[u] = 1;
        sk.parent[static_cast<std::size_t>(u)] = v;
        depth[u] = depth[v] + 1;
        sk.depth = std::max(sk.depth, depth[u]);
        mark(v, u);
        mark(u, v);
        ++sk.tree_edges;
        queue.push_back(u);
      }
    }
  }
  return sk;
}

namespace {

class CompiledPhase final : public PhaseProgram {
 public:
  CompiledPhase(std::unique_ptr<PhaseProgram> inner,
                std::shared_ptr<const PhaseCompileSpec> spec)
      : inner_(std::move(inner)), spec_(std::move(spec)) {}

  void on_send(NodeContext& ctx, Channel& ch) override {
    if (!spec_->default_words.empty() &&
        (!spec_->default_first_round_only || round_ == 0)) {
      ch.declare_default(spec_->default_words);
    }
    if (spec_->skeleton_broadcasts) ch.relay_on_skeleton();
    inner_->on_send(ctx, ch);
  }

  Status on_receive(NodeContext& ctx, Channel& ch) override {
    ++round_;
    return inner_->on_receive(ctx, ch);
  }

 private:
  std::unique_ptr<PhaseProgram> inner_;
  // Shared, not referenced: programs outlive the factory that built them
  // (the engine constructor discards its factory argument).
  std::shared_ptr<const PhaseCompileSpec> spec_;
  int round_ = 0;
};

}  // namespace

PhaseFactory compile_phase(PhaseFactory inner, PhaseCompileSpec spec) {
  DGAP_REQUIRE(spec.default_words.size() <= detail::SendRecord::kInlineCap,
               "a default message holds at most SendRecord::kInlineCap words");
  auto shared = std::make_shared<const PhaseCompileSpec>(std::move(spec));
  return [inner = std::move(inner), shared](NodeId index) {
    return std::make_unique<CompiledPhase>(inner(index), shared);
  };
}

void NaiveFloodMinPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (best_ == kUndefined) best_ = ctx.id();
  ch.broadcast({best_});
}

PhaseProgram::Status NaiveFloodMinPhase::on_receive(NodeContext& ctx,
                                                    Channel& ch) {
  for (const Message* m : ch.inbox()) {
    best_ = std::min(best_, m->words[0]);
  }
  if (++rounds_ < ctx.n()) return Status::kRunning;
  ctx.set_output(best_);
  ctx.terminate();
  return Status::kFinished;
}

PhaseFactory make_flood_min() {
  return [](NodeId) { return std::make_unique<NaiveFloodMinPhase>(); };
}

ProgramFactory flood_min_algorithm() {
  return phase_as_algorithm(make_flood_min());
}

}  // namespace dgap
