#include "sim/phase.hpp"

#include <utility>

namespace dgap {

namespace {

class PhaseRunner final : public NodeProgram {
 public:
  PhaseRunner(std::unique_ptr<PhaseProgram> phase, Value leftover_output)
      : phase_(std::move(phase)), leftover_output_(leftover_output) {}

  void on_send(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    phase_->on_send(ctx, ch);
  }

  void on_receive(NodeContext& ctx) override {
    Channel ch(ctx, 0);
    const PhaseProgram::Status status = phase_->on_receive(ctx, ch);
    if (status == PhaseProgram::Status::kFinished && !ctx.terminated()) {
      if (!ctx.has_output()) ctx.set_output(leftover_output_);
      ctx.terminate();
    } else if (status == PhaseProgram::Status::kIdle && !ctx.terminated()) {
      // A bare phase's quiescence promise becomes an engine-level idle;
      // the engine wakes the node on a delivery or neighbor termination.
      ctx.idle();
    }
  }

 private:
  std::unique_ptr<PhaseProgram> phase_;
  Value leftover_output_;
};

}  // namespace

ProgramFactory phase_as_algorithm(PhaseFactory factory,
                                  Value leftover_output) {
  return [factory = std::move(factory),
          leftover_output](NodeId index) -> std::unique_ptr<NodeProgram> {
    return std::make_unique<PhaseRunner>(factory(index), leftover_output);
  };
}

}  // namespace dgap
