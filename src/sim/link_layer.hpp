// The engine's link layer: per-directed-edge bandwidth budgets realizing
// the CONGEST model's O(log n)-bit channels (Section 2) as an enforced
// constraint instead of an after-the-fact audit.
//
// The default engine path only *counts*: every message is charged to the
// metrics and a width over `EngineOptions::congest_word_limit` increments
// the violation counter, but delivery is unaffected
// (CongestPolicy::kCount). The LinkLayer implements the enforcing
// policies, where the limit becomes a hard per-round word budget B on
// every directed edge:
//
//   * kDefer    — a link transmits at most B words per round; excess
//                 traffic queues FIFO per link (store-and-forward) and a
//                 message arrives in the round its last word is
//                 transmitted, so a w-word message occupies the link for
//                 ceil(w / B) rounds;
//   * kTruncate — messages always arrive in their send round, but words
//                 beyond the link's remaining round budget are dropped and
//                 the message is marked `Message::truncated`;
//   * kFail     — an over-budget send is a model violation: DGAP_REQUIRE
//                 fails, identifying the offending link and round.
//
// Determinism by construction: fresh sends are ingested in the engine's
// canonical (sender, channel, send order); links transmit in ascending
// (sender, neighbor) order; and all link-state mutation happens in the
// serial delivery step between the (possibly parallel) send and receive
// phases, so `num_threads` cannot influence the schedule. An enforcing
// policy therefore selects the engine's serial reference delivery path —
// the receiver-sharded parallel scatter never runs under a link layer, and
// the layer charges the engine's run account directly (never the per-shard
// accounts), so link budgets and RunResult counters stay exact. The full
// contract lives in docs/MODEL.md, "CONGEST enforcement semantics";
// tests/engine_test.cpp and tests/engine_determinism_test.cpp pin it.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace dgap::detail {

// message_width / CongestAccount — the shared accounting primitives — live
// in sim/engine.hpp (the engine owns the run account; serial sites, this
// link layer included, charge it directly, and the parallel delivery pass
// merges its per-receiver-shard accounts into it in fixed shard order).

/// A message the link layer cleared for delivery this round. `words` stays
/// valid through the round's receive phase (it points into either the
/// producing shard's arena or the link layer's carry-over store).
struct DeliveredMessage {
  NodeId to = kNoNode;
  NodeId from = kNoNode;
  std::int32_t channel = 0;
  std::uint32_t len = 0;
  const Value* words = nullptr;
  bool truncated = false;
  bool suppressed = false;  // synthesized delivery; never crossed the link
};

/// Deterministic per-directed-edge bandwidth scheduler. One instance per
/// engine run; only constructed when an enforcing policy is selected, so
/// the default (kCount) data plane carries no link-layer overhead at all.
class LinkLayer {
 public:
  LinkLayer(const Graph& g, CongestPolicy policy, int budget_words);

  /// Start a round: reset per-round budgets and release last round's
  /// delivered payload storage.
  void begin_round(int round);

  /// Feed one fresh send (canonical order). kTruncate / kFail resolve it
  /// immediately; kDefer queues it on its link.
  void ingest(const SendRecord& r, const std::uint8_t* node_active);

  /// Deliver a compile-suppressed message in its send round without
  /// touching any link budget: its words never cross the wire, so it can
  /// neither be deferred, truncated, nor fail the budget contract (the
  /// no-double-count property compile_test pins). The caller has already
  /// filtered terminated receivers.
  void deliver_suppressed(const SendRecord& r);

  /// Transmit queued traffic within each link's budget (kDefer only; a
  /// no-op for the other policies). Must run after every ingest() of the
  /// round and before deliveries() is read.
  void finish_round(const std::uint8_t* node_active);

  /// This round's cleared messages, grouped receiver-scatter-ready:
  /// ascending sender, FIFO per link. Receivers are already filtered to
  /// active nodes.
  const std::vector<DeliveredMessage>& deliveries() const {
    return deliveries_;
  }

  /// Words still queued (sent but not yet delivered) on the directed link
  /// from -> to, as of the most recent delivery step. Zero outside kDefer.
  std::int64_t backlog_words(NodeId from, NodeId to) const;

  /// Total words carried across rounds on all links. Nonzero only under
  /// kDefer; the engine's quiescence check uses it to distinguish "every
  /// node is idle but traffic is still in flight" from a permanent stall.
  std::int64_t pending_backlog() const { return total_backlog_; }

  /// Export the enforcement metrics into a finished run's result.
  void export_metrics(RunResult& m) const;

 private:
  /// One send waiting on (or in transit over) a link. The payload words
  /// are owned (copied out of the round arena), because the queue must
  /// survive the per-round slab reset.
  struct Pending {
    NodeId to = kNoNode;
    NodeId from = kNoNode;
    std::int32_t channel = 0;
    std::uint32_t words_remaining = 0;  // untransmitted width incl. tag
    int sent_round = 0;
    std::vector<Value> payload;
  };

  /// FIFO state of one directed edge (kDefer only).
  struct Link {
    std::vector<Pending> q;  // [head_, end) is the live queue
    std::size_t head = 0;
    std::int64_t backlog = 0;  // sum of words_remaining over the queue
  };

  std::size_t link_index(NodeId from, NodeId to) const;
  void deliver(NodeId to, NodeId from, std::int32_t channel,
               const Value* words, std::uint32_t len, bool truncated);

  const Graph& graph_;
  const CongestPolicy policy_;
  const std::uint32_t budget_;
  int round_ = 0;

  // CSR over directed edges: out-link j of node v is the edge to
  // g.neighbors(v)[j], numbered link_offset_[v] + j.
  std::vector<std::size_t> link_offset_;

  // kDefer state.
  std::vector<Link> links_;
  std::vector<std::size_t> candidates_;     // links to service this round
  std::vector<std::uint8_t> queued_flag_;   // link already in candidates_?
  std::int64_t total_backlog_ = 0;          // words carried across rounds
  // Payloads of messages delivered this round, kept alive through the
  // receive phase (their heap buffers are stable under vector growth).
  std::vector<std::vector<Value>> delivered_store_;

  // kTruncate / kFail state: per-link words consumed this round.
  std::vector<std::uint32_t> used_;
  std::vector<std::size_t> used_touched_;

  std::vector<DeliveredMessage> deliveries_;

  // Enforcement metrics (see RunResult).
  std::int64_t deferred_messages_ = 0;
  std::int64_t deferred_words_ = 0;
  std::int64_t truncated_messages_ = 0;
  std::int64_t truncated_words_ = 0;
  std::int64_t backlog_peak_ = 0;
  std::int64_t rounds_with_backlog_ = 0;
};

}  // namespace dgap::detail
