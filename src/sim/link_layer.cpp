#include "sim/link_layer.hpp"

#include <algorithm>
#include <string>

#include "common/require.hpp"

namespace dgap::detail {

LinkLayer::LinkLayer(const Graph& g, CongestPolicy policy, int budget_words)
    : graph_(g),
      policy_(policy),
      budget_(static_cast<std::uint32_t>(budget_words)) {
  DGAP_REQUIRE(policy != CongestPolicy::kCount,
               "the count policy needs no link layer");
  DGAP_REQUIRE(budget_words > 0,
               "enforcing congest policies need a positive word budget "
               "(EngineOptions::congest_word_limit)");
  const NodeId n = g.num_nodes();
  link_offset_.resize(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    link_offset_[static_cast<std::size_t>(v) + 1] =
        link_offset_[v] + g.neighbors(v).size();
  }
  const std::size_t total_links = link_offset_.back();
  if (policy_ == CongestPolicy::kDefer) {
    links_.resize(total_links);
    queued_flag_.assign(total_links, 0);
  } else {
    used_.assign(total_links, 0);
  }
}

std::size_t LinkLayer::link_index(NodeId from, NodeId to) const {
  const auto& nb = graph_.neighbors(from);
  const auto it = std::lower_bound(nb.begin(), nb.end(), to);
  DGAP_ASSERT(it != nb.end() && *it == to, "send to a non-neighbor link");
  return link_offset_[from] +
         static_cast<std::size_t>(std::distance(nb.begin(), it));
}

void LinkLayer::begin_round(int round) {
  round_ = round;
  deliveries_.clear();
  delivered_store_.clear();
  for (const std::size_t link : used_touched_) used_[link] = 0;
  used_touched_.clear();
  // Carry-over in flight at the start of a round marks it as a stretch
  // round — the effective-vs-nominal gap reported by rounds_with_backlog.
  if (total_backlog_ > 0) ++rounds_with_backlog_;
}

void LinkLayer::deliver(NodeId to, NodeId from, std::int32_t channel,
                        const Value* words, std::uint32_t len,
                        bool truncated) {
  deliveries_.push_back({to, from, channel, len, words, truncated});
}

void LinkLayer::deliver_suppressed(const SendRecord& r) {
  // Synthesized delivery: no link budget is consumed, no queue entry is
  // created, nothing can be deferred or truncated. Arrives in its send
  // round, before any link-transmitted traffic of the round (the engine
  // ingests sends in canonical order, so these keep ascending-sender order
  // among themselves). The record's payload pointer stays valid through the
  // receive phase (it points into the frozen shard arenas).
  deliveries_.push_back(
      {r.to, r.from, r.channel, r.len, r.words, false, /*suppressed=*/true});
}

void LinkLayer::ingest(const SendRecord& r, const std::uint8_t* node_active) {
  const std::size_t link = link_index(r.from, r.to);
  const auto width =
      static_cast<std::uint32_t>(message_width(r.len, r.channel));
  switch (policy_) {
    case CongestPolicy::kDefer: {
      // Queue on the link; transmission happens in finish_round so that
      // carried-over traffic always precedes this round's sends (FIFO).
      auto& link_state = links_[link];
      Pending p;
      p.to = r.to;
      p.from = r.from;
      p.channel = r.channel;
      p.words_remaining = width;
      p.sent_round = round_;
      p.payload.assign(r.words, r.words + r.len);
      link_state.q.push_back(std::move(p));
      link_state.backlog += width;
      total_backlog_ += width;
      if (!queued_flag_[link]) {
        queued_flag_[link] = 1;
        candidates_.push_back(link);
      }
      break;
    }
    case CongestPolicy::kTruncate: {
      // The message arrives this round regardless; only the words beyond
      // the link's remaining budget are lost. A nonzero channel tag is
      // transmitted first (the receiver needs it to route the message).
      used_touched_.push_back(link);
      const std::uint32_t avail = budget_ - used_[link];
      const std::uint32_t consumed = std::min(width, avail);
      used_[link] += consumed;
      std::uint32_t payload_len = consumed;
      if (r.channel != 0) payload_len = consumed > 0 ? consumed - 1 : 0;
      const bool truncated = consumed < width;
      if (truncated) {
        ++truncated_messages_;
        truncated_words_ += width - consumed;
      }
      if (node_active[r.to]) {
        deliver(r.to, r.from, r.channel, r.words, payload_len, truncated);
      }
      break;
    }
    case CongestPolicy::kFail: {
      used_touched_.push_back(link);
      DGAP_REQUIRE(
          used_[link] + width <= budget_,
          "CONGEST budget exceeded: node id " +
              std::to_string(graph_.id(r.from)) + " sent " +
              std::to_string(width) + " word(s) to neighbor id " +
              std::to_string(graph_.id(r.to)) + " in round " +
              std::to_string(round_) + " with " +
              std::to_string(used_[link]) + " already on the link (budget " +
              std::to_string(budget_) + " words per link per round)");
      used_[link] += width;
      if (node_active[r.to]) {
        deliver(r.to, r.from, r.channel, r.words, r.len, false);
      }
      break;
    }
    case CongestPolicy::kCount:
      DGAP_ASSERT(false, "unreachable: kCount has no link layer");
  }
}

void LinkLayer::finish_round(const std::uint8_t* node_active) {
  if (policy_ != CongestPolicy::kDefer) return;
  // Service links in ascending (sender, neighbor) order so the delivery
  // list is receiver-scatter-ready: per receiver, senders ascend and each
  // link's messages stay FIFO.
  std::sort(candidates_.begin(), candidates_.end());
  std::vector<std::size_t> still_queued;
  for (const std::size_t link : candidates_) {
    auto& ls = links_[link];
    std::uint32_t left = budget_;
    while (ls.head < ls.q.size()) {
      Pending& p = ls.q[ls.head];
      const std::uint32_t take = std::min(left, p.words_remaining);
      p.words_remaining -= take;
      ls.backlog -= take;
      total_backlog_ -= take;
      left -= take;
      if (p.words_remaining > 0) break;  // budget exhausted mid-message
      // Fully transmitted: deliver now — unless the receiver terminated
      // while the words were in flight (they occupied the link and were
      // charged at send time, but a terminated node has no receive phase).
      if (node_active[p.to]) {
        const auto len = static_cast<std::uint32_t>(p.payload.size());
        delivered_store_.push_back(std::move(p.payload));
        // The heap buffer is stable even as delivered_store_ grows.
        deliver(p.to, p.from, p.channel, delivered_store_.back().data(), len,
                false);
      }
      ++ls.head;
    }
    // Whatever survives the round was deferred; count each message once,
    // in its send round, by the words it had to carry over.
    for (std::size_t i = ls.head; i < ls.q.size(); ++i) {
      if (ls.q[i].sent_round != round_) continue;
      ++deferred_messages_;
      deferred_words_ += ls.q[i].words_remaining;
    }
    backlog_peak_ = std::max(backlog_peak_, ls.backlog);
    if (ls.head == ls.q.size()) {
      ls.q.clear();
      ls.head = 0;
      queued_flag_[link] = 0;
    } else {
      ls.q.erase(ls.q.begin(),
                 ls.q.begin() + static_cast<std::ptrdiff_t>(ls.head));
      ls.head = 0;
      still_queued.push_back(link);
    }
  }
  candidates_.swap(still_queued);
}

std::int64_t LinkLayer::backlog_words(NodeId from, NodeId to) const {
  if (policy_ != CongestPolicy::kDefer) return 0;
  return links_[link_index(from, to)].backlog;
}

void LinkLayer::export_metrics(RunResult& m) const {
  m.deferred_messages = deferred_messages_;
  m.deferred_words = deferred_words_;
  m.truncated_messages = truncated_messages_;
  m.truncated_words = truncated_words_;
  m.link_backlog_peak_words = backlog_peak_;
  m.rounds_with_backlog = rounds_with_backlog_;
}

}  // namespace dgap::detail
