#include "predict/predictions.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace dgap {

Predictions::Predictions(std::vector<Value> node_values)
    : node_(std::move(node_values)) {}

Predictions Predictions::for_edges(
    const Graph& g, std::vector<std::vector<Value>> edge_values) {
  DGAP_REQUIRE(edge_values.size() == static_cast<std::size_t>(g.num_nodes()),
               "edge predictions need a row per node");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DGAP_REQUIRE(edge_values[v].size() == g.neighbors(v).size(),
                 "edge prediction row must align with the adjacency list");
  }
  Predictions p;
  p.edge_ = std::move(edge_values);
  return p;
}

Value Predictions::node(NodeId v) const {
  DGAP_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < node_.size(),
               "no node prediction for this node");
  return node_[v];
}

Value Predictions::edge(const Graph& g, NodeId v, NodeId u) const {
  DGAP_REQUIRE(static_cast<std::size_t>(v) < edge_.size(),
               "no edge predictions for this node");
  const auto& nb = g.neighbors(v);
  auto it = std::lower_bound(nb.begin(), nb.end(), u);
  DGAP_REQUIRE(it != nb.end() && *it == u, "edge(v,u) not in the graph");
  return edge_[v][static_cast<std::size_t>(it - nb.begin())];
}

}  // namespace dgap
