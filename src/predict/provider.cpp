#include "predict/provider.hpp"

#include <utility>

#include "common/require.hpp"
#include "predict/generators.hpp"
#include "predict/warm_start.hpp"

namespace dgap {

namespace {

// Provider digests are FNV-1a over a stable tag plus every configuration
// parameter — independent of sim/result_cache.hpp (which sits above this
// library) but the same construction, so they mix cleanly into cache keys.
constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix_signed(std::uint64_t h, std::int64_t v) {
  return mix64(h, static_cast<std::uint64_t>(v));
}

std::uint64_t mix_tag(std::uint64_t h, const char* tag) {
  for (const char* c = tag; *c; ++c) {
    h ^= static_cast<std::uint8_t>(*c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t tag_digest(const char* tag) {
  return mix_tag(mix_tag(kFnvBasis, "PROV"), tag);
}

Predictions neutral_prediction(const Graph& g, ProblemKind kind) {
  if (kind == ProblemKind::kEdgeColoring) {
    std::vector<std::vector<Value>> rows(
        static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      rows[static_cast<std::size_t>(v)].assign(g.neighbors(v).size(), 0);
    }
    return Predictions::for_edges(g, std::move(rows));
  }
  return all_same(g, neutral_value(kind));
}

class NeutralProvider final : public PredictionProvider {
 public:
  std::string name() const override { return "neutral"; }
  std::uint64_t digest() const override { return tag_digest("neutral"); }
  Predictions provide(const Graph& g, ProblemKind kind,
                      Rng& /*rng*/) const override {
    return neutral_prediction(g, kind);
  }
};

class ConstantProvider final : public PredictionProvider {
 public:
  explicit ConstantProvider(Value value) : value_(value) {}
  std::string name() const override {
    return "const:" + std::to_string(value_);
  }
  std::uint64_t digest() const override {
    return mix_signed(tag_digest("const"), value_);
  }
  Predictions provide(const Graph& g, ProblemKind kind,
                      Rng& /*rng*/) const override {
    DGAP_REQUIRE(kind != ProblemKind::kEdgeColoring,
                 "constant_provider serves node-valued kinds only");
    return all_same(g, value_);
  }

 private:
  Value value_;
};

Predictions correct_prediction(const Graph& g, ProblemKind kind, Rng& rng) {
  switch (kind) {
    case ProblemKind::kMis:
      return mis_correct_prediction(g, rng);
    case ProblemKind::kMatching:
      return matching_correct_prediction(g, rng);
    case ProblemKind::kColoring:
      return coloring_correct_prediction(g, rng);
    case ProblemKind::kEdgeColoring:
      return edge_coloring_correct_prediction(g, rng);
  }
  DGAP_ASSERT(false, "unknown problem kind");
  return {};
}

class ExactProvider final : public PredictionProvider {
 public:
  std::string name() const override { return "exact"; }
  std::uint64_t digest() const override { return tag_digest("exact"); }
  Predictions provide(const Graph& g, ProblemKind kind,
                      Rng& rng) const override {
    return correct_prediction(g, kind, rng);
  }
};

class PerturbedProvider final : public PredictionProvider {
 public:
  explicit PerturbedProvider(int errors) : errors_(errors) {}
  std::string name() const override {
    return "perturbed:" + std::to_string(errors_);
  }
  std::uint64_t digest() const override {
    return mix_signed(tag_digest("perturbed"), errors_);
  }
  Predictions provide(const Graph& g, ProblemKind kind,
                      Rng& rng) const override {
    // One rng stream end to end: exact source first, then the corruption
    // — byte-compatible with the hand-written recipes the golden
    // transcripts were recorded with (tools/cases.cpp).
    Predictions base = correct_prediction(g, kind, rng);
    switch (kind) {
      case ProblemKind::kMis:
        return flip_bits(g, base, errors_, rng);
      case ProblemKind::kMatching:
        return break_matches(g, base, errors_, rng);
      case ProblemKind::kColoring:
        return scramble_colors(g, base, errors_, rng);
      case ProblemKind::kEdgeColoring:
        return scramble_edge_colors(g, base, errors_, rng);
    }
    DGAP_ASSERT(false, "unknown problem kind");
    return {};
  }

 private:
  int errors_;
};

class GridStripeProvider final : public PredictionProvider {
 public:
  GridStripeProvider(NodeId w, NodeId h) : w_(w), h_(h) {}
  std::string name() const override {
    return "grid_stripe:" + std::to_string(w_) + "x" + std::to_string(h_);
  }
  std::uint64_t digest() const override {
    return mix_signed(mix_signed(tag_digest("grid_stripe"), w_), h_);
  }
  Predictions provide(const Graph& g, ProblemKind kind,
                      Rng& /*rng*/) const override {
    DGAP_REQUIRE(kind == ProblemKind::kMis,
                 "grid_stripe_provider is Figure 2's MIS pattern");
    DGAP_REQUIRE(g.num_nodes() == w_ * h_,
                 "grid_stripe_provider: graph is not the configured grid");
    return grid_stripe_prediction(w_, h_);
  }

 private:
  NodeId w_;
  NodeId h_;
};

class StaleGraphProvider final : public PredictionProvider {
 public:
  StaleGraphProvider(int remove_edges, int add_edges)
      : remove_(remove_edges), add_(add_edges) {}
  std::string name() const override {
    return "stale:-" + std::to_string(remove_) + "+" + std::to_string(add_);
  }
  std::uint64_t digest() const override {
    return mix_signed(mix_signed(tag_digest("stale"), remove_), add_);
  }
  Predictions provide(const Graph& g, ProblemKind kind,
                      Rng& rng) const override {
    DGAP_REQUIRE(kind != ProblemKind::kEdgeColoring,
                 "stale_graph_provider serves node-valued kinds only (edge "
                 "predictions do not survive an edge-set change)");
    const Graph old = perturb_edges(g, remove_, add_, rng);
    return correct_prediction(old, kind, rng);
  }

 private:
  int remove_;
  int add_;
};

class WarmStartProvider final : public PredictionProvider {
 public:
  WarmStartProvider(Graph prev, std::vector<Value> prev_outputs)
      : prev_(std::move(prev)), outputs_(std::move(prev_outputs)) {
    DGAP_REQUIRE(outputs_.size() ==
                     static_cast<std::size_t>(prev_.num_nodes()),
                 "warm_start_provider needs one output per previous node");
  }
  std::string name() const override { return "warm_start"; }
  std::uint64_t digest() const override {
    // The digest must separate distinct histories: mix the previous
    // graph's identifiers (outputs are keyed by them) and every output.
    std::uint64_t h = tag_digest("warm_start");
    h = mix_signed(h, prev_.num_nodes());
    h = mix_signed(h, prev_.id_bound());
    for (NodeId v = 0; v < prev_.num_nodes(); ++v) {
      h = mix_signed(h, prev_.id(v));
    }
    for (Value out : outputs_) h = mix_signed(h, out);
    return h;
  }
  Predictions provide(const Graph& g, ProblemKind kind,
                      Rng& /*rng*/) const override {
    switch (kind) {
      case ProblemKind::kMis:
        return warm_start_mis(prev_, outputs_, g);
      case ProblemKind::kMatching:
        return warm_start_matching(prev_, outputs_, g);
      case ProblemKind::kColoring:
        return warm_start_coloring(prev_, outputs_, g);
      case ProblemKind::kEdgeColoring:
        break;
    }
    DGAP_REQUIRE(false,
                 "warm_start_provider serves node-valued kinds only");
    return {};
  }

 private:
  Graph prev_;
  std::vector<Value> outputs_;
};

}  // namespace

const char* problem_kind_name(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kMis:
      return "mis";
    case ProblemKind::kMatching:
      return "matching";
    case ProblemKind::kColoring:
      return "coloring";
    case ProblemKind::kEdgeColoring:
      return "edge_coloring";
  }
  DGAP_ASSERT(false, "unknown problem kind");
  return "?";
}

Value neutral_value(ProblemKind kind) {
  return kind == ProblemKind::kMatching ? Value{kNoNode} : Value{0};
}

Predictions provide_with_seed(const PredictionProvider& provider,
                              const Graph& g, ProblemKind kind,
                              std::uint64_t seed) {
  Rng rng(seed);
  return provider.provide(g, kind, rng);
}

ProviderPtr neutral_provider() {
  return std::make_shared<NeutralProvider>();
}

ProviderPtr constant_provider(Value value) {
  return std::make_shared<ConstantProvider>(value);
}

ProviderPtr exact_provider() { return std::make_shared<ExactProvider>(); }

ProviderPtr perturbed_provider(int errors) {
  return std::make_shared<PerturbedProvider>(errors);
}

ProviderPtr grid_stripe_provider(NodeId w, NodeId h) {
  return std::make_shared<GridStripeProvider>(w, h);
}

ProviderPtr stale_graph_provider(int remove_edges, int add_edges) {
  return std::make_shared<StaleGraphProvider>(remove_edges, add_edges);
}

ProviderPtr warm_start_provider(Graph prev, std::vector<Value> prev_outputs) {
  return std::make_shared<WarmStartProvider>(std::move(prev),
                                             std::move(prev_outputs));
}

}  // namespace dgap
