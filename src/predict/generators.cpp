#include "predict/generators.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/require.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"

namespace dgap {
namespace {

std::vector<NodeId> random_order(NodeId n, Rng& rng) {
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);
  return order;
}

std::vector<std::size_t> distinct_indices(std::size_t count, std::size_t bound,
                                          Rng& rng) {
  count = std::min(count, bound);
  std::vector<std::size_t> all(bound);
  std::iota(all.begin(), all.end(), std::size_t{0});
  rng.shuffle(all);
  all.resize(count);
  return all;
}

std::size_t slot_of(const Graph& g, NodeId v, NodeId u) {
  const auto& nb = g.neighbors(v);
  return static_cast<std::size_t>(
      std::lower_bound(nb.begin(), nb.end(), u) - nb.begin());
}

}  // namespace

// ---- MIS --------------------------------------------------------------------

Predictions mis_correct_prediction(const Graph& g, Rng& rng) {
  auto in = sequential_mis(g, random_order(g.num_nodes(), rng));
  std::vector<Value> x(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) x[i] = in[i] ? 1 : 0;
  return Predictions(std::move(x));
}

namespace {

Predictions flip_bits_impl(std::vector<Value> x, int flips, Rng& rng) {
  for (std::size_t i :
       distinct_indices(static_cast<std::size_t>(std::max(flips, 0)),
                        x.size(), rng)) {
    x[i] = x[i] == 0 ? 1 : 0;
  }
  return Predictions(std::move(x));
}

}  // namespace

Predictions flip_bits(const Graph& g, const Predictions& base, int flips,
                      Rng& rng) {
  DGAP_REQUIRE(base.node_values().size() ==
                   static_cast<std::size_t>(g.num_nodes()),
               "flip_bits: prediction size must match the graph");
  return flip_bits_impl(base.node_values(), flips, rng);
}

Predictions flip_bits(const Predictions& base, int flips, Rng& rng) {
  return flip_bits_impl(base.node_values(), flips, rng);
}

Predictions all_same(const Graph& g, Value value) {
  return Predictions(
      std::vector<Value>(static_cast<std::size_t>(g.num_nodes()), value));
}

Predictions grid_stripe_prediction(NodeId w, NodeId h) {
  std::vector<Value> x(static_cast<std::size_t>(w) * h, 0);
  for (NodeId y = 0; y < h; ++y) {
    for (NodeId xcoord = 0; xcoord < w; ++xcoord) {
      const int a = xcoord % 4;
      const int b = y % 4;
      const bool black = (a <= 1 && b <= 1) || (a >= 2 && b >= 2);
      x[grid_index(w, xcoord, y)] = black ? 1 : 0;
    }
  }
  return Predictions(std::move(x));
}

Predictions stale_mis_prediction(const Graph& old_graph,
                                 const Graph& new_graph, Rng& rng) {
  DGAP_REQUIRE(old_graph.num_nodes() == new_graph.num_nodes(),
               "stale predictions need the same node set");
  return mis_correct_prediction(old_graph, rng);
}

Graph perturb_edges(const Graph& g, int remove_edges, int add_edges,
                    Rng& rng) {
  auto edges = g.edges();
  rng.shuffle(edges);
  const std::size_t keep_from =
      std::min(edges.size(), static_cast<std::size_t>(std::max(remove_edges, 0)));
  Graph out(g.num_nodes());
  out.set_ids(g.ids());
  out.set_id_bound(g.id_bound());
  for (std::size_t i = keep_from; i < edges.size(); ++i) {
    out.add_edge(edges[i].first, edges[i].second);
  }
  int added = 0;
  int attempts = 0;
  const NodeId n = g.num_nodes();
  while (added < add_edges && attempts < 100 * (add_edges + 1) && n >= 2) {
    ++attempts;
    NodeId u = static_cast<NodeId>(rng.next_below(n));
    NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v || out.has_edge(u, v)) continue;
    out.add_edge(u, v);
    ++added;
  }
  return out;
}

// ---- Maximal Matching -------------------------------------------------------

Predictions matching_correct_prediction(const Graph& g, Rng& rng) {
  auto edges = g.edges();
  rng.shuffle(edges);
  std::vector<NodeId> mate(static_cast<std::size_t>(g.num_nodes()), kNoNode);
  for (auto [u, v] : edges) {
    if (mate[u] == kNoNode && mate[v] == kNoNode) {
      mate[u] = v;
      mate[v] = u;
    }
  }
  std::vector<Value> x(mate.size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    x[v] = mate[v] == kNoNode ? Value{kNoNode} : g.id(mate[v]);
  }
  return Predictions(std::move(x));
}

Predictions break_matches(const Graph& g, const Predictions& base, int breaks,
                          Rng& rng) {
  auto x = base.node_values();
  // Collect matched pairs (v < partner index) and unmatch a random subset.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (x[v] == kNoNode) continue;
    for (NodeId u : g.neighbors(v)) {
      if (v < u && x[v] == g.id(u) && x[u] == g.id(v)) pairs.emplace_back(v, u);
    }
  }
  rng.shuffle(pairs);
  const std::size_t cut =
      std::min(pairs.size(), static_cast<std::size_t>(std::max(breaks, 0)));
  for (std::size_t i = 0; i < cut; ++i) {
    x[pairs[i].first] = kNoNode;
    x[pairs[i].second] = kNoNode;
  }
  return Predictions(std::move(x));
}

// ---- (Δ+1)-Vertex Coloring --------------------------------------------------

Predictions coloring_correct_prediction(const Graph& g, Rng& rng) {
  const Value palette = g.max_degree() + 1;
  std::vector<Value> color(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v : random_order(g.num_nodes(), rng)) {
    std::vector<bool> used(static_cast<std::size_t>(palette + 1), false);
    for (NodeId u : g.neighbors(v)) {
      if (color[u] >= 1) used[color[u]] = true;
    }
    for (Value c = 1; c <= palette; ++c) {
      if (!used[c]) {
        color[v] = c;
        break;
      }
    }
    DGAP_ASSERT(color[v] != 0, "palette exceeds degree; a color must exist");
  }
  return Predictions(std::move(color));
}

Predictions scramble_colors(const Graph& g, const Predictions& base, int flips,
                            Rng& rng) {
  const Value palette = g.max_degree() + 1;
  auto x = base.node_values();
  for (std::size_t i :
       distinct_indices(static_cast<std::size_t>(std::max(flips, 0)),
                        x.size(), rng)) {
    x[i] = rng.uniform(1, palette);
  }
  return Predictions(std::move(x));
}

// ---- (2Δ−1)-Edge Coloring ---------------------------------------------------

Predictions edge_coloring_correct_prediction(const Graph& g, Rng& rng) {
  const Value palette = std::max<Value>(1, 2 * g.max_degree() - 1);
  auto edges = g.edges();
  rng.shuffle(edges);
  std::vector<std::vector<Value>> x(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    x[v].assign(g.neighbors(v).size(), 0);
  }
  for (auto [u, v] : edges) {
    std::vector<bool> used(static_cast<std::size_t>(palette + 1), false);
    for (Value c : x[u]) {
      if (c >= 1) used[c] = true;
    }
    for (Value c : x[v]) {
      if (c >= 1) used[c] = true;
    }
    Value chosen = 0;
    for (Value c = 1; c <= palette; ++c) {
      if (!used[c]) {
        chosen = c;
        break;
      }
    }
    DGAP_ASSERT(chosen != 0, "greedy edge coloring must find a color");
    x[u][slot_of(g, u, v)] = chosen;
    x[v][slot_of(g, v, u)] = chosen;
  }
  return Predictions::for_edges(g, std::move(x));
}

Predictions scramble_edge_colors(const Graph& g, const Predictions& base,
                                 int flips, Rng& rng) {
  const Value palette = std::max<Value>(1, 2 * g.max_degree() - 1);
  auto x = base.edge_values();
  auto edges = g.edges();
  rng.shuffle(edges);
  const std::size_t cut =
      std::min(edges.size(), static_cast<std::size_t>(std::max(flips, 0)));
  for (std::size_t i = 0; i < cut; ++i) {
    auto [u, v] = edges[i];
    const Value c = rng.uniform(1, palette);
    x[u][slot_of(g, u, v)] = c;
    x[v][slot_of(g, v, u)] = c;
  }
  return Predictions::for_edges(g, std::move(x));
}

}  // namespace dgap
