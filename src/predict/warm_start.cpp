#include "predict/warm_start.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/require.hpp"

namespace dgap {

namespace {

/// For each node of `next`, its internal index in `prev` (kNoNode when the
/// identifier did not exist there). Also checks the outputs vector shape.
std::vector<NodeId> prev_index_of(const Graph& prev,
                                  const std::vector<Value>& prev_outputs,
                                  const Graph& next) {
  DGAP_REQUIRE(prev_outputs.size() ==
                   static_cast<std::size_t>(prev.num_nodes()),
               "warm start needs one previous output per previous node");
  std::unordered_map<Value, NodeId> by_id;
  by_id.reserve(static_cast<std::size_t>(prev.num_nodes()));
  for (NodeId v = 0; v < prev.num_nodes(); ++v) by_id.emplace(prev.id(v), v);
  std::vector<NodeId> map(static_cast<std::size_t>(next.num_nodes()), kNoNode);
  for (NodeId v = 0; v < next.num_nodes(); ++v) {
    auto it = by_id.find(next.id(v));
    if (it != by_id.end()) map[static_cast<std::size_t>(v)] = it->second;
  }
  return map;
}

}  // namespace

Predictions warm_start_mis(const Graph& prev,
                           const std::vector<Value>& prev_outputs,
                           const Graph& next) {
  const auto map = prev_index_of(prev, prev_outputs, next);
  std::vector<Value> pred(static_cast<std::size_t>(next.num_nodes()), 0);
  for (NodeId v = 0; v < next.num_nodes(); ++v) {
    const NodeId pv = map[static_cast<std::size_t>(v)];
    if (pv == kNoNode) continue;
    const Value out = prev_outputs[static_cast<std::size_t>(pv)];
    if (out == 0 || out == 1) pred[static_cast<std::size_t>(v)] = out;
  }
  return Predictions(std::move(pred));
}

Predictions warm_start_matching(const Graph& prev,
                                const std::vector<Value>& prev_outputs,
                                const Graph& next) {
  const auto map = prev_index_of(prev, prev_outputs, next);
  std::unordered_set<Value> next_ids;
  next_ids.reserve(static_cast<std::size_t>(next.num_nodes()));
  for (NodeId v = 0; v < next.num_nodes(); ++v) next_ids.insert(next.id(v));
  std::vector<Value> pred(static_cast<std::size_t>(next.num_nodes()),
                          kNoNode);
  for (NodeId v = 0; v < next.num_nodes(); ++v) {
    const NodeId pv = map[static_cast<std::size_t>(v)];
    if (pv == kNoNode) continue;
    const Value out = prev_outputs[static_cast<std::size_t>(pv)];
    // Identifiers are positive; anything else (⊥ included) stays ⊥. A
    // partner whose identifier was deleted is dropped, not replayed.
    if (out >= 1 && next_ids.count(out)) pred[static_cast<std::size_t>(v)] = out;
  }
  return Predictions(std::move(pred));
}

Predictions warm_start_coloring(const Graph& prev,
                                const std::vector<Value>& prev_outputs,
                                const Graph& next) {
  const auto map = prev_index_of(prev, prev_outputs, next);
  std::vector<Value> pred(static_cast<std::size_t>(next.num_nodes()), 0);
  for (NodeId v = 0; v < next.num_nodes(); ++v) {
    const NodeId pv = map[static_cast<std::size_t>(v)];
    if (pv == kNoNode) continue;
    const Value out = prev_outputs[static_cast<std::size_t>(pv)];
    if (out >= 1) pred[static_cast<std::size_t>(v)] = out;
  }
  return Predictions(std::move(pred));
}

}  // namespace dgap
