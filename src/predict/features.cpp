#include "predict/features.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace dgap {
namespace {

std::int32_t ratio_q16(std::int64_t num, std::int64_t den) {
  if (den <= 0) return 0;
  return static_cast<std::int32_t>((num << 16) / den);
}

NodeId find_by_id(const std::vector<std::pair<Value, NodeId>>& by_id,
                  Value id) {
  auto it = std::lower_bound(by_id.begin(), by_id.end(),
                             std::make_pair(id, NodeId{0}));
  if (it != by_id.end() && it->first == id) return it->second;
  return kNoNode;
}

}  // namespace

const char* feature_name(int index) {
  static const char* kNames[kNumFeatures] = {
      "bias",           "degree",        "clustering",
      "id_parity",      "nbr_degree",    "prior_present",
      "prior_invalid",  "prior_nbr_frac",
  };
  DGAP_REQUIRE(index >= 0 && index < kNumFeatures, "feature index");
  return kNames[index];
}

std::vector<FeatureRow> node_features(const Graph& g, ProblemKind kind,
                                      const std::vector<Value>* prior) {
  DGAP_REQUIRE(kind != ProblemKind::kEdgeColoring,
               "node_features serves node-valued kinds only");
  const NodeId n = g.num_nodes();
  DGAP_REQUIRE(prior == nullptr ||
                   prior->size() == static_cast<std::size_t>(n),
               "prior must hold one output per node");
  const Value palette = g.max_degree() + 1;  // Δ+1, also the degree scale

  // Identifier -> internal index, for decoding matching partner priors.
  std::vector<std::pair<Value, NodeId>> by_id;
  by_id.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) by_id.emplace_back(g.id(v), v);
  std::sort(by_id.begin(), by_id.end());

  std::vector<FeatureRow> rows(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto& nb = g.neighbors(v);
    const std::int64_t deg = static_cast<std::int64_t>(nb.size());
    FeatureRow& f = rows[static_cast<std::size_t>(v)];
    f.fill(0);

    f[0] = kFeatureOne;
    f[1] = ratio_q16(deg, palette);

    // Clustering: closed triangles over neighbor pairs. Neighbor lists
    // are sorted, so membership is a binary search; instances this runs
    // on are small (the simulator's scale guard keeps them so).
    if (deg >= 2) {
      std::int64_t tri = 0;
      for (std::size_t i = 0; i < nb.size(); ++i) {
        for (std::size_t j = i + 1; j < nb.size(); ++j) {
          if (g.has_edge(nb[i], nb[j])) ++tri;
        }
      }
      f[2] = ratio_q16(2 * tri, deg * (deg - 1));
    }

    f[3] = (g.id(v) & 1) ? kFeatureOne : 0;

    std::int64_t nbr_deg_sum = 0;
    for (NodeId u : nb) {
      nbr_deg_sum += static_cast<std::int64_t>(g.neighbors(u).size());
    }
    f[4] = deg > 0 ? ratio_q16(nbr_deg_sum, deg * palette) : 0;

    if (prior == nullptr) continue;
    const Value mine = (*prior)[static_cast<std::size_t>(v)];

    bool present = false;   // prior carries a non-neutral value here
    bool invalid = false;   // ... that is locally inconsistent (1-hop)
    std::int64_t marked = 0;  // kind-aware neighbor-prior count
    switch (kind) {
      case ProblemKind::kMis: {
        present = mine == 1;
        for (NodeId u : nb) {
          if ((*prior)[static_cast<std::size_t>(u)] == 1) ++marked;
        }
        // Active under the base rule (approximately): a claimed node
        // with a claiming neighbor, or an unclaimed node no neighbor of
        // which claims.
        invalid = present ? marked > 0 : marked == 0;
        break;
      }
      case ProblemKind::kMatching: {
        present = mine != kNoNode;
        for (NodeId u : nb) {
          if ((*prior)[static_cast<std::size_t>(u)] != kNoNode) ++marked;
        }
        if (present) {
          const NodeId partner = find_by_id(by_id, mine);
          invalid =
              partner == kNoNode || !g.has_edge(v, partner) ||
              (*prior)[static_cast<std::size_t>(partner)] != g.id(v);
        }
        break;
      }
      case ProblemKind::kColoring: {
        present = mine >= 1 && mine <= palette;
        for (NodeId u : nb) {
          if ((*prior)[static_cast<std::size_t>(u)] == mine) ++marked;
        }
        invalid = !present || marked > 0;
        break;
      }
      case ProblemKind::kEdgeColoring:
        break;  // rejected above
    }
    f[5] = present ? kFeatureOne : 0;
    f[6] = invalid ? kFeatureOne : 0;
    f[7] = ratio_q16(marked, deg);
  }
  return rows;
}

}  // namespace dgap
