#include "predict/learned.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/require.hpp"
#include "graph/exact.hpp"
#include "predict/generators.hpp"

namespace dgap {
namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_bytes(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = kFnvBasis;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

int row_of(ProblemKind kind) {
  const int row = static_cast<int>(kind);
  DGAP_REQUIRE(row >= 0 && row < kNumLearnedKinds,
               "learned model serves node-valued kinds only");
  return row;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xffU));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xffULL));
  }
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) {
    v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(b)])
         << (8 * b);
  }
  return v;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(b)])
         << (8 * b);
  }
  return v;
}

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

std::int64_t learned_score_q16(const LearnedModel& model, ProblemKind kind,
                               const FeatureRow& features) {
  const auto& w = model.weights[static_cast<std::size_t>(row_of(kind))];
  std::int64_t acc = 0;  // Q32.32
  for (int i = 0; i < kNumFeatures; ++i) {
    acc += static_cast<std::int64_t>(w[static_cast<std::size_t>(i)]) *
           static_cast<std::int64_t>(features[static_cast<std::size_t>(i)]);
  }
  return acc >> 16;
}

TrainingSet training_samples(const Graph& g, ProblemKind kind,
                             const std::vector<Value>& prior) {
  const NodeId n = g.num_nodes();
  DGAP_REQUIRE(prior.size() == static_cast<std::size_t>(n),
               "training prior must hold one output per node");
  TrainingSet out;
  out.rows = node_features(g, kind, &prior);
  out.labels.resize(static_cast<std::size_t>(n), 0);
  const Value palette = g.max_degree() + 1;
  switch (kind) {
    case ProblemKind::kMis: {
      // Supervise with the MIS that repairs the prior: greedily extend
      // the prior-claimed nodes (identifier order breaks ties) so the
      // label agrees with the prior wherever the prior is still good.
      std::vector<NodeId> order(static_cast<std::size_t>(n));
      std::iota(order.begin(), order.end(), NodeId{0});
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        const bool ca = prior[static_cast<std::size_t>(a)] == 1;
        const bool cb = prior[static_cast<std::size_t>(b)] == 1;
        if (ca != cb) return ca;
        return g.id(a) < g.id(b);
      });
      auto in = sequential_mis(g, order);
      for (NodeId v = 0; v < n; ++v) {
        out.labels[static_cast<std::size_t>(v)] = in[v] ? 1 : 0;
      }
      break;
    }
    case ProblemKind::kMatching: {
      // Label = "the prior partner is still a reciprocal neighbor" —
      // exactly the keep decision the provider must make.
      std::vector<std::pair<Value, NodeId>> by_id;
      by_id.reserve(static_cast<std::size_t>(n));
      for (NodeId v = 0; v < n; ++v) by_id.emplace_back(g.id(v), v);
      std::sort(by_id.begin(), by_id.end());
      for (NodeId v = 0; v < n; ++v) {
        const Value mine = prior[static_cast<std::size_t>(v)];
        if (mine == kNoNode) continue;
        auto it = std::lower_bound(by_id.begin(), by_id.end(),
                                   std::make_pair(mine, NodeId{0}));
        if (it == by_id.end() || it->first != mine) continue;
        const NodeId partner = it->second;
        if (g.has_edge(v, partner) &&
            prior[static_cast<std::size_t>(partner)] == g.id(v)) {
          out.labels[static_cast<std::size_t>(v)] = 1;
        }
      }
      break;
    }
    case ProblemKind::kColoring: {
      for (NodeId v = 0; v < n; ++v) {
        const Value mine = prior[static_cast<std::size_t>(v)];
        if (mine < 1 || mine > palette) continue;
        bool clash = false;
        for (NodeId u : g.neighbors(v)) {
          if (prior[static_cast<std::size_t>(u)] == mine) {
            clash = true;
            break;
          }
        }
        if (!clash) out.labels[static_cast<std::size_t>(v)] = 1;
      }
      break;
    }
    case ProblemKind::kEdgeColoring:
      DGAP_REQUIRE(false, "learned model serves node-valued kinds only");
  }
  return out;
}

void merge_training(TrainingSet& base, const TrainingSet& extra) {
  base.rows.insert(base.rows.end(), extra.rows.begin(), extra.rows.end());
  base.labels.insert(base.labels.end(), extra.labels.begin(),
                     extra.labels.end());
}

TrainingSet stale_training_corpus(const Graph& g, ProblemKind kind,
                                  const std::vector<int>& error_levels,
                                  std::uint64_t seed) {
  TrainingSet corpus;
  for (int level : error_levels) {
    const Predictions prior = provide_with_seed(
        *perturbed_provider(level), g, kind,
        seed + static_cast<std::uint64_t>(level));
    merge_training(corpus, training_samples(g, kind, prior.node_values()));
  }
  return corpus;
}

void fit_logistic(LearnedModel& model, ProblemKind kind,
                  const TrainingSet& data, int iterations,
                  double learning_rate) {
  DGAP_REQUIRE(data.rows.size() == data.labels.size(),
               "rows and labels must align");
  DGAP_REQUIRE(!data.rows.empty(), "cannot fit on an empty training set");
  const double inv_n = 1.0 / static_cast<double>(data.rows.size());
  std::array<double, kNumFeatures> w{};
  std::array<double, kNumFeatures> x{};
  std::array<double, kNumFeatures> grad{};
  for (int iter = 0; iter < iterations; ++iter) {
    grad.fill(0.0);
    for (std::size_t s = 0; s < data.rows.size(); ++s) {
      double z = 0.0;
      for (int i = 0; i < kNumFeatures; ++i) {
        x[static_cast<std::size_t>(i)] =
            static_cast<double>(
                data.rows[s][static_cast<std::size_t>(i)]) /
            65536.0;
        z += w[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
      }
      const double err =
          sigmoid(z) - static_cast<double>(data.labels[s]);
      for (int i = 0; i < kNumFeatures; ++i) {
        grad[static_cast<std::size_t>(i)] +=
            err * x[static_cast<std::size_t>(i)];
      }
    }
    for (int i = 0; i < kNumFeatures; ++i) {
      w[static_cast<std::size_t>(i)] -=
          learning_rate * grad[static_cast<std::size_t>(i)] * inv_n;
    }
  }
  auto& row = model.weights[static_cast<std::size_t>(row_of(kind))];
  for (int i = 0; i < kNumFeatures; ++i) {
    const double q = std::llround(w[static_cast<std::size_t>(i)] * 65536.0);
    const double lo = -2147483648.0;
    const double hi = 2147483647.0;
    row[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(std::clamp(q, lo, hi));
  }
}

double logistic_loss(const LearnedModel& model, ProblemKind kind,
                     const TrainingSet& data) {
  DGAP_REQUIRE(!data.rows.empty(), "loss of an empty training set");
  double total = 0.0;
  for (std::size_t s = 0; s < data.rows.size(); ++s) {
    const double z =
        static_cast<double>(learned_score_q16(model, kind, data.rows[s])) /
        65536.0;
    const double p = sigmoid(z);
    const double eps = 1e-12;
    total += data.labels[s] == 1 ? -std::log(p + eps)
                                 : -std::log(1.0 - p + eps);
  }
  return total / static_cast<double>(data.rows.size());
}

std::vector<std::uint8_t> encode_model(const LearnedModel& model) {
  std::vector<std::uint8_t> out;
  out.push_back('D');
  out.push_back('G');
  out.push_back('W');
  out.push_back('B');
  put_u32(out, model.version);
  put_u32(out, static_cast<std::uint32_t>(kNumLearnedKinds));
  put_u32(out, static_cast<std::uint32_t>(kNumFeatures));
  for (const auto& row : model.weights) {
    for (std::int32_t w : row) {
      put_u32(out, static_cast<std::uint32_t>(w));
    }
  }
  put_u64(out, fnv_bytes(out.data(), out.size()));
  return out;
}

LearnedModel decode_model(const std::vector<std::uint8_t>& bytes) {
  constexpr std::size_t kHeader = 4 + 4 + 4 + 4;
  constexpr std::size_t kBody =
      static_cast<std::size_t>(kNumLearnedKinds) * kNumFeatures * 4;
  DGAP_REQUIRE(bytes.size() == kHeader + kBody + 8,
               "weight blob: wrong size");
  DGAP_REQUIRE(bytes[0] == 'D' && bytes[1] == 'G' && bytes[2] == 'W' &&
                   bytes[3] == 'B',
               "weight blob: bad magic");
  DGAP_REQUIRE(get_u64(bytes, kHeader + kBody) ==
                   fnv_bytes(bytes.data(), kHeader + kBody),
               "weight blob: checksum mismatch");
  LearnedModel model;
  model.version = get_u32(bytes, 4);
  DGAP_REQUIRE(model.version == kWeightBlobVersion,
               "weight blob: unsupported version");
  DGAP_REQUIRE(get_u32(bytes, 8) ==
                       static_cast<std::uint32_t>(kNumLearnedKinds) &&
                   get_u32(bytes, 12) ==
                       static_cast<std::uint32_t>(kNumFeatures),
               "weight blob: dimension mismatch");
  std::size_t at = kHeader;
  for (auto& row : model.weights) {
    for (std::int32_t& w : row) {
      w = static_cast<std::int32_t>(get_u32(bytes, at));
      at += 4;
    }
  }
  return model;
}

namespace {

class LearnedProvider final : public PredictionProvider {
 public:
  LearnedProvider(LearnedModel model, std::vector<Value> prior)
      : model_(std::move(model)), prior_(std::move(prior)) {}

  std::string name() const override {
    return "learned:v" + std::to_string(model_.version);
  }

  std::uint64_t digest() const override {
    const auto blob = encode_model(model_);
    std::uint64_t h = fnv_bytes(blob.data(), blob.size());
    for (Value v : prior_) {
      const auto u = static_cast<std::uint64_t>(v);
      for (int b = 0; b < 8; ++b) {
        h ^= (u >> (8 * b)) & 0xffULL;
        h *= kFnvPrime;
      }
    }
    return h;
  }

  Predictions provide(const Graph& g, ProblemKind kind,
                      Rng& /*rng*/) const override {
    const NodeId n = g.num_nodes();
    DGAP_REQUIRE(prior_.size() == static_cast<std::size_t>(n),
                 "learned_provider prior does not match the graph");
    const auto features = node_features(g, kind, &prior_);
    const Value palette = g.max_degree() + 1;
    std::vector<std::pair<Value, NodeId>> by_id;
    if (kind == ProblemKind::kMatching) {
      by_id.reserve(static_cast<std::size_t>(n));
      for (NodeId v = 0; v < n; ++v) by_id.emplace_back(g.id(v), v);
      std::sort(by_id.begin(), by_id.end());
    }
    std::vector<Value> x(static_cast<std::size_t>(n), neutral_value(kind));
    for (NodeId v = 0; v < n; ++v) {
      const bool trust =
          learned_score_q16(model_, kind, features[static_cast<std::size_t>(
                                              v)]) >= 0;
      const Value mine = prior_[static_cast<std::size_t>(v)];
      switch (kind) {
        case ProblemKind::kMis:
          x[static_cast<std::size_t>(v)] = trust ? 1 : 0;
          break;
        case ProblemKind::kMatching: {
          if (!trust || mine == kNoNode) break;
          auto it = std::lower_bound(by_id.begin(), by_id.end(),
                                     std::make_pair(mine, NodeId{0}));
          if (it == by_id.end() || it->first != mine) break;
          const NodeId partner = it->second;
          if (g.has_edge(v, partner) &&
              prior_[static_cast<std::size_t>(partner)] == g.id(v)) {
            x[static_cast<std::size_t>(v)] = mine;
          }
          break;
        }
        case ProblemKind::kColoring:
          if (trust && mine >= 1 && mine <= palette) {
            x[static_cast<std::size_t>(v)] = mine;
          }
          break;
        case ProblemKind::kEdgeColoring:
          DGAP_REQUIRE(false,
                       "learned_provider serves node-valued kinds only");
      }
    }
    return Predictions(std::move(x));
  }

 private:
  LearnedModel model_;
  std::vector<Value> prior_;
};

}  // namespace

ProviderPtr learned_provider(LearnedModel model, std::vector<Value> prior) {
  return std::make_shared<LearnedProvider>(std::move(model),
                                           std::move(prior));
}

}  // namespace dgap
