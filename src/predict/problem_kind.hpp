// The four prediction-augmented problems, as a first-class enum.
//
// Prediction sources (predict/provider.hpp) and feature extraction
// (predict/features.hpp) are problem-directed: the same provider object
// serves MIS bits, matching partner identifiers, or palette colors
// depending on the kind it is asked for. The enum lives in its own header
// so both layers (and sim/, above them) can name a problem without
// pulling in the provider interface.
#pragma once

#include "common/types.hpp"

namespace dgap {

enum class ProblemKind {
  kMis = 0,          // per-node bit: 1 = in the independent set
  kMatching = 1,     // per-node partner identifier or kNoNode (⊥)
  kColoring = 2,     // per-node color 1..Δ+1; 0 = no color (active)
  kEdgeColoring = 3  // per-edge color 1..2Δ−1; 0 = no color
};

inline constexpr int kNumProblemKinds = 4;

/// Stable lowercase name ("mis", "matching", ...), used in provider names
/// and digests — never reorder or rename.
const char* problem_kind_name(ProblemKind kind);

/// The kind's neutral prediction value — what "no useful advice" means:
/// MIS 0 (nobody claims membership), matching ⊥, colorings 0 (outside
/// every palette, so every node starts active).
Value neutral_value(ProblemKind kind);

}  // namespace dgap
