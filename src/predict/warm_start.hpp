// Output-as-prediction adapters: warm-starting across graph versions.
//
// The Section 1.1 serving scenario replays a solution computed on an old
// graph version as the prediction on the new one. Outputs are recorded by
// internal index, but indices are not stable across versions — only
// identifiers are (graph/edits.hpp). These adapters translate a previous
// run's outputs onto the next graph by identifier:
//
//   * a surviving node inherits its own old output as its prediction;
//   * a node inserted after the old run gets the problem's neutral
//     prediction (MIS: 0, matching: ⊥, coloring: 0 = "no color");
//   * stale values are DROPPED, never passed through: a matching partner
//     identifier that no longer exists in the new graph becomes ⊥, and
//     any old output outside the problem's encoding (kUndefined, the
//     phase runner's leftover marker) is treated as absent.
//
// The result is always a well-formed prediction vector for the new graph
// — possibly erroneous (that is the point: the error measures quantify
// it), never out of contract.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "predict/predictions.hpp"

namespace dgap {

/// MIS: old bit if the node existed and output 0/1; otherwise 0.
Predictions warm_start_mis(const Graph& prev,
                           const std::vector<Value>& prev_outputs,
                           const Graph& next);

/// Matching: old partner identifier if the node existed, the output was a
/// partner id or ⊥, and the partner still exists in `next`; otherwise ⊥.
Predictions warm_start_matching(const Graph& prev,
                                const std::vector<Value>& prev_outputs,
                                const Graph& next);

/// Coloring: old color if the node existed and output a positive color;
/// otherwise 0 (outside every palette, so the base algorithm treats the
/// node as active).
Predictions warm_start_coloring(const Graph& prev,
                                const std::vector<Value>& prev_outputs,
                                const Graph& next);

}  // namespace dgap
