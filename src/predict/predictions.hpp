// Prediction containers.
//
// In the paper (Section 1.1) each node i is given a prediction x_i of its
// own output. For node-valued problems (MIS: a bit; matching: a partner
// identifier or ⊥; vertex coloring: a color) a single Value per node
// suffices. For the (2Δ−1)-edge-coloring problem the prediction is a color
// per incident edge, so an optional per-edge table is carried as well.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace dgap {

class Predictions {
 public:
  Predictions() = default;

  /// Node-valued predictions; one Value per node (internal index order).
  explicit Predictions(std::vector<Value> node_values);

  /// Edge-valued predictions: for every node, a vector aligned with
  /// g.neighbors(v) giving the predicted value for each incident edge.
  static Predictions for_edges(const Graph& g,
                               std::vector<std::vector<Value>> edge_values);

  bool has_node_values() const { return !node_.empty(); }
  bool has_edge_values() const { return !edge_.empty(); }

  Value node(NodeId v) const;
  const std::vector<Value>& node_values() const { return node_; }

  /// Predicted value for edge {v, u}, looked up from v's side.
  Value edge(const Graph& g, NodeId v, NodeId u) const;
  const std::vector<std::vector<Value>>& edge_values() const { return edge_; }

 private:
  std::vector<Value> node_;
  std::vector<std::vector<Value>> edge_;
};

}  // namespace dgap
