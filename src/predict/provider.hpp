// PredictionProvider: every prediction source behind one interface.
//
// The paper takes predictions as given; this layer is where they actually
// come from. A provider is a named, digestible recipe that turns an
// instance into a Predictions vector for a problem kind:
//
//   * provide(g, kind, rng) — materialize the prediction. Deterministic:
//     byte-identical output for the same (provider state, graph, kind,
//     rng seed). Providers that need no randomness ignore `rng`.
//   * name()   — short human-readable recipe name ("perturbed:3",
//     "warm_start", "learned:v1") for tables and bench JSON.
//   * digest() — stable 64-bit digest of the provider's full
//     configuration (parameters, captured graphs/outputs, model
//     weights). Two providers with equal digests must produce equal
//     predictions for every (graph, kind, seed), so the ResultCache can
//     content-address a job by (instance, algorithm, provider digest,
//     seed) instead of hashing the materialized prediction vector — see
//     provider_slot_digest() in sim/result_cache.hpp.
//
// Adapters below wrap every existing source: the synthetic generators
// (predict/generators.hpp), the stale-graph scenario of Section 1.1, and
// the epoch warm-start adapters (predict/warm_start.hpp). The learned
// backend lives in predict/learned.hpp. Providers are a CONSTRUCTION-TIME
// layer: they run before the engine does, so wrapping a source in a
// provider never changes engine behavior (the golden transcripts pin
// this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "predict/predictions.hpp"
#include "predict/problem_kind.hpp"

namespace dgap {

class PredictionProvider {
 public:
  virtual ~PredictionProvider() = default;

  /// Stable recipe name; parameters included ("perturbed:3").
  virtual std::string name() const = 0;

  /// Digest of the provider's configuration. Equal digests ⇒ equal
  /// provide() output for every (graph, kind, seed).
  virtual std::uint64_t digest() const = 0;

  /// Materialize the prediction for `g`. Must be a pure function of
  /// (provider state, g, kind, rng stream).
  virtual Predictions provide(const Graph& g, ProblemKind kind,
                              Rng& rng) const = 0;
};

using ProviderPtr = std::shared_ptr<const PredictionProvider>;

/// Convenience: provide() with a fresh Rng(seed) — the standard way a
/// bench or test materializes one prediction reproducibly.
Predictions provide_with_seed(const PredictionProvider& provider,
                              const Graph& g, ProblemKind kind,
                              std::uint64_t seed);

// ---- Bundled providers ------------------------------------------------------

/// Every node predicts the kind's neutral value — the "no useful advice"
/// baseline (the epoch harness's from-scratch control).
ProviderPtr neutral_provider();

/// Every node predicts `value` (the paper's all-1 adversarial MIS case).
/// Node-valued kinds only.
ProviderPtr constant_provider(Value value);

/// A correct solution computed greedily in a random order (consistency
/// regime): mis/matching/coloring/edge_coloring_correct_prediction.
ProviderPtr exact_provider();

/// A correct solution with `errors` controlled corruptions (degradation
/// regime): flip_bits / break_matches / scramble_colors /
/// scramble_edge_colors on top of the exact source, same rng stream.
ProviderPtr perturbed_provider(int errors);

/// Figure 2's 4-stripe pattern on a w×h grid (MIS only; the graph must
/// have exactly w·h nodes).
ProviderPtr grid_stripe_provider(NodeId w, NodeId h);

/// The Section 1.1 related-network scenario: a correct solution of a
/// perturbed copy of `g` (remove/add random edges, same node set)
/// replayed as the prediction on `g`. Node-valued kinds only.
ProviderPtr stale_graph_provider(int remove_edges, int add_edges);

/// The epoch warm start: `prev_outputs` (one per node of `prev`, the
/// problem's output encoding) translated onto the served graph by
/// identifier via predict/warm_start.hpp. Deterministic; ignores rng.
/// Node-valued kinds only. The digest covers `prev`'s identifiers and
/// the outputs, so distinct histories never collide.
ProviderPtr warm_start_provider(Graph prev, std::vector<Value> prev_outputs);

}  // namespace dgap
