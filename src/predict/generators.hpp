// Prediction generators.
//
// The interesting regimes in the paper are (a) correct predictions
// (consistency), (b) predictions with a controlled amount of error
// (degradation/smoothness), and (c) adversarially bad predictions
// (robustness). Plus the two concrete instances the paper draws:
// the 4-striped grid of Figure 2 and the "related network" scenario of
// Section 1.1 where a solution computed on an old graph is replayed as a
// prediction after the edge set has changed.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "predict/predictions.hpp"

namespace dgap {

// ---- MIS --------------------------------------------------------------------

/// A correct prediction: a maximal independent set computed greedily in a
/// random node order.
Predictions mis_correct_prediction(const Graph& g, Rng& rng);

/// Flip `flips` predictions chosen uniformly at random (without repetition).
/// The graph pins the expected prediction size (one bit per node), matching
/// every sibling corruptor's signature.
Predictions flip_bits(const Graph& g, const Predictions& base, int flips,
                      Rng& rng);

/// Legacy graph-less form. Consumes the rng identically to the 4-argument
/// overload but cannot check the prediction against the instance.
[[deprecated("pass the Graph: flip_bits(g, base, flips, rng)")]]
Predictions flip_bits(const Predictions& base, int flips, Rng& rng);

/// Every node predicts `value` (the paper's all-1 / all-0 worst cases).
Predictions all_same(const Graph& g, Value value);

/// Figure 2's pattern on a w×h grid: black (prediction 1) where
/// (x mod 4, y mod 4) are both in {0,1} or both in {2,3}; white elsewhere.
Predictions grid_stripe_prediction(NodeId w, NodeId h);

/// The Section 1.1 scenario: a maximal independent set of `old_graph`
/// replayed as the prediction on `new_graph` (graphs share node indices).
Predictions stale_mis_prediction(const Graph& old_graph,
                                 const Graph& new_graph, Rng& rng);

/// Perturb a graph: remove `remove_edges` random edges and add `add_edges`
/// random non-edges (keeps the node set).
Graph perturb_edges(const Graph& g, int remove_edges, int add_edges, Rng& rng);

// ---- Maximal Matching -------------------------------------------------------

/// Correct prediction: partner identifiers of a greedy maximal matching
/// built in a random edge order (kNoNode for unmatched nodes).
Predictions matching_correct_prediction(const Graph& g, Rng& rng);

/// Corrupt `breaks` random matched pairs: both endpoints revert to ⊥.
Predictions break_matches(const Graph& g, const Predictions& base, int breaks,
                          Rng& rng);

// ---- (Δ+1)-Vertex Coloring --------------------------------------------------

/// Correct prediction: greedy (Δ+1)-coloring in a random node order.
Predictions coloring_correct_prediction(const Graph& g, Rng& rng);

/// Re-color `flips` random nodes with random palette colors (may collide).
Predictions scramble_colors(const Graph& g, const Predictions& base, int flips,
                            Rng& rng);

// ---- (2Δ−1)-Edge Coloring ---------------------------------------------------

/// Correct prediction: greedy (2Δ−1)-edge coloring in a random edge order.
Predictions edge_coloring_correct_prediction(const Graph& g, Rng& rng);

/// Re-color `flips` random edges with random palette colors (consistently
/// on both endpoints, but possibly clashing with adjacent edges).
Predictions scramble_edge_colors(const Graph& g, const Predictions& base,
                                 int flips, Rng& rng);

}  // namespace dgap
