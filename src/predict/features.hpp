// Per-node feature extraction for the learned prediction backend.
//
// Everything a learned provider may look at is computed here, once, in
// fixed-point (Q16.16) so that inference is bit-deterministic on every
// platform. The features are deliberately LOCAL — degree, a triangle
// (clustering) estimate, identifier parity, a 1-hop neighborhood
// aggregate, and the node's prior output plus its 1-hop agreement with
// the neighbors' priors — i.e. everything a node could compute in O(1)
// communication rounds, which is what makes a learned provider honest
// about the distributed setting. The prior output is the previous
// epoch's solution decoded from a `.dgaptr` transcript by the caller
// (tools/dgap_fit, bench_learned); predict/ itself never reads
// transcripts, keeping the predict -> sim layering acyclic.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "predict/problem_kind.hpp"

namespace dgap {

inline constexpr int kNumFeatures = 8;

/// One node's features, Q16.16 fixed point (65536 == 1.0).
using FeatureRow = std::array<std::int32_t, kNumFeatures>;

inline constexpr std::int32_t kFeatureOne = 1 << 16;

/// Stable feature names (index-aligned), for dgap_fit's report.
const char* feature_name(int index);

/// Extract features for every node. `prior` is the previous solution in
/// the kind's output encoding, aligned with g's nodes (one Value per
/// node), or nullptr when no prior run exists — the three prior-derived
/// features are then zero. Node-valued kinds only.
std::vector<FeatureRow> node_features(const Graph& g, ProblemKind kind,
                                      const std::vector<Value>* prior);

}  // namespace dgap
