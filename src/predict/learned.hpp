// The learned prediction backend: a tiny dependency-free logistic model.
//
// Following the kissat-ml predict.h pattern — a solver feeding runtime
// features into a trained linear model — but with no external ML
// runtime: one Q16.16 weight row per node-valued problem kind, scored
// against predict/features.hpp rows with 64-bit integer arithmetic, so
// inference is bit-deterministic everywhere. The model's job is the
// epoch question: given a node's local features and its PRIOR output
// (last epoch's solution, decoded from a transcript), decide per node
// whether the prior is still good advice. Concretely the provider
//   * MIS       — emits the score's sign as the predicted bit,
//   * matching  — keeps the prior partner iff the score is nonnegative
//                 AND the partner is still a reciprocal neighbor (else ⊥),
//   * coloring  — keeps the prior color iff the score is nonnegative AND
//                 the color is still in the 1..Δ+1 palette (else 0).
// A model that learns nothing degrades to the neutral provider; one that
// learns "trust a locally consistent prior" keeps η at the churn scale
// instead of the giant-component scale. bench_learned measures exactly
// that gap, and the template degradation bounds hold at ANY prediction,
// so a learned provider can sharpen rounds but never break guarantees.
//
// Training (fit_logistic) is full-batch gradient descent in double
// precision with a fixed iteration count and no randomness, quantized to
// Q16.16 at the end; it runs OFFLINE (tools/dgap_fit) or in a bench,
// never in the simulator. Weights travel as a versioned "DGWB" blob with
// a trailing FNV-1a checksum.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "predict/features.hpp"
#include "predict/provider.hpp"

namespace dgap {

inline constexpr std::uint32_t kWeightBlobVersion = 1;

/// Node-valued kinds get a weight row; edge coloring has no node model.
inline constexpr int kNumLearnedKinds = 3;  // mis, matching, coloring

struct LearnedModel {
  std::uint32_t version = kWeightBlobVersion;
  /// Q16.16 weights, rows indexed by ProblemKind (kMis..kColoring).
  std::array<std::array<std::int32_t, kNumFeatures>, kNumLearnedKinds>
      weights{};
};

/// Q16.16 decision score: dot(weights[kind], features) — nonnegative
/// means "trust". Pure 64-bit integer arithmetic.
std::int64_t learned_score_q16(const LearnedModel& model, ProblemKind kind,
                               const FeatureRow& features);

// ---- Training ---------------------------------------------------------------

struct TrainingSet {
  std::vector<FeatureRow> rows;
  std::vector<int> labels;  // 0/1, aligned with rows
};

/// Build one labeled example per node of `g`. `prior` is the previous
/// solution in the kind's encoding. Labels are supervision a fitter can
/// actually learn from the features: for MIS, membership in the MIS that
/// greedily repairs the prior (prior-claimed nodes first, identifier
/// order); for matching/coloring, whether the node's prior output is
/// still locally valid on `g`. Deterministic — no rng.
TrainingSet training_samples(const Graph& g, ProblemKind kind,
                             const std::vector<Value>& prior);

/// Append `extra` onto `base` (rows and labels).
void merge_training(TrainingSet& base, const TrainingSet& extra);

/// The standard offline corpus, shared by tools/dgap_fit and
/// bench_learned: for each entry of `error_levels`, materialize a
/// perturbed_provider(level) prediction on `g` (seeded seed + level) as a
/// synthetic stale prior and label it with training_samples. The result
/// spans "prior fully trustworthy" through "prior mostly garbage", which
/// is exactly the range a serving-epoch prior lives in.
TrainingSet stale_training_corpus(const Graph& g, ProblemKind kind,
                                  const std::vector<int>& error_levels,
                                  std::uint64_t seed);

/// Fit one kind's weight row by full-batch logistic-loss gradient
/// descent: `iterations` steps at `learning_rate`, weights initialized
/// to zero, then quantized to Q16.16. Deterministic given its inputs.
void fit_logistic(LearnedModel& model, ProblemKind kind,
                  const TrainingSet& data, int iterations,
                  double learning_rate);

/// Mean logistic loss of the current row on `data` (fit diagnostics).
double logistic_loss(const LearnedModel& model, ProblemKind kind,
                     const TrainingSet& data);

// ---- Weight blob ("DGWB") ---------------------------------------------------

/// Serialize: magic "DGWB", version, dimensions, row-major Q16.16
/// weights, trailing FNV-1a checksum of everything before it.
std::vector<std::uint8_t> encode_model(const LearnedModel& model);

/// Parse and verify; DGAP_REQUIREs on bad magic, version, dimensions, or
/// checksum.
LearnedModel decode_model(const std::vector<std::uint8_t>& bytes);

// ---- Provider ---------------------------------------------------------------

/// A PredictionProvider running `model` over features extracted with
/// `prior` (one Value per node of the graph it will be asked about, in
/// the asked kind's encoding). Deterministic; ignores the rng. The
/// digest covers the model version, every weight, and the prior, so two
/// learned providers collide only when they would predict identically.
ProviderPtr learned_provider(LearnedModel model, std::vector<Value> prior);

}  // namespace dgap
