// Error components and error measures (Sections 4, 5, 8 and 9).
//
// Each problem has a *base algorithm* — a simple pruning algorithm fixed as
// part of the problem definition — and the error components are the
// components of the subgraph induced by the nodes (or edges) that would
// still be active after running it. The functions here replicate the base
// algorithms analytically (they are purely local, constant-round rules), so
// error measures can be computed without spinning up the simulator.
//
// Error measures are maxima of monotone measures over error components:
//   η1   = max component node count                        (μ1, Section 5)
//   η2   = max over components of 2·min{α, τ}               (μ2, Section 5)
//   η_bw = max black/white component node count              (Section 5/9)
//   η_t  = 1 + max height of a monochromatic black/white
//          component in a rooted tree                        (Section 9.2)
//   η_H  = min Hamming distance to a correct solution — the *rejected*
//          global measure, kept for the comparison experiments (Section 5)
#pragma once

#include <vector>

#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "predict/predictions.hpp"

namespace dgap {

// ---- MIS ------------------------------------------------------------------

/// Status of every node after the MIS Base Algorithm:
/// +1 — in the independent set I = {v : x_v = 1, all neighbors predict 0},
///  0 — a neighbor of I (outputs 0), -1 — still active.
std::vector<int> mis_base_status(const Graph& g, const Predictions& pred);

/// Error components: components of the subgraph induced by the active nodes
/// (original internal indices).
std::vector<std::vector<NodeId>> mis_error_components(const Graph& g,
                                                      const Predictions& pred);

int eta1_mis(const Graph& g, const Predictions& pred);
int eta2_mis(const Graph& g, const Predictions& pred);

/// η2 needs the exact independence number, which is exponential in the
/// worst case. For large error components this returns guaranteed bounds
/// instead: the lower bound uses a greedy independent set and a maximal
/// matching (ν(S) ≤ τ(S)), the upper bound their classic complements
/// (α ≤ n − ν, τ ≤ 2ν). lo == hi whenever the bounds meet.
struct Eta2Bounds {
  int lo = 0;
  int hi = 0;
};
Eta2Bounds eta2_mis_bounds(const Graph& g, const Predictions& pred);

/// Black/white measure: max size of a component of the subgraph induced by
/// the active nodes with prediction 1 (black) or 0 (white).
int eta_bw_mis(const Graph& g, const Predictions& pred);

/// Rooted-tree measure: maximum number of nodes on a monochromatic
/// parent-pointer path among active nodes (= 1 + max black/white component
/// height). Zero when the predictions are correct.
int eta_t_mis(const RootedTree& t, const Predictions& pred);

/// Hamming measure: min over maximal independent sets M of the number of
/// nodes whose prediction differs from χ_M. Enumerates maximal independent
/// sets — small graphs only.
int eta_hamming_mis(const Graph& g, const Predictions& pred);

/// The OTHER global measure the paper rejects (Section 5): the sum of the
/// error-component sizes. Like η_H it ignores that components are solved
/// in parallel; kept for the comparison experiments. η1 ≤ η_sum always.
int eta_sum_mis(const Graph& g, const Predictions& pred);

// ---- Maximal Matching -------------------------------------------------------

/// Predictions encode partner *identifiers* (kNoNode = ⊥). Status: +1 for
/// nodes matched by the base algorithm (mutual predictions), 0 for nodes
/// predicting ⊥ whose neighbors are all matched, -1 active.
std::vector<int> matching_base_status(const Graph& g, const Predictions& pred);

std::vector<std::vector<NodeId>> matching_error_components(
    const Graph& g, const Predictions& pred);

int eta1_matching(const Graph& g, const Predictions& pred);

// ---- (Δ+1)-Vertex Coloring --------------------------------------------------

/// Status: +1 for nodes whose predicted color is a legal palette color that
/// differs from every neighbor's prediction, -1 active.
std::vector<int> coloring_base_status(const Graph& g, const Predictions& pred);

std::vector<std::vector<NodeId>> coloring_error_components(
    const Graph& g, const Predictions& pred);

int eta1_coloring(const Graph& g, const Predictions& pred);

// ---- (2Δ−1)-Edge Coloring ---------------------------------------------------

/// For every node, a flag per incident edge (aligned with g.neighbors):
/// true iff the base algorithm colors that edge (both endpoints proposed
/// the same legal color, and the proposal was unique at both endpoints).
std::vector<std::vector<bool>> edge_coloring_base_colored(
    const Graph& g, const Predictions& pred);

/// Components of the subgraph induced by the *uncolored edges*; each
/// component is the set of nodes incident to at least one uncolored edge in
/// that component.
std::vector<std::vector<NodeId>> edge_coloring_error_components(
    const Graph& g, const Predictions& pred);

int eta1_edge_coloring(const Graph& g, const Predictions& pred);

// ---- Shared helpers ---------------------------------------------------------

/// max over components of 2·min{α(S), τ(S)} for an explicit component list.
int mu2_max(const Graph& g,
            const std::vector<std::vector<NodeId>>& components);

/// Largest component size (0 for an empty list).
int mu1_max(const std::vector<std::vector<NodeId>>& components);

}  // namespace dgap
