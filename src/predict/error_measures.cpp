#include "predict/error_measures.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <limits>

#include "common/require.hpp"
#include "graph/properties.hpp"

namespace dgap {
namespace {

std::vector<std::vector<NodeId>> components_of_mask(
    const Graph& g, const std::vector<bool>& keep) {
  std::vector<NodeId> kept;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (keep[v]) kept.push_back(v);
  }
  auto [sub, map] = g.induced(kept);
  std::vector<std::vector<NodeId>> out;
  for (auto& comp : connected_components(sub)) {
    std::vector<NodeId> orig;
    orig.reserve(comp.size());
    for (NodeId v : comp) orig.push_back(map[v]);
    out.push_back(std::move(orig));
  }
  return out;
}

}  // namespace

// ---- MIS --------------------------------------------------------------------

std::vector<int> mis_base_status(const Graph& g, const Predictions& pred) {
  const NodeId n = g.num_nodes();
  std::vector<int> status(static_cast<std::size_t>(n), -1);
  for (NodeId v = 0; v < n; ++v) {
    if (pred.node(v) != 1) continue;
    bool all_zero = true;
    for (NodeId u : g.neighbors(v)) {
      if (pred.node(u) != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) status[v] = 1;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (status[v] != 1) continue;
    for (NodeId u : g.neighbors(v)) {
      DGAP_ASSERT(status[u] != 1, "two adjacent base-set nodes");
      status[u] = 0;
    }
  }
  return status;
}

std::vector<std::vector<NodeId>> mis_error_components(
    const Graph& g, const Predictions& pred) {
  auto status = mis_base_status(g, pred);
  std::vector<bool> active(status.size());
  for (std::size_t i = 0; i < status.size(); ++i) active[i] = status[i] == -1;
  return components_of_mask(g, active);
}

int mu1_max(const std::vector<std::vector<NodeId>>& components) {
  std::size_t best = 0;
  for (const auto& c : components) best = std::max(best, c.size());
  return static_cast<int>(best);
}

int mu2_max(const Graph& g,
            const std::vector<std::vector<NodeId>>& components) {
  int best = 0;
  for (const auto& comp : components) {
    auto [sub, map] = g.induced(comp);
    const int alpha = independence_number(sub);
    const int tau = static_cast<int>(comp.size()) - alpha;  // Gallai
    best = std::max(best, 2 * std::min(alpha, tau));
  }
  return best;
}

int eta1_mis(const Graph& g, const Predictions& pred) {
  return mu1_max(mis_error_components(g, pred));
}

int eta2_mis(const Graph& g, const Predictions& pred) {
  return mu2_max(g, mis_error_components(g, pred));
}

Eta2Bounds eta2_mis_bounds(const Graph& g, const Predictions& pred) {
  Eta2Bounds out;
  for (const auto& comp : mis_error_components(g, pred)) {
    auto [sub, map] = g.induced(comp);
    const int n = sub.num_nodes();
    // Greedy independent set: a lower bound on α.
    int alpha_lo = 0;
    {
      auto in = sequential_mis(sub);
      for (bool b : in) alpha_lo += b ? 1 : 0;
    }
    // Maximal matching ν: τ ≥ ν (each matched edge needs a cover vertex)
    // and τ ≤ 2ν (both endpoints of a maximal matching form a cover).
    int nu = 0;
    {
      auto mate = sequential_maximal_matching(sub);
      for (NodeId v = 0; v < n; ++v) {
        if (mate[v] != kNoNode && mate[v] > v) ++nu;
      }
    }
    const int alpha_hi = n - nu;  // α = n − τ ≤ n − ν
    const int tau_lo = nu;
    const int tau_hi = 2 * nu;
    const int lo = 2 * std::min(alpha_lo, tau_lo);
    const int hi = 2 * std::min(alpha_hi, tau_hi);
    out.lo = std::max(out.lo, lo);
    out.hi = std::max(out.hi, hi);
  }
  return out;
}

int eta_bw_mis(const Graph& g, const Predictions& pred) {
  auto status = mis_base_status(g, pred);
  std::vector<bool> black(status.size()), white(status.size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    black[v] = status[v] == -1 && pred.node(v) == 1;
    white[v] = status[v] == -1 && pred.node(v) != 1;
  }
  return std::max(mu1_max(components_of_mask(g, black)),
                  mu1_max(components_of_mask(g, white)));
}

int eta_t_mis(const RootedTree& t, const Predictions& pred) {
  const Graph& g = t.graph;
  auto status = mis_base_status(g, pred);
  // up[v] = number of nodes on the longest monochromatic parent path
  // starting at v (inclusive), among active nodes.
  std::vector<int> up(static_cast<std::size_t>(g.num_nodes()), 0);
  int best = 0;
  // Nodes are not topologically ordered in general; recurse with memo.
  std::vector<bool> visiting(static_cast<std::size_t>(g.num_nodes()), false);
  std::function<int(NodeId)> compute = [&](NodeId v) -> int {
    if (up[v] != 0) return up[v];
    DGAP_ASSERT(!visiting[v], "parent pointers must be acyclic");
    visiting[v] = true;
    int result = 1;
    NodeId p = t.parent[v];
    if (p != kNoNode && status[p] == -1 && pred.node(p) == pred.node(v)) {
      result = 1 + compute(p);
    }
    visiting[v] = false;
    up[v] = result;
    return result;
  };
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (status[v] == -1) best = std::max(best, compute(v));
  }
  return best;
}

int eta_hamming_mis(const Graph& g, const Predictions& pred) {
  DGAP_REQUIRE(g.num_nodes() <= 40,
               "eta_hamming enumerates maximal independent sets; small "
               "graphs only");
  int best = std::numeric_limits<int>::max();
  enumerate_maximal_independent_sets(
      g, [&](const std::vector<NodeId>& mis) {
        std::vector<bool> in(static_cast<std::size_t>(g.num_nodes()), false);
        for (NodeId v : mis) in[v] = true;
        int dist = 0;
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          const Value want = in[v] ? 1 : 0;
          if (pred.node(v) != want) ++dist;
        }
        best = std::min(best, dist);
        return best > 0;  // stop early on an exact match
      });
  DGAP_ASSERT(best != std::numeric_limits<int>::max(),
              "every graph has a maximal independent set");
  return best;
}

int eta_sum_mis(const Graph& g, const Predictions& pred) {
  int sum = 0;
  for (const auto& comp : mis_error_components(g, pred)) {
    sum += static_cast<int>(comp.size());
  }
  return sum;
}

// ---- Maximal Matching -------------------------------------------------------

std::vector<int> matching_base_status(const Graph& g,
                                      const Predictions& pred) {
  const NodeId n = g.num_nodes();
  std::vector<int> status(static_cast<std::size_t>(n), -1);
  // Identifier -> internal index, for decoding partner predictions.
  std::vector<std::pair<Value, NodeId>> by_id;
  by_id.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) by_id.emplace_back(g.id(v), v);
  std::sort(by_id.begin(), by_id.end());
  auto find_by_id = [&](Value id) -> NodeId {
    auto it = std::lower_bound(by_id.begin(), by_id.end(),
                               std::make_pair(id, NodeId{0}));
    if (it != by_id.end() && it->first == id) return it->second;
    return kNoNode;
  };
  for (NodeId v = 0; v < n; ++v) {
    const Value xv = pred.node(v);
    if (xv == kNoNode) continue;
    const NodeId u = find_by_id(xv);
    if (u == kNoNode || !g.has_edge(v, u)) continue;
    if (pred.node(u) == g.id(v)) status[v] = 1;  // mutual
  }
  for (NodeId v = 0; v < n; ++v) {
    if (status[v] != -1 || pred.node(v) != kNoNode) continue;
    bool all_matched = true;
    for (NodeId u : g.neighbors(v)) {
      if (status[u] != 1) {
        all_matched = false;
        break;
      }
    }
    if (all_matched) status[v] = 0;  // outputs ⊥
  }
  return status;
}

std::vector<std::vector<NodeId>> matching_error_components(
    const Graph& g, const Predictions& pred) {
  auto status = matching_base_status(g, pred);
  std::vector<bool> active(status.size());
  for (std::size_t i = 0; i < status.size(); ++i) active[i] = status[i] == -1;
  return components_of_mask(g, active);
}

int eta1_matching(const Graph& g, const Predictions& pred) {
  return mu1_max(matching_error_components(g, pred));
}

// ---- (Δ+1)-Vertex Coloring --------------------------------------------------

std::vector<int> coloring_base_status(const Graph& g,
                                      const Predictions& pred) {
  const NodeId n = g.num_nodes();
  const Value palette = g.max_degree() + 1;
  std::vector<int> status(static_cast<std::size_t>(n), -1);
  for (NodeId v = 0; v < n; ++v) {
    const Value xv = pred.node(v);
    if (xv < 1 || xv > palette) continue;
    bool distinct = true;
    for (NodeId u : g.neighbors(v)) {
      if (pred.node(u) == xv) {
        distinct = false;
        break;
      }
    }
    if (distinct) status[v] = 1;
  }
  return status;
}

std::vector<std::vector<NodeId>> coloring_error_components(
    const Graph& g, const Predictions& pred) {
  auto status = coloring_base_status(g, pred);
  std::vector<bool> active(status.size());
  for (std::size_t i = 0; i < status.size(); ++i) active[i] = status[i] == -1;
  return components_of_mask(g, active);
}

int eta1_coloring(const Graph& g, const Predictions& pred) {
  return mu1_max(coloring_error_components(g, pred));
}

// ---- (2Δ−1)-Edge Coloring ---------------------------------------------------

std::vector<std::vector<bool>> edge_coloring_base_colored(
    const Graph& g, const Predictions& pred) {
  const NodeId n = g.num_nodes();
  const Value palette = std::max<Value>(1, 2 * g.max_degree() - 1);
  // proposes[v][slot]: v's prediction for that edge is legal and unique
  // among v's incident-edge predictions.
  std::vector<std::vector<bool>> proposes(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto& nb = g.neighbors(v);
    proposes[v].assign(nb.size(), false);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const Value c = pred.edge(g, v, nb[i]);
      if (c < 1 || c > palette) continue;
      bool unique = true;
      for (std::size_t j = 0; j < nb.size(); ++j) {
        if (j != i && pred.edge(g, v, nb[j]) == c) {
          unique = false;
          break;
        }
      }
      proposes[v][i] = unique;
    }
  }
  auto slot = [&g](NodeId v, NodeId u) {
    const auto& nb = g.neighbors(v);
    return static_cast<std::size_t>(
        std::lower_bound(nb.begin(), nb.end(), u) - nb.begin());
  };
  std::vector<std::vector<bool>> colored(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    colored[v].assign(g.neighbors(v).size(), false);
  }
  for (auto [u, v] : g.edges()) {
    const std::size_t su = slot(u, v);
    const std::size_t sv = slot(v, u);
    if (proposes[u][su] && proposes[v][sv] &&
        pred.edge(g, u, v) == pred.edge(g, v, u)) {
      colored[u][su] = true;
      colored[v][sv] = true;
    }
  }
  return colored;
}

std::vector<std::vector<NodeId>> edge_coloring_error_components(
    const Graph& g, const Predictions& pred) {
  auto colored = edge_coloring_base_colored(g, pred);
  auto slot = [&g](NodeId v, NodeId u) {
    const auto& nb = g.neighbors(v);
    return static_cast<std::size_t>(
        std::lower_bound(nb.begin(), nb.end(), u) - nb.begin());
  };
  // Union-find over nodes, joining endpoints of uncolored edges.
  std::vector<NodeId> parent(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) parent[v] = v;
  std::function<NodeId(NodeId)> find = [&](NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  std::vector<bool> touched(static_cast<std::size_t>(g.num_nodes()), false);
  for (auto [u, v] : g.edges()) {
    if (!colored[u][slot(u, v)]) {
      touched[u] = touched[v] = true;
      parent[find(u)] = find(v);
    }
  }
  std::vector<std::vector<NodeId>> groups(
      static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (touched[v]) groups[find(v)].push_back(v);
  }
  std::vector<std::vector<NodeId>> out;
  for (auto& grp : groups) {
    if (!grp.empty()) out.push_back(std::move(grp));
  }
  return out;
}

int eta1_edge_coloring(const Graph& g, const Predictions& pred) {
  return mu1_max(edge_coloring_error_components(g, pred));
}

}  // namespace dgap
