// Distributed local verification (Section 1.3's locally verifiable graph
// problems, and the yardstick in the paper's definition of consistency).
//
// All four problems in the paper are locally verifiable: hand every node
// its claimed output, exchange outputs with neighbors for one round, and
// decide accept/reject from the 1-hop view. If the claimed solution is
// correct every node accepts; if not, at least one node rejects. The
// paper's consistency definition measures an algorithm's zero-error rounds
// against exactly this verification cost — mis/matching/coloring verifiers
// run in 1 round, which is why consistency 3 (MIS) or 2 (matching,
// coloring) counts as "consistent".
//
// The verifiers are real distributed algorithms run on the simulator (the
// claimed solution is delivered through the prediction channel), so their
// round and message costs are measured, not assumed.
#pragma once

#include <vector>

#include "predict/predictions.hpp"
#include "sim/engine.hpp"

namespace dgap {

struct VerificationResult {
  bool accepted = false;            // true iff every node accepted
  std::vector<NodeId> rejecting;    // nodes that rejected
  int rounds = 0;                   // verification round count
  std::int64_t total_messages = 0;
};

/// MIS: node v accepts iff its bit is consistent with its neighborhood
/// (1 ⇒ no neighbor claims 1; 0 ⇒ some neighbor claims 1). One round.
VerificationResult verify_mis_locally(const Graph& g,
                                      const std::vector<Value>& claimed);

/// Maximal matching: claimed values are partner identifiers or kNoNode.
/// v accepts iff its claim is reciprocated by a neighbor, or it claims ⊥
/// and no neighbor also claims ⊥ while unmatched... precisely: ⊥ requires
/// every neighbor to be matched (to somebody). One round.
VerificationResult verify_matching_locally(const Graph& g,
                                           const std::vector<Value>& claimed);

/// (Δ+1)-vertex coloring: v accepts iff its color is in the palette and
/// differs from every neighbor's. One round.
VerificationResult verify_coloring_locally(const Graph& g,
                                           const std::vector<Value>& claimed,
                                           Value palette);

/// (2Δ−1)-edge coloring: claimed values per incident edge (aligned with
/// g.neighbors(v)). v accepts iff its colors are palette colors, pairwise
/// distinct, and each agrees with the co-endpoint's claim. One round.
VerificationResult verify_edge_coloring_locally(
    const Graph& g, const std::vector<std::vector<Value>>& claimed);

}  // namespace dgap
