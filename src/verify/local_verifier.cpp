#include "verify/local_verifier.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace dgap {

namespace {

/// Shared shell: broadcast own claim in round 1, decide from the inbox.
/// The `judge` receives (ctx, inbox) and returns accept/reject.
template <typename Judge>
class OneRoundVerifier final : public NodeProgram {
 public:
  explicit OneRoundVerifier(Judge judge) : judge_(std::move(judge)) {}

  void on_send(NodeContext& ctx) override {
    std::vector<Value> words = claim_words(ctx);
    ctx.broadcast(words);
  }

  void on_receive(NodeContext& ctx) override {
    ctx.set_output(judge_(ctx) ? 1 : 0);
    ctx.terminate();
  }

 private:
  static std::vector<Value> claim_words(NodeContext& ctx) {
    // Node claims: either the scalar prediction, or the per-edge
    // predictions prefixed by the co-endpoint ids.
    std::vector<Value> words;
    words.push_back(ctx.prediction());
    return words;
  }

  Judge judge_;
};

template <typename Judge>
VerificationResult run_scalar_verifier(const Graph& g,
                                       const std::vector<Value>& claimed,
                                       Judge judge) {
  DGAP_REQUIRE(claimed.size() == static_cast<std::size_t>(g.num_nodes()),
               "one claim per node");
  Predictions pred{claimed};
  auto result = run_with_predictions(g, pred, [&](NodeId) {
    return std::make_unique<OneRoundVerifier<Judge>>(judge);
  });
  VerificationResult vr;
  vr.rounds = result.rounds;
  vr.total_messages = result.total_messages;
  vr.accepted = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (result.outputs[v] != 1) {
      vr.accepted = false;
      vr.rejecting.push_back(v);
    }
  }
  return vr;
}

}  // namespace

VerificationResult verify_mis_locally(const Graph& g,
                                      const std::vector<Value>& claimed) {
  return run_scalar_verifier(g, claimed, [](NodeContext& ctx) {
    const Value mine = ctx.prediction();
    if (mine != 0 && mine != 1) return false;
    bool neighbor_in = false;
    for (const Message& m : ctx.inbox()) {
      if (m.words.at(0) == 1) neighbor_in = true;
    }
    return mine == 1 ? !neighbor_in : neighbor_in;
  });
}

VerificationResult verify_matching_locally(const Graph& g,
                                           const std::vector<Value>& claimed) {
  return run_scalar_verifier(g, claimed, [](NodeContext& ctx) {
    const Value mine = ctx.prediction();
    if (mine == kNoNode) {
      // ⊥ is only correct when every neighbor is matched (to someone).
      for (const Message& m : ctx.inbox()) {
        if (m.words.at(0) == kNoNode) return false;
      }
      return true;
    }
    // Must be a neighbor's identifier, and reciprocated.
    for (const Message& m : ctx.inbox()) {
      if (ctx.neighbor_id(m.from) == mine) {
        return m.words.at(0) == ctx.id();
      }
    }
    return false;
  });
}

VerificationResult verify_coloring_locally(const Graph& g,
                                           const std::vector<Value>& claimed,
                                           Value palette) {
  return run_scalar_verifier(g, claimed, [palette](NodeContext& ctx) {
    const Value mine = ctx.prediction();
    if (mine < 1 || mine > palette) return false;
    for (const Message& m : ctx.inbox()) {
      if (m.words.at(0) == mine) return false;
    }
    return true;
  });
}

VerificationResult verify_edge_coloring_locally(
    const Graph& g, const std::vector<std::vector<Value>>& claimed) {
  DGAP_REQUIRE(claimed.size() == static_cast<std::size_t>(g.num_nodes()),
               "one claim row per node");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DGAP_REQUIRE(claimed[v].size() == g.neighbors(v).size(),
                 "claim rows must align with adjacency lists");
  }
  Predictions pred = Predictions::for_edges(g, claimed);
  const Value palette = std::max<Value>(1, 2 * g.max_degree() - 1);

  class EdgeVerifier final : public NodeProgram {
   public:
    explicit EdgeVerifier(Value palette) : palette_(palette) {}

    void on_send(NodeContext& ctx) override {
      // Send each neighbor the color claimed for the shared edge.
      for (NodeId u : ctx.neighbors()) {
        ctx.send(u, {ctx.edge_prediction(u)});
      }
    }

    void on_receive(NodeContext& ctx) override {
      bool ok = true;
      std::vector<Value> mine;
      for (NodeId u : ctx.neighbors()) mine.push_back(ctx.edge_prediction(u));
      for (std::size_t i = 0; i < mine.size() && ok; ++i) {
        if (mine[i] < 1 || mine[i] > palette_) ok = false;
        for (std::size_t j = i + 1; j < mine.size(); ++j) {
          if (mine[i] == mine[j]) ok = false;
        }
      }
      for (const Message& m : ctx.inbox()) {
        if (m.words.at(0) != ctx.edge_prediction(m.from)) ok = false;
      }
      ctx.set_output(ok ? 1 : 0);
      ctx.terminate();
    }

   private:
    Value palette_;
  };

  auto result = run_with_predictions(g, pred, [palette](NodeId) {
    return std::make_unique<EdgeVerifier>(palette);
  });
  VerificationResult vr;
  vr.rounds = result.rounds;
  vr.total_messages = result.total_messages;
  vr.accepted = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (result.outputs[v] != 1) {
      vr.accepted = false;
      vr.rejecting.push_back(v);
    }
  }
  return vr;
}

}  // namespace dgap
