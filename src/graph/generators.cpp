#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <unordered_set>

#include "common/require.hpp"

namespace dgap {

namespace {

/// Derived node counts are computed in 64 bits and bounds-checked before
/// the narrowing: at n = 10^7-scale parameters, products like w*h or
/// spine*(legs+1) overflow 32-bit NodeId arithmetic silently otherwise
/// (pinned by tests/graph_test.cpp, DerivedNodeCountsOverflowCleanly).
NodeId checked_node_count(std::int64_t n, const char* what) {
  DGAP_REQUIRE(n <= std::numeric_limits<NodeId>::max(),
               std::string(what) + ": node count overflows NodeId");
  return static_cast<NodeId>(n);
}

}  // namespace

Graph make_line(NodeId n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph make_ring(NodeId n) {
  DGAP_REQUIRE(n >= 3, "a ring needs at least 3 nodes");
  Graph g = make_line(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph make_clique(NodeId n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph make_star(NodeId n) {
  DGAP_REQUIRE(n >= 1, "a star needs at least 1 node");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph make_wheel_fk(NodeId k) {
  DGAP_REQUIRE(k >= 3, "F_k needs at least 3 rim nodes");
  Graph g(checked_node_count(2 * static_cast<std::int64_t>(k) + 1, "F_k"));
  const NodeId hub = 0;
  for (NodeId i = 0; i < k; ++i) {
    const NodeId mid = 1 + i;
    const NodeId rim = 1 + k + i;
    g.add_edge(hub, mid);
    g.add_edge(mid, rim);
  }
  for (NodeId i = 0; i < k; ++i) {
    const NodeId rim = 1 + k + i;
    const NodeId next = 1 + k + (i + 1) % k;
    g.add_edge(rim, next);
  }
  return g;
}

Graph make_grid(NodeId w, NodeId h) {
  DGAP_REQUIRE(w >= 1 && h >= 1, "grid dimensions must be positive");
  Graph g(checked_node_count(
      static_cast<std::int64_t>(w) * static_cast<std::int64_t>(h), "grid"));
  for (NodeId y = 0; y < h; ++y) {
    for (NodeId x = 0; x < w; ++x) {
      if (x + 1 < w) g.add_edge(grid_index(w, x, y), grid_index(w, x + 1, y));
      if (y + 1 < h) g.add_edge(grid_index(w, x, y), grid_index(w, x, y + 1));
    }
  }
  return g;
}

Graph make_hypercube(int dims) {
  DGAP_REQUIRE(dims >= 0 && dims < 20, "hypercube dimension out of range");
  const NodeId n = static_cast<NodeId>(1) << dims;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int b = 0; b < dims; ++b) {
      NodeId u = v ^ (static_cast<NodeId>(1) << b);
      if (v < u) g.add_edge(v, u);
    }
  }
  return g;
}

Graph make_complete_bipartite(NodeId a, NodeId b) {
  Graph g(checked_node_count(
      static_cast<std::int64_t>(a) + static_cast<std::int64_t>(b),
      "complete bipartite"));
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) g.add_edge(u, a + v);
  }
  return g;
}

Graph make_gnp(NodeId n, double p, Rng& rng) {
  DGAP_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.flip(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph make_gnp_sparse(NodeId n, double p, Rng& rng) {
  DGAP_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Graph g(n);
  if (n < 2 || p <= 0.0) return g;
  // Batagelj–Brandes geometric skipping: enumerate the pairs (v, w),
  // w < v, in lexicographic order and jump ahead by a Geometric(p) gap per
  // present edge. One rng draw per edge (plus the final overshoot), so
  // generation is O(n + m) expected instead of O(n^2). For p = 1 the log
  // ratio is finite/−inf = 0 and every pair is emitted.
  const double denom = std::log1p(-p);  // log(1-p) < 0
  NodeId v = 1;
  std::int64_t w = -1;  // 64-bit: a single skip can overshoot past v
  while (v < n) {
    const double r = rng.uniform01();  // in [0, 1): log1p(-r) is finite
    w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-r) / denom));
    while (w >= v && v < n) {
      w -= v;
      ++v;
    }
    if (v < n) g.add_edge(v, static_cast<NodeId>(w));
  }
  return g;
}

Graph make_gnm(NodeId n, std::int64_t m, Rng& rng) {
  const std::int64_t pairs =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  DGAP_REQUIRE(m >= 0 && m <= pairs, "edge count out of range");
  Graph g(n);
  // Rejection sampling over the pair space, deduplicated by a packed key.
  // Expected draws m / (1 - m/pairs): O(m) while m is well below pairs/2
  // (the sparse regime this generator exists for).
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(m) * 2);
  std::int64_t added = 0;
  while (added < m) {
    const NodeId u = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const NodeId v = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    const NodeId lo = std::min(u, v), hi = std::max(u, v);
    const std::uint64_t key =
        static_cast<std::uint64_t>(lo) * static_cast<std::uint64_t>(n) +
        static_cast<std::uint64_t>(hi);
    if (!chosen.insert(key).second) continue;
    g.add_edge(lo, hi);
    ++added;
  }
  return g;
}

Graph make_random_tree(NodeId n, Rng& rng) {
  DGAP_REQUIRE(n >= 1, "a tree needs at least one node");
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Prüfer decoding.
  std::vector<NodeId> prufer(static_cast<std::size_t>(n - 2));
  for (auto& x : prufer) x = static_cast<NodeId>(rng.next_below(n));
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (NodeId x : prufer) ++deg[x];
  std::set<NodeId> leaves;
  for (NodeId v = 0; v < n; ++v) {
    if (deg[v] == 1) leaves.insert(v);
  }
  for (NodeId x : prufer) {
    NodeId leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    g.add_edge(leaf, x);
    if (--deg[x] == 1) leaves.insert(x);
  }
  NodeId u = *leaves.begin();
  NodeId v = *std::next(leaves.begin());
  g.add_edge(u, v);
  return g;
}

Graph make_random_connected(NodeId n, std::int64_t extra_edges, Rng& rng) {
  Graph g = make_random_tree(n, rng);
  const std::int64_t max_extra =
      static_cast<std::int64_t>(n) * (n - 1) / 2 - (n - 1);
  extra_edges = std::min(extra_edges, max_extra);
  std::int64_t added = 0;
  while (added < extra_edges) {
    NodeId u = static_cast<NodeId>(rng.next_below(n));
    NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
    ++added;
  }
  return g;
}

RootedTree make_rooted_line(NodeId n) {
  RootedTree t;
  t.graph = make_line(n);
  t.parent.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId v = 1; v < n; ++v) t.parent[v] = v - 1;
  t.root = 0;
  return t;
}

RootedTree make_rooted_binary_tree(int height) {
  DGAP_REQUIRE(height >= 0 && height < 22, "height out of range");
  const NodeId n = static_cast<NodeId>((1LL << (height + 1)) - 1);
  RootedTree t;
  t.graph = Graph(n);
  t.parent.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId v = 1; v < n; ++v) {
    NodeId p = (v - 1) / 2;
    t.graph.add_edge(p, v);
    t.parent[v] = p;
  }
  t.root = 0;
  return t;
}

RootedTree make_rooted_random_tree(NodeId n, Rng& rng) {
  DGAP_REQUIRE(n >= 1, "a tree needs at least one node");
  RootedTree t;
  t.graph = Graph(n);
  t.parent.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId v = 1; v < n; ++v) {
    NodeId p = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    t.graph.add_edge(p, v);
    t.parent[v] = p;
  }
  t.root = 0;
  return t;
}

RootedTree make_rooted_kary_tree(int arity, int levels) {
  DGAP_REQUIRE(arity >= 1 && levels >= 1, "arity and levels must be positive");
  std::int64_t n64 = 0, layer = 1;
  for (int l = 0; l < levels; ++l) {
    n64 += layer;
    layer *= arity;
    DGAP_REQUIRE(n64 < (1LL << 26), "k-ary tree too large");
  }
  const NodeId n = static_cast<NodeId>(n64);
  RootedTree t;
  t.graph = Graph(n);
  t.parent.assign(static_cast<std::size_t>(n), kNoNode);
  // Breadth-first layout: children of v are arity*v + 1 .. arity*v + arity.
  for (NodeId v = 1; v < n; ++v) {
    NodeId p = (v - 1) / arity;
    t.graph.add_edge(p, v);
    t.parent[v] = p;
  }
  t.root = 0;
  return t;
}

Graph make_caterpillar(NodeId spine, NodeId legs) {
  DGAP_REQUIRE(spine >= 1 && legs >= 0, "bad caterpillar parameters");
  Graph g(checked_node_count(
      static_cast<std::int64_t>(spine) * (static_cast<std::int64_t>(legs) + 1),
      "caterpillar"));
  for (NodeId s = 0; s + 1 < spine; ++s) g.add_edge(s, s + 1);
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) g.add_edge(s, spine + s * legs + l);
  }
  return g;
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  Graph g(a.num_nodes() + b.num_nodes());
  std::vector<Value> ids;
  ids.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < a.num_nodes(); ++v) ids.push_back(a.id(v));
  for (NodeId v = 0; v < b.num_nodes(); ++v)
    ids.push_back(a.id_bound() + b.id(v));
  g.set_ids(std::move(ids));
  g.set_id_bound(a.id_bound() + b.id_bound());
  for (auto [u, v] : a.edges()) g.add_edge(u, v);
  for (auto [u, v] : b.edges())
    g.add_edge(a.num_nodes() + u, a.num_nodes() + v);
  return g;
}

void randomize_ids(Graph& g, Rng& rng) {
  std::vector<Value> ids(static_cast<std::size_t>(g.num_nodes()));
  std::iota(ids.begin(), ids.end(), Value{1});
  rng.shuffle(ids);
  g.set_ids(std::move(ids));
  g.set_id_bound(g.num_nodes());
}

void randomize_ids_sparse(Graph& g, std::int64_t d, Rng& rng) {
  const NodeId n = g.num_nodes();
  DGAP_REQUIRE(d >= n, "id domain smaller than node count");
  // Floyd's algorithm for a distinct sample of size n from {1..d}.
  std::set<Value> chosen;
  for (std::int64_t j = d - n + 1; j <= d; ++j) {
    Value t = rng.uniform(1, j);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<Value> ids(chosen.begin(), chosen.end());
  rng.shuffle(ids);
  g.set_ids(std::move(ids));
  g.set_id_bound(d);
}

void sorted_ids(Graph& g) {
  std::vector<Value> ids(static_cast<std::size_t>(g.num_nodes()));
  std::iota(ids.begin(), ids.end(), Value{1});
  g.set_ids(std::move(ids));
  g.set_id_bound(g.num_nodes());
}

}  // namespace dgap
