#include "graph/generators.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/require.hpp"

namespace dgap {

namespace {

/// Derived node counts are computed in 64 bits and bounds-checked before
/// the narrowing: at n = 10^7-scale parameters, products like w*h or
/// spine*(legs+1) overflow 32-bit NodeId arithmetic silently otherwise
/// (pinned by tests/graph_test.cpp, DerivedNodeCountsOverflowCleanly).
NodeId checked_node_count(std::int64_t n, const char* what) {
  DGAP_REQUIRE(n <= std::numeric_limits<NodeId>::max(),
               std::string(what) + ": node count overflows NodeId");
  return static_cast<NodeId>(n);
}

}  // namespace

Graph make_line(NodeId n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph make_ring(NodeId n) {
  DGAP_REQUIRE(n >= 3, "a ring needs at least 3 nodes");
  Graph g = make_line(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph make_clique(NodeId n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph make_star(NodeId n) {
  DGAP_REQUIRE(n >= 1, "a star needs at least 1 node");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph make_wheel_fk(NodeId k) {
  DGAP_REQUIRE(k >= 3, "F_k needs at least 3 rim nodes");
  Graph g(checked_node_count(2 * static_cast<std::int64_t>(k) + 1, "F_k"));
  const NodeId hub = 0;
  for (NodeId i = 0; i < k; ++i) {
    const NodeId mid = 1 + i;
    const NodeId rim = 1 + k + i;
    g.add_edge(hub, mid);
    g.add_edge(mid, rim);
  }
  for (NodeId i = 0; i < k; ++i) {
    const NodeId rim = 1 + k + i;
    const NodeId next = 1 + k + (i + 1) % k;
    g.add_edge(rim, next);
  }
  return g;
}

Graph make_grid(NodeId w, NodeId h) {
  DGAP_REQUIRE(w >= 1 && h >= 1, "grid dimensions must be positive");
  Graph g(checked_node_count(
      static_cast<std::int64_t>(w) * static_cast<std::int64_t>(h), "grid"));
  for (NodeId y = 0; y < h; ++y) {
    for (NodeId x = 0; x < w; ++x) {
      if (x + 1 < w) g.add_edge(grid_index(w, x, y), grid_index(w, x + 1, y));
      if (y + 1 < h) g.add_edge(grid_index(w, x, y), grid_index(w, x, y + 1));
    }
  }
  return g;
}

Graph make_hypercube(int dims) {
  DGAP_REQUIRE(dims >= 0 && dims < 20, "hypercube dimension out of range");
  const NodeId n = static_cast<NodeId>(1) << dims;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int b = 0; b < dims; ++b) {
      NodeId u = v ^ (static_cast<NodeId>(1) << b);
      if (v < u) g.add_edge(v, u);
    }
  }
  return g;
}

Graph make_complete_bipartite(NodeId a, NodeId b) {
  Graph g(checked_node_count(
      static_cast<std::int64_t>(a) + static_cast<std::int64_t>(b),
      "complete bipartite"));
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) g.add_edge(u, a + v);
  }
  return g;
}

Graph make_gnp(NodeId n, double p, Rng& rng) {
  DGAP_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.flip(p)) g.add_edge(u, v);
    }
  }
  return g;
}

namespace {

/// Run `work(b)` for every block b in [0, blocks), spreading blocks over
/// at most `num_threads` std::threads claimed from a shared counter. Block
/// outputs must be stored per block — the caller merges them in block
/// order, so which thread computed a block never matters.
template <typename Work>
void for_each_block(std::int64_t blocks, int num_threads, const Work& work) {
  const int workers = static_cast<int>(
      std::min<std::int64_t>(blocks, std::max(num_threads, 1)));
  if (workers <= 1) {
    for (std::int64_t b = 0; b < blocks; ++b) work(b);
    return;
  }
  std::atomic<std::int64_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers) - 1);
  const auto loop = [&] {
    for (;;) {
      const std::int64_t b = next.fetch_add(1);
      if (b >= blocks) return;
      work(b);
    }
  };
  for (int t = 1; t < workers; ++t) pool.emplace_back(loop);
  loop();
  for (auto& th : pool) th.join();
}

/// Block count for the parallel random-graph builders: a pure function of
/// the instance size (NEVER of num_threads — the block structure defines
/// the output, so it must not change with the host), roughly one block per
/// 8k units of work, capped at 64.
std::int64_t generator_blocks(std::int64_t size) {
  return std::clamp<std::int64_t>(size / 8192, 1, 64);
}

}  // namespace

Graph make_gnp_sparse(NodeId n, double p, Rng& rng, int num_threads) {
  DGAP_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  DGAP_REQUIRE(num_threads >= 1, "num_threads must be >= 1");
  Graph g(n);
  if (n < 2 || p <= 0.0) return g;
  // Batagelj–Brandes geometric skipping: enumerate the pairs (v, w),
  // w < v, in lexicographic order and jump ahead by a Geometric(p) gap per
  // present edge. One rng draw per edge (plus the final overshoot), so
  // generation is O(n + m) expected instead of O(n^2). For p = 1 the log
  // ratio is finite/−inf = 0 and every pair is emitted.
  //
  // The pair sequence is cut into fixed row-range blocks of roughly equal
  // pair count (boundaries a pure function of n), each restarted from its
  // own seed — drawn serially here, so the parent rng advances the same
  // way for every thread count. Geometric gaps are memoryless, so a
  // restart at a block boundary samples the same distribution as the
  // straight-through scan; merging the per-block edge lists in block order
  // keeps the lexicographic emit order of the serial scan.
  const std::int64_t total_pairs =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  const std::int64_t blocks = generator_blocks(total_pairs);
  std::vector<NodeId> row_hi(static_cast<std::size_t>(blocks));
  for (std::int64_t b = 0; b < blocks; ++b) {
    // Smallest row v with v(v-1)/2 >= total_pairs * (b+1) / blocks.
    const std::int64_t target = total_pairs / blocks * (b + 1) +
                                total_pairs % blocks * (b + 1) / blocks;
    NodeId lo = 1, hi = n;
    while (lo < hi) {
      const NodeId mid = lo + (hi - lo) / 2;
      if (static_cast<std::int64_t>(mid) * (mid - 1) / 2 >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    row_hi[static_cast<std::size_t>(b)] = b + 1 == blocks ? n : lo;
  }
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(blocks));
  for (auto& s : seeds) s = rng.next();
  const double denom = std::log1p(-p);  // log(1-p) < 0
  std::vector<std::vector<std::pair<NodeId, NodeId>>> block_edges(
      static_cast<std::size_t>(blocks));
  for_each_block(blocks, num_threads, [&](std::int64_t b) {
    const std::size_t bu = static_cast<std::size_t>(b);
    Rng block_rng(seeds[bu]);
    auto& out = block_edges[bu];
    NodeId v = std::max<NodeId>(b == 0 ? 1 : row_hi[bu - 1], 1);
    const NodeId end = row_hi[bu];
    std::int64_t w = -1;  // 64-bit: a single skip can overshoot past v
    while (v < end) {
      const double r = block_rng.uniform01();  // [0, 1): log1p(-r) finite
      w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-r) / denom));
      while (w >= v && v < end) {
        w -= v;
        ++v;
      }
      if (v < end) out.emplace_back(v, static_cast<NodeId>(w));
    }
  });
  for (const auto& edges : block_edges) {
    for (const auto& [v, w] : edges) g.add_edge(v, w);
  }
  return g;
}

Graph make_gnm(NodeId n, std::int64_t m, Rng& rng, int num_threads) {
  const std::int64_t pairs =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  DGAP_REQUIRE(m >= 0 && m <= pairs, "edge count out of range");
  DGAP_REQUIRE(num_threads >= 1, "num_threads must be >= 1");
  Graph g(n);
  if (m == 0) return g;
  // Rejection sampling over the pair space, deduplicated by a packed key.
  // Expected draws m / (1 - m/pairs): O(m) while m is well below pairs/2
  // (the sparse regime this generator exists for).
  //
  // The stream is cut into fixed quota blocks (a pure function of m), each
  // rejection-sampling its quota of locally-distinct pairs from its own
  // serially-drawn seed. The serial merge walks the blocks in order,
  // keeping each pair's first occurrence; cross-block duplicates leave a
  // shortfall that a serial top-up stream (its seed drawn after the block
  // seeds) fills, so the graph has exactly m edges and is identical for
  // every num_threads.
  const std::int64_t blocks = generator_blocks(m);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(blocks));
  for (auto& s : seeds) s = rng.next();
  Rng topup_rng(rng.next());
  const auto draw_key = [n](Rng& r) -> std::uint64_t {
    for (;;) {
      const NodeId u = static_cast<NodeId>(
          r.next_below(static_cast<std::uint64_t>(n)));
      const NodeId v = static_cast<NodeId>(
          r.next_below(static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      const NodeId lo = std::min(u, v), hi = std::max(u, v);
      return static_cast<std::uint64_t>(lo) * static_cast<std::uint64_t>(n) +
             static_cast<std::uint64_t>(hi);
    }
  };
  std::vector<std::vector<std::uint64_t>> block_keys(
      static_cast<std::size_t>(blocks));
  for_each_block(blocks, num_threads, [&](std::int64_t b) {
    const std::size_t bu = static_cast<std::size_t>(b);
    const std::int64_t quota = m * (b + 1) / blocks - m * b / blocks;
    Rng block_rng(seeds[bu]);
    auto& keys = block_keys[bu];
    keys.reserve(static_cast<std::size_t>(quota));
    std::unordered_set<std::uint64_t> local;
    local.reserve(static_cast<std::size_t>(quota) * 2);
    while (static_cast<std::int64_t>(keys.size()) < quota) {
      const std::uint64_t key = draw_key(block_rng);
      if (local.insert(key).second) keys.push_back(key);
    }
  });
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(m) * 2);
  std::int64_t added = 0;
  const auto add_key = [&](std::uint64_t key) {
    if (!chosen.insert(key).second) return;
    const NodeId lo = static_cast<NodeId>(key / static_cast<std::uint64_t>(n));
    const NodeId hi = static_cast<NodeId>(key % static_cast<std::uint64_t>(n));
    g.add_edge(lo, hi);
    ++added;
  };
  for (const auto& keys : block_keys) {
    for (const std::uint64_t key : keys) add_key(key);
  }
  while (added < m) add_key(draw_key(topup_rng));
  return g;
}

Graph make_random_tree(NodeId n, Rng& rng) {
  DGAP_REQUIRE(n >= 1, "a tree needs at least one node");
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Prüfer decoding.
  std::vector<NodeId> prufer(static_cast<std::size_t>(n - 2));
  for (auto& x : prufer) x = static_cast<NodeId>(rng.next_below(n));
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (NodeId x : prufer) ++deg[x];
  std::set<NodeId> leaves;
  for (NodeId v = 0; v < n; ++v) {
    if (deg[v] == 1) leaves.insert(v);
  }
  for (NodeId x : prufer) {
    NodeId leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    g.add_edge(leaf, x);
    if (--deg[x] == 1) leaves.insert(x);
  }
  NodeId u = *leaves.begin();
  NodeId v = *std::next(leaves.begin());
  g.add_edge(u, v);
  return g;
}

Graph make_random_connected(NodeId n, std::int64_t extra_edges, Rng& rng) {
  Graph g = make_random_tree(n, rng);
  const std::int64_t max_extra =
      static_cast<std::int64_t>(n) * (n - 1) / 2 - (n - 1);
  extra_edges = std::min(extra_edges, max_extra);
  std::int64_t added = 0;
  while (added < extra_edges) {
    NodeId u = static_cast<NodeId>(rng.next_below(n));
    NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
    ++added;
  }
  return g;
}

RootedTree make_rooted_line(NodeId n) {
  RootedTree t;
  t.graph = make_line(n);
  t.parent.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId v = 1; v < n; ++v) t.parent[v] = v - 1;
  t.root = 0;
  return t;
}

RootedTree make_rooted_binary_tree(int height) {
  DGAP_REQUIRE(height >= 0 && height < 22, "height out of range");
  const NodeId n = static_cast<NodeId>((1LL << (height + 1)) - 1);
  RootedTree t;
  t.graph = Graph(n);
  t.parent.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId v = 1; v < n; ++v) {
    NodeId p = (v - 1) / 2;
    t.graph.add_edge(p, v);
    t.parent[v] = p;
  }
  t.root = 0;
  return t;
}

RootedTree make_rooted_random_tree(NodeId n, Rng& rng) {
  DGAP_REQUIRE(n >= 1, "a tree needs at least one node");
  RootedTree t;
  t.graph = Graph(n);
  t.parent.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId v = 1; v < n; ++v) {
    NodeId p = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    t.graph.add_edge(p, v);
    t.parent[v] = p;
  }
  t.root = 0;
  return t;
}

RootedTree make_rooted_kary_tree(int arity, int levels) {
  DGAP_REQUIRE(arity >= 1 && levels >= 1, "arity and levels must be positive");
  std::int64_t n64 = 0, layer = 1;
  for (int l = 0; l < levels; ++l) {
    n64 += layer;
    layer *= arity;
    DGAP_REQUIRE(n64 < (1LL << 26), "k-ary tree too large");
  }
  const NodeId n = static_cast<NodeId>(n64);
  RootedTree t;
  t.graph = Graph(n);
  t.parent.assign(static_cast<std::size_t>(n), kNoNode);
  // Breadth-first layout: children of v are arity*v + 1 .. arity*v + arity.
  for (NodeId v = 1; v < n; ++v) {
    NodeId p = (v - 1) / arity;
    t.graph.add_edge(p, v);
    t.parent[v] = p;
  }
  t.root = 0;
  return t;
}

Graph make_caterpillar(NodeId spine, NodeId legs) {
  DGAP_REQUIRE(spine >= 1 && legs >= 0, "bad caterpillar parameters");
  Graph g(checked_node_count(
      static_cast<std::int64_t>(spine) * (static_cast<std::int64_t>(legs) + 1),
      "caterpillar"));
  for (NodeId s = 0; s + 1 < spine; ++s) g.add_edge(s, s + 1);
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) g.add_edge(s, spine + s * legs + l);
  }
  return g;
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  Graph g(a.num_nodes() + b.num_nodes());
  std::vector<Value> ids;
  ids.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < a.num_nodes(); ++v) ids.push_back(a.id(v));
  for (NodeId v = 0; v < b.num_nodes(); ++v)
    ids.push_back(a.id_bound() + b.id(v));
  g.set_ids(std::move(ids));
  g.set_id_bound(a.id_bound() + b.id_bound());
  for (auto [u, v] : a.edges()) g.add_edge(u, v);
  for (auto [u, v] : b.edges())
    g.add_edge(a.num_nodes() + u, a.num_nodes() + v);
  return g;
}

void randomize_ids(Graph& g, Rng& rng) {
  std::vector<Value> ids(static_cast<std::size_t>(g.num_nodes()));
  std::iota(ids.begin(), ids.end(), Value{1});
  rng.shuffle(ids);
  g.set_ids(std::move(ids));
  g.set_id_bound(g.num_nodes());
}

void randomize_ids_sparse(Graph& g, std::int64_t d, Rng& rng) {
  const NodeId n = g.num_nodes();
  DGAP_REQUIRE(d >= n, "id domain smaller than node count");
  // Floyd's algorithm for a distinct sample of size n from {1..d}.
  std::set<Value> chosen;
  for (std::int64_t j = d - n + 1; j <= d; ++j) {
    Value t = rng.uniform(1, j);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<Value> ids(chosen.begin(), chosen.end());
  rng.shuffle(ids);
  g.set_ids(std::move(ids));
  g.set_id_bound(d);
}

void sorted_ids(Graph& g) {
  std::vector<Value> ids(static_cast<std::size_t>(g.num_nodes()));
  std::iota(ids.begin(), ids.end(), Value{1});
  g.set_ids(std::move(ids));
  g.set_id_bound(g.num_nodes());
}

}  // namespace dgap
