// Graph families used across tests, examples, and benchmarks.
//
// These include every graph the paper mentions explicitly: lines (lower
// bounds, Lemmas 4–5), the wheel-with-subdivided-spokes F_k of Figure 1,
// the two-dimensional grid of Figure 2, cliques and stars (the μ2
// discussion), rooted trees and directed lines (Section 9), plus standard
// random families for property sweeps.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace dgap {

/// A rooted tree: the underlying undirected graph plus, for every non-root
/// node, its parent. Each node "knows whether it is the root and which of
/// its neighbors is its parent" (Section 9.2).
struct RootedTree {
  Graph graph;
  std::vector<NodeId> parent;  // parent[v], or kNoNode for the root
  NodeId root = 0;
};

/// Path on n nodes: 0-1-2-...-(n-1).
Graph make_line(NodeId n);

/// Cycle on n >= 3 nodes.
Graph make_ring(NodeId n);

/// Complete graph K_n.
Graph make_clique(NodeId n);

/// Star with one center (node 0) and n-1 leaves.
Graph make_star(NodeId n);

/// The paper's Figure 1 graph F_k: a wheel with k rim nodes plus one extra
/// node subdividing each spoke. Node 0 is the hub, nodes 1..k are the
/// spoke midpoints, nodes k+1..2k are the rim (a cycle). diameter(F_k) = 4,
/// but the subgraph induced by the rim has diameter floor(k/2).
Graph make_wheel_fk(NodeId k);

/// w × h grid; node (x, y) has index y*w + x.
Graph make_grid(NodeId w, NodeId h);

/// Node index for grid coordinates.
inline NodeId grid_index(NodeId w, NodeId x, NodeId y) { return y * w + x; }

/// Hypercube on 2^dims nodes.
Graph make_hypercube(int dims);

/// Complete bipartite graph K_{a,b}; the first a indices form one side.
Graph make_complete_bipartite(NodeId a, NodeId b);

/// Erdős–Rényi G(n, p).
Graph make_gnp(NodeId n, double p, Rng& rng);

/// Erdős–Rényi G(n, p) in O(n + m) expected time via geometric edge
/// skipping (Batagelj–Brandes): instead of flipping all n(n-1)/2 coins,
/// jump straight to the next present edge with a geometric draw. The
/// distribution matches make_gnp but the *instances differ* for equal
/// seeds (the rng is consumed differently) — a new family, not a drop-in.
/// Use for sparse p where make_gnp's quadratic scan is the bottleneck
/// (p ~ c/n at n >= 10^5).
///
/// Construction is decomposed into fixed row-range blocks (a pure function
/// of n, never of num_threads), each generated from its own serially-drawn
/// seed and merged in block order — geometric skipping is memoryless, so a
/// per-block restart draws from the same distribution. `num_threads > 1`
/// generates blocks concurrently; the edge list is byte-identical for
/// every thread count (pinned by graph_test).
Graph make_gnp_sparse(NodeId n, double p, Rng& rng, int num_threads = 1);

/// Uniform random graph G(n, m): exactly m distinct edges, rejection-
/// sampled. O(m) expected while m stays well below n(n-1)/4.
///
/// Same parallel scheme as make_gnp_sparse: fixed quota blocks (a pure
/// function of m) rejection-sample from per-block seeds; the serial merge
/// keeps each pair's first occurrence in block order and a serial top-up
/// stream replaces cross-block duplicates, so the graph has exactly m
/// edges and is byte-identical for every num_threads.
Graph make_gnm(NodeId n, std::int64_t m, Rng& rng, int num_threads = 1);

/// Uniform random tree on n nodes (random Prüfer sequence).
Graph make_random_tree(NodeId n, Rng& rng);

/// Random connected graph: random tree plus `extra_edges` additional
/// distinct non-tree edges (clamped to the number available).
Graph make_random_connected(NodeId n, std::int64_t extra_edges, Rng& rng);

/// Directed line rooted at node 0: parent of node i is i-1.
RootedTree make_rooted_line(NodeId n);

/// Complete binary tree of the given height (height 0 = single node).
RootedTree make_rooted_binary_tree(int height);

/// Uniform random rooted tree: each node i >= 1 picks a parent uniformly
/// from 0..i-1 (recursive random tree).
RootedTree make_rooted_random_tree(NodeId n, Rng& rng);

/// Rooted tree where every node has exactly `arity` children, `levels`
/// levels deep.
RootedTree make_rooted_kary_tree(int arity, int levels);

/// A "caterpillar": a spine line of length `spine` with `legs` leaves
/// hanging off each spine node.
Graph make_caterpillar(NodeId spine, NodeId legs);

/// Disjoint union: relabels the second graph's identifiers above the
/// first's id bound.
Graph disjoint_union(const Graph& a, const Graph& b);

/// Reassign identifiers to a random permutation of {1..n} (d = n).
void randomize_ids(Graph& g, Rng& rng);

/// Reassign identifiers to a random distinct subset of {1..d} (sparse ids).
void randomize_ids_sparse(Graph& g, std::int64_t d, Rng& rng);

/// Give node i identifier i+1 (increasing along internal index order).
/// On make_line this is the Greedy-MIS worst case used by the tightness
/// tests for Lemma 5.
void sorted_ids(Graph& g);

}  // namespace dgap
