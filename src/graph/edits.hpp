// Edit batches: identifier-stable mutation of immutable graphs.
//
// The paper's Section 1.1 serving scenario evolves one network through
// small changes while solutions computed on older versions are replayed
// as predictions. Graph is immutable, so evolution is rebuild-from-edits:
// apply_edits() takes a graph plus an EditBatch and constructs the next
// version. Everything is keyed by IDENTIFIER, never internal index —
// surviving nodes keep their identifiers (so stale solutions keyed by id
// stay meaningful), and the identifier bound d only ever grows: a deleted
// node's identifier is burned forever and is never reissued to a later
// insertion (tests/epoch_test.cpp pins this). Internal indices are NOT
// stable across versions; consumers must translate through identifiers.
//
// ChurnSpec generates deterministic random edit batches (all randomness
// through dgap::Rng from the spec's seed and the epoch number), the raw
// material of the epoch harness in sim/epoch.hpp.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace dgap {

/// One batch of edits, all keyed by identifier. Applied in this order:
/// edge removals, node removals (which drop their incident edges), node
/// insertions (fresh identifiers above the current bound), edge
/// insertions (which may reference freshly inserted identifiers).
struct EditBatch {
  std::vector<std::pair<Value, Value>> remove_edges;
  std::vector<Value> remove_nodes;
  /// Inserted nodes get identifiers id_bound+1 .. id_bound+add_nodes, and
  /// the new graph's id_bound is raised past them — identifier reuse is
  /// structurally impossible.
  std::int64_t add_nodes = 0;
  std::vector<std::pair<Value, Value>> add_edges;

  bool empty() const {
    return remove_edges.empty() && remove_nodes.empty() && add_nodes == 0 &&
           add_edges.empty();
  }
};

/// The next graph version. Surviving nodes keep their identifiers (and
/// their relative internal order); inserted nodes are appended. Referencing
/// an unknown identifier, removing a missing edge, or adding a duplicate
/// edge throws DGAP_REQUIRE — an edit batch is a contract, not a hint.
Graph apply_edits(const Graph& g, const EditBatch& batch);

/// Deterministic random churn: rates are fractions of the CURRENT graph's
/// edge/node counts, so the process is self-scaling. generate() derives
/// every choice from (seed, epoch) alone — equal specs give equal batches.
struct ChurnSpec {
  std::uint64_t seed = 1;
  double edge_remove_frac = 0.0;
  double edge_add_frac = 0.0;
  double node_remove_frac = 0.0;
  double node_add_frac = 0.0;
  /// Edges wiring each inserted node to random surviving nodes (clamped to
  /// the nodes available), on top of edge_add_frac.
  int new_node_degree = 2;
  /// Node removals are clamped so at least this many nodes survive.
  NodeId min_nodes = 2;

  EditBatch generate(const Graph& g, int epoch) const;
};

}  // namespace dgap
