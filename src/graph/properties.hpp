// Structural graph properties: connectivity, components, distances.
//
// The error measures of Section 5 are defined as maxima of monotone
// measures over *components* of induced subgraphs, so component extraction
// is the workhorse here. Diameter is included because the paper discusses
// (and rejects, via Figure 1) diameter as an error measure for general
// graphs while using it for trees.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dgap {

/// Connected components as lists of internal node indices; components are
/// ordered by smallest contained index, nodes within a component ascending.
std::vector<std::vector<NodeId>> connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// True iff g is acyclic and connected.
bool is_tree(const Graph& g);

/// BFS distances from `src`; unreachable nodes get -1.
std::vector<int> bfs_distances(const Graph& g, NodeId src);

/// Eccentricity of `src` within its component.
int eccentricity(const Graph& g, NodeId src);

/// Diameter of a connected graph (max over all-pairs shortest paths).
/// Requires connectivity; use component extraction first otherwise.
int diameter(const Graph& g);

/// Degeneracy (max over subgraphs of the min degree); useful for sweeps.
int degeneracy(const Graph& g);

/// Max component size of the subgraph induced by `keep` flags.
NodeId max_component_size(const Graph& g, const std::vector<bool>& keep);

}  // namespace dgap
