// Undirected simple graph with distinct node identifiers.
//
// This mirrors the paper's Section 2 model: a graph G = (V, E) where
// V ⊆ {1, ..., d} and every node knows its own identifier and the
// identifiers of its neighbors. Internally nodes are dense indices
// 0..n-1; the identifier of internal node v is id(v). All distributed
// algorithms in this library break symmetry by comparing identifiers,
// never internal indices, so an induced subgraph (which keeps the original
// identifiers) behaves exactly like the paper's "remaining graph".
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"

namespace dgap {

class Graph {
 public:
  Graph() = default;

  /// n nodes, no edges; identifiers default to 1..n (so d = n).
  explicit Graph(NodeId n);

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  std::int64_t num_edges() const { return num_edges_; }

  /// Upper bound on identifiers (the paper's d). At least max id.
  std::int64_t id_bound() const { return id_bound_; }
  void set_id_bound(std::int64_t d);

  /// The identifier of internal node v (distinct across nodes, in 1..d).
  Value id(NodeId v) const { return ids_[v]; }
  const std::vector<Value>& ids() const { return ids_; }

  /// Reassign identifiers. `ids` must be distinct positive values; the id
  /// bound is raised to cover them if needed.
  void set_ids(std::vector<Value> ids);

  void add_edge(NodeId u, NodeId v);
  bool has_edge(NodeId u, NodeId v) const;

  /// Neighbors of v, sorted by internal index.
  const std::vector<NodeId>& neighbors(NodeId v) const { return adj_[v]; }
  int degree(NodeId v) const { return static_cast<int>(adj_[v].size()); }

  /// Maximum degree Δ over all nodes (0 for the empty graph).
  int max_degree() const;

  /// All edges as (u, v) with u < v, sorted.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Subgraph induced by `keep` (internal indices). Identifiers and the id
  /// bound are preserved. Returns the subgraph and the mapping from new
  /// internal index to old internal index.
  std::pair<Graph, std::vector<NodeId>> induced(
      const std::vector<NodeId>& keep) const;

 private:
  void check_node(NodeId v) const;

  std::vector<std::vector<NodeId>> adj_;
  std::vector<Value> ids_;
  std::int64_t num_edges_ = 0;
  std::int64_t id_bound_ = 0;
};

}  // namespace dgap
