#include "graph/exact.hpp"

#include <algorithm>
#include <numeric>

#include "common/require.hpp"

namespace dgap {
namespace {

/// Branch-and-bound maximum independent set over an explicit alive-set.
/// Degree-0 and degree-1 reductions make the solver linear on forests and
/// near-linear on the path-like error components the benchmarks produce.
class MisSolver {
 public:
  MisSolver(const Graph& g, std::int64_t budget)
      : g_(g), budget_(budget), alive_(g.num_nodes(), true),
        in_set_(g.num_nodes(), false) {
    alive_count_ = g.num_nodes();
  }

  std::vector<NodeId> solve() {
    recurse(0);
    std::vector<NodeId> out;
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (best_set_[v]) out.push_back(v);
    }
    return out;
  }

 private:
  int alive_degree(NodeId v) const {
    int d = 0;
    for (NodeId u : g_.neighbors(v)) d += alive_[u] ? 1 : 0;
    return d;
  }

  /// Remove v from the alive set; returns v for undo bookkeeping.
  void remove(NodeId v, std::vector<NodeId>& undo) {
    DGAP_ASSERT(alive_[v], "removing a dead vertex");
    alive_[v] = false;
    --alive_count_;
    undo.push_back(v);
  }

  void restore(std::vector<NodeId>& undo, std::size_t mark) {
    while (undo.size() > mark) {
      alive_[undo.back()] = true;
      ++alive_count_;
      undo.pop_back();
    }
  }

  void record_if_best(int included) {
    if (included > best_) {
      best_ = included;
      best_set_ = in_set_;
    }
  }

  void recurse(int included) {
    DGAP_REQUIRE(++nodes_ <= budget_, "independence-number budget exceeded");
    if (included + alive_count_ <= best_) return;  // bound

    // Reductions: repeatedly take a vertex of alive-degree <= 1 into the
    // set (always safe: some maximum IS contains it).
    std::vector<NodeId> undo;
    std::vector<NodeId> taken;
    bool progress = true;
    while (progress) {
      progress = false;
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        if (!alive_[v]) continue;
        if (alive_degree(v) <= 1) {
          in_set_[v] = true;
          taken.push_back(v);
          ++included;
          remove(v, undo);
          for (NodeId u : g_.neighbors(v)) {
            if (alive_[u]) remove(u, undo);
          }
          progress = true;
        }
      }
    }

    if (alive_count_ == 0) {
      record_if_best(included);
    } else if (included + alive_count_ > best_) {
      // Branch on a maximum-alive-degree vertex.
      NodeId pick = kNoNode;
      int pick_deg = -1;
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        if (!alive_[v]) continue;
        int d = alive_degree(v);
        if (d > pick_deg) {
          pick_deg = d;
          pick = v;
        }
      }
      // Include pick.
      {
        std::size_t mark = undo.size();
        in_set_[pick] = true;
        remove(pick, undo);
        for (NodeId u : g_.neighbors(pick)) {
          if (alive_[u]) remove(u, undo);
        }
        recurse(included + 1);
        in_set_[pick] = false;
        restore(undo, mark);
      }
      // Exclude pick.
      {
        std::size_t mark = undo.size();
        remove(pick, undo);
        recurse(included);
        restore(undo, mark);
      }
    }

    // Undo reductions.
    for (NodeId v : taken) in_set_[v] = false;
    restore(undo, 0);
  }

  const Graph& g_;
  std::int64_t budget_;
  std::int64_t nodes_ = 0;
  std::vector<bool> alive_;
  std::vector<bool> in_set_;
  std::vector<bool> best_set_{std::vector<bool>(g_.num_nodes(), false)};
  NodeId alive_count_;
  int best_ = -1;
};

void bron_kerbosch(const Graph& g, std::vector<NodeId>& r,
                   std::vector<NodeId> p, std::vector<NodeId> x,
                   const std::function<bool(const std::vector<NodeId>&)>& cb,
                   bool& stop) {
  // Maximal independent sets of g == maximal cliques of the complement;
  // "non-adjacent in g" plays the role of adjacency below.
  if (stop) return;
  if (p.empty() && x.empty()) {
    if (!cb(r)) stop = true;
    return;
  }
  // Pivot: choose u in P ∪ X maximizing complement-degree into P.
  NodeId pivot = kNoNode;
  std::size_t best_cover = 0;
  auto complement_adjacent = [&g](NodeId a, NodeId b) {
    return a != b && !g.has_edge(a, b);
  };
  for (const auto& pool : {p, x}) {
    for (NodeId u : pool) {
      std::size_t cover = 0;
      for (NodeId w : p) cover += complement_adjacent(u, w) ? 1 : 0;
      if (pivot == kNoNode || cover > best_cover) {
        pivot = u;
        best_cover = cover;
      }
    }
  }
  std::vector<NodeId> candidates;
  for (NodeId v : p) {
    if (pivot == kNoNode || !complement_adjacent(pivot, v)) {
      candidates.push_back(v);
    }
  }
  for (NodeId v : candidates) {
    std::vector<NodeId> p2, x2;
    for (NodeId w : p) {
      if (complement_adjacent(v, w)) p2.push_back(w);
    }
    for (NodeId w : x) {
      if (complement_adjacent(v, w)) x2.push_back(w);
    }
    r.push_back(v);
    bron_kerbosch(g, r, std::move(p2), std::move(x2), cb, stop);
    r.pop_back();
    if (stop) return;
    p.erase(std::find(p.begin(), p.end(), v));
    x.push_back(v);
  }
}

}  // namespace

int independence_number(const Graph& g, std::int64_t node_budget) {
  return static_cast<int>(maximum_independent_set(g, node_budget).size());
}

std::vector<NodeId> maximum_independent_set(const Graph& g,
                                            std::int64_t node_budget) {
  if (g.num_nodes() == 0) return {};
  MisSolver solver(g, node_budget);
  return solver.solve();
}

int vertex_cover_number(const Graph& g, std::int64_t node_budget) {
  return static_cast<int>(g.num_nodes()) - independence_number(g, node_budget);
}

void enumerate_maximal_independent_sets(
    const Graph& g,
    const std::function<bool(const std::vector<NodeId>&)>& cb) {
  std::vector<NodeId> r;
  std::vector<NodeId> p(static_cast<std::size_t>(g.num_nodes()));
  std::iota(p.begin(), p.end(), NodeId{0});
  bool stop = false;
  bron_kerbosch(g, r, std::move(p), {}, cb, stop);
}

std::vector<bool> sequential_mis(const Graph& g) {
  std::vector<NodeId> order(static_cast<std::size_t>(g.num_nodes()));
  std::iota(order.begin(), order.end(), NodeId{0});
  return sequential_mis(g, order);
}

std::vector<bool> sequential_mis(const Graph& g,
                                 const std::vector<NodeId>& order) {
  DGAP_REQUIRE(order.size() == static_cast<std::size_t>(g.num_nodes()),
               "order must list every node once");
  std::vector<bool> in(static_cast<std::size_t>(g.num_nodes()), false);
  std::vector<bool> blocked(static_cast<std::size_t>(g.num_nodes()), false);
  for (NodeId v : order) {
    if (blocked[v]) continue;
    in[v] = true;
    for (NodeId u : g.neighbors(v)) blocked[u] = true;
  }
  return in;
}

std::vector<NodeId> sequential_maximal_matching(const Graph& g) {
  std::vector<NodeId> mate(static_cast<std::size_t>(g.num_nodes()), kNoNode);
  for (auto [u, v] : g.edges()) {
    if (mate[u] == kNoNode && mate[v] == kNoNode) {
      mate[u] = v;
      mate[v] = u;
    }
  }
  return mate;
}

std::vector<Value> sequential_vertex_coloring(const Graph& g) {
  const Value palette = g.max_degree() + 1;
  std::vector<Value> color(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<bool> used(static_cast<std::size_t>(palette + 1), false);
    for (NodeId u : g.neighbors(v)) {
      if (color[u] >= 1 && color[u] <= palette) used[color[u]] = true;
    }
    for (Value c = 1; c <= palette; ++c) {
      if (!used[c]) {
        color[v] = c;
        break;
      }
    }
    DGAP_ASSERT(color[v] != 0, "greedy coloring must find a color");
  }
  return color;
}

std::vector<std::vector<Value>> sequential_edge_coloring(const Graph& g) {
  const Value palette = std::max<Value>(1, 2 * g.max_degree() - 1);
  std::vector<std::vector<Value>> out(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out[v].assign(g.neighbors(v).size(), 0);
  }
  auto slot = [&g](NodeId v, NodeId u) {
    const auto& nb = g.neighbors(v);
    return static_cast<std::size_t>(
        std::lower_bound(nb.begin(), nb.end(), u) - nb.begin());
  };
  for (auto [u, v] : g.edges()) {
    std::vector<bool> used(static_cast<std::size_t>(palette + 1), false);
    for (Value c : out[u]) {
      if (c >= 1) used[c] = true;
    }
    for (Value c : out[v]) {
      if (c >= 1) used[c] = true;
    }
    Value chosen = 0;
    for (Value c = 1; c <= palette; ++c) {
      if (!used[c]) {
        chosen = c;
        break;
      }
    }
    DGAP_ASSERT(chosen != 0, "greedy edge coloring must find a color");
    out[u][slot(u, v)] = chosen;
    out[v][slot(v, u)] = chosen;
  }
  return out;
}

}  // namespace dgap
