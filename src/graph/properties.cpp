#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

#include "common/require.hpp"

namespace dgap {

std::vector<std::vector<NodeId>> connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<std::vector<NodeId>> comps;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::vector<NodeId> comp;
    stack.push_back(s);
    seen[s] = true;
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      comp.push_back(v);
      for (NodeId u : g.neighbors(v)) {
        if (!seen[u]) {
          seen[u] = true;
          stack.push_back(u);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return connected_components(g).size() == 1;
}

bool is_tree(const Graph& g) {
  return is_connected(g) && g.num_edges() == g.num_nodes() - 1;
}

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  DGAP_REQUIRE(src >= 0 && src < g.num_nodes(), "bfs source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == -1) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

int eccentricity(const Graph& g, NodeId src) {
  auto dist = bfs_distances(g, src);
  int ecc = 0;
  for (int d : dist) ecc = std::max(ecc, d);
  return ecc;
}

int diameter(const Graph& g) {
  DGAP_REQUIRE(is_connected(g), "diameter requires a connected graph");
  int diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    diam = std::max(diam, eccentricity(g, v));
  }
  return diam;
}

int degeneracy(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<int> deg(static_cast<std::size_t>(n));
  int maxdeg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    maxdeg = std::max(maxdeg, deg[v]);
  }
  // Bucket-based peeling.
  std::vector<std::vector<NodeId>> buckets(static_cast<std::size_t>(maxdeg + 1));
  for (NodeId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(static_cast<std::size_t>(n), false);
  int degen = 0;
  for (NodeId processed = 0; processed < n;) {
    int b = 0;
    while (buckets[b].empty() ||
           removed[buckets[b].back()] ||
           deg[buckets[b].back()] != b) {
      if (buckets[b].empty()) {
        ++b;
        continue;
      }
      // Lazily drop stale entries.
      NodeId v = buckets[b].back();
      if (removed[v] || deg[v] != b) {
        buckets[b].pop_back();
        continue;
      }
      break;
    }
    NodeId v = buckets[b].back();
    buckets[b].pop_back();
    removed[v] = true;
    ++processed;
    degen = std::max(degen, b);
    for (NodeId u : g.neighbors(v)) {
      if (!removed[u]) {
        --deg[u];
        buckets[deg[u]].push_back(u);
      }
    }
  }
  return degen;
}

NodeId max_component_size(const Graph& g, const std::vector<bool>& keep) {
  DGAP_REQUIRE(keep.size() == static_cast<std::size_t>(g.num_nodes()),
               "keep mask size mismatch");
  std::vector<NodeId> kept;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (keep[v]) kept.push_back(v);
  }
  auto [sub, map] = g.induced(kept);
  NodeId best = 0;
  for (const auto& comp : connected_components(sub)) {
    best = std::max(best, static_cast<NodeId>(comp.size()));
  }
  return best;
}

}  // namespace dgap
