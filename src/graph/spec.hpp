// Value-keyed graph construction for sweeps.
//
// A GraphSpec names an instance instead of holding one: generator family,
// size parameters, seed, and identifier policy. Two specs with equal
// fields build bit-identical graphs (all randomness flows through
// dgap::Rng seeded from the spec), which makes the spec a cache key: a
// sweep of thousands of jobs over an (n, error, cut-round) grid typically
// touches only a handful of distinct instances, and GraphCache builds
// each one once, handing out shared immutable graphs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "graph/graph.hpp"

namespace dgap {

struct GraphSpec {
  enum class Family {
    kLine,
    kRing,
    kClique,
    kStar,
    kGrid,
    kGnp,
    kRandomTree,
    kCaterpillar,
    // Appended (transcript headers encode the family ordinal; reordering
    // the existing entries would silently re-interpret committed goldens).
    kGnpSparse,  // make_gnp_sparse: O(m) geometric skipping
    kGnm,        // make_gnm: exactly b edges
  };

  /// How identifiers are assigned after construction. kDefault keeps the
  /// generator's 1..n; kSorted is sorted_ids() (the Greedy worst case);
  /// kRandomized is randomize_ids() driven by the spec's seed.
  enum class IdPolicy { kDefault, kSorted, kRandomized };

  Family family = Family::kLine;
  std::int64_t a = 0;     // n, or the first size parameter (grid width)
  std::int64_t b = 0;     // second size parameter (grid height, legs)
  double p = 0.0;         // G(n, p) edge probability
  std::uint64_t seed = 0; // drives generation and/or id randomization
  IdPolicy ids = IdPolicy::kDefault;

  /// Build the instance this spec names. Deterministic: equal specs give
  /// bit-identical graphs.
  Graph build() const;

  /// Human-readable label, e.g. "line_160_sorted" or "gnp_256_p0.031_s7".
  std::string name() const;

  friend bool operator==(const GraphSpec&, const GraphSpec&) = default;

  // --- convenience makers ---
  static GraphSpec line(std::int64_t n, IdPolicy ids = IdPolicy::kDefault,
                        std::uint64_t seed = 0);
  static GraphSpec ring(std::int64_t n, IdPolicy ids = IdPolicy::kDefault,
                        std::uint64_t seed = 0);
  static GraphSpec clique(std::int64_t n, IdPolicy ids = IdPolicy::kDefault,
                          std::uint64_t seed = 0);
  static GraphSpec star(std::int64_t n, IdPolicy ids = IdPolicy::kDefault,
                        std::uint64_t seed = 0);
  static GraphSpec grid(std::int64_t w, std::int64_t h,
                        IdPolicy ids = IdPolicy::kDefault,
                        std::uint64_t seed = 0);
  static GraphSpec gnp(std::int64_t n, double p, std::uint64_t seed,
                       IdPolicy ids = IdPolicy::kDefault);
  static GraphSpec gnp_sparse(std::int64_t n, double p, std::uint64_t seed,
                              IdPolicy ids = IdPolicy::kDefault);
  static GraphSpec gnm(std::int64_t n, std::int64_t m, std::uint64_t seed,
                       IdPolicy ids = IdPolicy::kDefault);
  static GraphSpec random_tree(std::int64_t n, std::uint64_t seed,
                               IdPolicy ids = IdPolicy::kDefault);
  static GraphSpec caterpillar(std::int64_t spine, std::int64_t legs,
                               IdPolicy ids = IdPolicy::kDefault,
                               std::uint64_t seed = 0);
};

/// Spec-keyed store of shared immutable graphs. get() builds on first use
/// and returns the same object for every later request with an equal spec,
/// so repeated-seed sweeps pay construction once. Thread-safe; in the
/// batch runner every spec is nevertheless resolved serially before jobs
/// are dispatched, so resolution order never depends on worker timing.
class GraphCache {
 public:
  /// The cached graph for `spec`, built on first use.
  std::shared_ptr<const Graph> get(const GraphSpec& spec);

  std::size_t size() const;
  /// get() calls served from the cache / that had to build.
  std::int64_t hits() const;
  std::int64_t misses() const;
  void clear();

 private:
  using Key = std::tuple<int, std::int64_t, std::int64_t, double,
                         std::uint64_t, int>;
  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<const Graph>> graphs_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace dgap
