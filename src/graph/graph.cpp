#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/require.hpp"

namespace dgap {

Graph::Graph(NodeId n) {
  DGAP_REQUIRE(n >= 0, "graph size must be non-negative");
  adj_.resize(static_cast<std::size_t>(n));
  ids_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) ids_[v] = v + 1;
  id_bound_ = n;
}

void Graph::set_id_bound(std::int64_t d) {
  for (Value id : ids_) {
    DGAP_REQUIRE(id <= d, "id bound below an existing identifier");
  }
  id_bound_ = d;
}

void Graph::set_ids(std::vector<Value> ids) {
  DGAP_REQUIRE(ids.size() == adj_.size(), "one identifier per node");
  std::unordered_set<Value> seen;
  std::int64_t max_id = 0;
  for (Value id : ids) {
    DGAP_REQUIRE(id >= 1, "identifiers are positive");
    DGAP_REQUIRE(seen.insert(id).second, "identifiers must be distinct");
    max_id = std::max(max_id, id);
  }
  ids_ = std::move(ids);
  id_bound_ = std::max(id_bound_, max_id);
}

void Graph::check_node(NodeId v) const {
  DGAP_REQUIRE(v >= 0 && v < num_nodes(), "node index out of range");
}

void Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  DGAP_REQUIRE(u != v, "no self-loops in a simple graph");
  DGAP_REQUIRE(!has_edge(u, v), "edge already present");
  adj_[u].insert(std::lower_bound(adj_[u].begin(), adj_[u].end(), v), v);
  adj_[v].insert(std::lower_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++num_edges_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  return std::binary_search(adj_[u].begin(), adj_[u].end(), v);
}

int Graph::max_degree() const {
  int d = 0;
  for (const auto& nb : adj_) d = std::max(d, static_cast<int>(nb.size()));
  return d;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> es;
  es.reserve(static_cast<std::size_t>(num_edges_));
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) es.emplace_back(u, v);
    }
  }
  return es;
}

std::pair<Graph, std::vector<NodeId>> Graph::induced(
    const std::vector<NodeId>& keep) const {
  std::vector<NodeId> old_to_new(static_cast<std::size_t>(num_nodes()), -1);
  std::vector<NodeId> new_to_old;
  new_to_old.reserve(keep.size());
  for (NodeId v : keep) {
    check_node(v);
    DGAP_REQUIRE(old_to_new[v] == -1, "duplicate node in induced() set");
    old_to_new[v] = static_cast<NodeId>(new_to_old.size());
    new_to_old.push_back(v);
  }
  Graph sub(static_cast<NodeId>(new_to_old.size()));
  std::vector<Value> ids;
  ids.reserve(new_to_old.size());
  for (NodeId old : new_to_old) ids.push_back(ids_[old]);
  sub.set_ids(std::move(ids));
  sub.set_id_bound(id_bound_);
  for (NodeId nu = 0; nu < sub.num_nodes(); ++nu) {
    for (NodeId old_nb : adj_[new_to_old[nu]]) {
      NodeId nv = old_to_new[old_nb];
      if (nv >= 0 && nu < nv) sub.add_edge(nu, nv);
    }
  }
  return {std::move(sub), std::move(new_to_old)};
}

}  // namespace dgap
