#include "graph/edits.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/require.hpp"

namespace dgap {

namespace {

std::unordered_map<Value, NodeId> index_by_id(const Graph& g) {
  std::unordered_map<Value, NodeId> by_id;
  by_id.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) by_id.emplace(g.id(v), v);
  return by_id;
}

}  // namespace

Graph apply_edits(const Graph& g, const EditBatch& batch) {
  DGAP_REQUIRE(batch.add_nodes >= 0, "add_nodes must be non-negative");
  const auto by_id = index_by_id(g);
  auto lookup = [&](Value id) {
    auto it = by_id.find(id);
    DGAP_REQUIRE(it != by_id.end(), "edit references an unknown identifier");
    return it->second;
  };

  // Removed edges as (min index, max index) pairs for fast membership.
  std::unordered_set<std::int64_t> removed_edges;
  auto edge_key = [&](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return static_cast<std::int64_t>(u) * g.num_nodes() + v;
  };
  for (const auto& [a, b] : batch.remove_edges) {
    const NodeId u = lookup(a);
    const NodeId v = lookup(b);
    DGAP_REQUIRE(g.has_edge(u, v), "removed edge is not in the graph");
    DGAP_REQUIRE(removed_edges.insert(edge_key(u, v)).second,
                 "edge removed twice in one batch");
  }

  std::vector<bool> removed_node(static_cast<std::size_t>(g.num_nodes()));
  for (Value id : batch.remove_nodes) {
    const NodeId v = lookup(id);
    DGAP_REQUIRE(!removed_node[static_cast<std::size_t>(v)],
                 "node removed twice in one batch");
    removed_node[static_cast<std::size_t>(v)] = true;
  }

  // Survivors keep their relative order; inserted nodes are appended with
  // fresh identifiers above the old bound, and the bound moves past them
  // so a later batch can never reissue an identifier this graph ever used.
  std::vector<NodeId> old_to_new(static_cast<std::size_t>(g.num_nodes()),
                                 kNoNode);
  std::vector<Value> ids;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (removed_node[static_cast<std::size_t>(v)]) continue;
    old_to_new[static_cast<std::size_t>(v)] = static_cast<NodeId>(ids.size());
    ids.push_back(g.id(v));
  }
  for (std::int64_t k = 0; k < batch.add_nodes; ++k) {
    ids.push_back(g.id_bound() + 1 + k);
  }
  Graph next(static_cast<NodeId>(ids.size()));
  next.set_ids(std::move(ids));
  next.set_id_bound(g.id_bound() + batch.add_nodes);

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId nu = old_to_new[static_cast<std::size_t>(u)];
    if (nu == kNoNode) continue;
    for (NodeId v : g.neighbors(u)) {
      if (u >= v) continue;
      const NodeId nv = old_to_new[static_cast<std::size_t>(v)];
      if (nv == kNoNode || removed_edges.count(edge_key(u, v))) continue;
      next.add_edge(nu, nv);
    }
  }

  const auto next_by_id = index_by_id(next);
  for (const auto& [a, b] : batch.add_edges) {
    auto ia = next_by_id.find(a);
    auto ib = next_by_id.find(b);
    DGAP_REQUIRE(ia != next_by_id.end() && ib != next_by_id.end(),
                 "added edge references an identifier absent from the "
                 "edited graph");
    next.add_edge(ia->second, ib->second);  // REQUIREs no dup / self-loop
  }
  return next;
}

EditBatch ChurnSpec::generate(const Graph& g, int epoch) const {
  DGAP_REQUIRE(epoch >= 0, "epoch must be non-negative");
  // splitmix-style seed mixing keeps per-epoch streams unrelated.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL +
          static_cast<std::uint64_t>(epoch) * 0xbf58476d1ce4e5b9ULL + 1);
  EditBatch batch;

  auto count_of = [](double frac, std::int64_t total) {
    if (frac <= 0 || total <= 0) return std::int64_t{0};
    return std::min<std::int64_t>(
        total, static_cast<std::int64_t>(frac * static_cast<double>(total) +
                                         0.5));
  };

  // Node removals first, so edge churn is drawn among surviving edges.
  const NodeId n = g.num_nodes();
  std::int64_t removals = count_of(node_remove_frac, n);
  removals = std::max<std::int64_t>(
      0, std::min<std::int64_t>(removals, n - min_nodes));
  std::vector<NodeId> nodes(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) nodes[static_cast<std::size_t>(v)] = v;
  rng.shuffle(nodes);
  std::vector<bool> removed(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < removals; ++i) {
    removed[static_cast<std::size_t>(nodes[static_cast<std::size_t>(i)])] =
        true;
    batch.remove_nodes.push_back(
        g.id(nodes[static_cast<std::size_t>(i)]));
  }
  std::vector<NodeId> survivors;
  for (NodeId v = 0; v < n; ++v) {
    if (!removed[static_cast<std::size_t>(v)]) survivors.push_back(v);
  }

  // Edge removals among edges both of whose endpoints survive.
  std::vector<std::pair<NodeId, NodeId>> live_edges;
  for (const auto& [u, v] : g.edges()) {
    if (!removed[static_cast<std::size_t>(u)] &&
        !removed[static_cast<std::size_t>(v)]) {
      live_edges.emplace_back(u, v);
    }
  }
  rng.shuffle(live_edges);
  const std::int64_t edge_removals =
      count_of(edge_remove_frac, static_cast<std::int64_t>(live_edges.size()));
  for (std::int64_t i = 0; i < edge_removals; ++i) {
    const auto& [u, v] = live_edges[static_cast<std::size_t>(i)];
    batch.remove_edges.emplace_back(g.id(u), g.id(v));
  }

  batch.add_nodes = count_of(node_add_frac, n);

  // Added edges among survivors: sample non-adjacent pairs, skipping pairs
  // already chosen and pairs whose edge was just removed (re-adding a
  // removed edge in the same batch would be a duplicate in apply_edits).
  std::unordered_set<std::int64_t> taken;
  auto pair_key = [&](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return static_cast<std::int64_t>(u) * n + v;
  };
  for (std::int64_t i = 0; i < edge_removals; ++i) {
    const auto& [u, v] = live_edges[static_cast<std::size_t>(i)];
    taken.insert(pair_key(u, v));
  }
  const std::int64_t edge_adds =
      count_of(edge_add_frac, static_cast<std::int64_t>(live_edges.size()));
  if (survivors.size() >= 2) {
    std::int64_t added = 0;
    // Bounded retries keep generation O(adds) on dense graphs.
    for (std::int64_t attempt = 0;
         added < edge_adds && attempt < 20 * edge_adds + 100; ++attempt) {
      const NodeId u = survivors[static_cast<std::size_t>(
          rng.next_below(survivors.size()))];
      const NodeId v = survivors[static_cast<std::size_t>(
          rng.next_below(survivors.size()))];
      if (u == v || g.has_edge(u, v) || !taken.insert(pair_key(u, v)).second) {
        continue;
      }
      batch.add_edges.emplace_back(g.id(u), g.id(v));
      ++added;
    }
  }

  // Wire each inserted node to distinct random survivors. Inserted
  // identifiers are known in advance: id_bound + 1 + k.
  for (std::int64_t k = 0; k < batch.add_nodes; ++k) {
    const Value new_id = g.id_bound() + 1 + k;
    std::vector<NodeId> targets = survivors;
    rng.shuffle(targets);
    const std::size_t wires = std::min<std::size_t>(
        targets.size(), static_cast<std::size_t>(
                            std::max(0, new_node_degree)));
    for (std::size_t i = 0; i < wires; ++i) {
      batch.add_edges.emplace_back(new_id, g.id(targets[i]));
    }
  }
  return batch;
}

}  // namespace dgap
