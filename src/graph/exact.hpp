// Exact and sequential solvers.
//
// Two uses in this reproduction:
//  * the error measure η2 = max over error components of 2·min{α, τ}
//    (Section 5) needs the exact independence number α; by Gallai's
//    identity τ = n − α, so one exact solver covers both;
//  * η_H (the rejected Hamming error measure) needs the set of *maximal*
//    independent sets — we enumerate them on small graphs;
//  * the prediction generators need *some* correct solution to perturb, so
//    sequential greedy solvers for all four problems live here too.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace dgap {

/// Independence number α(G), exact. Branch and bound with degree-based
/// branching; fine for the component sizes used in tests/benches (≲ 80
/// sparse nodes). Throws if the search exceeds `node_budget` B&B nodes.
int independence_number(const Graph& g, std::int64_t node_budget = 50'000'000);

/// A maximum independent set (witness for α).
std::vector<NodeId> maximum_independent_set(
    const Graph& g, std::int64_t node_budget = 50'000'000);

/// Vertex cover number τ(G) = n − α(G) (Gallai).
int vertex_cover_number(const Graph& g, std::int64_t node_budget = 50'000'000);

/// Enumerate all maximal independent sets of g (equivalently, maximal
/// cliques of the complement), invoking `cb` for each. Exponential; only
/// call on small graphs. Stops early if cb returns false.
void enumerate_maximal_independent_sets(
    const Graph& g, const std::function<bool(const std::vector<NodeId>&)>& cb);

/// Sequential greedy MIS in the given node order (defaults to index order).
/// The result is a maximal independent set — a correct prediction for the
/// MIS problem.
std::vector<bool> sequential_mis(const Graph& g);
std::vector<bool> sequential_mis(const Graph& g,
                                 const std::vector<NodeId>& order);

/// Sequential greedy maximal matching; result[v] = matched partner or
/// kNoNode.
std::vector<NodeId> sequential_maximal_matching(const Graph& g);

/// Sequential greedy (Δ+1)-vertex coloring; colors are 1..Δ+1.
std::vector<Value> sequential_vertex_coloring(const Graph& g);

/// Sequential greedy (2Δ−1)-edge coloring; returned as, for each node, a
/// vector aligned with g.neighbors(v) giving the color of each incident
/// edge (colors 1..2Δ−1). Both endpoints agree.
std::vector<std::vector<Value>> sequential_edge_coloring(const Graph& g);

}  // namespace dgap
