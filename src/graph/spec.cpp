#include "graph/spec.hpp"

#include <cstdio>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace dgap {

Graph GraphSpec::build() const {
  Rng rng(seed);
  Graph g;
  switch (family) {
    case Family::kLine:
      g = make_line(static_cast<NodeId>(a));
      break;
    case Family::kRing:
      g = make_ring(static_cast<NodeId>(a));
      break;
    case Family::kClique:
      g = make_clique(static_cast<NodeId>(a));
      break;
    case Family::kStar:
      g = make_star(static_cast<NodeId>(a));
      break;
    case Family::kGrid:
      g = make_grid(static_cast<NodeId>(a), static_cast<NodeId>(b));
      break;
    case Family::kGnp:
      g = make_gnp(static_cast<NodeId>(a), p, rng);
      break;
    case Family::kRandomTree:
      g = make_random_tree(static_cast<NodeId>(a), rng);
      break;
    case Family::kCaterpillar:
      g = make_caterpillar(static_cast<NodeId>(a), static_cast<NodeId>(b));
      break;
    case Family::kGnpSparse:
      g = make_gnp_sparse(static_cast<NodeId>(a), p, rng);
      break;
    case Family::kGnm:
      g = make_gnm(static_cast<NodeId>(a), b, rng);
      break;
  }
  switch (ids) {
    case IdPolicy::kDefault:
      break;
    case IdPolicy::kSorted:
      sorted_ids(g);
      break;
    case IdPolicy::kRandomized:
      // The same rng continues past generation, so a random family with
      // randomized ids still derives everything from the one seed.
      randomize_ids(g, rng);
      break;
  }
  return g;
}

std::string GraphSpec::name() const {
  std::string out;
  switch (family) {
    case Family::kLine: out = "line_" + std::to_string(a); break;
    case Family::kRing: out = "ring_" + std::to_string(a); break;
    case Family::kClique: out = "clique_" + std::to_string(a); break;
    case Family::kStar: out = "star_" + std::to_string(a); break;
    case Family::kGrid:
      out = "grid_" + std::to_string(a) + "x" + std::to_string(b);
      break;
    case Family::kGnp: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "p%.3f", p);
      out = "gnp_" + std::to_string(a) + "_" + buf;
      break;
    }
    case Family::kRandomTree: out = "rtree_" + std::to_string(a); break;
    case Family::kCaterpillar:
      out = "caterpillar_" + std::to_string(a) + "x" + std::to_string(b);
      break;
    case Family::kGnpSparse: {
      // %g keeps sparse probabilities (p ~ c/n at n = 10^6) legible where
      // the fixed %.3f of kGnp would print p0.000.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "p%g", p);
      out = "gnps_" + std::to_string(a) + "_" + buf;
      break;
    }
    case Family::kGnm:
      out = "gnm_" + std::to_string(a) + "_m" + std::to_string(b);
      break;
  }
  if (seed != 0) out += "_s" + std::to_string(seed);
  if (ids == IdPolicy::kSorted) out += "_sorted";
  if (ids == IdPolicy::kRandomized) out += "_rid";
  return out;
}

namespace {
GraphSpec spec_of(GraphSpec::Family f, std::int64_t a, std::int64_t b,
                  double p, std::uint64_t seed, GraphSpec::IdPolicy ids) {
  GraphSpec s;
  s.family = f;
  s.a = a;
  s.b = b;
  s.p = p;
  s.seed = seed;
  s.ids = ids;
  return s;
}
}  // namespace

GraphSpec GraphSpec::line(std::int64_t n, IdPolicy ids, std::uint64_t seed) {
  return spec_of(Family::kLine, n, 0, 0, seed, ids);
}
GraphSpec GraphSpec::ring(std::int64_t n, IdPolicy ids, std::uint64_t seed) {
  return spec_of(Family::kRing, n, 0, 0, seed, ids);
}
GraphSpec GraphSpec::clique(std::int64_t n, IdPolicy ids, std::uint64_t seed) {
  return spec_of(Family::kClique, n, 0, 0, seed, ids);
}
GraphSpec GraphSpec::star(std::int64_t n, IdPolicy ids, std::uint64_t seed) {
  return spec_of(Family::kStar, n, 0, 0, seed, ids);
}
GraphSpec GraphSpec::grid(std::int64_t w, std::int64_t h, IdPolicy ids,
                          std::uint64_t seed) {
  return spec_of(Family::kGrid, w, h, 0, seed, ids);
}
GraphSpec GraphSpec::gnp(std::int64_t n, double p, std::uint64_t seed,
                         IdPolicy ids) {
  return spec_of(Family::kGnp, n, 0, p, seed, ids);
}
GraphSpec GraphSpec::gnp_sparse(std::int64_t n, double p, std::uint64_t seed,
                                IdPolicy ids) {
  return spec_of(Family::kGnpSparse, n, 0, p, seed, ids);
}
GraphSpec GraphSpec::gnm(std::int64_t n, std::int64_t m, std::uint64_t seed,
                         IdPolicy ids) {
  return spec_of(Family::kGnm, n, m, 0, seed, ids);
}
GraphSpec GraphSpec::random_tree(std::int64_t n, std::uint64_t seed,
                                 IdPolicy ids) {
  return spec_of(Family::kRandomTree, n, 0, 0, seed, ids);
}
GraphSpec GraphSpec::caterpillar(std::int64_t spine, std::int64_t legs,
                                 IdPolicy ids, std::uint64_t seed) {
  return spec_of(Family::kCaterpillar, spine, legs, 0, seed, ids);
}

std::shared_ptr<const Graph> GraphCache::get(const GraphSpec& spec) {
  DGAP_REQUIRE(spec.a > 0, "graph spec has no size");
  const Key key{static_cast<int>(spec.family), spec.a, spec.b, spec.p,
                spec.seed, static_cast<int>(spec.ids)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(key);
    if (it != graphs_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Build outside the lock (construction can be expensive); a racing
  // builder of the same spec loses and adopts the first-inserted graph,
  // keeping the same-object guarantee.
  auto built = std::make_shared<const Graph>(spec.build());
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = graphs_.emplace(key, std::move(built));
  if (inserted) {
    ++misses_;
  } else {
    ++hits_;
  }
  return it->second;
}

std::size_t GraphCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

std::int64_t GraphCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t GraphCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void GraphCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  graphs_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace dgap
