#include "random/luby.hpp"

#include "common/rng.hpp"

namespace dgap {

namespace {
bool sees_mis_neighbor(const NodeContext& ctx) {
  for (NodeId u : ctx.neighbors()) {
    if (ctx.neighbor_output(u) == 1) return true;
  }
  return false;
}
}  // namespace

std::uint64_t LubyMisPhase::priority(const NodeContext& ctx) const {
  // One deterministic draw per (seed, node, iteration).
  const auto iteration = static_cast<std::uint64_t>(step_ / 2);
  Rng rng(seed_ ^ (static_cast<std::uint64_t>(ctx.id()) * 0x9e3779b97f4a7c15ULL) ^
          (iteration * 0xbf58476d1ce4e5b9ULL));
  return rng.next();
}

void LubyMisPhase::on_send(NodeContext& ctx, Channel& ch) {
  if (step_ % 2 == 0) ch.broadcast({static_cast<Value>(priority(ctx) >> 1)});
}

PhaseProgram::Status LubyMisPhase::on_receive(NodeContext& ctx, Channel& ch) {
  const bool select_round = (step_ % 2 == 0);
  const Value mine = static_cast<Value>(priority(ctx) >> 1);
  ++step_;
  if (select_round) {
    bool wins = true;
    for (const Message* m : ch.inbox()) {
      const Value theirs = m->words.at(0);
      // Ties broken by identifier; with 63-bit draws they are vanishingly
      // rare but must not produce two adjacent winners.
      if (theirs > mine ||
          (theirs == mine && ctx.neighbor_id(m->from) > ctx.id())) {
        wins = false;
        break;
      }
    }
    if (wins) {
      ctx.set_output(1);
      ctx.terminate();
    }
  } else if (sees_mis_neighbor(ctx)) {
    ctx.set_output(0);
    ctx.terminate();
  }
  return Status::kRunning;
}

PhaseFactory make_luby_mis(std::uint64_t seed) {
  return [seed](NodeId) { return std::make_unique<LubyMisPhase>(seed); };
}

ProgramFactory luby_mis_algorithm(std::uint64_t seed) {
  return phase_as_algorithm(make_luby_mis(seed));
}

}  // namespace dgap
