// Luby's randomized MIS (Section 10's open-problem discussion).
//
// The classic permutation variant: every iteration, each active node draws
// a fresh random priority; a node whose priority beats all its active
// neighbors' joins the set (2 rounds per iteration, like Greedy MIS but
// with random instead of fixed priorities). Expected round complexity
// O(log n).
//
// Randomness is derived deterministically from (seed, node identifier,
// iteration), so runs are reproducible and all the randomness flows from
// the single seed — the simulated algorithm itself stays message-driven.
//
// The paper's point (Section 10): used as the reference in the Simple
// Template, the *maximum* completion time over many small error components
// is Θ(log log n) even though each component alone finishes in
// O(log(component size)) expected rounds — the error measure η1 (a max,
// not a sum) does not bound the expectation. bench_luby reproduces this.
#pragma once

#include "sim/phase.hpp"

namespace dgap {

class LubyMisPhase final : public PhaseProgram {
 public:
  explicit LubyMisPhase(std::uint64_t seed) : seed_(seed) {}

  void on_send(NodeContext& ctx, Channel& ch) override;
  Status on_receive(NodeContext& ctx, Channel& ch) override;

 private:
  std::uint64_t priority(const NodeContext& ctx) const;

  std::uint64_t seed_;
  int step_ = 0;
};

PhaseFactory make_luby_mis(std::uint64_t seed);

ProgramFactory luby_mis_algorithm(std::uint64_t seed);

}  // namespace dgap
