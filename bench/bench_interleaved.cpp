// E5 — Lemma 9 / Corollary 10: the Interleaved Template with the
// phase-decomposed gather reference. The resulting algorithm terminates at
// min{~2η + c, c + 2Σr_i}: small errors finish during early U segments,
// adversarial errors are solved by a doubling-radius reference phase.
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mis/checkers.hpp"
#include "predict/error_measures.hpp"
#include "predict/generators.hpp"
#include "sim/engine.hpp"
#include "templates/mis_with_predictions.hpp"

namespace {

using namespace dgap;
using namespace dgap::benchutil;

int reference_total(NodeId n) {
  int total = 0;
  int m = 1;
  while ((1 << m) < std::max<NodeId>(n - 1, 1)) ++m;
  for (int i = 1; i <= m; ++i) total += 1 << i;
  return total;
}

void print_table() {
  banner("E5 (Lemma 9 / Corollary 10)",
         "Interleaved Template: rounds <= c + 2*f(eta) while also capped by "
         "c + 2*sum(r_i). The doubling phase budgets mean good predictions "
         "exit in the first U segments.");
  Table table(
      {"graph", "flips", "eta1", "rounds", "2eta+7", "robust_cap", "valid"},
      12);
  table.print_header();
  Rng rng(31);
  for (NodeId n : {60, 120}) {
    Graph g = make_line(n);
    sorted_ids(g);
    auto base = mis_correct_prediction(g, rng);
    for (int flips : {0, 1, 4, 16, n}) {
      auto pred = flips == n ? all_same(g, 0) : flip_bits(g, base, flips, rng);
      auto result = run_with_predictions(g, pred, mis_interleaved_gather());
      const int e1 = eta1_mis(g, pred);
      table.print_row({"sorted_line_" + fmt(n), fmt(flips), fmt(e1),
                       fmt(result.rounds), fmt(2 * std::max(e1, 2) + 7),
                       fmt(3 + 2 * reference_total(n) + 2),
                       is_valid_mis(g, result.outputs) ? "yes" : "NO"});
    }
  }
  {
    Graph g = make_grid(10, 10);
    randomize_ids(g, rng);
    auto base = mis_correct_prediction(g, rng);
    for (int flips : {0, 4, 16, 64}) {
      auto pred = flip_bits(g, base, flips, rng);
      auto result = run_with_predictions(g, pred, mis_interleaved_gather());
      const int e1 = eta1_mis(g, pred);
      table.print_row({"grid_10x10", fmt(flips), fmt(e1), fmt(result.rounds),
                       fmt(2 * std::max(e1, 2) + 7),
                       fmt(3 + 2 * reference_total(100) + 2),
                       is_valid_mis(g, result.outputs) ? "yes" : "NO"});
    }
  }
}

void BM_Interleaved(benchmark::State& state) {
  Rng rng(3);
  Graph g = make_line(static_cast<NodeId>(state.range(0)));
  sorted_ids(g);
  auto pred = all_same(g, 1);
  int rounds = 0;
  for (auto _ : state) {
    auto result = run_with_predictions(g, pred, mis_interleaved_gather());
    rounds = result.rounds;
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["rounds"] = rounds;
}
BENCHMARK(BM_Interleaved)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
