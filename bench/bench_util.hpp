// Shared helpers for the benchmark binaries.
//
// Each bench binary regenerates one experiment from EXPERIMENTS.md: it
// prints a paper-style table (measured rounds next to the bound the paper
// proves) and then runs a few google-benchmark timings so wall-clock cost
// of the simulation itself is also tracked.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace dgap::benchutil {

/// Fixed-width table printer: header once, then rows.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {}

  void print_header() const {
    std::string rule;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%-*s", width_, columns_[i].c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < columns_.size() * static_cast<std::size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& cell : cells) {
      std::printf("%-*s", width_, cell.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
  int width_;
};

inline std::string fmt(std::int64_t v) { return std::to_string(v); }
inline std::string fmt(int v) { return std::to_string(v); }
inline std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

inline void banner(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

}  // namespace dgap::benchutil
