// Shared helpers for the benchmark binaries.
//
// Each bench binary regenerates one experiment from EXPERIMENTS.md: it
// prints a paper-style table (measured rounds next to the bound the paper
// proves) and then runs a few google-benchmark timings so wall-clock cost
// of the simulation itself is also tracked.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.hpp"

namespace dgap::benchutil {

// ---------------------------------------------------------------------------
// Aggregates over a sweep's results. Benches that batch their runs get the
// whole result vector back at once; these reductions replace the ad-hoc
// accumulator loops each bench used to carry.
// ---------------------------------------------------------------------------

inline double mean_rounds(std::span<const RunResult> results) {
  if (results.empty()) return 0;
  double total = 0;
  for (const RunResult& r : results) total += r.rounds;
  return total / static_cast<double>(results.size());
}

inline int max_rounds(std::span<const RunResult> results) {
  int worst = 0;
  for (const RunResult& r : results) worst = std::max(worst, r.rounds);
  return worst;
}

inline double total_wall_ms(std::span<const RunResult> results) {
  double total = 0;
  for (const RunResult& r : results) total += r.wall_ms;
  return total;
}

// Message totals over a sweep. The nominal totals (total_messages /
// total_words) are invariant under message-reduction compilation
// (sim/compile.hpp): nominal == sent + suppressed per run, so
// total_words(rs) == total_words_sent(rs) + total_words_suppressed(rs)
// holds for any sweep — the accounting identity bench_messages asserts.

inline std::int64_t total_messages(std::span<const RunResult> results) {
  std::int64_t total = 0;
  for (const RunResult& r : results) total += r.total_messages;
  return total;
}

inline std::int64_t total_words(std::span<const RunResult> results) {
  std::int64_t total = 0;
  for (const RunResult& r : results) total += r.total_words;
  return total;
}

inline std::int64_t total_messages_sent(std::span<const RunResult> results) {
  std::int64_t total = 0;
  for (const RunResult& r : results) total += r.messages_sent;
  return total;
}

inline std::int64_t total_words_sent(std::span<const RunResult> results) {
  std::int64_t total = 0;
  for (const RunResult& r : results) total += r.words_sent;
  return total;
}

inline std::int64_t total_messages_suppressed(
    std::span<const RunResult> results) {
  std::int64_t total = 0;
  for (const RunResult& r : results) total += r.messages_suppressed;
  return total;
}

inline std::int64_t total_words_suppressed(
    std::span<const RunResult> results) {
  std::int64_t total = 0;
  for (const RunResult& r : results) total += r.words_suppressed;
  return total;
}

// Phase-profile reductions. Runs made with EngineOptions::profile_phases
// carry per-stage wall-ns in RunResult::phase_ns; benches sum them over a
// sweep and print milliseconds next to the wall_ms column so a regression
// names the pipeline stage that moved.

inline PhaseProfile total_phase_ns(std::span<const RunResult> results) {
  PhaseProfile total;
  for (const RunResult& r : results) total.accumulate(r.phase_ns);
  return total;
}

inline double phase_ms(std::int64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

/// Worker count for converted sweeps: saturate a small machine without
/// oversubscribing a single-core one.
inline int default_batch_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, hw == 0 ? 1u : hw));
}

/// Fixed-width table printer: header once, then rows.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {}

  void print_header() const {
    std::string rule;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%-*s", width_, columns_[i].c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < columns_.size() * static_cast<std::size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& cell : cells) {
      std::printf("%-*s", width_, cell.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
  int width_;
};

inline std::string fmt(std::int64_t v) { return std::to_string(v); }
inline std::string fmt(int v) { return std::to_string(v); }
inline std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

inline void banner(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

// ---------------------------------------------------------------------------
// --json output. A bench that wants its numbers tracked across PRs collects
// flat records into JsonRecords and writes them next to the working
// directory (e.g. BENCH_engine.json); the table output stays the primary
// human-facing artifact.
// ---------------------------------------------------------------------------

/// Accumulates an array of flat JSON objects and writes it as a file.
/// Values are stored pre-serialized; use the typed field() overloads.
class JsonRecords {
 public:
  void begin_record() { records_.emplace_back(); }

  void field(const char* key, const std::string& v) {
    std::string out = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    push(key, out);
  }
  void field(const char* key, const char* v) { field(key, std::string(v)); }
  void field(const char* key, std::int64_t v) { push(key, std::to_string(v)); }
  void field(const char* key, int v) { push(key, std::to_string(v)); }
  void field(const char* key, double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    push(key, buf);
  }

  bool write_file(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (!f) return false;
    std::fprintf(f, "[\n");
    for (std::size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(f, "  {");
      for (std::size_t i = 0; i < records_[r].size(); ++i) {
        std::fprintf(f, "%s%s", i ? ", " : "", records_[r][i].c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  void push(const char* key, const std::string& serialized) {
    records_.back().push_back("\"" + std::string(key) + "\": " + serialized);
  }
  std::vector<std::vector<std::string>> records_;  // "key": value strings
};

/// The standard way a bench tracks numbers across PRs: construct with the
/// `--json` flag state and the output path, call begin_record()/field()
/// per data point exactly as with JsonRecords (every call is a no-op when
/// disabled, so the bench body needs no `if (json)` blocks), and finish()
/// once at the end — it writes the file and prints the confirmation line.
class JsonRecorder {
 public:
  JsonRecorder(bool enabled, const char* path)
      : enabled_(enabled), path_(path) {}

  void begin_record() {
    if (enabled_) records_.begin_record();
  }
  template <typename V>
  void field(const char* key, V v) {
    if (enabled_) records_.field(key, v);
  }

  /// Write the file (if enabled). Returns false only on a write error.
  bool finish() {
    if (!enabled_) return true;
    if (records_.write_file(path_)) {
      std::printf("\nwrote %s\n", path_);
      return true;
    }
    std::printf("\nERROR: could not write %s\n", path_);
    return false;
  }

 private:
  bool enabled_;
  const char* path_;
  JsonRecords records_;
};

/// True iff `--json` appears in argv; removes it so google-benchmark does
/// not see an unknown flag. The bench then writes its JsonRecords file.
inline bool take_json_flag(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return true;
    }
  }
  return false;
}

}  // namespace dgap::benchutil
