// Dynamic-graph serving epochs — the Section 1.1 scenario measured.
//
// For each problem {MIS, matching, coloring} and a grid of churn rates,
// an EpochHarness evolves one G(n, p) instance through deterministic edit
// batches and runs the Simple-template algorithm every epoch twice: warm-
// started from the previous epoch's output and from scratch. The table
// reports amortized rounds/messages per epoch for both trajectories plus
// the mean prediction error η the warm starts incurred.
//
// Three hard checks (nonzero exit on failure):
//   * at the lowest churn rate every warm trajectory beats its
//     from-scratch control on amortized rounds — the paper's pitch;
//   * mean η is monotone non-decreasing in the churn rate — more churn,
//     staler predictions (the knob behaves);
//   * the epoch-report checksum is identical between batch execution
//     (workers = 2) and the inline serial path (workers = 0) — the
//     determinism contract across the two execution modes.
// A final pass measures the content-addressed result cache: the same
// stream re-run on a warm harness must be served entirely from the cache,
// and the cold/hot wall-clock ratio is recorded. `--json` writes
// BENCH_epochs.json with every row.
#include "bench_util.hpp"

#include <chrono>
#include <cinttypes>

#include "common/require.hpp"
#include "sim/epoch.hpp"
#include "templates/epoch_problems.hpp"

namespace {

using namespace dgap;
using namespace dgap::benchutil;

constexpr double kRates[] = {0.01, 0.05, 0.12, 0.25};

EpochProblem problem_of(int p) {
  switch (p) {
    case 0: return epoch_mis();
    case 1: return epoch_matching();
    default: return epoch_coloring();
  }
}

EpochConfig config_of(double rate, int workers) {
  EpochConfig config;
  config.base = GraphSpec::gnp(64, 0.06, 21);
  config.churn.seed = 4242;
  config.churn.edge_remove_frac = rate;
  config.churn.edge_add_frac = rate;
  config.churn.node_remove_frac = rate / 2;
  config.churn.node_add_frac = rate / 2;
  config.epochs = 8;
  config.workers = workers;
  return config;
}

double mean_eta(const EpochReport& report) {
  // Epoch 0 has no previous output — its (scratch) η says nothing about
  // warm-start quality, so the mean is over the warm-started epochs.
  if (report.epochs.size() <= 1) return 0;
  double total = 0;
  for (std::size_t k = 1; k < report.epochs.size(); ++k) {
    total += report.epochs[k].eta;
  }
  return total / static_cast<double>(report.epochs.size() - 1);
}

double time_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

bool run_all(bool json) {
  banner("EPOCHS",
         "Warm-starting a template from its own previous output across "
         "churn epochs (Section 1.1's serving scenario). `warm_r` vs "
         "`ctrl_r` are amortized rounds per epoch with and without the "
         "warm start; at low churn warm must win (hard check). `match` "
         "asserts the batch (workers 2) and inline serial (workers 0) "
         "executions produce identical epoch reports.");
  Table table({"problem", "churn", "eta", "warm_r", "ctrl_r", "warm_msg",
               "ctrl_msg", "match"},
              10);
  table.print_header();
  JsonRecorder out(json, "BENCH_epochs.json");
  static const char* names[] = {"mis", "matching", "coloring"};
  bool ok = true;

  for (int p = 0; p < 3; ++p) {
    double low_warm = 0, low_ctrl = 0, prev_eta = -1;
    for (double rate : kRates) {
      EpochHarness batch(problem_of(p), config_of(rate, 2));
      const EpochReport report = batch.run();
      EpochHarness serial(problem_of(p), config_of(rate, 0));
      const EpochReport serial_report = serial.run();
      const std::uint64_t sum = epoch_report_checksum(report);
      const bool match = sum == epoch_report_checksum(serial_report);
      ok = ok && match;

      const double eta = mean_eta(report);
      const double warm_r = amortized_warm_rounds(report);
      const double ctrl_r = amortized_control_rounds(report);
      if (rate == kRates[0]) {
        low_warm = warm_r;
        low_ctrl = ctrl_r;
      }
      // More churn must not make the warm predictions better.
      if (prev_eta >= 0 && eta < prev_eta) {
        std::fprintf(stderr, "FATAL: %s mean eta fell from %.2f to %.2f as "
                     "churn rose to %.2f\n", names[p], prev_eta, eta, rate);
        ok = false;
      }
      prev_eta = eta;

      table.print_row({names[p], fmt(rate), fmt(eta), fmt(warm_r),
                       fmt(ctrl_r), fmt(amortized_warm_messages(report)),
                       fmt(amortized_control_messages(report)),
                       match ? "yes" : "NO"});
      out.begin_record();
      out.field("problem", names[p]);
      // Which PredictionProviders fed the two trajectories: the control
      // always runs on the problem's scratch provider; the warm runs use
      // the harness's warm_start_provider over the previous epoch.
      out.field("scratch_provider", problem_of(p).scratch->name());
      out.field("warm_provider", "warm_start");
      out.field("churn_rate", rate);
      out.field("epochs", config_of(rate, 2).epochs);
      out.field("mean_eta", eta);
      out.field("amortized_warm_rounds", warm_r);
      out.field("amortized_control_rounds", ctrl_r);
      out.field("amortized_warm_messages", amortized_warm_messages(report));
      out.field("amortized_control_messages",
                amortized_control_messages(report));
      out.field("checksum", hex64(sum));
      out.field("serial_matches_batch", static_cast<std::int64_t>(match));
    }
    if (!(low_warm < low_ctrl)) {
      std::fprintf(stderr,
                   "FATAL: %s warm start does not beat from-scratch at the "
                   "lowest churn rate (%.2f vs %.2f amortized rounds)\n",
                   names[p], low_warm, low_ctrl);
      ok = false;
    }
  }

  // Content-addressed cache: a second identical stream on the same
  // harness must execute nothing, and the hit path should be measurably
  // faster than the cold run.
  {
    EpochHarness harness(epoch_mis(), config_of(0.05, 2));
    EpochReport cold_report, hot_report;
    const double cold_ms = time_ms([&] { cold_report = harness.run(); });
    const double hot_ms = time_ms([&] { hot_report = harness.run(); });
    const bool all_hits = hot_report.cache_misses == 0;
    const bool identical = epoch_report_checksum(cold_report) ==
                           epoch_report_checksum(hot_report);
    ok = ok && all_hits && identical;
    const double speedup = hot_ms > 0 ? cold_ms / hot_ms : 0;
    std::printf("\ncache: cold %.2f ms, hot %.2f ms (speedup %.1fx, "
                "%lld hits, %lld misses, identical %s)\n",
                cold_ms, hot_ms, speedup,
                static_cast<long long>(hot_report.cache_hits),
                static_cast<long long>(hot_report.cache_misses),
                identical ? "yes" : "NO");
    out.begin_record();
    out.field("problem", "mis");
    out.field("mode", "result_cache");
    out.field("cold_ms", cold_ms);
    out.field("hot_ms", hot_ms);
    out.field("cache_speedup", speedup);
    out.field("hot_hits", cold_report.cache_hits + hot_report.cache_hits);
    out.field("hot_misses", hot_report.cache_misses);
    out.field("hit_path_identical", static_cast<std::int64_t>(identical));
  }

  out.finish();
  if (!ok) std::fprintf(stderr, "FATAL: epoch bench self-check failed\n");
  return ok;
}

void BM_EpochStream(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EpochHarness harness(epoch_mis(), config_of(0.05, workers));
    EpochReport report = harness.run();
    benchmark::DoNotOptimize(report.epochs.data());
  }
  state.counters["epochs"] = 8;
}
BENCHMARK(BM_EpochStream)->Arg(0)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  const bool json = dgap::benchutil::take_json_flag(&argc, &argv[0]);
  const bool ok = run_all(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
